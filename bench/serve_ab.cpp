//===- serve_ab.cpp - Resident daemon A/B harness ---------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the resident daemon actually buys on one benchmark
/// suite (default: ExpressOS): end-to-end wall-clock of
///   (a) a cold `vcdryad check` — fresh process, empty cache, every
///       obligation solved;
///   (b) a warm `vcdryad check` — fresh process each round, but warm
///       proof cache + manifest (the pre-daemon incremental path:
///       still pays process start, store load, parse, Z3 context);
///   (c) a warm daemon round-trip — `vcdryad client verify` against a
///       `vcdryad serve` process primed once (resident stores,
///       resident plans, shared-prelude sessions).
/// Every configuration is launched as a real child process, so the
/// numbers include everything a user pays at the shell. Prints the
/// per-round means and the speedups behind the EXPERIMENTS.md
/// "resident daemon" entry; exits nonzero unless the warm daemon
/// round-trip beats cold check by >= 5x with identical verdicts.
///
/// Usage: serve_ab <vcdryad-binary> [suite-dir] [rounds]
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace vcdryad;
namespace fs = std::filesystem;

namespace {

double now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs a shell command, returns its wall-clock in ms; -1 on nonzero
/// exit.
double timedRun(const std::string &Cmd) {
  double T0 = now();
  int Rc = std::system(Cmd.c_str());
  double Ms = now() - T0;
  if (Rc != 0)
    return -1.0;
  return Ms;
}

double mean(const std::vector<double> &Xs) {
  double S = 0.0;
  for (double X : Xs)
    S += X;
  return Xs.empty() ? 0.0 : S / static_cast<double>(Xs.size());
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr,
                 "error: usage: serve_ab <vcdryad-binary> [suite-dir] "
                 "[rounds]\n");
    return 2;
  }
  std::string Tool = Argv[1];
  std::string Suite =
      Argc > 2 ? Argv[2]
               : (fs::path(VCDRYAD_BENCHMARK_DIR) / "expressos").string();
  int Rounds = Argc > 3 ? std::atoi(Argv[3]) : 3;
  if (Rounds < 1)
    Rounds = 1;
  if (!fs::is_regular_file(Tool)) {
    std::fprintf(stderr, "error: no such binary: %s\n", Tool.c_str());
    return 2;
  }
  if (!fs::is_directory(Suite)) {
    std::fprintf(stderr, "error: no such suite: %s\n", Suite.c_str());
    return 2;
  }

  fs::path Work = fs::temp_directory_path() / "vcd-serve-ab";
  fs::remove_all(Work);
  fs::create_directories(Work);
  std::string Quiet = " --json-times=off --out=/dev/null 2>/dev/null";
  std::printf("suite: %s, rounds: %d\n\n", Suite.c_str(), Rounds);

  // (a) cold check: fresh cache every round.
  std::vector<double> Cold;
  for (int I = 0; I < Rounds; ++I) {
    fs::path C = Work / ("cold" + std::to_string(I));
    double Ms = timedRun(Tool + " check " + Suite + " --cache=" +
                         C.string() + Quiet);
    if (Ms < 0) {
      std::fprintf(stderr, "error: cold check failed\n");
      return 1;
    }
    Cold.push_back(Ms);
    std::printf("cold check         round %d: %8.1f ms\n", I + 1, Ms);
  }

  // (b) warm check: one priming run, then timed re-runs on the same
  // cache — a fresh process each time.
  fs::path WarmCache = Work / "warm";
  if (timedRun(Tool + " check " + Suite + " --cache=" +
               WarmCache.string() + Quiet) < 0) {
    std::fprintf(stderr, "error: warm priming run failed\n");
    return 1;
  }
  std::vector<double> WarmCli;
  for (int I = 0; I < Rounds; ++I) {
    double Ms = timedRun(Tool + " check " + Suite + " --cache=" +
                         WarmCache.string() + Quiet);
    if (Ms < 0) {
      std::fprintf(stderr, "error: warm check failed\n");
      return 1;
    }
    WarmCli.push_back(Ms);
    std::printf("warm check         round %d: %8.1f ms\n", I + 1, Ms);
  }

  // (c) warm daemon: start `vcdryad serve`, prime once, then timed
  // `vcdryad client verify` round-trips.
  fs::path DaemonCache = Work / "daemon";
  std::string Sock = (DaemonCache / "serve.sock").string();
  pid_t Serve = fork();
  if (Serve < 0) {
    std::fprintf(stderr, "error: fork failed\n");
    return 1;
  }
  if (Serve == 0) {
    execl(Tool.c_str(), Tool.c_str(), "serve",
          ("--cache=" + DaemonCache.string()).c_str(),
          ("--socket=" + Sock).c_str(), nullptr);
    _exit(127);
  }
  for (int I = 0; !daemon::probeSocket(Sock); ++I) {
    if (I > 100) {
      std::fprintf(stderr, "error: daemon did not come up\n");
      ::kill(Serve, SIGKILL);
      return 1;
    }
    ::usleep(100000);
  }
  std::string ClientCmd = Tool + " client verify " + Suite +
                          " --socket=" + Sock + Quiet;
  if (timedRun(ClientCmd) < 0) {
    std::fprintf(stderr, "error: daemon priming verify failed\n");
    ::kill(Serve, SIGKILL);
    return 1;
  }
  std::vector<double> WarmDaemon;
  for (int I = 0; I < Rounds; ++I) {
    double Ms = timedRun(ClientCmd);
    if (Ms < 0) {
      std::fprintf(stderr, "error: daemon verify failed\n");
      ::kill(Serve, SIGKILL);
      return 1;
    }
    WarmDaemon.push_back(Ms);
    std::printf("warm daemon verify round %d: %8.1f ms\n", I + 1, Ms);
  }
  std::system((Tool + " client shutdown --socket=" + Sock +
               " >/dev/null 2>&1")
                  .c_str());
  int Status = 0;
  ::waitpid(Serve, &Status, 0);
  fs::remove_all(Work);

  double ColdMs = mean(Cold), CliMs = mean(WarmCli),
         DaemonMs = mean(WarmDaemon);
  std::printf("\n%-28s %10.1f ms\n", "cold check (mean):", ColdMs);
  std::printf("%-28s %10.1f ms\n", "warm check (mean):", CliMs);
  std::printf("%-28s %10.1f ms\n", "warm daemon (mean):", DaemonMs);
  std::printf("\nwarm daemon speedup: %.1fx over cold check, "
              "%.1fx over warm check\n",
              DaemonMs > 0 ? ColdMs / DaemonMs : 0.0,
              DaemonMs > 0 ? CliMs / DaemonMs : 0.0);
  return DaemonMs > 0 && ColdMs / DaemonMs >= 5.0 ? 0 : 1;
}
