//===- service_scaling.cpp - Batch-service scaling harness ------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the corpus-scale verification service on one benchmark
/// suite (default: AFWP, Table 1's final block): sequential cold run,
/// parallel cold run, and parallel cache-warm re-run. Prints the
/// wall-clock for each configuration plus the warm run's proof-cache
/// hit rate — the numbers behind the EXPERIMENTS.md "batch service"
/// baseline.
///
/// Usage: service_scaling [suite-dir] [jobs]
///
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace vcdryad;
namespace fs = std::filesystem;

namespace {

service::BatchReport runOnce(const std::vector<std::string> &Files,
                             unsigned Jobs, const std::string &CacheDir,
                             const char *Label) {
  service::ServiceOptions Opts;
  Opts.Jobs = Jobs;
  Opts.CacheDir = CacheDir;
  service::VerificationService Service(Opts);
  service::BatchReport Rep = Service.run(Files);
  std::printf("%-24s %8.2fs  %3u/%u verified  cache %llu hits / %llu "
              "misses\n",
              Label, Rep.WallMs / 1000.0, Rep.NumVerified,
              Rep.NumFunctions,
              static_cast<unsigned long long>(Rep.Cache.Hits),
              static_cast<unsigned long long>(Rep.Cache.Misses));
  std::fflush(stdout);
  return Rep;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Suite = Argc > 1
                          ? Argv[1]
                          : (fs::path(VCDRYAD_BENCHMARK_DIR) / "afwp")
                                .string();
  unsigned Jobs = std::thread::hardware_concurrency();
  if (Argc > 2)
    Jobs = static_cast<unsigned>(std::stoul(Argv[2]));
  if (Jobs < 2)
    Jobs = 2;

  std::string Error;
  std::vector<std::string> Files =
      service::collectBatchInputs({Suite}, Error);
  if (!Error.empty() || Files.empty()) {
    std::fprintf(stderr, "error: %s\n",
                 Error.empty() ? "no .c files in suite" : Error.c_str());
    return 2;
  }
  std::printf("suite: %s (%zu files), parallel jobs: %u\n\n",
              Suite.c_str(), Files.size(), Jobs);

  fs::path CacheDir =
      fs::temp_directory_path() / "vcd-service-scaling-cache";
  fs::remove_all(CacheDir);

  service::BatchReport Seq = runOnce(Files, 1, "", "jobs=1 cold");
  service::BatchReport Cold =
      runOnce(Files, Jobs, CacheDir.string(), "parallel cold");
  service::BatchReport Warm =
      runOnce(Files, Jobs, CacheDir.string(), "parallel warm");
  fs::remove_all(CacheDir);

  uint64_t Lookups = Warm.Cache.Hits + Warm.Cache.Misses;
  std::printf("\nparallel cold speedup: %.2fx   warm speedup: %.2fx   "
              "warm hit rate: %.1f%%\n",
              Seq.WallMs / Cold.WallMs, Seq.WallMs / Warm.WallMs,
              Lookups ? 100.0 * Warm.Cache.Hits / Lookups : 0.0);
  return (Seq.AllVerified && Cold.AllVerified && Warm.AllVerified) ? 0
                                                                   : 1;
}
