//===- vc_preprocess.cpp - Preprocessing engine A/B harness ----------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-VC solver-time comparison of the preprocessing engine: every
/// routine of the selected suites is verified twice —
///   baseline:     no simplification, no slicing, no timeout ladder
///                 (one-shot full guard per VC at the full budget)
///   preprocessed: simplify + slice + scoped sessions + ladder
/// — and the harness reports per-function solver times, per-VC
/// speedups and the median per-VC solver-time reduction (the ISSUE's
/// acceptance metric). Pass suite directory names (e.g. `sll afwp`)
/// to select suites; default is a representative positive mix.
///
/// Usage: vc_preprocess [--timeout=<ms>] [--fast-timeout=<ms>] [suite...]
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace vcdryad;
using namespace vcdryad::verifier;

namespace {

/// Sums the pure solver time of a function (excludes front-end and
/// scheduling overhead, which preprocessing also shrinks but which
/// the acceptance metric does not count).
double solverMs(const FunctionResult &F) {
  double Ms = 0.0;
  for (const VCStat &St : F.VCStats)
    Ms += St.SolveTimeMs;
  return Ms;
}

double median(std::vector<double> V) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  size_t N = V.size();
  return N % 2 ? V[N / 2] : (V[N / 2 - 1] + V[N / 2]) / 2.0;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned TimeoutMs = 60000;
  unsigned FastTimeoutMs = 5000;
  std::vector<std::string> SuiteDirs;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--timeout=", 0) == 0)
      TimeoutMs = static_cast<unsigned>(std::atoi(A.c_str() + 10));
    else if (A.rfind("--fast-timeout=", 0) == 0)
      FastTimeoutMs = static_cast<unsigned>(std::atoi(A.c_str() + 15));
    else
      SuiteDirs.push_back(A);
  }
  if (SuiteDirs.empty())
    SuiteDirs = {"sll", "sorted", "afwp"};

  VerifyOptions Base;
  Base.TimeoutMs = TimeoutMs;
  Base.Preprocess = false;
  Base.Slice = false;
  Base.FastTimeoutMs = 0;

  VerifyOptions Pre;
  Pre.TimeoutMs = TimeoutMs;
  Pre.FastTimeoutMs = FastTimeoutMs;

  std::printf("%-24s %-28s %5s %10s %10s %7s %5s\n", "Suite", "Routine",
              "VCs", "base(ms)", "pre(ms)", "speedup", "esc");
  std::printf("%.*s\n", 96,
              "-----------------------------------------------------------"
              "-------------------------------------");

  // Per-VC baseline/preprocessed time ratios; the acceptance metric is
  // the median of these.
  std::vector<double> Ratios;
  double BaseTotal = 0.0, PreTotal = 0.0;
  int VerdictMismatches = 0;

  for (const std::string &Dir : SuiteDirs) {
    vcdbench::Suite S{Dir.c_str(), Dir.c_str()};
    bool First = true;
    for (const std::string &File : vcdbench::suiteFiles(S)) {
      ProgramResult RB = Verifier(Base).verifyFile(File);
      ProgramResult RP = Verifier(Pre).verifyFile(File);
      if (!RB.Ok || !RP.Ok) {
        std::printf("%-24s %-28s frontend error\n", First ? Dir.c_str() : "",
                    File.c_str());
        First = false;
        continue;
      }
      for (size_t FI = 0; FI != RB.Functions.size(); ++FI) {
        const FunctionResult &FB = RB.Functions[FI];
        const FunctionResult *FP = RP.function(FB.Name);
        if (!FP)
          continue;
        if (FB.Verified != FP->Verified)
          ++VerdictMismatches;
        double B = solverMs(FB), P = solverMs(*FP);
        BaseTotal += B;
        PreTotal += P;
        for (size_t K = 0;
             K != FB.VCStats.size() && K != FP->VCStats.size(); ++K) {
          double VB = FB.VCStats[K].SolveTimeMs;
          double VP = FP->VCStats[K].SolveTimeMs;
          // Sub-millisecond VCs are noise either way; skip them so the
          // median reflects obligations the solver actually worked on.
          if (VB >= 1.0)
            Ratios.push_back(VB / std::max(VP, 0.01));
        }
        std::printf("%-24s %-28s %5u %10.1f %10.1f %6.2fx %5u%s\n",
                    First ? Dir.c_str() : "", FB.Name.c_str(), FB.NumVCs, B,
                    P, B / std::max(P, 0.01), FP->Escalations,
                    FB.Verified != FP->Verified ? "  VERDICT MISMATCH"
                                                : "");
        std::fflush(stdout);
        First = false;
      }
    }
  }

  std::printf("%.*s\n", 96,
              "-----------------------------------------------------------"
              "-------------------------------------");
  std::printf("total solver time: baseline %.1f ms, preprocessed %.1f ms "
              "(%.2fx)\n",
              BaseTotal, PreTotal, BaseTotal / std::max(PreTotal, 0.01));
  std::printf("median per-VC speedup (VCs with >= 1 ms baseline): %.2fx "
              "over %zu VCs\n",
              median(Ratios), Ratios.size());
  if (VerdictMismatches) {
    std::printf("FAIL: %d verdict mismatches between configs\n",
                VerdictMismatches);
    return 1;
  }
  return 0;
}
