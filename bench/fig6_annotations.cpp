//===- fig6_annotations.cpp - Figure 6: manual vs ghost annotations --------==//
//
// Part of the VCDryad-Repro project.
//
// Reproduces Figure 6: for every routine of the corpus, the number of
// manual annotations (requires/ensures/invariant/assert) vs the number
// of automatically synthesized ghost annotations, sorted by manual
// count as in the paper (log-scale y axis there; we print the raw
// series plus the ratio statistics the paper quotes: 3x-150x, ~30x).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "instr/Instrument.h"

#include <algorithm>

using namespace vcdryad;

namespace {

struct Row {
  std::string Name;
  unsigned Manual = 0;
  unsigned Ghost = 0;
};

void collect(const std::string &File, std::vector<Row> &Rows) {
  DiagnosticEngine Diag;
  auto Prog = cfront::parseFile(File, Diag);
  if (!Prog || Diag.hasErrors())
    return;
  cfront::normalizeProgram(*Prog, Diag);
  instr::InstrOptions Opts;
  instr::instrumentProgram(*Prog, Opts, Diag);
  for (const auto &F : Prog->Funcs) {
    if (!F->Body)
      continue;
    instr::AnnotationStats St = instr::countAnnotations(*F);
    Rows.push_back({F->Name, St.Manual, St.Ghost});
  }
}

} // namespace

int main() {
  std::vector<Row> Rows;
  for (const auto &Suites :
       {vcdbench::stdDsSuites(), vcdbench::realWorldSuites(),
        vcdbench::competitionSuites()})
    for (const vcdbench::Suite &S : Suites)
      for (const std::string &File : vcdbench::suiteFiles(S))
        collect(File, Rows);

  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    if (A.Manual != B.Manual)
      return A.Manual < B.Manual;
    return A.Ghost < B.Ghost;
  });

  std::printf("Figure 6: manual vs auto-generated annotations "
              "(sorted by manual count)\n\n");
  std::printf("%-30s %8s %8s %8s\n", "Routine", "manual", "ghost",
              "ratio");
  double MinR = 1e30, MaxR = 0, SumR = 0;
  unsigned N = 0;
  for (const Row &R : Rows) {
    double Ratio = R.Manual ? double(R.Ghost) / R.Manual : 0;
    std::printf("%-30s %8u %8u %7.1fx\n", R.Name.c_str(), R.Manual,
                R.Ghost, Ratio);
    if (R.Manual) {
      MinR = std::min(MinR, Ratio);
      MaxR = std::max(MaxR, Ratio);
      SumR += Ratio;
      ++N;
    }
  }
  std::printf("\n%u routines; ghost/manual ratio: min %.1fx, "
              "max %.1fx, average %.1fx\n",
              N, MinR, MaxR, N ? SumR / N : 0);
  std::printf("(paper: 3x to 150x, ~30x on average)\n");
  return 0;
}
