//===- isolation_ab.cpp - Solver-isolation overhead A/B harness ------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what crash isolation costs (default suites: SLL +
/// ExpressOS). End-to-end wall-clock of
///   (a) `vcdryad batch --cache=off` — every obligation solved by the
///       in-process Z3 backend;
///   (b) the same run with `--isolate-solvers` — every obligation
///       solved in supervised `solve-worker` child processes, so the
///       delta is spawn + init + frame-codec + pipe time.
/// Both runs write `--json-times=off` reports, which must be
/// byte-identical: isolation buys a fault boundary, never a verdict.
///
/// Every configuration is a real child process of the CLI binary, so
/// the numbers include process start, worker spawn, and wire time.
/// Prints the per-round means and the overhead behind the
/// EXPERIMENTS.md "crash-isolated solver workers" entry; exits
/// nonzero unless the reports are byte-identical and the isolation
/// overhead stays within 15% of in-process wall-clock.
///
/// Usage: isolation_ab <vcdryad-binary> [suite-dir ...] [rounds]
///
//===----------------------------------------------------------------------===//

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

double now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs a shell command, returns its wall-clock in ms; -1 on nonzero
/// exit.
double timedRun(const std::string &Cmd) {
  double T0 = now();
  int Rc = std::system(Cmd.c_str());
  double Ms = now() - T0;
  if (Rc != 0)
    return -1.0;
  return Ms;
}

double mean(const std::vector<double> &Xs) {
  double S = 0.0;
  for (double X : Xs)
    S += X;
  return Xs.empty() ? 0.0 : S / static_cast<double>(Xs.size());
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "error: usage: isolation_ab <vcdryad-binary> "
                         "[suite-dir ...] [rounds]\n");
    return 2;
  }
  std::string Tool = Argv[1];
  std::vector<std::string> Suites;
  int Rounds = 3;
  for (int I = 2; I < Argc; ++I) {
    if (fs::is_directory(Argv[I]))
      Suites.push_back(Argv[I]);
    else
      Rounds = std::atoi(Argv[I]);
  }
  if (Suites.empty()) {
    Suites = {(fs::path(VCDRYAD_BENCHMARK_DIR) / "sll").string(),
              (fs::path(VCDRYAD_BENCHMARK_DIR) / "expressos").string()};
  }
  if (Rounds < 1)
    Rounds = 1;
  if (!fs::is_regular_file(Tool)) {
    std::fprintf(stderr, "error: no such binary: %s\n", Tool.c_str());
    return 2;
  }
  for (const std::string &S : Suites)
    if (!fs::is_directory(S)) {
      std::fprintf(stderr, "error: no such suite: %s\n", S.c_str());
      return 2;
    }

  fs::path Work = fs::temp_directory_path() / "vcd-isolation-ab";
  fs::remove_all(Work);
  fs::create_directories(Work);
  std::string Operands;
  for (const std::string &S : Suites) {
    Operands += " " + S;
    std::printf("suite: %s\n", S.c_str());
  }
  std::printf("rounds: %d\n\n", Rounds);
  // Cache off: both sides must solve every obligation, so the delta
  // is pure isolation machinery.
  std::string Common = " --cache=off --json-times=off 2>/dev/null";

  std::vector<double> InProc, Isolated;
  std::string InProcRep = (Work / "inproc.json").string();
  std::string IsoRep = (Work / "iso.json").string();
  for (int I = 0; I < Rounds; ++I) {
    double Ms = timedRun(Tool + " batch" + Operands + " --out=" +
                         InProcRep + Common);
    if (Ms < 0) {
      std::fprintf(stderr, "error: in-process batch failed\n");
      return 1;
    }
    InProc.push_back(Ms);
    std::printf("in-process batch    round %d: %8.1f ms\n", I + 1, Ms);
  }
  for (int I = 0; I < Rounds; ++I) {
    double Ms = timedRun(Tool + " batch" + Operands +
                         " --isolate-solvers --out=" + IsoRep + Common);
    if (Ms < 0) {
      std::fprintf(stderr, "error: isolated batch failed\n");
      return 1;
    }
    Isolated.push_back(Ms);
    std::printf("isolated batch      round %d: %8.1f ms\n", I + 1, Ms);
  }

  bool ByteStable = slurp(InProcRep) == slurp(IsoRep);
  if (!ByteStable)
    std::fprintf(stderr, "error: --isolate-solvers changed the stripped "
                         "report\n");

  double A = mean(InProc), B = mean(Isolated);
  double OverheadPct = A > 0 ? (B - A) / A * 100.0 : 0.0;
  std::printf("\n%-28s %10.1f ms\n", "in-process batch (mean):", A);
  std::printf("%-28s %10.1f ms\n", "isolated batch (mean):", B);
  std::printf("\nisolation overhead: %+.1f%% wall-clock "
              "(byte-stable report: %s)\n",
              OverheadPct, ByteStable ? "yes" : "NO");
  fs::remove_all(Work);
  return ByteStable && OverheadPct <= 15.0 ? 0 : 1;
}
