//===- incremental_ab.cpp - Incremental re-verification A/B harness ---------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the build-system semantics of incremental re-verification
/// on one benchmark suite (default: SLL): cold run with the manifest
/// recording, warm proof-cache-only re-run (the pre-incremental
/// baseline — VCs are still generated and hashed for every function),
/// and warm incremental re-run (fingerprint-matching functions skipped
/// before instrumentation, zero solver traffic). Prints the wall-clock
/// of each configuration plus the warm incremental run's skip count
/// and solved-VC count — the numbers behind the EXPERIMENTS.md
/// "incremental re-verification" entry.
///
/// Usage: incremental_ab [suite-dir] [jobs]
///
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace vcdryad;
namespace fs = std::filesystem;

namespace {

service::BatchReport runOnce(const std::vector<std::string> &Files,
                             unsigned Jobs, const std::string &CacheDir,
                             bool Incremental, const char *Label) {
  service::ServiceOptions Opts;
  Opts.Jobs = Jobs;
  Opts.CacheDir = CacheDir;
  Opts.Incremental = Incremental;
  service::VerificationService Service(Opts);
  service::BatchReport Rep = Service.run(Files);
  std::printf("%-24s %8.2fs  %3u/%u verified  %u skipped  %u VCs "
              "solved\n",
              Label, Rep.WallMs / 1000.0, Rep.NumVerified,
              Rep.NumFunctions, Rep.NumSkippedUnchanged,
              Rep.NumSolvedVCs);
  std::fflush(stdout);
  return Rep;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Suite = Argc > 1
                          ? Argv[1]
                          : (fs::path(VCDRYAD_BENCHMARK_DIR) / "sll")
                                .string();
  unsigned Jobs = std::thread::hardware_concurrency();
  if (Argc > 2)
    Jobs = static_cast<unsigned>(std::stoul(Argv[2]));
  if (Jobs < 2)
    Jobs = 2;

  std::string Error;
  std::vector<std::string> Files =
      service::collectBatchInputs({Suite}, Error);
  if (!Error.empty() || Files.empty()) {
    std::fprintf(stderr, "error: %s\n",
                 Error.empty() ? "no .c files in suite" : Error.c_str());
    return 2;
  }
  std::printf("suite: %s (%zu files), parallel jobs: %u\n\n",
              Suite.c_str(), Files.size(), Jobs);

  fs::path CacheDir =
      fs::temp_directory_path() / "vcd-incremental-ab-cache";
  fs::remove_all(CacheDir);

  service::BatchReport Cold = runOnce(Files, Jobs, CacheDir.string(),
                                      /*Incremental=*/true, "cold");
  // The pre-incremental baseline: every function re-plans and re-hashes
  // its obligations; only the solver calls are saved by the cache.
  service::BatchReport CacheWarm =
      runOnce(Files, Jobs, CacheDir.string(),
              /*Incremental=*/false, "warm (cache only)");
  service::BatchReport IncrWarm =
      runOnce(Files, Jobs, CacheDir.string(),
              /*Incremental=*/true, "warm (incremental)");
  fs::remove_all(CacheDir);

  std::printf("\nwarm speedup over cache-only: %.2fx   skipped: %u/%u   "
              "solver calls on warm incremental run: %u\n",
              IncrWarm.WallMs > 0.0 ? CacheWarm.WallMs / IncrWarm.WallMs
                                    : 0.0,
              IncrWarm.NumSkippedUnchanged, IncrWarm.NumFunctions,
              IncrWarm.NumSolvedVCs);
  bool Ok = Cold.AllVerified && CacheWarm.AllVerified &&
            IncrWarm.AllVerified &&
            IncrWarm.NumSkippedUnchanged == IncrWarm.NumFunctions &&
            IncrWarm.NumSolvedVCs == 0;
  return Ok ? 0 : 1;
}
