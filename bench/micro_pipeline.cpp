//===- micro_pipeline.cpp - Per-stage pipeline microbenchmarks -------------==//
//
// Part of the VCDryad-Repro project.
//
// Times each stage of the verification pipeline on a representative
// benchmark (SLL reverse): parse, normalize, instrument, translate,
// passify, VC generation. Useful for spotting regressions in the
// non-solver part of the tool.
//
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "instr/Instrument.h"
#include "support/StringUtil.h"
#include "verifier/FuncTranslator.h"
#include "vir/Passify.h"
#include "vir/WpGen.h"

#include <benchmark/benchmark.h>

using namespace vcdryad;

namespace {

const std::string &sourceText() {
  static std::string Src = [] {
    std::string Path =
        std::string(VCDRYAD_BENCHMARK_DIR) + "/sll/reverse_iter.c";
    auto Content = readFile(Path);
    DiagnosticEngine Diag;
    size_t Slash = Path.find_last_of('/');
    return cfront::preprocess(*Content, Path.substr(0, Slash), Diag);
  }();
  return Src;
}

void BM_Lex(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diag;
    benchmark::DoNotOptimize(cfront::lex(sourceText(), Diag));
  }
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diag;
    benchmark::DoNotOptimize(cfront::parseProgram(sourceText(), Diag));
  }
}
BENCHMARK(BM_Parse);

void BM_NormalizeAndInstrument(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diag;
    auto Prog = cfront::parseProgram(sourceText(), Diag);
    cfront::normalizeProgram(*Prog, Diag);
    instr::InstrOptions Opts;
    instr::instrumentProgram(*Prog, Opts, Diag);
    benchmark::DoNotOptimize(Prog);
  }
}
BENCHMARK(BM_NormalizeAndInstrument);

void BM_TranslatePassifyVCGen(benchmark::State &State) {
  DiagnosticEngine Diag;
  auto Prog = cfront::parseProgram(sourceText(), Diag);
  cfront::normalizeProgram(*Prog, Diag);
  instr::InstrOptions IOpts;
  instr::instrumentProgram(*Prog, IOpts, Diag);
  const cfront::FuncDecl *F = Prog->Funcs.front().get();
  for (auto _ : State) {
    verifier::TranslateOptions TOpts;
    vir::Procedure P =
        verifier::translateFunction(*F, *Prog, TOpts, Diag);
    vir::Procedure Q = vir::passify(P);
    benchmark::DoNotOptimize(vir::generateVCs(Q));
  }
}
BENCHMARK(BM_TranslatePassifyVCGen);

} // namespace

BENCHMARK_MAIN();
