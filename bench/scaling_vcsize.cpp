//===- scaling_vcsize.cpp - Scaling of ghost code and VC size --------------==//
//
// Part of the VCDryad-Repro project.
//
// Section 5 (qualitative): the tool adds up to thousands of
// annotations per routine yet stays tractable because they live in
// simple theories. This google-benchmark harness generates synthetic
// straight-line list programs of growing length and measures each
// pipeline stage, reporting ghost-annotation and VC counts as
// counters.
//
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "instr/Instrument.h"
#include "verifier/FuncTranslator.h"
#include "verifier/Verifier.h"
#include "vir/Passify.h"
#include "vir/WpGen.h"

#include <benchmark/benchmark.h>

using namespace vcdryad;

namespace {

/// A straight-line program prepending N nodes to a list.
std::string syntheticProgram(int N) {
  std::string Src = R"(
struct node { struct node *next; int key; };
_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
  axiom (struct node *x) true ==> heaplet keys(x) == heaplet list(x);
)
struct node *chain(struct node *x)
  _(requires list(x))
  _(ensures list(result))
{
)";
  std::string Prev = "x";
  for (int I = 0; I < N; ++I) {
    std::string V = "n" + std::to_string(I);
    Src += "  struct node *" + V +
           " = (struct node *) malloc(sizeof(struct node));\n";
    Src += "  " + V + "->next = " + Prev + ";\n";
    Src += "  " + V + "->key = " + std::to_string(I) + ";\n";
    Prev = V;
  }
  Src += "  return " + Prev + ";\n}\n";
  return Src;
}

void pipelineUpToVCs(const std::string &Src, unsigned &Ghost,
                     unsigned &NumVCs) {
  DiagnosticEngine Diag;
  auto Prog = cfront::parseProgram(Src, Diag);
  cfront::normalizeProgram(*Prog, Diag);
  instr::InstrOptions IOpts;
  instr::instrumentProgram(*Prog, IOpts, Diag);
  const cfront::FuncDecl *F = Prog->findFunc("chain");
  Ghost = instr::countAnnotations(*F).Ghost;
  verifier::TranslateOptions TOpts;
  vir::Procedure P = verifier::translateFunction(*F, *Prog, TOpts, Diag);
  vir::Procedure Q = vir::passify(P);
  NumVCs = vir::generateVCs(Q).size();
}

void BM_GhostSynthesisAndVCGen(benchmark::State &State) {
  std::string Src = syntheticProgram(static_cast<int>(State.range(0)));
  unsigned Ghost = 0, NumVCs = 0;
  for (auto _ : State)
    pipelineUpToVCs(Src, Ghost, NumVCs);
  State.counters["ghost_annotations"] = Ghost;
  State.counters["vcs"] = NumVCs;
}
BENCHMARK(BM_GhostSynthesisAndVCGen)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_EndToEndVerify(benchmark::State &State) {
  std::string Src = syntheticProgram(static_cast<int>(State.range(0)));
  bool Verified = false;
  for (auto _ : State) {
    verifier::VerifyOptions Opts;
    Opts.TimeoutMs = 120000;
    verifier::Verifier V(Opts);
    verifier::ProgramResult R = V.verifySource(Src);
    Verified = R.AllVerified;
  }
  State.counters["verified"] = Verified;
}
BENCHMARK(BM_EndToEndVerify)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
