//===- watch_latency.cpp - Watch-mode save-to-verdict latency ---------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the edit loop the watch mode exists for: with a daemon
/// resident and warm (`vcdryad serve --watch`), how long from saving
/// a watched .c file to the re-verify verdict landing in the event
/// ring?  Each round appends a comment to one file (a realistic
/// no-op save), then polls `client events --since=<cursor>` until the
/// event for that file appears. The number includes the debounce
/// window, the plan rebuild, and the (cache-warm) verify itself —
/// everything a user waits for between hitting save and seeing the
/// verdict.  Prints per-save latencies plus mean/max; exits nonzero
/// unless the warm mean stays under 1 second on the SLL suite.
///
/// On platforms where the daemon reports watch mode unsupported (no
/// inotify) the harness prints a notice and exits 0.
///
/// Usage: watch_latency <vcdryad-binary> [sll-suite-dir] [saves]
///
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace vcdryad;
namespace fs = std::filesystem;

namespace {

double now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs a shell command and returns its stdout; empty on failure.
std::string capture(const std::string &Cmd) {
  std::string Out;
  FILE *P = ::popen(Cmd.c_str(), "r");
  if (!P)
    return Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  ::pclose(P);
  return Out;
}

/// Pulls the integer value of `"Key": <n>` out of a flat JSON line.
uint64_t intField(const std::string &Json, const std::string &Key) {
  std::string Needle = "\"" + Key + "\": ";
  size_t At = Json.find(Needle);
  if (At == std::string::npos)
    return 0;
  return std::strtoull(Json.c_str() + At + Needle.size(), nullptr, 10);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "error: usage: watch_latency <vcdryad-binary> "
                         "[sll-suite-dir] [saves]\n");
    return 2;
  }
  std::string Tool = Argv[1];
  std::string Suite =
      Argc > 2 ? Argv[2]
               : (fs::path(VCDRYAD_BENCHMARK_DIR) / "sll").string();
  int Saves = Argc > 3 ? std::atoi(Argv[3]) : 6;
  if (Saves < 1)
    Saves = 1;
  if (!fs::is_regular_file(Tool)) {
    std::fprintf(stderr, "error: no such binary: %s\n", Tool.c_str());
    return 2;
  }
  if (!fs::is_directory(Suite)) {
    std::fprintf(stderr, "error: no such suite: %s\n", Suite.c_str());
    return 2;
  }

  // Scratch copy so the appends never touch the checked-in suite;
  // laid out so `#include "../include/sll.h"` still resolves.
  fs::path Work = fs::temp_directory_path() / "vcd-watch-latency";
  fs::remove_all(Work);
  fs::path Corpus = Work / "corpus" / "sll";
  fs::create_directories(Corpus);
  fs::create_directories(Work / "corpus" / "include");
  std::vector<fs::path> Files;
  for (const auto &E : fs::directory_iterator(Suite))
    if (E.path().extension() == ".c") {
      fs::copy_file(E.path(), Corpus / E.path().filename());
      Files.push_back(Corpus / E.path().filename());
    }
  fs::copy_file(fs::path(Suite).parent_path() / "include" / "sll.h",
                Work / "corpus" / "include" / "sll.h");
  if (Files.empty()) {
    std::fprintf(stderr, "error: no .c files in suite: %s\n",
                 Suite.c_str());
    return 2;
  }

  fs::path Cache = Work / "daemon";
  std::string Sock = (Cache / "serve.sock").string();
  pid_t Serve = fork();
  if (Serve < 0) {
    std::fprintf(stderr, "error: fork failed\n");
    return 1;
  }
  if (Serve == 0) {
    execl(Tool.c_str(), Tool.c_str(), "serve",
          ("--cache=" + Cache.string()).c_str(),
          ("--socket=" + Sock).c_str(),
          ("--watch=" + Corpus.string()).c_str(),
          "--watch-debounce-ms=100", nullptr);
    _exit(127);
  }
  for (int I = 0; !daemon::probeSocket(Sock); ++I) {
    if (I > 100) {
      std::fprintf(stderr, "error: daemon did not come up\n");
      ::kill(Serve, SIGKILL);
      return 1;
    }
    ::usleep(100000);
  }
  std::string ClientPfx =
      Tool + " client";
  std::string ClientSfx = " --socket=" + Sock + " --json-times=off";

  std::string WatchStatus =
      capture(ClientPfx + " watch-status" + ClientSfx + " 2>/dev/null");
  if (WatchStatus.find("\"watch_supported\": false") !=
      std::string::npos) {
    std::printf("watch mode unsupported on this platform; skipping\n");
    std::system((ClientPfx + " shutdown" + ClientSfx +
                 " >/dev/null 2>&1").c_str());
    ::waitpid(Serve, nullptr, 0);
    fs::remove_all(Work);
    return 0;
  }

  // Prime: one cold verify so every later save hits warm caches and
  // resident plans — the steady state the edit loop lives in.
  std::printf("suite: %s (%zu files), saves: %d\n", Suite.c_str(),
              Files.size(), Saves);
  double T0 = now();
  if (std::system((ClientPfx + " verify " + Corpus.string() + ClientSfx +
                   " --out=/dev/null 2>/dev/null")
                      .c_str()) != 0) {
    std::fprintf(stderr, "error: priming verify failed\n");
    ::kill(Serve, SIGKILL);
    return 1;
  }
  std::printf("cold prime:            %8.1f ms\n\n", now() - T0);

  std::vector<double> Latencies;
  bool AllVerified = true;
  for (int I = 0; I < Saves; ++I) {
    const fs::path &Target = Files[static_cast<size_t>(I) % Files.size()];
    uint64_t Cursor = intField(
        capture(ClientPfx + " events" + ClientSfx), "last_seq");
    double Saved = now();
    {
      std::ofstream F(Target, std::ios::app);
      F << "// save " << I << "\n";
    } // close() fires IN_CLOSE_WRITE.
    std::string Events;
    for (;;) {
      Events = capture(ClientPfx + " events --since=" +
                       std::to_string(Cursor) + ClientSfx);
      if (Events.find(Target.filename().string()) != std::string::npos)
        break;
      if (now() - Saved > 30000.0) {
        std::fprintf(stderr, "error: no event for %s within 30s\n",
                     Target.c_str());
        ::kill(Serve, SIGKILL);
        return 1;
      }
      ::usleep(10000);
    }
    double Ms = now() - Saved;
    if (Events.find("\"verified\": true") == std::string::npos)
      AllVerified = false;
    Latencies.push_back(Ms);
    std::printf("save -> verdict %-18s %8.1f ms\n",
                Target.filename().c_str(), Ms);
  }

  std::system((ClientPfx + " shutdown" + ClientSfx +
               " >/dev/null 2>&1").c_str());
  ::waitpid(Serve, nullptr, 0);
  fs::remove_all(Work);

  double Mean = 0.0, Max = 0.0;
  for (double L : Latencies) {
    Mean += L;
    if (L > Max)
      Max = L;
  }
  Mean /= static_cast<double>(Latencies.size());
  std::printf("\n%-24s %8.1f ms\n", "save -> verdict (mean):", Mean);
  std::printf("%-24s %8.1f ms\n", "save -> verdict (max):", Max);
  if (!AllVerified) {
    std::fprintf(stderr, "error: a watched re-verify reported failure\n");
    return 1;
  }
  if (Mean >= 1000.0) {
    std::fprintf(stderr,
                 "error: warm save->verdict mean %.1f ms >= 1000 ms\n",
                 Mean);
    return 1;
  }
  std::printf("\nwarm save -> verdict stays under the 1 s budget\n");
  return 0;
}
