//===- ablation_tactics.cpp - Ablation A/B: the tactics are load-bearing ---==//
//
// Part of the VCDryad-Repro project.
//
// Section 3.3's two natural-proof tactic families — footprint
// unfolding and frame preservation — are disabled one at a time on a
// sample of routines. The paper's claim: without them, the proofs do
// not go through (the VCs become unprovable for the SMT solver).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace vcdryad;

namespace {

int runMode(const char *Label, bool Unfold, bool Preserve,
            const std::vector<std::string> &Files) {
  std::printf("%s\n", Label);
  int Verified = 0, Total = 0;
  for (const std::string &File : Files) {
    verifier::VerifyOptions Opts;
    Opts.TimeoutMs = 20000; // Failing proofs die by timeout or model.
    Opts.Instr.Unfold = Unfold;
    Opts.Instr.Preservation = Preserve;
    verifier::Verifier V(Opts);
    verifier::ProgramResult R = V.verifyFile(File);
    for (const auto &F : R.Functions) {
      ++Total;
      Verified += F.Verified;
      std::printf("  %-30s %s\n", F.Name.c_str(),
                  F.Verified ? "verified" : "failed");
    }
  }
  std::printf("  => %d/%d verified\n\n", Verified, Total);
  return Verified;
}

} // namespace

int main() {
  std::string Base = VCDRYAD_BENCHMARK_DIR;
  std::vector<std::string> Files = {
      Base + "/sll/insert_front.c",
      Base + "/sll/append_rec.c",
      Base + "/sll/reverse_iter.c",
      Base + "/bst/insert_rec.c",
      Base + "/dll/insert_front.c",
  };
  int Full = runMode("Full natural proofs:", true, true, Files);
  int NoUnfold = runMode("Ablation A (no footprint unfolding):", false,
                         true, Files);
  int NoPreserve = runMode("Ablation B (no frame preservation):", true,
                           false, Files);
  std::printf("summary: full=%d, no-unfold=%d, no-preservation=%d "
              "(paper: both tactics are required)\n",
              Full, NoUnfold, NoPreserve);
  // The ablations must lose proofs for the reproduction to hold.
  return (NoUnfold < Full && NoPreserve < Full) ? 0 : 1;
}
