//===- table1_real_world.cpp - Table 1, real-world code --------------------==//
//
// Part of the VCDryad-Repro project.
//
// Reproduces the "real world" block of Table 1: Glib singly/doubly
// linked lists, the OpenBSD queue and ExpressOS memory regions.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

int main() {
  std::printf("Table 1 (block 2/3): real-world routines\n\n");
  int Failures = vcdbench::printTableBlock(vcdbench::realWorldSuites());
  std::printf("\n%s\n", Failures ? "SOME ROUTINES FAILED"
                                 : "all routines verified");
  return Failures ? 1 : 0;
}
