//===- ablation_axioms.cpp - Ablation C: axiom instantiation modes ---------==//
//
// Part of the VCDryad-Repro project.
//
// Section 4.1/4.3: the tool keeps reasoning inside decidable theories
// by instantiating the data-structure axioms over footprint tuples.
// The ablation passes the axioms to Z3 quantified instead, leaving
// instantiation to E-matching/MBQI — the decidability discipline is
// lost and runtimes become unpredictable.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Timer.h"

using namespace vcdryad;

int main() {
  std::string Base = VCDRYAD_BENCHMARK_DIR;
  std::vector<std::string> Files = {
      Base + "/sll/reverse_iter.c",
      Base + "/sll/insert_front.c",
      Base + "/gh_sll/sl_traverse1.c",
      Base + "/sorted/find_last.c",
  };
  std::printf("%-30s %-12s %12s %s\n", "Routine", "axioms", "time (s)",
              "result");
  bool FootprintAllVerified = true;
  for (bool Quantified : {false, true}) {
    for (const std::string &File : Files) {
      verifier::VerifyOptions Opts;
      Opts.TimeoutMs = 60000;
      Opts.Instr.Axioms =
          Quantified ? instr::InstrOptions::AxiomMode::Quantified
                     : instr::InstrOptions::AxiomMode::Footprint;
      verifier::Verifier V(Opts);
      Timer T;
      verifier::ProgramResult R = V.verifyFile(File);
      for (const auto &F : R.Functions) {
        std::printf("%-30s %-12s %12.2f %s\n", F.Name.c_str(),
                    Quantified ? "quantified" : "footprint",
                    F.TimeMs / 1000.0,
                    F.Verified ? "verified" : "failed/unknown");
        std::fflush(stdout);
        if (!Quantified)
          FootprintAllVerified &= F.Verified;
      }
    }
  }
  return FootprintAllVerified ? 0 : 1;
}
