//===- remote_ab.cpp - Fleet proof-sharing A/B harness ----------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the shared proof-cache server buys a *second* machine
/// (default suites: SLL + ExpressOS). End-to-end wall-clock of
///   (a) a fully cold `vcdryad batch` — fresh cache, no remote, every
///       obligation solved;
///   (b) client B — fresh (cold) local cache each round, but a warm
///       `vcdryad cached` server populated by one client-A run: every
///       proof arrives over the wire, zero obligations reach Z3.
/// Then the failure-mode contract: with the server SIGKILLed, a run
/// with --remote-cache= still pointing at the corpse must produce the
/// same verdicts — and the same report bytes as a local-only run,
/// modulo the remote telemetry lines.
///
/// Every configuration is a real child process of the CLI binary, so
/// the numbers include process start, store load, parse, connect and
/// wire time. Prints the per-round means and the speedup behind the
/// EXPERIMENTS.md "fleet proof sharing" entry; exits nonzero unless
/// client B is zero-solve, >= 5x over cold, and byte-stable against
/// the dead server.
///
/// Usage: remote_ab <vcdryad-binary> [suite-dir ...] [rounds]
///
//===----------------------------------------------------------------------===//

#include <fcntl.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

namespace fs = std::filesystem;

namespace {

double now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs a shell command, returns its wall-clock in ms; -1 on nonzero
/// exit.
double timedRun(const std::string &Cmd) {
  double T0 = now();
  int Rc = std::system(Cmd.c_str());
  double Ms = now() - T0;
  if (Rc != 0)
    return -1.0;
  return Ms;
}

double mean(const std::vector<double> &Xs) {
  double S = 0.0;
  for (double X : Xs)
    S += X;
  return Xs.empty() ? 0.0 : S / static_cast<double>(Xs.size());
}

/// First "key": N occurrence in the report (the totals / top-level
/// cache object precedes the per-file listings).
long jsonField(const std::string &Path, const std::string &Key) {
  std::ifstream In(Path);
  std::string Line;
  std::string Needle = "\"" + Key + "\":";
  while (std::getline(In, Line)) {
    size_t P = Line.find(Needle);
    if (P == std::string::npos)
      continue;
    return std::strtol(Line.c_str() + P + Needle.size(), nullptr, 10);
  }
  return -1;
}

/// The report minus the lines that legitimately differ across cache
/// configurations: remote telemetry, cache traffic, and the cache
/// directory path.
std::string stripVariant(const std::string &Path) {
  static const char *Variant[] = {
      "\"remote_cache\":",  "\"remote_errors\":", "\"remote_hits\":",
      "\"remote_misses\":", "\"remote_wait_ms\":", "\"l1_hits\":",
      "\"l2_hits\":",       "\"hits\":",           "\"misses\":",
      "\"stores\":",        "\"cache_hits\":",     "\"cache_misses\":",
      "\"solved_vcs\":",    "\"dir\":"};
  std::ifstream In(Path);
  std::ostringstream Out;
  std::string Line;
  while (std::getline(In, Line)) {
    bool Skip = false;
    for (const char *V : Variant)
      if (Line.find(V) != std::string::npos)
        Skip = true;
    if (!Skip)
      Out << Line << '\n';
  }
  return Out.str();
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "error: usage: remote_ab <vcdryad-binary> "
                         "[suite-dir ...] [rounds]\n");
    return 2;
  }
  std::string Tool = Argv[1];
  std::vector<std::string> Suites;
  int Rounds = 3;
  for (int I = 2; I < Argc; ++I) {
    if (fs::is_directory(Argv[I]))
      Suites.push_back(Argv[I]);
    else
      Rounds = std::atoi(Argv[I]);
  }
  if (Suites.empty()) {
    Suites = {(fs::path(VCDRYAD_BENCHMARK_DIR) / "sll").string(),
              (fs::path(VCDRYAD_BENCHMARK_DIR) / "expressos").string()};
  }
  if (Rounds < 1)
    Rounds = 1;
  if (!fs::is_regular_file(Tool)) {
    std::fprintf(stderr, "error: no such binary: %s\n", Tool.c_str());
    return 2;
  }
  for (const std::string &S : Suites)
    if (!fs::is_directory(S)) {
      std::fprintf(stderr, "error: no such suite: %s\n", S.c_str());
      return 2;
    }

  fs::path Work = fs::temp_directory_path() / "vcd-remote-ab";
  fs::remove_all(Work);
  fs::create_directories(Work);
  std::string Operands;
  for (const std::string &S : Suites) {
    Operands += " " + S;
    std::printf("suite: %s\n", S.c_str());
  }
  std::printf("rounds: %d\n\n", Rounds);
  std::string Quiet = " --json-times=off 2>/dev/null";

  // The shared server, a real child process on a Unix socket.
  std::string Sock = (Work / "cached.sock").string();
  std::string Addr = "unix:" + Sock;
  pid_t Server = fork();
  if (Server < 0) {
    std::fprintf(stderr, "error: fork failed\n");
    return 1;
  }
  if (Server == 0) {
    std::string Store = "--cache=" + (Work / "server").string();
    std::string SockFlag = "--socket=" + Sock;
    int Null = ::open("/dev/null", O_WRONLY);
    if (Null >= 0) {
      ::dup2(Null, 1);
      ::dup2(Null, 2);
    }
    execl(Tool.c_str(), Tool.c_str(), "cached", Store.c_str(),
          SockFlag.c_str(), "--shards=4", nullptr);
    _exit(127);
  }
  for (int I = 0; !fs::exists(Sock); ++I) {
    if (I > 100) {
      std::fprintf(stderr, "error: cached server did not come up\n");
      ::kill(Server, SIGKILL);
      return 1;
    }
    ::usleep(100000);
  }

  // (a) fully cold: fresh cache, no remote.
  std::vector<double> Cold;
  for (int I = 0; I < Rounds; ++I) {
    fs::path C = Work / ("cold" + std::to_string(I));
    double Ms = timedRun(Tool + " batch" + Operands + " --cache=" +
                         C.string() + " --out=/dev/null" + Quiet);
    if (Ms < 0) {
      std::fprintf(stderr, "error: cold batch failed\n");
      ::kill(Server, SIGKILL);
      return 1;
    }
    Cold.push_back(Ms);
    std::printf("cold batch          round %d: %8.1f ms\n", I + 1, Ms);
  }

  // Client A populates the server (its own cold run + write-behind).
  if (timedRun(Tool + " batch" + Operands + " --cache=" +
               (Work / "cacheA").string() + " --remote-cache=" + Addr +
               " --out=/dev/null" + Quiet) < 0) {
    std::fprintf(stderr, "error: client A run failed\n");
    ::kill(Server, SIGKILL);
    return 1;
  }

  // (b) client B: cold local cache every round, warm remote.
  std::vector<double> RemoteWarm;
  bool ZeroSolve = true;
  for (int I = 0; I < Rounds; ++I) {
    fs::path C = Work / ("cacheB" + std::to_string(I));
    std::string Rep = (Work / ("b" + std::to_string(I) + ".json")).string();
    double Ms = timedRun(Tool + " batch" + Operands + " --cache=" +
                         C.string() + " --remote-cache=" + Addr +
                         " --out=" + Rep + Quiet);
    if (Ms < 0) {
      std::fprintf(stderr, "error: client B run failed\n");
      ::kill(Server, SIGKILL);
      return 1;
    }
    long Solved = jsonField(Rep, "solved_vcs");
    if (Solved != 0) {
      std::fprintf(stderr, "error: client B solved %ld VCs (want 0)\n",
                   Solved);
      ZeroSolve = false;
    }
    RemoteWarm.push_back(Ms);
    std::printf("remote-warm batch   round %d: %8.1f ms "
                "(solved_vcs=%ld)\n",
                I + 1, Ms, Solved);
  }

  // Failure mode: SIGKILL the server; verdicts and (stripped) bytes
  // must match a local-only run.
  ::kill(Server, SIGKILL);
  int Status = 0;
  ::waitpid(Server, &Status, 0);
  std::string DeadRep = (Work / "dead.json").string();
  std::string LocalRep = (Work / "local.json").string();
  bool DeadOk =
      timedRun(Tool + " batch" + Operands + " --cache=" +
               (Work / "cacheDead").string() + " --remote-cache=" + Addr +
               " --remote-timeout-ms=500 --out=" + DeadRep + Quiet) >= 0 &&
      timedRun(Tool + " batch" + Operands + " --cache=" +
               (Work / "cacheLocal").string() + " --out=" + LocalRep +
               Quiet) >= 0;
  bool ByteStable = DeadOk && stripVariant(DeadRep) == stripVariant(LocalRep);
  if (!ByteStable)
    std::fprintf(stderr, "error: dead-server report differs from "
                         "local-only report\n");

  double ColdMs = mean(Cold), WarmMs = mean(RemoteWarm);
  double Speedup = WarmMs > 0 ? ColdMs / WarmMs : 0.0;
  std::printf("\n%-28s %10.1f ms\n", "cold batch (mean):", ColdMs);
  std::printf("%-28s %10.1f ms\n", "remote-warm batch (mean):", WarmMs);
  std::printf("\nremote-warm speedup: %.1fx over cold "
              "(zero-solve: %s, dead-server byte-stable: %s)\n",
              Speedup, ZeroSolve ? "yes" : "NO",
              ByteStable ? "yes" : "NO");
  fs::remove_all(Work);
  return ZeroSolve && ByteStable && Speedup >= 5.0 ? 0 : 1;
}
