//===- table1_std_ds.cpp - Table 1, standard data structures ---------------==//
//
// Part of the VCDryad-Repro project.
//
// Reproduces the "standard data structures" block of Table 1:
// verification time per routine for singly-linked, sorted, doubly-
// linked and circular lists, BSTs, treaps, AVL trees and traversals.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

int main() {
  std::printf("Table 1 (block 1/3): standard data structures\n\n");
  int Failures = vcdbench::printTableBlock(vcdbench::stdDsSuites());
  std::printf("\n%s\n", Failures ? "SOME ROUTINES FAILED"
                                 : "all routines verified");
  return Failures ? 1 : 0;
}
