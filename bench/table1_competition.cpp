//===- table1_competition.cpp - Table 1, competition suites ----------------==//
//
// Part of the VCDryad-Repro project.
//
// Reproduces the "verification competition / related tools" block of
// Table 1: SV-COMP heap manipulation, the GRASShopper suites and the
// AFWP suite.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

int main() {
  std::printf("Table 1 (block 3/3): SV-COMP, GRASShopper, AFWP\n\n");
  int Failures = vcdbench::printTableBlock(vcdbench::competitionSuites());
  std::printf("\n%s\n", Failures ? "SOME ROUTINES FAILED"
                                 : "all routines verified");
  return Failures ? 1 : 0;
}
