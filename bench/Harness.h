//===- Harness.h - Shared benchmark-harness helpers -------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common plumbing for the Table-1 / Figure-6 harnesses: the corpus
/// layout (one directory per paper suite) and per-routine runs.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_BENCH_HARNESS_H
#define VCDRYAD_BENCH_HARNESS_H

#include "verifier/Verifier.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace vcdbench {

struct Suite {
  const char *Label; ///< Table-1 row label.
  const char *Dir;   ///< Directory under benchmarks/.
};

/// The paper's Table-1 blocks.
inline const std::vector<Suite> &stdDsSuites() {
  static const std::vector<Suite> S = {
      {"Singly-linked list", "sll"},
      {"Sorted list", "sorted"},
      {"Doubly-linked list", "dll"},
      {"Circular list", "circular"},
      {"BST", "bst"},
      {"Treap", "treap"},
      {"AVL-tree", "avl"},
      {"Tree traversals", "traversal"},
  };
  return S;
}

inline const std::vector<Suite> &realWorldSuites() {
  static const std::vector<Suite> S = {
      {"glib/gslist.c Singly-linked list", "glib_gslist"},
      {"glib/glist.c Doubly-linked list", "glib_glist"},
      {"OpenBSD Queue", "openbsd_queue"},
      {"ExpressOS MemoryRegion", "expressos"},
  };
  return S;
}

inline const std::vector<Suite> &competitionSuites() {
  static const std::vector<Suite> S = {
      {"SV-COMP Heap Manipulation", "svcomp"},
      {"GRASShopper Singly-Linked List", "gh_sll"},
      {"GRASShopper Singly-Linked List (rec)", "gh_sll_rec"},
      {"GRASShopper Doubly-Linked List", "gh_dll"},
      {"GRASShopper Sorted List I", "gh_sorted1"},
      {"GRASShopper Sorted List II", "gh_sorted2"},
      {"AFWP Singly- and Doubly-Linked List", "afwp"},
  };
  return S;
}

inline std::vector<std::string> suiteFiles(const Suite &S) {
  namespace fs = std::filesystem;
  std::vector<std::string> Out;
  fs::path Dir = fs::path(VCDRYAD_BENCHMARK_DIR) / S.Dir;
  if (!fs::exists(Dir))
    return Out;
  for (const auto &E : fs::directory_iterator(Dir))
    if (E.is_regular_file() && E.path().extension() == ".c")
      Out.push_back(E.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

/// Runs one benchmark file; returns per-function results.
inline vcdryad::verifier::ProgramResult
runFile(const std::string &Path, unsigned TimeoutMs = 420000) {
  vcdryad::verifier::VerifyOptions Opts;
  Opts.TimeoutMs = TimeoutMs;
  vcdryad::verifier::Verifier V(Opts);
  return V.verifyFile(Path);
}

/// Prints one Table-1 style block for a set of suites. Returns the
/// number of failed routines.
inline int printTableBlock(const std::vector<Suite> &Suites) {
  int Failures = 0;
  std::printf("%-40s %-30s %9s %6s  %s\n", "Benchmark", "Routine",
              "Time (s)", "VCs", "Result");
  std::printf("%.*s\n", 100,
              "-----------------------------------------------------------"
              "-----------------------------------------");
  for (const Suite &S : Suites) {
    bool First = true;
    for (const std::string &File : suiteFiles(S)) {
      vcdryad::verifier::ProgramResult R = runFile(File);
      if (!R.Ok) {
        std::printf("%-40s %-30s frontend error:\n%s\n",
                    First ? S.Label : "", File.c_str(), R.Error.c_str());
        ++Failures;
        First = false;
        continue;
      }
      for (const auto &F : R.Functions) {
        std::printf("%-40s %-30s %9.2f %6u  %s\n", First ? S.Label : "",
                    F.Name.c_str(), F.TimeMs / 1000.0, F.NumVCs,
                    F.Verified ? "verified" : "FAILED");
        std::fflush(stdout);
        Failures += F.Verified ? 0 : 1;
        First = false;
      }
    }
  }
  return Failures;
}

} // namespace vcdbench

#endif // VCDRYAD_BENCH_HARNESS_H
