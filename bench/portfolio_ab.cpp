//===- portfolio_ab.cpp - Portfolio escalation A/B harness -----------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Straggler-closure comparison of the portfolio escalation engine:
/// every routine of the selected suites is verified twice at the SAME
/// per-obligation wall budget —
///   single:    the fast -> escalate ladder with one strategy
///              (--portfolio=1, the stock configuration)
///   portfolio: the same ladder, but escalated obligations race K
///              diverse tactic profiles; the first decisive lane wins
///              and cancels its siblings
/// — and the harness reports, per function, the obligations each arm
/// left Unknown, which profile settled each portfolio escalation, and
/// the closure totals (the ISSUE's acceptance metric: obligations the
/// single-strategy escalation leaves Unknown that the portfolio
/// settles at the same total budget). The wall budget is the total
/// budget on a single-core host: all lanes share the core inside the
/// same per-obligation window a lone strategy would have used.
///
/// Any Valid/Invalid conflict between the arms is a soundness bug and
/// exits 1.
///
/// Usage: portfolio_ab [--timeout=<ms>] [--fast-timeout=<ms>]
///                     [--portfolio=<k>] [suite...]
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace vcdryad;
using namespace vcdryad::verifier;

namespace {

const char *statusName(smt::CheckStatus S) {
  switch (S) {
  case smt::CheckStatus::Valid:
    return "valid";
  case smt::CheckStatus::Invalid:
    return "invalid";
  case smt::CheckStatus::Unknown:
    return "unknown";
  }
  return "?";
}

bool settled(const VCStat &St) {
  return !St.Cancelled && St.Status != smt::CheckStatus::Unknown;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned TimeoutMs = 60000;
  unsigned FastTimeoutMs = 5000;
  unsigned Width = 3;
  std::vector<std::string> SuiteDirs;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--timeout=", 0) == 0)
      TimeoutMs = static_cast<unsigned>(std::atoi(A.c_str() + 10));
    else if (A.rfind("--fast-timeout=", 0) == 0)
      FastTimeoutMs = static_cast<unsigned>(std::atoi(A.c_str() + 15));
    else if (A.rfind("--portfolio=", 0) == 0)
      Width = static_cast<unsigned>(std::atoi(A.c_str() + 12));
    else
      SuiteDirs.push_back(A);
  }
  if (SuiteDirs.empty())
    SuiteDirs = {"sll", "afwp"};

  VerifyOptions Single;
  Single.TimeoutMs = TimeoutMs;
  Single.FastTimeoutMs = FastTimeoutMs;
  Single.StopAtFirstFailure = false; // Compare every obligation.
  Single.Portfolio = 1;

  VerifyOptions Port = Single;
  Port.Portfolio = Width;

  std::printf("portfolio A/B: timeout=%ums fast=%ums width=%u\n\n",
              TimeoutMs, FastTimeoutMs, Width);
  std::printf("%-12s %-28s %4s %9s %9s %7s %7s\n", "Suite", "Routine",
              "VCs", "unk(1)", "unk(K)", "closed", "opened");
  std::printf("%.*s\n", 84,
              "-----------------------------------------------------------"
              "-------------------------");

  unsigned Closed = 0, Opened = 0, Conflicts = 0, TotalVCs = 0;
  std::vector<std::string> ClosureLog;

  for (const std::string &DirName : SuiteDirs) {
    vcdbench::Suite S{DirName.c_str(), DirName.c_str()};
    std::vector<std::string> Files = vcdbench::suiteFiles(S);
    if (Files.empty()) {
      std::printf("%-12s (no files)\n", DirName.c_str());
      continue;
    }
    for (const std::string &File : Files) {
      Verifier VA(Single);
      ProgramResult RA = VA.verifyFile(File);
      Verifier VB(Port);
      ProgramResult RB = VB.verifyFile(File);
      if (!RA.Ok || !RB.Ok) {
        std::printf("%-12s %-28s frontend error\n", DirName.c_str(),
                    File.c_str());
        continue;
      }
      for (const FunctionResult &FA : RA.Functions) {
        const FunctionResult *FB = RB.function(FA.Name);
        if (!FB || FA.VCStats.size() != FB->VCStats.size())
          continue;
        unsigned UnkA = 0, UnkB = 0, FnClosed = 0, FnOpened = 0;
        for (size_t K = 0; K != FA.VCStats.size(); ++K) {
          const VCStat &A = FA.VCStats[K];
          const VCStat &B = FB->VCStats[K];
          ++TotalVCs;
          if (!settled(A))
            ++UnkA;
          if (!settled(B))
            ++UnkB;
          if (settled(A) && settled(B) && A.Status != B.Status) {
            std::printf("CONFLICT: %s VC%zu [%s]: single=%s portfolio=%s\n",
                        FA.Name.c_str(), K, A.Reason.c_str(),
                        statusName(A.Status), statusName(B.Status));
            ++Conflicts;
          }
          if (!settled(A) && settled(B)) {
            ++FnClosed;
            ClosureLog.push_back(
                FA.Name + " VC" + std::to_string(K) + " [" + B.Reason +
                "] -> " + statusName(B.Status) + " by " +
                (B.WinnerProfile.empty() ? "?" : B.WinnerProfile) + " in " +
                std::to_string(static_cast<long>(B.SolveTimeMs)) + "ms");
          }
          if (settled(A) && !settled(B))
            ++FnOpened;
        }
        Closed += FnClosed;
        Opened += FnOpened;
        std::printf("%-12s %-28s %4zu %9u %9u %7u %7u\n", DirName.c_str(),
                    FA.Name.c_str(), FA.VCStats.size(), UnkA, UnkB,
                    FnClosed, FnOpened);
      }
    }
  }

  std::printf("\ntotals: %u VCs, %u closed by the portfolio, %u opened, "
              "%u conflicts\n",
              TotalVCs, Closed, Opened, Conflicts);
  for (const std::string &L : ClosureLog)
    std::printf("  closed: %s\n", L.c_str());
  if (Conflicts) {
    std::printf("FAIL: portfolio changed a settled verdict\n");
    return 1;
  }
  return 0;
}
