#!/bin/sh
# Verdict-equivalence gate for the portfolio escalation engine: run
# `vcdryad batch` over a positive + negative corpus —
#   (1) the default single-strategy ladder (--portfolio=1), and
#   (2) the portfolio ladder (--portfolio=3: escalated obligations race
#       three tactic profiles, first decisive lane wins)
# — and assert the two JSON reports are byte-identical modulo
# counterexample text. Every lane solves the same obligation with a
# sound solver, so a decisive answer is the same verdict whichever
# lane produces it; any difference here is a soundness bug.
#
# A third run repeats the portfolio config and requires the
# deterministic (--json-times=off) report byte-identical to the
# second: the lane race must never leak scheduling nondeterminism
# into the report.
#
# Corpus choice matters: an obligation whose solve time is near the
# --timeout budget flips between Unknown and settled with machine
# load, and *settling* such stragglers is precisely what the
# portfolio is for — so near-budget obligations would fail this gate
# for the right reasons. The gate therefore runs cheap, decisive
# files (every obligation orders of magnitude under the budget) and
# instead forces the escalation path with --fast-timeout=1: the 1 ms
# fast pass settles (almost) nothing, so every nontrivial obligation
# reaches the portfolio race.
#
# Usage: portfolio_equiv_test.sh <vcdryad-binary> <suite-dir>...
set -eu

VCDRYAD=$1
shift

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-portfolio-equiv.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Generated negative programs: cheap Invalid obligations (the
# benchmarks/negative counterexample searches run ~60 s, too close to
# the budget — see above). One wrong postcondition, one unguarded
# dereference; both refute in milliseconds under every profile.
mkdir "$WORK/neg"
cat > "$WORK/neg/bad_abs.c" <<'EOF'
int bad_abs(int a)
  _(ensures 0 <= result)
{
  return a;
}
EOF
cat > "$WORK/neg/bad_deref.c" <<'EOF'
struct node { struct node *next; int key; };

int bad_deref(struct node *x)
  _(ensures result == 0)
{
  int a = x->key;
  return 0;
}
EOF

# --jobs=1 keeps scheduling deterministic so "first failure" agrees
# between the two configs; --json-times=off drops timing-dependent
# fields (solve times, escalations, winning profiles); --cache=off
# keeps the proof cache from short-circuiting one config with the
# other's results. Exit 1 (verification failures) is expected: the
# corpus includes negative tests.
run_batch() {
  out=$1
  shift
  "$VCDRYAD" batch "$@" "$WORK/neg" --jobs=1 --cache=off \
    --fast-timeout=1 --json-times=off --out="$out" || test $? -eq 1
}

echo "== single-strategy run =="
run_batch "$WORK/single.json" "$@" --portfolio=1
echo "== portfolio run =="
run_batch "$WORK/port.json" "$@" --portfolio=3
echo "== portfolio rerun =="
run_batch "$WORK/port2.json" "$@" --portfolio=3

# Counterexample text may legitimately differ (it belongs to whichever
# lane won the race, and different lanes surface different models for
# the same Invalid verdict — just as different solver configs do in
# the preprocess gate); verdicts, reasons and locations must not.
strip_details() {
  grep -v -E '"detail":' "$1"
}
strip_details "$WORK/single.json" > "$WORK/single.stripped"
strip_details "$WORK/port.json" > "$WORK/port.stripped"
strip_details "$WORK/port2.json" > "$WORK/port2.stripped"
if ! cmp -s "$WORK/single.stripped" "$WORK/port.stripped"; then
  echo "FAIL: portfolio changed verdicts" >&2
  diff "$WORK/single.stripped" "$WORK/port.stripped" >&2 || true
  exit 1
fi

if ! cmp -s "$WORK/port.stripped" "$WORK/port2.stripped"; then
  echo "FAIL: portfolio report not reproducible across runs" >&2
  diff "$WORK/port.stripped" "$WORK/port2.stripped" >&2 || true
  exit 1
fi

# Sanity: the run actually verified something and actually refuted
# something (an empty report would pass the comparison vacuously).
FUNCS=$(grep -c '"name":' "$WORK/port.json" || true)
FAILS=$(grep -c '"status": "failed"' "$WORK/port.json" || true)
if [ "$FUNCS" -eq 0 ] || [ "$FAILS" -eq 0 ]; then
  echo "FAIL: degenerate report ($FUNCS functions, $FAILS failures)" >&2
  exit 1
fi

echo "PASS: portfolio verdicts identical and reproducible ($FUNCS functions)"
