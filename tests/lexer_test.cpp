//===- lexer_test.cpp - Unit tests for the tokenizer -----------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Lexer.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::cfront;

namespace {

std::vector<Token> lexOk(const std::string &S) {
  DiagnosticEngine D;
  auto Toks = lex(S, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return Toks;
}

std::vector<Tok> kinds(const std::vector<Token> &Toks) {
  std::vector<Tok> Out;
  for (const Token &T : Toks)
    Out.push_back(T.Kind);
  return Out;
}

} // namespace

TEST(LexerTest, EmptyYieldsEof) {
  auto Toks = lexOk("");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_EQ(Toks[0].Kind, Tok::Eof);
}

TEST(LexerTest, IdentifiersAndInts) {
  auto Toks = lexOk("foo bar42 123");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Text, "foo");
  EXPECT_EQ(Toks[1].Text, "bar42");
  EXPECT_EQ(Toks[2].IntVal, 123);
}

TEST(LexerTest, SpecOpenIsRecognized) {
  auto Toks = lexOk("_(requires x)");
  EXPECT_EQ(Toks[0].Kind, Tok::SpecOpen);
  EXPECT_EQ(Toks[1].Text, "requires");
}

TEST(LexerTest, UnderscoreIdentifierIsNotSpecOpen) {
  auto Toks = lexOk("_x _ (");
  EXPECT_EQ(Toks[0].Kind, Tok::Ident);
  EXPECT_EQ(Toks[0].Text, "_x");
  // A lone "_" followed by whitespace then "(" is still an identifier.
  EXPECT_EQ(Toks[1].Kind, Tok::Ident);
  EXPECT_EQ(Toks[2].Kind, Tok::LParen);
}

TEST(LexerTest, MultiCharOperators) {
  auto Toks = lexOk("== != <= >= && || -> |-> ==>");
  EXPECT_EQ(kinds(Toks),
            (std::vector<Tok>{Tok::EqEq, Tok::NotEq, Tok::Le, Tok::Ge,
                              Tok::AndAnd, Tok::OrOr, Tok::Arrow,
                              Tok::PointsTo, Tok::FatArrow, Tok::Eof}));
}

TEST(LexerTest, SingleCharOperators) {
  auto Toks = lexOk("( ) { } ; , * + - ! = < > ? :");
  EXPECT_EQ(kinds(Toks),
            (std::vector<Tok>{Tok::LParen, Tok::RParen, Tok::LBrace,
                              Tok::RBrace, Tok::Semi, Tok::Comma,
                              Tok::Star, Tok::Plus, Tok::Minus, Tok::Bang,
                              Tok::Assign, Tok::Lt, Tok::Gt, Tok::Question,
                              Tok::Colon, Tok::Eof}));
}

TEST(LexerTest, LineCommentsAreSkipped) {
  auto Toks = lexOk("a // comment == foo\nb");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[1].Text, "b");
}

TEST(LexerTest, BlockCommentsAreSkipped) {
  auto Toks = lexOk("a /* x\ny */ b");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[1].Loc.Line, 2);
}

TEST(LexerTest, TracksLineAndColumn) {
  auto Toks = lexOk("a\n  b");
  EXPECT_EQ(Toks[0].Loc.Line, 1);
  EXPECT_EQ(Toks[0].Loc.Col, 1);
  EXPECT_EQ(Toks[1].Loc.Line, 2);
  EXPECT_EQ(Toks[1].Loc.Col, 3);
}

TEST(LexerTest, ReportsBadCharacters) {
  DiagnosticEngine D;
  auto Toks = lex("a @ b", D);
  EXPECT_TRUE(D.hasErrors());
  ASSERT_EQ(Toks.size(), 3u); // @ skipped.
}

TEST(LexerTest, ArrowVsMinus) {
  auto Toks = lexOk("a->b a - b");
  EXPECT_EQ(Toks[1].Kind, Tok::Arrow);
  EXPECT_EQ(Toks[4].Kind, Tok::Minus);
}

TEST(PreprocessTest, PassthroughWithoutIncludes) {
  DiagnosticEngine D;
  std::string Out = preprocess("int x;\nint y;\n", "", D);
  EXPECT_EQ(Out, "int x;\nint y;\n");
  EXPECT_FALSE(D.hasErrors());
}

TEST(PreprocessTest, MissingIncludeReported) {
  DiagnosticEngine D;
  preprocess("#include \"nope_does_not_exist.h\"\n", "/tmp", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(PreprocessTest, MalformedIncludeReported) {
  DiagnosticEngine D;
  preprocess("#include <stdio.h>\n", "", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(PreprocessTest, IncludesSplicedOnce) {
  // Create a small include file and include it twice.
  std::string Dir = ::testing::TempDir();
  std::string Path = Dir + "/vcd_pp_test.h";
  FILE *F = fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  fputs("int included;\n", F);
  fclose(F);
  DiagnosticEngine D;
  std::string Out = preprocess("#include \"vcd_pp_test.h\"\n"
                               "#include \"vcd_pp_test.h\"\n",
                               Dir, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  // Exactly one copy of the content.
  size_t First = Out.find("int included;");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Out.find("int included;", First + 1), std::string::npos);
}
