//===- wire_test.cpp - Proof-sharing wire codec tests ---------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
//
// The wire format is the fleet's compatibility contract: these tests
// pin the exact bytes (endianness included) with golden vectors,
// round-trip randomized messages, and drive the framing layer through
// every rejection path — truncation at each prefix length, corrupt
// checksums, foreign magic, future versions, oversized lengths, and
// trailing garbage inside a payload.
//
//===----------------------------------------------------------------------===//

#include "wire/Codec.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <random>
#include <string>
#include <vector>

using namespace vcdryad;
using namespace vcdryad::wire;

namespace {

std::string bytes(std::initializer_list<unsigned> L) {
  std::string S;
  for (unsigned B : L)
    S.push_back(static_cast<char>(B));
  return S;
}

//===----------------------------------------------------------------------===//
// Golden vectors: the on-wire bytes, spelled out. A failure here means
// the format changed and WireVersion must be bumped.
//===----------------------------------------------------------------------===//

TEST(WireGolden, PrimitivesAreLittleEndian) {
  std::string Out;
  packU16(Out, 0x1234);
  EXPECT_EQ(Out, bytes({0x34, 0x12}));
  Out.clear();
  packU32(Out, 0xdeadbeefu);
  EXPECT_EQ(Out, bytes({0xef, 0xbe, 0xad, 0xde}));
  Out.clear();
  packU64(Out, 0x0123456789abcdefull);
  EXPECT_EQ(Out, bytes({0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01}));
}

TEST(WireGolden, ProofRecordLayout) {
  ProofRecord R;
  R.VcHash = 0x0123456789abcdefull;
  R.OptionsHash = 0x1122334455667788ull;
  R.Verdict = 1;
  R.SolveTimeMicros = 0xff;
  R.Provenance = "ab";
  std::string Out;
  packProofRecord(Out, R);
  EXPECT_EQ(Out,
            bytes({0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01,  // vc
                   0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // opts
                   0x01,                                            // verdict
                   0xff, 0, 0, 0, 0, 0, 0, 0,                       // time
                   0x02, 0x00, 'a', 'b'}));                         // prov
}

TEST(WireGolden, EmptyFrameHeader) {
  // An Ack frame: magic "VCDW", version 1, type 8, zero-length
  // payload, checksum = FNV-1a offset basis (hash of no bytes).
  std::string F = packFrame(MsgType::Ack, "");
  EXPECT_EQ(F.size(), FrameHeaderBytes);
  EXPECT_EQ(F, bytes({'V', 'C', 'D', 'W',          // magic (LE u32)
                      0x01, 0x00,                   // version
                      0x08, 0x00,                   // type
                      0x00, 0x00, 0x00, 0x00,       // payload_len
                      0x25, 0x23, 0x22, 0x84,       // fnv1a("") LE
                      0xe4, 0x9c, 0xf2, 0xcb}));
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

ProofRecord randomRecord(std::mt19937_64 &Rng) {
  ProofRecord R;
  R.VcHash = Rng();
  R.OptionsHash = Rng();
  R.Verdict = 1;
  R.SolveTimeMicros = Rng() >> (Rng() % 64);
  size_t Len = Rng() % 32;
  for (size_t I = 0; I < Len; ++I)
    R.Provenance.push_back(static_cast<char>('a' + Rng() % 26));
  return R;
}

TEST(WireRoundTrip, RandomizedRecordsAndMessages) {
  std::mt19937_64 Rng(0xdeadbeef); // Deterministic: a seed, not time.
  for (int Iter = 0; Iter < 200; ++Iter) {
    GetRequest Get;
    Get.OptionsHash = Rng();
    size_t NKeys = Rng() % 64;
    for (size_t I = 0; I < NKeys; ++I)
      Get.Keys.push_back(Rng());
    std::string Buf;
    packGetRequest(Buf, Get);
    GetRequest Get2;
    ASSERT_TRUE((unpackExact<GetRequest, unpackGetRequest>(Buf, Get2)));
    EXPECT_EQ(Get.OptionsHash, Get2.OptionsHash);
    EXPECT_EQ(Get.Keys, Get2.Keys);

    PutRequest Put;
    size_t NRecs = Rng() % 16;
    for (size_t I = 0; I < NRecs; ++I)
      Put.Records.push_back(randomRecord(Rng));
    Buf.clear();
    packPutRequest(Buf, Put);
    PutRequest Put2;
    ASSERT_TRUE((unpackExact<PutRequest, unpackPutRequest>(Buf, Put2)));
    EXPECT_EQ(Put.Records, Put2.Records);
  }
}

TEST(WireRoundTrip, StatsResponse) {
  StatsResponse S;
  S.Shards = 8;
  S.Entries = 12345;
  S.Gets = 1;
  S.GetHits = 2;
  S.GetMisses = 3;
  S.Puts = 4;
  S.PutAccepted = 5;
  S.Connections = 6;
  std::string Buf;
  packStatsResponse(Buf, S);
  StatsResponse S2;
  ASSERT_TRUE((unpackExact<StatsResponse, unpackStatsResponse>(Buf, S2)));
  EXPECT_EQ(S2.Shards, 8u);
  EXPECT_EQ(S2.Entries, 12345u);
  EXPECT_EQ(S2.Connections, 6u);
}

TEST(WireRoundTrip, ProvenanceTruncatesAtCap) {
  ProofRecord R;
  R.Provenance.assign(MaxProvenanceBytes + 100, 'x');
  std::string Buf;
  packProofRecord(Buf, R);
  ProofRecord R2;
  ASSERT_TRUE((unpackExact<ProofRecord, unpackProofRecord>(Buf, R2)));
  EXPECT_EQ(R2.Provenance.size(), MaxProvenanceBytes);
}

//===----------------------------------------------------------------------===//
// Framing: every rejection path, never a misparse
//===----------------------------------------------------------------------===//

std::string sampleFrame() {
  GetRequest Get;
  Get.OptionsHash = 0x42;
  Get.Keys = {1, 2, 3};
  std::string Payload;
  packGetRequest(Payload, Get);
  return packFrame(MsgType::GetRequest, Payload);
}

TEST(WireFraming, CompleteFrameParses) {
  std::string F = sampleFrame();
  MsgType Type;
  std::string_view Payload;
  size_t Len = 0;
  ASSERT_EQ(peekFrame(F, Type, Payload, Len), FrameStatus::Ok);
  EXPECT_EQ(Type, MsgType::GetRequest);
  EXPECT_EQ(Len, F.size());
  GetRequest Get;
  ASSERT_TRUE((unpackExact<GetRequest, unpackGetRequest>(Payload, Get)));
  EXPECT_EQ(Get.Keys, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(WireFraming, TruncationAtEveryPrefixNeedsMore) {
  std::string F = sampleFrame();
  MsgType Type;
  std::string_view Payload;
  size_t Len = 0;
  for (size_t N = 0; N < F.size(); ++N) {
    std::string Prefix = F.substr(0, N);
    EXPECT_EQ(peekFrame(Prefix, Type, Payload, Len),
              FrameStatus::NeedMore)
        << "prefix length " << N;
  }
}

TEST(WireFraming, CorruptPayloadIsBadChecksum) {
  std::string F = sampleFrame();
  for (size_t I = FrameHeaderBytes; I < F.size(); ++I) {
    std::string Corrupt = F;
    Corrupt[I] = static_cast<char>(Corrupt[I] ^ 0x5a);
    MsgType Type;
    std::string_view Payload;
    size_t Len = 0;
    EXPECT_EQ(peekFrame(Corrupt, Type, Payload, Len),
              FrameStatus::BadChecksum)
        << "flipped payload byte " << I;
  }
}

TEST(WireFraming, ForeignMagicRejected) {
  std::string F = sampleFrame();
  F[0] = 'X';
  MsgType Type;
  std::string_view Payload;
  size_t Len = 0;
  EXPECT_EQ(peekFrame(F, Type, Payload, Len), FrameStatus::BadMagic);
  // An HTTP request (the classic wrong-port accident) must not parse.
  std::string Http = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(peekFrame(Http, Type, Payload, Len), FrameStatus::BadMagic);
}

TEST(WireFraming, FutureVersionFailsClosed) {
  std::string F = sampleFrame();
  F[4] = 0x02; // version LE low byte
  MsgType Type;
  std::string_view Payload;
  size_t Len = 0;
  EXPECT_EQ(peekFrame(F, Type, Payload, Len), FrameStatus::BadVersion);
}

TEST(WireFraming, OversizedLengthRejected) {
  std::string F = sampleFrame();
  // payload_len sits at offset 8; write 4 MiB + 1, little-endian.
  uint32_t Huge = MaxPayloadBytes + 1;
  for (int I = 0; I < 4; ++I)
    F[8 + I] = static_cast<char>((Huge >> (8 * I)) & 0xff);
  MsgType Type;
  std::string_view Payload;
  size_t Len = 0;
  EXPECT_EQ(peekFrame(F, Type, Payload, Len), FrameStatus::Oversized);
}

TEST(WireFraming, TrailingBytesInsidePayloadRejected) {
  // unpackExact is the anti-smuggling gate: a payload with valid
  // leading structure but extra bytes is a framing error.
  GetRequest Get;
  Get.Keys = {7};
  std::string Payload;
  packGetRequest(Payload, Get);
  Payload.push_back('\0');
  GetRequest Out;
  EXPECT_FALSE((unpackExact<GetRequest, unpackGetRequest>(Payload, Out)));
}

TEST(WireFraming, TruncatedPayloadStructureRejected) {
  PutRequest Put;
  Put.Records.push_back(ProofRecord{});
  std::string Payload;
  packPutRequest(Payload, Put);
  for (size_t N = 4; N < Payload.size(); ++N) {
    PutRequest Out;
    EXPECT_FALSE((unpackExact<PutRequest, unpackPutRequest>(
        std::string_view(Payload).substr(0, N), Out)))
        << "payload prefix " << N;
  }
}

TEST(WireFraming, BackToBackFramesPeelOneAtATime) {
  std::string Stream = sampleFrame() + packFrame(MsgType::Ack, "");
  MsgType Type;
  std::string_view Payload;
  size_t Len = 0;
  ASSERT_EQ(peekFrame(Stream, Type, Payload, Len), FrameStatus::Ok);
  EXPECT_EQ(Type, MsgType::GetRequest);
  std::string Rest = Stream.substr(Len);
  ASSERT_EQ(peekFrame(Rest, Type, Payload, Len), FrameStatus::Ok);
  EXPECT_EQ(Type, MsgType::Ack);
  EXPECT_TRUE(Payload.empty());
}

TEST(WireStoreKey, FoldsBothComponents) {
  uint64_t K = storeKey(1, 2);
  EXPECT_NE(K, storeKey(1, 3));
  EXPECT_NE(K, storeKey(2, 2));
  EXPECT_EQ(K, storeKey(1, 2)); // Deterministic.
}

} // namespace
