#!/bin/sh
# End-to-end proof-cache gate: run `vcdryad batch` over the AFWP suite
# twice with a shared cache directory and assert
#   (1) both runs report identical verification outcomes, and
#   (2) the warm run is >= 90% cache hits.
#
# Usage: batch_cache_test.sh <vcdryad-binary> <benchmark-dir>
#
# The JSON report prints one key per line precisely so that shell
# gates like this one can grep/awk it without a JSON parser.
set -eu

VCDRYAD=$1
SUITE=$2

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-batch-cache.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

run_batch() {
  # Tolerate exit 1 (verification failures): on slow hardware the
  # suite's long-tail routines can exceed the default solver timeout.
  # The gate below still requires the two runs to agree exactly —
  # timeouts are never cached, so a warm run re-solves them.
  "$VCDRYAD" batch "$SUITE" --jobs=4 --cache="$WORK/cache" \
    --json-times=off --out="$1" || test $? -eq 1
}

echo "== cold run =="
run_batch "$WORK/cold.json"
echo "== warm run =="
run_batch "$WORK/warm.json"

# (1) Identical outcomes: the reports must match except for the cache
# traffic counters (hits/misses/stores differ cold vs warm by design).
strip_counters() {
  grep -v -E '"(hits|misses|stores|cache_hits|cache_misses)":' "$1"
}
strip_counters "$WORK/cold.json" > "$WORK/cold.stripped"
strip_counters "$WORK/warm.json" > "$WORK/warm.stripped"
if ! cmp -s "$WORK/cold.stripped" "$WORK/warm.stripped"; then
  echo "FAIL: warm run outcomes differ from cold run" >&2
  diff "$WORK/cold.stripped" "$WORK/warm.stripped" >&2 || true
  exit 1
fi

# (2) Warm hit rate: the top-level cache object is the only place the
# bare "hits"/"misses" keys occur.
HITS=$(awk -F': ' '/"hits":/ {gsub(/,/, "", $2); print $2; exit}' \
  "$WORK/warm.json")
MISSES=$(awk -F': ' '/"misses":/ {gsub(/,/, "", $2); print $2; exit}' \
  "$WORK/warm.json")
TOTAL=$((HITS + MISSES))
if [ "$TOTAL" -eq 0 ]; then
  echo "FAIL: warm run solved no obligations" >&2
  exit 1
fi
# hits * 10 >= total * 9  <=>  hit rate >= 90%, in integer arithmetic.
if [ $((HITS * 10)) -lt $((TOTAL * 9)) ]; then
  echo "FAIL: warm hit rate below 90% ($HITS hits / $TOTAL lookups)" >&2
  exit 1
fi

echo "PASS: identical outcomes; warm hit rate $HITS/$TOTAL"
