#!/bin/sh
# End-to-end proof-cache gate: run `vcdryad batch` over the AFWP suite
# twice with a shared cache directory and assert
#   (1) both runs report identical verification outcomes, and
#   (2) the warm run is >= 90% cache hits.
#
# Usage: batch_cache_test.sh <vcdryad-binary> <benchmark-dir>
#
# The JSON report prints one key per line precisely so that shell
# gates like this one can grep/awk it without a JSON parser.
set -eu

VCDRYAD=$1
SUITE=$2

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-batch-cache.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

run_batch() {
  # Tolerate exit 1 (verification failures): on slow hardware the
  # suite's long-tail routines can exceed the solver timeout. The
  # gate below still requires the two runs to agree — timeouts are
  # never cached, so a warm run re-solves them. Use the same 300s
  # budget as the tier-1 corpus test: under the CLI's 60s default the
  # suite's hardest obligation sits *at* the budget on slow hardware,
  # so its verdict would flip with machine load between the runs.
  "$VCDRYAD" batch "$SUITE" --jobs=4 --cache="$WORK/cache" \
    --timeout=300000 --json-times=off --out="$1" || test $? -eq 1
}

echo "== cold run =="
run_batch "$WORK/cold.json"
echo "== warm run =="
run_batch "$WORK/warm.json"

# (1) Identical outcomes: the reports must match except for the cache
# traffic counters (hits/misses/stores differ cold vs warm by design)
# and the identity of the reported first failure. A function with
# several obligations near the solver's wall-clock budget keeps its
# failed status across runs, but *which* near-budget obligation times
# out first depends on machine load — timeouts are never cached, so
# the warm run re-solves them. The gate therefore compares verdicts
# (per-function status, counts, totals), not failure coordinates.
strip_counters() {
  # solved_vcs counts obligations that reached Z3, which is exactly
  # what a warm cache avoids — it differs cold vs warm by design.
  grep -v -E '"(hits|misses|stores|cache_hits|cache_misses|l1_hits|l2_hits|remote_hits|remote_misses|remote_errors|remote_wait_ms|remote_cache|solved_vcs|reason|loc|detail)":' "$1"
}
strip_counters "$WORK/cold.json" > "$WORK/cold.stripped"
strip_counters "$WORK/warm.json" > "$WORK/warm.stripped"
if ! cmp -s "$WORK/cold.stripped" "$WORK/warm.stripped"; then
  echo "FAIL: warm run outcomes differ from cold run" >&2
  diff "$WORK/cold.stripped" "$WORK/warm.stripped" >&2 || true
  exit 1
fi

# (2) Warm hit rate: the top-level cache object is the only place the
# bare "hits"/"misses" keys occur.
HITS=$(awk -F': ' '/"hits":/ {gsub(/,/, "", $2); print $2; exit}' \
  "$WORK/warm.json")
MISSES=$(awk -F': ' '/"misses":/ {gsub(/,/, "", $2); print $2; exit}' \
  "$WORK/warm.json")
TOTAL=$((HITS + MISSES))
if [ "$TOTAL" -eq 0 ]; then
  echo "FAIL: warm run solved no obligations" >&2
  exit 1
fi
# hits * 10 >= total * 9  <=>  hit rate >= 90%, in integer arithmetic.
if [ $((HITS * 10)) -lt $((TOTAL * 9)) ]; then
  echo "FAIL: warm hit rate below 90% ($HITS hits / $TOTAL lookups)" >&2
  exit 1
fi

echo "PASS: identical outcomes; warm hit rate $HITS/$TOTAL"
