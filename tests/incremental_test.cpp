//===- incremental_test.cpp - Incremental re-verification tests ------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the build-system semantics of incremental
/// re-verification: the stable function fingerprint (whitespace
/// stability, dependency-closure invalidation, modularity against
/// callee body edits), the persisted VC manifest (round-trip, dedupe,
/// compaction), the manifest key, the cache-directory resolution
/// rules, and the scheduler's skip-unchanged path end to end.
///
//===----------------------------------------------------------------------===//

#include "cfront/FuncHash.h"
#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "service/Manifest.h"
#include "service/Service.h"
#include "smt/VcHash.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace vcdryad;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Function fingerprint
//===----------------------------------------------------------------------===//

/// Parses + normalizes \p Source and fingerprints function \p Name.
uint64_t fpOf(const std::string &Source, const std::string &Name) {
  DiagnosticEngine Diag;
  std::unique_ptr<cfront::Program> Prog =
      cfront::parseProgram(Source, Diag);
  EXPECT_TRUE(Prog != nullptr && !Diag.hasErrors()) << Diag.str();
  if (!Prog)
    return 0;
  cfront::normalizeProgram(*Prog, Diag);
  EXPECT_FALSE(Diag.hasErrors()) << Diag.str();
  for (const auto &F : Prog->Funcs)
    if (F->Name == Name)
      return cfront::fingerprintFunction(*F, *Prog);
  ADD_FAILURE() << "function not found: " << Name;
  return 0;
}

const char *SllDefs = R"(
struct node {
  struct node *next;
  int key;
};

_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));

  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));

  axiom (struct node *x)
      true ==> heaplet keys(x) == heaplet list(x);
)
)";

std::string sllProgram(const std::string &Defs,
                       const std::string &Funcs) {
  return Defs + "\n" + Funcs;
}

const char *InsertFront = R"(
struct node *insert_front(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = x;
  n->key = k;
  return n;
}
)";

TEST(FuncFingerprintTest, WhitespaceAndCommentEditsAreStable) {
  std::string A = sllProgram(SllDefs, InsertFront);
  std::string B = sllProgram(SllDefs, R"(
// a brand-new comment

struct node *insert_front(struct node   *x,   int k)
  _(requires list(x))
  _(ensures  list(result))
{
  // reflowed whitespace, same tokens
  struct node *n = (struct node *) malloc(sizeof(struct node));

  n->next = x;
  n->key  = k;
  return n;
}
)");
  EXPECT_EQ(fpOf(A, "insert_front"), fpOf(B, "insert_front"));
}

TEST(FuncFingerprintTest, BodyEditChangesFingerprint) {
  std::string A = sllProgram(SllDefs, InsertFront);
  std::string B = A;
  size_t Pos = B.find("n->key = k;");
  ASSERT_NE(Pos, std::string::npos);
  B.replace(Pos, 11, "n->key = k + 1;");
  EXPECT_NE(fpOf(A, "insert_front"), fpOf(B, "insert_front"));
}

TEST(FuncFingerprintTest, ContractEditChangesFingerprint) {
  std::string A = sllProgram(SllDefs, InsertFront);
  std::string B = A;
  size_t Pos = B.find("_(ensures list(result))");
  ASSERT_NE(Pos, std::string::npos);
  B.replace(Pos, 23, "_(ensures list(result))\n  _(ensures k == k)");
  EXPECT_NE(fpOf(A, "insert_front"), fpOf(B, "insert_front"));
}

TEST(FuncFingerprintTest, SpecDefinitionEditInvalidatesDependents) {
  // A semantics-preserving but AST-visible edit to list(): every
  // function whose closure contains list must change fingerprint.
  std::string Edited(SllDefs);
  size_t Pos = Edited.find("(x == nil && emp)");
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, 17, "(nil == x && emp)");
  EXPECT_NE(fpOf(sllProgram(SllDefs, InsertFront), "insert_front"),
            fpOf(sllProgram(Edited, InsertFront), "insert_front"));
}

TEST(FuncFingerprintTest, AxiomEditInvalidatesDependents) {
  std::string Edited(SllDefs);
  size_t Pos = Edited.find("heaplet keys(x) == heaplet list(x)");
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, 34, "heaplet list(x) == heaplet keys(x)");
  EXPECT_NE(fpOf(sllProgram(SllDefs, InsertFront), "insert_front"),
            fpOf(sllProgram(Edited, InsertFront), "insert_front"));
}

const char *CallerCallee = R"(
int twice(int a)
  _(ensures result == a + a)
{
  return a + a;
}

int quad(int a)
  _(ensures result == a + a + a + a)
{
  return twice(twice(a));
}
)";

TEST(FuncFingerprintTest, CalleeBodyEditDoesNotInvalidateCaller) {
  // Verification is modular: quad's proof reads only twice's contract.
  std::string B(CallerCallee);
  size_t Pos = B.find("return a + a;");
  ASSERT_NE(Pos, std::string::npos);
  B.replace(Pos, 13, "return a + a + 0;");
  EXPECT_NE(fpOf(CallerCallee, "twice"), fpOf(B, "twice"));
  EXPECT_EQ(fpOf(CallerCallee, "quad"), fpOf(B, "quad"));
}

TEST(FuncFingerprintTest, CalleeContractEditInvalidatesCaller) {
  std::string B(CallerCallee);
  size_t Pos = B.find("_(ensures result == a + a)");
  ASSERT_NE(Pos, std::string::npos);
  B.replace(Pos, 26, "_(ensures result == a + a + 0)");
  EXPECT_NE(fpOf(CallerCallee, "quad"), fpOf(B, "quad"));
}

TEST(FuncFingerprintTest, UnrelatedFunctionEditDoesNotInvalidate) {
  std::string B(CallerCallee);
  B += R"(
int unrelated(int a)
  _(ensures result == a)
{
  return a;
}
)";
  EXPECT_EQ(fpOf(CallerCallee, "quad"), fpOf(B, "quad"));
  EXPECT_EQ(fpOf(CallerCallee, "twice"), fpOf(B, "twice"));
}

TEST(FuncFingerprintTest, DepsClosureCoversSpecsAndCallees) {
  DiagnosticEngine Diag;
  std::unique_ptr<cfront::Program> Prog =
      cfront::parseProgram(sllProgram(SllDefs, InsertFront), Diag);
  ASSERT_TRUE(Prog != nullptr && !Diag.hasErrors()) << Diag.str();
  cfront::normalizeProgram(*Prog, Diag);
  const cfront::FuncDecl *F = nullptr;
  for (const auto &Fn : Prog->Funcs)
    if (Fn->Name == "insert_front")
      F = Fn.get();
  ASSERT_NE(F, nullptr);
  cfront::FuncDeps Deps = cfront::collectFuncDeps(*F, *Prog);
  EXPECT_TRUE(Deps.Defs.count("list"));
  // keys() is not named by insert_front's specs, but it is pertinent
  // to struct node (the instrumentation unfolds it at dereferences).
  EXPECT_TRUE(Deps.Defs.count("keys"));
  EXPECT_TRUE(Deps.Structs.count("node"));
  EXPECT_TRUE(Deps.Callees.empty());
}

//===----------------------------------------------------------------------===//
// Manifest key
//===----------------------------------------------------------------------===//

TEST(FunctionKeyTest, SensitiveToEveryComponent) {
  smt::SolverOptions SO;
  uint64_t K = smt::hashFunctionKey(1, 2, SO, false);
  EXPECT_NE(K, smt::hashFunctionKey(9, 2, SO, false)); // content
  EXPECT_NE(K, smt::hashFunctionKey(1, 9, SO, false)); // pipeline
  EXPECT_NE(K, smt::hashFunctionKey(1, 2, SO, true));  // vacuity
  smt::SolverOptions SO2 = SO;
  SO2.TimeoutMs += 1;
  EXPECT_NE(K, smt::hashFunctionKey(1, 2, SO2, false)); // solver opts
  EXPECT_EQ(K, smt::hashFunctionKey(1, 2, SO, false));  // deterministic
}

//===----------------------------------------------------------------------===//
// Manifest persistence
//===----------------------------------------------------------------------===//

class TempDirTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = fs::path(::testing::TempDir()) /
          ("vcd_incr_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  fs::path Dir;
};

using ManifestTest = TempDirTest;

TEST_F(ManifestTest, RoundTripThroughDisk) {
  std::string MDir = (Dir / "cache").string();
  service::ManifestEntry E;
  E.Name = "insert_front";
  E.Manual = 3;
  E.Ghost = 17;
  E.VcKeys = {0xdeadbeefull, 0x1ull, 0xffffffffffffffffull};
  {
    service::VcManifest M(MDir);
    EXPECT_EQ(M.openError(), "");
    EXPECT_FALSE(M.lookup(7));
    M.record(7, E);
    EXPECT_TRUE(M.lookup(7));
    // flush() runs in the destructor.
  }
  service::VcManifest Reloaded(MDir);
  EXPECT_EQ(Reloaded.size(), 1u);
  std::optional<service::ManifestEntry> Hit = Reloaded.lookup(7);
  ASSERT_TRUE(Hit);
  EXPECT_EQ(Hit->Name, "insert_front");
  EXPECT_EQ(Hit->Manual, 3u);
  EXPECT_EQ(Hit->Ghost, 17u);
  EXPECT_EQ(Hit->VcKeys, E.VcKeys);
  EXPECT_FALSE(Reloaded.lookup(8));
  service::ManifestStats S = Reloaded.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  // peek() reads without skewing the statistics.
  EXPECT_TRUE(Reloaded.peek(7));
  EXPECT_EQ(Reloaded.stats().Hits, 1u);
}

TEST_F(ManifestTest, DuplicateKeysDedupeLastWriteWins) {
  std::string MDir = (Dir / "cache").string();
  fs::create_directories(MDir);
  {
    std::ofstream Store(fs::path(MDir) / "manifest-v1.txt");
    Store << hashToHex(5) << " V stale 1 1 0\n"
          << hashToHex(6) << " V other 0 0 0\n"
          << hashToHex(5) << " V fresh 2 2 1 " << hashToHex(9) << "\n";
  }
  service::VcManifest M(MDir);
  EXPECT_EQ(M.size(), 2u);
  std::optional<service::ManifestEntry> Hit = M.lookup(5);
  ASSERT_TRUE(Hit);
  EXPECT_EQ(Hit->Name, "fresh");
  ASSERT_EQ(Hit->VcKeys.size(), 1u);
  EXPECT_EQ(Hit->VcKeys[0], 9u);
}

TEST_F(ManifestTest, TornAndForeignLinesAreSkipped) {
  std::string MDir = (Dir / "cache").string();
  fs::create_directories(MDir);
  {
    std::ofstream Store(fs::path(MDir) / "manifest-v1.txt");
    Store << "not a manifest line\n"
          << hashToHex(1) << " V ok 0 0 2 " << hashToHex(2) << "\n"
          << hashToHex(3) << " V short_vc_list 0 0 3 " << hashToHex(4)
          << "\n"
          << hashToHex(5) << " V trailing 0 0 0 garbage\n"
          << hashToHex(6) << " V good 1 2 1 " << hashToHex(7) << "\n";
  }
  service::VcManifest M(MDir);
  EXPECT_EQ(M.size(), 1u); // Only the last line is well-formed.
  EXPECT_TRUE(M.lookup(6));
}

TEST_F(ManifestTest, RepeatedFlushCyclesKeepOneLinePerKey) {
  // Regression for append-style duplication: N open/record/flush
  // cycles over the same key must leave exactly one line for it.
  std::string MDir = (Dir / "cache").string();
  for (int I = 0; I != 5; ++I) {
    service::VcManifest M(MDir);
    service::ManifestEntry E;
    E.Name = "f";
    E.Manual = static_cast<unsigned>(I);
    M.record(42, E);
    M.flush();
    M.flush(); // Clean second flush must not rewrite or duplicate.
  }
  std::ifstream In(fs::path(MDir) / "manifest-v1.txt");
  std::string Line;
  unsigned Lines = 0;
  while (std::getline(In, Line))
    if (!Line.empty())
      ++Lines;
  EXPECT_EQ(Lines, 1u);
  service::VcManifest M(MDir);
  std::optional<service::ManifestEntry> Hit = M.lookup(42);
  ASSERT_TRUE(Hit);
  EXPECT_EQ(Hit->Manual, 4u); // Last cycle's entry won.
}

TEST_F(ManifestTest, SiblingFlushersMergeNotClobber) {
  std::string MDir = (Dir / "cache").string();
  service::VcManifest A(MDir);
  service::VcManifest B(MDir);
  service::ManifestEntry E;
  E.Name = "a";
  A.record(100, E);
  E.Name = "b";
  B.record(200, E);
  B.flush();
  A.flush(); // Must fold B's on-disk entry in, not overwrite it.
  service::VcManifest Reloaded(MDir);
  EXPECT_EQ(Reloaded.size(), 2u);
  EXPECT_TRUE(Reloaded.lookup(100));
  EXPECT_TRUE(Reloaded.lookup(200));
}

//===----------------------------------------------------------------------===//
// Cache directory resolution
//===----------------------------------------------------------------------===//

TEST_F(ManifestTest, ResolveCacheDirAnchorsAtOperands) {
  std::string Corpus = (Dir / "suite").string();
  fs::create_directories(Corpus);
  std::string File = (fs::path(Corpus) / "a.c").string();
  std::ofstream(File) << "\n";

  // Empty = disabled, whatever the operands.
  EXPECT_EQ(service::resolveCacheDir("", true, {Corpus}), "");

  // The default anchors at the operand: directory operand -> inside
  // it; file operand -> beside it.
  EXPECT_EQ(service::resolveCacheDir(".vcdryad-cache", false, {Corpus}),
            (fs::path(Corpus) / ".vcdryad-cache").lexically_normal()
                .string());
  EXPECT_EQ(service::resolveCacheDir(".vcdryad-cache", false, {File}),
            (fs::path(Corpus) / ".vcdryad-cache").lexically_normal()
                .string());

  // Explicit relative --cache= anchors the same way; explicit
  // absolute is taken as-is.
  EXPECT_EQ(service::resolveCacheDir("c", true, {Corpus}),
            (fs::path(Corpus) / "c").lexically_normal().string());
  std::string Abs = (Dir / "abs-cache").string();
  EXPECT_EQ(service::resolveCacheDir(Abs, true, {Corpus}), Abs);

  // $VCDRYAD_CACHE_DIR pins the default (but never beats --cache=).
  std::string Pinned = (Dir / "pinned").string();
  ::setenv("VCDRYAD_CACHE_DIR", Pinned.c_str(), 1);
  EXPECT_EQ(service::resolveCacheDir(".vcdryad-cache", false, {Corpus}),
            Pinned);
  EXPECT_EQ(service::resolveCacheDir("c", true, {Corpus}),
            (fs::path(Corpus) / "c").lexically_normal().string());
  ::unsetenv("VCDRYAD_CACHE_DIR");
}

//===----------------------------------------------------------------------===//
// Scheduler: skip-unchanged end to end
//===----------------------------------------------------------------------===//

class IncrementalServiceTest : public TempDirTest {
protected:
  void writeFile(const char *Name, const char *Text) {
    std::ofstream Out(Dir / "suite" / Name);
    Out << Text;
  }

  void writeCorpus() {
    fs::create_directories(Dir / "suite");
    writeFile("a_min.c", R"(
int min2(int a, int b)
  _(ensures result <= a && result <= b)
{
  if (a < b)
    return a;
  return b;
}
)");
    writeFile("b_pair.c", R"(
int clamp0(int a)
  _(ensures 0 <= result)
{
  if (a < 0)
    return 0;
  return a;
}

int add3(int a)
  _(ensures result == a + 3)
{
  return a + 1 + 2;
}
)");
    writeFile("c_bad.c", R"(
int bad_abs(int a)
  _(ensures 0 <= result)
{
  return a;
}
)");
  }

  service::BatchReport run(bool Incremental = true,
                           unsigned Jobs = 4) {
    service::ServiceOptions Opts;
    Opts.Jobs = Jobs;
    Opts.CacheDir = (Dir / "cache").string();
    Opts.Incremental = Incremental;
    Opts.Verify.TimeoutMs = 30000;
    service::VerificationService Service(Opts);
    std::string Error;
    std::vector<std::string> Inputs =
        service::collectBatchInputs({(Dir / "suite").string()}, Error);
    EXPECT_EQ(Error, "");
    return Service.run(Inputs);
  }
};

TEST_F(IncrementalServiceTest, WarmRunSkipsEveryValidFunction) {
  writeCorpus();
  service::BatchReport Cold = run();
  EXPECT_TRUE(Cold.IncrementalEnabled);
  EXPECT_EQ(Cold.NumSkippedUnchanged, 0u);
  EXPECT_GT(Cold.NumSolvedVCs, 0u);
  EXPECT_EQ(Cold.Manifest.Records, 3u); // bad_abs must NOT be recorded.
  EXPECT_EQ(Cold.NumVerified, 3u);
  EXPECT_EQ(Cold.NumFailed, 1u);

  service::BatchReport Warm = run();
  EXPECT_EQ(Warm.NumSkippedUnchanged, 3u);
  EXPECT_EQ(Warm.NumVerified, 3u);
  EXPECT_EQ(Warm.NumFailed, 1u); // The failure re-verifies every run:
  // its Invalid obligation is never cached (only Valid persists), so
  // it alone reaches Z3 again; everything else is skipped or warm.
  EXPECT_GT(Warm.NumSolvedVCs, 0u);
  EXPECT_LT(Warm.NumSolvedVCs, Cold.NumSolvedVCs);
  EXPECT_EQ(Warm.Manifest.Records, 0u);
  for (const service::FileReport &F : Warm.Files)
    for (const service::FunctionReport &Fn : F.Functions)
      if (Fn.SkippedUnchanged)
        EXPECT_EQ(Fn.SolvedVCs, 0u) << Fn.Result.Name;

  // Replayed shape matches the cold run: VC and annotation counts.
  ASSERT_EQ(Warm.Files.size(), Cold.Files.size());
  for (size_t I = 0; I != Warm.Files.size(); ++I) {
    ASSERT_EQ(Warm.Files[I].Functions.size(),
              Cold.Files[I].Functions.size());
    for (size_t J = 0; J != Warm.Files[I].Functions.size(); ++J) {
      const service::FunctionReport &W = Warm.Files[I].Functions[J];
      const service::FunctionReport &C = Cold.Files[I].Functions[J];
      EXPECT_EQ(W.Result.Verified, C.Result.Verified);
      EXPECT_EQ(W.Result.NumVCs, C.Result.NumVCs);
      EXPECT_EQ(W.Result.Annotations.Manual, C.Result.Annotations.Manual);
      EXPECT_EQ(W.Result.Annotations.Ghost, C.Result.Annotations.Ghost);
      EXPECT_EQ(W.SkippedUnchanged, C.Result.Verified);
      if (W.SkippedUnchanged)
        EXPECT_NE(W.ManifestKey, 0u);
    }
  }
}

TEST_F(IncrementalServiceTest, EditReverifiesExactlyTheEditedFunction) {
  writeCorpus();
  service::BatchReport Cold = run();
  ASSERT_EQ(Cold.NumVerified, 3u);

  // Comment/whitespace-only edit: still everything-skipped.
  writeFile("a_min.c", R"(
// an explanatory comment

int min2(int a,   int b)
  _(ensures result <= a && result <= b)
{
  if (a < b)
    return a;

  return b;
}
)");
  service::BatchReport Same = run();
  EXPECT_EQ(Same.NumSkippedUnchanged, 3u);
  ASSERT_GE(Same.Files.size(), 1u);
  ASSERT_EQ(Same.Files[0].Functions.size(), 1u);
  EXPECT_TRUE(Same.Files[0].Functions[0].SkippedUnchanged);

  // Real body edit: exactly min2 re-verifies (clamp0, add3 stay
  // skipped), with the same verdict as a cold run.
  writeFile("a_min.c", R"(
int min2(int a, int b)
  _(ensures result <= a && result <= b)
{
  if (b > a)
    return a;
  return b;
}
)");
  service::BatchReport Edited = run();
  EXPECT_EQ(Edited.NumSkippedUnchanged, 2u);
  EXPECT_GT(Edited.NumSolvedVCs, 0u);
  EXPECT_EQ(Edited.NumVerified, 3u);
  ASSERT_GE(Edited.Files.size(), 1u);
  ASSERT_EQ(Edited.Files[0].Functions.size(), 1u);
  EXPECT_FALSE(Edited.Files[0].Functions[0].SkippedUnchanged);
  EXPECT_TRUE(Edited.Files[0].Functions[0].Result.Verified);
}

TEST_F(IncrementalServiceTest, OptionEditsInvalidateTheManifest) {
  writeCorpus();
  run();
  // A pipeline-option change (timeout is part of the key) must force
  // full re-verification even though no source changed.
  service::ServiceOptions Opts;
  Opts.Jobs = 4;
  Opts.CacheDir = (Dir / "cache").string();
  Opts.Incremental = true;
  Opts.Verify.TimeoutMs = 30001;
  service::VerificationService Service(Opts);
  std::string Error;
  std::vector<std::string> Inputs =
      service::collectBatchInputs({(Dir / "suite").string()}, Error);
  service::BatchReport R = Service.run(Inputs);
  EXPECT_EQ(R.NumSkippedUnchanged, 0u);
}

TEST_F(IncrementalServiceTest, QuantifiedAxiomModeDisablesIncremental) {
  writeCorpus();
  service::ServiceOptions Opts;
  Opts.Jobs = 2;
  Opts.CacheDir = (Dir / "cache").string();
  Opts.Incremental = true;
  Opts.Verify.TimeoutMs = 30000;
  Opts.Verify.Instr.Axioms = instr::InstrOptions::AxiomMode::Quantified;
  service::VerificationService Service(Opts);
  std::string Error;
  std::vector<std::string> Inputs =
      service::collectBatchInputs({(Dir / "suite").string()}, Error);
  service::BatchReport R = Service.run(Inputs);
  EXPECT_FALSE(R.IncrementalEnabled);
  EXPECT_EQ(R.NumSkippedUnchanged, 0u);
}

TEST_F(IncrementalServiceTest, ChangedOnlyJsonOmitsSkippedFunctions) {
  writeCorpus();
  run();
  service::BatchReport Warm = run();
  ASSERT_EQ(Warm.NumSkippedUnchanged, 3u);
  std::string Full = service::toJson(Warm, /*IncludeTimes=*/false);
  std::string Changed = service::toJson(Warm, /*IncludeTimes=*/false,
                                        /*ChangedOnly=*/true);
  EXPECT_NE(Full.find("\"min2\""), std::string::npos);
  EXPECT_NE(Full.find("\"skipped_unchanged\": true"), std::string::npos);
  EXPECT_EQ(Changed.find("\"min2\""), std::string::npos);
  EXPECT_NE(Changed.find("\"bad_abs\""), std::string::npos);
  // Totals still count the skipped functions in both views.
  EXPECT_NE(Changed.find("\"skipped_unchanged\": 3"), std::string::npos);
}

} // namespace
