#!/bin/sh
# Verdict-equivalence gate for the VC preprocessing engine: run
# `vcdryad batch` over a positive + negative corpus twice —
#   (1) the default pipeline (simplify + slice + timeout ladder), and
#   (2) the baseline (--no-preprocess --fast-timeout=0: one-shot full
#       guards at the full budget)
# — and assert the two JSON reports are byte-identical modulo
# counterexample text. The ladder only trusts Valid answers from the
# sliced fast pass and escalates everything else unsliced, so any
# difference here is a soundness bug, not a tuning artifact.
#
# Usage: preprocess_equiv_test.sh <vcdryad-binary> <suite-dir>...
set -eu

VCDRYAD=$1
shift

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-preproc-equiv.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# --jobs=1 keeps scheduling deterministic so "first failure" agrees
# between the two configs; --json-times=off drops timing-dependent
# fields (solve times, escalation counts); --cache=off keeps the
# proof cache from short-circuiting one config with the other's
# results. Exit 1 (verification failures) is expected: the corpus
# includes negative tests.
run_batch() {
  out=$1
  shift
  "$VCDRYAD" batch "$@" --jobs=1 --cache=off \
    --json-times=off --out="$out" || test $? -eq 1
}

echo "== preprocessed run =="
run_batch "$WORK/pre.json" "$@"
echo "== baseline run =="
run_batch "$WORK/base.json" "$@" --no-preprocess --fast-timeout=0

# Counterexample text may legitimately differ (a sliced-then-escalated
# query and a one-shot query can surface different models for the same
# Invalid verdict); verdicts, reasons and locations must not.
strip_details() {
  # solved_vcs legitimately differs: preprocessing settles trivial
  # obligations without a solver call, the baseline solves them all.
  grep -v -E '"(detail|solved_vcs)":' "$1"
}
strip_details "$WORK/pre.json" > "$WORK/pre.stripped"
strip_details "$WORK/base.json" > "$WORK/base.stripped"
if ! cmp -s "$WORK/pre.stripped" "$WORK/base.stripped"; then
  echo "FAIL: preprocessing changed verdicts" >&2
  diff "$WORK/pre.stripped" "$WORK/base.stripped" >&2 || true
  exit 1
fi

# Sanity: the run actually verified something (an empty report would
# pass the comparison vacuously).
FUNCS=$(grep -c '"name":' "$WORK/pre.json" || true)
if [ "$FUNCS" -eq 0 ]; then
  echo "FAIL: no functions in report" >&2
  exit 1
fi

echo "PASS: verdicts identical with and without preprocessing ($FUNCS functions)"
