//===- watch_test.cpp - Watch-mode primitive tests -------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the service-side watch-mode building blocks: path
/// canonicalization (the resident plan cache's key normalization),
/// include-closure computation, the debouncer's quiet-window policy
/// (time injected, fully deterministic), the bounded event ring, and
/// the watch registry's path -> owners reverse map. The daemon's
/// end-to-end watch loop (inotify, debounced re-verify, event
/// polling) is covered by tests/watch_test.sh.
///
//===----------------------------------------------------------------------===//

#include "service/Service.h"
#include "service/Watch.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace vcdryad;
namespace fs = std::filesystem;

namespace {

class WatchTempDirTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = fs::path(::testing::TempDir()) /
          ("vcd_watch_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  void writeFile(const std::string &Rel, const std::string &Text) {
    fs::path P = Dir / Rel;
    fs::create_directories(P.parent_path());
    std::ofstream Out(P);
    Out << Text;
  }

  fs::path Dir;
};

//===----------------------------------------------------------------------===//
// canonicalPath
//===----------------------------------------------------------------------===//

using WatchPathTest = WatchTempDirTest;

TEST_F(WatchPathTest, FoldsDotSegments) {
  writeFile("foo.c", "int x;\n");
  std::string Canon = service::canonicalPath((Dir / "foo.c").string());
  EXPECT_EQ(service::canonicalPath((Dir / "." / "foo.c").string()),
            Canon);
  EXPECT_EQ(service::canonicalPath((Dir / "sub" / ".." / "foo.c").string()),
            Canon);
}

TEST_F(WatchPathTest, ResolvesSymlinks) {
  writeFile("real.c", "int x;\n");
  std::error_code EC;
  fs::create_symlink(Dir / "real.c", Dir / "link.c", EC);
  if (EC)
    GTEST_SKIP() << "filesystem does not support symlinks";
  EXPECT_EQ(service::canonicalPath((Dir / "link.c").string()),
            service::canonicalPath((Dir / "real.c").string()));
}

TEST_F(WatchPathTest, NonexistentPathsNormalizeStably) {
  // No realpath to resolve, but two spellings of the same missing
  // file must still land on one key.
  std::string A =
      service::canonicalPath((Dir / "missing.c").string());
  std::string B =
      service::canonicalPath((Dir / "." / "missing.c").string());
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A.empty());
}

//===----------------------------------------------------------------------===//
// includeClosure
//===----------------------------------------------------------------------===//

TEST_F(WatchPathTest, IncludeClosureIsFilePlusTransitiveIncludes) {
  writeFile("include/h2.h", "int two;\n");
  writeFile("include/h1.h", "#include \"h2.h\"\nint one;\n");
  writeFile("src/foo.c", "#include \"../include/h1.h\"\nint foo;\n");
  std::vector<std::string> Closure =
      service::includeClosure((Dir / "src" / "foo.c").string());
  ASSERT_EQ(Closure.size(), 3u);
  // The file itself leads; includes follow sorted and canonical.
  EXPECT_EQ(Closure[0],
            service::canonicalPath((Dir / "src" / "foo.c").string()));
  EXPECT_EQ(Closure[1],
            service::canonicalPath((Dir / "include" / "h1.h").string()));
  EXPECT_EQ(Closure[2],
            service::canonicalPath((Dir / "include" / "h2.h").string()));
}

TEST_F(WatchPathTest, IncludeClosureOfUnreadableFileIsJustTheFile) {
  std::vector<std::string> Closure =
      service::includeClosure((Dir / "gone.c").string());
  ASSERT_EQ(Closure.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Debouncer
//===----------------------------------------------------------------------===//

TEST(WatchDebounceTest, IdleMeansNoDeadline) {
  service::Debouncer D(100);
  EXPECT_EQ(D.nextDeadlineMs(1000), -1);
  EXPECT_TRUE(D.takeRipe(1000).empty());
  EXPECT_EQ(D.pending(), 0u);
}

TEST(WatchDebounceTest, RipensOnlyAfterQuietWindow) {
  service::Debouncer D(100);
  D.note("/a.c", 1000);
  EXPECT_EQ(D.pending(), 1u);
  EXPECT_EQ(D.nextDeadlineMs(1000), 100);
  EXPECT_EQ(D.nextDeadlineMs(1060), 40);
  EXPECT_TRUE(D.takeRipe(1099).empty()); // One ms early: not yet.
  std::vector<std::string> Ripe = D.takeRipe(1100);
  ASSERT_EQ(Ripe.size(), 1u);
  EXPECT_EQ(Ripe[0], "/a.c");
  EXPECT_EQ(D.pending(), 0u);
}

TEST(WatchDebounceTest, BurstCoalescesAndRestartsTheWindow) {
  // The editor save dance: several writes in quick succession must
  // produce ONE ripe notification, timed from the LAST write.
  service::Debouncer D(100);
  D.note("/a.c", 1000);
  D.note("/a.c", 1050);
  D.note("/a.c", 1090);
  EXPECT_EQ(D.pending(), 1u);
  EXPECT_TRUE(D.takeRipe(1100).empty()); // 1000 + 100, but restarted.
  EXPECT_TRUE(D.takeRipe(1189).empty());
  std::vector<std::string> Ripe = D.takeRipe(1190);
  ASSERT_EQ(Ripe.size(), 1u);
  EXPECT_TRUE(D.takeRipe(2000).empty()); // Consumed; nothing left.
}

TEST(WatchDebounceTest, PathsRipenIndependently) {
  service::Debouncer D(100);
  D.note("/a.c", 1000);
  D.note("/b.c", 1080);
  EXPECT_EQ(D.nextDeadlineMs(1090), 10); // /a.c is the oldest.
  std::vector<std::string> First = D.takeRipe(1100);
  ASSERT_EQ(First.size(), 1u);
  EXPECT_EQ(First[0], "/a.c");
  EXPECT_EQ(D.pending(), 1u);
  std::vector<std::string> Second = D.takeRipe(1180);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_EQ(Second[0], "/b.c");
}

TEST(WatchDebounceTest, SimultaneouslyRipePathsReturnSorted) {
  service::Debouncer D(10);
  D.note("/z.c", 1000);
  D.note("/a.c", 1000);
  std::vector<std::string> Ripe = D.takeRipe(1010);
  ASSERT_EQ(Ripe.size(), 2u);
  EXPECT_EQ(Ripe[0], "/a.c");
  EXPECT_EQ(Ripe[1], "/z.c");
}

//===----------------------------------------------------------------------===//
// EventRing
//===----------------------------------------------------------------------===//

service::WatchEvent mkEvent(const std::string &Path) {
  service::WatchEvent E;
  E.Path = Path;
  E.Trigger = Path;
  E.Verified = true;
  return E;
}

TEST(WatchRingTest, SequencesAreMonotonicFromOne) {
  service::EventRing Ring(8);
  EXPECT_EQ(Ring.lastSeq(), 0u);
  EXPECT_EQ(Ring.append(mkEvent("/a.c")), 1u);
  EXPECT_EQ(Ring.append(mkEvent("/b.c")), 2u);
  EXPECT_EQ(Ring.lastSeq(), 2u);
  EXPECT_EQ(Ring.size(), 2u);
}

TEST(WatchRingTest, SinceCursorReturnsOnlyNewer) {
  service::EventRing Ring(8);
  Ring.append(mkEvent("/a.c"));
  Ring.append(mkEvent("/b.c"));
  Ring.append(mkEvent("/c.c"));
  std::vector<service::WatchEvent> All = Ring.since(0);
  ASSERT_EQ(All.size(), 3u);
  EXPECT_EQ(All[0].Seq, 1u);
  std::vector<service::WatchEvent> Tail = Ring.since(2);
  ASSERT_EQ(Tail.size(), 1u);
  EXPECT_EQ(Tail[0].Path, "/c.c");
  EXPECT_TRUE(Ring.since(3).empty());
  EXPECT_TRUE(Ring.since(99).empty()); // Future cursors are harmless.
}

TEST(WatchRingTest, EvictsOldestBeyondCapacity) {
  service::EventRing Ring(3);
  for (int I = 0; I < 5; ++I)
    Ring.append(mkEvent("/f" + std::to_string(I) + ".c"));
  EXPECT_EQ(Ring.size(), 3u);
  EXPECT_EQ(Ring.lastSeq(), 5u); // Sequences never reset on eviction.
  std::vector<service::WatchEvent> Kept = Ring.since(0);
  ASSERT_EQ(Kept.size(), 3u);
  EXPECT_EQ(Kept[0].Seq, 3u); // 1 and 2 were evicted.
  EXPECT_EQ(Kept[2].Seq, 5u);
}

//===----------------------------------------------------------------------===//
// WatchRegistry
//===----------------------------------------------------------------------===//

using WatchRegistryTest = WatchTempDirTest;

TEST_F(WatchRegistryTest, AddRegistersClosureAndReverseMap) {
  writeFile("include/sll.h", "int h;\n");
  writeFile("src/a.c", "#include \"../include/sll.h\"\nint a;\n");
  service::WatchRegistry Reg;
  std::string A = (Dir / "src" / "a.c").string();
  service::WatchRegistry::Delta D = Reg.add(A);
  EXPECT_EQ(D.File, service::canonicalPath(A));
  EXPECT_EQ(D.Added.size(), 2u); // The file and the header.
  EXPECT_TRUE(D.Removed.empty());
  EXPECT_EQ(Reg.fileCount(), 1u);
  EXPECT_EQ(Reg.pathCount(), 2u);
  EXPECT_TRUE(Reg.contains(A));

  std::string H =
      service::canonicalPath((Dir / "include" / "sll.h").string());
  std::vector<std::string> Owners = Reg.owners(H);
  ASSERT_EQ(Owners.size(), 1u);
  EXPECT_EQ(Owners[0], service::canonicalPath(A));
  // The .c file owns itself.
  EXPECT_EQ(Reg.owners(service::canonicalPath(A)).size(), 1u);
}

TEST_F(WatchRegistryTest, SharedHeaderHasAllOwners) {
  writeFile("include/sll.h", "int h;\n");
  writeFile("src/a.c", "#include \"../include/sll.h\"\nint a;\n");
  writeFile("src/b.c", "#include \"../include/sll.h\"\nint b;\n");
  service::WatchRegistry Reg;
  Reg.add((Dir / "src" / "a.c").string());
  Reg.add((Dir / "src" / "b.c").string());
  std::vector<std::string> Owners = Reg.owners(
      service::canonicalPath((Dir / "include" / "sll.h").string()));
  EXPECT_EQ(Owners.size(), 2u); // A header edit re-verifies both.
}

TEST_F(WatchRegistryTest, ReAddRefreshesTheClosure) {
  writeFile("h1.h", "int one;\n");
  writeFile("h2.h", "int two;\n");
  writeFile("a.c", "#include \"h1.h\"\nint a;\n");
  service::WatchRegistry Reg;
  std::string A = (Dir / "a.c").string();
  Reg.add(A);
  EXPECT_EQ(Reg.owners(service::canonicalPath((Dir / "h1.h").string()))
                .size(),
            1u);
  // The edit swaps h1 for h2; re-adding must move the watch edges.
  writeFile("a.c", "#include \"h2.h\"\nint a;\n");
  service::WatchRegistry::Delta D = Reg.add(A);
  ASSERT_EQ(D.Added.size(), 1u);
  EXPECT_EQ(D.Added[0],
            service::canonicalPath((Dir / "h2.h").string()));
  ASSERT_EQ(D.Removed.size(), 1u);
  EXPECT_EQ(D.Removed[0],
            service::canonicalPath((Dir / "h1.h").string()));
  EXPECT_TRUE(
      Reg.owners(service::canonicalPath((Dir / "h1.h").string()))
          .empty());
}

TEST_F(WatchRegistryTest, RemoveDropsAllEdges) {
  writeFile("h.h", "int h;\n");
  writeFile("a.c", "#include \"h.h\"\nint a;\n");
  service::WatchRegistry Reg;
  std::string A = (Dir / "a.c").string();
  Reg.add(A);
  service::WatchRegistry::Delta D = Reg.remove(A);
  EXPECT_EQ(D.File, service::canonicalPath(A));
  EXPECT_EQ(D.Removed.size(), 2u);
  EXPECT_EQ(Reg.fileCount(), 0u);
  EXPECT_EQ(Reg.pathCount(), 0u);
  // Removing an unknown file is a no-op, not an error.
  EXPECT_TRUE(Reg.remove(A).File.empty());
}

TEST_F(WatchRegistryTest, SpellingsCollapseToOneRegistration) {
  writeFile("a.c", "int a;\n");
  service::WatchRegistry Reg;
  Reg.add((Dir / "a.c").string());
  Reg.add((Dir / "." / "a.c").string());
  EXPECT_EQ(Reg.fileCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Resident plan cache keying (the canonicalization bugfix)
//===----------------------------------------------------------------------===//

using WatchPlanCacheTest = WatchTempDirTest;

TEST_F(WatchPlanCacheTest, PlanCacheKeysAreCanonical) {
  writeFile("min.c", R"(
int min2(int a, int b)
  _(ensures result <= a && result <= b)
  _(ensures result == a || result == b)
{
  if (a < b)
    return a;
  return b;
}
)");
  service::ServiceOptions Opts;
  Opts.ResidentPlans = true;
  service::VerificationService Svc(Opts);
  std::string Plain = (Dir / "min.c").string();
  std::string Dotted = (Dir / "." / "min.c").string();
  // Two spellings of one file in one batch: one resident plan, and
  // both report entries keep their as-given paths.
  service::BatchReport Rep = Svc.run({Plain, Dotted});
  ASSERT_EQ(Rep.Files.size(), 2u);
  EXPECT_EQ(Rep.Files[0].Path, Plain);
  EXPECT_EQ(Rep.Files[1].Path, Dotted);
  EXPECT_EQ(Svc.residentPlanCount(), 1u);
  // A re-run under yet another spelling reuses the plan too.
  Svc.run({Dotted});
  EXPECT_EQ(Svc.residentPlanCount(), 1u);
}

TEST_F(WatchPlanCacheTest, SymlinkSpellingSharesThePlan) {
  writeFile("real.c", R"(
int id(int a)
  _(ensures result == a)
{
  return a;
}
)");
  std::error_code EC;
  fs::create_symlink(Dir / "real.c", Dir / "alias.c", EC);
  if (EC)
    GTEST_SKIP() << "filesystem does not support symlinks";
  service::ServiceOptions Opts;
  Opts.ResidentPlans = true;
  service::VerificationService Svc(Opts);
  Svc.run({(Dir / "real.c").string()});
  EXPECT_EQ(Svc.residentPlanCount(), 1u);
  Svc.run({(Dir / "alias.c").string()});
  EXPECT_EQ(Svc.residentPlanCount(), 1u); // Hit, not a second plan.
}

} // namespace
