#!/bin/sh
# CLI contract gate for the batch/check flags:
#   (1) --jobs=0 explicitly means "hardware concurrency" — accepted,
#       and the report's resolved job count is >= 1;
#   (2) --portfolio=0 is rejected as a usage error (exit 2) with a
#       diagnostic, not silently treated as 1;
#   (3) a relative cache path (including the default .vcdryad-cache)
#       anchors at the first operand's directory, so invocations from
#       different CWDs share one cache — the second run must be warm;
#   (4) $VCDRYAD_CACHE_DIR pins the cache location when --cache= is
#       not given;
#   (5) --cache=off disables caching.
#
# Usage: cli_flags_test.sh <vcdryad-binary>
set -eu

VCDRYAD=$1
case "$VCDRYAD" in
  /*) ;;
  *) VCDRYAD=$(pwd)/$VCDRYAD ;; # The test cd's around below.
esac

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-cli-flags.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

mkdir "$WORK/suite"
cat > "$WORK/suite/ok.c" <<'EOF'
int id1(int a)
  _(ensures result == a)
{
  return a;
}
EOF

field() { # field <file> <key> -> first value of the key
  awk -F': ' "/\"$2\":/ {gsub(/,/, \"\", \$2); print \$2; exit}" "$1"
}

echo "== --jobs=0 means hardware concurrency =="
"$VCDRYAD" batch "$WORK/suite" --jobs=0 --cache=off \
  --out="$WORK/jobs0.json"
JOBS=$(field "$WORK/jobs0.json" jobs)
if [ -z "$JOBS" ] || [ "$JOBS" -lt 1 ]; then
  echo "FAIL: --jobs=0 resolved to '$JOBS' workers (want >= 1)" >&2
  exit 1
fi

echo "== --portfolio=0 is rejected =="
if "$VCDRYAD" batch "$WORK/suite" --portfolio=0 --cache=off \
     > /dev/null 2> "$WORK/portfolio0.err"; then
  echo "FAIL: --portfolio=0 was accepted" >&2
  exit 1
fi
if ! grep -q "portfolio" "$WORK/portfolio0.err"; then
  echo "FAIL: --portfolio=0 rejected without a diagnostic" >&2
  cat "$WORK/portfolio0.err" >&2
  exit 1
fi

echo "== default cache anchors at the corpus, not the CWD =="
(cd "$WORK" && "$VCDRYAD" batch suite --out="$WORK/cwd1.json")
mkdir "$WORK/elsewhere"
(cd "$WORK/elsewhere" && "$VCDRYAD" batch ../suite \
   --out="$WORK/cwd2.json")
if [ ! -d "$WORK/suite/.vcdryad-cache" ]; then
  echo "FAIL: cache not created beside the corpus" >&2
  exit 1
fi
if [ -d "$WORK/.vcdryad-cache" ] || \
   [ -d "$WORK/elsewhere/.vcdryad-cache" ]; then
  echo "FAIL: cache leaked into a working directory" >&2
  exit 1
fi
HITS=$(field "$WORK/cwd2.json" hits)
if [ "$HITS" -lt 1 ]; then
  echo "FAIL: second run from another CWD missed the cache" >&2
  exit 1
fi

echo "== VCDRYAD_CACHE_DIR pins the location =="
(cd "$WORK" && VCDRYAD_CACHE_DIR="$WORK/pinned" "$VCDRYAD" batch suite \
   --out="$WORK/env.json")
if [ ! -d "$WORK/pinned" ]; then
  echo "FAIL: \$VCDRYAD_CACHE_DIR was ignored" >&2
  exit 1
fi

echo "== --cache=off disables caching =="
"$VCDRYAD" batch "$WORK/suite" --cache=off --out="$WORK/off.json"
if ! grep -q '"enabled": false' "$WORK/off.json"; then
  echo "FAIL: --cache=off did not disable the cache" >&2
  exit 1
fi

echo "PASS: jobs=0 -> $JOBS workers; portfolio=0 rejected;" \
     "cache anchored at corpus; env pin and off honored"
