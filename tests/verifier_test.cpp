//===- verifier_test.cpp - End-to-end verification tests -------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Positive tests (programs that must verify) and — crucially for a
/// sound-but-incomplete system — negative tests: buggy programs and
/// wrong specifications the verifier must reject.
///
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::verifier;

namespace {

const char *SLL = R"(
struct node { struct node *next; int key; };
_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
  axiom (struct node *x) true ==> heaplet keys(x) == heaplet list(x);
)
)";

ProgramResult run(const std::string &Src, VerifyOptions Opts = {}) {
  if (!Opts.TimeoutMs)
    Opts.TimeoutMs = 30000;
  Verifier V(Opts);
  return V.verifySource(Src);
}

void expectVerified(const std::string &Src) {
  ProgramResult R = run(Src);
  ASSERT_TRUE(R.Ok) << R.Error;
  for (const FunctionResult &F : R.Functions) {
    EXPECT_TRUE(F.Verified) << F.Name << " failed: "
                            << (F.Failures.empty()
                                    ? ""
                                    : F.Failures[0].Reason);
  }
}

void expectFailed(const std::string &Src, const std::string &Fn) {
  ProgramResult R = run(Src);
  ASSERT_TRUE(R.Ok) << R.Error;
  const FunctionResult *F = R.function(Fn);
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->Verified) << Fn << " unexpectedly verified";
}

} // namespace

//===----------------------------------------------------------------------===//
// Heap-free programs
//===----------------------------------------------------------------------===//

TEST(VerifierBasicTest, ArithmeticPost) {
  expectVerified(R"(
int add(int a, int b)
  _(requires a >= 0 && b >= 0)
  _(ensures result == a + b && result >= 0)
{ return a + b; }
)");
}

TEST(VerifierBasicTest, WrongArithmeticPostFails) {
  expectFailed(R"(
int add(int a, int b)
  _(ensures result == a + b)
{ return a - b; }
)",
               "add");
}

TEST(VerifierBasicTest, BranchesAndMax) {
  expectVerified(R"(
int max(int a, int b)
  _(ensures result >= a && result >= b)
  _(ensures result == a || result == b)
{
  if (a >= b) return a;
  return b;
}
)");
}

TEST(VerifierBasicTest, LoopWithInvariant) {
  expectVerified(R"(
int sumto(int n)
  _(requires n >= 0)
  _(ensures result >= 0)
{
  int i = 0;
  int s = 0;
  while (i < n)
    _(invariant s >= 0 && i >= 0)
  {
    s = s + i;
    i = i + 1;
  }
  return s;
}
)");
}

TEST(VerifierBasicTest, NonInductiveInvariantFails) {
  expectFailed(R"(
int count(int n)
  _(requires n >= 0)
  _(ensures result == 0)
{
  int i = 0;
  while (i < n)
    _(invariant i == 0)
  { i = i + 1; }
  return 0;
}
)",
               "count");
}

TEST(VerifierBasicTest, MissingReturnDetected) {
  expectFailed(R"(
int f(int a)
  _(ensures result == 0)
{
  if (a > 0) return 0;
}
)",
               "f");
}

TEST(VerifierBasicTest, UserAssertChecked) {
  expectFailed(R"(
void f(int a)
  _(requires a > 0)
{ _(assert a > 1) }
)",
               "f");
  expectVerified(R"(
void f(int a)
  _(requires a > 1)
{ _(assert a > 0) }
)");
}

TEST(VerifierBasicTest, CalleeContractUsed) {
  expectVerified(R"(
int inc(int a)
  _(ensures result == a + 1)
{ return a + 1; }

int inc2(int a)
  _(ensures result == a + 2)
{ return inc(inc(a)); }
)");
}

TEST(VerifierBasicTest, CalleePreconditionChecked) {
  expectFailed(R"(
int half(int a)
  _(requires a >= 0)
  _(ensures result >= 0)
{ return a; }

int bad(int a)
  _(ensures result >= 0)
{ return half(a); }
)",
               "bad");
}

//===----------------------------------------------------------------------===//
// Heap programs
//===----------------------------------------------------------------------===//

TEST(VerifierHeapTest, NullDereferenceCaught) {
  expectFailed(std::string(SLL) + R"(
int get(struct node *x)
  _(requires list(x))
{ return x->key; }
)",
               "get");
}

TEST(VerifierHeapTest, GuardedDereferenceOk) {
  expectVerified(std::string(SLL) + R"(
int get(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures result in keys(x))
{
  int k = x->key;
  return k;
}
)");
}

TEST(VerifierHeapTest, WriteOutsideHeapletCaught) {
  // x is a bare pointer with no ownership: writing through it must
  // fail the ownership check.
  expectFailed(std::string(SLL) + R"(
void set(struct node *x, int k)
  _(requires x != nil)
{ x->key = k; }
)",
               "set");
}

TEST(VerifierHeapTest, PointsToGrantsWrite) {
  expectVerified(std::string(SLL) + R"(
void set(struct node *x, int k)
  _(requires x |->)
  _(ensures x |-> && x->key == k)
{ x->key = k; }
)");
}

TEST(VerifierHeapTest, InsertFrontVerifies) {
  expectVerified(std::string(SLL) + R"(
struct node *insert_front(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = x;
  n->key = k;
  return n;
}
)");
}

TEST(VerifierHeapTest, InsertFrontWrongKeysFails) {
  expectFailed(std::string(SLL) + R"(
struct node *insert_front(struct node *x, int k)
  _(requires list(x))
  _(ensures keys(result) == old(keys(x)))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = x;
  n->key = k;
  return n;
}
)",
               "insert_front");
}

TEST(VerifierHeapTest, BrokenLinkFails) {
  // Forgetting to link the node: n->next stays garbage.
  expectFailed(std::string(SLL) + R"(
struct node *mk(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->key = k;
  return n;
}
)",
               "mk");
}

TEST(VerifierHeapTest, LeakDetectedByHeapletPost) {
  // Dropping the old list: the exit heaplet no longer matches the
  // ensures heaplet (G contains the leaked cells).
  expectFailed(std::string(SLL) + R"(
struct node *drop(struct node *x)
  _(requires list(x))
  _(ensures list(result) && keys(result) == emptyset)
{
  return NULL;
}
)",
               "drop");
}

TEST(VerifierHeapTest, FreeOutsideHeapletCaught) {
  expectFailed(std::string(SLL) + R"(
void rel(struct node *x)
  _(requires x != nil)
{ free(x); }
)",
               "rel");
}

TEST(VerifierHeapTest, DoubleFreeCaught) {
  expectFailed(std::string(SLL) + R"(
void rel(struct node *x)
  _(requires x |->)
  _(ensures true)
{
  free(x);
  free(x);
}
)",
               "rel");
}

TEST(VerifierHeapTest, RecursiveCallVerifies) {
  expectVerified(std::string(SLL) + R"(
struct node *append(struct node *x, struct node *y)
  _(requires list(x) * list(y))
  _(ensures list(result))
{
  if (x == NULL)
    return y;
  struct node *t = append(x->next, y);
  x->next = t;
  return x;
}
)");
}

TEST(VerifierHeapTest, SepRequiresRejectsSharing) {
  // Passing the same list twice cannot satisfy a separating pre.
  expectFailed(std::string(SLL) + R"(
void two(struct node *a, struct node *b)
  _(requires list(a) * list(b))
  _(ensures true)
{ }

void share(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures true)
{ two(x, x); }
)",
               "share");
}

//===----------------------------------------------------------------------===//
// Ghost-assumption consistency (soundness regression tests)
//===----------------------------------------------------------------------===//

// The synthesized ghost assumptions must stay satisfiable: an
// `assert false` must never verify. Two historical bugs are pinned
// here: (1) the malloc freshness fact once compared the fresh cell
// against its own footprint entry (`n != n`); (2) the nil-outside-
// heaplet fact was once emitted unguarded, contradicting the unfold
// of segment heaplets at degenerate arguments like lseg$hp(nil, y).

static const char *SegmentPrelude = R"(
struct node { struct node *next; int key; };
_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
  predicate lseg(struct node *x, struct node *y) =
      (x == y && emp) || (x != y && x |-> * lseg(x->next, y));
  axiom (struct node *x) true ==> heaplet keys(x) == heaplet list(x);
)
)";

TEST(VerifierConsistencyTest, AssertFalseNeverVerifies) {
  expectFailed(std::string(SegmentPrelude) + R"(
int f(struct node *x)
  _(requires list(x))
{ _(assert false) return 0; }
)",
               "f");
}

TEST(VerifierConsistencyTest, AssertFalseAfterMallocNeverVerifies) {
  expectFailed(std::string(SegmentPrelude) + R"(
struct node *mk(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->key = k;
  _(assert false)
  return n;
}
)",
               "mk");
}

TEST(VerifierConsistencyTest, AssertFalseAfterUpdateAndCall) {
  expectFailed(std::string(SegmentPrelude) + R"(
void touch(struct node *x) _(requires list(x)) _(ensures list(x)) ;
void g(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures true)
{
  x->key = 1;
  touch(x);
  _(assert false)
}
)",
               "g");
}

TEST(VerifierConsistencyTest, VacuityCheckPassesOnHealthyProgram) {
  VerifyOptions Opts;
  Opts.CheckVacuity = true;
  Opts.TimeoutMs = 60000;
  ProgramResult R = run(std::string(SLL) + R"(
struct node *id(struct node *x)
  _(requires list(x))
  _(ensures list(result))
{ return x; }
)",
                        Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Functions[0].Verified);
}

//===----------------------------------------------------------------------===//
// Pipeline robustness
//===----------------------------------------------------------------------===//

TEST(VerifierDriverTest, FrontendErrorsReported) {
  ProgramResult R = run("int f( { return 0; }");
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

TEST(VerifierDriverTest, OnlyFunctionFilter) {
  VerifyOptions Opts;
  Opts.OnlyFunction = "g";
  ProgramResult R = run(R"(
int f() _(ensures result == 1) { return 0; }
int g() _(ensures result == 1) { return 1; }
)",
                        Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Functions.size(), 1u);
  EXPECT_EQ(R.Functions[0].Name, "g");
  EXPECT_TRUE(R.Functions[0].Verified);
}

TEST(VerifierDriverTest, DeclarationsAreNotVerified) {
  ProgramResult R = run("int f(int a) _(ensures result == a) ;");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(R.Functions.empty());
}

TEST(VerifierDriverTest, AnnotationStatsPopulated) {
  ProgramResult R = run(std::string(SLL) + R"(
struct node *id(struct node *x)
  _(requires list(x))
  _(ensures list(result))
{ return x; }
)");
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Functions.size(), 1u);
  EXPECT_EQ(R.Functions[0].Annotations.Manual, 2u);
  EXPECT_GT(R.Functions[0].Annotations.Ghost, 0u);
}

//===----------------------------------------------------------------------===//
// Ablations (the natural-proof tactics are load-bearing)
//===----------------------------------------------------------------------===//

TEST(VerifierAblationTest, NoUnfoldBreaksHeapProof) {
  VerifyOptions Opts;
  Opts.Instr.Unfold = false;
  Opts.TimeoutMs = 10000;
  ProgramResult R = run(std::string(SLL) + R"(
struct node *insert_front(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = x;
  n->key = k;
  return n;
}
)",
                        Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Functions[0].Verified);
}

TEST(VerifierAblationTest, NoPreservationBreaksFrameProof) {
  VerifyOptions Opts;
  Opts.Instr.Preservation = false;
  Opts.TimeoutMs = 10000;
  ProgramResult R = run(std::string(SLL) + R"(
struct node *insert_front(struct node *x, int k)
  _(requires list(x))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
  _(ensures list(result))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = x;
  n->key = k;
  return n;
}
)",
                        Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Functions[0].Verified);
}
