//===- lexpr_test.cpp - Unit tests for VIR expressions ---------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/LExpr.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::vir;

TEST(LExprTest, LeafConstruction) {
  EXPECT_EQ(mkInt(42)->str(), "42");
  EXPECT_EQ(mkBool(true)->str(), "true");
  EXPECT_EQ(mkBool(false)->str(), "false");
  EXPECT_EQ(mkNil()->str(), "nil");
  EXPECT_EQ(mkVar("x", Sort::Loc)->str(), "x");
  EXPECT_EQ(mkVar("x", Sort::Loc)->sort(), Sort::Loc);
}

TEST(LExprTest, AndOfEmptyIsTrue) {
  EXPECT_EQ(mkAnd(std::vector<LExprRef>{})->str(), "true");
}

TEST(LExprTest, AndOfSingletonUnwraps) {
  LExprRef A = mkVar("a", Sort::Bool);
  EXPECT_EQ(mkAnd({A}).get(), A.get());
}

TEST(LExprTest, OrOfEmptyIsFalse) {
  EXPECT_EQ(mkOr(std::vector<LExprRef>{})->str(), "false");
}

TEST(LExprTest, IteSortIsBranchSort) {
  LExprRef E = mkIte(mkBool(true), mkInt(1), mkInt(2));
  EXPECT_EQ(E->sort(), Sort::Int);
}

TEST(LExprTest, SelectSortFollowsArray) {
  LExprRef ArrL = mkVar("next", Sort::ArrLocLoc);
  LExprRef ArrI = mkVar("key", Sort::ArrLocInt);
  LExprRef X = mkVar("x", Sort::Loc);
  EXPECT_EQ(mkSelect(ArrL, X)->sort(), Sort::Loc);
  EXPECT_EQ(mkSelect(ArrI, X)->sort(), Sort::Int);
}

TEST(LExprTest, StorePreservesArraySort) {
  LExprRef Arr = mkVar("next", Sort::ArrLocLoc);
  LExprRef X = mkVar("x", Sort::Loc);
  EXPECT_EQ(mkStore(Arr, X, mkNil())->sort(), Sort::ArrLocLoc);
}

TEST(LExprTest, SetOperations) {
  LExprRef S = mkSingleton(mkInt(3), Sort::SetInt);
  LExprRef E = mkEmptySet(Sort::SetInt);
  EXPECT_EQ(mkUnion(S, E)->sort(), Sort::SetInt);
  EXPECT_EQ(mkMember(mkInt(3), S)->sort(), Sort::Bool);
  EXPECT_EQ(mkSubset(E, S)->sort(), Sort::Bool);
}

TEST(LExprTest, DisjointDesugarsToEmptyIntersection) {
  LExprRef A = mkVar("A", Sort::SetLoc);
  LExprRef B = mkVar("B", Sort::SetLoc);
  EXPECT_EQ(mkDisjoint(A, B)->str(),
            "(= (inter A B) (empty setloc))");
}

TEST(LExprTest, NeDesugarsToNotEq) {
  EXPECT_EQ(mkNe(mkInt(1), mkInt(2))->str(), "(not (= 1 2))");
}

TEST(LExprTest, FuncAppCarriesNameAndSort) {
  LExprRef App =
      mkApp("list", Sort::Bool, {mkVar("next", Sort::ArrLocLoc),
                                 mkVar("x", Sort::Loc)});
  EXPECT_EQ(App->Op, LOp::FuncApp);
  EXPECT_EQ(App->sort(), Sort::Bool);
  EXPECT_EQ(App->str(), "(list next x)");
}

TEST(LExprTest, StructuralEqualityPositive) {
  LExprRef A = mkIntAdd(mkVar("x", Sort::Int), mkInt(1));
  LExprRef B = mkIntAdd(mkVar("x", Sort::Int), mkInt(1));
  EXPECT_TRUE(structurallyEqual(A, B));
}

TEST(LExprTest, StructuralEqualityNegative) {
  LExprRef A = mkIntAdd(mkVar("x", Sort::Int), mkInt(1));
  LExprRef B = mkIntAdd(mkVar("y", Sort::Int), mkInt(1));
  LExprRef C = mkIntSub(mkVar("x", Sort::Int), mkInt(1));
  EXPECT_FALSE(structurallyEqual(A, B));
  EXPECT_FALSE(structurallyEqual(A, C));
}

TEST(LExprTest, SubstituteReplacesVariables) {
  LExprRef E = mkIntAdd(mkVar("x", Sort::Int), mkVar("y", Sort::Int));
  LExprRef R = substitute(E, {{"x", mkInt(5)}});
  EXPECT_EQ(R->str(), "(+ 5 y)");
}

TEST(LExprTest, SubstituteUnchangedSharesNodes) {
  LExprRef E = mkIntAdd(mkVar("x", Sort::Int), mkInt(1));
  LExprRef R = substitute(E, {{"z", mkInt(5)}});
  EXPECT_EQ(R.get(), E.get());
}

TEST(LExprTest, SubstituteRespectsQuantifierShadowing) {
  LExprRef X = mkVar("x", Sort::Int);
  LExprRef Body = mkEq(X, mkVar("y", Sort::Int));
  LExprRef Q = mkForall({X}, Body);
  LExprRef R = substitute(Q, {{"x", mkInt(1)}, {"y", mkInt(2)}});
  // x is bound: only y substituted.
  EXPECT_EQ(R->str(), "(forall x (= x 2))");
}

TEST(LExprTest, VisitReachesAllNodes) {
  LExprRef E = mkIntAdd(mkVar("x", Sort::Int), mkInt(1));
  int Count = 0;
  visit(E, [&](const LExpr &) { ++Count; });
  EXPECT_EQ(Count, 3);
}

TEST(LExprTest, SetCmpSorts) {
  LExprRef S = mkVar("S", Sort::SetInt);
  LExprRef K = mkVar("k", Sort::Int);
  EXPECT_EQ(mkSetCmp(LOp::SetLeInt, S, K)->sort(), Sort::Bool);
  EXPECT_EQ(mkSetCmp(LOp::IntLtSet, K, S)->sort(), Sort::Bool);
  EXPECT_EQ(mkSetCmp(LOp::SetLeSet, S, S)->sort(), Sort::Bool);
}

TEST(LExprTest, MultisetSingleton) {
  LExprRef M = mkSingleton(mkInt(7), Sort::MSetInt);
  EXPECT_EQ(M->sort(), Sort::MSetInt);
}
