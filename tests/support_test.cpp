//===- support_test.cpp - Unit tests for the support library ---------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"
#include "support/StringUtil.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace vcdryad;

TEST(SourceLocTest, DefaultIsInvalid) {
  SourceLoc L;
  EXPECT_FALSE(L.isValid());
  EXPECT_EQ(L.str(), "<unknown>");
}

TEST(SourceLocTest, ValidFormatsAsLineColon) {
  SourceLoc L(12, 7);
  EXPECT_TRUE(L.isValid());
  EXPECT_EQ(L.str(), "12:7");
}

TEST(SourceLocTest, Equality) {
  EXPECT_EQ(SourceLoc(1, 2), SourceLoc(1, 2));
  EXPECT_FALSE(SourceLoc(1, 2) == SourceLoc(1, 3));
}

TEST(DiagnosticsTest, CountsOnlyErrors) {
  DiagnosticEngine D;
  D.warning({1, 1}, "w");
  D.note({1, 1}, "n");
  EXPECT_FALSE(D.hasErrors());
  D.error({2, 3}, "boom");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.diagnostics().size(), 3u);
}

TEST(DiagnosticsTest, RendersSeverityAndLocation) {
  DiagnosticEngine D;
  D.error({2, 3}, "boom");
  EXPECT_EQ(D.diagnostics()[0].str(), "2:3: error: boom");
}

TEST(DiagnosticsTest, RendersWithoutLocation) {
  DiagnosticEngine D;
  D.error({}, "no loc");
  EXPECT_EQ(D.diagnostics()[0].str(), "error: no loc");
}

TEST(DiagnosticsTest, StrJoinsAllDiagnostics) {
  DiagnosticEngine D;
  D.error({1, 1}, "a");
  D.warning({2, 2}, "b");
  EXPECT_EQ(D.str(), "1:1: error: a\n2:2: warning: b\n");
}

TEST(StringUtilTest, JoinEmpty) { EXPECT_EQ(join({}, ", "), ""); }

TEST(StringUtilTest, JoinMany) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim("\t\r\n "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(startsWith("#include x", "#include"));
  EXPECT_FALSE(startsWith("#inc", "#include"));
}

TEST(StringUtilTest, ReadFileMissing) {
  EXPECT_FALSE(readFile("/nonexistent/file/path").has_value());
}

TEST(TimerTest, MeasuresForward) {
  Timer T;
  EXPECT_GE(T.seconds(), 0.0);
  EXPECT_GE(T.millis(), 0.0);
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(B, A);
}
