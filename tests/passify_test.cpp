//===- passify_test.cpp - Unit tests for passification ---------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/Passify.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::vir;

namespace {

/// Collects the rendered statements of a passive block, flattening ifs.
void render(const Block &B, std::vector<std::string> &Out) {
  for (const VStmtRef &S : B) {
    if (S->Kind == VStmtKind::If) {
      Out.push_back("if");
      render(S->Then, Out);
      Out.push_back("else");
      render(S->Else, Out);
      Out.push_back("endif");
      continue;
    }
    std::string Line = S->str();
    if (!Line.empty() && Line.back() == '\n')
      Line.pop_back();
    Out.push_back(Line);
  }
}

bool hasNoAssignOrHavoc(const Block &B) {
  for (const VStmtRef &S : B) {
    if (S->Kind == VStmtKind::Assign || S->Kind == VStmtKind::Havoc)
      return false;
    if (S->Kind == VStmtKind::If)
      if (!hasNoAssignOrHavoc(S->Then) || !hasNoAssignOrHavoc(S->Else))
        return false;
  }
  return true;
}

} // namespace

TEST(PassifyTest, AssignBecomesEqualityAssumption) {
  Procedure P;
  P.Name = "f";
  P.Vars = {{"x", Sort::Int}};
  P.Body.push_back(mkAssign("x", Sort::Int, mkInt(1)));
  Procedure Q = passify(P);
  ASSERT_EQ(Q.Body.size(), 1u);
  EXPECT_EQ(Q.Body[0]->Kind, VStmtKind::Assume);
  EXPECT_EQ(Q.Body[0]->Cond->str(), "(= x@1 1)");
}

TEST(PassifyTest, SequentialAssignsIncrementVersions) {
  Procedure P;
  P.Vars = {{"x", Sort::Int}};
  P.Body.push_back(
      mkAssign("x", Sort::Int,
               mkIntAdd(mkVar("x", Sort::Int), mkInt(1))));
  P.Body.push_back(
      mkAssign("x", Sort::Int,
               mkIntAdd(mkVar("x", Sort::Int), mkInt(1))));
  Procedure Q = passify(P);
  EXPECT_EQ(Q.Body[0]->Cond->str(), "(= x@1 (+ x 1))");
  EXPECT_EQ(Q.Body[1]->Cond->str(), "(= x@2 (+ x@1 1))");
}

TEST(PassifyTest, HavocBumpsVersionWithoutAssume) {
  Procedure P;
  P.Vars = {{"x", Sort::Int}};
  P.Body.push_back(mkHavoc("x", Sort::Int));
  P.Body.push_back(mkAssert(mkEq(mkVar("x", Sort::Int), mkInt(0)),
                            "check"));
  Procedure Q = passify(P);
  ASSERT_EQ(Q.Body.size(), 1u);
  EXPECT_EQ(Q.Body[0]->Cond->str(), "(= x@1 0)");
}

TEST(PassifyTest, RigidSymbolsUntouched) {
  Procedure P;
  P.Vars = {{"x", Sort::Int}};
  P.Body.push_back(mkAssign(
      "x", Sort::Int, mkIntAdd(mkVar("c", Sort::Int), mkInt(0))));
  Procedure Q = passify(P);
  EXPECT_EQ(Q.Body[0]->Cond->str(), "(= x@1 (+ c 0))");
}

TEST(PassifyTest, BranchesJoinWithFreshVersion) {
  Procedure P;
  P.Vars = {{"x", Sort::Int}, {"c", Sort::Bool}};
  Block Then{mkAssign("x", Sort::Int, mkInt(1))};
  Block Else{mkAssign("x", Sort::Int, mkInt(2))};
  P.Body.push_back(
      mkIf(mkVar("c", Sort::Bool), std::move(Then), std::move(Else)));
  P.Body.push_back(
      mkAssert(mkIntLe(mkVar("x", Sort::Int), mkInt(2)), "range"));
  Procedure Q = passify(P);

  ASSERT_EQ(Q.Body.size(), 2u);
  ASSERT_EQ(Q.Body[0]->Kind, VStmtKind::If);
  std::vector<std::string> Lines;
  render(Q.Body, Lines);
  // Both branches define the same join version x@3.
  EXPECT_EQ(Lines[1], "assume c;");
  EXPECT_EQ(Lines[2], "assume (= x@1 1);");
  EXPECT_EQ(Lines[3], "assume (= x@3 x@1);");
  EXPECT_EQ(Lines[5], "assume (not c);");
  EXPECT_EQ(Lines[6], "assume (= x@2 2);");
  EXPECT_EQ(Lines[7], "assume (= x@3 x@2);");
  // The assert after the join uses the join version.
  EXPECT_EQ(Lines[9], "assert (<= x@3 2)  // range;");
}

TEST(PassifyTest, UnmodifiedVarNeedsNoJoin) {
  Procedure P;
  P.Vars = {{"x", Sort::Int}, {"y", Sort::Int}, {"c", Sort::Bool}};
  Block Then{mkAssign("x", Sort::Int, mkInt(1))};
  Block Else{};
  P.Body.push_back(
      mkIf(mkVar("c", Sort::Bool), std::move(Then), std::move(Else)));
  Procedure Q = passify(P);
  std::vector<std::string> Lines;
  render(Q.Body, Lines);
  // y never mentioned; x joined; no join lines for y.
  for (const std::string &L : Lines)
    EXPECT_EQ(L.find("y@"), std::string::npos) << L;
}

TEST(PassifyTest, OutputIsPassive) {
  Procedure P;
  P.Vars = {{"x", Sort::Int}, {"c", Sort::Bool}};
  Block Then{mkAssign("x", Sort::Int, mkInt(1)), mkHavoc("x", Sort::Int)};
  Block Else{mkAssign("x", Sort::Int, mkInt(2))};
  P.Body.push_back(
      mkIf(mkVar("c", Sort::Bool), std::move(Then), std::move(Else)));
  Procedure Q = passify(P);
  EXPECT_TRUE(hasNoAssignOrHavoc(Q.Body));
}

TEST(PassifyTest, DeclaresVersionedSorts) {
  Procedure P;
  P.Vars = {{"x", Sort::SetLoc}};
  P.Body.push_back(mkAssign("x", Sort::SetLoc, mkEmptySet(Sort::SetLoc)));
  Procedure Q = passify(P);
  ASSERT_TRUE(Q.Vars.count("x@1"));
  EXPECT_EQ(Q.Vars.at("x@1"), Sort::SetLoc);
}

TEST(PassifyTest, NestedIfsJoinCorrectly) {
  Procedure P;
  P.Vars = {{"x", Sort::Int}, {"c", Sort::Bool}, {"d", Sort::Bool}};
  Block Inner{mkAssign("x", Sort::Int, mkInt(1))};
  Block InnerElse{};
  Block Then;
  Then.push_back(mkIf(mkVar("d", Sort::Bool), std::move(Inner),
                      std::move(InnerElse)));
  Block Else{mkAssign("x", Sort::Int, mkInt(3))};
  P.Body.push_back(
      mkIf(mkVar("c", Sort::Bool), std::move(Then), std::move(Else)));
  P.Body.push_back(
      mkAssert(mkIntLe(mkVar("x", Sort::Int), mkInt(3)), "after"));
  Procedure Q = passify(P);
  // The final assert must reference a single well-defined version.
  const VStmt &Last = *Q.Body.back();
  EXPECT_EQ(Last.Kind, VStmtKind::Assert);
  EXPECT_NE(Last.Cond->str().find("x@"), std::string::npos);
}
