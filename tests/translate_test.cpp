//===- translate_test.cpp - Unit tests for the Figure-4 translation --------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Parser.h"
#include "dryad/Translate.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::dryad;
using vir::LExprRef;
using vir::Sort;

namespace {

class TranslateTest : public ::testing::Test {
protected:
  void SetUp() override {
    Prog = cfront::parseProgram(R"(
struct node { struct node *next; int key; };
_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
  predicate lseg(struct node *x, struct node *y) =
      (x == y && emp) || (x != y && x |-> * lseg(x->next, y));
)
struct node *probe(struct node *a, struct node *b, int k)
  _(requires list(a) * list(b))
  _(ensures list(result))
{ return a; }
)",
                               Diag);
    ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
    Tr = std::make_unique<Translator>(Prog->Defs, Prog->LogicStructs,
                                      Diag);
    Env.CurArray = prefixedArrays();
    Env.OldArray = prefixedArrays("$old");
    Env.Vars["a"] = vir::mkVar("a", Sort::Loc);
    Env.Vars["b"] = vir::mkVar("b", Sort::Loc);
    Env.Vars["k"] = vir::mkVar("k", Sort::Int);
    Env.OldVars["a"] = vir::mkVar("$old$a", Sort::Loc);
  }

  /// Parses one formula in the context of function `probe`.
  FormulaRef formulaOf(const std::string &Spec, bool Ensures = false) {
    DiagnosticEngine D2;
    std::string Src = R"(
struct node { struct node *next; int key; };
_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
  predicate lseg(struct node *x, struct node *y) =
      (x == y && emp) || (x != y && x |-> * lseg(x->next, y));
)
struct node *probe(struct node *a, struct node *b, int k)
  _()" + std::string(Ensures ? "ensures" : "requires") +
                      " " + Spec + R"()
{ return a; }
)";
    auto P2 = cfront::parseProgram(Src, D2);
    EXPECT_FALSE(D2.hasErrors()) << D2.str() << "\nspec: " << Spec;
    auto &List = Ensures ? P2->findFunc("probe")->Ensures
                         : P2->findFunc("probe")->Requires;
    EXPECT_EQ(List.size(), 1u);
    Parsed.push_back(std::move(P2)); // Keep the AST alive.
    return List[0];
  }

  DiagnosticEngine Diag;
  std::unique_ptr<cfront::Program> Prog;
  std::unique_ptr<Translator> Tr;
  TranslateEnv Env;
  std::vector<std::unique_ptr<cfront::Program>> Parsed;
};

} // namespace

TEST_F(TranslateTest, DomainExactness) {
  EXPECT_TRUE(Tr->domainExactFormula(formulaOf("list(a)")));
  EXPECT_TRUE(Tr->domainExactFormula(formulaOf("emp")));
  EXPECT_TRUE(Tr->domainExactFormula(formulaOf("a |->")));
  EXPECT_FALSE(Tr->domainExactFormula(formulaOf("a == b")));
  EXPECT_FALSE(Tr->domainExactFormula(formulaOf("k in keys(a)")));
  EXPECT_TRUE(Tr->domainExactFormula(formulaOf("keys(a) == keys(b)")));
  // And: one exact side suffices; Or/Sep: both needed.
  EXPECT_TRUE(Tr->domainExactFormula(formulaOf("list(a) && a == b")));
  EXPECT_FALSE(Tr->domainExactFormula(formulaOf("list(a) || a == b")));
  EXPECT_TRUE(Tr->domainExactFormula(formulaOf("list(a) * list(b)")));
}

TEST_F(TranslateTest, ScopeOfAtoms) {
  EXPECT_EQ(Tr->scopeOfFormula(formulaOf("emp"), Env)->str(),
            "(empty setloc)");
  EXPECT_EQ(Tr->scopeOfFormula(formulaOf("a |->"), Env)->str(),
            "(single a)");
  EXPECT_EQ(Tr->scopeOfFormula(formulaOf("list(a)"), Env)->str(),
            "(list$hp $node$key $node$next a)");
}

TEST_F(TranslateTest, ScopeOfSepIsUnion) {
  LExprRef S = Tr->scopeOfFormula(formulaOf("list(a) * list(b)"), Env);
  EXPECT_EQ(S->str(), "(union (list$hp $node$key $node$next a) "
                      "(list$hp $node$key $node$next b))");
}

TEST_F(TranslateTest, ScopeOfMixedAndTakesExactSide) {
  // The paper's simplification: bst(l) && keys(l) <= k has scope
  // bst_heaplet(l).
  LExprRef S =
      Tr->scopeOfFormula(formulaOf("list(a) && keys(a) <= k"), Env);
  EXPECT_EQ(S->str(), "(list$hp $node$key $node$next a)");
}

TEST_F(TranslateTest, EmpPinsHeapletToEmpty) {
  LExprRef G = vir::mkVar("G", Sort::SetLoc);
  EXPECT_EQ(Tr->formula(formulaOf("emp"), Env, G)->str(),
            "(= G (empty setloc))");
}

TEST_F(TranslateTest, EmpHeaplessIsTrue) {
  EXPECT_EQ(Tr->formula(formulaOf("emp"), Env, nullptr)->str(), "true");
}

TEST_F(TranslateTest, PredAppPinsHeaplet) {
  LExprRef G = vir::mkVar("G", Sort::SetLoc);
  std::string S = Tr->formula(formulaOf("list(a)"), Env, G)->str();
  EXPECT_NE(S.find("(list $node$key $node$next a)"), std::string::npos);
  EXPECT_NE(S.find("(= G (list$hp $node$key $node$next a))"),
            std::string::npos);
}

TEST_F(TranslateTest, SepOfExactPartitions) {
  LExprRef G = vir::mkVar("G", Sort::SetLoc);
  std::string S =
      Tr->formula(formulaOf("list(a) * list(b)"), Env, G)->str();
  // Union equals G and the parts are disjoint.
  EXPECT_NE(S.find("(= (union (list$hp"), std::string::npos);
  EXPECT_NE(S.find("(inter (list$hp"), std::string::npos);
}

TEST_F(TranslateTest, MixedAtomAddsScopeSubset) {
  LExprRef G = vir::mkVar("G", Sort::SetLoc);
  std::string S =
      Tr->formula(formulaOf("k in keys(a)"), Env, G)->str();
  EXPECT_NE(S.find("subset"), std::string::npos);
  EXPECT_NE(S.find("keys$hp"), std::string::npos);
}

TEST_F(TranslateTest, SetOrderTypeDirection) {
  std::string S =
      Tr->formula(formulaOf("keys(a) <= k"), Env, nullptr)->str();
  EXPECT_NE(S.find("set<=int"), std::string::npos);
  S = Tr->formula(formulaOf("k < keys(a)"), Env, nullptr)->str();
  EXPECT_NE(S.find("int<set"), std::string::npos);
  S = Tr->formula(formulaOf("keys(a) <= keys(b)"), Env, nullptr)->str();
  EXPECT_NE(S.find("set<=set"), std::string::npos);
}

TEST_F(TranslateTest, OldUsesSnapshotArrays) {
  FormulaRef F = formulaOf("keys(result) == old(keys(a))", true);
  TranslateEnv E2 = Env;
  E2.ResultVal = vir::mkVar("$result", Sort::Loc);
  std::string S = Tr->formula(F, E2, nullptr)->str();
  EXPECT_NE(S.find("(keys $old$node$key $old$node$next $old$a)"),
            std::string::npos);
  EXPECT_NE(S.find("(keys $node$key $node$next $result)"),
            std::string::npos);
}

TEST_F(TranslateTest, UnfoldListMatchesPaperShape) {
  const RecDef *L = Prog->Defs.lookup("list");
  LExprRef U = Tr->unfoldDef(*L, {vir::mkVar("a", Sort::Loc)}, Env);
  std::string S = U->str();
  // list(a) == (a == nil && hp empty) || (a != nil && list(a->next) &&
  //             hp(a) == {a} u hp(a->next) && disjointness)
  EXPECT_NE(S.find("(= (list $node$key $node$next a)"),
            std::string::npos);
  EXPECT_NE(S.find("(= a nil)"), std::string::npos);
  EXPECT_NE(S.find("(select $node$next a)"), std::string::npos);
}

TEST_F(TranslateTest, UnfoldHeapletIsGuardedIte) {
  const RecDef *L = Prog->Defs.lookup("list");
  LExprRef U = Tr->unfoldHeaplet(*L, {vir::mkVar("a", Sort::Loc)}, Env);
  std::string S = U->str();
  EXPECT_NE(S.find("(ite (= a nil) (empty setloc)"), std::string::npos);
}

TEST_F(TranslateTest, UnfoldFunctionDefinition) {
  const RecDef *K = Prog->Defs.lookup("keys");
  LExprRef U = Tr->unfoldDef(*K, {vir::mkVar("a", Sort::Loc)}, Env);
  std::string S = U->str();
  EXPECT_NE(S.find("(= (keys $node$key $node$next a)"),
            std::string::npos);
  EXPECT_NE(S.find("(ite (= a nil) (empty setint)"), std::string::npos);
}

TEST_F(TranslateTest, UnfoldLsegUsesBothParams) {
  const RecDef *L = Prog->Defs.lookup("lseg");
  LExprRef U = Tr->unfoldDef(
      *L, {vir::mkVar("a", Sort::Loc), vir::mkVar("b", Sort::Loc)}, Env);
  std::string S = U->str();
  EXPECT_NE(S.find("(lseg $node$key $node$next a b)"),
            std::string::npos);
  EXPECT_NE(S.find("(= a b)"), std::string::npos);
}

TEST_F(TranslateTest, NegationOfHeapFormulaRejected) {
  DiagnosticEngine D2;
  Translator T2(Prog->Defs, Prog->LogicStructs, D2);
  T2.formula(formulaOf("!(list(a))"), Env, nullptr);
  EXPECT_TRUE(D2.hasErrors());
}

TEST_F(TranslateTest, HeapletOfTermTranslates) {
  FormulaRef F = formulaOf("heaplet list(a) == heaplet keys(a)");
  std::string S = Tr->formula(F, Env, nullptr)->str();
  EXPECT_NE(S.find("(= (list$hp $node$key $node$next a) "
                   "(keys$hp $node$key $node$next a))"),
            std::string::npos);
}

TEST_F(TranslateTest, LocationOrderingRejected) {
  DiagnosticEngine D2;
  Translator T2(Prog->Defs, Prog->LogicStructs, D2);
  T2.formula(formulaOf("a <= b"), Env, nullptr);
  EXPECT_TRUE(D2.hasErrors());
}
