//===- daemon_test.cpp - Daemon wire-protocol tests ------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the serve protocol: request parsing (flat JSON,
/// unknown-key skipping, malformed-input rejection), the
/// build/parse round-trip the client and daemon share, and JSON
/// string escaping. The daemon's socket lifecycle (stale-socket
/// recovery, graceful shutdown, warm-run reports) is covered end to
/// end by tests/serve_test.sh.
///
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"
#include "daemon/Protocol.h"

#include <cerrno>

#include <gtest/gtest.h>

using namespace vcdryad;

namespace {

TEST(ProtocolTest, ParsesVerifyRequest) {
  daemon::Request R;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(
      "{\"op\": \"verify\", \"paths\": [\"/a/b.c\", \"/c\"], "
      "\"changed_only\": true, \"json_times\": false}",
      R, Error))
      << Error;
  EXPECT_EQ(R.Op, "verify");
  ASSERT_EQ(R.Paths.size(), 2u);
  EXPECT_EQ(R.Paths[0], "/a/b.c");
  EXPECT_EQ(R.Paths[1], "/c");
  EXPECT_TRUE(R.ChangedOnly);
  EXPECT_FALSE(R.JsonTimes);
}

TEST(ProtocolTest, ParsesMinimalRequest) {
  daemon::Request R;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest("{\"op\":\"status\"}", R, Error))
      << Error;
  EXPECT_EQ(R.Op, "status");
  EXPECT_TRUE(R.Paths.empty());
  EXPECT_FALSE(R.ChangedOnly);
  EXPECT_TRUE(R.JsonTimes); // Default on, like the CLI.
}

TEST(ProtocolTest, SkipsUnknownKeys) {
  daemon::Request R;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(
      "{\"future\": 42, \"op\": \"shutdown\", \"tags\": [\"x\"], "
      "\"note\": \"hi\", \"flag\": null}",
      R, Error))
      << Error;
  EXPECT_EQ(R.Op, "shutdown");
  EXPECT_TRUE(R.Paths.empty());
}

TEST(ProtocolTest, DecodesStringEscapes) {
  daemon::Request R;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(
      "{\"op\": \"verify\", \"paths\": [\"a\\\\b\\n\\\"c\\u0041\"]}",
      R, Error))
      << Error;
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_EQ(R.Paths[0], "a\\b\n\"cA");
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  daemon::Request R;
  std::string Error;
  // Not an object.
  EXPECT_FALSE(daemon::parseRequest("[1, 2]", R, Error));
  // Unterminated string.
  EXPECT_FALSE(daemon::parseRequest("{\"op\": \"ver", R, Error));
  // Nested objects are not part of the flat protocol.
  EXPECT_FALSE(
      daemon::parseRequest("{\"op\": \"verify\", \"k\": {}}", R, Error));
  // Missing op.
  EXPECT_FALSE(daemon::parseRequest("{\"paths\": [\"x\"]}", R, Error));
  EXPECT_EQ(Error, "request has no \"op\" field");
  // Trailing garbage.
  EXPECT_FALSE(
      daemon::parseRequest("{\"op\": \"status\"} extra", R, Error));
  // Empty line.
  EXPECT_FALSE(daemon::parseRequest("", R, Error));
}

TEST(ProtocolTest, BuildParseRoundTrip) {
  daemon::Request R;
  R.Op = "verify";
  R.Paths = {"/tmp/dir with space", "/x/\"quoted\".c"};
  R.ChangedOnly = true;
  R.JsonTimes = false;
  daemon::Request Back;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(daemon::buildRequest(R), Back, Error))
      << Error;
  EXPECT_EQ(Back.Op, R.Op);
  EXPECT_EQ(Back.Paths, R.Paths);
  EXPECT_EQ(Back.ChangedOnly, R.ChangedOnly);
  EXPECT_EQ(Back.JsonTimes, R.JsonTimes);
}

TEST(ProtocolTest, EscapesControlCharacters) {
  EXPECT_EQ(daemon::jsonEscape("a\"b\\c\nd\te\x01"),
            "a\\\"b\\\\c\\nd\\te\\u0001");
  EXPECT_EQ(daemon::errorResponse("boom"),
            "{\"ok\": false, \"error\": \"boom\"}\n");
}

TEST(ProtocolTest, DecodesUnicodeEscapesToUtf8) {
  daemon::Request R;
  std::string Error;
  // \u00e9 (é, 2 bytes), \u4e2d (中, 3 bytes), and a surrogate pair
  // \ud83d\ude00 (😀, U+1F600, 4 bytes) — real UTF-8, not '?'.
  ASSERT_TRUE(daemon::parseRequest(
      "{\"op\": \"verify\", \"paths\": "
      "[\"caf\\u00e9.c\", \"\\u4e2d.c\", \"\\ud83d\\ude00.c\"]}",
      R, Error))
      << Error;
  ASSERT_EQ(R.Paths.size(), 3u);
  EXPECT_EQ(R.Paths[0], "caf\xC3\xA9.c");
  EXPECT_EQ(R.Paths[1], "\xE4\xB8\xAD.c");
  EXPECT_EQ(R.Paths[2], "\xF0\x9F\x98\x80.c");
}

TEST(ProtocolTest, RejectsUnpairedSurrogates) {
  daemon::Request R;
  std::string Error;
  // A lone high surrogate, a lone low surrogate, and a high one
  // followed by a non-surrogate: all malformed JSON — a mangled
  // path must be an error, not a silent '?'.
  EXPECT_FALSE(daemon::parseRequest(
      "{\"op\": \"verify\", \"paths\": [\"\\ud83d.c\"]}", R, Error));
  EXPECT_FALSE(daemon::parseRequest(
      "{\"op\": \"verify\", \"paths\": [\"\\ude00.c\"]}", R, Error));
  EXPECT_FALSE(daemon::parseRequest(
      "{\"op\": \"verify\", \"paths\": [\"\\ud83dx\"]}", R, Error));
  EXPECT_FALSE(daemon::parseRequest(
      "{\"op\": \"verify\", \"paths\": [\"\\ud83d\\u0041\"]}", R,
      Error));
}

TEST(ProtocolTest, NonAsciiPathsSurviveBuildParseRoundTrip) {
  daemon::Request R;
  R.Op = "verify";
  R.Paths = {"/tmp/caf\xC3\xA9.c"}; // Raw UTF-8 passes through verbatim.
  daemon::Request Back;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(daemon::buildRequest(R), Back, Error))
      << Error;
  EXPECT_EQ(Back.Paths, R.Paths);
}

TEST(ProtocolTest, ParsesSinceCursor) {
  daemon::Request R;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(
      "{\"op\": \"events\", \"since\": 42}", R, Error))
      << Error;
  EXPECT_EQ(R.Op, "events");
  EXPECT_EQ(R.Since, 42u);
  // Default when absent.
  ASSERT_TRUE(daemon::parseRequest("{\"op\": \"events\"}", R, Error));
  EXPECT_EQ(R.Since, 0u);
}

TEST(ProtocolTest, SinceSurvivesBuildParseRoundTrip) {
  daemon::Request R;
  R.Op = "events";
  R.Since = 123456789u;
  daemon::Request Back;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(daemon::buildRequest(R), Back, Error))
      << Error;
  EXPECT_EQ(Back.Op, "events");
  EXPECT_EQ(Back.Since, R.Since);
}

TEST(ProtocolTest, ClassifiesAcceptErrors) {
  using daemon::AcceptAction;
  using daemon::classifyAcceptError;
  // No connection waiting on a non-blocking listener.
  EXPECT_EQ(classifyAcceptError(EAGAIN), AcceptAction::Done);
  // Transient per-connection failures: retry immediately.
  EXPECT_EQ(classifyAcceptError(EINTR), AcceptAction::Retry);
  EXPECT_EQ(classifyAcceptError(ECONNABORTED), AcceptAction::Retry);
  // Resource exhaustion: back off, never die.
  EXPECT_EQ(classifyAcceptError(EMFILE), AcceptAction::Backoff);
  EXPECT_EQ(classifyAcceptError(ENFILE), AcceptAction::Backoff);
  EXPECT_EQ(classifyAcceptError(ENOMEM), AcceptAction::Backoff);
  EXPECT_EQ(classifyAcceptError(ENOBUFS), AcceptAction::Backoff);
  // Unknown errnos get the cautious treatment too.
  EXPECT_EQ(classifyAcceptError(EIO), AcceptAction::Backoff);
  // A broken listener is unrecoverable.
  EXPECT_EQ(classifyAcceptError(EBADF), AcceptAction::Fatal);
  EXPECT_EQ(classifyAcceptError(EINVAL), AcceptAction::Fatal);
  EXPECT_EQ(classifyAcceptError(ENOTSOCK), AcceptAction::Fatal);
}

} // namespace
