//===- daemon_test.cpp - Daemon wire-protocol tests ------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the serve protocol: request parsing (flat JSON,
/// unknown-key skipping, malformed-input rejection), the
/// build/parse round-trip the client and daemon share, and JSON
/// string escaping. The daemon's socket lifecycle (stale-socket
/// recovery, graceful shutdown, warm-run reports) is covered end to
/// end by tests/serve_test.sh.
///
//===----------------------------------------------------------------------===//

#include "daemon/Protocol.h"

#include <gtest/gtest.h>

using namespace vcdryad;

namespace {

TEST(ProtocolTest, ParsesVerifyRequest) {
  daemon::Request R;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(
      "{\"op\": \"verify\", \"paths\": [\"/a/b.c\", \"/c\"], "
      "\"changed_only\": true, \"json_times\": false}",
      R, Error))
      << Error;
  EXPECT_EQ(R.Op, "verify");
  ASSERT_EQ(R.Paths.size(), 2u);
  EXPECT_EQ(R.Paths[0], "/a/b.c");
  EXPECT_EQ(R.Paths[1], "/c");
  EXPECT_TRUE(R.ChangedOnly);
  EXPECT_FALSE(R.JsonTimes);
}

TEST(ProtocolTest, ParsesMinimalRequest) {
  daemon::Request R;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest("{\"op\":\"status\"}", R, Error))
      << Error;
  EXPECT_EQ(R.Op, "status");
  EXPECT_TRUE(R.Paths.empty());
  EXPECT_FALSE(R.ChangedOnly);
  EXPECT_TRUE(R.JsonTimes); // Default on, like the CLI.
}

TEST(ProtocolTest, SkipsUnknownKeys) {
  daemon::Request R;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(
      "{\"future\": 42, \"op\": \"shutdown\", \"tags\": [\"x\"], "
      "\"note\": \"hi\", \"flag\": null}",
      R, Error))
      << Error;
  EXPECT_EQ(R.Op, "shutdown");
  EXPECT_TRUE(R.Paths.empty());
}

TEST(ProtocolTest, DecodesStringEscapes) {
  daemon::Request R;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(
      "{\"op\": \"verify\", \"paths\": [\"a\\\\b\\n\\\"c\\u0041\"]}",
      R, Error))
      << Error;
  ASSERT_EQ(R.Paths.size(), 1u);
  EXPECT_EQ(R.Paths[0], "a\\b\n\"cA");
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  daemon::Request R;
  std::string Error;
  // Not an object.
  EXPECT_FALSE(daemon::parseRequest("[1, 2]", R, Error));
  // Unterminated string.
  EXPECT_FALSE(daemon::parseRequest("{\"op\": \"ver", R, Error));
  // Nested objects are not part of the flat protocol.
  EXPECT_FALSE(
      daemon::parseRequest("{\"op\": \"verify\", \"k\": {}}", R, Error));
  // Missing op.
  EXPECT_FALSE(daemon::parseRequest("{\"paths\": [\"x\"]}", R, Error));
  EXPECT_EQ(Error, "request has no \"op\" field");
  // Trailing garbage.
  EXPECT_FALSE(
      daemon::parseRequest("{\"op\": \"status\"} extra", R, Error));
  // Empty line.
  EXPECT_FALSE(daemon::parseRequest("", R, Error));
}

TEST(ProtocolTest, BuildParseRoundTrip) {
  daemon::Request R;
  R.Op = "verify";
  R.Paths = {"/tmp/dir with space", "/x/\"quoted\".c"};
  R.ChangedOnly = true;
  R.JsonTimes = false;
  daemon::Request Back;
  std::string Error;
  ASSERT_TRUE(daemon::parseRequest(daemon::buildRequest(R), Back, Error))
      << Error;
  EXPECT_EQ(Back.Op, R.Op);
  EXPECT_EQ(Back.Paths, R.Paths);
  EXPECT_EQ(Back.ChangedOnly, R.ChangedOnly);
  EXPECT_EQ(Back.JsonTimes, R.JsonTimes);
}

TEST(ProtocolTest, EscapesControlCharacters) {
  EXPECT_EQ(daemon::jsonEscape("a\"b\\c\nd\te\x01"),
            "a\\\"b\\\\c\\nd\\te\\u0001");
  EXPECT_EQ(daemon::errorResponse("boom"),
            "{\"ok\": false, \"error\": \"boom\"}\n");
}

} // namespace
