//===- property_test.cpp - Property-based sweeps ---------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized property tests:
///  - pipeline invariants checked over the whole benchmark corpus
///    (normal form after normalization, passivity after passification,
///    ghost-code monotonicity in the tuple budget);
///  - algebraic laws of the set encodings, checked through Z3 over a
///    sweep of operator combinations;
///  - substitution/structural-equality laws of the expression layer
///    over pseudo-randomly generated terms.
///
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "instr/Instrument.h"
#include "smt/Solver.h"
#include "verifier/FuncTranslator.h"
#include "vir/Passify.h"
#include "vir/WpGen.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace vcdryad;
namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Corpus-wide pipeline invariants
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string> allCorpusFiles() {
  std::vector<std::string> Out;
  fs::path Root(VCDRYAD_BENCHMARK_DIR);
  if (!fs::exists(Root))
    return Out;
  for (const auto &E : fs::recursive_directory_iterator(Root))
    if (E.is_regular_file() && E.path().extension() == ".c")
      Out.push_back(E.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string corpusTestName(const ::testing::TestParamInfo<std::string> &I) {
  fs::path P(I.param);
  std::string N =
      P.parent_path().filename().string() + "_" + P.stem().string();
  for (char &C : N)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return N;
}

bool isAtom(const cfront::Expr &E) {
  using cfront::ExprKind;
  return E.Kind == ExprKind::Var || E.Kind == ExprKind::IntLit ||
         E.Kind == ExprKind::Null;
}

bool exprPure(const cfront::Expr &E) {
  using cfront::ExprKind;
  if (E.Kind == ExprKind::FieldAccess || E.Kind == ExprKind::Call ||
      E.Kind == ExprKind::Malloc)
    return false;
  for (const auto &A : E.Args)
    if (!exprPure(*A))
      return false;
  return true;
}

void checkNormalForm(const cfront::Stmt &S, bool &Ok) {
  using cfront::ExprKind;
  using cfront::StmtKind;
  switch (S.Kind) {
  case StmtKind::Assign:
    if (S.Lhs->Kind == ExprKind::FieldAccess)
      Ok &= isAtom(*S.Lhs->Args[0]) && isAtom(*S.Rhs);
    else if (S.Rhs->Kind == ExprKind::FieldAccess)
      Ok &= isAtom(*S.Rhs->Args[0]);
    else if (S.Rhs->Kind == ExprKind::Call) {
      for (const auto &A : S.Rhs->Args)
        Ok &= isAtom(*A);
    } else if (S.Rhs->Kind != ExprKind::Malloc)
      Ok &= exprPure(*S.Rhs);
    break;
  case StmtKind::If:
  case StmtKind::While:
    Ok &= exprPure(*S.Cond);
    break;
  case StmtKind::Return:
    if (S.Rhs)
      Ok &= isAtom(*S.Rhs);
    break;
  case StmtKind::Free:
    Ok &= isAtom(*S.Rhs);
    break;
  default:
    break;
  }
  for (const auto &Sub : S.Stmts)
    checkNormalForm(*Sub, Ok);
  if (S.Then)
    checkNormalForm(*S.Then, Ok);
  if (S.Else)
    checkNormalForm(*S.Else, Ok);
}

bool blockIsPassive(const vir::Block &B) {
  for (const auto &St : B) {
    if (St->Kind == vir::VStmtKind::Assign ||
        St->Kind == vir::VStmtKind::Havoc)
      return false;
    if (St->Kind == vir::VStmtKind::If)
      if (!blockIsPassive(St->Then) || !blockIsPassive(St->Else))
        return false;
  }
  return true;
}

class CorpusPipeline : public ::testing::TestWithParam<std::string> {
protected:
  std::unique_ptr<cfront::Program> parse() {
    DiagnosticEngine Diag;
    auto P = cfront::parseFile(GetParam(), Diag);
    EXPECT_TRUE(P && !Diag.hasErrors()) << Diag.str();
    return P;
  }
};

} // namespace

TEST_P(CorpusPipeline, ParsesCleanly) {
  auto P = parse();
  ASSERT_NE(P, nullptr);
  // Every benchmark defines at least one function with a body.
  bool HasBody = false;
  for (const auto &F : P->Funcs)
    HasBody |= F->Body != nullptr;
  EXPECT_TRUE(HasBody);
}

TEST_P(CorpusPipeline, NormalizationEstablishesNormalForm) {
  DiagnosticEngine Diag;
  auto P = parse();
  cfront::normalizeProgram(*P, Diag);
  ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
  for (const auto &F : P->Funcs) {
    if (!F->Body)
      continue;
    bool Ok = true;
    checkNormalForm(*F->Body, Ok);
    EXPECT_TRUE(Ok) << F->Name << " not in normal form";
  }
}

TEST_P(CorpusPipeline, InstrumentationAddsOnlyGhostCode) {
  DiagnosticEngine Diag;
  auto P = parse();
  cfront::normalizeProgram(*P, Diag);
  std::map<std::string, unsigned> ManualBefore;
  for (const auto &F : P->Funcs)
    if (F->Body)
      ManualBefore[F->Name] = instr::countAnnotations(*F).Manual;
  instr::InstrOptions Opts;
  instr::instrumentProgram(*P, Opts, Diag);
  ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
  for (const auto &F : P->Funcs) {
    if (!F->Body)
      continue;
    instr::AnnotationStats St = instr::countAnnotations(*F);
    // Manual annotations are untouched; ghost code was added.
    EXPECT_EQ(St.Manual, ManualBefore[F->Name]) << F->Name;
    EXPECT_GT(St.Ghost, 0u) << F->Name;
  }
}

TEST_P(CorpusPipeline, GhostCountMonotoneInTupleBudget) {
  DiagnosticEngine Diag;
  auto P1 = parse();
  auto P2 = parse();
  cfront::normalizeProgram(*P1, Diag);
  cfront::normalizeProgram(*P2, Diag);
  instr::InstrOptions Small;
  Small.MaxTuplesPerSite = 2;
  instr::InstrOptions Big;
  Big.MaxTuplesPerSite = 64;
  instr::instrumentProgram(*P1, Small, Diag);
  instr::instrumentProgram(*P2, Big, Diag);
  for (const auto &F1 : P1->Funcs) {
    if (!F1->Body)
      continue;
    const cfront::FuncDecl *F2 = P2->findFunc(F1->Name);
    ASSERT_NE(F2, nullptr);
    EXPECT_LE(instr::countAnnotations(*F1).Ghost,
              instr::countAnnotations(*F2).Ghost)
        << F1->Name;
  }
}

TEST_P(CorpusPipeline, PassificationProducesPassiveProcedures) {
  DiagnosticEngine Diag;
  auto P = parse();
  cfront::normalizeProgram(*P, Diag);
  instr::InstrOptions IOpts;
  IOpts.MaxTuplesPerSite = 4; // Keep this sweep fast.
  instr::instrumentProgram(*P, IOpts, Diag);
  for (const auto &F : P->Funcs) {
    if (!F->Body)
      continue;
    verifier::TranslateOptions TOpts;
    vir::Procedure Proc =
        verifier::translateFunction(*F, *P, TOpts, Diag);
    ASSERT_FALSE(Diag.hasErrors()) << Diag.str();
    vir::Procedure Passive = vir::passify(Proc);
    EXPECT_TRUE(blockIsPassive(Passive.Body)) << F->Name;
    // Every assert of the procedure becomes exactly one VC.
    std::vector<vir::VC> VCs = vir::generateVCs(Passive);
    EXPECT_FALSE(VCs.empty()) << F->Name;
    for (const vir::VC &VC : VCs) {
      EXPECT_EQ(VC.Guard->sort(), vir::Sort::Bool);
      EXPECT_EQ(VC.Cond->sort(), vir::Sort::Bool);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, CorpusPipeline,
                         ::testing::ValuesIn(allCorpusFiles()),
                         corpusTestName);
GTEST_ALLOW_UNINSTANTIATED_PARAMETERIZED_TEST(CorpusPipeline);

//===----------------------------------------------------------------------===//
// Set-encoding algebra, via Z3
//===----------------------------------------------------------------------===//

namespace {

using vir::LExprRef;
using vir::LOp;
using vir::Sort;

struct SetLawCase {
  const char *Name;
  Sort S;
};

class SetLaws : public ::testing::TestWithParam<SetLawCase> {
protected:
  void expectLaw(const LExprRef &Lhs, const LExprRef &Rhs) {
    auto Solver = smt::createZ3Solver();
    smt::CheckResult R =
        Solver->checkValid(vir::mkBool(true), vir::mkEq(Lhs, Rhs));
    EXPECT_EQ(R.Status, smt::CheckStatus::Valid) << R.Detail;
  }
  /// Multiset counts must be non-negative for the monus laws; a free
  /// array variable is not a well-formed multiset, so build one from
  /// the constructors instead.
  LExprRef A() {
    if (GetParam().S == Sort::MSetInt)
      return vir::mkUnion(
          vir::mkSingleton(vir::mkVar("a1", Sort::Int), Sort::MSetInt),
          vir::mkSingleton(vir::mkVar("a2", Sort::Int), Sort::MSetInt));
    return vir::mkVar("A", GetParam().S);
  }
  LExprRef B() { return vir::mkVar("B", GetParam().S); }
  LExprRef C() { return vir::mkVar("C", GetParam().S); }
  LExprRef empty() { return vir::mkEmptySet(GetParam().S); }
};

} // namespace

TEST_P(SetLaws, UnionCommutative) {
  expectLaw(vir::mkUnion(A(), B()), vir::mkUnion(B(), A()));
}

TEST_P(SetLaws, UnionAssociative) {
  expectLaw(vir::mkUnion(vir::mkUnion(A(), B()), C()),
            vir::mkUnion(A(), vir::mkUnion(B(), C())));
}

TEST_P(SetLaws, UnionEmptyIdentity) {
  expectLaw(vir::mkUnion(A(), empty()), A());
}

TEST_P(SetLaws, InterCommutative) {
  expectLaw(vir::mkInter(A(), B()), vir::mkInter(B(), A()));
}

TEST_P(SetLaws, InterEmptyAnnihilates) {
  expectLaw(vir::mkInter(A(), empty()), empty());
}

TEST_P(SetLaws, MinusEmptyIdentity) {
  expectLaw(vir::mkMinus(A(), empty()), A());
}

TEST_P(SetLaws, MinusSelfEmpty) {
  expectLaw(vir::mkMinus(A(), A()), empty());
}

TEST_P(SetLaws, UnionIdempotentForSetsOnly) {
  if (GetParam().S == Sort::MSetInt) {
    // Multisets count multiplicity: A + A == A only when A is empty.
    auto Solver = smt::createZ3Solver();
    smt::CheckResult R = Solver->checkValid(
        vir::mkBool(true), vir::mkEq(vir::mkUnion(A(), A()), A()));
    EXPECT_EQ(R.Status, smt::CheckStatus::Invalid);
    return;
  }
  expectLaw(vir::mkUnion(A(), A()), A());
}

INSTANTIATE_TEST_SUITE_P(
    AllSetSorts, SetLaws,
    ::testing::Values(SetLawCase{"SetLoc", Sort::SetLoc},
                      SetLawCase{"SetInt", Sort::SetInt},
                      SetLawCase{"MSetInt", Sort::MSetInt}),
    [](const ::testing::TestParamInfo<SetLawCase> &I) {
      return I.param.Name;
    });

//===----------------------------------------------------------------------===//
// Expression-layer laws over generated terms
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic pseudo-random integer expression generator.
LExprRef genInt(unsigned &Seed, int Depth) {
  Seed = Seed * 1103515245 + 12345;
  unsigned Pick = (Seed >> 16) % (Depth > 0 ? 4 : 2);
  switch (Pick) {
  case 0:
    return vir::mkInt(static_cast<int>(Seed % 17) - 8);
  case 1:
    return vir::mkVar(std::string("v") + char('a' + Seed % 3),
                      Sort::Int);
  case 2:
    return vir::mkIntAdd(genInt(Seed, Depth - 1),
                         genInt(Seed, Depth - 1));
  default:
    return vir::mkIte(
        vir::mkIntLe(genInt(Seed, Depth - 1), genInt(Seed, Depth - 1)),
        genInt(Seed, Depth - 1), genInt(Seed, Depth - 1));
  }
}

class ExprLaws : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(ExprLaws, SubstitutionIdentity) {
  unsigned Seed = GetParam();
  LExprRef E = genInt(Seed, 4);
  // Substituting nothing returns the identical node (sharing).
  EXPECT_EQ(vir::substitute(E, {}).get(), E.get());
}

TEST_P(ExprLaws, SubstitutionSelfIsNoop) {
  unsigned Seed = GetParam();
  LExprRef E = genInt(Seed, 4);
  std::map<std::string, LExprRef> Map = {
      {"va", vir::mkVar("va", Sort::Int)},
      {"vb", vir::mkVar("vb", Sort::Int)},
      {"vc", vir::mkVar("vc", Sort::Int)}};
  EXPECT_TRUE(vir::structurallyEqual(vir::substitute(E, Map), E));
}

TEST_P(ExprLaws, StructuralEqualityReflexiveOnClones) {
  unsigned Seed1 = GetParam();
  unsigned Seed2 = GetParam();
  LExprRef E1 = genInt(Seed1, 4);
  LExprRef E2 = genInt(Seed2, 4);
  EXPECT_TRUE(vir::structurallyEqual(E1, E2));
}

TEST_P(ExprLaws, SubstitutionSemanticsAgreeWithZ3) {
  unsigned Seed = GetParam();
  LExprRef E = genInt(Seed, 3);
  // E[va := 5] == E under the assumption va == 5.
  LExprRef Subst = vir::substitute(E, {{"va", vir::mkInt(5)}});
  auto Solver = smt::createZ3Solver();
  smt::CheckResult R = Solver->checkValid(
      vir::mkEq(vir::mkVar("va", Sort::Int), vir::mkInt(5)),
      vir::mkEq(E, Subst));
  EXPECT_EQ(R.Status, smt::CheckStatus::Valid) << R.Detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprLaws,
                         ::testing::Range(1u, 21u));
