//===- solverpool_test.cpp - Supervised worker pool tests ------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of service/SolverPool against real `vcdryad
// solve-worker` child processes (the built tool binary, injected via
// the VCDRYAD_BIN compile definition). Fault injection uses the
// worker-side VCDRYAD_FAULT hook, so every failure mode here is a
// genuine process death: SIGABRT, RLIMIT_AS, the wall-clock watchdog.
//
//===----------------------------------------------------------------------===//

#include "service/SolverPool.h"
#include "smt/Solver.h"
#include "vir/LExpr.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace vcdryad;
using namespace vcdryad::service;

namespace {

/// Clears VCDRYAD_FAULT on scope exit so one test's injected fault
/// never leaks into the next worker spawned.
struct FaultGuard {
  explicit FaultGuard(const char *Spec) {
    ::setenv("VCDRYAD_FAULT", Spec, 1);
  }
  ~FaultGuard() { ::unsetenv("VCDRYAD_FAULT"); }
};

PoolOptions baseOptions() {
  PoolOptions PO;
  PO.WorkerBin = VCDRYAD_BIN; // The built tool: self-hosts solve-worker.
  return PO;
}

smt::SolverOptions solverOptions(unsigned TimeoutMs = 30000) {
  smt::SolverOptions SO;
  SO.TimeoutMs = TimeoutMs;
  return SO;
}

/// x == 1 |- x == 1 : Valid through any backend.
void validObligation(vir::LExprRef &Guard, vir::LExprRef &Goal) {
  auto X = vir::mkVar("x", vir::Sort::Int);
  Guard = vir::mkEq(X, vir::mkInt(1));
  Goal = vir::mkEq(X, vir::mkInt(1));
}

TEST(SolverPool, IsolatedVerdictsMatchInProcess) {
  SolverPool Pool(baseOptions());
  auto Solver = Pool.makeSolver(solverOptions());
  auto Local = smt::createZ3Solver(solverOptions());

  vir::LExprRef Guard, Goal;
  validObligation(Guard, Goal);
  smt::CheckResult Iso = Solver->checkValid(Guard, Goal);
  smt::CheckResult Ref = Local->checkValid(Guard, Goal);
  EXPECT_EQ(Iso.Status, smt::CheckStatus::Valid);
  EXPECT_EQ(Iso.Status, Ref.Status);
  EXPECT_EQ(Iso.Retries, 0u);

  // Invalid side too: x == 1 does not follow from true.
  auto X = vir::mkVar("x", vir::Sort::Int);
  smt::CheckResult Iso2 =
      Solver->checkValid(vir::mkBool(true), vir::mkEq(X, vir::mkInt(1)));
  smt::CheckResult Ref2 =
      Local->checkValid(vir::mkBool(true), vir::mkEq(X, vir::mkInt(1)));
  EXPECT_EQ(Iso2.Status, smt::CheckStatus::Invalid);
  EXPECT_EQ(Iso2.Status, Ref2.Status);

  PoolStats S = Pool.stats();
  EXPECT_EQ(S.Spawns, 1u);
  EXPECT_EQ(S.Deaths, 0u);
  EXPECT_FALSE(S.Degraded);
}

TEST(SolverPool, SessionPathMatchesInProcess) {
  SolverPool Pool(baseOptions());
  auto Solver = Pool.makeSolver(solverOptions());

  auto X = vir::mkVar("x", vir::Sort::Int);
  auto Pos = vir::mkIntLt(vir::mkInt(0), X);
  Solver->beginSession({Pos}, 30000);
  smt::CheckResult R1 =
      Solver->checkSession({}, vir::mkIntLe(vir::mkInt(0), X));
  EXPECT_EQ(R1.Status, smt::CheckStatus::Valid);
  smt::CheckResult R2 = Solver->checkSession(
      {vir::mkIntLt(X, vir::mkInt(2))}, vir::mkEq(X, vir::mkInt(1)));
  EXPECT_EQ(R2.Status, smt::CheckStatus::Valid);
  Solver->endSession();

  // Scoped shared-session surface.
  Solver->beginSharedSession(30000);
  ASSERT_TRUE(Solver->pushSessionScope({Pos}));
  smt::CheckResult R3 =
      Solver->checkSession({}, vir::mkNe(X, vir::mkInt(0)));
  EXPECT_EQ(R3.Status, smt::CheckStatus::Valid);
  Solver->popSessionScope();
  Solver->endSession();
}

TEST(SolverPool, CrashOnceRetriesToValid) {
  FaultGuard Fault("crash-once:*");
  SolverPool Pool(baseOptions());
  auto Solver = Pool.makeSolver(solverOptions());

  vir::LExprRef Guard, Goal;
  validObligation(Guard, Goal);
  smt::CheckResult R = Solver->checkValid(Guard, Goal);
  // First worker aborts; the respawned retry worker runs with
  // VCDRYAD_FAULT_RETRY set, suppressing the -once fault: the bounded
  // retry deterministically lands the true verdict.
  EXPECT_EQ(R.Status, smt::CheckStatus::Valid);
  EXPECT_EQ(R.Retries, 1u);

  PoolStats S = Pool.stats();
  EXPECT_EQ(S.Deaths, 1u);
  EXPECT_EQ(S.Retries, 1u);
  EXPECT_EQ(S.Spawns, 2u);
  EXPECT_FALSE(S.Degraded);
}

TEST(SolverPool, PersistentCrashYieldsCrashedAfterOneRetry) {
  FaultGuard Fault("crash:*");
  PoolOptions PO = baseOptions();
  PO.FlapK = 100; // Keep flap detection out of this test's way.
  SolverPool Pool(PO);
  auto Solver = Pool.makeSolver(solverOptions());

  vir::LExprRef Guard, Goal;
  validObligation(Guard, Goal);
  smt::CheckResult R = Solver->checkValid(Guard, Goal);
  EXPECT_EQ(R.Status, smt::CheckStatus::Crashed);
  EXPECT_EQ(R.Retries, 1u);
  EXPECT_NE(R.Detail.find("after 1 retry"), std::string::npos) << R.Detail;
  EXPECT_NE(R.Detail.find("signal"), std::string::npos) << R.Detail;
  EXPECT_EQ(Pool.stats().Deaths, 2u); // Attempt + the single retry.
}

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VCD_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define VCD_ASAN 1
#endif

TEST(SolverPool, OomTripsRlimitAs) {
#ifdef VCD_ASAN
  // ASan reserves terabytes of shadow address space, so any RLIMIT_AS
  // a worker could honor kills it at startup instead of mid-solve;
  // the pool then (correctly) falls back in-process and the premise
  // of this test is gone.
  GTEST_SKIP() << "RLIMIT_AS is meaningless under AddressSanitizer";
#endif
  FaultGuard Fault("oom:*");
  PoolOptions PO = baseOptions();
  PO.MemMb = 256; // Enough for Z3 startup, far below the 1 GiB hog cap.
  PO.FlapK = 100;
  SolverPool Pool(PO);
  auto Solver = Pool.makeSolver(solverOptions());

  vir::LExprRef Guard, Goal;
  validObligation(Guard, Goal);
  smt::CheckResult R = Solver->checkValid(Guard, Goal);
  EXPECT_EQ(R.Status, smt::CheckStatus::ResourceLimit);
  EXPECT_NE(R.Detail.find("RLIMIT_AS"), std::string::npos) << R.Detail;
  EXPECT_EQ(R.Retries, 1u);
}

TEST(SolverPool, HangTripsWallClockWatchdog) {
  FaultGuard Fault("hang:*");
  PoolOptions PO = baseOptions();
  PO.WatchdogGraceMs = 400; // Short grace: the test budget is small.
  PO.FlapK = 100;
  SolverPool Pool(PO);
  auto Solver = Pool.makeSolver(solverOptions(/*TimeoutMs=*/200));

  vir::LExprRef Guard, Goal;
  validObligation(Guard, Goal);
  smt::CheckResult R = Solver->checkValid(Guard, Goal);
  EXPECT_EQ(R.Status, smt::CheckStatus::ResourceLimit);
  EXPECT_NE(R.Detail.find("watchdog"), std::string::npos) << R.Detail;
  EXPECT_EQ(Pool.stats().Deaths, 2u);
}

TEST(SolverPool, FlapDetectionDegradesToInProcess) {
  FaultGuard Fault("crash:*");
  PoolOptions PO = baseOptions();
  PO.FlapK = 2; // Two rapid deaths (one obligation's attempt+retry).
  SolverPool Pool(PO);
  auto Solver = Pool.makeSolver(solverOptions());

  vir::LExprRef Guard, Goal;
  validObligation(Guard, Goal);
  smt::CheckResult R1 = Solver->checkValid(Guard, Goal);
  EXPECT_EQ(R1.Status, smt::CheckStatus::Crashed);
  EXPECT_TRUE(Pool.degraded());

  // The same solver object falls back in-process on its next check —
  // with the fault still exported, proving no worker is consulted.
  smt::CheckResult R2 = Solver->checkValid(Guard, Goal);
  EXPECT_EQ(R2.Status, smt::CheckStatus::Valid);

  // And so does every solver the degraded pool hands out afterwards.
  auto Solver2 = Pool.makeSolver(solverOptions());
  smt::CheckResult R3 = Solver2->checkValid(Guard, Goal);
  EXPECT_EQ(R3.Status, smt::CheckStatus::Valid);
  EXPECT_GE(Pool.stats().Fallbacks, 1u);
  EXPECT_TRUE(Pool.stats().Degraded);
}

TEST(SolverPool, MaxWorkersCapFallsBackInProcess) {
  PoolOptions PO = baseOptions();
  PO.MaxWorkers = 1;
  SolverPool Pool(PO);
  auto S1 = Pool.makeSolver(solverOptions());
  auto S2 = Pool.makeSolver(solverOptions());

  vir::LExprRef Guard, Goal;
  validObligation(Guard, Goal);
  // S1 occupies the only slot; S2's spawn attempt must fall back
  // in-process and still produce the right verdict.
  EXPECT_EQ(S1->checkValid(Guard, Goal).Status, smt::CheckStatus::Valid);
  EXPECT_EQ(S2->checkValid(Guard, Goal).Status, smt::CheckStatus::Valid);
  PoolStats S = Pool.stats();
  EXPECT_EQ(S.Spawns, 1u);
  EXPECT_GE(S.Fallbacks, 1u);
}

TEST(SolverPool, ResolveWorkerBin) {
  EXPECT_EQ(resolveWorkerBin("/explicit/path"), "/explicit/path");
  ::setenv("VCDRYAD_WORKER_BIN", "/from/env", 1);
  EXPECT_EQ(resolveWorkerBin(""), "/from/env");
  ::unsetenv("VCDRYAD_WORKER_BIN");
  // Fallback: the running test binary via /proc/self/exe.
  std::string Self = resolveWorkerBin("");
  EXPECT_NE(Self.find("solverpool_test"), std::string::npos) << Self;
}

TEST(SolverPool, BackoffGrowsAndCaps) {
  PoolOptions PO = baseOptions();
  PO.BackoffBaseMs = 25;
  PO.BackoffCapMs = 400;
  SolverPool Pool(PO);
  EXPECT_EQ(Pool.backoffDelayMs(0), 0u);
  EXPECT_EQ(Pool.backoffDelayMs(1), 25u);
  EXPECT_EQ(Pool.backoffDelayMs(2), 50u);
  EXPECT_EQ(Pool.backoffDelayMs(5), 400u);   // 25<<4 = 400 == cap.
  EXPECT_EQ(Pool.backoffDelayMs(50), 400u);  // Shift clamped, capped.
}

TEST(SolverPool, MissingWorkerBinaryDegradesNotCrashes) {
  PoolOptions PO;
  PO.WorkerBin = "/nonexistent/vcdryad-worker";
  SolverPool Pool(PO);
  auto Solver = Pool.makeSolver(solverOptions());
  vir::LExprRef Guard, Goal;
  validObligation(Guard, Goal);
  // Exec failure -> child exits 127 -> init round-trip fails ->
  // fallback in-process. The verdict must still be right.
  smt::CheckResult R = Solver->checkValid(Guard, Goal);
  EXPECT_EQ(R.Status, smt::CheckStatus::Valid);
}

} // namespace
