#!/bin/sh
# Crash-isolation gate for the out-of-process solver pool:
#   (1) verdict neutrality: a --json-times=off batch report with
#       --isolate-solvers is byte-identical to the in-process one;
#   (2) targeted fault isolation: VCDRYAD_FAULT=crash:<goal-hash>
#       turns exactly the VCs with that goal hash into "crashed"
#       (with the bounded retry accounted), every other VC still
#       proves "valid" — one worker death never poisons a neighbour;
#   (3) soak: a resident daemon with solver isolation survives at
#       least 5 SIGKILLed workers mid-verify with stable verdicts on
#       every round and a healthy status afterwards.
#
# Usage: fault_injection_test.sh <vcdryad-binary> <corpus-dir>
set -eu

VCDRYAD=$1
CORPUS=$(cd "$2" && pwd)  # Absolute: daemon and CLI must agree on paths.

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-fault.XXXXXX")
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/serve.sock"

echo "== isolated report is byte-identical to in-process =="
"$VCDRYAD" batch "$CORPUS" --cache=off --json-times=off --jobs=2 \
  --timeout=300000 --out="$WORK/inproc.json"
"$VCDRYAD" batch "$CORPUS" --cache=off --json-times=off --jobs=2 \
  --timeout=300000 --isolate-solvers --out="$WORK/iso.json"
if ! cmp -s "$WORK/inproc.json" "$WORK/iso.json"; then
  echo "FAIL: --isolate-solvers changed the stripped report" >&2
  diff "$WORK/inproc.json" "$WORK/iso.json" >&2 || true
  exit 1
fi

echo "== targeted fault hits exactly its goal hash =="
# One corpus file, solved isolated with per-VC stats; pick the first
# goal hash and crash-inject it. Fault matching is goal identity, so
# every VC sharing the hash must crash (retried once) and every other
# VC must stay valid.
ONE=$(ls "$CORPUS"/*.c | head -n 1)  # In place: relative includes work.
"$VCDRYAD" batch "$ONE" --cache=off --jobs=1 --timeout=300000 \
  --isolate-solvers --out="$WORK/base.json"
# The LAST non-trivial hash in solve order: the VCs before it prove
# valid before the fault fires, so the run shows healthy and crashed
# verdicts side by side (first-failure cancellation then skips
# whatever follows). Trivially-discharged VCs never reach a worker,
# so a fault pinned to one would not fire at all.
HASH=$(awk '
  /"trivial":/   { triv = ($2 == "true,") }
  /"goal_hash":/ { if (!triv) { gh = $2; gsub(/[",]/, "", gh) } }
  END { print gh }
' "$WORK/base.json")
if [ -z "$HASH" ]; then
  echo "FAIL: no goal_hash in the baseline vc_stats" >&2
  exit 1
fi
if VCDRYAD_FAULT="crash:$HASH" "$VCDRYAD" batch "$ONE" --cache=off \
     --jobs=1 --timeout=300000 --isolate-solvers --out="$WORK/fault.json"
then
  echo "FAIL: crash-injected batch still exited 0" >&2
  exit 1
fi
# vc_stats rows emit status before goal_hash before retries; check the
# triple once the row's retries line closes it out. The fault may only
# crash VCs with the injected hash (with the bounded retry accounted);
# every other VC either proves valid or is skipped by first-failure
# cancellation — never crashed, and at least one must still prove.
awk -v H="$HASH" '
  /"status":/   { st = $2; gsub(/[",]/, "", st) }
  /"goal_hash":/ { gh = $2; gsub(/[",]/, "", gh) }
  /"retries":/  { r = $2; gsub(/[",]/, "", r)
                  if (gh == H) {
                    if (st == "crashed" && r == "1") crashed++
                    else if (st != "cancelled") bad = 1
                  } else {
                    if (st == "valid") proved++
                    else if (st != "cancelled") bad = 1
                  }
                  gh = "" }
  END { exit (crashed < 1 || proved < 1 || bad) ? 1 : 0 }
' "$WORK/fault.json" || {
  echo "FAIL: fault on $HASH did not map to exactly its VCs" >&2
  cat "$WORK/fault.json" >&2
  exit 1
}

echo "== soak: daemon survives SIGKILLed workers =="
# Cache and manifest off so every round solves for real (and spawns
# workers to kill); serve turns --isolate-solvers on by default.
"$VCDRYAD" serve --cache=off --no-incremental --socket="$SOCK" --jobs=2 \
  --timeout=300000 2> "$WORK/serve.log" &
SERVE_PID=$!
i=0
until "$VCDRYAD" client status --socket="$SOCK" > /dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: daemon did not come up" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  sleep 0.2
done

KILLS=0
ROUND=0
while [ "$KILLS" -lt 5 ] && [ "$ROUND" -lt 60 ]; do
  ROUND=$((ROUND + 1))
  "$VCDRYAD" client verify "$CORPUS" --socket="$SOCK" --json-times=off \
    --out="$WORK/soak.json" &
  VPID=$!
  # Hunt for a live worker (a solve-worker child of the daemon) while
  # the verify runs; SIGKILL at most one per round so the bounded
  # retry deterministically absorbs the death.
  KILLED=0
  while kill -0 "$VPID" 2>/dev/null; do
    if [ "$KILLED" -eq 0 ]; then
      W=$(pgrep -P "$SERVE_PID" -f solve-worker | head -n 1 || true)
      if [ -n "$W" ] && kill -9 "$W" 2>/dev/null; then
        KILLED=1
        KILLS=$((KILLS + 1))
      fi
    fi
  done
  wait "$VPID" || {
    echo "FAIL: soak verify round $ROUND failed" >&2
    cat "$WORK/soak.json" >&2
    exit 1
  }
  grep -q '"all_verified": true' "$WORK/soak.json" || {
    echo "FAIL: verdicts unstable on soak round $ROUND" >&2
    cat "$WORK/soak.json" >&2
    exit 1
  }
done
if [ "$KILLS" -lt 5 ]; then
  echo "FAIL: only landed $KILLS worker kills in $ROUND rounds" >&2
  exit 1
fi

# The daemon must still be up and answering after the carnage, and a
# clean final verify must agree with the baseline verdicts.
kill -0 "$SERVE_PID" 2>/dev/null || {
  echo "FAIL: daemon died during the soak" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}
"$VCDRYAD" client verify "$CORPUS" --socket="$SOCK" --json-times=off \
  --out="$WORK/final.json"
grep -q '"all_verified": true' "$WORK/final.json" || {
  echo "FAIL: final verify after soak is not clean" >&2
  exit 1
}
"$VCDRYAD" client shutdown --socket="$SOCK" > /dev/null
wait "$SERVE_PID" || true
SERVE_PID=

echo "PASS: isolated report byte-identical, fault pinned to $HASH," \
     "daemon survived $KILLS worker kills in $ROUND rounds"
