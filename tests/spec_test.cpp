//===- spec_test.cpp - Unit tests for the DRYAD logic AST -------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Parser.h"
#include "dryad/Spec.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::dryad;

namespace {

const char *TwoStructs = R"(
struct inner { int data; };
struct outer { struct inner *in; struct outer *next; };
_(dryad
  predicate chain(struct outer *x) =
      (x == nil && emp) || (x |-> * chain(x->next));
  function intset datas(struct outer *x) =
      (x == nil) ? emptyset
                 : (singleton(x->in->data) union datas(x->next));
)
)";

std::unique_ptr<cfront::Program> parseOk(const std::string &Src) {
  DiagnosticEngine D;
  auto P = cfront::parseProgram(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return P;
}

} // namespace

TEST(SpecTest, FieldKeyNaming) {
  FieldKey FK{"node", "next", vir::Sort::Loc};
  EXPECT_EQ(FK.arrayName(), "$node$next");
  EXPECT_EQ(FK.arraySort(), vir::Sort::ArrLocLoc);
  FieldKey FI{"node", "key", vir::Sort::Int};
  EXPECT_EQ(FI.arraySort(), vir::Sort::ArrLocInt);
}

TEST(SpecTest, StructTableLookup) {
  StructTable T;
  StructInfo &SI = T.add("node");
  SI.Fields.push_back({"next", vir::Sort::Loc, "node"});
  ASSERT_NE(T.lookup("node"), nullptr);
  EXPECT_EQ(T.lookup("node")->findField("next")->TargetStruct, "node");
  EXPECT_EQ(T.lookup("nope"), nullptr);
  EXPECT_EQ(T.lookup("node")->findField("nope"), nullptr);
}

TEST(SpecTest, DefTableRejectsDuplicates) {
  DefTable T;
  RecDef D;
  D.Name = "p";
  EXPECT_TRUE(T.add(D));
  EXPECT_FALSE(T.add(D));
}

TEST(SpecTest, DefsForStructFiltersByFirstParam) {
  auto P = parseOk(TwoStructs);
  auto ForOuter = P->Defs.defsForStruct("outer");
  EXPECT_EQ(ForOuter.size(), 2u);
  auto ForInner = P->Defs.defsForStruct("inner");
  EXPECT_TRUE(ForInner.empty());
}

TEST(SpecTest, CrossStructFieldDependencies) {
  auto P = parseOk(TwoStructs);
  const RecDef *Datas = P->Defs.lookup("datas");
  ASSERT_NE(Datas, nullptr);
  // datas reads outer.in, outer.next and inner.data.
  std::set<std::string> Arrays;
  for (const FieldKey &FK : Datas->Fields)
    Arrays.insert(FK.arrayName());
  EXPECT_TRUE(Arrays.count("$outer$in"));
  EXPECT_TRUE(Arrays.count("$outer$next"));
  EXPECT_TRUE(Arrays.count("$inner$data"));
}

TEST(SpecTest, PointsToDependsOnAllFields) {
  auto P = parseOk(TwoStructs);
  const RecDef *Chain = P->Defs.lookup("chain");
  ASSERT_NE(Chain, nullptr);
  std::set<std::string> Arrays;
  for (const FieldKey &FK : Chain->Fields)
    Arrays.insert(FK.arrayName());
  // The points-to atom exposes every field of outer (but chain never
  // dereferences inner).
  EXPECT_TRUE(Arrays.count("$outer$in"));
  EXPECT_TRUE(Arrays.count("$outer$next"));
  EXPECT_FALSE(Arrays.count("$inner$data"));
}

TEST(SpecTest, TransitiveDependenciesThroughCalls) {
  auto P = parseOk(R"(
struct node { struct node *next; int key; };
_(dryad
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
  predicate haskeys(struct node *x) = keys(x) == keys(x);
)
)");
  const RecDef *H = P->Defs.lookup("haskeys");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Fields.size(), 2u); // Inherited from keys.
}

TEST(SpecTest, SymbolNames) {
  RecDef D;
  D.Name = "list";
  EXPECT_EQ(D.symbolName(), "list");
  EXPECT_EQ(D.heapletSymbolName(), "list$hp");
}

TEST(SpecTest, AxiomFieldDeps) {
  auto P = parseOk(R"(
struct node { struct node *next; int key; };
_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
  axiom (struct node *x) true ==> heaplet list(x) == heaplet list(x);
)
)");
  ASSERT_EQ(P->Defs.Axioms.size(), 1u);
  auto Deps =
      axiomFieldDeps(P->Defs.Axioms[0], P->Defs, P->LogicStructs);
  EXPECT_EQ(Deps.size(), 2u); // list depends on both fields.
}

TEST(SpecTest, FormulaPrinting) {
  auto P = parseOk(R"(
struct node { struct node *next; int key; };
_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
)
)");
  const RecDef *L = P->Defs.lookup("list");
  std::string S = L->PredBody->str();
  EXPECT_NE(S.find("emp"), std::string::npos);
  EXPECT_NE(S.find("|->"), std::string::npos);
  EXPECT_NE(S.find("list(x->next)"), std::string::npos);
}

TEST(SpecTest, TermPrinting) {
  auto P = parseOk(R"(
struct node { struct node *next; int key; };
_(dryad
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
)
)");
  const RecDef *K = P->Defs.lookup("keys");
  std::string S = K->FnBody->str();
  EXPECT_NE(S.find("emptyset"), std::string::npos);
  EXPECT_NE(S.find("singleton(x->key)"), std::string::npos);
  EXPECT_NE(S.find("union"), std::string::npos);
}
