//===- corpus_test.cpp - Benchmark corpus integration tests ----------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies the benchmark corpus end-to-end (the Table-1 programs),
/// parameterized over the corpus files: every file must parse,
/// instrument, and fully verify. The timing-oriented run lives in the
/// bench/ harness; this is the correctness gate.
///
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace vcdryad;
using namespace vcdryad::verifier;

namespace fs = std::filesystem;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Out;
  fs::path Root(VCDRYAD_BENCHMARK_DIR);
  if (!fs::exists(Root))
    return Out;
  for (const auto &Entry : fs::recursive_directory_iterator(Root)) {
    if (!Entry.is_regular_file())
      continue;
    if (Entry.path().extension() != ".c")
      continue;
    // The negative corpus intentionally fails; tested separately.
    if (Entry.path().string().find("/negative/") != std::string::npos)
      continue;
    Out.push_back(Entry.path().string());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<std::string> negativeFiles() {
  std::vector<std::string> Out;
  fs::path Root = fs::path(VCDRYAD_BENCHMARK_DIR) / "negative";
  if (!fs::exists(Root))
    return Out;
  for (const auto &Entry : fs::recursive_directory_iterator(Root))
    if (Entry.is_regular_file() && Entry.path().extension() == ".c")
      Out.push_back(Entry.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string testNameOf(const std::string &Path) {
  fs::path P(Path);
  std::string Name =
      P.parent_path().filename().string() + "_" + P.stem().string();
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

class CorpusVerify : public ::testing::TestWithParam<std::string> {};
class CorpusNegative : public ::testing::TestWithParam<std::string> {};

} // namespace

TEST_P(CorpusVerify, Verifies) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 300000;
  Verifier V(Opts);
  ProgramResult R = V.verifyFile(GetParam());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Functions.empty());
  for (const FunctionResult &F : R.Functions) {
    EXPECT_TRUE(F.Verified)
        << F.Name << ": "
        << (F.Failures.empty() ? "" : F.Failures[0].Reason);
  }
}

TEST_P(CorpusNegative, FailsVerification) {
  VerifyOptions Opts;
  Opts.TimeoutMs = 60000;
  Verifier V(Opts);
  ProgramResult R = V.verifyFile(GetParam());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.AllVerified)
      << GetParam() << " is a negative benchmark but verified";
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, CorpusVerify, ::testing::ValuesIn(corpusFiles()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return testNameOf(Info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, CorpusNegative, ::testing::ValuesIn(negativeFiles()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return testNameOf(Info.param);
    });

// Keep gtest happy if the corpus is missing in a stripped checkout.
GTEST_ALLOW_UNINSTANTIATED_PARAMETERIZED_TEST(CorpusVerify);
GTEST_ALLOW_UNINSTANTIATED_PARAMETERIZED_TEST(CorpusNegative);
