#!/bin/sh
# End-to-end gate for fleet proof sharing (`vcdryad cached`):
#   (1) a cached server starts, binds its Unix socket, and answers
#       `cached stats`;
#   (2) client A (cold local cache, cold server) verifies the corpus
#       and its write-behind puts populate the server;
#   (3) client B on a *disjoint* local cache dir verifies the same
#       corpus with zero obligations reaching Z3 ("solved_vcs": 0)
#       and >= 90% of its cache lookups served by the remote tier;
#   (4) with the server SIGKILLed, a third client still reports the
#       same verdicts — and the same report bytes as a local-only run
#       modulo the remote telemetry lines;
#   (5) `cached shutdown` stops a live server gracefully.
#
# Usage: remote_cache_test.sh <vcdryad-binary> <corpus-dir>
set -eu

VCDRYAD=$1
CORPUS=$(cd "$2" && pwd)

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-remote.XXXXXX")
CACHED_PID=
cleanup() {
  [ -n "$CACHED_PID" ] && kill "$CACHED_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/cached.sock"
ADDR="unix:$SOCK"

count() { # count <file> <key> -> integer value of a totals field
  awk -F': ' "/\"$2\":/ {gsub(/,/, \"\", \$2); print \$2; exit}" "$1"
}

start_server() {
  "$VCDRYAD" cached --cache="$WORK/server" --shards=4 --socket="$SOCK" \
    > "$WORK/cached.log" 2>&1 &
  CACHED_PID=$!
  i=0
  until "$VCDRYAD" cached stats --remote-cache="$ADDR" \
      > "$WORK/stats.json" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
      echo "FAIL: cached server did not come up" >&2
      cat "$WORK/cached.log" >&2
      exit 1
    fi
    sleep 0.2
  done
}

echo "== start cached server =="
start_server
grep -q '"ok": true' "$WORK/stats.json" || {
  echo "FAIL: bad cached stats response" >&2
  cat "$WORK/stats.json" >&2
  exit 1
}

echo "== client A: cold run populates the server =="
"$VCDRYAD" batch "$CORPUS" --jobs=2 --cache="$WORK/cacheA" \
  --remote-cache="$ADDR" --timeout=300000 --json-times=off \
  --out="$WORK/a.json" || {
  echo "FAIL: client A run failed" >&2
  exit 1
}
grep -q '"all_verified": true' "$WORK/a.json" || {
  echo "FAIL: corpus did not verify on client A" >&2
  exit 1
}
"$VCDRYAD" cached stats --remote-cache="$ADDR" > "$WORK/stats.json"
ENTRIES=$(sed -n 's/.*"entries": \([0-9]*\).*/\1/p' "$WORK/stats.json")
if [ -z "$ENTRIES" ] || [ "$ENTRIES" -lt 1 ]; then
  echo "FAIL: server holds no entries after client A" >&2
  cat "$WORK/stats.json" >&2
  exit 1
fi

echo "== client B: disjoint cache dir, zero-solve via remote =="
"$VCDRYAD" batch "$CORPUS" --jobs=2 --cache="$WORK/cacheB" \
  --remote-cache="$ADDR" --timeout=300000 --json-times=off \
  --out="$WORK/b.json"
SOLVED=$(count "$WORK/b.json" solved_vcs)
HITS=$(count "$WORK/b.json" hits)
MISSES=$(count "$WORK/b.json" misses)
RHITS=$(count "$WORK/b.json" remote_hits)
TOTAL=$((HITS + MISSES))
if [ "$SOLVED" -ne 0 ]; then
  echo "FAIL: client B solved $SOLVED VCs (want 0: every proof should" \
       "come from the server)" >&2
  exit 1
fi
# remote_hits * 10 >= lookups * 9  <=>  >= 90% served remotely.
if [ "$TOTAL" -eq 0 ] || [ $((RHITS * 10)) -lt $((TOTAL * 9)) ]; then
  echo "FAIL: remote hit rate below 90% ($RHITS remote hits /" \
       "$TOTAL lookups)" >&2
  exit 1
fi

echo "== verdicts agree between A and B =="
strip_variant() {
  # Cache traffic and remote telemetry differ between the runs by
  # design; the verdicts and totals must not.
  grep -v -E '"(hits|misses|stores|cache_hits|cache_misses|l1_hits|l2_hits|remote_hits|remote_misses|remote_errors|remote_wait_ms|remote_cache|solved_vcs|dir)":' "$1"
}
strip_variant "$WORK/a.json" > "$WORK/a.stripped"
strip_variant "$WORK/b.json" > "$WORK/b.stripped"
cmp -s "$WORK/a.stripped" "$WORK/b.stripped" || {
  echo "FAIL: client B verdicts differ from client A" >&2
  diff "$WORK/a.stripped" "$WORK/b.stripped" >&2 || true
  exit 1
}

echo "== SIGKILL the server: verdicts must not change =="
kill -9 "$CACHED_PID" 2>/dev/null || true
wait "$CACHED_PID" 2>/dev/null || true
CACHED_PID=
"$VCDRYAD" batch "$CORPUS" --jobs=2 --cache="$WORK/cacheC" \
  --remote-cache="$ADDR" --remote-timeout-ms=500 --timeout=300000 \
  --json-times=off --out="$WORK/c.json"
grep -q '"all_verified": true' "$WORK/c.json" || {
  echo "FAIL: dead server changed verdicts" >&2
  exit 1
}
# Identical bytes to a local-only run, modulo the remote telemetry
# lines (remote_cache/remote_errors are the only trace of the outage)
# and the cache-directory path.
"$VCDRYAD" batch "$CORPUS" --jobs=2 --cache="$WORK/cacheD" \
  --timeout=300000 --json-times=off --out="$WORK/d.json"
strip_remote() {
  grep -v -E '"(remote_cache|remote_errors|remote_wait_ms|dir)":' "$1"
}
strip_remote "$WORK/c.json" > "$WORK/c.stripped"
strip_remote "$WORK/d.json" > "$WORK/d.stripped"
cmp -s "$WORK/c.stripped" "$WORK/d.stripped" || {
  echo "FAIL: dead-server report differs from local-only report" >&2
  diff "$WORK/c.stripped" "$WORK/d.stripped" >&2 || true
  exit 1
}

echo "== graceful shutdown =="
rm -f "$SOCK"
start_server
"$VCDRYAD" cached shutdown --remote-cache="$ADDR"
wait "$CACHED_PID" || {
  echo "FAIL: cached server exited non-zero on shutdown" >&2
  cat "$WORK/cached.log" >&2
  exit 1
}
CACHED_PID=
if [ -e "$SOCK" ]; then
  echo "FAIL: socket file survived shutdown" >&2
  exit 1
fi

echo "PASS: client B zero-solve with $RHITS/$TOTAL remote hits;" \
     "$ENTRIES entries on the server; dead-server run byte-stable"
