#!/bin/sh
# End-to-end gate for the resident verification daemon:
#   (1) `vcdryad serve` starts, binds its socket, and answers status;
#   (2) a cold daemon verify returns the corpus verdicts;
#   (3) a warm daemon verify discharges everything from the resident
#       manifest with zero obligations reaching Z3 ("solved_vcs": 0)
#       and reports resident plans in cache-stats;
#   (4) the warm daemon report is byte-identical to a warm
#       `vcdryad check` report (modulo the cache-directory path) —
#       routing through the daemon must not change a single verdict
#       or counter;
#   (5) `--serve-socket=` routing on check produces the same report;
#   (6) a stale socket file left by a dead daemon is reclaimed, and a
#       second live daemon on the same socket is refused with a clear
#       diagnostic;
#   (7) `vcdryad client shutdown` stops the daemon gracefully and the
#       socket file is unlinked.
#
# Usage: serve_test.sh <vcdryad-binary> <corpus-dir>
set -eu

VCDRYAD=$1
CORPUS=$(cd "$2" && pwd)  # Absolute: daemon and CLI must agree on paths.

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-serve.XXXXXX")
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/daemon/serve.sock"

count() { # count <file> <key> -> integer value of a totals field
  awk -F': ' "/\"$2\":/ {gsub(/,/, \"\", \$2); print \$2; exit}" "$1"
}

client() {
  "$VCDRYAD" client "$@" --socket="$SOCK" --json-times=off
}

echo "== start daemon =="
"$VCDRYAD" serve --cache="$WORK/daemon" --socket="$SOCK" --jobs=2 \
  --timeout=300000 2> "$WORK/serve.log" &
SERVE_PID=$!

# Wait for the socket to come up (status answers once it is bound).
i=0
until client status > "$WORK/status.json" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: daemon did not come up" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  sleep 0.2
done
grep -q '"ok": true' "$WORK/status.json" || {
  echo "FAIL: bad status response" >&2
  cat "$WORK/status.json" >&2
  exit 1
}

echo "== cold daemon verify =="
client verify "$CORPUS" --out="$WORK/cold.json" || {
  echo "FAIL: cold verify failed" >&2
  cat "$WORK/cold.json" >&2
  exit 1
}
grep -q '"all_verified": true' "$WORK/cold.json" || {
  echo "FAIL: corpus did not verify cold" >&2
  exit 1
}
FUNCS=$(count "$WORK/cold.json" functions)
[ "$FUNCS" -ge 1 ] || { echo "FAIL: no functions reported" >&2; exit 1; }

echo "== warm daemon verify (zero-solve contract) =="
client verify "$CORPUS" --out="$WORK/warm.json"
SKIPPED=$(count "$WORK/warm.json" skipped_unchanged)
SOLVED=$(count "$WORK/warm.json" solved_vcs)
if [ "$SKIPPED" -ne "$FUNCS" ] || [ "$SOLVED" -ne 0 ]; then
  echo "FAIL: warm daemon run skipped $SKIPPED/$FUNCS," \
       "solved $SOLVED VCs (want all skipped, 0 solved)" >&2
  exit 1
fi

echo "== cache-stats reports resident state =="
client cache-stats > "$WORK/stats.json"
grep -q '"ok": true' "$WORK/stats.json"
# cache-stats is a one-line response; extract with sed, not count().
PLANS=$(sed -n 's/.*"resident_plans": \([0-9]*\).*/\1/p' "$WORK/stats.json")
if [ -z "$PLANS" ] || [ "$PLANS" -lt 1 ]; then
  echo "FAIL: no resident plans after two verifies" >&2
  cat "$WORK/stats.json" >&2
  exit 1
fi

echo "== warm daemon report == warm check report =="
# A warm in-process check against its own cache: everything identical
# except the cache-directory path and the manifest path derived from
# it.
"$VCDRYAD" check "$CORPUS" --cache="$WORK/cli" --jobs=2 \
  --timeout=300000 --json-times=off --out=/dev/null
"$VCDRYAD" check "$CORPUS" --cache="$WORK/cli" --jobs=2 \
  --timeout=300000 --json-times=off --out="$WORK/warm_cli.json"
sed "s#$WORK/cli#CACHEDIR#g" "$WORK/warm_cli.json" > "$WORK/a.json"
sed "s#$WORK/daemon#CACHEDIR#g" "$WORK/warm.json" > "$WORK/b.json"
if ! cmp -s "$WORK/a.json" "$WORK/b.json"; then
  echo "FAIL: warm daemon report differs from warm check report" >&2
  diff "$WORK/a.json" "$WORK/b.json" >&2 || true
  exit 1
fi

echo "== --serve-socket= routing =="
"$VCDRYAD" check "$CORPUS" --serve-socket="$SOCK" --json-times=off \
  --out="$WORK/routed.json"
sed "s#$WORK/daemon#CACHEDIR#g" "$WORK/routed.json" > "$WORK/c.json"
if ! cmp -s "$WORK/b.json" "$WORK/c.json"; then
  echo "FAIL: --serve-socket report differs from client verify" >&2
  diff "$WORK/b.json" "$WORK/c.json" >&2 || true
  exit 1
fi

echo "== --out=- writes to stdout =="
"$VCDRYAD" check "$CORPUS" --serve-socket="$SOCK" --json-times=off \
  --out=- > "$WORK/dash.json"
cmp -s "$WORK/routed.json" "$WORK/dash.json" || {
  echo "FAIL: --out=- differs from --out=file" >&2
  exit 1
}

echo "== second daemon on a live socket is refused =="
if "$VCDRYAD" serve --cache="$WORK/daemon" --socket="$SOCK" \
     2> "$WORK/dup.log"; then
  echo "FAIL: second daemon did not refuse to start" >&2
  exit 1
fi
grep -q "already serving" "$WORK/dup.log" || {
  echo "FAIL: missing already-serving diagnostic" >&2
  cat "$WORK/dup.log" >&2
  exit 1
}

echo "== graceful shutdown over the socket =="
client shutdown > "$WORK/shutdown.json"
grep -q '"shutting_down": true' "$WORK/shutdown.json"
wait "$SERVE_PID"
SERVE_PID=
if [ -e "$SOCK" ]; then
  echo "FAIL: socket file survived shutdown" >&2
  exit 1
fi

echo "== stale socket file is reclaimed =="
# A crashed daemon leaves the socket file behind; the next daemon
# must probe, unlink, and bind.
python3 - "$SOCK" <<'EOF' 2>/dev/null || touch "$SOCK"
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.bind(sys.argv[1])
s.close()
EOF
[ -e "$SOCK" ] || { echo "FAIL: could not plant stale socket" >&2; exit 1; }
"$VCDRYAD" serve --cache="$WORK/daemon" --socket="$SOCK" \
  2> "$WORK/serve2.log" &
SERVE_PID=$!
i=0
until client status > /dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: daemon did not reclaim the stale socket" >&2
    cat "$WORK/serve2.log" >&2
    exit 1
  fi
  sleep 0.2
done
client shutdown > /dev/null
wait "$SERVE_PID"
SERVE_PID=

echo "PASS: daemon cold+warm ($FUNCS functions, warm solved_vcs=0)," \
     "reports byte-identical to check, stale socket reclaimed"
