//===- workerproto_test.cpp - Solver-worker wire protocol tests ------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
//
// Codec-level tests for smt/WorkerProto: expression-DAG round-trips
// through the interning arena, request/response body round-trips,
// malformed-payload rejection, and the framed pipe I/O (including the
// whole-frame deadline). No worker processes are spawned here — that
// is solverpool_test's job.
//
//===----------------------------------------------------------------------===//

#include "smt/Worker.h"
#include "smt/WorkerProto.h"
#include "vir/LExpr.h"
#include "wire/Codec.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <thread>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::smt;

namespace {

/// A small but representative guard: shared subterms, every leaf
/// kind, an application, a store/select chain and a quantifier.
vir::LExprRef sampleGuard() {
  auto X = vir::mkVar("x", vir::Sort::Loc);
  auto Y = vir::mkVar("y", vir::Sort::Loc);
  auto K = vir::mkVar("k", vir::Sort::Int);
  auto Next = vir::mkVar("next", vir::Sort::ArrLocLoc);
  auto Keys = vir::mkApp("keys", vir::Sort::SetInt, {X});
  auto Upd = vir::mkStore(Next, X, Y);
  return vir::mkAnd(
      {vir::mkNe(X, vir::mkNil()),
       vir::mkEq(vir::mkSelect(Upd, X), Y),
       vir::mkMember(K, Keys),
       vir::mkImplies(vir::mkIntLe(vir::mkInt(0), K),
                      vir::mkIntLt(K, vir::mkIntAdd(K, vir::mkInt(1)))),
       vir::mkForall({vir::mkVar("q", vir::Sort::Int)},
                     vir::mkEq(vir::mkVar("q", vir::Sort::Int),
                               vir::mkVar("q", vir::Sort::Int)))});
}

TEST(WorkerProtoDag, RoundTripIsIdentical) {
  auto Guard = sampleGuard();
  auto Goal = vir::mkEq(vir::mkVar("x", vir::Sort::Loc),
                        vir::mkVar("y", vir::Sort::Loc));
  std::string Buf;
  packExprDag(Buf, {Guard, Goal});
  size_t Pos = 0;
  std::vector<vir::LExprRef> Roots;
  ASSERT_TRUE(unpackExprDag(Buf, Pos, Roots));
  EXPECT_EQ(Pos, Buf.size());
  ASSERT_EQ(Roots.size(), 2u);
  // Hash-consing makes round-trip identity literal pointer identity.
  EXPECT_EQ(Roots[0], Guard);
  EXPECT_EQ(Roots[1], Goal);
  EXPECT_EQ(vir::stableExprHash(Roots[0]), vir::stableExprHash(Guard));
}

TEST(WorkerProtoDag, SharedSubtermsPackOnce) {
  auto X = vir::mkVar("x", vir::Sort::Int);
  auto Sum = vir::mkIntAdd(X, X);
  auto Twice = vir::mkAnd(vir::mkEq(Sum, Sum), vir::mkIntLe(X, Sum));
  std::string Shared, Unshared;
  packExprDag(Shared, {Twice});
  // An equally deep expression without sharing must be bigger.
  auto Y1 = vir::mkVar("y1", vir::Sort::Int);
  auto Y2 = vir::mkVar("y2", vir::Sort::Int);
  auto Y3 = vir::mkVar("y3", vir::Sort::Int);
  auto Distinct = vir::mkAnd(
      vir::mkEq(vir::mkIntAdd(Y1, Y2), vir::mkIntAdd(Y2, Y3)),
      vir::mkIntLe(Y3, vir::mkIntAdd(Y1, Y3)));
  packExprDag(Unshared, {Distinct});
  EXPECT_LT(Shared.size(), Unshared.size());
}

TEST(WorkerProtoDag, EmptyRootsRoundTrip) {
  std::string Buf;
  packExprDag(Buf, {});
  size_t Pos = 0;
  std::vector<vir::LExprRef> Roots;
  ASSERT_TRUE(unpackExprDag(Buf, Pos, Roots));
  EXPECT_TRUE(Roots.empty());
}

TEST(WorkerProtoDag, ForwardArgIndexRejected) {
  // One node whose argument indexes itself: child-before-parent order
  // makes any non-backward index malformed.
  std::string Buf;
  wire::packU32(Buf, 1);                           // node count
  Buf.push_back(static_cast<char>(vir::LOp::Not)); // op
  Buf.push_back(static_cast<char>(vir::Sort::Bool));
  wire::packU32(Buf, 0); // name len
  wire::packU64(Buf, 0); // intval
  wire::packU32(Buf, 1); // argc
  wire::packU32(Buf, 0); // arg -> itself
  wire::packU32(Buf, 1); // roots
  wire::packU32(Buf, 0);
  size_t Pos = 0;
  std::vector<vir::LExprRef> Roots;
  EXPECT_FALSE(unpackExprDag(Buf, Pos, Roots));
}

TEST(WorkerProtoDag, TruncationAtEveryPrefixRejected) {
  std::string Buf;
  packExprDag(Buf, {sampleGuard()});
  for (size_t Len = 0; Len < Buf.size(); ++Len) {
    size_t Pos = 0;
    std::vector<vir::LExprRef> Roots;
    EXPECT_FALSE(
        unpackExprDag(std::string_view(Buf.data(), Len), Pos, Roots))
        << "prefix of length " << Len << " must not parse";
  }
}

TEST(WorkerProtoDag, OutOfRangeTagsRejected) {
  std::string Buf;
  packExprDag(Buf, {vir::mkBool(true)});
  // Byte 4 is the first node's op tag, byte 5 its sort tag.
  for (size_t Off : {size_t{4}, size_t{5}}) {
    std::string Bad = Buf;
    Bad[Off] = static_cast<char>(0xee);
    size_t Pos = 0;
    std::vector<vir::LExprRef> Roots;
    EXPECT_FALSE(unpackExprDag(Bad, Pos, Roots));
  }
}

TEST(WorkerProtoBodies, InitRoundTrip) {
  SolverOptions SO;
  SO.TimeoutMs = 1234;
  SO.MaxModelChars = 9000;
  SO.Profile.Name = "no-mbqi";
  SO.Profile.Params = {{"auto_config", "false"}, {"mbqi", "false"}};
  SO.BackgroundAxioms = {sampleGuard()};
  std::string Buf;
  packInit(Buf, SO);
  SolverOptions Out;
  size_t Pos = 0;
  ASSERT_TRUE(unpackInit(Buf, Pos, Out));
  EXPECT_EQ(Pos, Buf.size());
  EXPECT_EQ(Out.TimeoutMs, 1234u);
  EXPECT_EQ(Out.MaxModelChars, 9000u);
  EXPECT_EQ(Out.Profile.Name, "no-mbqi");
  ASSERT_EQ(Out.Profile.Params.size(), 2u);
  EXPECT_EQ(Out.Profile.Params[1].first, "mbqi");
  ASSERT_EQ(Out.BackgroundAxioms.size(), 1u);
  EXPECT_EQ(Out.BackgroundAxioms[0], SO.BackgroundAxioms[0]);
}

TEST(WorkerProtoBodies, CheckValidRoundTrip) {
  auto Guard = sampleGuard();
  auto Goal = vir::mkBool(false);
  std::string Buf;
  packCheckValid(Buf, Guard, Goal);
  vir::LExprRef G2, C2;
  size_t Pos = 0;
  ASSERT_TRUE(unpackCheckValid(Buf, Pos, G2, C2));
  EXPECT_EQ(G2, Guard);
  EXPECT_EQ(C2, Goal);
}

TEST(WorkerProtoBodies, ResultRoundTripAllStatuses) {
  for (CheckStatus S :
       {CheckStatus::Valid, CheckStatus::Invalid, CheckStatus::Unknown,
        CheckStatus::Crashed, CheckStatus::ResourceLimit}) {
    CheckResult R;
    R.Status = S;
    R.Detail = "detail for status " +
               std::to_string(static_cast<int>(S));
    R.TimeMs = 12.625; // Exactly representable: survives the bit cast.
    std::string Buf;
    packResult(Buf, R);
    CheckResult Out;
    size_t Pos = 0;
    ASSERT_TRUE(unpackResult(Buf, Pos, Out));
    EXPECT_EQ(Out.Status, S);
    EXPECT_EQ(Out.Detail, R.Detail);
    EXPECT_DOUBLE_EQ(Out.TimeMs, 12.625);
  }
}

TEST(WorkerProtoBodies, ResultRejectsBadStatusTag) {
  CheckResult R;
  R.Status = CheckStatus::Valid;
  std::string Buf;
  packResult(Buf, R);
  Buf[0] = static_cast<char>(0x7f);
  CheckResult Out;
  size_t Pos = 0;
  EXPECT_FALSE(unpackResult(Buf, Pos, Out));
}

TEST(WorkerProtoBodies, SessionBodiesRoundTrip) {
  auto A = vir::mkVar("a", vir::Sort::Bool);
  auto B = vir::mkVar("b", vir::Sort::Bool);
  std::string Buf;
  packBeginSession(Buf, 500, {A, B});
  unsigned Timeout = 0;
  std::vector<vir::LExprRef> Prefix;
  size_t Pos = 0;
  ASSERT_TRUE(unpackBeginSession(Buf, Pos, Timeout, Prefix));
  EXPECT_EQ(Timeout, 500u);
  ASSERT_EQ(Prefix.size(), 2u);
  EXPECT_EQ(Prefix[0], A);
  EXPECT_EQ(Prefix[1], B);

  Buf.clear();
  auto Goal = vir::mkNot(B);
  packCheckSession(Buf, {A}, Goal);
  std::vector<vir::LExprRef> Extra;
  vir::LExprRef G2;
  Pos = 0;
  ASSERT_TRUE(unpackCheckSession(Buf, Pos, Extra, G2));
  ASSERT_EQ(Extra.size(), 1u);
  EXPECT_EQ(Extra[0], A);
  EXPECT_EQ(G2, Goal);
}

TEST(WorkerProtoFraming, PipeRoundTrip) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  std::string Payload = "hello worker";
  EXPECT_EQ(writeFrame(Fds[1], wire::MsgType::WkCheckValid, Payload),
            PipeStatus::Ok);
  std::string Acc, Out;
  wire::MsgType Type{};
  EXPECT_EQ(readFrame(Fds[0], Acc, Type, Out, 2000), PipeStatus::Ok);
  EXPECT_EQ(Type, wire::MsgType::WkCheckValid);
  EXPECT_EQ(Out, Payload);
  ::close(Fds[1]);
  EXPECT_EQ(readFrame(Fds[0], Acc, Type, Out, 100), PipeStatus::Eof);
  ::close(Fds[0]);
}

TEST(WorkerProtoFraming, DeadlineSpansWholeFrame) {
  // A writer that trickles one byte at a time must not reset the
  // reader's budget: the deadline covers the frame, not each poll.
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  std::string Frame;
  {
    std::string Whole;
    wire::packU32(Whole, 0); // placeholder; use writeFrame into a pipe
  }
  // Build a full frame by writing into a temp pipe and reading it back.
  int Tmp[2];
  ASSERT_EQ(::pipe(Tmp), 0);
  ASSERT_EQ(writeFrame(Tmp[1], wire::MsgType::WkOk, "xyz"),
            PipeStatus::Ok);
  char Raw[64];
  ssize_t N = ::read(Tmp[0], Raw, sizeof(Raw));
  ASSERT_GT(N, 0);
  ::close(Tmp[0]);
  ::close(Tmp[1]);
  Frame.assign(Raw, static_cast<size_t>(N));

  std::thread Trickler([&] {
    for (char C : Frame) {
      (void)!::write(Fds[1], &C, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
  });
  std::string Acc, Out;
  wire::MsgType Type{};
  // Frame is ~26 bytes at 40ms/byte ≈ 1s+; a 300ms whole-frame
  // deadline must expire even though every single poll sees progress.
  EXPECT_EQ(readFrame(Fds[0], Acc, Type, Out, 300), PipeStatus::Timeout);
  Trickler.join();
  ::close(Fds[0]);
  ::close(Fds[1]);
}

TEST(WorkerFaults, SpecParsing) {
  FaultSpec None = FaultSpec::parse(nullptr);
  EXPECT_EQ(None.K, FaultSpec::Kind::None);
  FaultSpec Bad = FaultSpec::parse("sigsegv:12");
  EXPECT_EQ(Bad.K, FaultSpec::Kind::None);

  FaultSpec Crash = FaultSpec::parse("crash:1fc1");
  EXPECT_EQ(Crash.K, FaultSpec::Kind::Crash);
  EXPECT_FALSE(Crash.Once);
  EXPECT_EQ(Crash.HexPrefix, "1fc1");

  FaultSpec Once = FaultSpec::parse("oom-once:*");
  EXPECT_EQ(Once.K, FaultSpec::Kind::Oom);
  EXPECT_TRUE(Once.Once);

  FaultSpec Hang = FaultSpec::parse("hang:");
  EXPECT_EQ(Hang.K, FaultSpec::Kind::Hang);
}

TEST(WorkerFaults, PrefixMatching) {
  // 0x1fc1ea30df31b198 renders as "1fc1ea30df31b198".
  const uint64_t H = 0x1fc1ea30df31b198ull;
  EXPECT_TRUE(FaultSpec::parse("crash:*").matches(H));
  EXPECT_TRUE(FaultSpec::parse("crash:").matches(H));
  EXPECT_TRUE(FaultSpec::parse("crash:1fc1").matches(H));
  EXPECT_TRUE(FaultSpec::parse("crash:1fc1ea30df31b198").matches(H));
  EXPECT_FALSE(FaultSpec::parse("crash:2fc1").matches(H));
  EXPECT_FALSE(FaultSpec::parse("crash:1fc2").matches(H));
  // Leading zeros are part of the fixed-width rendering.
  EXPECT_TRUE(FaultSpec::parse("crash:000a").matches(0x000a000000000000ull));
}

TEST(WorkerFaults, TargetHashIsTheStableGoalHash) {
  auto Goal = vir::mkEq(vir::mkVar("p", vir::Sort::Loc), vir::mkNil());
  EXPECT_EQ(faultTargetHash(Goal), vir::stableExprHash(Goal));
}

} // namespace
