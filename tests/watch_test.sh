#!/bin/sh
# End-to-end gate for daemon watch mode:
#   (1) `vcdryad serve --watch=<dir>` registers the .c files plus the
#       shared header (#include closure) and watch-status reports it;
#   (2) the daemon answers watch-status within 5s while a cold verify
#       is in flight (verifies run off the event thread);
#   (3) a rename-over-save edit (the editor tempfile dance) produces
#       one debounced re-verify event with the right verdict;
#   (4) introducing a bug flips the event verdict to failed; reverting
#       flips it back;
#   (5) a rapid 5-write burst coalesces into exactly one re-verify;
#   (6) a header edit re-verifies every dependent .c file;
#   (7) watch-rm stops events for the removed file;
#   (8) injected accept() failures (ECONNABORTED, EMFILE, ENOMEM) do
#       not kill the daemon;
#   (9) non-ASCII paths verify, both as raw UTF-8 and as \uXXXX
#       escapes on the wire.
# Exits 77 (ctest SKIP) where the daemon reports watch mode
# unsupported (no inotify).
#
# Usage: watch_test.sh <vcdryad-binary> <sll-corpus-dir>
set -eu

VCDRYAD=$1
SLL=$(cd "$2" && pwd)

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-watch.XXXXXX")
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Scratch corpus: a 3-file slice of the SLL suite plus its shared
# header, laid out so `#include "../include/sll.h"` resolves.
SRC="$WORK/corpus/sll"
mkdir -p "$SRC" "$WORK/corpus/include" "$WORK/pristine"
for f in find_rec.c insert_front.c copy_rec.c; do
  cp "$SLL/$f" "$SRC/$f"
  cp "$SLL/$f" "$WORK/pristine/$f"
done
cp "$SLL/../include/sll.h" "$WORK/corpus/include/sll.h"

SOCK="$WORK/daemon/serve.sock"

client() {
  "$VCDRYAD" client "$@" --socket="$SOCK" --json-times=off
}

field() { # field <file> <key> -> integer value from a one-line response
  sed -n "s/.*\"$2\": \([0-9]*\).*/\1/p" "$1"
}

last_seq() {
  client events > "$WORK/seq.json"
  field "$WORK/seq.json" last_seq
}

wait_events() { # wait_events <since-cursor> <min-new-events>
  i=0
  while :; do
    client events --since="$1" > "$WORK/events.json" 2>/dev/null || true
    # One event object per re-verified file, all on one line; split on
    # commas so grep -c counts occurrences rather than lines.
    n=$(tr ',' '\n' < "$WORK/events.json" | grep -c '"seq": ' || true)
    [ "$n" -ge "$2" ] && return 0
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "FAIL: waited for $2 events after cursor $1, got $n" >&2
      cat "$WORK/events.json" >&2
      return 1
    fi
    sleep 0.2
  done
}

echo "== start daemon with --watch =="
"$VCDRYAD" serve --cache="$WORK/daemon" --socket="$SOCK" --jobs=2 \
  --timeout=300000 --watch="$SRC" --watch-debounce-ms=250 \
  2> "$WORK/serve.log" &
SERVE_PID=$!

i=0
until client watch-status > "$WORK/ws.json" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: daemon did not come up" >&2
    cat "$WORK/serve.log" >&2
    exit 1
  fi
  sleep 0.2
done

if grep -q '"watch_supported": false' "$WORK/ws.json"; then
  echo "SKIP: watch mode unsupported on this platform" >&2
  client shutdown > /dev/null 2>&1 || true
  wait "$SERVE_PID" 2>/dev/null || true
  SERVE_PID=
  exit 77
fi

echo "== registry covers the .c files plus the shared header =="
WF=$(field "$WORK/ws.json" watched_files)
WP=$(field "$WORK/ws.json" watched_paths)
if [ "$WF" -ne 3 ] || [ "$WP" -ne 4 ]; then
  echo "FAIL: watch-status reports $WF files / $WP paths" \
       "(want 3 / 4)" >&2
  cat "$WORK/ws.json" >&2
  exit 1
fi

echo "== status answers during an in-flight cold verify =="
client verify "$SRC" --out="$WORK/cold.json" &
VERIFY_PID=$!
if command -v timeout > /dev/null 2>&1; then
  timeout 5 "$VCDRYAD" client watch-status --socket="$SOCK" \
    --json-times=off > "$WORK/mid.json" || {
    echo "FAIL: watch-status did not answer mid-verify" >&2
    exit 1
  }
else
  client watch-status > "$WORK/mid.json"
fi
wait "$VERIFY_PID" || {
  echo "FAIL: cold verify failed" >&2
  cat "$WORK/cold.json" >&2
  exit 1
}
grep -q '"all_verified": true' "$WORK/cold.json" || {
  echo "FAIL: scratch corpus did not verify" >&2
  exit 1
}

echo "== rename-over-save triggers one re-verify event =="
CUR=$(last_seq)
cp "$SRC/find_rec.c" "$WORK/tmp.c"
printf '// touched\n' >> "$WORK/tmp.c"
mv "$WORK/tmp.c" "$SRC/find_rec.c"
wait_events "$CUR" 1
grep -q 'find_rec\.c' "$WORK/events.json" || {
  echo "FAIL: event does not name find_rec.c" >&2
  cat "$WORK/events.json" >&2
  exit 1
}
grep -q '"verified": true' "$WORK/events.json" || {
  echo "FAIL: benign edit reported a failed verdict" >&2
  cat "$WORK/events.json" >&2
  exit 1
}

echo "== a bug flips the event verdict =="
CUR=$(last_seq)
sed 's/    return 0;/    return 1;/' "$SRC/find_rec.c" > "$WORK/tmp.c"
mv "$WORK/tmp.c" "$SRC/find_rec.c"
wait_events "$CUR" 1
grep -q '"verified": false' "$WORK/events.json" || {
  echo "FAIL: buggy edit still reported verified" >&2
  cat "$WORK/events.json" >&2
  exit 1
}

echo "== reverting flips it back =="
CUR=$(last_seq)
cp "$WORK/pristine/find_rec.c" "$WORK/tmp.c"
mv "$WORK/tmp.c" "$SRC/find_rec.c"
wait_events "$CUR" 1
grep -q '"verified": true' "$WORK/events.json" || {
  echo "FAIL: reverted file still reported failed" >&2
  cat "$WORK/events.json" >&2
  exit 1
}

echo "== a 5-write burst coalesces into one re-verify =="
CUR=$(last_seq)
for i in 1 2 3 4 5; do
  printf '// burst %s\n' "$i" >> "$SRC/insert_front.c"
done
wait_events "$CUR" 1
# Let a second (wrong) dispatch surface before counting.
sleep 1
client events --since="$CUR" > "$WORK/events.json"
N=$(tr ',' '\n' < "$WORK/events.json" | grep -c '"seq": ' || true)
if [ "$N" -ne 1 ]; then
  echo "FAIL: burst produced $N events (want 1)" >&2
  cat "$WORK/events.json" >&2
  exit 1
fi
grep -q 'insert_front\.c' "$WORK/events.json" || {
  echo "FAIL: burst event does not name insert_front.c" >&2
  exit 1
}

echo "== a header edit re-verifies every dependent =="
CUR=$(last_seq)
printf '// header touched\n' >> "$WORK/corpus/include/sll.h"
wait_events "$CUR" 3
for f in find_rec insert_front copy_rec; do
  grep -q "$f\.c" "$WORK/events.json" || {
    echo "FAIL: header edit did not re-verify $f.c" >&2
    cat "$WORK/events.json" >&2
    exit 1
  }
done

echo "== watch-rm stops events for the removed file =="
client watch-rm "$SRC/find_rec.c" > "$WORK/rm.json"
WF=$(field "$WORK/rm.json" watched_files)
[ "$WF" -eq 2 ] || {
  echo "FAIL: watched_files is $WF after watch-rm (want 2)" >&2
  exit 1
}
CUR=$(last_seq)
printf '// ignored\n' >> "$SRC/find_rec.c"
sleep 1.5
client events --since="$CUR" > "$WORK/events.json"
N=$(tr ',' '\n' < "$WORK/events.json" | grep -c '"seq": ' || true)
[ "$N" -eq 0 ] || {
  echo "FAIL: removed file still produced $N events" >&2
  cat "$WORK/events.json" >&2
  exit 1
}
# watch-add brings it back.
client watch-add "$SRC/find_rec.c" > "$WORK/add.json"
WF=$(field "$WORK/add.json" watched_files)
[ "$WF" -eq 3 ] || {
  echo "FAIL: watched_files is $WF after watch-add (want 3)" >&2
  exit 1
}

echo "== graceful shutdown =="
client shutdown > /dev/null
wait "$SERVE_PID"
SERVE_PID=

echo "== injected accept() failures do not kill the daemon =="
VCDRYAD_TEST_ACCEPT_ERRORS="ECONNABORTED,EMFILE,ENOMEM" \
  "$VCDRYAD" serve --cache="$WORK/daemon" --socket="$SOCK" --jobs=2 \
  --timeout=300000 2> "$WORK/serve2.log" &
SERVE_PID=$!
i=0
until client status > "$WORK/status.json" 2>/dev/null; do
  i=$((i + 1))
  if [ "$i" -gt 50 ]; then
    echo "FAIL: daemon with injected accept errors never answered" >&2
    cat "$WORK/serve2.log" >&2
    exit 1
  fi
  sleep 0.2
done
kill -0 "$SERVE_PID" || {
  echo "FAIL: daemon died on injected accept errors" >&2
  cat "$WORK/serve2.log" >&2
  exit 1
}
grep -q "backing off" "$WORK/serve2.log" || {
  echo "FAIL: no backoff diagnostic for injected EMFILE/ENOMEM" >&2
  cat "$WORK/serve2.log" >&2
  exit 1
}

echo "== non-ASCII paths verify =="
mkdir -p "$WORK/corpus/nonascii"
cp "$WORK/pristine/find_rec.c" "$WORK/corpus/nonascii/café.c"
client verify "$WORK/corpus/nonascii/café.c" \
  --out="$WORK/cafe.json" || {
  echo "FAIL: raw UTF-8 path did not verify" >&2
  cat "$WORK/cafe.json" >&2
  exit 1
}
grep -q '"all_verified": true' "$WORK/cafe.json" || {
  echo "FAIL: non-ASCII path verify reported failure" >&2
  exit 1
}
# The same path spelled with \uXXXX escapes on the wire.
if command -v python3 > /dev/null 2>&1; then
  python3 - "$SOCK" "$WORK/corpus/nonascii" > "$WORK/esc.json" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
req = ('{"op": "verify", "paths": ["%s/caf\\u00e9.c"], '
       '"json_times": false}\n') % sys.argv[2]
s.sendall(req.encode())
s.shutdown(socket.SHUT_WR)
buf = b""
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    buf += chunk
sys.stdout.write(buf.decode())
EOF
  grep -q '"all_verified": true' "$WORK/esc.json" || {
    echo "FAIL: \\uXXXX-escaped path did not verify" >&2
    cat "$WORK/esc.json" >&2
    exit 1
  }
fi

client shutdown > /dev/null
wait "$SERVE_PID"
SERVE_PID=

echo "PASS: watch mode end to end (debounced re-verify, verdict" \
     "flips, burst coalescing, header fan-out, watch-rm, accept" \
     "fault injection, non-ASCII paths)"
