//===- remote_cache_test.cpp - Fleet proof-sharing integration ------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
//
// In-process integration tests of the remote proof-cache stack: a real
// CacheServer on an ephemeral TCP port (and a Unix socket), a real
// RemoteCache client, and the tiered ProofCache gluing them together.
// The properties under test are exactly the protocol's promises:
// records round-trip, land in the shard their hash selects, survive a
// server restart, and a dead server degrades to local-only verdicts
// with only the error counters to show for it.
//
//===----------------------------------------------------------------------===//

#include "service/ProofCache.h"
#include "wire/CacheServer.h"
#include "wire/RemoteCache.h"

#include "gtest/gtest.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace vcdryad;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path Path;
  TempDir() {
    Path = fs::temp_directory_path() /
           ("vcd-remote-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(Counter++));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
  static int Counter;
};
int TempDir::Counter = 0;

/// A CacheServer serving on a background thread; joins on destruction.
struct ServerFixture {
  wire::CacheServer Server;
  std::thread Thread;
  bool Started = false;

  explicit ServerFixture(wire::CacheServerOptions Opts)
      : Server(std::move(Opts)) {
    std::string Error;
    Started = Server.start(Error);
    EXPECT_TRUE(Started) << Error;
    if (Started)
      Thread = std::thread([this] { Server.serve(); });
  }
  ~ServerFixture() { stop(); }
  void stop() {
    if (Thread.joinable()) {
      Server.requestStop();
      Thread.join();
    }
  }
  std::string tcpAddress() const {
    return "127.0.0.1:" + std::to_string(Server.port());
  }
};

wire::RemoteClientOptions fastClient(std::string Address) {
  wire::RemoteClientOptions RC;
  RC.Address = std::move(Address);
  RC.TimeoutMs = 2000;
  RC.Retries = 1;
  RC.BackoffMs = 10;
  return RC;
}

smt::CheckResult validResult(double Ms) {
  smt::CheckResult R;
  R.Status = smt::CheckStatus::Valid;
  R.TimeMs = Ms;
  return R;
}

TEST(RemoteCacheServer, MultiGetPutBatchRoundTripTcp) {
  TempDir Dir;
  wire::CacheServerOptions SO;
  SO.Dir = Dir.str();
  SO.Shards = 4;
  SO.Port = 0; // Ephemeral.
  ServerFixture S(SO);
  ASSERT_TRUE(S.Started);
  ASSERT_NE(S.Server.port(), 0);

  wire::RemoteCache Client(fastClient(S.tcpAddress()));
  std::string Error;

  // Cold: nothing there.
  std::vector<wire::ProofRecord> Found;
  ASSERT_TRUE(Client.multiGet(7, {1, 2, 3}, Found, Error)) << Error;
  EXPECT_TRUE(Found.empty());

  // Put a batch spanning several shards (high byte varies).
  std::vector<wire::ProofRecord> Records;
  for (uint64_t I = 0; I < 16; ++I) {
    wire::ProofRecord R;
    R.VcHash = (I << 56) | (0x1000 + I);
    R.OptionsHash = 7;
    R.SolveTimeMicros = 1500 * (I + 1);
    R.Provenance = "test/1";
    Records.push_back(R);
  }
  uint32_t Accepted = 0;
  ASSERT_TRUE(Client.putBatch(Records, Accepted, Error)) << Error;
  EXPECT_EQ(Accepted, 16u);
  // A duplicate put is accepted as zero new records.
  ASSERT_TRUE(Client.putBatch(Records, Accepted, Error)) << Error;
  EXPECT_EQ(Accepted, 0u);

  // Multi-get returns exactly the stored subset, options-hash keyed.
  std::vector<uint64_t> Keys;
  for (const auto &R : Records)
    Keys.push_back(R.VcHash);
  Keys.push_back(0xdead); // Never stored.
  Found.clear();
  ASSERT_TRUE(Client.multiGet(7, Keys, Found, Error)) << Error;
  EXPECT_EQ(Found.size(), 16u);
  Found.clear();
  ASSERT_TRUE(Client.multiGet(8, Keys, Found, Error)) << Error;
  EXPECT_TRUE(Found.empty()) << "different options hash must miss";

  // Records landed in the shard the leading byte selects.
  unsigned NonEmpty = 0;
  for (unsigned I = 0; I < S.Server.shards(); ++I)
    NonEmpty += S.Server.shard(I).size() > 0;
  EXPECT_EQ(NonEmpty, 4u) << "16 hashes with 16 distinct high bytes over "
                             "4 shards must touch every shard";

  wire::StatsResponse Stats;
  ASSERT_TRUE(Client.stats(Stats, Error)) << Error;
  EXPECT_EQ(Stats.Shards, 4u);
  EXPECT_EQ(Stats.Entries, 16u);
  EXPECT_EQ(Stats.PutAccepted, 16u);
}

TEST(RemoteCacheServer, PersistsAcrossRestartOnUnixSocket) {
  TempDir Dir;
  std::string Sock = Dir.str() + "/cached.sock";
  wire::ProofRecord R;
  R.VcHash = 0x1234567890abcdefull;
  R.OptionsHash = 42;
  R.SolveTimeMicros = 2500;

  {
    wire::CacheServerOptions SO;
    SO.Dir = Dir.str() + "/store";
    SO.Shards = 2;
    SO.SocketPath = Sock;
    ServerFixture S(SO);
    ASSERT_TRUE(S.Started);
    wire::RemoteCache Client(fastClient("unix:" + Sock));
    std::string Error;
    uint32_t Accepted = 0;
    ASSERT_TRUE(Client.putBatch({R}, Accepted, Error)) << Error;
    EXPECT_EQ(Accepted, 1u);
  } // Server stops, shards flush.

  {
    wire::CacheServerOptions SO;
    SO.Dir = Dir.str() + "/store";
    SO.Shards = 2;
    SO.SocketPath = Sock; // Stale socket file: must be reclaimed.
    ServerFixture S(SO);
    ASSERT_TRUE(S.Started);
    wire::RemoteCache Client(fastClient("unix:" + Sock));
    std::string Error;
    std::vector<wire::ProofRecord> Found;
    ASSERT_TRUE(Client.multiGet(42, {R.VcHash}, Found, Error)) << Error;
    ASSERT_EQ(Found.size(), 1u);
    EXPECT_EQ(Found[0].VcHash, R.VcHash);
    EXPECT_EQ(Found[0].SolveTimeMicros, 2500u);
  }
}

TEST(RemoteCacheClient, DeadServerDegradesAndBreakerOpens) {
  // Nothing listens here (port 1 is never a cache server).
  wire::RemoteClientOptions RC = fastClient("127.0.0.1:1");
  RC.TimeoutMs = 200;
  RC.Retries = 0;
  RC.BreakerThreshold = 2;
  wire::RemoteCache Client(std::move(RC));
  std::string Error;
  std::vector<wire::ProofRecord> Found;
  for (int I = 0; I < 5; ++I)
    EXPECT_FALSE(Client.multiGet(1, {1}, Found, Error));
  wire::RemoteClientStats CS = Client.clientStats();
  EXPECT_EQ(CS.Ops, 5u);
  EXPECT_EQ(CS.Errors, 5u);
}

TEST(RemoteCacheClient, MalformedAddressFailsFast) {
  wire::RemoteCache Client(fastClient("not-an-address"));
  EXPECT_FALSE(Client.valid());
  std::string Error;
  std::vector<wire::ProofRecord> Found;
  EXPECT_FALSE(Client.multiGet(1, {1}, Found, Error));
}

//===----------------------------------------------------------------------===//
// The tiered ProofCache on top of the live server
//===----------------------------------------------------------------------===//

TEST(TieredProofCache, PrefetchServesRemoteHitsAndAttributesTiers) {
  TempDir Dir;
  wire::CacheServerOptions SO;
  SO.Dir = Dir.str() + "/server";
  SO.Shards = 2;
  SO.Port = 0;
  ServerFixture S(SO);
  ASSERT_TRUE(S.Started);
  const uint64_t OptsHash = 99;

  // Client A proves two obligations; write-behind pushes them.
  {
    service::ProofCache A(Dir.str() + "/cacheA");
    A.attachRemote(
        std::make_unique<wire::RemoteCache>(fastClient(S.tcpAddress())),
        OptsHash);
    A.store(101, validResult(12.0));
    A.store(202, validResult(3.5));
    A.flush(); // Drains the outbox to the server.
  }
  wire::StatsResponse Stats;
  {
    wire::RemoteCache Probe(fastClient(S.tcpAddress()));
    std::string Error;
    ASSERT_TRUE(Probe.stats(Stats, Error)) << Error;
  }
  ASSERT_EQ(Stats.Entries, 2u) << "write-behind must reach the server";

  // Client B, disjoint local store: prefetch then lookup must hit,
  // attributed to the remote tier, without bumping Stores.
  service::ProofCache B(Dir.str() + "/cacheB");
  B.attachRemote(
      std::make_unique<wire::RemoteCache>(fastClient(S.tcpAddress())),
      OptsHash);
  B.prefetchAsync({101, 202, 303});
  auto R1 = B.lookup(101);
  auto R2 = B.lookup(202);
  auto R3 = B.lookup(303);
  ASSERT_TRUE(R1.has_value());
  EXPECT_EQ(R1->Status, smt::CheckStatus::Valid);
  EXPECT_NEAR(R1->TimeMs, 12.0, 0.01);
  ASSERT_TRUE(R2.has_value());
  EXPECT_FALSE(R3.has_value());
  service::CacheStats BS = B.stats();
  EXPECT_EQ(BS.Hits, 2u);
  EXPECT_EQ(BS.RemoteHits, 2u);
  EXPECT_EQ(BS.L1Hits, 0u);
  EXPECT_EQ(BS.L2Hits, 0u);
  EXPECT_EQ(BS.Misses, 1u);
  EXPECT_EQ(BS.RemoteMisses, 1u);
  EXPECT_EQ(BS.Stores, 0u) << "remote inserts are not local stores";
}

TEST(TieredProofCache, TierAttributionL1VsL2) {
  TempDir Dir;
  {
    service::ProofCache C(Dir.str() + "/cache");
    C.store(1, validResult(1.0));
    service::CacheStats S = C.stats();
    ASSERT_TRUE(C.lookup(1).has_value());
    S = C.stats();
    EXPECT_EQ(S.L1Hits, 1u) << "same-session entry is an L1 hit";
    EXPECT_EQ(S.L2Hits, 0u);
  }
  {
    service::ProofCache C(Dir.str() + "/cache");
    ASSERT_TRUE(C.lookup(1).has_value());
    service::CacheStats S = C.stats();
    EXPECT_EQ(S.L1Hits, 0u);
    EXPECT_EQ(S.L2Hits, 1u) << "disk-loaded entry is an L2 hit";
  }
}

TEST(TieredProofCache, AliasPromotionHitsWithoutStoreBump) {
  service::ProofCache C; // In-memory.
  // Stored under the alias (sliced) key only.
  C.store(555, validResult(2.0));
  service::CacheStats S0 = C.stats();
  EXPECT_EQ(S0.Stores, 1u);
  // Canonical key misses, alias hits: promoted, counted as a hit.
  auto R = C.lookup(444, 555);
  ASSERT_TRUE(R.has_value());
  service::CacheStats S1 = C.stats();
  EXPECT_EQ(S1.Hits, 1u);
  EXPECT_EQ(S1.Stores, 1u) << "promotion is not a new proof";
  // Now the canonical key is resident on its own.
  EXPECT_TRUE(C.contains(444));
}

TEST(TieredProofCache, DeadRemoteNeverChangesVerdicts) {
  TempDir Dir;
  service::ProofCache C(Dir.str() + "/cache");
  wire::RemoteClientOptions RC = fastClient("127.0.0.1:1");
  RC.TimeoutMs = 100;
  RC.Retries = 0;
  C.attachRemote(std::make_unique<wire::RemoteCache>(std::move(RC)), 5);
  C.prefetchAsync({1, 2, 3});
  EXPECT_FALSE(C.lookup(1).has_value());
  C.store(9, validResult(1.0));
  auto R = C.lookup(9);
  ASSERT_TRUE(R.has_value()) << "local tiers must be unaffected";
  C.flush(); // Must not hang on the dead push.
  service::CacheStats S = C.stats();
  EXPECT_GE(S.RemoteErrors, 1u);
  EXPECT_EQ(S.Hits, 1u);
}

TEST(TieredProofCache, ServerStoppedMidRunDegrades) {
  TempDir Dir;
  auto SO = wire::CacheServerOptions();
  SO.Dir = Dir.str() + "/server";
  SO.Shards = 1;
  SO.Port = 0;
  auto S = std::make_unique<ServerFixture>(SO);
  ASSERT_TRUE(S->Started);

  service::ProofCache C(Dir.str() + "/cache");
  wire::RemoteClientOptions RC = fastClient(S->tcpAddress());
  RC.TimeoutMs = 300;
  RC.Retries = 0;
  C.attachRemote(std::make_unique<wire::RemoteCache>(std::move(RC)), 5);
  C.store(1, validResult(1.0));
  C.flush();
  ASSERT_EQ(S->Server.shard(0).size(), 1u);

  S->stop(); // Server gone; the client must degrade, not fail.
  C.prefetchAsync({42});
  EXPECT_FALSE(C.lookup(42).has_value());
  C.store(2, validResult(1.0));
  ASSERT_TRUE(C.lookup(2).has_value());
  C.flush();
}

} // namespace
