//===- service_test.cpp - Verification service unit tests ------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the corpus-scale verification service: the stable
/// obligation hasher (cache keys), the content-addressed proof cache
/// (round-trip through the on-disk store), the bounded thread pool,
/// and the parallel scheduler (byte-identical reports across job
/// counts, cache-warm reruns).
///
//===----------------------------------------------------------------------===//

#include "service/ProofCache.h"
#include "service/Service.h"
#include "smt/VcHash.h"
#include "support/Hash.h"
#include "support/StringUtil.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <clocale>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace vcdryad;
namespace fs = std::filesystem;

namespace {

//===----------------------------------------------------------------------===//
// Stable hashing
//===----------------------------------------------------------------------===//

TEST(VcHashTest, EqualTermsHashEqual) {
  using namespace vir;
  // Structurally identical factory calls are hash-consed to the same
  // node, and equal structures hash equal either way.
  LExprRef A = mkIntLe(mkVar("x", Sort::Int),
                       mkIntAdd(mkVar("y", Sort::Int), mkInt(1)));
  LExprRef B = mkIntLe(mkVar("x", Sort::Int),
                       mkIntAdd(mkVar("y", Sort::Int), mkInt(1)));
  EXPECT_EQ(A.get(), B.get());
  EXPECT_EQ(smt::hashExpr(A), smt::hashExpr(B));
}

TEST(VcHashTest, AlphaDistinctTermsDiffer) {
  using namespace vir;
  // Same shape, different variable names: must not share a cache key.
  LExprRef A = mkIntLt(mkVar("x", Sort::Int), mkInt(0));
  LExprRef B = mkIntLt(mkVar("y", Sort::Int), mkInt(0));
  EXPECT_NE(smt::hashExpr(A), smt::hashExpr(B));
}

TEST(VcHashTest, ArgumentOrderMatters) {
  using namespace vir;
  LExprRef X = mkVar("x", Sort::Int);
  LExprRef Y = mkVar("y", Sort::Int);
  EXPECT_NE(smt::hashExpr(mkIntLt(X, Y)), smt::hashExpr(mkIntLt(Y, X)));
}

TEST(VcHashTest, ConstantsAndSortsMatter) {
  using namespace vir;
  EXPECT_NE(smt::hashExpr(mkInt(1)), smt::hashExpr(mkInt(2)));
  EXPECT_NE(smt::hashExpr(mkVar("v", Sort::Int)),
            smt::hashExpr(mkVar("v", Sort::Loc)));
}

TEST(VcHashTest, SharedDagHashesLikeTree) {
  using namespace vir;
  // A guard sharing one subterm twice must hash like the unshared
  // equivalent (content addressing, not node identity).
  LExprRef Shared = mkIntAdd(mkVar("x", Sort::Int), mkInt(1));
  LExprRef Dag = mkAnd(mkIntLt(Shared, mkInt(5)),
                       mkIntLe(mkInt(0), Shared));
  LExprRef Tree =
      mkAnd(mkIntLt(mkIntAdd(mkVar("x", Sort::Int), mkInt(1)), mkInt(5)),
            mkIntLe(mkInt(0), mkIntAdd(mkVar("x", Sort::Int), mkInt(1))));
  EXPECT_EQ(smt::hashExpr(Dag), smt::hashExpr(Tree));
}

TEST(VcHashTest, ObligationKeyDependsOnSolverOptions) {
  using namespace vir;
  LExprRef G = mkBool(true);
  LExprRef C = mkIntLe(mkVar("x", Sort::Int), mkVar("x", Sort::Int));
  smt::SolverOptions A, B;
  A.TimeoutMs = 1000;
  B.TimeoutMs = 2000;
  EXPECT_NE(smt::hashObligation(G, C, A), smt::hashObligation(G, C, B));
  B.TimeoutMs = 1000;
  EXPECT_EQ(smt::hashObligation(G, C, A), smt::hashObligation(G, C, B));
  B.BackgroundAxioms.push_back(mkBool(true));
  EXPECT_NE(smt::hashObligation(G, C, A), smt::hashObligation(G, C, B));
  EXPECT_NE(smt::hashObligation(G, C, A, /*Salt=*/0),
            smt::hashObligation(G, C, A, /*Salt=*/1));
}

TEST(VcHashTest, OptionsFingerprintSeparatesAblations) {
  verifier::VerifyOptions Base;
  uint64_t FP = service::optionsFingerprint(Base);

  verifier::VerifyOptions NoUnfold = Base;
  NoUnfold.Instr.Unfold = false;
  EXPECT_NE(FP, service::optionsFingerprint(NoUnfold));

  verifier::VerifyOptions Quant = Base;
  Quant.Instr.Axioms = instr::InstrOptions::AxiomMode::Quantified;
  EXPECT_NE(FP, service::optionsFingerprint(Quant));

  verifier::VerifyOptions Timeout = Base;
  Timeout.TimeoutMs += 1;
  EXPECT_NE(FP, service::optionsFingerprint(Timeout));

  EXPECT_EQ(FP, service::optionsFingerprint(Base));
}

TEST(HashHexTest, RoundTrip) {
  uint64_t D = Fnv1a().str("obligation").digest();
  std::string Hex = hashToHex(D);
  EXPECT_EQ(Hex.size(), 16u);
  uint64_t Back = 0;
  ASSERT_TRUE(hashFromHex(Hex, Back));
  EXPECT_EQ(Back, D);
  EXPECT_FALSE(hashFromHex("xyz", Back));
  EXPECT_FALSE(hashFromHex("XYZ0123456789abc", Back));
}

//===----------------------------------------------------------------------===//
// CLI numeric parsing (shared helper)
//===----------------------------------------------------------------------===//

TEST(ParseUnsignedTest, AcceptsDigits) {
  EXPECT_EQ(parseUnsigned("0"), 0ul);
  EXPECT_EQ(parseUnsigned("60000"), 60000ul);
}

TEST(ParseUnsignedTest, RejectsMalformed) {
  EXPECT_FALSE(parseUnsigned(""));
  EXPECT_FALSE(parseUnsigned("abc"));
  EXPECT_FALSE(parseUnsigned("12a"));
  EXPECT_FALSE(parseUnsigned("-1"));
  EXPECT_FALSE(parseUnsigned("1 "));
  EXPECT_FALSE(parseUnsigned("99999999999999999999999999"));
}

//===----------------------------------------------------------------------===//
// Thread pool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryTask) {
  std::atomic<unsigned> Count{0};
  ThreadPool Pool(4, /*QueueCap=*/8); // Cap < tasks: submit must block.
  for (int I = 0; I != 500; ++I)
    Pool.submit([&Count](unsigned) { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 500u);
  // The pool is reusable after wait().
  Pool.submit([&Count](unsigned) { Count.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 501u);
}

TEST(ThreadPoolTest, WorkerIdsInRange) {
  std::atomic<bool> Bad{false};
  ThreadPool Pool(3);
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Bad](unsigned W) {
      if (W >= 3)
        Bad = true;
    });
  Pool.wait();
  EXPECT_FALSE(Bad.load());
}

//===----------------------------------------------------------------------===//
// Proof cache
//===----------------------------------------------------------------------===//

class TempDirTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = fs::path(::testing::TempDir()) /
          ("vcd_service_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  fs::path Dir;
};

using ProofCacheTest = TempDirTest;

TEST_F(ProofCacheTest, RoundTripThroughDisk) {
  std::string CacheDir = (Dir / "cache").string();
  smt::CheckResult Valid;
  Valid.Status = smt::CheckStatus::Valid;
  Valid.TimeMs = 12.5;
  {
    service::ProofCache Cache(CacheDir);
    EXPECT_EQ(Cache.openError(), "");
    EXPECT_FALSE(Cache.lookup(42)); // Miss on a fresh store.
    Cache.store(42, Valid);
    EXPECT_TRUE(Cache.lookup(42));
    // flush() runs in the destructor.
  }
  service::ProofCache Reloaded(CacheDir);
  EXPECT_EQ(Reloaded.size(), 1u);
  auto Hit = Reloaded.lookup(42);
  ASSERT_TRUE(Hit);
  EXPECT_EQ(Hit->Status, smt::CheckStatus::Valid);
  EXPECT_DOUBLE_EQ(Hit->TimeMs, 12.5);
  EXPECT_FALSE(Reloaded.lookup(43));
  service::CacheStats S = Reloaded.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
}

TEST_F(ProofCacheTest, ContainsLeavesStatisticsAlone) {
  // The cache-aware scheduler probes with contains() before dispatch;
  // the probe must not inflate the hit/miss counters the report (and
  // the warm/cold byte-compare gates) are built from.
  service::ProofCache Cache((Dir / "cache").string());
  smt::CheckResult Valid;
  Valid.Status = smt::CheckStatus::Valid;
  Cache.store(7, Valid);
  EXPECT_TRUE(Cache.contains(7));
  EXPECT_FALSE(Cache.contains(8));
  service::CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 0u);
  EXPECT_EQ(S.Stores, 1u);
}

TEST_F(ProofCacheTest, OnlyValidResultsPersist) {
  std::string CacheDir = (Dir / "cache").string();
  {
    service::ProofCache Cache(CacheDir);
    smt::CheckResult R;
    R.Status = smt::CheckStatus::Invalid;
    Cache.store(1, R);
    R.Status = smt::CheckStatus::Unknown;
    Cache.store(2, R);
    R.Status = smt::CheckStatus::Valid;
    Cache.store(3, R);
    EXPECT_FALSE(Cache.lookup(1));
    EXPECT_FALSE(Cache.lookup(2));
    EXPECT_TRUE(Cache.lookup(3));
  }
  service::ProofCache Reloaded(CacheDir);
  EXPECT_EQ(Reloaded.size(), 1u);
}

TEST_F(ProofCacheTest, CorruptLinesAreSkipped) {
  std::string CacheDir = (Dir / "cache").string();
  fs::create_directories(CacheDir);
  std::ofstream Store(fs::path(CacheDir) / "proofs-v1.txt");
  Store << "not a cache line\n"
        << hashToHex(7) << " V 3.25\n"
        << "0123 V torn\n";
  Store.close();
  service::ProofCache Cache(CacheDir);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_TRUE(Cache.lookup(7));
}

TEST_F(ProofCacheTest, TrailingGarbageInTimeFieldIsRejected) {
  std::string CacheDir = (Dir / "cache").string();
  fs::create_directories(CacheDir);
  std::ofstream Store(fs::path(CacheDir) / "proofs-v1.txt");
  // std::stod would happily parse the prefix of all three; the strict
  // loader must reject anything that is not a full clean number.
  Store << hashToHex(1) << " V 3.25abc\n"
        << hashToHex(2) << " V 12,5\n"
        << hashToHex(3) << " V 1.0 extra\n"
        << hashToHex(4) << " V 2.75\n";
  Store.close();
  service::ProofCache Cache(CacheDir);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_TRUE(Cache.lookup(4));
}

TEST_F(ProofCacheTest, DuplicateStoreLinesDedupeLastWriteWins) {
  // Regression: a store carrying duplicate keys (appended by an old
  // pre-atomic writer) must collapse to one entry on load — keeping
  // the *last* occurrence — and flush must compact the store back to
  // one line per key.
  std::string CacheDir = (Dir / "cache").string();
  fs::create_directories(CacheDir);
  {
    std::ofstream Store(fs::path(CacheDir) / "proofs-v1.txt");
    Store << hashToHex(11) << " V 1.0\n"
          << hashToHex(12) << " V 2.0\n"
          << hashToHex(11) << " V 3.0\n"
          << hashToHex(11) << " V 4.0\n";
  }
  {
    service::ProofCache Cache(CacheDir);
    EXPECT_EQ(Cache.size(), 2u);
    auto Hit = Cache.lookup(11);
    ASSERT_TRUE(Hit);
    EXPECT_DOUBLE_EQ(Hit->TimeMs, 4.0); // Last write won.
    // Dirty the cache so flush rewrites (and compacts) the store.
    smt::CheckResult Valid;
    Valid.Status = smt::CheckStatus::Valid;
    Valid.TimeMs = 5.0;
    Cache.store(13, Valid);
  }
  std::ifstream In(fs::path(CacheDir) / "proofs-v1.txt");
  std::string Line;
  unsigned Total = 0, Key11 = 0;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    ++Total;
    if (Line.rfind(hashToHex(11), 0) == 0)
      ++Key11;
  }
  EXPECT_EQ(Total, 3u);
  EXPECT_EQ(Key11, 1u);
}

TEST_F(ProofCacheTest, RepeatedFlushCyclesKeepOneLinePerKey) {
  // N open/store/flush cycles over the same key must never grow the
  // store past one line for it.
  std::string CacheDir = (Dir / "cache").string();
  smt::CheckResult Valid;
  Valid.Status = smt::CheckStatus::Valid;
  for (int I = 0; I != 5; ++I) {
    service::ProofCache Cache(CacheDir);
    Valid.TimeMs = 1.0 + I;
    Cache.store(21, Valid);
    Cache.flush();
    Cache.flush(); // A clean second flush must be a no-op.
  }
  std::ifstream In(fs::path(CacheDir) / "proofs-v1.txt");
  std::string Line;
  unsigned Lines = 0;
  while (std::getline(In, Line))
    if (!Line.empty())
      ++Lines;
  EXPECT_EQ(Lines, 1u);
}

TEST_F(ProofCacheTest, InterleavedFlushersDoNotClobberEachOther) {
  // Regression for the non-atomic flush: two caches open the same
  // store, each learns a different proof, and each flushes. The
  // replace-by-rename flush must fold the other writer's on-disk
  // entries in, not overwrite them with its own view.
  std::string CacheDir = (Dir / "cache").string();
  smt::CheckResult Valid;
  Valid.Status = smt::CheckStatus::Valid;
  Valid.TimeMs = 1.0;
  service::ProofCache A(CacheDir);
  service::ProofCache B(CacheDir);
  A.store(100, Valid);
  B.store(200, Valid);
  B.flush();
  A.flush(); // Without merging, this would drop key 200.
  service::ProofCache Reloaded(CacheDir);
  EXPECT_EQ(Reloaded.size(), 2u);
  EXPECT_TRUE(Reloaded.lookup(100));
  EXPECT_TRUE(Reloaded.lookup(200));
}

TEST_F(ProofCacheTest, ConcurrentWritersPreserveEveryEntry) {
  std::string CacheDir = (Dir / "cache").string();
  constexpr int PerWriter = 50;
  auto Writer = [&](uint64_t Base) {
    service::ProofCache Cache(CacheDir);
    smt::CheckResult Valid;
    Valid.Status = smt::CheckStatus::Valid;
    Valid.TimeMs = 0.5;
    for (int I = 0; I != PerWriter; ++I) {
      Cache.store(Base + I, Valid);
      // Interleave flushes with the sibling to exercise the lock +
      // merge path, not just one final union write.
      if (I % 10 == 9)
        Cache.flush();
    }
    // Destructor flushes the tail.
  };
  std::thread T1(Writer, 1000);
  std::thread T2(Writer, 2000);
  T1.join();
  T2.join();
  service::ProofCache Reloaded(CacheDir);
  EXPECT_EQ(Reloaded.size(), 2u * PerWriter);
  EXPECT_TRUE(Reloaded.lookup(1000));
  EXPECT_TRUE(Reloaded.lookup(2000 + PerWriter - 1));
}

TEST_F(ProofCacheTest, StoreSurvivesNumericLocale) {
  // Under LC_NUMERIC=de_DE the decimal separator is ','; both the
  // writer (fixed-point formatter) and the loader (std::from_chars)
  // must ignore it. With locale-sensitive IO this test would either
  // write "12,500" or parse "12.5" as 12.
  const char *Old = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
  if (!Old)
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  std::string CacheDir = (Dir / "cache").string();
  smt::CheckResult Valid;
  Valid.Status = smt::CheckStatus::Valid;
  Valid.TimeMs = 12.5;
  {
    service::ProofCache Cache(CacheDir);
    Cache.store(9, Valid);
  }
  service::ProofCache Reloaded(CacheDir);
  std::setlocale(LC_NUMERIC, "C");
  ASSERT_EQ(Reloaded.size(), 1u);
  auto Hit = Reloaded.lookup(9);
  ASSERT_TRUE(Hit);
  EXPECT_DOUBLE_EQ(Hit->TimeMs, 12.5);
}

//===----------------------------------------------------------------------===//
// Scheduler / batch service
//===----------------------------------------------------------------------===//

class SchedulerTest : public TempDirTest {
protected:
  void writeFile(const char *Name, const char *Text) {
    std::ofstream Out(Dir / Name);
    Out << Text;
  }

  /// Three tiny programs: two that verify and one that must fail, so
  /// the report covers both verdicts.
  void writeCorpus() {
    writeFile("a_min.c", R"(
int min2(int a, int b)
  _(ensures result <= a && result <= b)
  _(ensures result == a || result == b)
{
  if (a < b)
    return a;
  return b;
}
)");
    writeFile("b_clamp.c", R"(
int clamp0(int a)
  _(ensures 0 <= result)
  _(ensures result == a || result == 0)
{
  if (a < 0)
    return 0;
  return a;
}

int add3(int a)
  _(ensures result == a + 3)
{
  return a + 1 + 2;
}
)");
    writeFile("c_bad.c", R"(
int bad_abs(int a)
  _(ensures 0 <= result)
{
  return a;
}
)");
  }

  service::BatchReport runBatch(unsigned Jobs, std::string CacheDir = "") {
    service::ServiceOptions Opts;
    Opts.Jobs = Jobs;
    Opts.CacheDir = std::move(CacheDir);
    Opts.Verify.TimeoutMs = 30000;
    service::VerificationService Service(Opts);
    std::string Error;
    std::vector<std::string> Inputs =
        service::collectBatchInputs({Dir.string()}, Error);
    EXPECT_EQ(Error, "");
    return Service.run(Inputs);
  }
};

TEST_F(SchedulerTest, ReportIsByteIdenticalAcrossJobCounts) {
  writeCorpus();
  service::BatchReport R1 = runBatch(1);
  service::BatchReport R8 = runBatch(8);
  EXPECT_EQ(service::toJson(R1, /*IncludeTimes=*/false),
            service::toJson(R8, /*IncludeTimes=*/false));
  EXPECT_FALSE(R8.AllVerified); // c_bad.c must fail...
  EXPECT_EQ(R8.NumFailed, 1u);
  EXPECT_EQ(R8.NumVerified, 3u); // ...and everything else verify.
  EXPECT_EQ(R8.Files.size(), 3u);
}

TEST_F(SchedulerTest, FunctionsReportedInSourceOrder) {
  writeCorpus();
  service::BatchReport R = runBatch(8);
  ASSERT_EQ(R.Files.size(), 3u);
  // Files sort lexicographically from the directory walk.
  EXPECT_NE(R.Files[0].Path.find("a_min.c"), std::string::npos);
  ASSERT_EQ(R.Files[1].Functions.size(), 2u);
  EXPECT_EQ(R.Files[1].Functions[0].Result.Name, "clamp0");
  EXPECT_EQ(R.Files[1].Functions[1].Result.Name, "add3");
  EXPECT_EQ(R.Files[1].Functions[1].Result.SourceIndex, 1u);
}

TEST_F(SchedulerTest, WarmRerunIsAllCacheHits) {
  writeCorpus();
  std::string CacheDir = (Dir / "cache").string();
  service::BatchReport Cold = runBatch(4, CacheDir);
  EXPECT_EQ(Cold.Cache.Hits, 0u);
  EXPECT_GT(Cold.Cache.Stores, 0u);
  service::BatchReport Warm = runBatch(4, CacheDir);
  // Every Valid obligation hits; only c_bad's failing VC re-solves.
  EXPECT_GE(Warm.Cache.Hits, Cold.Cache.Stores);
  EXPECT_LE(Warm.Cache.Misses, 1u);
  EXPECT_EQ(Warm.Cache.Stores, 0u);
  // Warm verdicts match cold verdicts exactly.
  EXPECT_EQ(service::toJson(Warm, false).find("\"hits\""),
            service::toJson(Cold, false).find("\"hits\""));
  ASSERT_EQ(Warm.Files.size(), Cold.Files.size());
  for (size_t I = 0; I != Warm.Files.size(); ++I) {
    ASSERT_EQ(Warm.Files[I].Functions.size(),
              Cold.Files[I].Functions.size());
    for (size_t J = 0; J != Warm.Files[I].Functions.size(); ++J)
      EXPECT_EQ(Warm.Files[I].Functions[J].Result.Verified,
                Cold.Files[I].Functions[J].Result.Verified);
  }
}

TEST_F(SchedulerTest, SharePreludeAndCacheAwareAreVerdictNeutral) {
  // The daemon's warm-path options — one scoped Z3 session per file
  // and most-cached-first dispatch — must not change a verdict, a
  // counter, or a byte of the deterministic report.
  writeCorpus();
  std::string Error;
  std::vector<std::string> Inputs =
      service::collectBatchInputs({Dir.string()}, Error);
  ASSERT_EQ(Error, "");
  auto Run = [&](bool SharePrelude, bool CacheAware,
                 const std::string &CacheDir) {
    service::ServiceOptions Opts;
    Opts.Jobs = 2;
    Opts.Verify.TimeoutMs = 30000;
    Opts.CacheDir = CacheDir;
    Opts.SharePrelude = SharePrelude;
    Opts.CacheAware = CacheAware;
    service::VerificationService Service(Opts);
    return service::toJson(Service.run(Inputs), /*IncludeTimes=*/false);
  };
  std::string Plain = Run(false, false, "");
  EXPECT_EQ(Run(true, false, ""), Plain);
  // Cache-aware ordering with a warm cache (the interesting case:
  // non-trivial dispatch reorder) against the same baseline.
  std::string C1 = (Dir / "c1").string(), C2 = (Dir / "c2").string();
  Run(false, false, C1);
  Run(false, true, C2);
  auto StripCacheFields = [](std::string J) {
    // The two runs use different cache dirs; blank the "dir" line.
    size_t P = J.find("\"dir\": ");
    if (P != std::string::npos) {
      size_t E = J.find('\n', P);
      J.erase(P, E - P);
    }
    return J;
  };
  std::string WarmPlain = StripCacheFields(Run(false, false, C1));
  std::string WarmAware = StripCacheFields(Run(true, true, C2));
  EXPECT_EQ(WarmAware, WarmPlain);
}

TEST_F(SchedulerTest, ResidentPlansReuseAcrossRuns) {
  writeCorpus();
  std::string Error;
  std::vector<std::string> Inputs =
      service::collectBatchInputs({Dir.string()}, Error);
  ASSERT_EQ(Error, "");
  service::ServiceOptions Opts;
  Opts.Jobs = 2;
  Opts.Verify.TimeoutMs = 30000;
  Opts.CacheDir = (Dir / "cache").string();
  Opts.ResidentPlans = true;
  service::VerificationService Service(Opts);
  service::BatchReport Cold = Service.run(Inputs);
  EXPECT_EQ(Service.residentPlanCount(), 3u);
  service::BatchReport Warm = Service.run(Inputs);
  // Per-run stat deltas: the resident warm run reports what a fresh
  // process would — hits for solved VCs, zero stores.
  EXPECT_EQ(Warm.Cache.Stores, 0u);
  EXPECT_GE(Warm.Cache.Hits + Warm.Cache.Misses, 1u);
  ASSERT_EQ(Warm.Files.size(), Cold.Files.size());
  for (size_t I = 0; I != Warm.Files.size(); ++I)
    for (size_t J = 0; J != Warm.Files[I].Functions.size(); ++J)
      EXPECT_EQ(Warm.Files[I].Functions[J].Result.Verified,
                Cold.Files[I].Functions[J].Result.Verified);
  // Editing a file invalidates exactly its plan: the resident count
  // stays, verdicts still correct.
  writeFile("a_min.c", R"(
int min2(int a, int b)
  _(ensures result <= a && result <= b)
{
  if (a < b)
    return a;
  return b;
}
)");
  service::BatchReport Edited = Service.run(Inputs);
  EXPECT_EQ(Service.residentPlanCount(), 3u);
  EXPECT_TRUE(Edited.Files[0].Ok);
  EXPECT_TRUE(Edited.Files[0].Functions[0].Result.Verified);
}

TEST_F(SchedulerTest, ShutdownRequestInterruptsTheRun) {
  writeCorpus();
  std::string Error;
  std::vector<std::string> Inputs =
      service::collectBatchInputs({Dir.string()}, Error);
  ASSERT_EQ(Error, "");
  service::requestShutdown();
  service::ServiceOptions Opts;
  Opts.Jobs = 1;
  Opts.Verify.TimeoutMs = 30000;
  service::VerificationService Service(Opts);
  service::BatchReport Rep = Service.run(Inputs);
  service::resetShutdown();
  EXPECT_TRUE(Rep.Interrupted);
  EXPECT_FALSE(Rep.AllVerified);
  // The report says so in machine-readable form.
  EXPECT_NE(service::toJson(Rep, false).find("\"interrupted\": true"),
            std::string::npos);
  // And a normal run afterwards is unaffected by the cleared flag.
  service::BatchReport Clean = Service.run(Inputs);
  EXPECT_FALSE(Clean.Interrupted);
  EXPECT_EQ(Clean.NumVerified, 3u);
}

TEST_F(SchedulerTest, ManifestExpansion) {
  writeCorpus();
  std::ofstream Manifest(Dir / "corpus.txt");
  Manifest << "# tiny corpus\n"
           << "a_min.c\n"
           << "b_clamp.c\n";
  Manifest.close();
  std::string Error;
  std::vector<std::string> Inputs = service::collectBatchInputs(
      {(Dir / "corpus.txt").string()}, Error);
  EXPECT_EQ(Error, "");
  ASSERT_EQ(Inputs.size(), 2u);
  EXPECT_NE(Inputs[0].find("a_min.c"), std::string::npos);

  // Missing entries are an error, not a silent skip.
  std::ofstream BadManifest(Dir / "bad.txt");
  BadManifest << "no_such_file.c\n";
  BadManifest.close();
  Inputs =
      service::collectBatchInputs({(Dir / "bad.txt").string()}, Error);
  EXPECT_TRUE(Inputs.empty());
  EXPECT_NE(Error.find("no_such_file.c"), std::string::npos);
}

TEST_F(SchedulerTest, FrontendErrorsAreReportedPerFile) {
  writeFile("broken.c", "int f( { not C at all\n");
  writeFile("ok.c", R"(
int id1(int a)
  _(ensures result == a)
{
  return a;
}
)");
  service::BatchReport R = runBatch(4);
  ASSERT_EQ(R.Files.size(), 2u);
  EXPECT_FALSE(R.AllVerified);
  EXPECT_EQ(R.NumFrontendErrors, 1u);
  EXPECT_FALSE(R.Files[0].Ok);
  EXPECT_NE(R.Files[0].Error, "");
  EXPECT_TRUE(R.Files[1].Ok);
  EXPECT_TRUE(R.Files[1].Functions[0].Result.Verified);
}

TEST_F(SchedulerTest, CancelledSlotsAreDistinctFromUnknown) {
  // Two independently-invalid null-dereference obligations: the first
  // escalated VC comes back Invalid, first-failure cancellation skips
  // the second. The skipped slot was never handed to a solver, so the
  // report must say "cancelled" — not "unknown", which would read as
  // solver incompleteness. (Two failing *postconditions* would not
  // do: each postcondition VC assumes its predecessors, so the second
  // one's guard turns contradictory and the fast pass settles it.)
  writeFile("two_bad.c", R"(
struct node {
  struct node *next;
  int key;
};

int two_bad(struct node *x, struct node *y)
  _(ensures result == 0)
{
  int a = x->key;
  int b = y->key;
  return 0;
}
)");
  service::BatchReport R = runBatch(1);
  ASSERT_EQ(R.Files.size(), 1u);
  ASSERT_EQ(R.Files[0].Functions.size(), 1u);
  const verifier::FunctionResult &Fn = R.Files[0].Functions[0].Result;
  EXPECT_FALSE(Fn.Verified);
  unsigned Invalid = 0, Cancelled = 0;
  for (const verifier::VCStat &St : Fn.VCStats) {
    if (St.Cancelled) {
      ++Cancelled;
      continue;
    }
    if (St.Status == smt::CheckStatus::Invalid)
      ++Invalid;
    // Nothing may be reported Unknown here: every solved VC has a
    // definite verdict and every skipped one is marked cancelled.
    EXPECT_NE(St.Status, smt::CheckStatus::Unknown) << St.Reason;
  }
  EXPECT_EQ(Invalid, 1u);
  EXPECT_GE(Cancelled, 1u);
  std::string Json = service::toJson(R, /*IncludeTimes=*/true);
  EXPECT_NE(Json.find("\"status\": \"cancelled\""), std::string::npos);
  EXPECT_EQ(Json.find("\"status\": \"unknown\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ProgramResult source-order determinism (satellite)
//===----------------------------------------------------------------------===//

TEST(ProgramResultTest, SortBySourceRestoresSourceOrder) {
  verifier::ProgramResult R;
  verifier::FunctionResult F;
  F.Name = "third";
  F.SourceIndex = 2;
  R.Functions.push_back(F);
  F.Name = "first";
  F.SourceIndex = 0;
  R.Functions.push_back(F);
  F.Name = "second";
  F.SourceIndex = 1;
  R.Functions.push_back(F);
  R.sortBySource();
  EXPECT_EQ(R.Functions[0].Name, "first");
  EXPECT_EQ(R.Functions[1].Name, "second");
  EXPECT_EQ(R.Functions[2].Name, "third");
  ASSERT_NE(R.function("second"), nullptr);
  EXPECT_EQ(R.function("second")->SourceIndex, 1u);
}

} // namespace
