//===- preprocess_test.cpp - VC preprocessing engine tests ------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the VC preprocessing pipeline: the hash-consing
/// arena (dedup, pointer equality, stable digests), the
/// equivalence-preserving simplifier (rules and idempotence),
/// cone-of-influence slicing, the verifier's session helpers, the Z3
/// incremental-session API, and end-to-end verdict preservation with
/// preprocessing and the timeout ladder toggled.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"
#include "support/Hash.h"
#include "verifier/Verifier.h"
#include "vir/LExpr.h"
#include "vir/Simplify.h"
#include "vir/Slice.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::vir;

namespace {

LExprRef iVar(const char *N) { return mkVar(N, Sort::Int); }
LExprRef bVar(const char *N) { return mkVar(N, Sort::Bool); }

} // namespace

//===----------------------------------------------------------------------===//
// Hash-consing arena
//===----------------------------------------------------------------------===//

TEST(InternTest, LeafFactoriesDedup) {
  InternStats Before = internStats();
  LExprRef A = iVar("x");
  LExprRef B = iVar("x");
  EXPECT_EQ(A.get(), B.get());
  EXPECT_TRUE(A->isInterned());
  EXPECT_NE(iVar("y").get(), A.get());
  EXPECT_EQ(mkInt(42).get(), mkInt(42).get());
  EXPECT_EQ(mkBool(true).get(), mkBool(true).get());
  EXPECT_EQ(mkNil().get(), mkNil().get());
  // Same name, different sort: distinct nodes.
  EXPECT_NE(mkVar("x", Sort::Loc).get(), A.get());
  InternStats After = internStats();
  EXPECT_GT(After.DedupHits, Before.DedupHits);
}

TEST(InternTest, CompositeDedupIsDeep) {
  LExprRef A = mkIntAdd(iVar("x"), mkInt(1));
  LExprRef B = mkIntAdd(iVar("x"), mkInt(1));
  EXPECT_EQ(A.get(), B.get());
  EXPECT_NE(mkIntAdd(iVar("x"), mkInt(2)).get(), A.get());
  EXPECT_NE(mkIntSub(iVar("x"), mkInt(1)).get(), A.get());
}

TEST(InternTest, IdsUniqueAmongLiveNodes) {
  LExprRef A = iVar("intern_id_a");
  LExprRef B = iVar("intern_id_b");
  EXPECT_NE(A->Id, 0u);
  EXPECT_NE(B->Id, 0u);
  EXPECT_NE(A->Id, B->Id);
}

TEST(InternTest, StructurallyEqualUsesPointerIdentity) {
  LExprRef A = mkIntLt(iVar("x"), mkInt(5));
  LExprRef B = mkIntLt(iVar("x"), mkInt(5));
  EXPECT_TRUE(structurallyEqual(A, B));
  EXPECT_FALSE(structurallyEqual(A, mkIntLt(iVar("y"), mkInt(5))));
  EXPECT_FALSE(structurallyEqual(A, mkIntLe(iVar("x"), mkInt(5))));
}

TEST(InternTest, RebuildReturnsCanonicalNode) {
  LExprRef E = mkIntAdd(iVar("x"), iVar("y"));
  LExprRef R = rebuild(E, {iVar("z"), iVar("y")});
  EXPECT_EQ(R.get(), mkIntAdd(iVar("z"), iVar("y")).get());
  // Rebuilding with identical children must give the node back.
  EXPECT_EQ(rebuild(E, {iVar("x"), iVar("y")}).get(), E.get());
}

TEST(InternTest, StableHashMatchesDocumentedRecipe) {
  // Recompute the digest independently: FNV-1a over op, sort, name,
  // constant, arity, then child digests. A change to the recipe
  // silently invalidates every persisted proof-cache entry, so this
  // is pinned by hand here.
  LExprRef X = iVar("x");
  Fnv1a HX;
  HX.u64(static_cast<uint64_t>(LOp::Var));
  HX.u64(static_cast<uint64_t>(Sort::Int));
  HX.str("x");
  HX.i64(0);
  HX.u64(0);
  EXPECT_EQ(stableExprHash(X), HX.digest());

  LExprRef Five = mkInt(5);
  LExprRef E = mkIntLt(X, Five);
  Fnv1a HE;
  HE.u64(static_cast<uint64_t>(LOp::IntLt));
  HE.u64(static_cast<uint64_t>(Sort::Bool));
  HE.str("");
  HE.i64(0);
  HE.u64(2);
  HE.u64(stableExprHash(X));
  HE.u64(stableExprHash(Five));
  EXPECT_EQ(stableExprHash(E), HE.digest());
}

TEST(InternTest, StableHashEqualStructuresHashEqual) {
  LExprRef A = mkAnd(mkIntLt(iVar("a"), iVar("b")), bVar("p"));
  LExprRef B = mkAnd(mkIntLt(iVar("a"), iVar("b")), bVar("p"));
  EXPECT_EQ(stableExprHash(A), stableExprHash(B));
  LExprRef C = mkAnd(mkIntLt(iVar("a"), iVar("c")), bVar("p"));
  EXPECT_NE(stableExprHash(A), stableExprHash(C));
}

//===----------------------------------------------------------------------===//
// Simplifier
//===----------------------------------------------------------------------===//

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_EQ(simplify(mkIntAdd(mkInt(2), mkInt(3))).get(), mkInt(5).get());
  EXPECT_EQ(simplify(mkIntSub(mkInt(2), mkInt(3))).get(), mkInt(-1).get());
  EXPECT_TRUE(simplify(mkIntLt(mkInt(1), mkInt(2)))->isBoolConst(true));
  EXPECT_TRUE(simplify(mkIntLe(mkInt(3), mkInt(2)))->isBoolConst(false));
  EXPECT_TRUE(simplify(mkEq(mkInt(7), mkInt(7)))->isBoolConst(true));
  LExprRef X = iVar("x");
  EXPECT_EQ(simplify(mkIntAdd(X, mkInt(0))).get(), X.get());
  EXPECT_EQ(simplify(mkIntSub(X, mkInt(0))).get(), X.get());
  EXPECT_EQ(simplify(mkIntSub(X, X)).get(), mkInt(0).get());
}

TEST(SimplifyTest, BooleanStructure) {
  LExprRef P = bVar("p"), Q = bVar("q");
  // Double negation.
  EXPECT_EQ(simplify(mkNot(mkNot(P))).get(), P.get());
  // Units and absorbing elements.
  EXPECT_EQ(simplify(mkAnd(P, mkBool(true))).get(), P.get());
  EXPECT_TRUE(simplify(mkAnd(P, mkBool(false)))->isBoolConst(false));
  EXPECT_EQ(simplify(mkOr(P, mkBool(false))).get(), P.get());
  EXPECT_TRUE(simplify(mkOr(P, mkBool(true)))->isBoolConst(true));
  // Flattening + dedup: (p && (p && q)) == (p && q).
  EXPECT_EQ(simplify(mkAnd(P, mkAnd(P, Q))).get(),
            simplify(mkAnd(P, Q)).get());
  // Implication.
  EXPECT_EQ(simplify(mkImplies(mkBool(true), P)).get(), P.get());
  EXPECT_TRUE(simplify(mkImplies(mkBool(false), P))->isBoolConst(true));
  EXPECT_TRUE(simplify(mkImplies(P, P))->isBoolConst(true));
  // Ite of booleans.
  EXPECT_EQ(simplify(mkIte(P, mkBool(true), mkBool(false))).get(), P.get());
  EXPECT_EQ(simplify(mkIte(P, mkBool(false), mkBool(true))).get(),
            simplify(mkNot(P)).get());
  EXPECT_EQ(simplify(mkIte(mkBool(true), P, Q)).get(), P.get());
  EXPECT_EQ(simplify(mkIte(P, Q, Q)).get(), Q.get());
  // Boolean equality.
  EXPECT_EQ(simplify(mkEq(P, mkBool(true))).get(), P.get());
  EXPECT_TRUE(simplify(mkEq(P, P))->isBoolConst(true));
}

TEST(SimplifyTest, SelectOfStore) {
  LExprRef A = mkVar("h", Sort::ArrLocInt);
  LExprRef L = mkVar("l", Sort::Loc);
  LExprRef V = iVar("v");
  EXPECT_EQ(simplify(mkSelect(mkStore(A, L, V), L)).get(), V.get());
}

TEST(SimplifyTest, SetRules) {
  LExprRef S = mkVar("s", Sort::SetInt);
  LExprRef Empty = mkEmptySet(Sort::SetInt);
  LExprRef E = iVar("e");
  EXPECT_EQ(simplify(mkUnion(S, Empty)).get(), S.get());
  EXPECT_EQ(simplify(mkUnion(S, S)).get(), S.get());
  EXPECT_EQ(simplify(mkInter(S, Empty)).get(), Empty.get());
  EXPECT_EQ(simplify(mkMinus(S, S)).get(), Empty.get());
  EXPECT_EQ(simplify(mkMinus(S, Empty)).get(), S.get());
  EXPECT_TRUE(simplify(mkMember(E, Empty))->isBoolConst(false));
  EXPECT_EQ(simplify(mkMember(E, mkSingleton(iVar("x"), Sort::SetInt))).get(),
            simplify(mkEq(E, iVar("x"))).get());
  EXPECT_TRUE(simplify(mkSubset(Empty, S))->isBoolConst(true));
  EXPECT_TRUE(simplify(mkSubset(S, S))->isBoolConst(true));
  EXPECT_TRUE(simplify(mkSetCmp(LOp::SetLtInt, Empty, E))->isBoolConst(true));
}

TEST(SimplifyTest, MultisetUnionIsNotIdempotent) {
  // Multiset union is pointwise +, so m (+) m == m is WRONG (it
  // doubles every count). The rewrite must be gated to true sets.
  LExprRef M = mkVar("m", Sort::MSetInt);
  LExprRef U = simplify(mkUnion(M, M));
  EXPECT_EQ(U->Op, LOp::Union);
  // Intersection (pointwise min) and monus stay safe.
  EXPECT_EQ(simplify(mkInter(M, M)).get(), M.get());
  EXPECT_EQ(simplify(mkMinus(M, M)).get(),
            mkEmptySet(Sort::MSetInt).get());
}

TEST(SimplifyTest, Idempotent) {
  LExprRef P = bVar("p"), Q = bVar("q");
  LExprRef X = iVar("x"), Y = iVar("y");
  std::vector<LExprRef> Cases = {
      mkAnd(P, mkAnd(P, Q)),
      mkNot(mkNot(mkOr(P, mkBool(false)))),
      mkImplies(mkAnd(P, Q), mkIte(P, Q, Q)),
      mkEq(mkIntAdd(X, mkInt(0)), mkIntSub(Y, Y)),
      mkIte(mkIntLt(mkInt(1), mkInt(2)), mkAnd(P, P), Q),
      mkUnion(mkVar("s", Sort::SetInt), mkEmptySet(Sort::SetInt)),
  };
  Simplifier S;
  for (const LExprRef &E : Cases) {
    LExprRef Once = S.simplify(E);
    EXPECT_EQ(S.simplify(Once).get(), Once.get()) << E->str();
    // A fresh instance (empty memo) must agree node-for-node too.
    Simplifier Fresh;
    EXPECT_EQ(Fresh.simplify(Once).get(), Once.get()) << E->str();
  }
}

//===----------------------------------------------------------------------===//
// Cone-of-influence slicing
//===----------------------------------------------------------------------===//

TEST(SliceTest, TransitiveConeKeepsChains) {
  // x = y,  y < 5,  z < 3   with goal  x < 10:
  // the x=y conjunct links y into the cone, z stays out.
  std::vector<LExprRef> Conjuncts = {
      mkEq(iVar("x"), iVar("y")),
      mkIntLt(iVar("y"), mkInt(5)),
      mkIntLt(iVar("z"), mkInt(3)),
  };
  std::vector<uint32_t> Kept =
      sliceConjuncts(Conjuncts, mkIntLt(iVar("x"), mkInt(10)));
  EXPECT_EQ(Kept, (std::vector<uint32_t>{0, 1}));
}

TEST(SliceTest, GroundConjunctsAlwaysKept) {
  // A ground contradiction must never be sliced away — dropping it
  // would turn a trivially-Valid obligation into real solver work.
  std::vector<LExprRef> Conjuncts = {
      mkBool(false),
      mkIntLt(iVar("z"), mkInt(3)),
  };
  std::vector<uint32_t> Kept =
      sliceConjuncts(Conjuncts, mkIntLt(iVar("x"), mkInt(10)));
  EXPECT_EQ(Kept, (std::vector<uint32_t>{0}));
}

TEST(SliceTest, FunctionNamesAreSymbols) {
  // Two conjuncts mentioning the same uninterpreted function interact
  // through its interpretation, so the shared name must connect them.
  LExprRef FofA = mkApp("keys", Sort::SetInt, {mkVar("a", Sort::Loc)});
  LExprRef FofB = mkApp("keys", Sort::SetInt, {mkVar("b", Sort::Loc)});
  std::vector<LExprRef> Conjuncts = {
      mkEq(FofA, mkEmptySet(Sort::SetInt)),
      mkIntLt(iVar("z"), mkInt(3)),
  };
  std::vector<uint32_t> Kept =
      sliceConjuncts(Conjuncts, mkEq(FofB, mkEmptySet(Sort::SetInt)));
  EXPECT_EQ(Kept, (std::vector<uint32_t>{0}));
}

TEST(SliceTest, VarAndFuncNamespacesAreDistinct) {
  // A variable named "keys" must not connect to the *function* "keys".
  std::vector<LExprRef> Conjuncts = {
      mkIntLt(mkVar("keys", Sort::Int), mkInt(3)),
  };
  LExprRef Goal =
      mkEq(mkApp("keys", Sort::SetInt, {mkVar("b", Sort::Loc)}),
           mkEmptySet(Sort::SetInt));
  EXPECT_TRUE(sliceConjuncts(Conjuncts, Goal).empty());
}

TEST(SliceTest, PreprocessVCsPopulatesSlices) {
  VC Obl;
  Obl.Conjuncts = {
      mkEq(iVar("x"), iVar("y")),
      mkAnd(mkIntLt(iVar("z"), mkInt(3)), bVar("p")), // flattened apart
      mkBool(true),                                   // dropped
  };
  Obl.Guard = mkAnd(Obl.Conjuncts);
  Obl.Cond = mkIntLe(iVar("x"), iVar("y"));
  std::vector<VC> VCs = {Obl};
  preprocessVCs(VCs, /*Slice=*/true);
  ASSERT_TRUE(VCs[0].Preprocessed);
  // true dropped, nested And split: {x=y, z<3, p}.
  EXPECT_EQ(VCs[0].Conjuncts.size(), 3u);
  EXPECT_EQ(VCs[0].Guard.get(), mkAnd(VCs[0].Conjuncts).get());
  // Only x=y is in the goal's cone.
  EXPECT_EQ(VCs[0].Sliced, (std::vector<uint32_t>{0}));
  EXPECT_EQ(VCs[0].slicedGuard().get(), VCs[0].Conjuncts[0].get());

  // With slicing off, Sliced is the identity.
  std::vector<VC> NoSlice = {Obl};
  preprocessVCs(NoSlice, /*Slice=*/false);
  EXPECT_EQ(NoSlice[0].Sliced.size(), NoSlice[0].Conjuncts.size());
  EXPECT_EQ(NoSlice[0].slicedGuard().get(), NoSlice[0].Guard.get());
}

TEST(SliceTest, FalseGuardCollapses) {
  VC Obl;
  Obl.Conjuncts = {bVar("p"), mkNot(bVar("p"))};
  Obl.Guard = mkAnd(Obl.Conjuncts);
  Obl.Cond = mkIntLt(iVar("x"), mkInt(0));
  // p && !p does not fold locally (the simplifier is not a SAT
  // solver), but an explicit false conjunct must collapse the guard.
  VC Direct;
  Direct.Conjuncts = {bVar("q"), mkBool(false)};
  Direct.Guard = mkAnd(Direct.Conjuncts);
  Direct.Cond = Obl.Cond;
  std::vector<VC> VCs = {Direct};
  preprocessVCs(VCs, true);
  EXPECT_TRUE(VCs[0].Guard->isBoolConst(false));
}

//===----------------------------------------------------------------------===//
// Verifier session helpers
//===----------------------------------------------------------------------===//

namespace {

VC makeVC(std::vector<LExprRef> Conjuncts, LExprRef Cond) {
  VC Obl;
  Obl.Conjuncts = std::move(Conjuncts);
  Obl.Guard = mkAnd(Obl.Conjuncts);
  Obl.Cond = std::move(Cond);
  return Obl;
}

} // namespace

TEST(SessionHelperTest, CommonGuardPrefix) {
  LExprRef A = bVar("a"), B = bVar("b"), C = bVar("c");
  std::vector<VC> VCs = {
      makeVC({A, B}, bVar("g1")),
      makeVC({A, B, C}, bVar("g2")),
      makeVC({A, C}, bVar("g3")),
  };
  EXPECT_EQ(verifier::Verifier::commonGuardPrefix(VCs), 1u);
  VCs.pop_back();
  EXPECT_EQ(verifier::Verifier::commonGuardPrefix(VCs), 2u);
  EXPECT_EQ(verifier::Verifier::commonGuardPrefix({}), 0u);
}

TEST(SessionHelperTest, TriviallyValid) {
  EXPECT_TRUE(verifier::Verifier::triviallyValid(
      makeVC({bVar("a")}, mkBool(true))));
  EXPECT_TRUE(verifier::Verifier::triviallyValid(
      makeVC({mkBool(false)}, bVar("g"))));
  EXPECT_FALSE(verifier::Verifier::triviallyValid(
      makeVC({bVar("a")}, bVar("g"))));
}

TEST(SessionHelperTest, SessionExtrasRespectSlice) {
  LExprRef A = bVar("a"), B = bVar("b"), C = bVar("c");
  VC Obl = makeVC({A, B, C}, bVar("g"));
  // Unpreprocessed: everything past the prefix.
  std::vector<LExprRef> Extra = verifier::Verifier::sessionExtras(Obl, 1);
  ASSERT_EQ(Extra.size(), 2u);
  EXPECT_EQ(Extra[0].get(), B.get());
  // Preprocessed with a slice: only sliced indices past the prefix.
  Obl.Preprocessed = true;
  Obl.Sliced = {0, 2};
  Extra = verifier::Verifier::sessionExtras(Obl, 1);
  ASSERT_EQ(Extra.size(), 1u);
  EXPECT_EQ(Extra[0].get(), C.get());
}

//===----------------------------------------------------------------------===//
// Incremental solver sessions
//===----------------------------------------------------------------------===//

TEST(SolverSessionTest, ScopedChecksMatchOneShot) {
  std::unique_ptr<smt::SmtSolver> S = smt::createZ3Solver();
  LExprRef X = iVar("x");
  std::vector<LExprRef> Prefix = {mkIntLt(mkInt(0), X)};
  S->beginSession(Prefix, 2000);
  // x > 0 && x < 5 ==> x >= 1.
  smt::CheckResult R1 =
      S->checkSession({mkIntLt(X, mkInt(5))}, mkIntLe(mkInt(1), X));
  EXPECT_EQ(R1.Status, smt::CheckStatus::Valid);
  // Push/pop isolation: the x < 5 extra must be gone now, so
  // x > 0 ==> x < 5 has a counterexample.
  smt::CheckResult R2 = S->checkSession({}, mkIntLt(X, mkInt(5)));
  EXPECT_EQ(R2.Status, smt::CheckStatus::Invalid);
  // The prefix is still asserted: x > 0 ==> 0 <= x.
  smt::CheckResult R3 = S->checkSession({}, mkIntLe(mkInt(0), X));
  EXPECT_EQ(R3.Status, smt::CheckStatus::Valid);
  S->endSession();
  // One-shot checks agree after the session ends.
  smt::CheckResult R4 =
      S->checkValid(mkIntLt(mkInt(0), X), mkIntLe(mkInt(0), X));
  EXPECT_EQ(R4.Status, smt::CheckStatus::Valid);
}

TEST(SolverSessionTest, CheckSessionWithoutSessionIsUnknown) {
  std::unique_ptr<smt::SmtSolver> S = smt::createZ3Solver();
  smt::CheckResult R = S->checkSession({}, mkBool(true));
  EXPECT_EQ(R.Status, smt::CheckStatus::Unknown);
}

TEST(SolverSessionTest, CheckValidEndsSession) {
  std::unique_ptr<smt::SmtSolver> S = smt::createZ3Solver();
  LExprRef X = iVar("x");
  S->beginSession({mkIntLt(mkInt(0), X)}, 2000);
  // checkValid must not see the session's prefix: x >= 1 alone is not
  // valid without x > 0.
  smt::CheckResult R = S->checkValid(mkBool(true), mkIntLe(mkInt(1), X));
  EXPECT_EQ(R.Status, smt::CheckStatus::Invalid);
  // And the session is gone.
  EXPECT_EQ(S->checkSession({}, mkBool(true)).Status,
            smt::CheckStatus::Unknown);
}

//===----------------------------------------------------------------------===//
// End-to-end verdict preservation
//===----------------------------------------------------------------------===//

namespace {

const char *MixedProgram = R"(
int add(int a, int b)
  _(requires a >= 0 && b >= 0)
  _(ensures result == a + b && result >= 0)
{ return a + b; }

int bad_sub(int a, int b)
  _(ensures result == a + b)
{ return a - b; }

int clamp(int a)
  _(ensures result >= 0)
{ if (a < 0) return 0; return a; }
)";

verifier::ProgramResult runWith(bool Preprocess, bool Slice,
                                unsigned FastTimeoutMs) {
  verifier::VerifyOptions Opts;
  Opts.TimeoutMs = 30000;
  Opts.Preprocess = Preprocess;
  Opts.Slice = Slice;
  Opts.FastTimeoutMs = FastTimeoutMs;
  verifier::Verifier V(Opts);
  return V.verifySource(MixedProgram);
}

} // namespace

TEST(VerdictEquivalenceTest, PreprocessAndLadderPreserveVerdicts) {
  verifier::ProgramResult Base =
      runWith(/*Preprocess=*/false, /*Slice=*/false, /*Fast=*/0);
  ASSERT_TRUE(Base.Ok) << Base.Error;
  const bool Configs[][2] = {
      {true, false}, // simplify only
      {true, true},  // simplify + slice
  };
  for (const auto &Cfg : Configs) {
    for (unsigned Fast : {0u, 2000u}) {
      verifier::ProgramResult R = runWith(Cfg[0], Cfg[1], Fast);
      ASSERT_TRUE(R.Ok) << R.Error;
      ASSERT_EQ(R.Functions.size(), Base.Functions.size());
      for (size_t I = 0; I != R.Functions.size(); ++I) {
        const verifier::FunctionResult &A = Base.Functions[I];
        const verifier::FunctionResult &B = R.Functions[I];
        EXPECT_EQ(A.Name, B.Name);
        EXPECT_EQ(A.Verified, B.Verified)
            << A.Name << " verdict flipped (preprocess=" << Cfg[0]
            << " slice=" << Cfg[1] << " fast=" << Fast << ")";
        ASSERT_EQ(A.Failures.size(), B.Failures.size()) << A.Name;
        for (size_t K = 0; K != A.Failures.size(); ++K) {
          EXPECT_EQ(A.Failures[K].Reason, B.Failures[K].Reason);
          EXPECT_EQ(A.Failures[K].Status, B.Failures[K].Status);
        }
      }
    }
  }
}

TEST(VerdictEquivalenceTest, StatsAreReported) {
  verifier::ProgramResult R = runWith(true, true, 2000);
  ASSERT_TRUE(R.Ok) << R.Error;
  const verifier::FunctionResult *F = R.function("add");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->VCStats.size(), F->NumVCs);
  EXPECT_NE(F->EffectiveTimeoutMs, 0u);
  for (const verifier::VCStat &St : F->VCStats)
    EXPECT_LE(St.AssumesSliced, St.AssumesTotal);
  // The failing function must report its escalations: a refuted goal
  // can never settle in the Valid-only fast pass.
  const verifier::FunctionResult *Bad = R.function("bad_sub");
  ASSERT_NE(Bad, nullptr);
  EXPECT_FALSE(Bad->Verified);
  EXPECT_GT(Bad->Escalations, 0u);
  EXPECT_EQ(Bad->EffectiveTimeoutMs, 30000u);
}
