//===- smt_test.cpp - Unit tests for the Z3 backend ------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::smt;
using namespace vcdryad::vir;

namespace {

class SmtTest : public ::testing::Test {
protected:
  void expectValid(const LExprRef &Guard, const LExprRef &Goal) {
    auto S = createZ3Solver();
    CheckResult R = S->checkValid(Guard, Goal);
    EXPECT_EQ(R.Status, CheckStatus::Valid) << R.Detail;
  }
  void expectInvalid(const LExprRef &Guard, const LExprRef &Goal) {
    auto S = createZ3Solver();
    CheckResult R = S->checkValid(Guard, Goal);
    EXPECT_EQ(R.Status, CheckStatus::Invalid) << R.Detail;
  }
};

} // namespace

TEST_F(SmtTest, PropositionalValidity) {
  LExprRef A = mkVar("a", Sort::Bool);
  expectValid(A, A);
  expectInvalid(mkBool(true), A);
}

TEST_F(SmtTest, IntegerArithmetic) {
  LExprRef X = mkVar("x", Sort::Int);
  expectValid(mkIntLt(X, mkInt(5)), mkIntLe(X, mkInt(5)));
  expectInvalid(mkIntLe(X, mkInt(5)), mkIntLt(X, mkInt(5)));
  expectValid(mkBool(true),
              mkEq(mkIntAdd(mkInt(2), mkInt(2)), mkInt(4)));
}

TEST_F(SmtTest, LocationsAndNil) {
  LExprRef X = mkVar("x", Sort::Loc);
  expectInvalid(mkBool(true), mkNe(X, mkNil()));
  expectValid(mkNe(X, mkNil()), mkNe(mkNil(), X));
}

TEST_F(SmtTest, FieldArraySelectStore) {
  LExprRef Arr = mkVar("next", Sort::ArrLocLoc);
  LExprRef X = mkVar("x", Sort::Loc);
  LExprRef Y = mkVar("y", Sort::Loc);
  LExprRef V = mkVar("v", Sort::Loc);
  // select(store(a, x, v), x) == v
  expectValid(mkBool(true),
              mkEq(mkSelect(mkStore(Arr, X, V), X), V));
  // x != y -> select(store(a, x, v), y) == select(a, y)
  expectValid(mkNe(X, Y), mkEq(mkSelect(mkStore(Arr, X, V), Y),
                               mkSelect(Arr, Y)));
}

TEST_F(SmtTest, SetAlgebra) {
  LExprRef A = mkVar("A", Sort::SetLoc);
  LExprRef B = mkVar("B", Sort::SetLoc);
  LExprRef X = mkVar("x", Sort::Loc);
  // x in A -> x in A u B
  expectValid(mkMember(X, A), mkMember(X, mkUnion(A, B)));
  // x in A \ B -> !(x in B)
  expectValid(mkMember(X, mkMinus(A, B)), mkNot(mkMember(X, B)));
  // Extensionality: A u empty == A
  expectValid(mkBool(true),
              mkEq(mkUnion(A, mkEmptySet(Sort::SetLoc)), A));
  // Disjointness and membership.
  expectValid(mkAnd(mkDisjoint(A, B), mkMember(X, A)),
              mkNot(mkMember(X, B)));
}

TEST_F(SmtTest, SetMinusUnionIdentity) {
  // The frame computation pattern: ({x} u A u B) \ (A u B) == {x}
  // given x not in A u B.
  LExprRef A = mkVar("A", Sort::SetLoc);
  LExprRef B = mkVar("B", Sort::SetLoc);
  LExprRef X = mkVar("x", Sort::Loc);
  LExprRef Sx = mkSingleton(X, Sort::SetLoc);
  LExprRef U = mkUnion(Sx, mkUnion(A, B));
  expectValid(mkNot(mkMember(X, mkUnion(A, B))),
              mkEq(mkMinus(U, mkUnion(A, B)), Sx));
}

TEST_F(SmtTest, IntSetSingleton) {
  LExprRef S = mkSingleton(mkInt(3), Sort::SetInt);
  expectValid(mkBool(true), mkMember(mkInt(3), S));
  expectValid(mkBool(true), mkNot(mkMember(mkInt(4), S)));
}

TEST_F(SmtTest, SetOrderAtoms) {
  LExprRef S = mkVar("S", Sort::SetInt);
  LExprRef K = mkVar("k", Sort::Int);
  LExprRef X = mkVar("x", Sort::Int);
  // S <= k and x in S -> x <= k.
  expectValid(mkAnd(mkSetCmp(LOp::SetLeInt, S, K), mkMember(X, S)),
              mkIntLe(X, K));
  // S < k -> S <= k.
  expectValid(mkSetCmp(LOp::SetLtInt, S, K),
              mkSetCmp(LOp::SetLeInt, S, K));
  // k <= S and S <= k and x,y in S -> x == y... (all elements equal k)
  expectValid(mkAnd({mkSetCmp(LOp::IntLeSet, K, S),
                     mkSetCmp(LOp::SetLeInt, S, K), mkMember(X, S)}),
              mkEq(X, K));
}

TEST_F(SmtTest, SetOrderBetweenSets) {
  LExprRef A = mkVar("A", Sort::SetInt);
  LExprRef B = mkVar("B", Sort::SetInt);
  LExprRef X = mkVar("x", Sort::Int);
  LExprRef Y = mkVar("y", Sort::Int);
  expectValid(mkAnd({mkSetCmp(LOp::SetLtSet, A, B), mkMember(X, A),
                     mkMember(Y, B)}),
              mkIntLt(X, Y));
}

TEST_F(SmtTest, EmptySetOrderVacuous) {
  LExprRef K = mkVar("k", Sort::Int);
  expectValid(mkBool(true),
              mkSetCmp(LOp::SetLeInt, mkEmptySet(Sort::SetInt), K));
}

TEST_F(SmtTest, MultisetUnionCounts) {
  LExprRef M = mkSingleton(mkInt(1), Sort::MSetInt);
  LExprRef MM = mkUnion(M, M);
  // 1 is a member of {1} + {1}; 2 is not.
  expectValid(mkBool(true), mkMember(mkInt(1), MM));
  expectValid(mkBool(true), mkNot(mkMember(mkInt(2), MM)));
  // {1}+{1} != {1} (multisets count).
  expectValid(mkBool(true), mkNot(mkEq(MM, M)));
}

TEST_F(SmtTest, MultisetInterAndMinus) {
  LExprRef M1 = mkSingleton(mkInt(1), Sort::MSetInt);
  LExprRef MM = mkUnion(M1, M1);
  // ({1}+{1}) inter {1} == {1} (pointwise min).
  expectValid(mkBool(true), mkEq(mkInter(MM, M1), M1));
  // ({1}+{1}) \ {1} == {1} (pointwise monus).
  expectValid(mkBool(true), mkEq(mkMinus(MM, M1), M1));
}

TEST_F(SmtTest, MultisetSubset) {
  LExprRef M1 = mkSingleton(mkInt(1), Sort::MSetInt);
  LExprRef MM = mkUnion(M1, M1);
  expectValid(mkBool(true), mkSubset(M1, MM));
  expectValid(mkBool(true), mkNot(mkSubset(MM, M1)));
}

TEST_F(SmtTest, UninterpretedFunctionCongruence) {
  LExprRef Arr = mkVar("next", Sort::ArrLocLoc);
  LExprRef X = mkVar("x", Sort::Loc);
  LExprRef Y = mkVar("y", Sort::Loc);
  LExprRef Fx = mkApp("list", Sort::Bool, {Arr, X});
  LExprRef Fy = mkApp("list", Sort::Bool, {Arr, Y});
  expectValid(mkEq(X, Y), mkEq(Fx, Fy));
  expectInvalid(mkBool(true), mkEq(Fx, Fy));
}

TEST_F(SmtTest, QuantifiedBackgroundAxiom) {
  // forall x. f(x) == x, then f(f(y)) == y.
  LExprRef X = mkVar("?x", Sort::Int);
  LExprRef Ax =
      mkForall({X}, mkEq(mkApp("f", Sort::Int, {X}), X));
  SolverOptions Opts;
  Opts.BackgroundAxioms = {Ax};
  auto S = createZ3Solver(Opts);
  LExprRef Y = mkVar("y", Sort::Int);
  LExprRef FFy =
      mkApp("f", Sort::Int, {mkApp("f", Sort::Int, {Y})});
  CheckResult R = S->checkValid(mkBool(true), mkEq(FFy, Y));
  EXPECT_EQ(R.Status, CheckStatus::Valid) << R.Detail;
}

TEST_F(SmtTest, InvalidProducesModel) {
  auto S = createZ3Solver();
  CheckResult R =
      S->checkValid(mkBool(true), mkEq(mkVar("x", Sort::Int), mkInt(0)));
  EXPECT_EQ(R.Status, CheckStatus::Invalid);
  EXPECT_FALSE(R.Detail.empty());
}

TEST_F(SmtTest, SmtLibExport) {
  auto S = createZ3Solver();
  std::string Text =
      S->toSmtLib(mkVar("a", Sort::Bool), mkVar("b", Sort::Bool));
  EXPECT_NE(Text.find("(assert"), std::string::npos);
}

TEST_F(SmtTest, IteLowering) {
  LExprRef X = mkVar("x", Sort::Int);
  LExprRef E = mkIte(mkIntLt(X, mkInt(0)), mkIntSub(mkInt(0), X), X);
  // |x| >= 0.
  expectValid(mkBool(true), mkIntLe(mkInt(0), E));
}
