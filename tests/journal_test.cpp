//===- journal_test.cpp - Write-ahead journal crash-safety tests -----------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safety tests for the write-ahead journal underneath the
/// proof cache and the VC manifest: framing round-trips, torn-tail
/// truncation at *every* byte offset, checksum rejection of corrupted
/// payloads, a kill(-9)-the-writer harness asserting that replay
/// always recovers a contiguous committed prefix, compaction
/// byte-stability, store recovery without flush (simulated crash via
/// fork + _exit), and legacy snapshot loading without a journal.
///
//===----------------------------------------------------------------------===//

#include "service/Journal.h"
#include "service/Manifest.h"
#include "service/ProofCache.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <sys/wait.h>
#include <unistd.h>

using namespace vcdryad;
namespace fs = std::filesystem;

namespace {

class JournalTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = fs::path(::testing::TempDir()) /
          ("vcd_wal_" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           "_" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
    fs::remove_all(Dir);
    fs::create_directories(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  std::string walPath(const char *Name = "test.wal") const {
    return (Dir / Name).string();
  }

  static std::string slurp(const std::string &Path) {
    std::ifstream In(Path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }

  fs::path Dir;
};

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

TEST_F(JournalTest, DisabledJournalNoOps) {
  service::Journal J;
  EXPECT_TRUE(J.ok());
  EXPECT_FALSE(J.active());
  EXPECT_TRUE(J.commit("anything"));
  EXPECT_TRUE(J.reset());
  EXPECT_EQ(J.sizeBytes(), 0u);
  EXPECT_TRUE(J.readCommitted().empty());
}

TEST_F(JournalTest, RoundTripAcrossReopen) {
  {
    service::Journal J(walPath());
    ASSERT_TRUE(J.active()) << J.error();
    EXPECT_TRUE(J.recovered().empty());
    EXPECT_TRUE(J.commit("alpha"));
    EXPECT_TRUE(J.commit(std::vector<std::string>{"beta", "gamma"}));
    EXPECT_TRUE(J.commit(std::string())); // Empty records are legal.
    EXPECT_GT(J.sizeBytes(), 0u);
  }
  service::Journal J(walPath());
  ASSERT_TRUE(J.active()) << J.error();
  EXPECT_EQ(J.tornBytesDropped(), 0u);
  std::vector<std::string> Want = {"alpha", "beta", "gamma", ""};
  EXPECT_EQ(J.recovered(), Want);
  EXPECT_EQ(J.readCommitted(), Want);
}

TEST_F(JournalTest, ResetTruncatesToEmpty) {
  service::Journal J(walPath());
  ASSERT_TRUE(J.active());
  EXPECT_TRUE(J.commit("data"));
  EXPECT_GT(J.sizeBytes(), 0u);
  EXPECT_TRUE(J.reset());
  EXPECT_EQ(J.sizeBytes(), 0u);
  service::Journal R(walPath());
  EXPECT_TRUE(R.recovered().empty());
}

//===----------------------------------------------------------------------===//
// Torn tails and corruption
//===----------------------------------------------------------------------===//

/// A torn write can stop after any byte. Replaying every prefix of a
/// multi-transaction journal must recover a contiguous transaction
/// prefix and truncate the file back to exactly those bytes.
TEST_F(JournalTest, EveryPrefixRecoversCommittedPrefix) {
  std::vector<std::string> Records = {"first", "second-record",
                                      std::string(300, 'x'), "last"};
  std::vector<uint64_t> CommitSizes; // Journal size after each commit.
  {
    service::Journal J(walPath("full.wal"));
    ASSERT_TRUE(J.active());
    for (const std::string &R : Records) {
      ASSERT_TRUE(J.commit(R));
      CommitSizes.push_back(J.sizeBytes());
    }
  }
  std::string Full = slurp(walPath("full.wal"));
  ASSERT_EQ(Full.size(), CommitSizes.back());

  for (size_t Len = 0; Len <= Full.size(); ++Len) {
    std::string P = walPath("prefix.wal");
    {
      std::ofstream Out(P, std::ios::binary | std::ios::trunc);
      Out.write(Full.data(), static_cast<std::streamsize>(Len));
    }
    service::Journal J(P);
    ASSERT_TRUE(J.active()) << "len=" << Len << ": " << J.error();
    // The recovered records are exactly the transactions whose commit
    // marker fits in the prefix.
    size_t WantCount = 0;
    while (WantCount < CommitSizes.size() &&
           CommitSizes[WantCount] <= Len)
      ++WantCount;
    ASSERT_EQ(J.recovered().size(), WantCount) << "len=" << Len;
    for (size_t I = 0; I < WantCount; ++I)
      EXPECT_EQ(J.recovered()[I], Records[I]) << "len=" << Len;
    // The torn tail is gone from disk.
    uint64_t WantSize = WantCount == 0 ? 0 : CommitSizes[WantCount - 1];
    EXPECT_EQ(J.sizeBytes(), WantSize) << "len=" << Len;
    EXPECT_EQ(J.tornBytesDropped(), Len - WantSize) << "len=" << Len;
  }
}

TEST_F(JournalTest, CorruptPayloadEndsReplayAtPriorCommit) {
  uint64_t FirstSize = 0;
  {
    service::Journal J(walPath());
    ASSERT_TRUE(J.active());
    ASSERT_TRUE(J.commit("good"));
    FirstSize = J.sizeBytes();
    ASSERT_TRUE(J.commit("to-be-corrupted"));
  }
  std::string Bytes = slurp(walPath());
  // Flip one payload byte of the second transaction (frame header is
  // 1 + 4 + 8 bytes).
  size_t Off = static_cast<size_t>(FirstSize) + 13;
  ASSERT_LT(Off, Bytes.size());
  Bytes[Off] = static_cast<char>(Bytes[Off] ^ 0x5a);
  {
    std::ofstream Out(walPath(), std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  service::Journal J(walPath());
  ASSERT_TRUE(J.active());
  std::vector<std::string> Want = {"good"};
  EXPECT_EQ(J.recovered(), Want);
  EXPECT_EQ(J.sizeBytes(), FirstSize);
  EXPECT_GT(J.tornBytesDropped(), 0u);
}

TEST_F(JournalTest, ForeignBytesAreDiscarded) {
  {
    std::ofstream Out(walPath(), std::ios::binary);
    Out << "this is not a journal at all\n";
  }
  service::Journal J(walPath());
  ASSERT_TRUE(J.active());
  EXPECT_TRUE(J.recovered().empty());
  EXPECT_GT(J.tornBytesDropped(), 0u);
  EXPECT_EQ(J.sizeBytes(), 0u);
}

//===----------------------------------------------------------------------===//
// Crashing writer (fork + SIGKILL)
//===----------------------------------------------------------------------===//

/// Kills a child mid-commit-stream at randomized points and asserts
/// the journal invariant: replay recovers rec-0..rec-(k-1) for some k
/// — a contiguous prefix, never a gap, never a torn record.
TEST_F(JournalTest, Kill9WriterRecoversContiguousPrefix) {
  std::mt19937 Rng(
      static_cast<unsigned>(
          ::testing::UnitTest::GetInstance()->random_seed()) |
      1u);
  for (int Round = 0; Round < 6; ++Round) {
    std::string P = walPath(("kill" + std::to_string(Round) + ".wal").c_str());
    pid_t Child = fork();
    ASSERT_GE(Child, 0);
    if (Child == 0) {
      // Writer: commit a numbered stream as fast as possible until
      // killed. _exit on the (unlikely) natural end — no destructors,
      // no flush, exactly like a crash.
      service::Journal J(P);
      for (int I = 0; I < 20000; ++I)
        J.commit("rec-" + std::to_string(I));
      _exit(0);
    }
    // Let the writer get some commits out, then kill it mid-stream.
    ::usleep(2000 + Rng() % 30000);
    ::kill(Child, SIGKILL);
    int Status = 0;
    ASSERT_EQ(::waitpid(Child, &Status, 0), Child);

    service::Journal J(P);
    ASSERT_TRUE(J.active()) << J.error();
    const std::vector<std::string> &Rec = J.recovered();
    for (size_t I = 0; I < Rec.size(); ++I)
      EXPECT_EQ(Rec[I], "rec-" + std::to_string(I))
          << "round " << Round << ": gap or reorder at " << I;
    // fdatasync per commit: a record the writer observed as committed
    // is on disk; at most the in-flight transaction may tear.
    EXPECT_LE(J.tornBytesDropped(), 64u) << "round " << Round;
  }
}

//===----------------------------------------------------------------------===//
// Store integration: recovery without flush, compaction stability
//===----------------------------------------------------------------------===//

TEST_F(JournalTest, ProofCacheRecoversJournaledStoresAfterCrash) {
  std::string CDir = (Dir / "cache").string();
  smt::CheckResult Valid;
  Valid.Status = smt::CheckStatus::Valid;
  Valid.TimeMs = 12.5;

  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    service::ProofCache C(CDir);
    C.store(100, Valid);
    C.store(200, Valid);
    _exit(0); // Crash: no flush, no snapshot write.
  }
  int Status = 0;
  ASSERT_EQ(::waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0);

  // The snapshot never existed or is empty — the journal alone must
  // resurrect both entries.
  service::ProofCache C(CDir);
  EXPECT_EQ(C.openError(), "");
  EXPECT_EQ(C.journalRecovered(), 2u);
  EXPECT_EQ(C.size(), 2u);
  ASSERT_TRUE(C.lookup(100));
  ASSERT_TRUE(C.lookup(200));
  EXPECT_FALSE(C.lookup(300));
  // flush() compacts: snapshot gains the entries, journal empties.
  C.flush();
  EXPECT_EQ(C.journalBytes(), 0u);
  service::ProofCache R(CDir);
  EXPECT_EQ(R.journalRecovered(), 0u);
  EXPECT_EQ(R.size(), 2u);
}

TEST_F(JournalTest, ManifestRecoversJournaledRecordsAfterCrash) {
  std::string MDir = (Dir / "cache").string();
  service::ManifestEntry E;
  E.Name = "insert_front";
  E.Manual = 2;
  E.Ghost = 9;
  E.VcKeys = {11, 22, 33};

  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    service::VcManifest M(MDir);
    service::ManifestEntry C = E;
    M.record(77, std::move(C));
    _exit(0); // Crash before any flush.
  }
  int Status = 0;
  ASSERT_EQ(::waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0);

  service::VcManifest M(MDir);
  EXPECT_EQ(M.openError(), "");
  EXPECT_EQ(M.journalRecovered(), 1u);
  std::optional<service::ManifestEntry> Hit = M.lookup(77);
  ASSERT_TRUE(Hit);
  EXPECT_EQ(Hit->Name, "insert_front");
  EXPECT_EQ(Hit->Manual, 2u);
  EXPECT_EQ(Hit->Ghost, 9u);
  EXPECT_EQ(Hit->VcKeys, E.VcKeys);
  M.flush();
  EXPECT_EQ(M.journalBytes(), 0u);
  service::VcManifest R(MDir);
  EXPECT_EQ(R.journalRecovered(), 0u);
  EXPECT_EQ(R.size(), 1u);
}

TEST_F(JournalTest, CompactionIsByteStable) {
  std::string CDir = (Dir / "cache").string();
  smt::CheckResult Valid;
  Valid.Status = smt::CheckStatus::Valid;
  Valid.TimeMs = 3.25;
  {
    service::ProofCache C(CDir);
    for (uint64_t K : {9u, 1u, 5u, 3u})
      C.store(K, Valid);
    C.flush();
    std::string First = slurp(CDir + "/proofs-v1.txt");
    ASSERT_FALSE(First.empty());
    // Re-flushing without new entries must not rewrite a single byte
    // differently (key-sorted, canonical formatting).
    C.flush();
    EXPECT_EQ(slurp(CDir + "/proofs-v1.txt"), First);
    // A reopen + flush cycle is stable too.
    service::ProofCache R(CDir);
    R.flush();
    EXPECT_EQ(slurp(CDir + "/proofs-v1.txt"), First);
  }
}

TEST_F(JournalTest, LegacySnapshotWithoutJournalLoads) {
  // Stores written before the journal existed have no .wal beside
  // them; they must load unchanged and start journaling from there.
  std::string CDir = (Dir / "cache").string();
  fs::create_directories(CDir);
  {
    std::ofstream Store(CDir + "/proofs-v1.txt");
    Store << hashToHex(42) << " V 1.50\n";
  }
  {
    std::ofstream Store(CDir + "/manifest-v1.txt");
    Store << hashToHex(7) << " V legacy_fn 1 4 2 " << hashToHex(100)
          << " " << hashToHex(101) << "\n";
  }
  service::ProofCache C(CDir);
  EXPECT_EQ(C.journalRecovered(), 0u);
  EXPECT_EQ(C.size(), 1u);
  EXPECT_TRUE(C.lookup(42));
  service::VcManifest M(CDir);
  EXPECT_EQ(M.journalRecovered(), 0u);
  std::optional<service::ManifestEntry> Hit = M.lookup(7);
  ASSERT_TRUE(Hit);
  EXPECT_EQ(Hit->Name, "legacy_fn");
  ASSERT_EQ(Hit->VcKeys.size(), 2u);
  EXPECT_EQ(Hit->VcKeys[0], 100u);
  EXPECT_EQ(Hit->VcKeys[1], 101u);
}

} // namespace
