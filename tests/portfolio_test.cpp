//===- portfolio_test.cpp - Unit tests for the portfolio engine ------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "smt/Portfolio.h"

#include "verifier/Verifier.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::smt;
using namespace vcdryad::vir;

//===----------------------------------------------------------------------===//
// Profile registry and resolution
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, BuiltinRegistry) {
  const std::vector<TacticProfile> &P = builtinProfiles();
  ASSERT_GE(P.size(), 2u);
  // Index 0 is the stock strategy by contract.
  EXPECT_EQ(P[0].Name, "default");
  EXPECT_TRUE(P[0].Params.empty());
  // Names are unique (they key the CLI and the JSON report).
  for (size_t I = 0; I != P.size(); ++I)
    for (size_t J = I + 1; J != P.size(); ++J)
      EXPECT_NE(P[I].Name, P[J].Name);
  EXPECT_NE(findProfile("default"), nullptr);
  EXPECT_NE(findProfile("no-mbqi"), nullptr);
  EXPECT_EQ(findProfile("nope"), nullptr);
}

TEST(PortfolioTest, ResolveBuiltinOrderAndWidth) {
  std::string Error;
  std::vector<TacticProfile> All = resolvePortfolio({}, 0, Error);
  EXPECT_TRUE(Error.empty());
  EXPECT_EQ(All.size(), builtinProfiles().size());

  std::vector<TacticProfile> Two = resolvePortfolio({}, 2, Error);
  ASSERT_EQ(Two.size(), 2u);
  EXPECT_EQ(Two[0].Name, "default");
  EXPECT_EQ(Two[1].Name, builtinProfiles()[1].Name);
}

TEST(PortfolioTest, ResolveExplicitNames) {
  std::string Error;
  std::vector<TacticProfile> L =
      resolvePortfolio({"no-mbqi", "default"}, 0, Error);
  ASSERT_EQ(L.size(), 2u);
  EXPECT_EQ(L[0].Name, "no-mbqi");
  EXPECT_EQ(L[1].Name, "default");
}

TEST(PortfolioTest, ResolveUnknownNameReportsError) {
  std::string Error;
  std::vector<TacticProfile> L = resolvePortfolio({"bogus"}, 0, Error);
  EXPECT_TRUE(L.empty());
  EXPECT_NE(Error.find("bogus"), std::string::npos);
  // The message lists the known profiles.
  EXPECT_NE(Error.find("default"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Winner selection (pure tie-break)
//===----------------------------------------------------------------------===//

namespace {

LaneOutcome lane(CheckStatus S, bool Decisive, bool Ran) {
  LaneOutcome O;
  O.R.Status = S;
  O.Decisive = Decisive;
  O.Ran = Ran;
  return O;
}

} // namespace

TEST(PortfolioTest, WinnerIsLowestDecisiveIndex) {
  std::vector<LaneOutcome> L = {
      lane(CheckStatus::Unknown, false, true),
      lane(CheckStatus::Valid, true, true),
      lane(CheckStatus::Valid, true, true),
  };
  EXPECT_EQ(pickPortfolioWinner(L), 1);
}

TEST(PortfolioTest, NoDecisiveLaneMeansNoWinner) {
  std::vector<LaneOutcome> L = {
      lane(CheckStatus::Unknown, false, true),
      lane(CheckStatus::Unknown, false, false),
  };
  EXPECT_EQ(pickPortfolioWinner(L), -1);
  EXPECT_EQ(pickPortfolioWinner({}), -1);
}

//===----------------------------------------------------------------------===//
// Timeout plumbing
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, ResolveTimeoutSentinel) {
  // The explicit sentinel falls back to the default; everything else —
  // including 0 ("unlimited", Z3's convention) — passes through.
  EXPECT_EQ(resolveTimeout(UseDefaultTimeout, 60000u), 60000u);
  EXPECT_EQ(resolveTimeout(0u, 60000u), 0u);
  EXPECT_EQ(resolveTimeout(1234u, 60000u), 1234u);
}

TEST(PortfolioTest, TimeoutZeroIsUnlimited) {
  // A solver with TimeoutMs == 0 must still answer (no 0ms budget):
  // regression for the 0-means-default confusion.
  SolverOptions SO;
  SO.TimeoutMs = 0;
  auto S = createZ3Solver(SO);
  LExprRef X = mkVar("x", Sort::Int);
  CheckResult R = S->checkValid(mkIntLt(X, mkInt(5)), mkIntLe(X, mkInt(5)));
  EXPECT_EQ(R.Status, CheckStatus::Valid) << R.Detail;
}

TEST(PortfolioTest, SessionTimeoutZeroIsUnlimited) {
  SolverOptions SO;
  SO.TimeoutMs = 10; // Deliberately tiny constructor default.
  auto S = createZ3Solver(SO);
  LExprRef X = mkVar("x", Sort::Int);
  S->beginSession({mkIntLt(X, mkInt(5))}, 0); // 0 = unlimited, not 10ms.
  CheckResult R = S->checkSession({}, mkIntLe(X, mkInt(5)));
  S->endSession();
  EXPECT_EQ(R.Status, CheckStatus::Valid) << R.Detail;
}

TEST(PortfolioTest, SessionSentinelUsesConstructorDefault) {
  SolverOptions SO;
  SO.TimeoutMs = 30000;
  auto S = createZ3Solver(SO);
  LExprRef X = mkVar("x", Sort::Int);
  S->beginSession({mkIntLt(X, mkInt(5))}, UseDefaultTimeout);
  CheckResult R = S->checkSession({}, mkIntLe(X, mkInt(5)));
  S->endSession();
  EXPECT_EQ(R.Status, CheckStatus::Valid) << R.Detail;
}

//===----------------------------------------------------------------------===//
// The race
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, PortfolioValidVerdict) {
  SolverOptions SO;
  SO.TimeoutMs = 30000;
  std::string Error;
  std::vector<TacticProfile> Lanes = resolvePortfolio({}, 3, Error);
  LExprRef X = mkVar("x", Sort::Int);
  PortfolioResult PR =
      checkPortfolio(SO, Lanes, mkIntLt(X, mkInt(5)), mkIntLe(X, mkInt(5)));
  EXPECT_EQ(PR.R.Status, CheckStatus::Valid) << PR.R.Detail;
  EXPECT_GE(PR.WinnerIndex, 0);
  EXPECT_FALSE(PR.WinnerProfile.empty());
  EXPECT_GE(PR.LanesRun, 1u);
}

TEST(PortfolioTest, PortfolioInvalidVerdict) {
  SolverOptions SO;
  SO.TimeoutMs = 30000;
  std::string Error;
  std::vector<TacticProfile> Lanes = resolvePortfolio({}, 3, Error);
  LExprRef X = mkVar("x", Sort::Int);
  PortfolioResult PR =
      checkPortfolio(SO, Lanes, mkBool(true), mkEq(X, mkInt(0)));
  EXPECT_EQ(PR.R.Status, CheckStatus::Invalid) << PR.R.Detail;
  EXPECT_GE(PR.WinnerIndex, 0);
}

TEST(PortfolioTest, SingleLaneDegeneratesToOneShot) {
  SolverOptions SO;
  SO.TimeoutMs = 30000;
  std::vector<TacticProfile> One = {builtinProfiles()[0]};
  LExprRef X = mkVar("x", Sort::Int);
  PortfolioResult PR =
      checkPortfolio(SO, One, mkIntLt(X, mkInt(5)), mkIntLe(X, mkInt(5)));
  EXPECT_EQ(PR.R.Status, CheckStatus::Valid);
  EXPECT_EQ(PR.WinnerIndex, 0);
  EXPECT_EQ(PR.LanesRun, 1u);
}

namespace {

/// An obligation only some lanes can settle: with MBQI disabled and no
/// ground f-terms, e-matching has nothing to instantiate the
/// contradictory bounds with, so the "no-mbqi" lane answers Unknown
/// while the stock strategy proves the entailment instantly.
void mbqiDiscriminator(LExprRef &Guard, LExprRef &Goal) {
  LExprRef X = mkVar("?x", Sort::Int);
  LExprRef Fx = mkApp("f", Sort::Int, {X});
  LExprRef Low = mkForall({X}, mkIntLe(Fx, mkInt(7)));
  LExprRef High = mkForall({X}, mkIntLe(mkInt(8), Fx));
  Guard = mkAnd(Low, High);
  Goal = mkBool(false);
}

} // namespace

TEST(PortfolioTest, DeterministicWinnerAcrossRuns) {
  // Lane 0 ("no-mbqi") cannot decide this obligation; lane 1
  // ("default") proves it. The reported winner must therefore be
  // "default" on every run, regardless of thread scheduling — the
  // tie-break is over *decisive* lanes only.
  SolverOptions SO;
  SO.TimeoutMs = 30000;
  std::string Error;
  std::vector<TacticProfile> Lanes =
      resolvePortfolio({"no-mbqi", "default"}, 0, Error);
  ASSERT_EQ(Lanes.size(), 2u);
  LExprRef Guard, Goal;
  mbqiDiscriminator(Guard, Goal);
  for (int Run = 0; Run != 2; ++Run) {
    PortfolioResult PR = checkPortfolio(SO, Lanes, Guard, Goal);
    EXPECT_EQ(PR.R.Status, CheckStatus::Valid) << PR.R.Detail;
    EXPECT_EQ(PR.WinnerIndex, 1) << "run " << Run;
    EXPECT_EQ(PR.WinnerProfile, "default") << "run " << Run;
  }
}

TEST(PortfolioTest, ProfileParamsAreApplied) {
  // The no-mbqi profile alone must fail the discriminator the default
  // strategy proves — i.e. the per-lane params demonstrably reach Z3.
  LExprRef Guard, Goal;
  mbqiDiscriminator(Guard, Goal);
  SolverOptions Stock;
  Stock.TimeoutMs = 30000;
  auto SD = createZ3Solver(Stock);
  EXPECT_EQ(SD->checkValid(Guard, Goal).Status, CheckStatus::Valid);

  SolverOptions NoMbqi = Stock;
  NoMbqi.TimeoutMs = 2000;
  const TacticProfile *P = findProfile("no-mbqi");
  ASSERT_NE(P, nullptr);
  NoMbqi.Profile = *P;
  auto SN = createZ3Solver(NoMbqi);
  EXPECT_EQ(SN->checkValid(Guard, Goal).Status, CheckStatus::Unknown);
}

//===----------------------------------------------------------------------===//
// Verifier integration
//===----------------------------------------------------------------------===//

TEST(PortfolioTest, VerifierLaneResolution) {
  verifier::VerifyOptions VO;
  std::string Error;
  EXPECT_TRUE(verifier::Verifier(VO).portfolioLanes(Error).empty());

  VO.Portfolio = 3;
  std::vector<TacticProfile> L = verifier::Verifier(VO).portfolioLanes(Error);
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[0].Name, "default");

  // An explicit profile list implies its own width.
  verifier::VerifyOptions VP;
  VP.PortfolioProfiles = {"reseed", "default"};
  L = verifier::Verifier(VP).portfolioLanes(Error);
  ASSERT_EQ(L.size(), 2u);
  EXPECT_EQ(L[0].Name, "reseed");

  verifier::VerifyOptions VB;
  VB.Portfolio = 4;
  VB.PortfolioProfiles = {"bogus"};
  EXPECT_TRUE(verifier::Verifier(VB).portfolioLanes(Error).empty());
  EXPECT_FALSE(Error.empty());
}
