#!/bin/sh
# End-to-end gate for incremental re-verification (build-system
# semantics). Copies the SLL suite (plus its spec header) into a
# scratch tree so it can be edited, then asserts:
#   (1) a cold `--incremental` run reports byte-identical outcomes to
#       a plain batch run (modulo the cache/manifest bookkeeping
#       fields) — incremental mode must not change verdicts;
#   (2) a warm re-run discharges EVERY function from the manifest with
#       zero obligations reaching Z3 ("solved_vcs": 0) — the CI
#       zero-solve contract;
#   (3) a whitespace/comment-only edit still skips everything (the
#       fingerprint hashes the normalized AST, not the bytes);
#   (4) a one-function body edit re-verifies exactly that function;
#   (5) a spec-header edit (predicate definition) transitively
#       invalidates every dependent function.
#
# Usage: incremental_equiv_test.sh <vcdryad-binary> <sll-suite-dir>
#
# The JSON report prints one key per line precisely so that shell
# gates like this one can grep/awk it without a JSON parser.
set -eu

VCDRYAD=$1
SUITE=$2

WORK=$(mktemp -d "${TMPDIR:-/tmp}/vcd-incremental.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

# Replicate the suite's layout (files reference ../include/sll.h).
mkdir -p "$WORK/corpus" "$WORK/include"
cp "$SUITE"/*.c "$WORK/corpus/"
cp "$SUITE"/../include/sll.h "$WORK/include/"

# Same 300 s budget as the other batch gates: under the 60 s default
# the suite's hardest obligation sits at the budget on slow hardware.
run() {
  mode=$1
  out=$2
  shift 2
  "$VCDRYAD" "$mode" "$WORK/corpus" --jobs=4 --timeout=300000 \
    --json-times=off --out="$out" "$@"
}

count() { # count <file> <key> -> integer value of a totals field
  awk -F': ' "/\"$2\":/ {gsub(/,/, \"\", \$2); print \$2; exit}" "$1"
}

echo "== baseline batch run (incremental off) =="
run batch "$WORK/base.json" --cache="$WORK/c0"
echo "== cold incremental run =="
run check "$WORK/cold.json" --cache="$WORK/c1"

# (1) Incremental off vs cold incremental: identical outcomes. Only
# the cache-directory path and the manifest bookkeeping may differ.
strip_incremental() {
  grep -v -E '"(dir|incremental|manifest|manifest_hits|manifest_misses|manifest_records)":' "$1"
}
strip_incremental "$WORK/base.json" > "$WORK/base.stripped"
strip_incremental "$WORK/cold.json" > "$WORK/cold.stripped"
if ! cmp -s "$WORK/base.stripped" "$WORK/cold.stripped"; then
  echo "FAIL: cold incremental run differs from plain batch" >&2
  diff "$WORK/base.stripped" "$WORK/cold.stripped" >&2 || true
  exit 1
fi

FUNCS=$(count "$WORK/cold.json" functions)
if [ "$FUNCS" -lt 1 ]; then
  echo "FAIL: suite reported no functions" >&2
  exit 1
fi

echo "== warm incremental run =="
run check "$WORK/warm.json" --cache="$WORK/c1"

# (2) The zero-solve contract: every function discharged from the
# manifest, no obligation handed to Z3.
SKIPPED=$(count "$WORK/warm.json" skipped_unchanged)
SOLVED=$(count "$WORK/warm.json" solved_vcs)
if [ "$SKIPPED" -ne "$FUNCS" ] || [ "$SOLVED" -ne 0 ]; then
  echo "FAIL: warm run skipped $SKIPPED/$FUNCS functions," \
       "solved $SOLVED VCs (want all skipped, 0 solved)" >&2
  exit 1
fi

# Warm verdicts equal cold verdicts modulo the skip/counter fields.
strip_counters() {
  grep -v -E '"(hits|misses|stores|cache_hits|cache_misses|manifest_hits|manifest_misses|manifest_records|solved_vcs|skipped_unchanged|fingerprint)":' "$1"
}
strip_counters "$WORK/cold.json" > "$WORK/cold2.stripped"
strip_counters "$WORK/warm.json" > "$WORK/warm.stripped"
if ! cmp -s "$WORK/cold2.stripped" "$WORK/warm.stripped"; then
  echo "FAIL: warm outcomes differ from cold outcomes" >&2
  diff "$WORK/cold2.stripped" "$WORK/warm.stripped" >&2 || true
  exit 1
fi

echo "== whitespace/comment-only edit =="
printf '// a comment the fingerprint must ignore\n\n' \
  > "$WORK/corpus/insert_front.c.new"
cat "$WORK/corpus/insert_front.c" >> "$WORK/corpus/insert_front.c.new"
mv "$WORK/corpus/insert_front.c.new" "$WORK/corpus/insert_front.c"
run check "$WORK/ws.json" --cache="$WORK/c1"
SKIPPED=$(count "$WORK/ws.json" skipped_unchanged)
if [ "$SKIPPED" -ne "$FUNCS" ]; then
  echo "FAIL: comment-only edit invalidated the manifest" \
       "($SKIPPED/$FUNCS skipped)" >&2
  exit 1
fi

echo "== one-function body edit =="
# Swap two independent assignments: still verifies, different AST.
awk '{
  if ($0 ~ /n->next = x;/) { print "  n->key = k;"; next }
  if ($0 ~ /n->key = k;/)  { print "  n->next = x;"; next }
  print
}' "$WORK/corpus/insert_front.c" > "$WORK/corpus/insert_front.c.new"
mv "$WORK/corpus/insert_front.c.new" "$WORK/corpus/insert_front.c"
run check "$WORK/edit.json" --cache="$WORK/c1"
SKIPPED=$(count "$WORK/edit.json" skipped_unchanged)
VERIFIED=$(count "$WORK/edit.json" verified)
if [ "$SKIPPED" -ne $((FUNCS - 1)) ]; then
  echo "FAIL: body edit should re-verify exactly 1 function" \
       "($SKIPPED/$FUNCS skipped)" >&2
  exit 1
fi
if [ "$VERIFIED" -ne "$FUNCS" ]; then
  echo "FAIL: edited function no longer verifies" >&2
  exit 1
fi

echo "== spec-header edit (transitive invalidation) =="
# Semantics-preserving operand swap inside the list() definition:
# every function in the suite depends on list, so nothing may skip.
sed 's/(x == nil \&\& emp)/(nil == x \&\& emp)/' \
  "$WORK/include/sll.h" > "$WORK/include/sll.h.new"
if cmp -s "$WORK/include/sll.h" "$WORK/include/sll.h.new"; then
  echo "FAIL: spec edit did not apply (test is vacuous)" >&2
  exit 1
fi
mv "$WORK/include/sll.h.new" "$WORK/include/sll.h"
run check "$WORK/spec.json" --cache="$WORK/c1"
SKIPPED=$(count "$WORK/spec.json" skipped_unchanged)
VERIFIED=$(count "$WORK/spec.json" verified)
if [ "$SKIPPED" -ne 0 ]; then
  echo "FAIL: spec edit must invalidate every dependent function" \
       "($SKIPPED skipped)" >&2
  exit 1
fi
if [ "$VERIFIED" -ne "$FUNCS" ]; then
  echo "FAIL: suite no longer verifies after the spec edit" >&2
  exit 1
fi

echo "PASS: cold==batch, warm zero-solve ($FUNCS skipped)," \
     "edit granularity exact"
