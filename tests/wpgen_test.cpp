//===- wpgen_test.cpp - Unit tests for VC generation -----------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/Passify.h"
#include "vir/WpGen.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::vir;

namespace {

LExprRef bvar(const char *N) { return mkVar(N, Sort::Bool); }

} // namespace

TEST(WpGenTest, SingleAssertGuardIsTrue) {
  Procedure P;
  P.Body.push_back(mkAssert(bvar("g"), "goal"));
  auto VCs = generateVCs(P);
  ASSERT_EQ(VCs.size(), 1u);
  EXPECT_EQ(VCs[0].Guard->str(), "true");
  EXPECT_EQ(VCs[0].Cond->str(), "g");
  EXPECT_EQ(VCs[0].Reason, "goal");
}

TEST(WpGenTest, AssumesAccumulateIntoGuard) {
  Procedure P;
  P.Body.push_back(mkAssume(bvar("a")));
  P.Body.push_back(mkAssume(bvar("b")));
  P.Body.push_back(mkAssert(bvar("g"), "goal"));
  auto VCs = generateVCs(P);
  ASSERT_EQ(VCs.size(), 1u);
  EXPECT_EQ(VCs[0].Guard->str(), "(and a b)");
}

TEST(WpGenTest, EarlierAssertsBecomeAssumptions) {
  Procedure P;
  P.Body.push_back(mkAssert(bvar("a"), "first"));
  P.Body.push_back(mkAssert(bvar("g"), "second"));
  auto VCs = generateVCs(P);
  ASSERT_EQ(VCs.size(), 2u);
  EXPECT_NE(VCs[1].Guard->str().find("a"), std::string::npos);
}

TEST(WpGenTest, BranchSummariesDisjoin) {
  Procedure P;
  Block Then{mkAssume(bvar("t"))};
  Block Else{mkAssume(bvar("e"))};
  P.Body.push_back(mkIf(mkBool(true), std::move(Then), std::move(Else)));
  P.Body.push_back(mkAssert(bvar("g"), "after join"));
  auto VCs = generateVCs(P);
  ASSERT_EQ(VCs.size(), 1u);
  EXPECT_NE(VCs[0].Guard->str().find("(or"), std::string::npos);
  EXPECT_NE(VCs[0].Guard->str().find("t"), std::string::npos);
  EXPECT_NE(VCs[0].Guard->str().find("e"), std::string::npos);
}

TEST(WpGenTest, AssertInsideBranchGuardedByBranchAssumes) {
  Procedure P;
  Block Then{mkAssume(bvar("c")), mkAssert(bvar("g"), "inside")};
  P.Body.push_back(mkIf(mkBool(true), std::move(Then), {}));
  auto VCs = generateVCs(P);
  ASSERT_EQ(VCs.size(), 1u);
  EXPECT_NE(VCs[0].Guard->str().find("c"), std::string::npos);
}

TEST(WpGenTest, ObligationsInProgramOrder) {
  Procedure P;
  P.Body.push_back(mkAssert(bvar("a"), "one"));
  Block Then{mkAssert(bvar("b"), "two")};
  P.Body.push_back(mkIf(mkBool(true), std::move(Then), {}));
  P.Body.push_back(mkAssert(bvar("c"), "three"));
  auto VCs = generateVCs(P);
  ASSERT_EQ(VCs.size(), 3u);
  EXPECT_EQ(VCs[0].Reason, "one");
  EXPECT_EQ(VCs[1].Reason, "two");
  EXPECT_EQ(VCs[2].Reason, "three");
}

TEST(WpGenTest, NegatedFormCombinesGuardAndGoal) {
  Procedure P;
  P.Body.push_back(mkAssume(bvar("a")));
  P.Body.push_back(mkAssert(bvar("g"), "goal"));
  auto VCs = generateVCs(P);
  EXPECT_EQ(VCs[0].negated()->str(), "(and a (not g))");
}

TEST(WpGenTest, EndToEndWithPassify) {
  // x := 1; if (x == 1) { assert x <= 1 } — valid by construction.
  Procedure P;
  P.Vars = {{"x", Sort::Int}};
  P.Body.push_back(mkAssign("x", Sort::Int, mkInt(1)));
  Block Then{mkAssert(mkIntLe(mkVar("x", Sort::Int), mkInt(1)), "le")};
  P.Body.push_back(mkIf(mkEq(mkVar("x", Sort::Int), mkInt(1)),
                        std::move(Then), {}));
  Procedure Q = passify(P);
  auto VCs = generateVCs(Q);
  ASSERT_EQ(VCs.size(), 1u);
  // Guard mentions the assignment equation and the branch condition.
  EXPECT_NE(VCs[0].Guard->str().find("(= x@1 1)"), std::string::npos);
  EXPECT_EQ(VCs[0].Cond->str(), "(<= x@1 1)");
}
