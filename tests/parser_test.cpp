//===- parser_test.cpp - Unit tests for the mini-C + DRYAD parser ----------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Parser.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::cfront;

namespace {

std::unique_ptr<Program> parseOk(const std::string &Src) {
  DiagnosticEngine D;
  auto P = parseProgram(Src, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return P;
}

std::string parseErr(const std::string &Src) {
  DiagnosticEngine D;
  parseProgram(Src, D);
  EXPECT_TRUE(D.hasErrors()) << "expected a parse/type error";
  return D.str();
}

const char *SLL = R"(
struct node { struct node *next; int key; };
_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
)
)";

} // namespace

TEST(ParserTest, StructDecl) {
  auto P = parseOk("struct node { struct node *next; int key; };");
  const StructDecl *S = P->findStruct("node");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Fields.size(), 2u);
  EXPECT_TRUE(S->Fields[0].Ty.isPtr());
  EXPECT_EQ(S->Fields[0].Ty.Pointee, S);
  EXPECT_TRUE(S->Fields[1].Ty.isInt());
}

TEST(ParserTest, LogicStructTableMirrored) {
  auto P = parseOk("struct node { struct node *next; int key; };");
  const dryad::StructInfo *SI = P->LogicStructs.lookup("node");
  ASSERT_NE(SI, nullptr);
  EXPECT_EQ(SI->findField("next")->FieldSort, vir::Sort::Loc);
  EXPECT_EQ(SI->findField("next")->TargetStruct, "node");
  EXPECT_EQ(SI->findField("key")->FieldSort, vir::Sort::Int);
}

TEST(ParserTest, MutuallyReferencingStructs) {
  auto P = parseOk("struct a { struct b *p; };\n"
                   "struct b { struct a *q; };");
  EXPECT_EQ(P->findStruct("a")->Fields[0].Ty.Pointee,
            P->findStruct("b"));
}

TEST(ParserTest, DryadPredicateParsed) {
  auto P = parseOk(SLL);
  const dryad::RecDef *L = P->Defs.lookup("list");
  ASSERT_NE(L, nullptr);
  EXPECT_TRUE(L->IsPredicate);
  ASSERT_EQ(L->Params.size(), 1u);
  EXPECT_EQ(L->Params[0].StructName, "node");
  ASSERT_NE(L->PredBody, nullptr);
  EXPECT_EQ(L->PredBody->Kind, dryad::FormulaKind::Or);
}

TEST(ParserTest, DryadFunctionParsed) {
  auto P = parseOk(SLL);
  const dryad::RecDef *K = P->Defs.lookup("keys");
  ASSERT_NE(K, nullptr);
  EXPECT_FALSE(K->IsPredicate);
  EXPECT_EQ(K->RetSort, vir::Sort::SetInt);
  ASSERT_NE(K->FnBody, nullptr);
  EXPECT_EQ(K->FnBody->Kind, dryad::TermKind::Ite);
}

TEST(ParserTest, FieldDependenciesComputed) {
  auto P = parseOk(SLL);
  const dryad::RecDef *L = P->Defs.lookup("list");
  // list uses the points-to atom: depends on every field of node.
  ASSERT_EQ(L->Fields.size(), 2u);
  const dryad::RecDef *K = P->Defs.lookup("keys");
  ASSERT_EQ(K->Fields.size(), 2u); // next and key.
}

TEST(ParserTest, FunctionWithContracts) {
  auto P = parseOk(std::string(SLL) + R"(
struct node *id(struct node *x)
  _(requires list(x))
  _(ensures list(result))
{ return x; }
)");
  FuncDecl *F = P->findFunc("id");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Requires.size(), 1u);
  EXPECT_EQ(F->Ensures.size(), 1u);
  ASSERT_NE(F->Body, nullptr);
}

TEST(ParserTest, LoopInvariants) {
  auto P = parseOk(std::string(SLL) + R"(
int len(struct node *x)
  _(requires list(x))
{
  int n = 0;
  struct node *c = x;
  while (c != NULL)
    _(invariant list(c))
    _(invariant n >= 0)
  {
    n = n + 1;
    c = c->next;
  }
  return n;
}
)");
  // Find the while statement.
  FuncDecl *F = P->findFunc("len");
  ASSERT_NE(F, nullptr);
  bool Found = false;
  for (const StmtRef &S : F->Body->Stmts)
    if (S->Kind == StmtKind::While) {
      EXPECT_EQ(S->Invariants.size(), 2u);
      Found = true;
    }
  EXPECT_TRUE(Found);
}

TEST(ParserTest, MallocIdioms) {
  auto P = parseOk(std::string(SLL) + R"(
struct node *mk1() {
  struct node *a = malloc(sizeof(struct node));
  struct node *b = (struct node *) malloc(sizeof(struct node));
  return a;
}
)");
  EXPECT_NE(P->findFunc("mk1"), nullptr);
}

TEST(ParserTest, AssertAssumeStatements) {
  auto P = parseOk(std::string(SLL) + R"(
void f(struct node *x)
  _(requires list(x))
{
  _(assume x != nil)
  _(assert list(x))
}
)");
  FuncDecl *F = P->findFunc("f");
  EXPECT_EQ(F->Body->Stmts[0]->Kind, StmtKind::Assume);
  EXPECT_EQ(F->Body->Stmts[1]->Kind, StmtKind::Assert);
}

TEST(ParserTest, AxiomParsed) {
  auto P = parseOk(std::string(SLL) + R"(
_(dryad
  axiom (struct node *x) true ==> heaplet keys(x) == heaplet list(x);
)
)");
  ASSERT_EQ(P->Defs.Axioms.size(), 1u);
  EXPECT_EQ(P->Defs.Axioms[0].Params.size(), 1u);
  EXPECT_EQ(P->Defs.Axioms[0].Body->Kind, dryad::FormulaKind::Implies);
}

TEST(ParserErrorTest, UndeclaredVariable) {
  std::string E = parseErr("int f() { return zz; }");
  EXPECT_NE(E.find("undeclared"), std::string::npos);
}

TEST(ParserErrorTest, UnknownField) {
  parseErr("struct node { int key; };\n"
           "int f(struct node *x) { return x->nope; }");
}

TEST(ParserErrorTest, ArrowOnNonPointer) {
  parseErr("struct node { int key; };\n"
           "int f(int x) { return x->key; }");
}

TEST(ParserErrorTest, CallBeforeDeclaration) {
  parseErr("int f() { return g(); }\nint g() { return 1; }");
}

TEST(ParserErrorTest, WrongArgumentCount) {
  parseErr("int g(int a) { return a; }\nint f() { return g(); }");
}

TEST(ParserErrorTest, AssignTypeMismatch) {
  parseErr("struct node { int key; };\n"
           "void f(struct node *x) { int y = 0; y = x; }");
}

TEST(ParserErrorTest, ResultOutsideEnsures) {
  parseErr("int f(int a) _(requires result == 1) { return a; }");
}

TEST(ParserErrorTest, UnknownPredicate) {
  parseErr("struct node { int key; };\n"
           "void f(struct node *x) _(requires nosuch(x)) { }");
}

TEST(ParserErrorTest, RedeclarationInScope) {
  parseErr("int f(int a) { int a = 1; return a; }");
}

TEST(ParserErrorTest, StructValuesRejected) {
  parseErr("struct node { int key; };\n"
           "void f() { struct node x; }");
}

TEST(ParserTest, RecursiveCallTypechecks) {
  auto P = parseOk("int f(int n) { if (n <= 0) return 0;"
                   " return f(n - 1); }");
  EXPECT_NE(P->findFunc("f"), nullptr);
}

TEST(ParserTest, SpecSetComparisons) {
  auto P = parseOk(std::string(SLL) + R"(
void f(struct node *x, int k)
  _(requires list(x) && keys(x) <= k)
  _(requires k < keys(x) || true)
{ }
)");
  EXPECT_NE(P->findFunc("f"), nullptr);
}

TEST(ParserTest, OldAndResultInEnsures) {
  auto P = parseOk(std::string(SLL) + R"(
struct node *f(struct node *x)
  _(requires list(x))
  _(ensures keys(result) == old(keys(x)))
{ return x; }
)");
  EXPECT_NE(P->findFunc("f"), nullptr);
}

TEST(ParserTest, EmptySetPolymorphism) {
  // emptyset compares against both int-set and loc-set terms.
  auto P = parseOk(std::string(SLL) + R"(
void f(struct node *x)
  _(requires keys(x) == emptyset)
  _(requires heaplet list(x) == emptyset)
{ }
)");
  EXPECT_NE(P->findFunc("f"), nullptr);
}

TEST(ParserTest, MultiParamDef) {
  auto P = parseOk(R"(
struct node { struct node *next; int key; };
_(dryad
  predicate lseg(struct node *x, struct node *y) =
      (x == y && emp) || (x != y && x |-> * lseg(x->next, y));
)
)");
  const dryad::RecDef *L = P->Defs.lookup("lseg");
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->Params.size(), 2u);
}
