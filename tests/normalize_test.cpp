//===- normalize_test.cpp - Unit tests for dereference flattening ----------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"
#include "cfront/Parser.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::cfront;

namespace {

const char *Prelude = "struct node { struct node *next; int key; };\n";

std::unique_ptr<Program> parseAndNormalize(const std::string &Body) {
  DiagnosticEngine D;
  auto P = parseProgram(Prelude + Body, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  normalizeProgram(*P, D);
  EXPECT_FALSE(D.hasErrors()) << D.str();
  return P;
}

/// Checks the normalized invariants: heap access only in primitive
/// statement forms, atoms in primitive positions.
bool isAtom(const Expr &E) {
  return E.Kind == ExprKind::Var || E.Kind == ExprKind::IntLit ||
         E.Kind == ExprKind::Null;
}

bool exprIsPure(const Expr &E) {
  if (E.Kind == ExprKind::FieldAccess || E.Kind == ExprKind::Call ||
      E.Kind == ExprKind::Malloc)
    return false;
  for (const ExprRef &A : E.Args)
    if (!exprIsPure(*A))
      return false;
  return true;
}

void checkNormalized(const Stmt &S, bool &Ok) {
  switch (S.Kind) {
  case StmtKind::Assign:
    if (S.Lhs->Kind == ExprKind::FieldAccess) {
      Ok &= isAtom(*S.Lhs->Args[0]) && isAtom(*S.Rhs);
    } else if (S.Rhs->Kind == ExprKind::FieldAccess) {
      Ok &= isAtom(*S.Rhs->Args[0]);
    } else if (S.Rhs->Kind == ExprKind::Call) {
      for (const ExprRef &A : S.Rhs->Args)
        Ok &= isAtom(*A);
    } else if (S.Rhs->Kind != ExprKind::Malloc) {
      Ok &= exprIsPure(*S.Rhs);
    }
    break;
  case StmtKind::Decl:
    Ok &= !S.Rhs; // Initializers split off.
    break;
  case StmtKind::If:
  case StmtKind::While:
    Ok &= exprIsPure(*S.Cond);
    break;
  case StmtKind::Return:
    if (S.Rhs)
      Ok &= isAtom(*S.Rhs);
    break;
  case StmtKind::Free:
    Ok &= isAtom(*S.Rhs);
    break;
  default:
    break;
  }
  for (const StmtRef &Sub : S.Stmts)
    checkNormalized(*Sub, Ok);
  if (S.Then)
    checkNormalized(*S.Then, Ok);
  if (S.Else)
    checkNormalized(*S.Else, Ok);
}

bool functionNormalized(const Program &P, const std::string &Name) {
  bool Ok = true;
  checkNormalized(*P.findFunc(Name)->Body, Ok);
  return Ok;
}

} // namespace

TEST(NormalizeTest, ChainedDereferenceSplit) {
  auto P = parseAndNormalize(
      "int f(struct node *x) { return x->next->next->key; }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
}

TEST(NormalizeTest, FieldWriteThroughChain) {
  auto P = parseAndNormalize(
      "void f(struct node *x) { x->next->key = 5; }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
}

TEST(NormalizeTest, CallArgumentsHoisted) {
  auto P = parseAndNormalize("int g(int a) { return a; }\n"
                             "int f(struct node *x) {"
                             "  return g(x->key + 1); }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
}

TEST(NormalizeTest, ConditionDereferenceHoisted) {
  auto P = parseAndNormalize("int f(struct node *x) {"
                             "  if (x->key > 0) return 1; return 0; }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
}

TEST(NormalizeTest, WhileConditionPreludeCreated) {
  auto P = parseAndNormalize(
      "int f(struct node *x) { int n = 0;"
      "  while (x->key > 0) { x = x->next; n = n + 1; } return n; }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
  // The while node carries its condition-evaluation prelude.
  const FuncDecl *F = P->findFunc("f");
  bool FoundWhile = false;
  for (const StmtRef &S : F->Body->Stmts)
    if (S->Kind == StmtKind::While) {
      FoundWhile = true;
      EXPECT_FALSE(S->Stmts.empty());
      EXPECT_TRUE(exprIsPure(*S->Cond));
    }
  EXPECT_TRUE(FoundWhile);
}

TEST(NormalizeTest, DeclWithInitSplit) {
  auto P = parseAndNormalize(
      "int f(struct node *x) { int k = x->key; return k; }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
}

TEST(NormalizeTest, ReturnComplexExprHoisted) {
  auto P = parseAndNormalize("int f(int a, int b) { return a + b; }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
}

TEST(NormalizeTest, MallocStaysDirect) {
  auto P = parseAndNormalize(
      "struct node *f() {"
      "  struct node *n = malloc(sizeof(struct node));"
      "  return n; }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
}

TEST(NormalizeTest, FreeArgumentAtomized) {
  auto P = parseAndNormalize(
      "void f(struct node *x) { free(x->next); }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
}

TEST(NormalizeTest, IdempotentOnSimpleCode) {
  auto P = parseAndNormalize(
      "int f(struct node *x) { int k; k = x->key; return k; }");
  FuncDecl *F = P->findFunc("f");
  std::string Once = F->Body->str();
  DiagnosticEngine D;
  normalizeFunction(*F, D);
  // A second normalization adds no statements (same count of ';').
  EXPECT_EQ(F->Body->str(), Once);
}

TEST(NormalizeTest, NestedCallsFlattened) {
  auto P = parseAndNormalize("int g(int a) { return a; }\n"
                             "int f(int a) { return g(g(a)); }");
  EXPECT_TRUE(functionNormalized(*P, "f"));
}
