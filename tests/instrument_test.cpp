//===- instrument_test.cpp - Unit tests for ghost-code synthesis -----------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "instr/Instrument.h"

#include <gtest/gtest.h>

using namespace vcdryad;
using namespace vcdryad::cfront;
using namespace vcdryad::instr;

namespace {

const char *SLL = R"(
struct node { struct node *next; int key; };
_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));
  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));
  axiom (struct node *x) true ==> heaplet keys(x) == heaplet list(x);
)
)";

struct Pipeline {
  DiagnosticEngine Diag;
  std::unique_ptr<Program> Prog;

  explicit Pipeline(const std::string &Src,
                    const InstrOptions &Opts = {}) {
    Prog = parseProgram(Src, Diag);
    EXPECT_FALSE(Diag.hasErrors()) << Diag.str();
    normalizeProgram(*Prog, Diag);
    instrumentProgram(*Prog, Opts, Diag);
    EXPECT_FALSE(Diag.hasErrors()) << Diag.str();
  }

  FuncDecl *func(const std::string &N) { return Prog->findFunc(N); }
};

unsigned countKind(const Stmt &S, StmtKind K) {
  unsigned N = S.Kind == K ? 1 : 0;
  for (const StmtRef &Sub : S.Stmts)
    N += countKind(*Sub, K);
  if (S.Then)
    N += countKind(*S.Then, K);
  if (S.Else)
    N += countKind(*S.Else, K);
  return N;
}

bool containsGhostComment(const Stmt &S, const std::string &Text) {
  if (S.GhostComment.find(Text) != std::string::npos)
    return true;
  for (const StmtRef &Sub : S.Stmts)
    if (containsGhostComment(*Sub, Text))
      return true;
  if (S.Then && containsGhostComment(*S.Then, Text))
    return true;
  if (S.Else && containsGhostComment(*S.Else, Text))
    return true;
  return false;
}

} // namespace

TEST(InstrumentTest, DereferenceGetsUnfoldAndMemoization) {
  Pipeline P(std::string(SLL) + R"(
int get(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures true)
{ return x->key; }
)");
  const FuncDecl *F = P.func("get");
  EXPECT_TRUE(containsGhostComment(*F->Body, "unfold list"));
  EXPECT_TRUE(containsGhostComment(*F->Body, "unfold keys"));
  EXPECT_TRUE(containsGhostComment(*F->Body, "memoize dereferenced"));
  EXPECT_TRUE(containsGhostComment(*F->Body, "memoize field next"));
}

TEST(InstrumentTest, DestructiveUpdateGetsPreservation) {
  Pipeline P(std::string(SLL) + R"(
void set(struct node *x, int k)
  _(requires list(x) && x != nil)
  _(ensures true)
{ x->key = k; }
)");
  const FuncDecl *F = P.func("set");
  EXPECT_TRUE(containsGhostComment(*F->Body, "memoize state before update"));
  EXPECT_TRUE(containsGhostComment(*F->Body, "preserve keys"));
  // list does not read key... it does (points-to covers all fields),
  // so list is preserved as well.
  EXPECT_TRUE(containsGhostComment(*F->Body, "preserve list"));
}

TEST(InstrumentTest, MallocUpdatesHeaplet) {
  Pipeline P(std::string(SLL) + R"(
struct node *mk()
  _(ensures true)
{
  struct node *n = malloc(sizeof(struct node));
  return n;
}
)");
  EXPECT_TRUE(
      containsGhostComment(*P.func("mk")->Body, "heaplet update (malloc)"));
}

TEST(InstrumentTest, FreeUpdatesHeaplet) {
  Pipeline P(std::string(SLL) + R"(
void rel(struct node *x)
  _(requires x |->)
  _(ensures true)
{ free(x); }
)");
  EXPECT_TRUE(
      containsGhostComment(*P.func("rel")->Body, "heaplet update (free)"));
}

TEST(InstrumentTest, CallGetsFrameAndHeapletUpdate) {
  Pipeline P(std::string(SLL) + R"(
void cal(struct node *x) _(requires list(x)) _(ensures list(x)) ;
void go(struct node *x)
  _(requires list(x))
  _(ensures list(x))
{ cal(x); }
)");
  const FuncDecl *F = P.func("go");
  EXPECT_TRUE(containsGhostComment(*F->Body, "callee pre-heaplet"));
  EXPECT_TRUE(containsGhostComment(*F->Body, "memoize state before call"));
  EXPECT_TRUE(containsGhostComment(*F->Body, "preserve field"));
  EXPECT_TRUE(containsGhostComment(*F->Body, "heaplet update (call)"));
}

TEST(InstrumentTest, AblationUnfoldOff) {
  InstrOptions Opts;
  Opts.Unfold = false;
  Pipeline P(std::string(SLL) + R"(
int get(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures true)
{ return x->key; }
)",
             Opts);
  EXPECT_FALSE(containsGhostComment(*P.func("get")->Body, "unfold"));
}

TEST(InstrumentTest, AblationPreservationOff) {
  InstrOptions Opts;
  Opts.Preservation = false;
  Pipeline P(std::string(SLL) + R"(
void set(struct node *x, int k)
  _(requires list(x) && x != nil)
  _(ensures true)
{ x->key = k; }
)",
             Opts);
  EXPECT_FALSE(containsGhostComment(*P.func("set")->Body, "preserve"));
}

TEST(InstrumentTest, AxiomModeOff) {
  InstrOptions Opts;
  Opts.Axioms = InstrOptions::AxiomMode::Off;
  Pipeline P(std::string(SLL) + R"(
int get(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures true)
{ return x->key; }
)",
             Opts);
  EXPECT_FALSE(containsGhostComment(*P.func("get")->Body, "axiom"));
}

TEST(InstrumentTest, AxiomInstancesAtEntry) {
  Pipeline P(std::string(SLL) + R"(
void noop(struct node *x)
  _(requires list(x))
  _(ensures list(x))
{ }
)");
  EXPECT_TRUE(containsGhostComment(*P.func("noop")->Body, "axiom instance"));
}

TEST(InstrumentTest, AnnotationCountsManualVsGhost) {
  Pipeline P(std::string(SLL) + R"(
int get(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures true)
{ return x->key; }
)");
  AnnotationStats St = countAnnotations(*P.func("get"));
  EXPECT_EQ(St.Manual, 2u);
  EXPECT_GT(St.Ghost, 10u);
}

TEST(InstrumentTest, InvariantsCountAsManual) {
  Pipeline P(std::string(SLL) + R"(
int len(struct node *x)
  _(requires list(x))
  _(ensures list(x))
{
  int n = 0;
  struct node *c = x;
  while (c != NULL)
    _(invariant true)
    _(invariant n >= 0)
  { c = c->next; n = n + 1; }
  return n;
}
)");
  AnnotationStats St = countAnnotations(*P.func("len"));
  EXPECT_EQ(St.Manual, 4u); // requires + ensures + 2 invariants.
}

TEST(InstrumentTest, GhostCodeIsPrintable) {
  Pipeline P(std::string(SLL) + R"(
int get(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures true)
{ return x->key; }
)");
  std::string S = P.func("get")->str();
  EXPECT_NE(S.find("_(ghost assume"), std::string::npos);
  EXPECT_NE(S.find("_(ghost $fp0 :="), std::string::npos);
}

TEST(InstrumentTest, QuantifiedAxiomsBuilt) {
  DiagnosticEngine Diag;
  auto Prog = parseProgram(std::string(SLL), Diag);
  ASSERT_FALSE(Diag.hasErrors());
  auto Axs = quantifiedAxioms(*Prog, Diag);
  ASSERT_EQ(Axs.size(), 1u);
  EXPECT_EQ(Axs[0]->Op, vir::LOp::Forall);
  // Quantifies the parameter and the dependent field arrays.
  EXPECT_GE(Axs[0]->Args.size(), 3u);
}

TEST(InstrumentTest, TupleBudgetRespected) {
  InstrOptions Opts;
  Opts.MaxTuplesPerSite = 1;
  Pipeline PSmall(std::string(SLL) + R"(
int get(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures true)
{ return x->key; }
)",
                  Opts);
  Pipeline PBig(std::string(SLL) + R"(
int get(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures true)
{ return x->key; }
)");
  EXPECT_LE(countAnnotations(*PSmall.func("get")).Ghost,
            countAnnotations(*PBig.func("get")).Ghost);
}
