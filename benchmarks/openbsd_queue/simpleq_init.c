// SIMPLEQ_INIT.
#include "../include/queue.h"

void simpleq_init(struct queue *q)
  _(requires q |->)
  _(ensures wfq(q) && qkeys(q) == emptyset)
{
  q->first = NULL;
  q->last = NULL;
}
