// SIMPLEQ_INSERT_TAIL.
#include "../include/queue.h"

void simpleq_insert_tail(struct queue *q, int k)
  _(requires wfq(q))
  _(ensures wfq(q))
  _(ensures qkeys(q) == (old(qkeys(q)) union singleton(k)))
{
  struct qnode *n = (struct qnode *) malloc(sizeof(struct qnode));
  n->key = k;
  n->next = NULL;
  struct qnode *l = q->last;
  if (l == NULL) {
    q->first = n;
    q->last = n;
    return;
  }
  l->next = n;
  q->last = n;
}
