// SIMPLEQ_INSERT_HEAD.
#include "../include/queue.h"

void simpleq_insert_head(struct queue *q, int k)
  _(requires wfq(q))
  _(ensures wfq(q))
  _(ensures qkeys(q) == (old(qkeys(q)) union singleton(k)))
{
  struct qnode *n = (struct qnode *) malloc(sizeof(struct qnode));
  n->key = k;
  struct qnode *f = q->first;
  n->next = f;
  q->first = n;
  if (f == NULL) {
    q->last = n;
    n->next = NULL;
  }
}
