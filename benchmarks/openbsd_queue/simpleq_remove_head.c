// SIMPLEQ_REMOVE_HEAD.
#include "../include/queue.h"

void simpleq_remove_head(struct queue *q)
  _(requires wfq(q) && q->first != nil)
  _(ensures wfq(q))
  _(ensures qkeys(q) subset old(qkeys(q)))
{
  struct qnode *f = q->first;
  if (f == q->last) {
    q->first = NULL;
    q->last = NULL;
    free(f);
    return;
  }
  struct qnode *t = f->next;
  q->first = t;
  free(f);
}
