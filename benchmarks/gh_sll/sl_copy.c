// GRASShopper sl_copy: iterative copy with a tail pointer.
#include "../include/sll.h"

struct node *sl_copy(struct node *x)
  _(requires list(x))
  _(ensures list(x) * list(result))
  _(ensures keys(x) == old(keys(x)) && keys(result) == old(keys(x)))
{
  if (x == NULL)
    return NULL;
  struct node *c = (struct node *) malloc(sizeof(struct node));
  c->key = x->key;
  c->next = NULL;
  struct node *src = x->next;
  struct node *last = c;
  while (src != NULL)
    _(invariant ((lseg(x, src) * list(src)) *
                 (lseg(c, last) * (last |-> && last->next == nil))))
    _(invariant (lseg_keys(x, src) union keys(src)) == old(keys(x)))
    _(invariant (lseg_keys(c, last) union singleton(last->key)) ==
                lseg_keys(x, src))
    _(invariant keys(x) == old(keys(x)))
  {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->key = src->key;
    n->next = NULL;
    last->next = n;
    last = n;
    src = src->next;
  }
  return c;
}
