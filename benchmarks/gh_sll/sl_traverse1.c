// GRASShopper sl_traverse1: read-only walk.
#include "../include/sll.h"

void sl_traverse1(struct node *x)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
{
  struct node *cur = x;
  while (cur != NULL)
    _(invariant (lseg(x, cur) * list(cur)))
    _(invariant keys(x) == (lseg_keys(x, cur) union keys(cur)))
  {
    cur = cur->next;
  }
}
