// GRASShopper sl_dispose (iterative free-all).
#include "../include/sll.h"

void sl_dispose(struct node *x)
  _(requires list(x))
  _(ensures emp)
{
  struct node *cur = x;
  while (cur != NULL)
    _(invariant list(cur))
  {
    struct node *t = cur->next;
    free(cur);
    cur = t;
  }
}
