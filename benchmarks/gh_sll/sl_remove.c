// GRASShopper sl_remove: unlink/free the first node with key v.
#include "../include/sll.h"

struct node *sl_remove(struct node *x, int v)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) subset old(keys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->key == v) {
    struct node *t = x->next;
    free(x);
    return t;
  }
  struct node *prev = x;
  struct node *cur = x->next;
  while (cur != NULL && cur->key != v)
    _(invariant (lseg(x, prev) * ((prev |-> && prev->next == cur) *
                 list(cur))))
    _(invariant keys(x) ==
        ((lseg_keys(x, prev) union singleton(prev->key)) union keys(cur)))
    _(invariant keys(x) == old(keys(x)))
  {
    prev = cur;
    cur = cur->next;
  }
  if (cur != NULL) {
    struct node *t2 = cur->next;
    prev->next = t2;
    free(cur);
  }
  return x;
}
