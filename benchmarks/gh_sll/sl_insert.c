// GRASShopper sl_insert: insert at the tail (iterative).
#include "../include/sll.h"

struct node *sl_insert(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = NULL;
  n->key = k;
  if (x == NULL)
    return n;
  struct node *cur = x;
  struct node *nx = cur->next;
  while (nx != NULL)
    _(invariant ((lseg(x, cur) * (cur |-> && cur->next == nx)) *
                 list(nx)) * (n |-> && n->next == nil && n->key == k))
    _(invariant keys(x) ==
        ((lseg_keys(x, cur) union singleton(cur->key)) union keys(nx)))
    _(invariant keys(x) == old(keys(x)))
  {
    cur = nx;
    nx = cur->next;
  }
  cur->next = n;
  return x;
}
