// GRASShopper sl_traverse2: walk keeping a trailing pointer.
#include "../include/sll.h"

void sl_traverse2(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures list(x) && keys(x) == old(keys(x)))
{
  struct node *cur = x;
  struct node *nx = cur->next;
  while (nx != NULL)
    _(invariant (lseg(x, cur) * (cur |-> && cur->next == nx)) * list(nx))
    _(invariant keys(x) ==
        ((lseg_keys(x, cur) union singleton(cur->key)) union keys(nx)))
  {
    cur = nx;
    nx = cur->next;
  }
}
