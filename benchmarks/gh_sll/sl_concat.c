// GRASShopper sl_concat: walk to the tail of x, attach y.
#include "../include/sll.h"

struct node *sl_concat(struct node *x, struct node *y)
  _(requires list(x) * list(y))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  struct node *cur = x;
  struct node *nx = cur->next;
  while (nx != NULL)
    _(invariant ((lseg(x, cur) * (cur |-> && cur->next == nx)) *
                 list(nx)) * list(y))
    _(invariant keys(x) ==
        ((lseg_keys(x, cur) union singleton(cur->key)) union keys(nx)))
    _(invariant keys(y) == old(keys(y)) && keys(x) == old(keys(x)))
  {
    cur = nx;
    nx = cur->next;
  }
  cur->next = y;
  return x;
}
