// GRASShopper sl_filter: drop every node with key v (iterative).
#include "../include/sll.h"

struct node *sl_filter(struct node *x, int v)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) setminus singleton(v)))
{
  struct node *h = x;
  while (h != NULL && h->key == v)
    _(invariant list(h))
    _(invariant (keys(h) setminus singleton(v)) ==
                (old(keys(x)) setminus singleton(v)))
  {
    struct node *t = h->next;
    free(h);
    h = t;
  }
  if (h == NULL)
    return NULL;
  struct node *prev = h;
  struct node *cur = h->next;
  while (cur != NULL)
    _(invariant (lseg(h, prev) * ((prev |-> && prev->next == cur &&
                 prev->key != v) * list(cur))))
    _(invariant !(v in lseg_keys(h, prev)))
    _(invariant ((lseg_keys(h, prev) union singleton(prev->key)) union
                 (keys(cur) setminus singleton(v))) ==
                (old(keys(x)) setminus singleton(v)))
  {
    struct node *t = cur->next;
    if (cur->key == v) {
      prev->next = t;
      free(cur);
    } else {
      prev = cur;
    }
    cur = t;
  }
  return h;
}
