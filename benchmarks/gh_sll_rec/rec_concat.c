// GRASShopper rec_concat.
#include "../include/sll.h"

struct node *rec_concat(struct node *x, struct node *y)
  _(requires list(x) * list(y))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  struct node *t = rec_concat(x->next, y);
  x->next = t;
  return x;
}
