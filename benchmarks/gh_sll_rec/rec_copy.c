// GRASShopper rec_copy.
#include "../include/sll.h"

struct node *rec_copy(struct node *x)
  _(requires list(x))
  _(ensures list(x) * list(result))
  _(ensures keys(x) == old(keys(x)) && keys(result) == old(keys(x)))
{
  if (x == NULL)
    return NULL;
  struct node *c = (struct node *) malloc(sizeof(struct node));
  c->key = x->key;
  struct node *rest = rec_copy(x->next);
  c->next = rest;
  return c;
}
