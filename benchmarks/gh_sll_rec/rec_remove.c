// GRASShopper rec_remove: drop the first node with key v.
#include "../include/sll.h"

struct node *rec_remove(struct node *x, int v)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) subset old(keys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->key == v) {
    struct node *t = x->next;
    free(x);
    return t;
  }
  struct node *t2 = rec_remove(x->next, v);
  x->next = t2;
  return x;
}
