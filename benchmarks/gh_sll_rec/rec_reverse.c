// GRASShopper rec_reverse (accumulator style).
#include "../include/sll.h"

struct node *rec_reverse(struct node *x, struct node *acc)
  _(requires list(x) * list(acc))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(acc))))
{
  if (x == NULL)
    return acc;
  struct node *t = x->next;
  x->next = acc;
  return rec_reverse(t, x);
}
