// GRASShopper rec_dispose.
#include "../include/sll.h"

void rec_dispose(struct node *x)
  _(requires list(x))
  _(ensures emp)
{
  if (x == NULL)
    return;
  struct node *t = x->next;
  free(x);
  rec_dispose(t);
}
