// GRASShopper rec_filter: drop every node with key v.
#include "../include/sll.h"

struct node *rec_filter(struct node *x, int v)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) setminus singleton(v)))
{
  if (x == NULL)
    return NULL;
  struct node *t = rec_filter(x->next, v);
  if (x->key == v) {
    free(x);
    return t;
  }
  x->next = t;
  return x;
}
