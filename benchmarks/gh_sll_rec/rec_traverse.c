// GRASShopper rec_traverse.
#include "../include/sll.h"

void rec_traverse(struct node *x)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
{
  if (x == NULL)
    return;
  rec_traverse(x->next);
}
