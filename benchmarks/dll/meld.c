// DLL meld: merge two lists by ascending head keys.
#include "../include/dll.h"

struct dnode *meld(struct dnode *x, struct dnode *y)
  _(requires dll(x, nil) * dll(y, nil))
  _(ensures dll(result, nil))
  _(ensures dkeys(result) == (old(dkeys(x)) union old(dkeys(y))))
{
  if (x == NULL)
    return y;
  if (y == NULL)
    return x;
  if (x->key <= y->key) {
    struct dnode *xn = x->next;
    if (xn != NULL) {
      xn->prev = NULL;
    }
    struct dnode *t = meld(xn, y);
    x->next = t;
    if (t != NULL) {
      t->prev = x;
    }
    return x;
  }
  struct dnode *yn = y->next;
  if (yn != NULL) {
    yn->prev = NULL;
  }
  struct dnode *t2 = meld(x, yn);
  y->next = t2;
  if (t2 != NULL) {
    t2->prev = y;
  }
  return y;
}
