// DLL insert-back (recursive).
#include "../include/dll.h"

struct dnode *insert_back_rec(struct dnode *x, struct dnode *p, int k)
  _(requires dll(x, p))
  _(ensures dll(result, p))
  _(ensures dkeys(result) == (old(dkeys(x)) union singleton(k)))
{
  if (x == NULL) {
    struct dnode *n = (struct dnode *) malloc(sizeof(struct dnode));
    n->next = NULL;
    n->prev = p;
    n->key = k;
    return n;
  }
  struct dnode *t = insert_back_rec(x->next, x, k);
  x->next = t;
  return x;
}
