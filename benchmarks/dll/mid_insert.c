// DLL insert after the head node.
#include "../include/dll.h"

void mid_insert(struct dnode *x, int k)
  _(requires dll(x, nil) && x != nil)
  _(ensures dll(x, nil))
  _(ensures dkeys(x) == (old(dkeys(x)) union singleton(k)))
{
  struct dnode *n = (struct dnode *) malloc(sizeof(struct dnode));
  struct dnode *t = x->next;
  n->next = t;
  n->prev = x;
  n->key = k;
  x->next = n;
  if (t != NULL) {
    t->prev = n;
  }
}
