// DLL delete the node after the head.
#include "../include/dll.h"

void mid_delete(struct dnode *x)
  _(requires dll(x, nil) && x != nil && x->next != nil)
  _(ensures dll(x, nil))
  _(ensures dkeys(x) subset old(dkeys(x)))
{
  struct dnode *t = x->next;
  struct dnode *u = t->next;
  x->next = u;
  if (u != NULL) {
    u->prev = x;
  }
  free(t);
}
