// DLL delete-all (recursive): removes and frees every node with key k.
#include "../include/dll.h"

struct dnode *delete_all(struct dnode *x, struct dnode *p, int k)
  _(requires dll(x, p))
  _(ensures dll(result, p))
  _(ensures dkeys(result) == (old(dkeys(x)) setminus singleton(k)))
{
  if (x == NULL)
    return NULL;
  if (x->key == k) {
    struct dnode *t = x->next;
    struct dnode *r = delete_all(t, x, k);
    free(x);
    if (r != NULL) {
      r->prev = p;
    }
    return r;
  }
  struct dnode *t2 = delete_all(x->next, x, k);
  x->next = t2;
  return x;
}
