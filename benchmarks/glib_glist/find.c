// g_list_find.
#include "../include/dll.h"

struct dnode *g_list_find(struct dnode *x, struct dnode *p, int k)
  _(requires dll(x, p))
  _(ensures dll(x, p) && dkeys(x) == old(dkeys(x)))
  _(ensures (result == nil && !(k in dkeys(x))) ||
            (result != nil && result->key == k && k in dkeys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->key == k)
    return x;
  return g_list_find(x->next, x, k);
}
