// g_list_index.
#include "../include/dll.h"

int g_list_index(struct dnode *x, struct dnode *p, int k)
  _(requires dll(x, p))
  _(ensures dll(x, p) && dkeys(x) == old(dkeys(x)))
  _(ensures (result >= 0 && k in dkeys(x)) ||
            (result == 0 - 1 && !(k in dkeys(x))))
{
  if (x == NULL)
    return 0 - 1;
  if (x->key == k)
    return 0;
  int r = g_list_index(x->next, x, k);
  if (r == 0 - 1)
    return 0 - 1;
  return r + 1;
}
