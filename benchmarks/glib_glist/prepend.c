// g_list_prepend.
#include "../include/dll.h"

struct dnode *g_list_prepend(struct dnode *x, int k)
  _(requires dll(x, nil))
  _(ensures dll(result, nil))
  _(ensures dkeys(result) == (old(dkeys(x)) union singleton(k)))
{
  struct dnode *n = (struct dnode *) malloc(sizeof(struct dnode));
  n->next = x;
  n->prev = NULL;
  n->key = k;
  if (x != NULL) {
    x->prev = n;
  }
  return n;
}
