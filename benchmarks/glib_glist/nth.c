// g_list_nth.
#include "../include/dll.h"

struct dnode *g_list_nth(struct dnode *x, struct dnode *p, int n)
  _(requires dll(x, p))
  _(ensures dll(x, p) && dkeys(x) == old(dkeys(x)))
  _(ensures result == nil || result in heaplet dll(x, p))
{
  if (x == NULL)
    return NULL;
  if (n <= 0)
    return x;
  return g_list_nth(x->next, x, n - 1);
}
