// g_list_position.
#include "../include/dll.h"

int g_list_position(struct dnode *x, struct dnode *p, struct dnode *link)
  _(requires dll(x, p))
  _(ensures dll(x, p) && dkeys(x) == old(dkeys(x)))
  _(ensures result >= 0 - 1)
{
  if (x == NULL)
    return 0 - 1;
  if (x == link)
    return 0;
  int r = g_list_position(x->next, x, link);
  if (r == 0 - 1)
    return 0 - 1;
  return r + 1;
}
