// g_list_last.
#include "../include/dll.h"

struct dnode *g_list_last(struct dnode *x, struct dnode *p)
  _(requires dll(x, p))
  _(ensures dll(x, p) && dkeys(x) == old(dkeys(x)))
  _(ensures (x == nil && result == nil) ||
            (x != nil && result != nil && result->next == nil))
{
  if (x == NULL)
    return NULL;
  if (x->next == NULL)
    return x;
  return g_list_last(x->next, x);
}
