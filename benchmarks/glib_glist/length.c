// g_list_length.
#include "../include/dll.h"

int g_list_length(struct dnode *x, struct dnode *p)
  _(requires dll(x, p))
  _(ensures dll(x, p) && dkeys(x) == old(dkeys(x)))
  _(ensures result >= 0)
{
  if (x == NULL)
    return 0;
  int n = g_list_length(x->next, x);
  return n + 1;
}
