// g_list_reverse: iterative unlink-and-push reversal.
#include "../include/dll.h"

struct dnode *g_list_reverse(struct dnode *x)
  _(requires dll(x, nil))
  _(ensures dll(result, nil))
  _(ensures dkeys(result) == old(dkeys(x)))
{
  struct dnode *rev = NULL;
  struct dnode *cur = x;
  while (cur != NULL)
    _(invariant dll(cur, nil) * dll(rev, nil))
    _(invariant (dkeys(cur) union dkeys(rev)) == old(dkeys(x)))
  {
    struct dnode *t = cur->next;
    if (t != NULL) {
      t->prev = NULL;
    }
    cur->next = rev;
    cur->prev = NULL;
    if (rev != NULL) {
      rev->prev = cur;
    }
    rev = cur;
    cur = t;
  }
  return rev;
}
