// g_list_free.
#include "../include/dll.h"

void g_list_free(struct dnode *x, struct dnode *p)
  _(requires dll(x, p))
  _(ensures emp)
{
  if (x == NULL)
    return;
  struct dnode *t = x->next;
  free(x);
  g_list_free(t, x);
}
