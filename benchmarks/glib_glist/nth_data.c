// g_list_nth_data.
#include "../include/dll.h"

int g_list_nth_data(struct dnode *x, struct dnode *p, int n)
  _(requires dll(x, p))
  _(ensures dll(x, p) && dkeys(x) == old(dkeys(x)))
  _(ensures result == 0 || result in dkeys(x))
{
  if (x == NULL)
    return 0;
  if (n <= 0) {
    int k = x->key;
    if (k == 0)
      return 0;
    return k;
  }
  return g_list_nth_data(x->next, x, n - 1);
}
