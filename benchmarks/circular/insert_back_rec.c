// Circular list insert-back: walk to the node closing the cycle and
// splice a fresh node before the head link.
#include "../include/circular.h"

void cl_insert_back_rec(struct node *cur, struct node *head, int k)
  _(requires lseg(cur, head) && cur != nil && cur != head)
  _(ensures lseg(cur, head))
  _(ensures lseg_keys(cur, head) ==
            (old(lseg_keys(cur, head)) union singleton(k)))
{
  struct node *t = cur->next;
  if (t == head) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->key = k;
    n->next = head;
    cur->next = n;
    return;
  }
  cl_insert_back_rec(t, head, k);
}

void insert_back(struct node *x, int k)
  _(requires cl(x) && x != nil)
  _(ensures cl(x))
  _(ensures ckeys(x) == (old(ckeys(x)) union singleton(k)))
{
  struct node *t = x->next;
  if (t == x) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->key = k;
    n->next = x;
    x->next = n;
    return;
  }
  cl_insert_back_rec(t, x, k);
}
