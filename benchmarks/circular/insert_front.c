// Circular list insert-front: link a fresh node right after the head.
#include "../include/circular.h"

void insert_front(struct node *x, int k)
  _(requires cl(x) && x != nil)
  _(ensures cl(x))
  _(ensures ckeys(x) == (old(ckeys(x)) union singleton(k)))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->key = k;
  n->next = x->next;
  x->next = n;
}
