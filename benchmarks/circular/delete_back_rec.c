// Circular list delete-back: walk to the next-to-last node and free
// the node that closes the cycle.
#include "../include/circular.h"

void cl_delete_back_rec(struct node *cur, struct node *head)
  _(requires lseg(cur, head) && cur != nil && cur != head)
  _(requires cur->next != head)
  _(ensures lseg(cur, head))
  _(ensures lseg_keys(cur, head) subset old(lseg_keys(cur, head)))
{
  struct node *t = cur->next;
  struct node *u = t->next;
  if (u == head) {
    cur->next = head;
    free(t);
    return;
  }
  cl_delete_back_rec(t, head);
}

void delete_back(struct node *x)
  _(requires cl(x) && x != nil && x->next != x)
  _(ensures cl(x))
  _(ensures ckeys(x) subset old(ckeys(x)))
{
  struct node *t = x->next;
  if (t->next == x) {
    x->next = x;
    free(t);
    return;
  }
  cl_delete_back_rec(t, x);
}
