// Circular list delete-front: unlink and free the node after the head.
#include "../include/circular.h"

void delete_front(struct node *x)
  _(requires cl(x) && x != nil && x->next != x)
  _(ensures cl(x))
  _(ensures ckeys(x) subset old(ckeys(x)))
{
  struct node *t = x->next;
  struct node *u = t->next;
  x->next = u;
  free(t);
}
