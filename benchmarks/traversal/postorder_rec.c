// Collect the tree's keys into a list (postorder visit order).
#include "../include/tree.h"

struct node *postorder_rec(struct tree *t, struct node *acc)
  _(requires tr(t) * list(acc))
  _(ensures tr(t) * list(result))
  _(ensures trkeys(t) == old(trkeys(t)))
  _(ensures keys(result) == (old(trkeys(t)) union old(keys(acc))))
{
  if (t == NULL)
    return acc;
  struct node *a1 = postorder_rec(t->l, acc);
  struct node *a2 = postorder_rec(t->r, a1);
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->key = t->key;
  n->next = a2;
  return n;
}
