// Destructively flatten a tree into a list (inorder), freeing nodes.
#include "../include/tree.h"

struct node *inorder_tree_to_list_rec(struct tree *t, struct node *acc)
  _(requires tr(t) * list(acc))
  _(ensures list(result))
  _(ensures keys(result) == (old(trkeys(t)) union old(keys(acc))))
{
  if (t == NULL)
    return acc;
  struct node *r1 = inorder_tree_to_list_rec(t->r, acc);
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->key = t->key;
  n->next = r1;
  struct node *r2 = inorder_tree_to_list_rec(t->l, n);
  free(t);
  return r2;
}
