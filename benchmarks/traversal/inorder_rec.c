// Collect the tree's keys into a list (inorder visit order).
#include "../include/tree.h"

struct node *inorder_rec(struct tree *t, struct node *acc)
  _(requires tr(t) * list(acc))
  _(ensures tr(t) * list(result))
  _(ensures trkeys(t) == old(trkeys(t)))
  _(ensures keys(result) == (old(trkeys(t)) union old(keys(acc))))
{
  if (t == NULL)
    return acc;
  struct node *a1 = inorder_rec(t->l, acc);
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->key = t->key;
  n->next = a1;
  struct node *a2 = inorder_rec(t->r, n);
  return a2;
}
