// Collect the tree's keys into a list (preorder visit order).
#include "../include/tree.h"

struct node *preorder_rec(struct tree *t, struct node *acc)
  _(requires tr(t) * list(acc))
  _(ensures tr(t) * list(result))
  _(ensures trkeys(t) == old(trkeys(t)))
  _(ensures keys(result) == (old(trkeys(t)) union old(keys(acc))))
{
  if (t == NULL)
    return acc;
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->key = t->key;
  n->next = acc;
  struct node *a1 = preorder_rec(t->l, n);
  struct node *a2 = preorder_rec(t->r, a1);
  return a2;
}
