// g_slist_copy: fresh copy sharing no cells with the source.
#include "../include/sll.h"

struct node *g_slist_copy(struct node *x)
  _(requires list(x))
  _(ensures list(x) * list(result))
  _(ensures keys(x) == old(keys(x)))
  _(ensures keys(result) == old(keys(x)))
{
  if (x == NULL)
    return NULL;
  struct node *c = (struct node *) malloc(sizeof(struct node));
  c->key = x->key;
  struct node *rest = g_slist_copy(x->next);
  c->next = rest;
  return c;
}
