// g_slist_remove: unlink and free the first node holding k.
#include "../include/sll.h"

struct node *g_slist_remove(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) subset old(keys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->key == k) {
    struct node *t = x->next;
    free(x);
    return t;
  }
  struct node *t2 = g_slist_remove(x->next, k);
  x->next = t2;
  return x;
}
