// g_slist_insert: insert at a given position (clamped to the tail).
#include "../include/sll.h"

struct node *g_slist_insert_at_pos(struct node *x, int pos, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  if (x == NULL || pos <= 0) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->next = x;
    n->key = k;
    return n;
  }
  struct node *t = g_slist_insert_at_pos(x->next, pos - 1, k);
  x->next = t;
  return x;
}
