// g_slist_delete_link: unlink and free a given node.
#include "../include/sll.h"

struct node *g_slist_delete_link(struct node *x, struct node *link)
  _(requires (lseg(x, link) * (link |->)) * list(link->next))
  _(ensures list(result))
{
  if (x == link) {
    struct node *r = link->next;
    free(link);
    return r;
  }
  struct node *t = g_slist_delete_link(x->next, link);
  x->next = t;
  return x;
}
