// g_slist_remove_link: unlink a given node (kept, self-linked to nil).
#include "../include/sll.h"

struct node *g_slist_remove_link(struct node *x, struct node *link)
  _(requires (lseg(x, link) * (link |->)) * list(link->next))
  _(ensures list(result) * (link |-> && link->next == nil))
{
  if (x == link) {
    struct node *r = link->next;
    link->next = NULL;
    return r;
  }
  struct node *t = g_slist_remove_link(x->next, link);
  x->next = t;
  return x;
}
