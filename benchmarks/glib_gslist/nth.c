// g_slist_nth: the n-th node (NULL past the end).
#include "../include/sll.h"

struct node *g_slist_nth(struct node *x, int n)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
  _(ensures result == nil || result in heaplet list(x))
{
  if (x == NULL)
    return NULL;
  if (n <= 0)
    return x;
  return g_slist_nth(x->next, n - 1);
}
