// g_slist_find: return the first node holding k, or NULL.
#include "../include/sll.h"

struct node *g_slist_find(struct node *x, int k)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
  _(ensures (result == nil && !(k in keys(x))) ||
            (result != nil && result->key == k && k in keys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->key == k)
    return x;
  return g_slist_find(x->next, k);
}
