// g_slist_length.
#include "../include/sll.h"

int g_slist_length(struct node *x)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
  _(ensures result >= 0)
{
  if (x == NULL)
    return 0;
  int n = g_slist_length(x->next);
  return n + 1;
}
