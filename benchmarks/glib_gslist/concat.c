// g_slist_concat: destructive append of two lists.
#include "../include/sll.h"

struct node *g_slist_concat(struct node *x, struct node *y)
  _(requires list(x) * list(y))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  struct node *t = g_slist_concat(x->next, y);
  x->next = t;
  return x;
}
