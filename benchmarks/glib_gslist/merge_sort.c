// g_slist_sort: top-down merge sort with alternating split.
#include "../include/sorted.h"

struct node *split_alt(struct node *x)
  _(requires list(x))
  _(ensures list(x) * list(result))
  _(ensures old(keys(x)) == (keys(x) union keys(result)))
{
  if (x == NULL)
    return NULL;
  struct node *second = x->next;
  if (second == NULL)
    return NULL;
  x->next = second->next;
  struct node *rest = split_alt(x->next);
  second->next = rest;
  return second;
}

struct node *ms_merge(struct node *x, struct node *y)
  _(requires slist(x) * slist(y))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  if (y == NULL)
    return x;
  if (x->key <= y->key) {
    struct node *t = ms_merge(x->next, y);
    x->next = t;
    return x;
  }
  struct node *t2 = ms_merge(x, y->next);
  y->next = t2;
  return y;
}

struct node *merge_sort(struct node *x)
  _(requires list(x))
  _(ensures slist(result))
  _(ensures keys(result) == old(keys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->next == NULL)
    return x;
  struct node *half = split_alt(x);
  struct node *a = merge_sort(x);
  struct node *b = merge_sort(half);
  return ms_merge(a, b);
}
