// g_slist_insert_before: insert k before the first node holding v.
#include "../include/sll.h"

struct node *g_slist_insert_before(struct node *x, int v, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  if (x == NULL || x->key == v) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->next = x;
    n->key = k;
    return n;
  }
  struct node *t = g_slist_insert_before(x->next, v, k);
  x->next = t;
  return x;
}
