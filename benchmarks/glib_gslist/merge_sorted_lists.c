// g_slist_merge: merge two sorted lists.
#include "../include/sorted.h"

struct node *merge_sorted_lists(struct node *x, struct node *y)
  _(requires slist(x) * slist(y))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  if (y == NULL)
    return x;
  if (x->key <= y->key) {
    struct node *t = merge_sorted_lists(x->next, y);
    x->next = t;
    return x;
  }
  struct node *t2 = merge_sorted_lists(x, y->next);
  y->next = t2;
  return y;
}
