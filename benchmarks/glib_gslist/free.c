// g_slist_free: dispose the whole list.
#include "../include/sll.h"

void g_slist_free(struct node *x)
  _(requires list(x))
  _(ensures emp)
{
  if (x == NULL)
    return;
  struct node *t = x->next;
  free(x);
  g_slist_free(t);
}
