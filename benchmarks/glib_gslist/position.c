// g_slist_position: index of a given node (-1 if absent).
#include "../include/sll.h"

int g_slist_position(struct node *x, struct node *link)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
  _(ensures result >= 0 - 1)
{
  if (x == NULL)
    return 0 - 1;
  if (x == link)
    return 0;
  int p = g_slist_position(x->next, link);
  if (p == 0 - 1)
    return 0 - 1;
  return p + 1;
}
