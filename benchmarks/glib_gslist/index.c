// g_slist_index: index of the first occurrence of k (-1 if absent).
#include "../include/sll.h"

int g_slist_index(struct node *x, int k)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
  _(ensures (result >= 0 && k in keys(x)) ||
            (result == 0 - 1 && !(k in keys(x))))
{
  if (x == NULL)
    return 0 - 1;
  if (x->key == k)
    return 0;
  int p = g_slist_index(x->next, k);
  if (p == 0 - 1)
    return 0 - 1;
  return p + 1;
}
