// g_slist_prepend.
#include "../include/sll.h"

struct node *g_slist_prepend(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = x;
  n->key = k;
  return n;
}
