// g_slist_remove_all: unlink and free every node holding k.
#include "../include/sll.h"

struct node *g_slist_remove_all(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) setminus singleton(k)))
{
  if (x == NULL)
    return NULL;
  struct node *t = g_slist_remove_all(x->next, k);
  if (x->key == k) {
    free(x);
    return t;
  }
  x->next = t;
  return x;
}
