// g_slist_nth_data: the n-th key (0 past the end).
#include "../include/sll.h"

int g_slist_nth_data(struct node *x, int n)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
  _(ensures result == 0 || result in keys(x))
{
  if (x == NULL)
    return 0;
  if (n <= 0) {
    int k = x->key;
    if (k == 0)
      return 0;
    return k;
  }
  return g_slist_nth_data(x->next, n - 1);
}
