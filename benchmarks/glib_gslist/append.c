// g_slist_append: add one key at the tail.
#include "../include/sll.h"

struct node *g_slist_append(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  if (x == NULL) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->next = NULL;
    n->key = k;
    return n;
  }
  struct node *t = g_slist_append(x->next, k);
  x->next = t;
  return x;
}
