// g_slist_last: return the final node.
#include "../include/sll.h"

struct node *g_slist_last(struct node *x)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
  _(ensures (x == nil && result == nil) ||
            (x != nil && result != nil && result->next == nil))
{
  if (x == NULL)
    return NULL;
  if (x->next == NULL)
    return x;
  return g_slist_last(x->next);
}
