// SLL insert-back (recursive): append a single key at the tail.
#include "../include/sll.h"

struct node *insert_back_rec(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  if (x == NULL) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->next = NULL;
    n->key = k;
    return n;
  }
  struct node *t = insert_back_rec(x->next, k);
  x->next = t;
  return x;
}
