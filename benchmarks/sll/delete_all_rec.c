// SLL delete-all (recursive): removes and frees every node with key k.
#include "../include/sll.h"

struct node *delete_all_rec(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) setminus singleton(k)))
{
  if (x == NULL)
    return NULL;
  struct node *t = delete_all_rec(x->next, k);
  if (x->key == k) {
    free(x);
    return t;
  }
  x->next = t;
  return x;
}
