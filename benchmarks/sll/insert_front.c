// SLL insert-front: allocate a node and link it before the head.
#include "../include/sll.h"

struct node *insert_front(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = x;
  n->key = k;
  return n;
}
