// SLL append (recursive): destructively appends list y after list x.
#include "../include/sll.h"

struct node *append_rec(struct node *x, struct node *y)
  _(requires list(x) * list(y))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  struct node *t = append_rec(x->next, y);
  x->next = t;
  return x;
}
