// SLL copy (recursive): builds a fresh list with the same keys.
#include "../include/sll.h"

struct node *copy_rec(struct node *x)
  _(requires list(x))
  _(ensures list(x) * list(result))
  _(ensures keys(x) == old(keys(x)))
  _(ensures keys(result) == old(keys(x)))
{
  if (x == NULL)
    return NULL;
  struct node *c = (struct node *) malloc(sizeof(struct node));
  c->key = x->key;
  struct node *rest = copy_rec(x->next);
  c->next = rest;
  return c;
}
