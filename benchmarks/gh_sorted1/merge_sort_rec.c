// GRASShopper merge_sort_rec.
#include "../include/sorted.h"

struct node *msr_split(struct node *x)
  _(requires list(x))
  _(ensures list(x) * list(result))
  _(ensures old(keys(x)) == (keys(x) union keys(result)))
{
  if (x == NULL)
    return NULL;
  struct node *second = x->next;
  if (second == NULL)
    return NULL;
  x->next = second->next;
  struct node *rest = msr_split(x->next);
  second->next = rest;
  return second;
}

struct node *msr_merge(struct node *x, struct node *y)
  _(requires slist(x) * slist(y))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  if (y == NULL)
    return x;
  if (x->key <= y->key) {
    struct node *t = msr_merge(x->next, y);
    x->next = t;
    return x;
  }
  struct node *t2 = msr_merge(x, y->next);
  y->next = t2;
  return y;
}

struct node *merge_sort_rec(struct node *x)
  _(requires list(x))
  _(ensures slist(result))
  _(ensures keys(result) == old(keys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->next == NULL)
    return x;
  struct node *half = msr_split(x);
  struct node *a = merge_sort_rec(x);
  struct node *b = merge_sort_rec(half);
  return msr_merge(a, b);
}
