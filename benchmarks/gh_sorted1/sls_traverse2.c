// GRASShopper sls_traverse2 (recursive).
#include "../include/sorted.h"

void sls_traverse2(struct node *x)
  _(requires slist(x))
  _(ensures slist(x) && keys(x) == old(keys(x)))
{
  if (x == NULL)
    return;
  sls_traverse2(x->next);
}
