// GRASShopper sls_traverse1.
#include "../include/sorted.h"

void sls_traverse1(struct node *x)
  _(requires slist(x))
  _(ensures slist(x) && keys(x) == old(keys(x)))
{
  struct node *cur = x;
  while (cur != NULL)
    _(invariant (slseg(x, cur) * slist(cur)))
    _(invariant keys(x) == (lseg_keys(x, cur) union keys(cur)))
    _(invariant lseg_keys(x, cur) <= keys(cur))
  {
    cur = cur->next;
  }
}
