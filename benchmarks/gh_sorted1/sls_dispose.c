// GRASShopper sls_dispose.
#include "../include/sorted.h"

void sls_dispose(struct node *x)
  _(requires slist(x))
  _(ensures emp)
{
  struct node *cur = x;
  while (cur != NULL)
    _(invariant slist(cur))
  {
    struct node *t = cur->next;
    free(cur);
    cur = t;
  }
}
