// GRASShopper sls_concat: concatenate ordered sorted lists.
#include "../include/sorted.h"

struct node *sls_concat(struct node *x, struct node *y)
  _(requires slist(x) * slist(y))
  _(requires keys(x) <= keys(y))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  struct node *t = sls_concat(x->next, y);
  x->next = t;
  return x;
}
