// SV-COMP: unlink the entry after the head.
#include "../include/dll.h"

void list_del(struct dnode *h)
  _(requires dll(h, nil) && h != nil && h->next != nil)
  _(ensures dll(h, nil))
  _(ensures dkeys(h) subset old(dkeys(h)))
{
  struct dnode *t = h->next;
  struct dnode *u = t->next;
  h->next = u;
  if (u != NULL) {
    u->prev = h;
  }
  free(t);
}
