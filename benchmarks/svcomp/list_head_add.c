// SV-COMP: add an entry right after the head.
#include "../include/dll.h"

void list_head_add(struct dnode *h, int k)
  _(requires dll(h, nil) && h != nil)
  _(ensures dll(h, nil))
  _(ensures dkeys(h) == (old(dkeys(h)) union singleton(k)))
{
  struct dnode *n = (struct dnode *) malloc(sizeof(struct dnode));
  struct dnode *t = h->next;
  n->next = t;
  n->prev = h;
  n->key = k;
  h->next = n;
  if (t != NULL) {
    t->prev = n;
  }
}
