// SV-COMP: build a slave list of n nodes (loop).
#include "../include/dll.h"

struct dnode *dll_create_slave(int n)
  _(ensures dll(result, nil))
{
  struct dnode *x = NULL;
  int i = 0;
  while (i < n)
    _(invariant dll(x, nil))
  {
    struct dnode *s = (struct dnode *) malloc(sizeof(struct dnode));
    s->next = x;
    s->prev = NULL;
    s->key = i;
    if (x != NULL) {
      x->prev = s;
    }
    x = s;
    i = i + 1;
  }
  return x;
}
