// SV-COMP: allocate one slave node (allocation cannot fail here).
#include "../include/dll.h"

struct dnode *alloc_or_die_slave()
  _(ensures (result |->) && result->next == nil && result->prev == nil)
{
  struct dnode *n = (struct dnode *) malloc(sizeof(struct dnode));
  n->next = NULL;
  n->prev = NULL;
  n->key = 0;
  return n;
}
