// SV-COMP: destroy the slave list.
#include "../include/dll.h"

void dll_destroy_slave(struct dnode *x, struct dnode *p)
  _(requires dll(x, p))
  _(ensures emp)
{
  if (x == NULL)
    return;
  struct dnode *t = x->next;
  free(x);
  dll_destroy_slave(t, x);
}
