// SV-COMP: push a fresh slave onto the doubly-linked slave list.
#include "../include/dll.h"

struct dnode *dll_insert_slave(struct dnode *x, int k)
  _(requires dll(x, nil))
  _(ensures dll(result, nil))
  _(ensures dkeys(result) == (old(dkeys(x)) union singleton(k)))
{
  struct dnode *n = (struct dnode *) malloc(sizeof(struct dnode));
  n->next = x;
  n->prev = NULL;
  n->key = k;
  if (x != NULL) {
    x->prev = n;
  }
  return n;
}
