// SV-COMP: initialize a list head.
#include "../include/dll.h"

void list_head_init(struct dnode *h)
  _(requires h |->)
  _(ensures dll(h, nil) && h->next == nil)
{
  h->next = NULL;
  h->prev = NULL;
}
