// Sorted list delete-all (recursive): removes every node with key k.
#include "../include/sorted.h"

struct node *delete_all_rec(struct node *x, int k)
  _(requires slist(x))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) setminus singleton(k)))
{
  if (x == NULL)
    return NULL;
  struct node *t = delete_all_rec(x->next, k);
  if (x->key == k) {
    free(x);
    return t;
  }
  x->next = t;
  return x;
}
