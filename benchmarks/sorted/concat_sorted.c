// Concatenate two sorted lists whose key ranges are ordered.
#include "../include/sorted.h"

struct node *concat_sorted(struct node *x, struct node *y)
  _(requires slist(x) * slist(y))
  _(requires keys(x) <= keys(y))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  struct node *t = concat_sorted(x->next, y);
  x->next = t;
  return x;
}
