// Return the last (maximal) node of a non-empty sorted list.
#include "../include/sorted.h"

struct node *find_last(struct node *x)
  _(requires slist(x) && x != nil)
  _(ensures slist(x) && keys(x) == old(keys(x)))
  _(ensures result != nil && keys(x) <= result->key)
  _(ensures result->key in keys(x))
{
  struct node *cur = x;
  struct node *nx = cur->next;
  while (nx != NULL)
    _(invariant slseg(x, cur) * (slist(cur) && cur != nil))
    _(invariant nx == cur->next)
    _(invariant lseg_keys(x, cur) <= cur->key)
    _(invariant keys(x) == (lseg_keys(x, cur) union keys(cur)))
  {
    cur = nx;
    nx = cur->next;
  }
  return cur;
}
