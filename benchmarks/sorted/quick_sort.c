// Quicksort on lists: partition (by copying around the head pivot),
// sort both sides, join. The partition key-sets are themselves
// recursive DRYAD definitions related to keys() by axioms.
#include "../include/sorted.h"

_(dryad
  function intset keys_lt(struct node *x, int p) =
      (x == nil) ? emptyset
                 : ((x->key < p)
                        ? (singleton(x->key) union keys_lt(x->next, p))
                        : keys_lt(x->next, p));

  function intset keys_ge(struct node *x, int p) =
      (x == nil) ? emptyset
                 : ((x->key >= p)
                        ? (singleton(x->key) union keys_ge(x->next, p))
                        : keys_ge(x->next, p));

  axiom (struct node *x, int p)
      true ==> heaplet keys_lt(x, p) == heaplet list(x) &&
               heaplet keys_ge(x, p) == heaplet list(x);
  axiom (struct node *x, int p)
      true ==> keys_lt(x, p) < p &&
               p <= keys_ge(x, p) &&
               keys(x) == (keys_lt(x, p) union keys_ge(x, p));
)

struct node *copy_lt(struct node *x, int p)
  _(requires list(x))
  _(ensures list(x) * list(result))
  _(ensures keys(x) == old(keys(x)))
  _(ensures keys(result) == old(keys_lt(x, p)))
{
  if (x == NULL)
    return NULL;
  struct node *rest = copy_lt(x->next, p);
  if (x->key < p) {
    struct node *c = (struct node *) malloc(sizeof(struct node));
    c->key = x->key;
    c->next = rest;
    return c;
  }
  return rest;
}

struct node *copy_ge(struct node *x, int p)
  _(requires list(x))
  _(ensures list(x) * list(result))
  _(ensures keys(x) == old(keys(x)))
  _(ensures keys(result) == old(keys_ge(x, p)))
{
  if (x == NULL)
    return NULL;
  struct node *rest = copy_ge(x->next, p);
  if (x->key >= p) {
    struct node *c = (struct node *) malloc(sizeof(struct node));
    c->key = x->key;
    c->next = rest;
    return c;
  }
  return rest;
}

void dispose(struct node *x)
  _(requires list(x))
  _(ensures emp)
{
  if (x == NULL)
    return;
  struct node *t = x->next;
  free(x);
  dispose(t);
}

struct node *qs_concat(struct node *x, struct node *y)
  _(requires slist(x) * slist(y))
  _(requires keys(x) <= keys(y))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  struct node *t = qs_concat(x->next, y);
  x->next = t;
  return x;
}

struct node *quick_sort(struct node *x)
  _(requires list(x))
  _(ensures slist(result))
  _(ensures keys(result) == old(keys(x)))
{
  if (x == NULL)
    return NULL;
  int p = x->key;
  struct node *rest = x->next;
  struct node *lo = copy_lt(rest, p);
  struct node *hi = copy_ge(rest, p);
  dispose(rest);
  struct node *slo = quick_sort(lo);
  struct node *shi = quick_sort(hi);
  x->next = shi;
  struct node *right = x;
  struct node *out = qs_concat(slo, right);
  return out;
}
