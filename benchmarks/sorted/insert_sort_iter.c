// Sorted insertion (iterative): walk to the insertion point, splice.
#include "../include/sorted.h"

struct node *insert_sort_iter(struct node *x, int k)
  _(requires slist(x))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  if (x == NULL || k <= x->key) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->next = x;
    n->key = k;
    return n;
  }
  struct node *prev = x;
  struct node *cur = x->next;
  while (cur != NULL && cur->key < k)
    _(invariant slseg(x, prev) *
        ((prev |-> && prev->next == cur && prev->key < k) *
         (slist(cur) && prev->key <= keys(cur))))
    _(invariant lseg_keys(x, prev) <= prev->key)
    _(invariant keys(x) ==
        ((lseg_keys(x, prev) union singleton(prev->key)) union keys(cur)))
  {
    prev = cur;
    cur = cur->next;
  }
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = cur;
  n->key = k;
  prev->next = n;
  return x;
}
