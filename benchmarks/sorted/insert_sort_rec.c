// Sorted list insertion (recursive): keeps the list sorted.
#include "../include/sorted.h"

struct node *insert_sort_rec(struct node *x, int k)
  _(requires slist(x))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  if (x == NULL) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->next = NULL;
    n->key = k;
    return n;
  }
  if (k <= x->key) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->next = x;
    n->key = k;
    return n;
  }
  struct node *t = insert_sort_rec(x->next, k);
  x->next = t;
  return x;
}
