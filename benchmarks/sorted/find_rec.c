// Sorted list membership (recursive): early exit on larger keys.
#include "../include/sorted.h"

int find_rec(struct node *x, int k)
  _(requires slist(x))
  _(ensures slist(x) && keys(x) == old(keys(x)))
  _(ensures (result == 1 && k in keys(x)) ||
            (result == 0 && !(k in keys(x))))
{
  if (x == NULL)
    return 0;
  if (x->key == k)
    return 1;
  if (k < x->key)
    return 0;
  return find_rec(x->next, k);
}
