// Allocate and link a fresh user-space region (with backing file).
#include "../include/memreg.h"

struct memreg *create_user_space_region(struct memreg *x, int s, int e,
                                        int fid)
  _(requires mrlist(x) && s <= e)
  _(ensures mrlist(result))
  _(ensures starts(result) == (old(starts(x)) union singleton(s)))
{
  struct memreg *r = (struct memreg *) malloc(sizeof(struct memreg));
  struct file *f = (struct file *) malloc(sizeof(struct file));
  f->id = fid;
  r->bf = f;
  r->start = s;
  r->end = e;
  r->next = x;
  return r;
}
