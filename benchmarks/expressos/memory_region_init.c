// Initialize a region object over a raw cell.
#include "../include/memreg.h"

void memory_region_init(struct memreg *r, int s, int e)
  _(requires (r |->) * file1(r->bf))
  _(requires s <= e)
  _(ensures mrlist(r))
  _(ensures r->start == s && r->end == e)
{
  r->start = s;
  r->end = e;
  r->next = NULL;
}
