// Split the head region at m into [s, m) and [m, e).
#include "../include/memreg.h"

void split_memory_region(struct memreg *x, int m)
  _(requires mrlist(x) && x != nil)
  _(requires x->start <= m && m <= x->end)
  _(ensures mrlist(x))
  _(ensures starts(x) == (old(starts(x)) union singleton(m)))
{
  struct memreg *r = (struct memreg *) malloc(sizeof(struct memreg));
  r->bf = NULL;
  r->start = m;
  r->end = x->end;
  r->next = x->next;
  x->end = m;
  x->next = r;
}
