// Treap insertion (recursive) with rotations to restore the heap
// property along the insertion path. The last ensures clause is the
// strengthened induction hypothesis: if the fresh node bubbled up to
// the subtree root, its children carry only pre-existing priorities.
#include "../include/treap.h"

struct tnode *treap_insert_rec(struct tnode *x, int k, int p)
  _(requires treap(x) && !(k in tkeys(x)) && !(p in tprios(x)))
  _(ensures treap(result) && result != nil)
  _(ensures tkeys(result) == (old(tkeys(x)) union singleton(k)))
  _(ensures tprios(result) == (old(tprios(x)) union singleton(p)))
  _(ensures (result->prio == p &&
             ((tprios(result->l) union tprios(result->r)) subset
              old(tprios(x)))) ||
            result->prio != p)
{
  if (x == NULL) {
    struct tnode *leaf = (struct tnode *) malloc(sizeof(struct tnode));
    leaf->key = k;
    leaf->prio = p;
    leaf->l = NULL;
    leaf->r = NULL;
    return leaf;
  }
  if (k < x->key) {
    struct tnode *t = treap_insert_rec(x->l, k, p);
    if (t->prio > x->prio) {
      struct tnode *m = t->r;
      x->l = m;
      t->r = x;
      return t;
    }
    x->l = t;
    return x;
  }
  struct tnode *t2 = treap_insert_rec(x->r, k, p);
  if (t2->prio > x->prio) {
    struct tnode *m2 = t2->l;
    x->r = m2;
    t2->l = x;
    return t2;
  }
  x->r = t2;
  return x;
}
