// Treap delete (recursive): removes k if present, re-merging subtrees.
#include "../include/treap.h"

struct tnode *treap_merge(struct tnode *l, struct tnode *r)
  _(requires (treap(l) * treap(r)) && tkeys(l) < tkeys(r))
  _(ensures treap(result))
  _(ensures tkeys(result) == (old(tkeys(l)) union old(tkeys(r))))
  _(ensures tprios(result) == (old(tprios(l)) union old(tprios(r))))
{
  if (l == NULL)
    return r;
  if (r == NULL)
    return l;
  if (l->prio >= r->prio) {
    struct tnode *t = treap_merge(l->r, r);
    l->r = t;
    return l;
  }
  struct tnode *t2 = treap_merge(l, r->l);
  r->l = t2;
  return r;
}

struct tnode *treap_delete_rec(struct tnode *x, int k)
  _(requires treap(x))
  _(ensures treap(result))
  _(ensures tkeys(result) == (old(tkeys(x)) setminus singleton(k)))
  _(ensures tprios(result) subset old(tprios(x)))
{
  if (x == NULL)
    return NULL;
  if (k < x->key) {
    struct tnode *tl = treap_delete_rec(x->l, k);
    x->l = tl;
    return x;
  }
  if (k > x->key) {
    struct tnode *tr = treap_delete_rec(x->r, k);
    x->r = tr;
    return x;
  }
  struct tnode *lc = x->l;
  struct tnode *rc = x->r;
  struct tnode *m = treap_merge(lc, rc);
  free(x);
  return m;
}
