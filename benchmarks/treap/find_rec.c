// Treap membership test (recursive) — searches by key only.
#include "../include/treap.h"

int treap_find_rec(struct tnode *x, int k)
  _(requires treap(x))
  _(ensures treap(x) && tkeys(x) == old(tkeys(x)))
  _(ensures tprios(x) == old(tprios(x)))
  _(ensures (result == 1 && k in tkeys(x)) ||
            (result == 0 && !(k in tkeys(x))))
{
  if (x == NULL)
    return 0;
  if (x->key == k)
    return 1;
  if (k < x->key)
    return treap_find_rec(x->l, k);
  return treap_find_rec(x->r, k);
}
