// Treap remove-root via priority-ordered merge.
#include "../include/treap.h"

struct tnode *treap_merge(struct tnode *l, struct tnode *r)
  _(requires (treap(l) * treap(r)) && tkeys(l) < tkeys(r))
  _(ensures treap(result))
  _(ensures tkeys(result) == (old(tkeys(l)) union old(tkeys(r))))
  _(ensures tprios(result) == (old(tprios(l)) union old(tprios(r))))
{
  if (l == NULL)
    return r;
  if (r == NULL)
    return l;
  if (l->prio >= r->prio) {
    struct tnode *t = treap_merge(l->r, r);
    l->r = t;
    return l;
  }
  struct tnode *t2 = treap_merge(l, r->l);
  r->l = t2;
  return r;
}

struct tnode *treap_remove_root_rec(struct tnode *x)
  _(requires treap(x) && x != nil)
  _(ensures treap(result))
  _(ensures tkeys(result) ==
            (old(tkeys(x)) setminus singleton(old(x->key))))
{
  struct tnode *lc = x->l;
  struct tnode *rc = x->r;
  struct tnode *m = treap_merge(lc, rc);
  free(x);
  return m;
}
