// GRASShopper sls_pairwise_sum: zip two lists with +.
#include "../include/sorted.h"

struct node *sls_pairwise_sum(struct node *x, struct node *y)
  _(requires list(x) * list(y))
  _(ensures (list(x) * list(y)) * list(result))
  _(ensures keys(x) == old(keys(x)) && keys(y) == old(keys(y)))
{
  if (x == NULL || y == NULL)
    return NULL;
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->key = x->key + y->key;
  struct node *rest = sls_pairwise_sum(x->next, y->next);
  n->next = rest;
  return n;
}
