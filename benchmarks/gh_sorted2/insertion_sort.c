// GRASShopper insertion_sort: iterative, re-inserting each node.
#include "../include/sorted.h"

struct node *ins_node(struct node *s, struct node *n)
  _(requires slist(s) * (n |->))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(s)) union singleton(old(n->key))))
{
  if (s == NULL || n->key <= s->key) {
    n->next = s;
    return n;
  }
  struct node *t = ins_node(s->next, n);
  s->next = t;
  return s;
}

struct node *insertion_sort(struct node *x)
  _(requires list(x))
  _(ensures slist(result))
  _(ensures keys(result) == old(keys(x)))
{
  struct node *sorted = NULL;
  struct node *cur = x;
  while (cur != NULL)
    _(invariant list(cur) * slist(sorted))
    _(invariant (keys(cur) union keys(sorted)) == old(keys(x)))
  {
    struct node *t = cur->next;
    struct node *s2 = ins_node(sorted, cur);
    sorted = s2;
    cur = t;
  }
  return sorted;
}
