// GRASShopper sls_copy: a copy of a sorted list is sorted.
#include "../include/sorted.h"

struct node *sls_copy(struct node *x)
  _(requires slist(x))
  _(ensures slist(x) * slist(result))
  _(ensures keys(x) == old(keys(x)) && keys(result) == old(keys(x)))
{
  if (x == NULL)
    return NULL;
  struct node *c = (struct node *) malloc(sizeof(struct node));
  c->key = x->key;
  struct node *rest = sls_copy(x->next);
  c->next = rest;
  return c;
}
