// GRASShopper sls_merge.
#include "../include/sorted.h"

struct node *sls_merge(struct node *x, struct node *y)
  _(requires slist(x) * slist(y))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union old(keys(y))))
{
  if (x == NULL)
    return y;
  if (y == NULL)
    return x;
  if (x->key <= y->key) {
    struct node *t = sls_merge(x->next, y);
    x->next = t;
    return x;
  }
  struct node *t2 = sls_merge(x, y->next);
  y->next = t2;
  return y;
}
