// GRASShopper sls_remove: drop the first occurrence, keep sorted.
#include "../include/sorted.h"

struct node *sls_remove(struct node *x, int v)
  _(requires slist(x))
  _(ensures slist(result))
  _(ensures keys(result) subset old(keys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->key == v) {
    struct node *t = x->next;
    free(x);
    return t;
  }
  struct node *t2 = sls_remove(x->next, v);
  x->next = t2;
  return x;
}
