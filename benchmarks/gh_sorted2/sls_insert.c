// GRASShopper sls_insert.
#include "../include/sorted.h"

struct node *sls_insert(struct node *x, int k)
  _(requires slist(x))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  if (x == NULL || k <= x->key) {
    struct node *n = (struct node *) malloc(sizeof(struct node));
    n->next = x;
    n->key = k;
    return n;
  }
  struct node *t = sls_insert(x->next, k);
  x->next = t;
  return x;
}
