// GRASShopper SLL_insert: insert a fresh node into a sorted list.
#include "../include/sorted.h"

struct node *SLL_insert(struct node *x, struct node *n)
  _(requires slist(x) * (n |->))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(old(n->key))))
{
  if (x == NULL || n->key <= x->key) {
    n->next = x;
    return n;
  }
  struct node *t = SLL_insert(x->next, n);
  x->next = t;
  return x;
}
