// GRASShopper merge_sort_split: detach alternating nodes.
#include "../include/sorted.h"

struct node *merge_sort_split(struct node *x)
  _(requires list(x))
  _(ensures list(x) * list(result))
  _(ensures old(keys(x)) == (keys(x) union keys(result)))
{
  if (x == NULL)
    return NULL;
  struct node *second = x->next;
  if (second == NULL)
    return NULL;
  x->next = second->next;
  struct node *rest = merge_sort_split(x->next);
  second->next = rest;
  return second;
}
