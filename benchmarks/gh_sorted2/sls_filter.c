// GRASShopper sls_filter: drop all occurrences, keep sorted.
#include "../include/sorted.h"

struct node *sls_filter(struct node *x, int v)
  _(requires slist(x))
  _(ensures slist(result))
  _(ensures keys(result) == (old(keys(x)) setminus singleton(v)))
{
  if (x == NULL)
    return NULL;
  struct node *t = sls_filter(x->next, v);
  if (x->key == v) {
    free(x);
    return t;
  }
  x->next = t;
  return x;
}
