// GRASShopper sls_double_all: double every key into a fresh sorted
// list. Uses a derived "doubled" key-set definition and one axiom
// relating the bounds of keys and doubled keys.
#include "../include/sorted.h"

_(dryad
  function intset doubled(struct node *x) =
      (x == nil) ? emptyset
                 : (singleton(x->key + x->key) union doubled(x->next));

  axiom (struct node *x)
      true ==> heaplet doubled(x) == heaplet list(x);
  axiom (struct node *x, int k)
      k <= keys(x) ==> (k + k) <= doubled(x);
)

struct node *sls_double_all(struct node *x)
  _(requires slist(x))
  _(ensures slist(x) * slist(result))
  _(ensures keys(x) == old(keys(x)))
  _(ensures keys(result) == old(doubled(x)))
  _(ensures (x == nil && result == nil) ||
            (x != nil && result != nil &&
             result->key == (old(x->key) + old(x->key))))
{
  if (x == NULL)
    return NULL;
  struct node *c = (struct node *) malloc(sizeof(struct node));
  c->key = x->key + x->key;
  struct node *rest = sls_double_all(x->next);
  c->next = rest;
  return c;
}
