// Treap: binary search tree on keys, max-heap on priorities.

struct tnode {
  struct tnode *l;
  struct tnode *r;
  int key;
  int prio;
};

_(dryad
  function intset tkeys(struct tnode *x) =
      (x == nil)
          ? emptyset
          : ((singleton(x->key) union tkeys(x->l)) union tkeys(x->r));

  function intset tprios(struct tnode *x) =
      (x == nil)
          ? emptyset
          : ((singleton(x->prio) union tprios(x->l)) union tprios(x->r));

  predicate treap(struct tnode *x) =
      (x == nil && emp) ||
      (x |-> * (treap(x->l) && tkeys(x->l) < x->key &&
                tprios(x->l) <= x->prio)
            * (treap(x->r) && x->key < tkeys(x->r) &&
               tprios(x->r) <= x->prio));

  axiom (struct tnode *x)
      true ==> heaplet tkeys(x) == heaplet treap(x) &&
               heaplet tprios(x) == heaplet treap(x);
)
