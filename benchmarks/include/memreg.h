// ExpressOS-style process address-space regions: a list of memory
// regions, each owning a nested backing-file object — the nested
// struct case the paper contrasts against the toy language of [32].

struct file {
  int id;
};

struct memreg {
  struct memreg *next;
  struct file *bf;
  int start;
  int end;
};

_(dryad
  predicate file1(struct file *f) =
      (f == nil && emp) || f |->;

  predicate mrlist(struct memreg *x) =
      (x == nil && emp) ||
      ((x |-> && x->start <= x->end) * file1(x->bf) * mrlist(x->next));

  function intset starts(struct memreg *x) =
      (x == nil) ? emptyset
                 : (singleton(x->start) union starts(x->next));

  axiom (struct memreg *x)
      true ==> heaplet starts(x) subset heaplet mrlist(x);
)
