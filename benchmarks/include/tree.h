// Plain binary tree plus an output list, for traversal routines.

struct tree {
  struct tree *l;
  struct tree *r;
  int key;
};

struct node {
  struct node *next;
  int key;
};

_(dryad
  predicate tr(struct tree *x) =
      (x == nil && emp) || (x |-> * tr(x->l) * tr(x->r));

  function intset trkeys(struct tree *x) =
      (x == nil)
          ? emptyset
          : ((singleton(x->key) union trkeys(x->l)) union trkeys(x->r));

  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));

  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));

  axiom (struct tree *x)
      true ==> heaplet trkeys(x) == heaplet tr(x);
  axiom (struct node *x)
      true ==> heaplet keys(x) == heaplet list(x);
)
