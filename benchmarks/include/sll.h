// Singly-linked list: DRYAD definitions and data-structure axioms.
//
// list(x)        - x heads a nil-terminated acyclic list.
// keys(x)        - the set of keys stored in list(x).
// lseg(x, y)     - a list segment from x up to (excluding) y.
// lseg_keys(x,y) - the keys stored in the segment.
//
// The axioms relate segments to full lists (composition) and extend a
// segment by one node at its tail (reverse unfolding), as in Section
// 4.3 of the paper.

struct node {
  struct node *next;
  int key;
};

_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));

  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));

  predicate lseg(struct node *x, struct node *y) =
      (x == y && emp) || (x != y && x |-> * lseg(x->next, y));

  function intset lseg_keys(struct node *x, struct node *y) =
      (x == y) ? emptyset
               : (singleton(x->key) union lseg_keys(x->next, y));

  // The data and shape definitions traverse the same cells.
  axiom (struct node *x)
      true ==> heaplet keys(x) == heaplet list(x);
  axiom (struct node *x, struct node *y)
      true ==> heaplet lseg_keys(x, y) == heaplet lseg(x, y);

  // A segment never contains its end point.
  axiom (struct node *x, struct node *y)
      lseg(x, y) ==> !(y in heaplet lseg(x, y));

  axiom (struct node *x, struct node *y)
      lseg(x, y) && list(y) &&
      disjoint(heaplet lseg(x, y), heaplet list(y))
      ==> list(x) &&
          heaplet list(x) == (heaplet lseg(x, y) union heaplet list(y)) &&
          keys(x) == (lseg_keys(x, y) union keys(y));

  axiom (struct node *x, struct node *y, struct node *z)
      lseg(x, y) && y != nil && y->next == z && z != y &&
      !(y in heaplet lseg(x, y)) && !(z in heaplet lseg(x, y))
      ==> lseg(x, z) &&
          heaplet lseg(x, z) == (heaplet lseg(x, y) union singleton(y)) &&
          lseg_keys(x, z) == (lseg_keys(x, y) union singleton(y->key));
)
