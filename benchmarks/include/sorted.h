// Sorted singly-linked list: DRYAD definitions and axioms.
//
// slist(x)          - sorted nil-terminated list.
// slseg(x, y)       - sorted segment from x up to (excluding) y.
// keys / lseg_keys  - key sets (shared shape with plain lists).
// list(x)           - plain list (for routines that break sortedness).

struct node {
  struct node *next;
  int key;
};

_(dryad
  predicate list(struct node *x) =
      (x == nil && emp) || (x |-> * list(x->next));

  function intset keys(struct node *x) =
      (x == nil) ? emptyset : (singleton(x->key) union keys(x->next));

  predicate slist(struct node *x) =
      (x == nil && emp) ||
      (x |-> * (slist(x->next) && x->key <= keys(x->next)));

  predicate lseg(struct node *x, struct node *y) =
      (x == y && emp) || (x != y && x |-> * lseg(x->next, y));

  function intset lseg_keys(struct node *x, struct node *y) =
      (x == y) ? emptyset
               : (singleton(x->key) union lseg_keys(x->next, y));

  predicate slseg(struct node *x, struct node *y) =
      (x == y && emp) ||
      (x != y &&
       x |-> * (slseg(x->next, y) && x->key <= lseg_keys(x->next, y)));

  // Shape/data definitions share their heap domains.
  axiom (struct node *x)
      true ==> heaplet keys(x) == heaplet list(x) &&
               heaplet slist(x) == heaplet list(x);
  axiom (struct node *x, struct node *y)
      true ==> heaplet lseg_keys(x, y) == heaplet lseg(x, y) &&
               heaplet slseg(x, y) == heaplet lseg(x, y);

  // A sorted list is a list.
  axiom (struct node *x)
      slist(x) ==> list(x);
  axiom (struct node *x, struct node *y)
      slseg(x, y) ==> lseg(x, y);


  // A segment never contains its end point.
  axiom (struct node *x, struct node *y)
      lseg(x, y) ==> !(y in heaplet lseg(x, y));

  axiom (struct node *x, struct node *y)
      slseg(x, y) ==> !(y in heaplet lseg(x, y));

  // Segment composition.
  axiom (struct node *x, struct node *y)
      lseg(x, y) && list(y) &&
      disjoint(heaplet lseg(x, y), heaplet list(y))
      ==> list(x) &&
          heaplet list(x) == (heaplet lseg(x, y) union heaplet list(y)) &&
          keys(x) == (lseg_keys(x, y) union keys(y));

  // Sorted segment composition.
  axiom (struct node *x, struct node *y)
      slseg(x, y) && slist(y) &&
      disjoint(heaplet lseg(x, y), heaplet list(y)) &&
      lseg_keys(x, y) <= keys(y)
      ==> slist(x) &&
          heaplet list(x) == (heaplet lseg(x, y) union heaplet list(y)) &&
          keys(x) == (lseg_keys(x, y) union keys(y));

  // Segment extension by one tail node.
  axiom (struct node *x, struct node *y, struct node *z)
      lseg(x, y) && y != nil && y->next == z && z != y &&
      !(y in heaplet lseg(x, y)) && !(z in heaplet lseg(x, y))
      ==> lseg(x, z) &&
          heaplet lseg(x, z) == (heaplet lseg(x, y) union singleton(y)) &&
          lseg_keys(x, z) == (lseg_keys(x, y) union singleton(y->key));

  // Sorted segment extension by one tail node.
  axiom (struct node *x, struct node *y, struct node *z)
      slseg(x, y) && y != nil && y->next == z && z != y &&
      !(y in heaplet lseg(x, y)) && !(z in heaplet lseg(x, y)) &&
      lseg_keys(x, y) <= y->key
      ==> slseg(x, z) &&
          heaplet lseg(x, z) == (heaplet lseg(x, y) union singleton(y)) &&
          lseg_keys(x, z) == (lseg_keys(x, y) union singleton(y->key));
)
