// AVL tree: height-balanced binary search tree. The height field
// caches the real (recursive) height; the balance condition bounds
// sibling height difference by one.

struct anode {
  struct anode *l;
  struct anode *r;
  int key;
  int height;
};

_(dryad
  function intset akeys(struct anode *x) =
      (x == nil)
          ? emptyset
          : ((singleton(x->key) union akeys(x->l)) union akeys(x->r));

  function int rheight(struct anode *x) =
      (x == nil)
          ? 0
          : ((rheight(x->l) >= rheight(x->r)) ? (rheight(x->l) + 1)
                                              : (rheight(x->r) + 1));

  predicate avl(struct anode *x) =
      (x == nil && emp) ||
      ((x |-> && x->height == rheight(x) &&
        rheight(x->l) <= rheight(x->r) + 1 &&
        rheight(x->r) <= rheight(x->l) + 1)
       * (avl(x->l) && akeys(x->l) < x->key)
       * (avl(x->r) && x->key < akeys(x->r)));

  // A BST with cached heights but no balance requirement: the
  // intermediate shape that rebalancing repairs.
  predicate htree(struct anode *x) =
      (x == nil && emp) ||
      ((x |-> && x->height == rheight(x))
       * (htree(x->l) && akeys(x->l) < x->key)
       * (htree(x->r) && x->key < akeys(x->r)));

  axiom (struct anode *x)
      true ==> heaplet akeys(x) == heaplet avl(x) &&
               heaplet rheight(x) == heaplet avl(x) &&
               heaplet htree(x) == heaplet avl(x);

  // Balance implies the weaker shape.
  axiom (struct anode *x)
      avl(x) ==> htree(x);

  // Heights are non-negative.
  axiom (struct anode *x)
      true ==> rheight(x) >= 0;
)
