// OpenBSD-style simple queue: a header holding first/last pointers
// over a nil-terminated chain of entries.

struct qnode {
  struct qnode *next;
  int key;
};

struct queue {
  struct qnode *first;
  struct qnode *last;
};

_(dryad
  predicate lseg(struct qnode *x, struct qnode *y) =
      (x == y && emp) || (x != y && x |-> * lseg(x->next, y));

  function intset lseg_keys(struct qnode *x, struct qnode *y) =
      (x == y) ? emptyset
               : (singleton(x->key) union lseg_keys(x->next, y));

  predicate wfq(struct queue *q) =
      (q |-> && q->first == nil && q->last == nil) ||
      ((q |-> && q->last != nil) * lseg(q->first, q->last) *
       (q->last |-> && q->last->next == nil));

  function intset qkeys(struct queue *q) =
      (q->first == nil)
          ? emptyset
          : (lseg_keys(q->first, q->last) union singleton(q->last->key));

  axiom (struct qnode *x, struct qnode *y)
      true ==> heaplet lseg_keys(x, y) == heaplet lseg(x, y);
  axiom (struct qnode *x, struct qnode *y)
      lseg(x, y) ==> !(y in heaplet lseg(x, y));
  axiom (struct qnode *x, struct qnode *y, struct qnode *z)
      lseg(x, y) && y != nil && y->next == z && z != y &&
      !(y in heaplet lseg(x, y)) && !(z in heaplet lseg(x, y))
      ==> lseg(x, z) &&
          heaplet lseg(x, z) == (heaplet lseg(x, y) union singleton(y)) &&
          lseg_keys(x, z) == (lseg_keys(x, y) union singleton(y->key));
)
