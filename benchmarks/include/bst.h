// Binary search tree: DRYAD definitions and axioms (the paper's
// running example, Section 2). Keys are strictly ordered, so the tree
// stores a set without duplicates.

struct bnode {
  struct bnode *l;
  struct bnode *r;
  int key;
};

_(dryad
  function intset bkeys(struct bnode *x) =
      (x == nil)
          ? emptyset
          : ((singleton(x->key) union bkeys(x->l)) union bkeys(x->r));

  predicate bst(struct bnode *x) =
      (x == nil && emp) ||
      (x |-> * (bst(x->l) && bkeys(x->l) < x->key)
            * (bst(x->r) && x->key < bkeys(x->r)));

  axiom (struct bnode *x)
      true ==> heaplet bkeys(x) == heaplet bst(x);
)
