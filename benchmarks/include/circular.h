// Circular singly-linked list: DRYAD definitions and axioms.
//
// cl(x)     - x heads a circular list (each node's next eventually
//             returns to x); nil is the empty circular list.
// ckeys(x)  - the keys stored on the cycle.
// lseg      - acyclic segments, used to "cut" the cycle at the head.

struct node {
  struct node *next;
  int key;
};

_(dryad
  predicate lseg(struct node *x, struct node *y) =
      (x == y && emp) || (x != y && x |-> * lseg(x->next, y));

  function intset lseg_keys(struct node *x, struct node *y) =
      (x == y) ? emptyset
               : (singleton(x->key) union lseg_keys(x->next, y));

  predicate cl(struct node *x) =
      (x == nil && emp) || (x |-> * lseg(x->next, x));

  function intset ckeys(struct node *x) =
      (x == nil) ? emptyset
                 : (singleton(x->key) union lseg_keys(x->next, x));

  axiom (struct node *x, struct node *y)
      true ==> heaplet lseg_keys(x, y) == heaplet lseg(x, y);
  axiom (struct node *x)
      true ==> heaplet ckeys(x) == heaplet cl(x);

  // A segment never contains its end point.
  axiom (struct node *x, struct node *y)
      lseg(x, y) ==> !(y in heaplet lseg(x, y));

  // Segment extension by one tail node.
  axiom (struct node *x, struct node *y, struct node *z)
      lseg(x, y) && y != nil && y->next == z && z != y &&
      !(y in heaplet lseg(x, y)) && !(z in heaplet lseg(x, y))
      ==> lseg(x, z) &&
          heaplet lseg(x, z) == (heaplet lseg(x, y) union singleton(y)) &&
          lseg_keys(x, z) == (lseg_keys(x, y) union singleton(y->key));

  // Segment composition (segment + segment).
  axiom (struct node *x, struct node *y, struct node *z)
      lseg(x, y) && lseg(y, z) &&
      disjoint(heaplet lseg(x, y), heaplet lseg(y, z)) &&
      !(z in heaplet lseg(x, y))
      ==> lseg(x, z) &&
          heaplet lseg(x, z) ==
              (heaplet lseg(x, y) union heaplet lseg(y, z)) &&
          lseg_keys(x, z) == (lseg_keys(x, y) union lseg_keys(y, z));
)
