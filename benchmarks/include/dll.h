// Doubly-linked list: DRYAD definitions and axioms.
//
// dll(x, p)  - a doubly-linked list headed at x whose head's prev
//              pointer is p (nil for a full list).
// dkeys(x)   - the keys stored along the next-chain.

struct dnode {
  struct dnode *next;
  struct dnode *prev;
  int key;
};

_(dryad
  predicate dll(struct dnode *x, struct dnode *p) =
      (x == nil && emp) ||
      ((x |-> && x->prev == p) * dll(x->next, x));

  function intset dkeys(struct dnode *x) =
      (x == nil) ? emptyset : (singleton(x->key) union dkeys(x->next));

  // Shape and data definitions share their heap domain. The heaplet
  // of dll is independent of the expected-prev parameter.
  axiom (struct dnode *x, struct dnode *p)
      true ==> heaplet dkeys(x) == heaplet dll(x, p);
)

_(dryad
  // A next-chain with arbitrary prev pointers (input of DLL_fix).
  predicate nlist(struct dnode *x) =
      (x == nil && emp) || (x |-> * nlist(x->next));

  axiom (struct dnode *x, struct dnode *p)
      true ==> heaplet nlist(x) == heaplet dll(x, p);
)
