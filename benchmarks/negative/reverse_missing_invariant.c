// NEGATIVE: the loop invariant is too weak (forgets list(rev)),
// so the postcondition cannot be established.
#include "../include/sll.h"

struct node *reverse_weak(struct node *x)
  _(requires list(x))
  _(ensures list(result))
{
  struct node *rev = NULL;
  struct node *cur = x;
  while (cur != NULL)
    _(invariant list(cur))
  {
    struct node *tmp = cur->next;
    cur->next = rev;
    rev = cur;
    cur = tmp;
  }
  return rev;
}
