// NEGATIVE: stores k+1 but claims to have inserted k.
#include "../include/sll.h"

struct node *insert_front_bug(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) union singleton(k)))
{
  struct node *n = (struct node *) malloc(sizeof(struct node));
  n->next = x;
  n->key = k + 1;
  return n;
}
