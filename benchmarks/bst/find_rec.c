// BST membership test (recursive).
#include "../include/bst.h"

int bst_find_rec(struct bnode *x, int k)
  _(requires bst(x))
  _(ensures bst(x) && bkeys(x) == old(bkeys(x)))
  _(ensures (result == 1 && k in bkeys(x)) ||
            (result == 0 && !(k in bkeys(x))))
{
  if (x == NULL)
    return 0;
  if (x->key == k)
    return 1;
  if (k < x->key)
    return bst_find_rec(x->l, k);
  return bst_find_rec(x->r, k);
}
