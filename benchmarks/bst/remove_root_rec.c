// BST remove-root (recursive), via merging the ordered subtrees.
#include "../include/bst.h"

struct bnode *bst_merge(struct bnode *l, struct bnode *r)
  _(requires (bst(l) * bst(r)) && bkeys(l) < bkeys(r))
  _(ensures bst(result))
  _(ensures bkeys(result) == (old(bkeys(l)) union old(bkeys(r))))
{
  if (l == NULL)
    return r;
  struct bnode *t = bst_merge(l->r, r);
  l->r = t;
  return l;
}

struct bnode *bst_remove_root_rec(struct bnode *x)
  _(requires bst(x) && x != nil)
  _(ensures bst(result))
  _(ensures bkeys(result) ==
            (old(bkeys(x)) setminus singleton(old(x->key))))
{
  struct bnode *lc = x->l;
  struct bnode *rc = x->r;
  struct bnode *m = bst_merge(lc, rc);
  free(x);
  return m;
}
