// BST delete (recursive): removes k if present.
#include "../include/bst.h"

struct bnode *bst_merge(struct bnode *l, struct bnode *r)
  _(requires (bst(l) * bst(r)) && bkeys(l) < bkeys(r))
  _(ensures bst(result))
  _(ensures bkeys(result) == (old(bkeys(l)) union old(bkeys(r))))
{
  if (l == NULL)
    return r;
  struct bnode *t = bst_merge(l->r, r);
  l->r = t;
  return l;
}

struct bnode *bst_delete_rec(struct bnode *x, int k)
  _(requires bst(x))
  _(ensures bst(result))
  _(ensures bkeys(result) == (old(bkeys(x)) setminus singleton(k)))
{
  if (x == NULL)
    return NULL;
  if (k < x->key) {
    struct bnode *tl = bst_delete_rec(x->l, k);
    x->l = tl;
    return x;
  }
  if (k > x->key) {
    struct bnode *tr = bst_delete_rec(x->r, k);
    x->r = tr;
    return x;
  }
  struct bnode *lc = x->l;
  struct bnode *rc = x->r;
  struct bnode *m = bst_merge(lc, rc);
  free(x);
  return m;
}
