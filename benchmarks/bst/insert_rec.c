// BST insertion (recursive) — Figure 3 of the paper.
#include "../include/bst.h"

struct bnode *bst_insert_rec(struct bnode *x, int k)
  _(requires bst(x) && !(k in bkeys(x)))
  _(ensures bst(result))
  _(ensures bkeys(result) == (old(bkeys(x)) union singleton(k)))
{
  if (x == NULL) {
    struct bnode *leaf = (struct bnode *) malloc(sizeof(struct bnode));
    leaf->key = k;
    leaf->l = NULL;
    leaf->r = NULL;
    return leaf;
  }
  if (k < x->key) {
    struct bnode *tmp = bst_insert_rec(x->l, k);
    x->l = tmp;
    return x;
  }
  struct bnode *tmp2 = bst_insert_rec(x->r, k);
  x->r = tmp2;
  return x;
}
