// BST membership test (iterative descent). The invariant speaks about
// the current subtree with pure() — the loop never mutates the heap,
// so the function heaplet stays pinned by the precondition.
#include "../include/bst.h"

int bst_find_iter(struct bnode *x, int k)
  _(requires bst(x))
  _(ensures bst(x) && bkeys(x) == old(bkeys(x)))
  _(ensures (result == 1 && k in bkeys(x)) ||
            (result == 0 && !(k in bkeys(x))))
{
  struct bnode *cur = x;
  int found = 0;
  int stop = 0;
  while (stop == 0 && cur != NULL)
    _(invariant (stop == 0 && found == 0 && pure(bst(cur)) &&
                 ((k in bkeys(x) && k in bkeys(cur)) ||
                  (!(k in bkeys(x)) && !(k in bkeys(cur))))) ||
                (stop == 1 && found == 1 && k in bkeys(x)) ||
                (stop == 1 && found == 0 && !(k in bkeys(x))))
  {
    if (cur->key == k) {
      found = 1;
      stop = 1;
    } else {
      if (k < cur->key) {
        cur = cur->l;
      } else {
        cur = cur->r;
      }
    }
  }
  if (found == 1)
    return 1;
  return 0;
}
