// AVL leftmost (minimum) lookup.
#include "../include/avl.h"

struct anode *leftmost_rec(struct anode *x)
  _(requires avl(x))
  _(ensures avl(x) && akeys(x) == old(akeys(x)))
  _(ensures (x == nil && result == nil) ||
            (x != nil && result != nil && result->key in akeys(x) &&
             result->key <= akeys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->l == NULL)
    return x;
  return leftmost_rec(x->l);
}
