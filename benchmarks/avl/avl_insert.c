// AVL insertion: BST insert along the path, rebalancing each node on
// the way back up. Height changes by at most one in either direction.
#include "../include/avl.h"

struct anode *avl_balance(struct anode *x)
  _(requires x != nil)
  _(requires (x |->) * (avl(x->l) && akeys(x->l) < x->key)
                     * (avl(x->r) && x->key < akeys(x->r)))
  _(requires rheight(x->l) <= rheight(x->r) + 2 &&
             rheight(x->r) <= rheight(x->l) + 2)
  _(ensures avl(result) && result != nil)
  _(ensures akeys(result) ==
            ((singleton(old(x->key)) union old(akeys(x->l))) union
             old(akeys(x->r))))
  _(ensures rheight(result) <=
            ((old(rheight(x->l)) >= old(rheight(x->r)))
                 ? (old(rheight(x->l)) + 1)
                 : (old(rheight(x->r)) + 1)))
  _(ensures ((old(rheight(x->l)) >= old(rheight(x->r)))
                 ? old(rheight(x->l))
                 : old(rheight(x->r))) <= rheight(result))
{
  struct anode *l = x->l;
  struct anode *r = x->r;
  int hl = 0;
  if (l != NULL) {
    hl = l->height;
  }
  int hr = 0;
  if (r != NULL) {
    hr = r->height;
  }
  if (hl > hr + 1) {
    // Left-heavy by two: l is a real node.
    struct anode *ll = l->l;
    struct anode *lr = l->r;
    int hll = 0;
    if (ll != NULL) {
      hll = ll->height;
    }
    int hlr = 0;
    if (lr != NULL) {
      hlr = lr->height;
    }
    if (hll >= hlr) {
      // Single right rotation.
      x->l = lr;
      if (hlr >= hr) {
        x->height = hlr + 1;
      } else {
        x->height = hr + 1;
      }
      l->r = x;
      int hx = x->height;
      if (hll >= hx) {
        l->height = hll + 1;
      } else {
        l->height = hx + 1;
      }
      return l;
    }
    // Double rotation (left-right): lr is a real node.
    struct anode *lrl = lr->l;
    struct anode *lrr = lr->r;
    l->r = lrl;
    int hlrl = 0;
    if (lrl != NULL) {
      hlrl = lrl->height;
    }
    if (hll >= hlrl) {
      l->height = hll + 1;
    } else {
      l->height = hlrl + 1;
    }
    x->l = lrr;
    int hlrr = 0;
    if (lrr != NULL) {
      hlrr = lrr->height;
    }
    if (hlrr >= hr) {
      x->height = hlrr + 1;
    } else {
      x->height = hr + 1;
    }
    lr->l = l;
    lr->r = x;
    int hl2 = l->height;
    int hx2 = x->height;
    if (hl2 >= hx2) {
      lr->height = hl2 + 1;
    } else {
      lr->height = hx2 + 1;
    }
    return lr;
  }
  if (hr > hl + 1) {
    // Right-heavy by two: r is a real node.
    struct anode *rl = r->l;
    struct anode *rr = r->r;
    int hrl = 0;
    if (rl != NULL) {
      hrl = rl->height;
    }
    int hrr = 0;
    if (rr != NULL) {
      hrr = rr->height;
    }
    if (hrr >= hrl) {
      // Single left rotation.
      x->r = rl;
      if (hl >= hrl) {
        x->height = hl + 1;
      } else {
        x->height = hrl + 1;
      }
      r->l = x;
      int hx = x->height;
      if (hrr >= hx) {
        r->height = hrr + 1;
      } else {
        r->height = hx + 1;
      }
      return r;
    }
    // Double rotation (right-left): rl is a real node.
    struct anode *rll = rl->l;
    struct anode *rlr = rl->r;
    r->l = rlr;
    int hrlr = 0;
    if (rlr != NULL) {
      hrlr = rlr->height;
    }
    if (hrr >= hrlr) {
      r->height = hrr + 1;
    } else {
      r->height = hrlr + 1;
    }
    x->r = rll;
    int hrll = 0;
    if (rll != NULL) {
      hrll = rll->height;
    }
    if (hl >= hrll) {
      x->height = hl + 1;
    } else {
      x->height = hrll + 1;
    }
    rl->l = x;
    rl->r = r;
    int hx2 = x->height;
    int hr2 = r->height;
    if (hx2 >= hr2) {
      rl->height = hx2 + 1;
    } else {
      rl->height = hr2 + 1;
    }
    return rl;
  }
  // Already balanced: recompute the cached height.
  if (hl >= hr) {
    x->height = hl + 1;
  } else {
    x->height = hr + 1;
  }
  return x;
}

struct anode *avl_insert(struct anode *x, int k)
  _(requires avl(x) && !(k in akeys(x)))
  _(ensures avl(result) && result != nil)
  _(ensures akeys(result) == (old(akeys(x)) union singleton(k)))
  _(ensures (old(rheight(x)) - 1) <= rheight(result) &&
            rheight(result) <= (old(rheight(x)) + 1))
{
  if (x == NULL) {
    struct anode *leaf = (struct anode *) malloc(sizeof(struct anode));
    leaf->key = k;
    leaf->l = NULL;
    leaf->r = NULL;
    leaf->height = 1;
    return leaf;
  }
  if (k < x->key) {
    struct anode *t = avl_insert(x->l, k);
    x->l = t;
    struct anode *b = avl_balance(x);
    return b;
  }
  struct anode *t2 = avl_insert(x->r, k);
  x->r = t2;
  struct anode *b2 = avl_balance(x);
  return b2;
}
