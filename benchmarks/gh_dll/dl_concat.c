// GRASShopper dl_concat (recursive splice).
#include "../include/dll.h"

struct dnode *dl_concat(struct dnode *x, struct dnode *p, struct dnode *y)
  _(requires dll(x, p) * dll(y, nil))
  _(ensures dll(result, p))
  _(ensures dkeys(result) == (old(dkeys(x)) union old(dkeys(y))))
{
  if (x == NULL) {
    if (y != NULL) {
      y->prev = p;
    }
    return y;
  }
  struct dnode *t = dl_concat(x->next, x, y);
  x->next = t;
  return x;
}
