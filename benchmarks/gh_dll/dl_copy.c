// GRASShopper dl_copy.
#include "../include/dll.h"

struct dnode *dl_copy(struct dnode *x, struct dnode *p, struct dnode *cp)
  _(requires dll(x, p))
  _(ensures dll(x, p) * dll(result, cp))
  _(ensures dkeys(x) == old(dkeys(x)))
  _(ensures dkeys(result) == old(dkeys(x)))
{
  if (x == NULL)
    return NULL;
  struct dnode *c = (struct dnode *) malloc(sizeof(struct dnode));
  c->key = x->key;
  c->prev = cp;
  struct dnode *rest = dl_copy(x->next, x, c);
  c->next = rest;
  return c;
}
