// GRASShopper dl_filter: drop every node with key v (recursive).
#include "../include/dll.h"

struct dnode *dl_filter(struct dnode *x, struct dnode *p, int v)
  _(requires dll(x, p))
  _(ensures dll(result, p))
  _(ensures dkeys(result) == (old(dkeys(x)) setminus singleton(v)))
{
  if (x == NULL)
    return NULL;
  if (x->key == v) {
    struct dnode *t = x->next;
    struct dnode *r = dl_filter(t, x, v);
    free(x);
    if (r != NULL) {
      r->prev = p;
    }
    return r;
  }
  struct dnode *t2 = dl_filter(x->next, x, v);
  x->next = t2;
  return x;
}
