// GRASShopper dl_remove: drop the first node with key v (recursive).
#include "../include/dll.h"

struct dnode *dl_remove(struct dnode *x, struct dnode *p, int v)
  _(requires dll(x, p))
  _(ensures dll(result, p))
  _(ensures dkeys(result) subset old(dkeys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->key == v) {
    struct dnode *t = x->next;
    struct dnode *r = t;
    if (t != NULL) {
      t->prev = p;
    }
    free(x);
    return r;
  }
  struct dnode *t2 = dl_remove(x->next, x, v);
  x->next = t2;
  return x;
}
