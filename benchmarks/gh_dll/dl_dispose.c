// GRASShopper dl_dispose (iterative).
#include "../include/dll.h"

void dl_dispose(struct dnode *x)
  _(requires dll(x, nil))
  _(ensures emp)
{
  struct dnode *cur = x;
  struct dnode *p = NULL;
  while (cur != NULL)
    _(invariant dll(cur, p))
  {
    struct dnode *t = cur->next;
    p = cur;
    free(cur);
    cur = t;
  }
}
