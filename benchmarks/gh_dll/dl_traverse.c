// GRASShopper dl_traverse (recursive read-only walk).
#include "../include/dll.h"

void dl_traverse(struct dnode *x, struct dnode *p)
  _(requires dll(x, p))
  _(ensures dll(x, p) && dkeys(x) == old(dkeys(x)))
{
  if (x == NULL)
    return;
  dl_traverse(x->next, x);
}
