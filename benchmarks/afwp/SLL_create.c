// AFWP SLL_create: build a list of n nodes in a loop.
#include "../include/sll.h"

struct node *SLL_create(int n)
  _(ensures list(result))
{
  struct node *x = NULL;
  int i = 0;
  while (i < n)
    _(invariant list(x))
  {
    struct node *s = (struct node *) malloc(sizeof(struct node));
    s->next = x;
    s->key = i;
    x = s;
    i = i + 1;
  }
  return x;
}
