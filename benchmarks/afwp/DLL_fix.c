// AFWP DLL_fix: repair all prev pointers of a next-chain.
#include "../include/dll.h"

void DLL_fix(struct dnode *x, struct dnode *p)
  _(requires nlist(x))
  _(ensures dll(x, p))
{
  if (x == NULL)
    return;
  x->prev = p;
  DLL_fix(x->next, x);
}
