// AFWP DLL_splice: splice list y into x right after x's head.
#include "../include/dll.h"

void DLL_splice(struct dnode *x, struct dnode *p, struct dnode *y)
  _(requires (dll(x, p) && x != nil) * dll(y, nil))
  _(ensures dll(x, p))
  _(ensures dkeys(x) == (old(dkeys(x)) union old(dkeys(y))))
{
  if (y == NULL)
    return;
  struct dnode *t = x->next;
  struct dnode *yn = y->next;
  x->next = y;
  y->prev = x;
  if (yn != NULL) {
    yn->prev = NULL;
  }
  y->next = t;
  if (t != NULL) {
    t->prev = y;
  }
  DLL_splice(y, x, yn);
}
