// AFWP SLL_reverse.
#include "../include/sll.h"

struct node *SLL_reverse(struct node *x)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == old(keys(x)))
{
  struct node *rev = NULL;
  struct node *cur = x;
  while (cur != NULL)
    _(invariant list(cur) * list(rev))
    _(invariant (keys(cur) union keys(rev)) == old(keys(x)))
  {
    struct node *tmp = cur->next;
    cur->next = rev;
    rev = cur;
    cur = tmp;
  }
  return rev;
}
