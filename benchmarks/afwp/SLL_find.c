// AFWP SLL_find.
#include "../include/sll.h"

int SLL_find(struct node *x, int k)
  _(requires list(x))
  _(ensures list(x) && keys(x) == old(keys(x)))
  _(ensures (result == 1 && k in keys(x)) ||
            (result == 0 && !(k in keys(x))))
{
  if (x == NULL)
    return 0;
  if (x->key == k)
    return 1;
  return SLL_find(x->next, k);
}
