// AFWP SLL_swap: exchange the first two nodes.
#include "../include/sll.h"

struct node *SLL_swap(struct node *x)
  _(requires list(x) && x != nil && x->next != nil)
  _(ensures list(result))
  _(ensures keys(result) == old(keys(x)))
{
  struct node *s = x->next;
  struct node *r = s->next;
  s->next = x;
  x->next = r;
  return s;
}
