// AFWP SLL_delete_all: remove every node with key k.
#include "../include/sll.h"

struct node *SLL_delete_all(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) == (old(keys(x)) setminus singleton(k)))
{
  if (x == NULL)
    return NULL;
  struct node *t = SLL_delete_all(x->next, k);
  if (x->key == k) {
    free(x);
    return t;
  }
  x->next = t;
  return x;
}
