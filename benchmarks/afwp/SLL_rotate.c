// AFWP SLL_rotate: move the head node to the tail.
#include "../include/sll.h"

struct node *SLL_rotate(struct node *x)
  _(requires list(x) && x != nil)
  _(ensures list(result))
  _(ensures keys(result) == old(keys(x)))
{
  struct node *h = x;
  struct node *t = x->next;
  if (t == NULL)
    return x;
  h->next = NULL;
  struct node *cur = t;
  struct node *nx = cur->next;
  while (nx != NULL)
    _(invariant ((lseg(t, cur) * (cur |-> && cur->next == nx)) *
                 list(nx)) * (h |-> && h->next == nil))
    _(invariant (((lseg_keys(t, cur) union singleton(cur->key)) union
                  keys(nx)) union singleton(h->key)) == old(keys(x)))
  {
    cur = nx;
    nx = cur->next;
  }
  cur->next = h;
  return t;
}
