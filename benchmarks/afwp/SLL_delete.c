// AFWP SLL_delete: remove the first node with key k.
#include "../include/sll.h"

struct node *SLL_delete(struct node *x, int k)
  _(requires list(x))
  _(ensures list(result))
  _(ensures keys(result) subset old(keys(x)))
{
  if (x == NULL)
    return NULL;
  if (x->key == k) {
    struct node *t = x->next;
    free(x);
    return t;
  }
  struct node *t2 = SLL_delete(x->next, k);
  x->next = t2;
  return x;
}
