//===- VcHash.h - Stable hashing of proof obligations -----------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, content-addressed hashing of VIR expressions and
/// whole proof obligations, the keying hook of the proof cache: two
/// obligations get the same key iff their passified (guard, goal)
/// pair is structurally identical (same operators, sorts, variable
/// names and constants) and they would be solved under the same
/// solver options (timeout, background axioms). The hash is FNV-1a
/// over a canonical serialization, memoized per DAG node — VC guards
/// are heavily shared DAGs, so a naive structural recursion would be
/// exponential.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SMT_VCHASH_H
#define VCDRYAD_SMT_VCHASH_H

#include "smt/Solver.h"
#include "vir/LExpr.h"

#include <cstdint>

namespace vcdryad {
namespace smt {

/// Stable structural hash of one expression. Equal structures (up to
/// node identity) hash equal; distinct variable names ("alpha-distinct"
/// terms) hash differently by design — the cache must not conflate
/// obligations that differ only in symbol names.
uint64_t hashExpr(const vir::LExprRef &E);

/// Hash of the solver-affecting option set: timeout and background
/// axioms. Obligations solved under different options never share a
/// cache entry.
uint64_t hashSolverOptions(const SolverOptions &Opts);

/// The content-addressed key of one checkValid(Guard, Goal) query.
/// \p Salt folds in caller context the solver cannot see (pipeline
/// options that shaped the VC, cache format version).
uint64_t hashObligation(const vir::LExprRef &Guard,
                        const vir::LExprRef &Goal,
                        const SolverOptions &Opts, uint64_t Salt = 0);

/// The manifest key of one function for incremental re-verification:
/// the function's content fingerprint (cfront::fingerprintFunction
/// over the normalized AST and its spec/struct/axiom closure) crossed
/// with everything else that can change its verdicts — the pipeline
/// options fingerprint (service::optionsFingerprint, the same salt the
/// proof-cache keys use), the effective solver options (timeout and
/// background axioms; the quantified-axiom mode ships whole-program
/// axioms the content closure intentionally does not cover), and
/// whether vacuity checking adds an extra obligation. A manifest entry
/// recorded under this key may discharge the function on a later run
/// iff every recorded verdict was Valid.
uint64_t hashFunctionKey(uint64_t ContentFingerprint,
                         uint64_t PipelineFingerprint,
                         const SolverOptions &Opts, bool CheckVacuity);

} // namespace smt
} // namespace vcdryad

#endif // VCDRYAD_SMT_VCHASH_H
