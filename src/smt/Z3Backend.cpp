//===- Z3Backend.cpp - Lowering VIR expressions to Z3 ----------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers VIR expressions to Z3 (Section 4.1 of the paper): locations
/// are an uninterpreted sort with a distinguished nil; sets of
/// locations/integers are Z3 array-sets (extended array theory [14]);
/// multisets are Int -> Int count arrays with pointwise lambdas;
/// set-ordering atoms become guarded quantifiers in the array property
/// fragment [6]; recursive definitions stay uninterpreted functions.
///
//===----------------------------------------------------------------------===//

#include "smt/Solver.h"

#include "support/Timer.h"

#include <cassert>
#include <charconv>
#include <map>

#include <z3++.h>

using namespace vcdryad;
using namespace vcdryad::smt;
using namespace vcdryad::vir;

namespace {

class Z3Lowering {
public:
  // Locations are modeled as Z3 integers, not an uninterpreted sort:
  // Z3 4.8's array-set decision procedure (map combinators +
  // extensionality) produces spurious models over uninterpreted
  // domains (see tests/smt_test.cpp SetAlgebra). No location
  // arithmetic is ever emitted, so the embedding is sound.
  explicit Z3Lowering(z3::context &Ctx)
      : Ctx(Ctx), LocSort(Ctx.int_sort()) {}

  z3::expr lower(const LExprRef &E) {
    auto It = Cache.find(E.get());
    if (It != Cache.end())
      return It->second;
    z3::expr R = lowerUncached(E);
    Cache.emplace(E.get(), R);
    return R;
  }

  void clearNodeCache() {
    Cache.clear();
    // Restart fresh-name numbering with the cache: queries become
    // deterministic functions of their VC instead of the solve order.
    FreshCounter = 0;
  }

private:
  z3::context &Ctx;
  z3::sort LocSort;
  std::map<const LExpr *, z3::expr> Cache;
  std::map<std::string, z3::func_decl> FuncDecls;
  /// Bound variables currently in scope (shadow constants).
  std::map<std::string, z3::expr> BoundVars;
  /// Fresh-name counter for quantifier lowering. A per-lowering member
  /// (not a function-local static): solvers run concurrently on
  /// different threads of the verification service, and a shared
  /// static counter would be a data race.
  unsigned FreshCounter = 0;

  z3::sort sortOf(Sort S) {
    switch (S) {
    case Sort::Bool:
      return Ctx.bool_sort();
    case Sort::Int:
      return Ctx.int_sort();
    case Sort::Loc:
      return LocSort;
    case Sort::SetLoc:
      return Ctx.array_sort(LocSort, Ctx.bool_sort());
    case Sort::SetInt:
      return Ctx.array_sort(Ctx.int_sort(), Ctx.bool_sort());
    case Sort::MSetInt:
      return Ctx.array_sort(Ctx.int_sort(), Ctx.int_sort());
    case Sort::ArrLocLoc:
      return Ctx.array_sort(LocSort, LocSort);
    case Sort::ArrLocInt:
      return Ctx.array_sort(LocSort, Ctx.int_sort());
    }
    assert(false && "unhandled sort");
    return Ctx.bool_sort();
  }

  z3::expr emptyOf(Sort S) {
    switch (S) {
    case Sort::SetLoc:
      return z3::const_array(LocSort, Ctx.bool_val(false));
    case Sort::SetInt:
      return z3::const_array(Ctx.int_sort(), Ctx.bool_val(false));
    case Sort::MSetInt:
      return z3::const_array(Ctx.int_sort(), Ctx.int_val(0));
    default:
      assert(false && "empty of non-set sort");
      return Ctx.bool_val(false);
    }
  }

  z3::func_decl funcDecl(const LExpr &App) {
    auto It = FuncDecls.find(App.Name);
    if (It != FuncDecls.end())
      return It->second;
    z3::sort_vector Doms(Ctx);
    for (const LExprRef &A : App.Args)
      Doms.push_back(sortOf(A->sort()));
    z3::func_decl FD =
        Ctx.function(App.Name.c_str(), Doms, sortOf(App.sort()));
    FuncDecls.emplace(App.Name, FD);
    return FD;
  }

  /// A fresh bound variable for quantifier lowering.
  z3::expr freshBound(const char *Hint, Sort S) {
    std::string Name =
        std::string("?") + Hint + std::to_string(FreshCounter++);
    return Ctx.constant(Name.c_str(), sortOf(S));
  }

  z3::expr memberOf(const z3::expr &Elem, const LExprRef &Set,
                    const z3::expr &SetE) {
    if (Set->sort() == Sort::MSetInt)
      return z3::select(SetE, Elem) >= 1;
    return z3::select(SetE, Elem);
  }

  z3::expr lowerUncached(const LExprRef &E) {
    switch (E->Op) {
    case LOp::Var: {
      auto It = BoundVars.find(E->Name);
      if (It != BoundVars.end())
        return It->second;
      return Ctx.constant(E->Name.c_str(), sortOf(E->sort()));
    }
    case LOp::IntConst:
      return Ctx.int_val(static_cast<int64_t>(E->IntVal));
    case LOp::BoolConst:
      return Ctx.bool_val(E->IntVal != 0);
    case LOp::NilConst:
      return Ctx.constant("nil", LocSort);
    case LOp::And: {
      z3::expr_vector V(Ctx);
      for (const LExprRef &A : E->Args)
        V.push_back(lower(A));
      return z3::mk_and(V);
    }
    case LOp::Or: {
      z3::expr_vector V(Ctx);
      for (const LExprRef &A : E->Args)
        V.push_back(lower(A));
      return z3::mk_or(V);
    }
    case LOp::Not:
      return !lower(E->Args[0]);
    case LOp::Implies:
      return z3::implies(lower(E->Args[0]), lower(E->Args[1]));
    case LOp::Ite:
      return z3::ite(lower(E->Args[0]), lower(E->Args[1]),
                     lower(E->Args[2]));
    case LOp::Eq:
      return lower(E->Args[0]) == lower(E->Args[1]);
    case LOp::IntLt:
      return lower(E->Args[0]) < lower(E->Args[1]);
    case LOp::IntLe:
      return lower(E->Args[0]) <= lower(E->Args[1]);
    case LOp::IntAdd:
      return lower(E->Args[0]) + lower(E->Args[1]);
    case LOp::IntSub:
      return lower(E->Args[0]) - lower(E->Args[1]);
    case LOp::Select:
      return z3::select(lower(E->Args[0]), lower(E->Args[1]));
    case LOp::Store:
      return z3::store(lower(E->Args[0]), lower(E->Args[1]),
                       lower(E->Args[2]));
    case LOp::EmptySet:
      return emptyOf(E->sort());
    case LOp::Singleton: {
      z3::expr Elem = lower(E->Args[0]);
      if (E->sort() == Sort::MSetInt)
        return z3::store(emptyOf(Sort::MSetInt), Elem, Ctx.int_val(1));
      return z3::store(emptyOf(E->sort()), Elem, Ctx.bool_val(true));
    }
    case LOp::Union: {
      z3::expr A = lower(E->Args[0]);
      z3::expr B = lower(E->Args[1]);
      if (E->sort() == Sort::MSetInt) {
        z3::expr X = freshBound("m", Sort::Int);
        return z3::lambda(X, z3::select(A, X) + z3::select(B, X));
      }
      return z3::set_union(A, B);
    }
    case LOp::Inter: {
      z3::expr A = lower(E->Args[0]);
      z3::expr B = lower(E->Args[1]);
      if (E->sort() == Sort::MSetInt) {
        z3::expr X = freshBound("m", Sort::Int);
        z3::expr CA = z3::select(A, X);
        z3::expr CB = z3::select(B, X);
        return z3::lambda(X, z3::ite(CA <= CB, CA, CB));
      }
      return z3::set_intersect(A, B);
    }
    case LOp::Minus: {
      z3::expr A = lower(E->Args[0]);
      z3::expr B = lower(E->Args[1]);
      if (E->sort() == Sort::MSetInt) {
        // Pointwise monus.
        z3::expr X = freshBound("m", Sort::Int);
        z3::expr D = z3::select(A, X) - z3::select(B, X);
        return z3::lambda(X, z3::ite(D >= 0, D, Ctx.int_val(0)));
      }
      return z3::set_difference(A, B);
    }
    case LOp::Member:
      return memberOf(lower(E->Args[0]), E->Args[1], lower(E->Args[1]));
    case LOp::Subset: {
      z3::expr A = lower(E->Args[0]);
      z3::expr B = lower(E->Args[1]);
      if (E->Args[0]->sort() == Sort::MSetInt) {
        // Pointwise <= via extensional min.
        z3::expr X = freshBound("m", Sort::Int);
        z3::expr CA = z3::select(A, X);
        z3::expr CB = z3::select(B, X);
        z3::expr Min = z3::lambda(X, z3::ite(CA <= CB, CA, CB));
        return Min == A;
      }
      return z3::set_subset(A, B);
    }
    case LOp::SetLeSet:
    case LOp::SetLtSet: {
      z3::expr A = lower(E->Args[0]);
      z3::expr B = lower(E->Args[1]);
      z3::expr X = freshBound("x", Sort::Int);
      z3::expr Y = freshBound("y", Sort::Int);
      z3::expr Prem = memberOf(X, E->Args[0], A) && memberOf(Y, E->Args[1], B);
      z3::expr Conc = E->Op == LOp::SetLeSet ? X <= Y : X < Y;
      return z3::forall(X, Y, z3::implies(Prem, Conc));
    }
    case LOp::SetLeInt:
    case LOp::SetLtInt: {
      z3::expr A = lower(E->Args[0]);
      z3::expr K = lower(E->Args[1]);
      z3::expr X = freshBound("x", Sort::Int);
      z3::expr Conc = E->Op == LOp::SetLeInt ? X <= K : X < K;
      return z3::forall(X, z3::implies(memberOf(X, E->Args[0], A), Conc));
    }
    case LOp::IntLeSet:
    case LOp::IntLtSet: {
      z3::expr K = lower(E->Args[0]);
      z3::expr A = lower(E->Args[1]);
      z3::expr X = freshBound("x", Sort::Int);
      z3::expr Conc = E->Op == LOp::IntLeSet ? K <= X : K < X;
      return z3::forall(X, z3::implies(memberOf(X, E->Args[1], A), Conc));
    }
    case LOp::FuncApp: {
      z3::func_decl FD = funcDecl(*E);
      z3::expr_vector Args(Ctx);
      for (const LExprRef &A : E->Args)
        Args.push_back(lower(A));
      return FD(Args);
    }
    case LOp::Forall: {
      // Bound variables shadow global constants of the same name.
      z3::expr_vector Bound(Ctx);
      std::vector<std::pair<std::string, z3::expr>> Saved;
      size_t N = E->Args.size() - 1;
      for (size_t I = 0; I != N; ++I) {
        const LExprRef &V = E->Args[I];
        z3::expr BV = freshBound(V->Name.c_str(), V->sort());
        Bound.push_back(BV);
        auto It = BoundVars.find(V->Name);
        if (It != BoundVars.end())
          Saved.emplace_back(V->Name, It->second);
        BoundVars.insert_or_assign(V->Name, BV);
      }
      // The body must be lowered fresh (cache would leak bound vars).
      std::map<const LExpr *, z3::expr> SavedCache;
      std::swap(SavedCache, Cache);
      z3::expr Body = lower(E->Args.back());
      std::swap(SavedCache, Cache);
      for (size_t I = 0; I != N; ++I)
        BoundVars.erase(E->Args[I]->Name);
      for (auto &[Name, Old] : Saved)
        BoundVars.insert_or_assign(Name, Old);
      return z3::forall(Bound, Body);
    }
    }
    assert(false && "unhandled LExpr op");
    return Ctx.bool_val(true);
  }
};

class Z3SolverImpl : public SmtSolver {
public:
  explicit Z3SolverImpl(const SolverOptions &Opts)
      : Opts(Opts), Lower(Ctx) {}

  /// Applies the per-check budget and the tactic profile's overrides.
  /// A budget of 0 is "unlimited": the timeout parameter is left at
  /// Z3's own no-timeout default rather than set to a literal 0.
  void applyParams(z3::params &P, unsigned TimeoutMs) {
    if (TimeoutMs != 0)
      P.set("timeout", TimeoutMs);
    for (const auto &[Key, Val] : Opts.Profile.Params) {
      // Values are textual; coerce to the parameter's likely type.
      // A wrong coercion (or an unknown parameter) throws at
      // solver.set() and the caller degrades to Unknown.
      if (Val == "true" || Val == "false")
        P.set(Key.c_str(), Val == "true");
      else if (!Val.empty() &&
               Val.find_first_not_of("0123456789") == std::string::npos)
        P.set(Key.c_str(), static_cast<unsigned>(std::stoul(Val)));
      else if (!Val.empty() &&
               Val.find_first_not_of("0123456789.") == std::string::npos) {
        // std::from_chars, not std::stod: profile values must parse
        // the same under every LC_NUMERIC locale.
        double D = 0.0;
        auto [Ptr, Ec] =
            std::from_chars(Val.data(), Val.data() + Val.size(), D);
        if (Ec == std::errc() && Ptr == Val.data() + Val.size())
          P.set(Key.c_str(), D);
      }
      else
        P.set(Key.c_str(), Ctx.str_symbol(Val.c_str()));
    }
  }

  CheckResult checkValid(const LExprRef &Guard,
                         const LExprRef &Goal) override {
    Timer T;
    CheckResult R;
    // LExpr nodes are cached by address; addresses are recycled across
    // queries, so the per-node cache must not outlive one check.
    endSession();
    Lower.clearNodeCache();
    try {
      z3::solver S(Ctx);
      z3::params P(Ctx);
      applyParams(P, Opts.TimeoutMs);
      S.set(P);
      for (const LExprRef &Ax : Opts.BackgroundAxioms)
        S.add(Lower.lower(Ax));
      S.add(Lower.lower(Guard));
      S.add(!Lower.lower(Goal));
      switch (S.check()) {
      case z3::unsat:
        R.Status = CheckStatus::Valid;
        break;
      case z3::sat: {
        R.Status = CheckStatus::Invalid;
        std::string M = S.get_model().to_string();
        if (M.size() > Opts.MaxModelChars)
          M.resize(Opts.MaxModelChars);
        R.Detail = std::move(M);
        break;
      }
      case z3::unknown:
        R.Status = CheckStatus::Unknown;
        R.Detail = S.reason_unknown();
        break;
      }
    } catch (const z3::exception &Ex) {
      R.Status = CheckStatus::Unknown;
      R.Detail = std::string("z3 error: ") + Ex.msg();
    }
    R.TimeMs = T.millis();
    return R;
  }

  void beginSession(const std::vector<LExprRef> &Prefix,
                    unsigned TimeoutMs) override {
    endSession();
    try {
      Session = std::make_unique<z3::solver>(Ctx);
      // Parameters are set once here, for every check of the session.
      z3::params P(Ctx);
      applyParams(P, resolveTimeout(TimeoutMs, Opts.TimeoutMs));
      Session->set(P);
      for (const LExprRef &Ax : Opts.BackgroundAxioms)
        Session->add(Lower.lower(Ax));
      for (const LExprRef &C : Prefix)
        Session->add(Lower.lower(C));
    } catch (const z3::exception &) {
      // A broken session answers Unknown to every check; the
      // escalation ladder re-checks those one-shot.
      Session.reset();
      Lower.clearNodeCache();
    }
  }

  CheckResult checkSession(const std::vector<LExprRef> &Extra,
                           const LExprRef &Goal) override {
    Timer T;
    CheckResult R;
    if (!Session) {
      R.Detail = "no active session";
      R.TimeMs = T.millis();
      return R;
    }
    try {
      Session->push();
      for (const LExprRef &C : Extra)
        Session->add(Lower.lower(C));
      Session->add(!Lower.lower(Goal));
      switch (Session->check()) {
      case z3::unsat:
        R.Status = CheckStatus::Valid;
        break;
      case z3::sat:
        // No model extraction: session answers feed the escalation
        // ladder, and the confirming one-shot check produces the
        // counterexample text.
        R.Status = CheckStatus::Invalid;
        break;
      case z3::unknown:
        R.Status = CheckStatus::Unknown;
        R.Detail = Session->reason_unknown();
        break;
      }
      Session->pop();
    } catch (const z3::exception &Ex) {
      R.Status = CheckStatus::Unknown;
      R.Detail = std::string("z3 error: ") + Ex.msg();
      endSession(); // Scope depth is unknown now; do not reuse.
    }
    R.TimeMs = T.millis();
    return R;
  }

  bool pushSessionScope(const std::vector<LExprRef> &Prefix) override {
    if (!Session)
      return false;
    try {
      Session->push();
      ++ScopeDepth;
      for (const LExprRef &C : Prefix)
        Session->add(Lower.lower(C));
      return true;
    } catch (const z3::exception &) {
      endSession(); // Scope depth is unknown now; do not reuse.
      return false;
    }
  }

  void popSessionScope() override {
    if (!Session || ScopeDepth == 0)
      return;
    try {
      Session->pop();
      --ScopeDepth;
    } catch (const z3::exception &) {
      endSession();
    }
  }

  void endSession() override {
    ScopeDepth = 0;
    if (!Session)
      return;
    Session.reset();
    // Session lowerings memoize by node address; those nodes may die
    // with the caller's plan, so the memo must not outlive them.
    Lower.clearNodeCache();
  }

  void interrupt() override {
    // Z3_interrupt is the one context entry point designed to be
    // called from another thread while a check runs; it raises the
    // context's cancellation flag and the running check returns
    // unknown ("canceled"). The flag can linger past the check it
    // raced with, which is why the SmtSolver contract forbids reusing
    // an interrupted instance.
    Ctx.interrupt();
  }

  std::string toSmtLib(const LExprRef &Guard, const LExprRef &Goal) override {
    endSession();
    Lower.clearNodeCache();
    try {
      z3::solver S(Ctx);
      for (const LExprRef &Ax : Opts.BackgroundAxioms)
        S.add(Lower.lower(Ax));
      S.add(Lower.lower(Guard));
      S.add(!Lower.lower(Goal));
      return S.to_smt2();
    } catch (const z3::exception &Ex) {
      return std::string("; z3 error: ") + Ex.msg();
    }
  }

private:
  SolverOptions Opts;
  z3::context Ctx;
  Z3Lowering Lower;
  std::unique_ptr<z3::solver> Session;
  /// Open pushSessionScope frames (checkSession's push/pop nests
  /// inside the innermost scope and does not count here).
  unsigned ScopeDepth = 0;
};

} // namespace

std::unique_ptr<SmtSolver> smt::createZ3Solver(const SolverOptions &Opts) {
  return std::make_unique<Z3SolverImpl>(Opts);
}

std::unique_ptr<SmtSolver> smt::createSolver(const SolverOptions &Opts) {
  if (Opts.MakeSolver)
    return Opts.MakeSolver(Opts);
  return createZ3Solver(Opts);
}
