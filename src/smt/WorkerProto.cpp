//===- WorkerProto.cpp - Solver-worker wire protocol -----------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "smt/WorkerProto.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <unistd.h>
#include <unordered_map>

using namespace vcdryad;
using namespace vcdryad::smt;

//===----------------------------------------------------------------------===//
// Long byte strings
//===----------------------------------------------------------------------===//

void smt::packBytes(std::string &Out, std::string_view S) {
  wire::packU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S.data(), S.size());
}

bool smt::unpackBytes(std::string_view Buf, size_t &Pos, std::string &S) {
  uint32_t Len = 0;
  if (!wire::unpackU32(Buf, Pos, Len))
    return false;
  if (Buf.size() - Pos < Len)
    return false;
  S.assign(Buf.data() + Pos, Len);
  Pos += Len;
  return true;
}

//===----------------------------------------------------------------------===//
// Expression DAGs
//===----------------------------------------------------------------------===//

namespace {

constexpr uint8_t MaxOpTag = static_cast<uint8_t>(vir::LOp::Forall);
constexpr uint8_t MaxSortTag = static_cast<uint8_t>(vir::Sort::ArrLocInt);

/// Post-order DAG walk assigning each distinct node an index and
/// emitting it once, children first (so every arg index in the
/// serialization refers backward).
class DagPacker {
public:
  explicit DagPacker(std::string &Out) : Nodes(), Out(Out) {}

  uint32_t visit(const vir::LExprRef &E) {
    auto It = Index.find(E.get());
    if (It != Index.end())
      return It->second;
    std::vector<uint32_t> ArgIds;
    ArgIds.reserve(E->Args.size());
    for (const vir::LExprRef &A : E->Args)
      ArgIds.push_back(visit(A));
    uint32_t Id = static_cast<uint32_t>(Nodes.size());
    Nodes.push_back({});
    std::string &N = Nodes.back();
    wire::packU8(N, static_cast<uint8_t>(E->Op));
    wire::packU8(N, static_cast<uint8_t>(E->ExprSort));
    packBytes(N, E->Name);
    wire::packU64(N, static_cast<uint64_t>(E->IntVal));
    wire::packU32(N, static_cast<uint32_t>(ArgIds.size()));
    for (uint32_t A : ArgIds)
      wire::packU32(N, A);
    Index.emplace(E.get(), Id);
    return Id;
  }

  void finish(const std::vector<uint32_t> &Roots) {
    wire::packU32(Out, static_cast<uint32_t>(Nodes.size()));
    for (const std::string &N : Nodes)
      Out += N;
    wire::packU32(Out, static_cast<uint32_t>(Roots.size()));
    for (uint32_t R : Roots)
      wire::packU32(Out, R);
  }

private:
  std::unordered_map<const vir::LExpr *, uint32_t> Index;
  std::vector<std::string> Nodes;
  std::string &Out;
};

} // namespace

void smt::packExprDag(std::string &Out,
                      const std::vector<vir::LExprRef> &Roots) {
  DagPacker P(Out);
  std::vector<uint32_t> RootIds;
  RootIds.reserve(Roots.size());
  for (const vir::LExprRef &R : Roots)
    RootIds.push_back(P.visit(R));
  P.finish(RootIds);
}

bool smt::unpackExprDag(std::string_view Buf, size_t &Pos,
                        std::vector<vir::LExprRef> &Roots) {
  Roots.clear();
  uint32_t NodeCount = 0;
  if (!wire::unpackU32(Buf, Pos, NodeCount))
    return false;
  // Each node costs at least 14 bytes on the wire; reject counts the
  // remaining payload cannot possibly hold before allocating.
  if (NodeCount > (Buf.size() - Pos) / 14 + 1)
    return false;
  std::vector<vir::LExprRef> Nodes;
  Nodes.reserve(NodeCount);
  for (uint32_t I = 0; I < NodeCount; ++I) {
    uint8_t OpTag = 0, SortTag = 0;
    std::string Name;
    uint64_t IntBits = 0;
    uint32_t Argc = 0;
    if (!wire::unpackU8(Buf, Pos, OpTag) ||
        !wire::unpackU8(Buf, Pos, SortTag) || !unpackBytes(Buf, Pos, Name) ||
        !wire::unpackU64(Buf, Pos, IntBits) ||
        !wire::unpackU32(Buf, Pos, Argc))
      return false;
    if (OpTag > MaxOpTag || SortTag > MaxSortTag)
      return false;
    std::vector<vir::LExprRef> Args;
    Args.reserve(Argc);
    for (uint32_t A = 0; A < Argc; ++A) {
      uint32_t ArgId = 0;
      // Child-before-parent order: args may only index backward.
      if (!wire::unpackU32(Buf, Pos, ArgId) || ArgId >= I)
        return false;
      Args.push_back(Nodes[ArgId]);
    }
    Nodes.push_back(vir::internRaw(static_cast<vir::LOp>(OpTag),
                                   static_cast<vir::Sort>(SortTag),
                                   std::move(Name),
                                   static_cast<int64_t>(IntBits),
                                   std::move(Args)));
  }
  uint32_t RootCount = 0;
  if (!wire::unpackU32(Buf, Pos, RootCount))
    return false;
  if (RootCount > NodeCount)
    return false;
  Roots.reserve(RootCount);
  for (uint32_t I = 0; I < RootCount; ++I) {
    uint32_t Id = 0;
    if (!wire::unpackU32(Buf, Pos, Id) || Id >= NodeCount)
      return false;
    Roots.push_back(Nodes[Id]);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Request / response bodies
//===----------------------------------------------------------------------===//

void smt::packInit(std::string &Out, const SolverOptions &Opts) {
  wire::packU32(Out, Opts.TimeoutMs);
  wire::packU32(Out, static_cast<uint32_t>(Opts.MaxModelChars));
  packBytes(Out, Opts.Profile.Name);
  wire::packU32(Out, static_cast<uint32_t>(Opts.Profile.Params.size()));
  for (const auto &[K, V] : Opts.Profile.Params) {
    packBytes(Out, K);
    packBytes(Out, V);
  }
  packExprDag(Out, Opts.BackgroundAxioms);
}

bool smt::unpackInit(std::string_view Buf, size_t &Pos, SolverOptions &Opts) {
  uint32_t Timeout = 0, ModelChars = 0, ParamCount = 0;
  if (!wire::unpackU32(Buf, Pos, Timeout) ||
      !wire::unpackU32(Buf, Pos, ModelChars) ||
      !unpackBytes(Buf, Pos, Opts.Profile.Name) ||
      !wire::unpackU32(Buf, Pos, ParamCount))
    return false;
  Opts.TimeoutMs = Timeout;
  Opts.MaxModelChars = ModelChars;
  Opts.Profile.Params.clear();
  for (uint32_t I = 0; I < ParamCount; ++I) {
    std::string K, V;
    if (!unpackBytes(Buf, Pos, K) || !unpackBytes(Buf, Pos, V))
      return false;
    Opts.Profile.Params.emplace_back(std::move(K), std::move(V));
  }
  return unpackExprDag(Buf, Pos, Opts.BackgroundAxioms);
}

void smt::packCheckValid(std::string &Out, const vir::LExprRef &Guard,
                         const vir::LExprRef &Goal) {
  packExprDag(Out, {Guard, Goal});
}

bool smt::unpackCheckValid(std::string_view Buf, size_t &Pos,
                           vir::LExprRef &Guard, vir::LExprRef &Goal) {
  std::vector<vir::LExprRef> Roots;
  if (!unpackExprDag(Buf, Pos, Roots) || Roots.size() != 2)
    return false;
  Guard = std::move(Roots[0]);
  Goal = std::move(Roots[1]);
  return true;
}

void smt::packResult(std::string &Out, const CheckResult &R) {
  wire::packU8(Out, static_cast<uint8_t>(R.Status));
  packBytes(Out, R.Detail);
  uint64_t Bits = 0;
  static_assert(sizeof(Bits) == sizeof(R.TimeMs));
  std::memcpy(&Bits, &R.TimeMs, sizeof(Bits));
  wire::packU64(Out, Bits);
}

bool smt::unpackResult(std::string_view Buf, size_t &Pos, CheckResult &R) {
  uint8_t Status = 0;
  uint64_t Bits = 0;
  if (!wire::unpackU8(Buf, Pos, Status) || !unpackBytes(Buf, Pos, R.Detail) ||
      !wire::unpackU64(Buf, Pos, Bits))
    return false;
  if (Status > static_cast<uint8_t>(CheckStatus::ResourceLimit))
    return false;
  R.Status = static_cast<CheckStatus>(Status);
  std::memcpy(&R.TimeMs, &Bits, sizeof(Bits));
  R.Retries = 0;
  return true;
}

void smt::packBeginSession(std::string &Out, unsigned TimeoutMs,
                           const std::vector<vir::LExprRef> &Prefix) {
  wire::packU32(Out, TimeoutMs);
  packExprDag(Out, Prefix);
}

bool smt::unpackBeginSession(std::string_view Buf, size_t &Pos,
                             unsigned &TimeoutMs,
                             std::vector<vir::LExprRef> &Prefix) {
  uint32_t Timeout = 0;
  if (!wire::unpackU32(Buf, Pos, Timeout))
    return false;
  TimeoutMs = Timeout;
  return unpackExprDag(Buf, Pos, Prefix);
}

void smt::packCheckSession(std::string &Out,
                           const std::vector<vir::LExprRef> &Extra,
                           const vir::LExprRef &Goal) {
  std::vector<vir::LExprRef> Roots = Extra;
  Roots.push_back(Goal);
  packExprDag(Out, Roots);
}

bool smt::unpackCheckSession(std::string_view Buf, size_t &Pos,
                             std::vector<vir::LExprRef> &Extra,
                             vir::LExprRef &Goal) {
  std::vector<vir::LExprRef> Roots;
  if (!unpackExprDag(Buf, Pos, Roots) || Roots.empty())
    return false;
  Goal = std::move(Roots.back());
  Roots.pop_back();
  Extra = std::move(Roots);
  return true;
}

//===----------------------------------------------------------------------===//
// Framed pipe I/O
//===----------------------------------------------------------------------===//

PipeStatus smt::writeFrame(int Fd, wire::MsgType Type,
                           std::string_view Payload) {
  std::string Frame = wire::packFrame(Type, Payload);
  const char *P = Frame.data();
  size_t Len = Frame.size();
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errno == EPIPE ? PipeStatus::Eof : PipeStatus::Error;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return PipeStatus::Ok;
}

PipeStatus smt::readFrame(int Fd, std::string &Acc, wire::MsgType &Type,
                          std::string &Payload, int TimeoutMs) {
  // The deadline covers the whole frame: a worker that dribbles a
  // header and then hangs still trips the watchdog.
  struct pollfd Pfd = {Fd, POLLIN, 0};
  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    std::string_view Body;
    size_t FrameLen = 0;
    wire::FrameStatus FS =
        wire::peekFrame(Acc, Type, Body, FrameLen, WorkerMaxPayloadBytes);
    if (FS == wire::FrameStatus::Ok) {
      Payload.assign(Body.data(), Body.size());
      Acc.erase(0, FrameLen);
      return PipeStatus::Ok;
    }
    if (FS != wire::FrameStatus::NeedMore)
      return PipeStatus::Malformed;

    int Remaining = -1;
    if (TimeoutMs >= 0) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        return PipeStatus::Timeout;
      Remaining = static_cast<int>(Left);
    }
    int R = ::poll(&Pfd, 1, Remaining);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return PipeStatus::Error;
    }
    if (R == 0)
      return PipeStatus::Timeout;
    char Buf[65536];
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return PipeStatus::Error;
    }
    if (N == 0)
      return PipeStatus::Eof;
    Acc.append(Buf, static_cast<size_t>(N));
  }
}
