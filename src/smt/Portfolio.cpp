//===- Portfolio.cpp - Portfolio-tactic solving engine ---------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "smt/Portfolio.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

using namespace vcdryad;
using namespace vcdryad::smt;

//===----------------------------------------------------------------------===//
// Profile registry
//===----------------------------------------------------------------------===//

const std::vector<TacticProfile> &smt::builtinProfiles() {
  // Parameter names are z3::solver parameter names (bare, not the
  // "smt."-prefixed global aliases). Diversity beats tuning here:
  // each profile flips a different axis of the search — arithmetic
  // core, quantifier instantiation, decision randomization — because
  // a straggler that diverges under one heuristic family often
  // closes quickly under a sibling family.
  static const std::vector<TacticProfile> Profiles = {
      // 0. The stock strategy the rest of the pipeline uses.
      {"default", {}},
      // 1. E-matching only (no model-based quantifier instantiation).
      //    The set-ordering atoms lower to array-property-fragment
      //    quantifiers; when MBQI thrashes on their candidate models,
      //    pattern instantiation alone settles faster. auto_config
      //    must be off or Z3 re-enables MBQI behind the flag. First
      //    diversifier because it is the strongest on this corpus: it
      //    alone closes the SLL_merge sorted-merge straggler and is
      //    the fastest lane on the multiset postconditions.
      {"no-mbqi", {{"auto_config", "false"}, {"mbqi", "false"}}},
      // 2. Legacy simplex arithmetic core instead of the new solver:
      //    different pivoting on the dense difference constraints the
      //    footprint guards produce.
      {"arith-simplex", {{"arith.solver", "2"}}},
      // 3. Reseeded decision heuristics: natural-proof guards are one
      //    connected symbol graph, so variable-order luck dominates
      //    divergent runs; a different seed redraws it.
      {"reseed", {{"random_seed", "17"}, {"seed", "17"}}},
      // 4. Fixed auto-configuration with relevancy propagation off:
      //    forces eager case splits, which flips the exploration
      //    order of the ghost-guard disjunctions.
      {"eager-case-split", {{"auto_config", "false"}, {"relevancy", "0"}}},
  };
  return Profiles;
}

const TacticProfile *smt::findProfile(const std::string &Name) {
  for (const TacticProfile &P : builtinProfiles())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

std::vector<TacticProfile>
smt::resolvePortfolio(const std::vector<std::string> &Names, unsigned Width,
                      std::string &Error) {
  std::vector<TacticProfile> Lanes;
  if (Names.empty()) {
    Lanes = builtinProfiles();
  } else {
    for (const std::string &N : Names) {
      const TacticProfile *P = findProfile(N);
      if (!P) {
        Error = "unknown tactic profile '" + N + "' (known:";
        for (const TacticProfile &K : builtinProfiles())
          Error += " " + K.Name;
        Error += ")";
        return {};
      }
      Lanes.push_back(*P);
    }
  }
  if (Width != 0 && Lanes.size() > Width)
    Lanes.resize(Width);
  return Lanes;
}

//===----------------------------------------------------------------------===//
// The race
//===----------------------------------------------------------------------===//

int smt::pickPortfolioWinner(const std::vector<LaneOutcome> &Lanes) {
  for (size_t I = 0; I != Lanes.size(); ++I)
    if (Lanes[I].Decisive)
      return static_cast<int>(I);
  return -1;
}

PortfolioResult smt::checkPortfolio(const SolverOptions &Base,
                                    const std::vector<TacticProfile> &Lanes,
                                    const vir::LExprRef &Guard,
                                    const vir::LExprRef &Goal) {
  PortfolioResult PR;
  const size_t K = Lanes.empty() ? 1 : Lanes.size();

  // Lane solvers are created up front and serially: the very first
  // z3::context construction in a process touches Z3's global
  // parameter tables, and concurrent portfolio races (the service
  // escalates several functions at once) must not interleave there.
  std::vector<std::unique_ptr<SmtSolver>> Solvers(K);
  std::vector<LaneOutcome> Outs(K);
  {
    static std::mutex CreateMu;
    std::lock_guard<std::mutex> Lock(CreateMu);
    for (size_t I = 0; I != K; ++I) {
      SolverOptions SO = Base;
      if (!Lanes.empty())
        SO.Profile = Lanes[I];
      Solvers[I] = createSolver(SO);
      Outs[I].Profile = SO.Profile.Name;
    }
  }

  if (K == 1) {
    // Degenerate portfolio: a plain one-shot check, no threads.
    Outs[0].R = Solvers[0]->checkValid(Guard, Goal);
    Outs[0].Ran = true;
    Outs[0].Decisive = Outs[0].R.Status != CheckStatus::Unknown;
  } else {
    std::atomic<bool> Decided{false};
    auto RunLane = [&](size_t I) {
      // A sibling may have decided before this lane got scheduled;
      // skip the solve entirely then (Ran stays false).
      if (Decided.load(std::memory_order_acquire))
        return;
      CheckResult R = Solvers[I]->checkValid(Guard, Goal);
      Outs[I].R = std::move(R);
      Outs[I].Ran = true;
      Outs[I].Decisive = Outs[I].R.Status != CheckStatus::Unknown;
      if (Outs[I].Decisive &&
          !Decided.exchange(true, std::memory_order_acq_rel)) {
        // First decisive finisher cancels every sibling. Interrupting
        // a lane that has not started yet just raises its context's
        // cancellation flag, so a late starter exits immediately.
        for (size_t J = 0; J != K; ++J)
          if (J != I)
            Solvers[J]->interrupt();
      }
    };
    std::vector<std::thread> Threads;
    Threads.reserve(K - 1);
    for (size_t I = 1; I != K; ++I)
      Threads.emplace_back(RunLane, I);
    RunLane(0);
    for (std::thread &T : Threads)
      T.join();
  }

  for (const LaneOutcome &O : Outs)
    if (O.Ran) {
      ++PR.LanesRun;
      PR.TotalSolverMs += O.R.TimeMs;
    }

  int W = pickPortfolioWinner(Outs);
  PR.WinnerIndex = W;
  if (W >= 0) {
    PR.R = Outs[W].R;
    PR.WinnerProfile = Outs[W].Profile;
    return PR;
  }
  // No decisive lane: surface the lowest-indexed lane that actually
  // ran — its Unknown reason (usually "timeout") describes the race
  // better than a sibling's "canceled".
  for (const LaneOutcome &O : Outs)
    if (O.Ran) {
      PR.R = O.R;
      return PR;
    }
  PR.R.Detail = "portfolio: no lane ran";
  return PR;
}
