//===- VcHash.cpp - Stable hashing of proof obligations --------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "smt/VcHash.h"

#include "support/Hash.h"

#include <unordered_map>
#include <vector>

using namespace vcdryad;
using namespace vcdryad::smt;
using namespace vcdryad::vir;

// Expression hashing delegates to vir::stableExprHash: interned nodes
// carry their content digest (same (op, sort, name, intval, arity,
// child digests) serialization, computed once at intern time), so the
// common case is O(1) instead of a full DAG walk. Legacy un-interned
// nodes fall back to the memoized iterative walk inside
// stableExprHash, which produces the identical digest — cache keys are
// unchanged from the pre-interning scheme.

uint64_t smt::hashExpr(const LExprRef &E) {
  return vir::stableExprHash(E);
}

uint64_t smt::hashSolverOptions(const SolverOptions &Opts) {
  Fnv1a H;
  H.u64(Opts.TimeoutMs);
  H.u64(Opts.BackgroundAxioms.size());
  for (const LExprRef &Ax : Opts.BackgroundAxioms)
    H.u64(vir::stableExprHash(Ax));
  return H.digest();
}

uint64_t smt::hashObligation(const LExprRef &Guard, const LExprRef &Goal,
                             const SolverOptions &Opts, uint64_t Salt) {
  Fnv1a H;
  H.u64(Salt);
  H.u64(vir::stableExprHash(Guard));
  H.u64(vir::stableExprHash(Goal));
  H.u64(hashSolverOptions(Opts));
  return H.digest();
}

uint64_t smt::hashFunctionKey(uint64_t ContentFingerprint,
                              uint64_t PipelineFingerprint,
                              const SolverOptions &Opts,
                              bool CheckVacuity) {
  Fnv1a H;
  H.u64(1); // Manifest-key format version.
  H.u64(ContentFingerprint);
  H.u64(PipelineFingerprint);
  H.u64(hashSolverOptions(Opts));
  H.u64(CheckVacuity ? 1 : 0);
  return H.digest();
}
