//===- VcHash.cpp - Stable hashing of proof obligations --------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "smt/VcHash.h"

#include "support/Hash.h"

#include <unordered_map>
#include <vector>

using namespace vcdryad;
using namespace vcdryad::smt;
using namespace vcdryad::vir;

namespace {

/// Hash of one node given its children's hashes. The serialization is
/// (op, sort, name, intval, arity, child digests) — child order
/// matters, so Implies(a,b) and Implies(b,a) differ.
uint64_t hashNode(const LExpr &E, const std::vector<uint64_t> &Kids) {
  Fnv1a H;
  H.u64(static_cast<uint64_t>(E.Op));
  H.u64(static_cast<uint64_t>(E.ExprSort));
  H.str(E.Name);
  H.i64(E.IntVal);
  H.u64(Kids.size());
  for (uint64_t K : Kids)
    H.u64(K);
  return H.digest();
}

/// Iterative post-order with per-node memoization. VC guards are flat
/// conjunctions over a heavily shared DAG: memoization keeps the walk
/// linear in distinct nodes, and the explicit stack keeps deep
/// Store/Select chains from overflowing the call stack.
class ExprHasher {
public:
  uint64_t hash(const LExprRef &Root) {
    struct Frame {
      const LExpr *Node;
      size_t NextChild = 0;
      std::vector<uint64_t> Kids;
    };
    std::vector<Frame> Stack;
    Stack.push_back(Frame{Root.get(), 0, {}});
    uint64_t Result = 0;
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.NextChild < F.Node->Args.size()) {
        const LExpr *Child = F.Node->Args[F.NextChild].get();
        auto It = Memo.find(Child);
        if (It != Memo.end()) {
          F.Kids.push_back(It->second);
          ++F.NextChild;
        } else {
          Stack.push_back(Frame{Child, 0, {}});
        }
        continue;
      }
      uint64_t D = hashNode(*F.Node, F.Kids);
      Memo.emplace(F.Node, D);
      Result = D;
      Stack.pop_back();
      if (!Stack.empty()) {
        Stack.back().Kids.push_back(D);
        ++Stack.back().NextChild;
      }
    }
    return Result;
  }

private:
  std::unordered_map<const LExpr *, uint64_t> Memo;
};

} // namespace

uint64_t smt::hashExpr(const LExprRef &E) {
  return ExprHasher().hash(E);
}

uint64_t smt::hashSolverOptions(const SolverOptions &Opts) {
  Fnv1a H;
  H.u64(Opts.TimeoutMs);
  H.u64(Opts.BackgroundAxioms.size());
  ExprHasher Hasher; // One memo across axioms (they share subterms).
  for (const LExprRef &Ax : Opts.BackgroundAxioms)
    H.u64(Hasher.hash(Ax));
  return H.digest();
}

uint64_t smt::hashObligation(const LExprRef &Guard, const LExprRef &Goal,
                             const SolverOptions &Opts, uint64_t Salt) {
  ExprHasher Hasher; // Guard and goal share the passified DAG.
  Fnv1a H;
  H.u64(Salt);
  H.u64(Hasher.hash(Guard));
  H.u64(Hasher.hash(Goal));
  H.u64(hashSolverOptions(Opts));
  return H.digest();
}
