//===- WorkerProto.h - Solver-worker wire protocol --------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed request/response protocol spoken over pipes
/// between the supervised solver pool (service/SolverPool) and a
/// `vcdryad solve-worker` child process. It reuses the wire/Codec
/// framing (magic + version + type + length + checksum) and pack
/// primitives; the worker-specific payloads here are the expression
/// DAG serialization and the per-operation request/response bodies.
///
/// Payload schema (little-endian; `bytes` = u32-length-prefixed):
///
///   ExprDag        = nodes:u32 { op:u8 sort:u8 name:bytes intval:u64
///                    args:u32[u32] } roots:u32[u32]
///                    (nodes in child-before-parent order; arg and
///                    root values index the node list)
///   WkInit         = timeout_ms:u32 max_model_chars:u32
///                    profile_name:bytes params:{bytes bytes}[u32]
///                    axioms:ExprDag
///   WkCheckValid   = dag:ExprDag with exactly 2 roots [guard, goal]
///   WkResult       = status:u8 detail:bytes time_ms:u64(double bits)
///   WkBeginSession = timeout_ms:u32 prefix:ExprDag
///   WkCheckSession = dag:ExprDag; last root is the goal, the rest
///                    are the extra conjuncts
///   WkBeginShared  = timeout_ms:u32
///   WkPushScope    = prefix:ExprDag
///   WkEndSession / WkPopScope / WkOk = (empty)
///   WkBool         = ok:u8
///
/// The DAG codec re-interns nodes on the receiving side with
/// vir::internRaw, so a round-tripped expression is node-for-node the
/// structure that was sent (factories are bypassed: the wire carries
/// already-canonical terms). Hash-consing then makes repeated
/// subterms across the messages of one session resolve to the same
/// nodes in the worker, which keeps its lowering memo warm exactly
/// like the in-process session path.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SMT_WORKERPROTO_H
#define VCDRYAD_SMT_WORKERPROTO_H

#include "smt/Solver.h"
#include "vir/LExpr.h"
#include "wire/Codec.h"

#include <string>
#include <string_view>
#include <vector>

namespace vcdryad {
namespace smt {

/// Frame payload cap on the worker pipes. Unlike cache-server frames
/// (keys and verdicts, 4 MiB cap), one worker frame can carry a whole
/// function's guard-prefix DAG; SLL_rotate's is ~3.5k conjuncts.
constexpr uint32_t WorkerMaxPayloadBytes = 256u << 20;

//===----------------------------------------------------------------------===//
// Long byte strings (u32-prefixed; wire::packString caps at 255)
//===----------------------------------------------------------------------===//

void packBytes(std::string &Out, std::string_view S);
bool unpackBytes(std::string_view Buf, size_t &Pos, std::string &S);

//===----------------------------------------------------------------------===//
// Expression DAGs
//===----------------------------------------------------------------------===//

/// Serializes the DAG reachable from \p Roots, child-before-parent,
/// each shared node exactly once.
void packExprDag(std::string &Out, const std::vector<vir::LExprRef> &Roots);

/// Reconstructs a packed DAG through the interning arena. False on a
/// malformed payload (bad indices, out-of-range op/sort tags).
bool unpackExprDag(std::string_view Buf, size_t &Pos,
                   std::vector<vir::LExprRef> &Roots);

//===----------------------------------------------------------------------===//
// Request / response bodies
//===----------------------------------------------------------------------===//

void packInit(std::string &Out, const SolverOptions &Opts);
bool unpackInit(std::string_view Buf, size_t &Pos, SolverOptions &Opts);

void packCheckValid(std::string &Out, const vir::LExprRef &Guard,
                    const vir::LExprRef &Goal);
bool unpackCheckValid(std::string_view Buf, size_t &Pos,
                      vir::LExprRef &Guard, vir::LExprRef &Goal);

void packResult(std::string &Out, const CheckResult &R);
bool unpackResult(std::string_view Buf, size_t &Pos, CheckResult &R);

void packBeginSession(std::string &Out, unsigned TimeoutMs,
                      const std::vector<vir::LExprRef> &Prefix);
bool unpackBeginSession(std::string_view Buf, size_t &Pos,
                        unsigned &TimeoutMs,
                        std::vector<vir::LExprRef> &Prefix);

void packCheckSession(std::string &Out,
                      const std::vector<vir::LExprRef> &Extra,
                      const vir::LExprRef &Goal);
bool unpackCheckSession(std::string_view Buf, size_t &Pos,
                        std::vector<vir::LExprRef> &Extra,
                        vir::LExprRef &Goal);

//===----------------------------------------------------------------------===//
// Framed pipe I/O
//===----------------------------------------------------------------------===//

enum class PipeStatus {
  Ok,        ///< One frame read/written.
  Eof,       ///< Peer closed the pipe (worker exit / parent gone).
  Timeout,   ///< Deadline expired before a complete frame arrived.
  Malformed, ///< Framing violation; the stream is unusable.
  Error,     ///< read/write/poll failure (errno preserved).
};

/// Writes one frame; short writes and EINTR are retried. Eof on
/// EPIPE (requires SIGPIPE to be ignored, which both endpoints do).
PipeStatus writeFrame(int Fd, wire::MsgType Type, std::string_view Payload);

/// Reads one complete frame into \p Type / \p Payload, buffering
/// partial reads in \p Acc across calls. \p TimeoutMs < 0 blocks
/// indefinitely; the deadline spans the whole frame, not one read.
PipeStatus readFrame(int Fd, std::string &Acc, wire::MsgType &Type,
                     std::string &Payload, int TimeoutMs);

} // namespace smt
} // namespace vcdryad

#endif // VCDRYAD_SMT_WORKERPROTO_H
