//===- Portfolio.h - Portfolio-tactic solving engine ------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The portfolio escalation engine: races K diverse solver
/// configurations (tactic profiles) against one proof obligation and
/// takes the first decisive answer. Natural-proof stragglers that
/// diverge under one strategy often close instantly under another —
/// the same portfolio insight GRASShopper and SLEEK/HIP exploit when
/// discharging entailments through multiple backend configurations —
/// so the escalation rung of the timeout ladder runs the unsliced VC
/// through a portfolio instead of only re-budgeting one strategy.
///
/// Concurrency and cancellation: every lane owns a private solver
/// (its own z3::context), so lanes race on separate threads. The
/// first lane to return Valid or Invalid cooperatively interrupts the
/// siblings (SmtSolver::interrupt); interrupted lanes come back
/// Unknown("canceled") and are never decisive.
///
/// Determinism: a decisive answer is the same verdict whichever lane
/// produces it (all lanes solve the same obligation with a sound
/// solver), so batch verdicts are reproducible by construction. The
/// *identity* of the winning lane is tie-broken deterministically —
/// lowest portfolio index among the decisive finishers — and is only
/// reported inside the timing-gated JSON fields (`vc_stats`), keeping
/// the `--json-times=off` report byte-identical across runs.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SMT_PORTFOLIO_H
#define VCDRYAD_SMT_PORTFOLIO_H

#include "smt/Solver.h"

#include <string>
#include <vector>

namespace vcdryad {
namespace smt {

/// Outcome of one portfolio lane.
struct LaneOutcome {
  CheckResult R;
  std::string Profile;
  /// Valid or Invalid — an answer worth cancelling siblings for.
  bool Decisive = false;
  /// The lane's check ran to completion or was interrupted mid-solve;
  /// false when the lane was skipped because a sibling had already
  /// decided before this lane started.
  bool Ran = false;
};

struct PortfolioResult {
  /// The winning lane's result; when no lane is decisive, the
  /// lowest-indexed lane that ran (its Unknown carries the most
  /// representative reason — typically "timeout").
  CheckResult R;
  int WinnerIndex = -1; ///< -1: no decisive lane.
  std::string WinnerProfile;
  unsigned LanesRun = 0;
  /// Sum of solver time across every lane that ran (the budget the
  /// race actually consumed; R.TimeMs is only the winner's).
  double TotalSolverMs = 0.0;
};

/// The built-in tactic profiles, in deterministic portfolio order.
/// Index 0 is always the stock strategy ("default"); later entries
/// diversify the search (arithmetic core, quantifier instantiation,
/// restart/seed randomization) without changing the theory setup.
const std::vector<TacticProfile> &builtinProfiles();

/// Looks a profile up by name; nullptr when unknown.
const TacticProfile *findProfile(const std::string &Name);

/// Resolves a portfolio spec into lane profiles. \p Names selects
/// profiles by name in order (empty: the built-in order); \p Width
/// truncates the list (0: keep all). Unknown names clear the result
/// and set \p Error to a message listing the known profiles.
std::vector<TacticProfile>
resolvePortfolio(const std::vector<std::string> &Names, unsigned Width,
                 std::string &Error);

/// Pure winner selection — the deterministic tie-break: the
/// lowest-indexed decisive lane wins; -1 when none is decisive.
int pickPortfolioWinner(const std::vector<LaneOutcome> &Lanes);

/// Races one obligation (\p Guard entails \p Goal) through \p Lanes,
/// each lane a fresh solver built from \p Base with that lane's
/// profile overrides. First decisive lane cancels the siblings.
/// With fewer than two lanes this degenerates to a plain one-shot
/// check (no threads spawned).
PortfolioResult checkPortfolio(const SolverOptions &Base,
                               const std::vector<TacticProfile> &Lanes,
                               const vir::LExprRef &Guard,
                               const vir::LExprRef &Goal);

} // namespace smt
} // namespace vcdryad

#endif // VCDRYAD_SMT_PORTFOLIO_H
