//===- Worker.h - Out-of-process solver worker ------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `vcdryad solve-worker` entry point: a single-threaded loop
/// that hosts one in-process Z3 solver behind the WorkerProto framing
/// on stdin/stdout. The worker applies its own resource limits
/// (RLIMIT_AS / RLIMIT_CPU) so a runaway solve kills only this
/// process; the supervising pool classifies the death and retries.
///
/// Deterministic fault injection, honored *only* here (the parent
/// never reads it): VCDRYAD_FAULT=<kind>:<hex-prefix> with kind one
/// of crash / hang / oom (optionally suffixed -once). The prefix is
/// matched against the goal's stable content hash in lowercase hex;
/// "*" or an empty prefix matches every obligation. A -once fault is
/// suppressed when VCDRYAD_FAULT_RETRY is set — the pool sets that
/// variable in workers it respawns for a bounded retry, so
/// "crash-once:<h>" deterministically exercises the retried-Valid
/// path end-to-end.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SMT_WORKER_H
#define VCDRYAD_SMT_WORKER_H

#include "vir/LExpr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vcdryad {
namespace smt {

/// Worker exit codes the supervisor classifies. Anything else (and
/// any signal death) is a crash.
enum WorkerExitCode {
  WorkerExitOk = 0,
  WorkerExitProtocol = 2,  ///< Malformed frame / unexpected message.
  WorkerExitOom = 77,      ///< Self-detected allocation failure.
  WorkerExitCpuLimit = 78, ///< SIGXCPU (RLIMIT_CPU soft limit).
};

/// A parsed VCDRYAD_FAULT specification.
struct FaultSpec {
  enum class Kind { None, Crash, Hang, Oom };
  Kind K = Kind::None;
  bool Once = false;
  std::string HexPrefix;

  /// Parses "<kind>[-once]:<hex-prefix>"; Kind::None on null/bad input.
  static FaultSpec parse(const char *Env);

  /// True when this spec targets the obligation hashed \p GoalHash.
  bool matches(uint64_t GoalHash) const;
};

/// The obligation identity faults are targeted by: the goal's stable
/// content hash, identical across processes, runs, and ladder rungs
/// (escalation re-checks the same goal under a wider guard).
uint64_t faultTargetHash(const vir::LExprRef &Goal);

/// Runs the worker loop on stdin/stdout until EOF. \p Args are the
/// argv entries after `solve-worker`: --mem-mb=N (RLIMIT_AS),
/// --cpu-s=N (RLIMIT_CPU). Returns the process exit code.
int runSolveWorker(const std::vector<std::string> &Args);

} // namespace smt
} // namespace vcdryad

#endif // VCDRYAD_SMT_WORKER_H
