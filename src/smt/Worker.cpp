//===- Worker.cpp - Out-of-process solver worker ---------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "smt/Worker.h"

#include "smt/Solver.h"
#include "smt/WorkerProto.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sys/resource.h>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::smt;

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

FaultSpec FaultSpec::parse(const char *Env) {
  FaultSpec F;
  if (!Env || !*Env)
    return F;
  std::string S(Env);
  size_t Colon = S.find(':');
  std::string Kind = Colon == std::string::npos ? S : S.substr(0, Colon);
  F.HexPrefix = Colon == std::string::npos ? "" : S.substr(Colon + 1);
  if (Kind.size() > 5 && Kind.compare(Kind.size() - 5, 5, "-once") == 0) {
    F.Once = true;
    Kind.resize(Kind.size() - 5);
  }
  if (Kind == "crash")
    F.K = Kind::Crash;
  else if (Kind == "hang")
    F.K = Kind::Hang;
  else if (Kind == "oom")
    F.K = Kind::Oom;
  else
    F.K = Kind::None;
  return F;
}

bool FaultSpec::matches(uint64_t GoalHash) const {
  if (K == Kind::None)
    return false;
  if (HexPrefix.empty() || HexPrefix == "*")
    return true;
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(GoalHash));
  return std::strncmp(Hex, HexPrefix.c_str(), HexPrefix.size()) == 0;
}

uint64_t smt::faultTargetHash(const vir::LExprRef &Goal) {
  return vir::stableExprHash(Goal);
}

namespace {

[[noreturn]] void triggerOom() {
  // Allocate-and-touch until the limit bites. Under RLIMIT_AS the
  // mmap fails and operator new throws well before the safety cap;
  // the cap keeps an unlimited worker from hurting the host.
  constexpr size_t Chunk = 32u << 20;
  constexpr size_t SafetyCap = 1u << 30;
  std::vector<char *> Hog;
  size_t Total = 0;
  try {
    while (Total < SafetyCap) {
      char *P = new char[Chunk];
      for (size_t I = 0; I < Chunk; I += 4096)
        P[I] = static_cast<char>(I);
      Hog.push_back(P);
      Total += Chunk;
    }
  } catch (const std::bad_alloc &) {
  }
  _exit(WorkerExitOom);
}

void maybeInjectFault(const FaultSpec &Fault, const vir::LExprRef &Goal) {
  if (!Fault.matches(faultTargetHash(Goal)))
    return;
  switch (Fault.K) {
  case FaultSpec::Kind::Crash:
    std::abort();
  case FaultSpec::Kind::Hang:
    for (;;)
      ::pause(); // The parent's wall-clock watchdog reaps us.
  case FaultSpec::Kind::Oom:
    triggerOom();
  case FaultSpec::Kind::None:
    break;
  }
}

extern "C" void onCpuLimit(int) { _exit(WorkerExitCpuLimit); }

bool applyLimits(unsigned MemMb, unsigned CpuS) {
  if (MemMb > 0) {
    rlimit L{};
    L.rlim_cur = L.rlim_max = static_cast<rlim_t>(MemMb) << 20;
    if (::setrlimit(RLIMIT_AS, &L) != 0)
      return false;
  }
  if (CpuS > 0) {
    // Soft limit delivers SIGXCPU (caught -> distinct exit code);
    // the hard limit is a SIGKILL backstop if the handler is stuck.
    rlimit L{};
    L.rlim_cur = CpuS;
    L.rlim_max = CpuS + 5;
    if (::setrlimit(RLIMIT_CPU, &L) != 0)
      return false;
  }
  return true;
}

} // namespace

int smt::runSolveWorker(const std::vector<std::string> &Args) {
  unsigned MemMb = 0, CpuS = 0;
  for (const std::string &A : Args) {
    if (A.rfind("--mem-mb=", 0) == 0)
      MemMb = static_cast<unsigned>(std::strtoul(A.c_str() + 9, nullptr, 10));
    else if (A.rfind("--cpu-s=", 0) == 0)
      CpuS = static_cast<unsigned>(std::strtoul(A.c_str() + 8, nullptr, 10));
    else {
      std::fprintf(stderr, "solve-worker: unknown flag '%s'\n", A.c_str());
      return WorkerExitProtocol;
    }
  }
  // A parent that vanishes closes our pipes; the next write must
  // surface EPIPE, not kill us mid-classification.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGXCPU, onCpuLimit);
  if (!applyLimits(MemMb, CpuS)) {
    std::fprintf(stderr, "solve-worker: setrlimit failed: %s\n",
                 std::strerror(errno));
    return WorkerExitProtocol;
  }

  FaultSpec Fault = FaultSpec::parse(std::getenv("VCDRYAD_FAULT"));
  if (Fault.Once && std::getenv("VCDRYAD_FAULT_RETRY"))
    Fault.K = FaultSpec::Kind::None; // Retry workers skip -once faults.

  SolverOptions Opts;
  std::unique_ptr<SmtSolver> Solver;
  // Session expressions must outlive endSession (the lowering memo is
  // keyed by node address); the arena interns weakly, so the worker
  // pins every session root until the session ends.
  std::vector<vir::LExprRef> SessionPins;
  std::string Acc, Payload, Out;

  for (;;) {
    wire::MsgType Type;
    PipeStatus PS = readFrame(STDIN_FILENO, Acc, Type, Payload, -1);
    if (PS == PipeStatus::Eof)
      return WorkerExitOk; // Parent closed the pipe: normal shutdown.
    if (PS != PipeStatus::Ok)
      return WorkerExitProtocol;

    size_t Pos = 0;
    Out.clear();
    wire::MsgType RespType = wire::MsgType::WkOk;
    try {
      switch (Type) {
      case wire::MsgType::WkInit: {
        SolverOptions NewOpts;
        if (!unpackInit(Payload, Pos, NewOpts))
          return WorkerExitProtocol;
        Opts = std::move(NewOpts);
        Solver = createZ3Solver(Opts);
        SessionPins.clear();
        break;
      }
      case wire::MsgType::WkCheckValid: {
        vir::LExprRef Guard, Goal;
        if (!Solver || !unpackCheckValid(Payload, Pos, Guard, Goal))
          return WorkerExitProtocol;
        maybeInjectFault(Fault, Goal);
        CheckResult R = Solver->checkValid(Guard, Goal);
        SessionPins.clear(); // checkValid ends any active session.
        packResult(Out, R);
        RespType = wire::MsgType::WkResult;
        break;
      }
      case wire::MsgType::WkBeginSession: {
        unsigned TimeoutMs = 0;
        std::vector<vir::LExprRef> Prefix;
        if (!Solver || !unpackBeginSession(Payload, Pos, TimeoutMs, Prefix))
          return WorkerExitProtocol;
        SessionPins = Prefix;
        Solver->beginSession(Prefix, TimeoutMs);
        break;
      }
      case wire::MsgType::WkCheckSession: {
        std::vector<vir::LExprRef> Extra;
        vir::LExprRef Goal;
        if (!Solver || !unpackCheckSession(Payload, Pos, Extra, Goal))
          return WorkerExitProtocol;
        SessionPins.insert(SessionPins.end(), Extra.begin(), Extra.end());
        SessionPins.push_back(Goal);
        maybeInjectFault(Fault, Goal);
        CheckResult R = Solver->checkSession(Extra, Goal);
        packResult(Out, R);
        RespType = wire::MsgType::WkResult;
        break;
      }
      case wire::MsgType::WkEndSession:
        if (!Solver)
          return WorkerExitProtocol;
        Solver->endSession();
        SessionPins.clear();
        break;
      case wire::MsgType::WkBeginShared: {
        uint32_t TimeoutMs = 0;
        if (!Solver || !wire::unpackU32(Payload, Pos, TimeoutMs))
          return WorkerExitProtocol;
        SessionPins.clear();
        Solver->beginSharedSession(TimeoutMs);
        break;
      }
      case wire::MsgType::WkPushScope: {
        std::vector<vir::LExprRef> Prefix;
        if (!Solver || !unpackExprDag(Payload, Pos, Prefix))
          return WorkerExitProtocol;
        // Scope pins persist across popSessionScope by contract (the
        // lowering memo spans the whole shared session).
        SessionPins.insert(SessionPins.end(), Prefix.begin(), Prefix.end());
        bool Ok = Solver->pushSessionScope(Prefix);
        wire::packU8(Out, Ok ? 1 : 0);
        RespType = wire::MsgType::WkBool;
        break;
      }
      case wire::MsgType::WkPopScope:
        if (!Solver)
          return WorkerExitProtocol;
        Solver->popSessionScope();
        break;
      default:
        return WorkerExitProtocol;
      }
    } catch (const std::bad_alloc &) {
      _exit(WorkerExitOom);
    }
    if (writeFrame(STDOUT_FILENO, RespType, Out) != PipeStatus::Ok)
      return WorkerExitProtocol;
  }
}
