//===- Solver.h - SMT solving interface -------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface the verifier talks to. The natural-proof
/// pipeline produces quantifier-free VCs except for the set-ordering
/// atoms (array property fragment) and the optional quantified-axiom
/// ablation mode; the backend (Z3) is expected to decide these.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SMT_SOLVER_H
#define VCDRYAD_SMT_SOLVER_H

#include "vir/LExpr.h"

#include <memory>
#include <string>
#include <vector>

namespace vcdryad {
namespace smt {

enum class CheckStatus {
  Valid,   ///< Guard entails Goal.
  Invalid, ///< Counterexample found.
  Unknown, ///< Timeout / incompleteness.
};

struct CheckResult {
  CheckStatus Status = CheckStatus::Unknown;
  /// Counterexample model (Invalid) or solver message (Unknown).
  std::string Detail;
  double TimeMs = 0.0;
};

struct SolverOptions {
  unsigned TimeoutMs = 60000;
  /// Background facts added to every query (quantified-axiom mode).
  std::vector<vir::LExprRef> BackgroundAxioms;
  /// Cap on the counterexample text kept in CheckResult::Detail.
  size_t MaxModelChars = 4000;
};

/// One solving session; reusable across checks of one program.
///
/// Thread-safety contract: one SmtSolver instance must only be used by
/// one thread at a time (each instance owns a private z3::context and
/// lowering cache), but *distinct* instances are independent and may
/// solve concurrently — the verification service creates one solver
/// per worker thread. createZ3Solver() itself touches Z3's global
/// parameter tables during the very first context construction, so the
/// service serializes solver creation.
class SmtSolver {
public:
  virtual ~SmtSolver() = default;

  /// Checks that \p Guard entails \p Goal (both Bool-sorted).
  virtual CheckResult checkValid(const vir::LExprRef &Guard,
                                 const vir::LExprRef &Goal) = 0;

  /// Renders Guard ∧ ¬Goal as SMT-LIB2 text (debugging, `--smtlib`).
  virtual std::string toSmtLib(const vir::LExprRef &Guard,
                               const vir::LExprRef &Goal) = 0;
};

std::unique_ptr<SmtSolver> createZ3Solver(const SolverOptions &Opts = {});

} // namespace smt
} // namespace vcdryad

#endif // VCDRYAD_SMT_SOLVER_H
