//===- Solver.h - SMT solving interface -------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface the verifier talks to. The natural-proof
/// pipeline produces quantifier-free VCs except for the set-ordering
/// atoms (array property fragment) and the optional quantified-axiom
/// ablation mode; the backend (Z3) is expected to decide these.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SMT_SOLVER_H
#define VCDRYAD_SMT_SOLVER_H

#include "vir/LExpr.h"

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vcdryad {
namespace smt {

enum class CheckStatus {
  Valid,   ///< Guard entails Goal.
  Invalid, ///< Counterexample found.
  Unknown, ///< Timeout / incompleteness.
  /// An out-of-process solver worker died (segfault, abort, external
  /// kill) while solving this obligation — after the bounded retry.
  /// Only the isolated path produces this; it is never cached.
  Crashed,
  /// An out-of-process worker hit a resource limit (RLIMIT_AS memory
  /// cap, RLIMIT_CPU, or the parent's wall-clock watchdog). Like
  /// Crashed, per-obligation, post-retry, and never cached.
  ResourceLimit,
};

struct CheckResult {
  CheckStatus Status = CheckStatus::Unknown;
  /// Counterexample model (Invalid) or solver message (Unknown).
  std::string Detail;
  double TimeMs = 0.0;
  /// Times this check was re-run in a fresh worker after a worker
  /// death (0 on the in-process path; at most 1 — retry is bounded).
  unsigned Retries = 0;
};

//===----------------------------------------------------------------------===//
// Timeout budgets
//
// Throughout the solver interface a timeout of 0 means *unlimited*
// (Z3's own convention for `-T:0`); it is a real value a user can
// request with `--timeout=0`, so it cannot double as an "unset"
// marker. APIs that want "fall back to the instance default" pass
// the explicit UseDefaultTimeout sentinel instead.
//===----------------------------------------------------------------------===//

/// Per-check budget sentinel: use the constructor-time default.
constexpr unsigned UseDefaultTimeout = 0xffffffffu;

/// Resolves a per-check budget against an instance default. 0 stays
/// 0 (unlimited); only the sentinel falls back.
constexpr unsigned resolveTimeout(unsigned PerCheck, unsigned Default) {
  return PerCheck == UseDefaultTimeout ? Default : PerCheck;
}

/// A named solver configuration for portfolio solving: parameter
/// overrides applied on top of the backend defaults. Values are
/// textual and coerced to the parameter's type (bool / unsigned /
/// double / symbol) by the backend. The empty profile (no overrides)
/// is the stock strategy.
struct TacticProfile {
  std::string Name = "default";
  std::vector<std::pair<std::string, std::string>> Params;
};

struct SolverOptions;

/// Pluggable solver construction: when set, createSolver() routes
/// through this hook instead of the in-process Z3 backend. The
/// isolated-worker pool installs itself here, so every creation site
/// (verifier, batch scheduler, portfolio lanes) picks up isolation
/// without knowing about it. The hook is *not* part of the
/// cache-keying option hash — isolation must not change verdicts, so
/// it must not change keys.
using SolverFactory =
    std::function<std::unique_ptr<class SmtSolver>(const SolverOptions &)>;

struct SolverOptions {
  /// Per-check budget in milliseconds; 0 = unlimited.
  unsigned TimeoutMs = 60000;
  /// Background facts added to every query (quantified-axiom mode).
  std::vector<vir::LExprRef> BackgroundAxioms;
  /// Cap on the counterexample text kept in CheckResult::Detail.
  size_t MaxModelChars = 4000;
  /// Parameter overrides of this solver's tactic profile.
  TacticProfile Profile;
  /// Optional construction hook (see SolverFactory). Null = in-process.
  SolverFactory MakeSolver;
};

/// One solving session; reusable across checks of one program.
///
/// Thread-safety contract: one SmtSolver instance must only be used by
/// one thread at a time (each instance owns a private z3::context and
/// lowering cache), but *distinct* instances are independent and may
/// solve concurrently — the verification service creates one solver
/// per worker thread. createZ3Solver() itself touches Z3's global
/// parameter tables during the very first context construction, so the
/// service serializes solver creation.
class SmtSolver {
public:
  virtual ~SmtSolver() = default;

  /// Checks that \p Guard entails \p Goal (both Bool-sorted). Ends
  /// any active incremental session first (the two modes share the
  /// lowering cache).
  virtual CheckResult checkValid(const vir::LExprRef &Guard,
                                 const vir::LExprRef &Goal) = 0;

  /// Renders Guard ∧ ¬Goal as SMT-LIB2 text (debugging, `--smtlib`).
  virtual std::string toSmtLib(const vir::LExprRef &Guard,
                               const vir::LExprRef &Goal) = 0;

  //===--------------------------------------------------------------------===//
  // Incremental sessions
  //
  // The obligations of one function share a long guard prefix (VC
  // generation appends assumptions in program order). A session
  // asserts that prefix (and the background axioms) once into a
  // persistent scoped solver; each obligation is then checked under
  // push/pop, adding only its own extra conjuncts and negated goal.
  // Solver parameters are set once per session, not per check.
  //
  // Contract: the caller must keep every expression passed to the
  // session alive until endSession() — lowered terms are memoized by
  // node address for the session's duration. Session checks skip
  // counterexample model extraction (they are the fast pass of the
  // escalation ladder; a confirming checkValid produces the model).
  //===--------------------------------------------------------------------===//

  /// Starts a session asserting \p Prefix once. \p TimeoutMs is the
  /// per-check budget: 0 requests an unlimited solve, and the
  /// UseDefaultTimeout sentinel falls back to the constructor-time
  /// default. Any previous session is ended.
  virtual void beginSession(const std::vector<vir::LExprRef> &Prefix,
                            unsigned TimeoutMs) = 0;

  /// Checks that prefix ∧ \p Extra entails \p Goal under push/pop.
  /// Returns Unknown if no session is active.
  virtual CheckResult checkSession(const std::vector<vir::LExprRef> &Extra,
                                   const vir::LExprRef &Goal) = 0;

  /// Tears down the session solver and the lowering memo.
  virtual void endSession() = 0;

  //===--------------------------------------------------------------------===//
  // Shared-prelude sessions
  //
  // Functions of one translation unit share their bottom frame — the
  // background axioms and solver parameters are identical for every
  // obligation of a file. A *shared* session asserts that frame once
  // and then stacks per-function scopes above it: pushSessionScope
  // asserts a function's guard prefix under a solver push, the usual
  // checkSession calls run against prefix ∧ frame, and
  // popSessionScope retracts exactly that function's assertions while
  // the frame (and its lowered terms) stay resident. The daemon's
  // fast pass uses this to pay axiom assertion once per file instead
  // of once per function.
  //
  // The lifetime contract is the session one, unchanged: every
  // expression passed to the shared frame *or to any scope* must
  // outlive endSession() — lowered terms are memoized by node address
  // for the whole shared session, across scope pops. The scheduler
  // satisfies this by sharing a session only across functions of one
  // plan (the plan owns every node). Backends that do not implement
  // scoping keep the default bodies — pushSessionScope returns false
  // and the scheduler falls back to one plain session per function,
  // so sharing is always an optimization, never a requirement.
  //===--------------------------------------------------------------------===//

  /// Starts a session whose prefix is empty (just the background
  /// axioms), intended as the base frame for stacked function scopes.
  virtual void beginSharedSession(unsigned TimeoutMs) {
    beginSession({}, TimeoutMs);
  }

  /// Stacks a scope asserting \p Prefix above the current session
  /// state. Returns false when the backend does not support scoping
  /// or no session is active; the caller then falls back to plain
  /// per-function sessions.
  virtual bool pushSessionScope(const std::vector<vir::LExprRef> &Prefix) {
    (void)Prefix;
    return false;
  }

  /// Retracts the most recent pushSessionScope. No-op without one.
  virtual void popSessionScope() {}

  /// Cooperatively interrupts a check running on another thread (the
  /// portfolio engine cancels losing lanes this way). The interrupted
  /// check returns Unknown. This is the only member safe to call
  /// concurrently with a running check — and because the cancellation
  /// flag can outlive the check it raced with, an interrupted
  /// instance must be discarded, not reused.
  virtual void interrupt() = 0;
};

std::unique_ptr<SmtSolver> createZ3Solver(const SolverOptions &Opts = {});

/// The creation entry point every solving site uses: defers to
/// Opts.MakeSolver when installed (isolated workers), else the
/// in-process Z3 backend. The in-process contract — one instance, one
/// thread; serialize creation — applies either way.
std::unique_ptr<SmtSolver> createSolver(const SolverOptions &Opts);

/// True when \p S is a final verdict the ladder should not escalate
/// and the cache should never store: a crash or resource-limit event.
constexpr bool isFailureEvent(CheckStatus S) {
  return S == CheckStatus::Crashed || S == CheckStatus::ResourceLimit;
}

} // namespace smt
} // namespace vcdryad

#endif // VCDRYAD_SMT_SOLVER_H
