//===- Verifier.h - End-to-end verification driver --------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: parse -> type-check ->
/// normalize -> natural-proof instrumentation -> VIR translation ->
/// passification -> VC generation -> SMT solving, with per-function
/// and per-VC results. This is what the CLI, the tests, the examples
/// and the benchmark harnesses all drive.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VERIFIER_VERIFIER_H
#define VCDRYAD_VERIFIER_VERIFIER_H

#include "cfront/Ast.h"
#include "instr/Instrument.h"
#include "smt/Solver.h"
#include "verifier/FuncTranslator.h"
#include "vir/WpGen.h"

#include <memory>
#include <string>
#include <vector>

namespace vcdryad {
namespace verifier {

struct VerifyOptions {
  instr::InstrOptions Instr;
  TranslateOptions Translate;
  unsigned TimeoutMs = 60000;
  /// Stop a function's checks at its first failed VC.
  bool StopAtFirstFailure = true;
  /// Additionally check that the accumulated assumptions of each
  /// function are satisfiable (a vacuity smoke test: an unsatisfiable
  /// ghost-assumption set would "prove" anything).
  bool CheckVacuity = false;
  /// Only verify the named function (empty: all with bodies).
  std::string OnlyFunction;
};

/// Outcome of one proof obligation.
struct VCOutcome {
  std::string Reason;
  SourceLoc Loc;
  smt::CheckStatus Status = smt::CheckStatus::Unknown;
  double TimeMs = 0.0;
  std::string Detail;
};

struct FunctionResult {
  std::string Name;
  /// Position among the checked functions, in source order. Parallel
  /// runs complete out of order; reports sort by this so aggregation
  /// is deterministic.
  unsigned SourceIndex = 0;
  bool Verified = false;
  unsigned NumVCs = 0;
  double TimeMs = 0.0;
  instr::AnnotationStats Annotations;
  /// Failed/unknown obligations (empty when Verified).
  std::vector<VCOutcome> Failures;
};

struct ProgramResult {
  bool Ok = false;          ///< Pipeline ran (no parse/type errors).
  bool AllVerified = false; ///< Every checked function verified.
  std::string Error;        ///< Diagnostics when !Ok.
  std::vector<FunctionResult> Functions;

  const FunctionResult *function(const std::string &Name) const {
    for (const FunctionResult &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

  /// Restores source order after out-of-order (parallel) completion,
  /// so function() lookups and reports are deterministic.
  void sortBySource();
};

/// The solver-ready obligations of one function: everything the front
/// half of the pipeline (normalize -> instrument -> translate ->
/// passify -> VC generation) produces, with no SMT solving done yet.
/// The verification service schedules these VCs individually and lets
/// the proof cache intercept them.
struct FunctionObligations {
  std::string Name;
  unsigned SourceIndex = 0; ///< See FunctionResult::SourceIndex.
  instr::AnnotationStats Annotations;
  std::vector<vir::VC> VCs;
};

/// A whole file's obligations (the unit the scheduler fans out).
struct ProgramPlan {
  bool Ok = false;   ///< Front end ran (no parse/type errors).
  std::string Error; ///< Diagnostics when !Ok.
  std::vector<FunctionObligations> Functions;
  /// Background facts for every solver query of this program
  /// (quantified-axiom ablation mode only; empty otherwise).
  std::vector<vir::LExprRef> BackgroundAxioms;
};

class Verifier {
public:
  explicit Verifier(VerifyOptions Opts = {}) : Opts(std::move(Opts)) {}

  /// Parses and verifies a whole file (resolving #include).
  ProgramResult verifyFile(const std::string &Path);

  /// Parses and verifies in-memory source text.
  ProgramResult verifySource(const std::string &Source);

  /// Runs the post-parse pipeline on an already-parsed program.
  /// The program is normalized and instrumented in place.
  ProgramResult verifyProgram(cfront::Program &Prog,
                              DiagnosticEngine &Diag);

  /// Front half of the pipeline only: produces every checked
  /// function's proof obligations without solving them. This is the
  /// hook the verification service schedules and caches against;
  /// verifyFile == planFile + checkFunction over each entry.
  ProgramPlan planFile(const std::string &Path) const;
  ProgramPlan planSource(const std::string &Source) const;
  ProgramPlan planProgram(cfront::Program &Prog,
                          DiagnosticEngine &Diag) const;

  /// The solver configuration matching this verifier's options and a
  /// plan's background axioms.
  smt::SolverOptions solverOptions(const ProgramPlan &Plan) const;

  /// Back half: solves one function's obligations in order on the
  /// given solver (vacuity probe first when enabled, then the VCs,
  /// honoring StopAtFirstFailure).
  FunctionResult checkFunction(const FunctionObligations &FO,
                               smt::SmtSolver &Solver) const;

  /// The obligation whose guard the vacuity smoke test probes: the
  /// first postcondition VC (the last VC can sit behind the
  /// intentional `assume false` sealing return paths), else the first.
  /// Null when there are no VCs.
  static const vir::VC *vacuityProbe(const std::vector<vir::VC> &VCs);

  const VerifyOptions &options() const { return Opts; }

private:
  VerifyOptions Opts;
};

} // namespace verifier
} // namespace vcdryad

#endif // VCDRYAD_VERIFIER_VERIFIER_H
