//===- Verifier.h - End-to-end verification driver --------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: parse -> type-check ->
/// normalize -> natural-proof instrumentation -> VIR translation ->
/// passification -> VC generation -> SMT solving, with per-function
/// and per-VC results. This is what the CLI, the tests, the examples
/// and the benchmark harnesses all drive.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VERIFIER_VERIFIER_H
#define VCDRYAD_VERIFIER_VERIFIER_H

#include "cfront/Ast.h"
#include "instr/Instrument.h"
#include "smt/Solver.h"
#include "verifier/FuncTranslator.h"

#include <memory>
#include <string>
#include <vector>

namespace vcdryad {
namespace verifier {

struct VerifyOptions {
  instr::InstrOptions Instr;
  TranslateOptions Translate;
  unsigned TimeoutMs = 60000;
  /// Stop a function's checks at its first failed VC.
  bool StopAtFirstFailure = true;
  /// Additionally check that the accumulated assumptions of each
  /// function are satisfiable (a vacuity smoke test: an unsatisfiable
  /// ghost-assumption set would "prove" anything).
  bool CheckVacuity = false;
  /// Only verify the named function (empty: all with bodies).
  std::string OnlyFunction;
};

/// Outcome of one proof obligation.
struct VCOutcome {
  std::string Reason;
  SourceLoc Loc;
  smt::CheckStatus Status = smt::CheckStatus::Unknown;
  double TimeMs = 0.0;
  std::string Detail;
};

struct FunctionResult {
  std::string Name;
  bool Verified = false;
  unsigned NumVCs = 0;
  double TimeMs = 0.0;
  instr::AnnotationStats Annotations;
  /// Failed/unknown obligations (empty when Verified).
  std::vector<VCOutcome> Failures;
};

struct ProgramResult {
  bool Ok = false;          ///< Pipeline ran (no parse/type errors).
  bool AllVerified = false; ///< Every checked function verified.
  std::string Error;        ///< Diagnostics when !Ok.
  std::vector<FunctionResult> Functions;

  const FunctionResult *function(const std::string &Name) const {
    for (const FunctionResult &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

class Verifier {
public:
  explicit Verifier(VerifyOptions Opts = {}) : Opts(std::move(Opts)) {}

  /// Parses and verifies a whole file (resolving #include).
  ProgramResult verifyFile(const std::string &Path);

  /// Parses and verifies in-memory source text.
  ProgramResult verifySource(const std::string &Source);

  /// Runs the post-parse pipeline on an already-parsed program.
  /// The program is normalized and instrumented in place.
  ProgramResult verifyProgram(cfront::Program &Prog,
                              DiagnosticEngine &Diag);

  const VerifyOptions &options() const { return Opts; }

private:
  VerifyOptions Opts;
};

} // namespace verifier
} // namespace vcdryad

#endif // VCDRYAD_VERIFIER_VERIFIER_H
