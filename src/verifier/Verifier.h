//===- Verifier.h - End-to-end verification driver --------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: parse -> type-check ->
/// normalize -> natural-proof instrumentation -> VIR translation ->
/// passification -> VC generation -> SMT solving, with per-function
/// and per-VC results. This is what the CLI, the tests, the examples
/// and the benchmark harnesses all drive.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VERIFIER_VERIFIER_H
#define VCDRYAD_VERIFIER_VERIFIER_H

#include "cfront/Ast.h"
#include "instr/Instrument.h"
#include "smt/Solver.h"
#include "verifier/FuncTranslator.h"
#include "vir/WpGen.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace vcdryad {
namespace verifier {

struct VerifyOptions {
  instr::InstrOptions Instr;
  TranslateOptions Translate;
  unsigned TimeoutMs = 60000;
  /// Stop a function's checks at its first failed VC.
  bool StopAtFirstFailure = true;
  /// Additionally check that the accumulated assumptions of each
  /// function are satisfiable (a vacuity smoke test: an unsatisfiable
  /// ghost-assumption set would "prove" anything).
  bool CheckVacuity = false;
  /// Only verify the named function (empty: all with bodies).
  std::string OnlyFunction;
  /// Simplify VC formulas after planning (constant folding, and/or
  /// flattening, conjunct dedup). Equivalence-preserving: verdicts
  /// are identical with this on or off.
  bool Preprocess = true;
  /// Slice each obligation's guard to the cone of influence of its
  /// goal for the fast pass. Sliced guards are weaker, so Valid
  /// transfers to the full guard; non-Valid fast answers are
  /// re-checked unsliced at the full budget (see FastTimeoutMs).
  bool Slice = true;
  /// Per-check budget (ms) of the fast incremental pass: one scoped
  /// solver session per function, shared guard prefix asserted once,
  /// each obligation checked sliced under push/pop. Obligations the
  /// fast pass cannot prove escalate to a one-shot unsliced check at
  /// TimeoutMs, so final verdicts match the non-laddered run. 0
  /// disables the fast pass (every VC solves one-shot at TimeoutMs).
  unsigned FastTimeoutMs = 5000;
  /// Width of the portfolio escalation rung: obligations the fast
  /// pass leaves unsettled are raced through this many diverse
  /// solver configurations (smt::builtinProfiles order unless
  /// PortfolioProfiles overrides), first decisive answer wins. <= 1
  /// keeps the single-strategy escalation.
  unsigned Portfolio = 1;
  /// Explicit tactic-profile names for the portfolio lanes; empty
  /// selects the built-in order. A non-empty list implies its own
  /// width when Portfolio is not set above 1.
  std::vector<std::string> PortfolioProfiles;
  /// Incremental-planning hook (set by the verification service's
  /// manifest). Called once per function right after normalization
  /// with the function's name and stable content fingerprint
  /// (cfront::fingerprintFunction); returning true skips the rest of
  /// the pipeline for that function — instrumentation, translation
  /// and VC generation — and marks its FunctionObligations
  /// SkippedUnchanged with no VCs. Callers must only return true when
  /// a persisted record proves every obligation of an identical
  /// function (same fingerprint, same options) was Valid. When unset,
  /// fingerprints are not computed and nothing is skipped.
  std::function<bool(const std::string &Name, uint64_t Fingerprint)>
      SkipUnchanged;
  /// Solver construction hook, copied into every SolverOptions this
  /// verifier builds (one-shot checks, session solvers, portfolio
  /// lanes). The isolated-worker pool installs its factory here;
  /// unset means in-process Z3. Must be verdict-neutral — it is not
  /// part of any cache or manifest key.
  smt::SolverFactory MakeSolver;
};

/// Outcome of one proof obligation.
struct VCOutcome {
  std::string Reason;
  SourceLoc Loc;
  smt::CheckStatus Status = smt::CheckStatus::Unknown;
  double TimeMs = 0.0;
  std::string Detail;
};

/// Per-obligation preprocessing and solving statistics.
struct VCStat {
  std::string Reason;
  /// Guard conjuncts available (after simplification).
  unsigned AssumesTotal = 0;
  /// Guard conjuncts in the goal's cone of influence (== AssumesTotal
  /// when slicing is off).
  unsigned AssumesSliced = 0;
  /// Total solver time across ladder rungs for this obligation.
  double SolveTimeMs = 0.0;
  /// The fast pass could not settle this VC; it was re-checked
  /// one-shot, unsliced, at the full budget.
  bool Escalated = false;
  /// Settled without any solver call (goal simplified to true, or
  /// guard to false).
  bool Trivial = false;
  /// Final disposition of the obligation. Meaningless when Cancelled.
  smt::CheckStatus Status = smt::CheckStatus::Unknown;
  /// Skipped by first-failure cancellation (StopAtFirstFailure):
  /// never solved, which is *not* solver incompleteness — batch JSON
  /// reports these as "cancelled", distinct from genuine "unknown".
  bool Cancelled = false;
  /// The tactic profile that settled an escalated obligation when the
  /// portfolio rung is on (empty otherwise).
  std::string WinnerProfile;
  /// Bounded fresh-worker retries taken for this obligation (isolated
  /// solving only; always 0 in-process).
  unsigned Retries = 0;
  /// Stable content hash of the goal — the identity VCDRYAD_FAULT
  /// targets; exposed in vc_stats so tests can aim fault injection.
  uint64_t GoalHash = 0;
};

struct FunctionResult {
  std::string Name;
  /// Position among the checked functions, in source order. Parallel
  /// runs complete out of order; reports sort by this so aggregation
  /// is deterministic.
  unsigned SourceIndex = 0;
  bool Verified = false;
  unsigned NumVCs = 0;
  double TimeMs = 0.0;
  instr::AnnotationStats Annotations;
  /// Failed/unknown obligations (empty when Verified).
  std::vector<VCOutcome> Failures;
  /// The budget (ms) the function's verdicts were produced at: the
  /// fast budget when the fast pass settled everything, else the full
  /// timeout (some obligation escalated or the ladder was off).
  unsigned EffectiveTimeoutMs = 0;
  /// Number of obligations that escalated past the fast pass.
  unsigned Escalations = 0;
  /// Per-obligation stats, in VC order.
  std::vector<VCStat> VCStats;
};

struct ProgramResult {
  bool Ok = false;          ///< Pipeline ran (no parse/type errors).
  bool AllVerified = false; ///< Every checked function verified.
  std::string Error;        ///< Diagnostics when !Ok.
  std::vector<FunctionResult> Functions;

  const FunctionResult *function(const std::string &Name) const {
    for (const FunctionResult &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

  /// Restores source order after out-of-order (parallel) completion,
  /// so function() lookups and reports are deterministic.
  void sortBySource();
};

/// The solver-ready obligations of one function: everything the front
/// half of the pipeline (normalize -> instrument -> translate ->
/// passify -> VC generation) produces, with no SMT solving done yet.
/// The verification service schedules these VCs individually and lets
/// the proof cache intercept them.
struct FunctionObligations {
  std::string Name;
  unsigned SourceIndex = 0; ///< See FunctionResult::SourceIndex.
  instr::AnnotationStats Annotations;
  std::vector<vir::VC> VCs;
  /// Stable content fingerprint of the normalized function (0 when
  /// the planner ran without VerifyOptions::SkipUnchanged).
  uint64_t Fingerprint = 0;
  /// The SkipUnchanged hook discharged this function: VCs is empty
  /// and the scheduler must not solve anything for it.
  bool SkippedUnchanged = false;
};

/// A whole file's obligations (the unit the scheduler fans out).
struct ProgramPlan {
  bool Ok = false;   ///< Front end ran (no parse/type errors).
  std::string Error; ///< Diagnostics when !Ok.
  std::vector<FunctionObligations> Functions;
  /// Background facts for every solver query of this program
  /// (quantified-axiom ablation mode only; empty otherwise).
  std::vector<vir::LExprRef> BackgroundAxioms;
};

class Verifier {
public:
  explicit Verifier(VerifyOptions Opts = {}) : Opts(std::move(Opts)) {}

  /// Parses and verifies a whole file (resolving #include).
  ProgramResult verifyFile(const std::string &Path);

  /// Parses and verifies in-memory source text.
  ProgramResult verifySource(const std::string &Source);

  /// Runs the post-parse pipeline on an already-parsed program.
  /// The program is normalized and instrumented in place.
  ProgramResult verifyProgram(cfront::Program &Prog,
                              DiagnosticEngine &Diag);

  /// Front half of the pipeline only: produces every checked
  /// function's proof obligations without solving them. This is the
  /// hook the verification service schedules and caches against;
  /// verifyFile == planFile + checkFunction over each entry.
  ProgramPlan planFile(const std::string &Path) const;
  ProgramPlan planSource(const std::string &Source) const;
  ProgramPlan planProgram(cfront::Program &Prog,
                          DiagnosticEngine &Diag) const;

  /// The solver configuration matching this verifier's options and a
  /// plan's background axioms.
  smt::SolverOptions solverOptions(const ProgramPlan &Plan) const;

  /// Back half: solves one function's obligations in order on the
  /// given solver (vacuity probe first when enabled, then the VCs,
  /// honoring StopAtFirstFailure). The ladder is fast -> portfolio:
  /// obligations the fast incremental pass leaves unsettled are
  /// raced through the portfolio lanes (see VerifyOptions::Portfolio)
  /// built from \p SOpts; with a portfolio width of 1 the escalation
  /// stays the classic one-shot check on \p Solver.
  FunctionResult checkFunction(const FunctionObligations &FO,
                               smt::SmtSolver &Solver,
                               const smt::SolverOptions &SOpts) const;

  /// Convenience overload deriving solver options from the verify
  /// options alone (no background axioms — callers in the
  /// quantified-axiom ablation mode must pass solverOptions(Plan)).
  FunctionResult checkFunction(const FunctionObligations &FO,
                               smt::SmtSolver &Solver) const;

  /// The resolved portfolio lanes of these options: empty when the
  /// portfolio rung is disabled (width <= 1); on a bad profile name
  /// the error is reported through \p Error (empty lanes, rung off).
  std::vector<smt::TacticProfile> portfolioLanes(std::string &Error) const;

  /// The obligation whose guard the vacuity smoke test probes: the
  /// first postcondition VC (the last VC can sit behind the
  /// intentional `assume false` sealing return paths), else the first.
  /// Null when there are no VCs.
  static const vir::VC *vacuityProbe(const std::vector<vir::VC> &VCs);

  /// Length of the longest guard-conjunct prefix shared node-for-node
  /// by every VC in the list — what a session asserts once. 0 when
  /// the list is empty.
  static size_t commonGuardPrefix(const std::vector<vir::VC> &VCs);

  /// True when the obligation settles without a solver call: its goal
  /// simplified to true, or its guard to false.
  static bool triviallyValid(const vir::VC &VC);

  /// The conjuncts a session check adds beyond the first \p PrefixLen
  /// shared ones: the sliced conjuncts past the prefix when the VC is
  /// preprocessed, else everything past the prefix.
  static std::vector<vir::LExprRef> sessionExtras(const vir::VC &VC,
                                                  size_t PrefixLen);

  const VerifyOptions &options() const { return Opts; }

private:
  VerifyOptions Opts;
};

} // namespace verifier
} // namespace vcdryad

#endif // VCDRYAD_VERIFIER_VERIFIER_H
