//===- FuncTranslator.h - Instrumented AST to VIR ---------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates one (normalized, instrumented) function to a loop-free
/// VIR procedure: the Burstall-Bornat heap as field arrays, contracts
/// via the Figure-4 translation with the ghost heaplet $G, loops cut
/// at their invariants, calls summarised by their contracts with a
/// whole-heap havoc (the instrumentation restores the frame), and
/// old() resolved through entry-state snapshots.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VERIFIER_FUNCTRANSLATOR_H
#define VCDRYAD_VERIFIER_FUNCTRANSLATOR_H

#include "cfront/Ast.h"
#include "support/Diagnostics.h"
#include "vir/Vir.h"

namespace vcdryad {
namespace verifier {

struct TranslateOptions {
  /// Emit null-dereference asserts on every heap access and
  /// ownership asserts (location within $G) on writes, frees and
  /// callee heaplets.
  bool CheckMemorySafety = true;
};

/// Translates \p F (which must be normalized; instrumentation is
/// optional but required for proofs to succeed) into a VIR procedure.
vir::Procedure translateFunction(const cfront::FuncDecl &F,
                                 const cfront::Program &Prog,
                                 const TranslateOptions &Opts,
                                 DiagnosticEngine &Diag);

} // namespace verifier
} // namespace vcdryad

#endif // VCDRYAD_VERIFIER_FUNCTRANSLATOR_H
