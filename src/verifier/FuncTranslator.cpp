//===- FuncTranslator.cpp - Instrumented AST to VIR -------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "verifier/FuncTranslator.h"

#include "dryad/Translate.h"

#include <cassert>
#include <set>

using namespace vcdryad;
using namespace vcdryad::verifier;
using namespace vcdryad::cfront;
using dryad::FieldKey;
using dryad::TranslateEnv;
using vir::Block;
using vir::LExprRef;
using vir::Sort;

namespace {

class FuncTranslatorImpl {
public:
  FuncTranslatorImpl(const FuncDecl &F, const Program &Prog,
                     const TranslateOptions &Opts, DiagnosticEngine &Diag)
      : F(F), Prog(Prog), Opts(Opts), Diag(Diag),
        Tr(Prog.Defs, Prog.LogicStructs, Diag) {}

  vir::Procedure run() {
    Proc.Name = F.Name;
    declVar("$G", Sort::SetLoc);
    // Field arrays and their entry-state snapshots.
    for (const auto &[SN, SI] : Prog.LogicStructs.all())
      for (const dryad::FieldInfo &FI : SI.Fields) {
        FieldKey FK{SN, FI.Name, FI.FieldSort};
        declVar(FK.arrayName(), FK.arraySort());
        declVar("$old" + FK.arrayName(), FK.arraySort());
        AllArrays.push_back(FK);
      }
    for (const ParamDecl &P : F.Params) {
      declVar(P.Name, sortOfType(P.Ty));
      declVar("$old$" + P.Name, sortOfType(P.Ty));
      VarMap[P.Name] = vir::mkVar(P.Name, sortOfType(P.Ty));
    }
    if (!F.RetTy.isVoid())
      declVar("$result", sortOfType(F.RetTy));

    buildEntry();
    if (F.Body)
      translateBlock(*F.Body, Proc.Body);
    // Fall-through exit.
    if (F.RetTy.isVoid())
      emitExitChecks(Proc.Body, nullptr, F.Loc);
    else
      Proc.Body.push_back(
          vir::mkAssert(vir::mkBool(false),
                        "control reaches end of non-void function",
                        F.Loc));
    return std::move(Proc);
  }

private:
  const FuncDecl &F;
  const Program &Prog;
  const TranslateOptions &Opts;
  DiagnosticEngine &Diag;
  dryad::Translator Tr;
  vir::Procedure Proc;
  std::vector<FieldKey> AllArrays;
  std::map<std::string, LExprRef> VarMap;
  unsigned CallCounter = 0;

  static Sort sortOfType(const CType &Ty) {
    return Ty.isPtr() ? Sort::Loc : Sort::Int;
  }

  void declVar(const std::string &Name, Sort S) {
    Proc.Vars.emplace(Name, S);
  }

  LExprRef gVar() const { return vir::mkVar("$G", Sort::SetLoc); }

  /// The translation environment at the current program point.
  TranslateEnv env(bool WithResult = false) const {
    TranslateEnv E;
    E.Vars = VarMap;
    E.CurArray = dryad::prefixedArrays();
    E.OldArray = dryad::prefixedArrays("$old");
    for (const ParamDecl &P : F.Params)
      E.OldVars[P.Name] =
          vir::mkVar("$old$" + P.Name, sortOfType(P.Ty));
    if (WithResult && !F.RetTy.isVoid())
      E.ResultVal = vir::mkVar("$result", sortOfType(F.RetTy));
    return E;
  }

  static dryad::FormulaRef conjoin(const std::vector<dryad::FormulaRef> &Fs) {
    if (Fs.empty())
      return std::make_shared<dryad::Formula>(dryad::FormulaKind::True);
    dryad::FormulaRef Acc = Fs[0];
    for (size_t I = 1; I != Fs.size(); ++I) {
      auto And = std::make_shared<dryad::Formula>(dryad::FormulaKind::And);
      And->Subs = {Acc, Fs[I]};
      Acc = And;
    }
    return Acc;
  }

  void buildEntry() {
    Block &B = Proc.Body;
    // Entry snapshots for old().
    for (const FieldKey &FK : AllArrays)
      B.push_back(vir::mkAssign("$old" + FK.arrayName(), FK.arraySort(),
                                vir::mkVar(FK.arrayName(),
                                           FK.arraySort())));
    for (const ParamDecl &P : F.Params)
      B.push_back(vir::mkAssign("$old$" + P.Name, sortOfType(P.Ty),
                                vir::mkVar(P.Name, sortOfType(P.Ty))));
    // The function's heaplet: exactly the precondition's scope.
    dryad::FormulaRef Pre = conjoin(F.Requires);
    TranslateEnv E = env();
    B.push_back(
        vir::mkAssign("$G", Sort::SetLoc, Tr.scopeOfFormula(Pre, E)));
    B.push_back(vir::mkAssume(Tr.formula(Pre, E, gVar())));
  }

  //===--------------------------------------------------------------------===//
  // C expressions
  //===--------------------------------------------------------------------===//

  LExprRef val(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Var: {
      auto It = VarMap.find(E.Name);
      if (It != VarMap.end())
        return It->second;
      Diag.error(E.Loc, "untranslatable variable '" + E.Name + "'");
      return vir::mkInt(0);
    }
    case ExprKind::IntLit:
      return vir::mkInt(E.IntVal);
    case ExprKind::Null:
      return vir::mkNil();
    case ExprKind::Unary:
      if (E.UOp == UnOp::Neg)
        return vir::mkIntSub(vir::mkInt(0), val(*E.Args[0]));
      return boolToInt(cond(E));
    case ExprKind::Binary:
      switch (E.BOp) {
      case BinOp::Add:
        return vir::mkIntAdd(val(*E.Args[0]), val(*E.Args[1]));
      case BinOp::Sub:
        return vir::mkIntSub(val(*E.Args[0]), val(*E.Args[1]));
      default:
        return boolToInt(cond(E));
      }
    default:
      Diag.error(E.Loc, "expression not normalized: " + E.str());
      return vir::mkInt(0);
    }
  }

  static LExprRef boolToInt(LExprRef B) {
    return vir::mkIte(std::move(B), vir::mkInt(1), vir::mkInt(0));
  }

  /// Boolean reading of a C condition.
  LExprRef cond(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Unary:
      if (E.UOp == UnOp::Not)
        return vir::mkNot(cond(*E.Args[0]));
      break;
    case ExprKind::Binary:
      switch (E.BOp) {
      case BinOp::Eq:
        return vir::mkEq(val(*E.Args[0]), val(*E.Args[1]));
      case BinOp::Ne:
        return vir::mkNe(val(*E.Args[0]), val(*E.Args[1]));
      case BinOp::Lt:
        return vir::mkIntLt(val(*E.Args[0]), val(*E.Args[1]));
      case BinOp::Le:
        return vir::mkIntLe(val(*E.Args[0]), val(*E.Args[1]));
      case BinOp::Gt:
        return vir::mkIntLt(val(*E.Args[1]), val(*E.Args[0]));
      case BinOp::Ge:
        return vir::mkIntLe(val(*E.Args[1]), val(*E.Args[0]));
      case BinOp::LAnd:
        return vir::mkAnd(cond(*E.Args[0]), cond(*E.Args[1]));
      case BinOp::LOr:
        return vir::mkOr(cond(*E.Args[0]), cond(*E.Args[1]));
      default:
        break;
      }
      break;
    default:
      break;
    }
    LExprRef V = val(E);
    if (V->sort() == Sort::Loc)
      return vir::mkNe(V, vir::mkNil());
    if (V->sort() == Sort::Int)
      return vir::mkNe(V, vir::mkInt(0));
    return V;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void translateBlock(const Stmt &B, Block &Out) {
    assert(B.Kind == StmtKind::Block);
    auto Saved = VarMap;
    for (const StmtRef &S : B.Stmts)
      translateStmt(*S, Out);
    VarMap = std::move(Saved);
  }

  void translateStmt(const Stmt &S, Block &Out) {
    switch (S.Kind) {
    case StmtKind::Block:
      translateBlock(S, Out);
      return;
    case StmtKind::Decl: {
      Sort VS = sortOfType(S.DeclTy);
      declVar(S.DeclName, VS);
      VarMap[S.DeclName] = vir::mkVar(S.DeclName, VS);
      assert(!S.Rhs && "declarations are initializer-free after "
                       "normalization");
      return;
    }
    case StmtKind::Assign:
      translateAssign(S, Out);
      return;
    case StmtKind::If: {
      Block Then, Else;
      translateBlock(*S.Then, Then);
      if (S.Else)
        translateBlock(*S.Else, Else);
      Out.push_back(vir::mkIf(cond(*S.Cond), std::move(Then),
                              std::move(Else)));
      return;
    }
    case StmtKind::While:
      translateWhile(S, Out);
      return;
    case StmtKind::Return: {
      if (S.Rhs)
        Out.push_back(vir::mkAssign("$result", sortOfType(F.RetTy),
                                    val(*S.Rhs)));
      emitExitChecks(Out, S.Rhs ? &*S.Rhs : nullptr, S.Loc);
      Out.push_back(vir::mkAssume(vir::mkBool(false)));
      return;
    }
    case StmtKind::ExprStmt:
      if (S.Rhs && S.Rhs->Kind == ExprKind::Call)
        translateCall(*S.Rhs, /*RetVar=*/"", S.Loc, Out);
      return;
    case StmtKind::Free: {
      LExprRef U = val(*S.Rhs);
      if (Opts.CheckMemorySafety) {
        Out.push_back(
            vir::mkAssert(vir::mkNe(U, vir::mkNil()), "free of NULL",
                          S.Loc));
        Out.push_back(vir::mkAssert(vir::mkMember(U, gVar()),
                                    "free outside the owned heaplet",
                                    S.Loc));
      }
      return;
    }
    case StmtKind::Assert: {
      TranslateEnv E = env();
      Out.push_back(vir::mkAssert(Tr.formula(S.Spec, E, nullptr),
                                  "assertion: " + S.Spec->str(), S.Loc));
      return;
    }
    case StmtKind::Assume: {
      TranslateEnv E = env();
      Out.push_back(vir::mkAssume(Tr.formula(S.Spec, E, nullptr)));
      return;
    }
    case StmtKind::GhostAssume:
      Out.push_back(vir::mkAssume(S.Ghost));
      return;
    case StmtKind::GhostAssign:
      declVar(S.GhostVar, S.Ghost->sort());
      Out.push_back(
          vir::mkAssign(S.GhostVar, S.Ghost->sort(), S.Ghost));
      return;
    case StmtKind::GhostHavoc:
      declVar(S.GhostVar, S.GhostSort);
      Out.push_back(vir::mkHavoc(S.GhostVar, S.GhostSort));
      return;
    }
  }

  void translateAssign(const Stmt &S, Block &Out) {
    // u->f = w
    if (S.Lhs->Kind == ExprKind::FieldAccess) {
      const Expr &Base = *S.Lhs->Args[0];
      LExprRef U = val(Base);
      if (Opts.CheckMemorySafety) {
        Out.push_back(vir::mkAssert(vir::mkNe(U, vir::mkNil()),
                                    "null dereference in field write",
                                    S.Loc));
        Out.push_back(vir::mkAssert(vir::mkMember(U, gVar()),
                                    "field write outside the owned heaplet",
                                    S.Loc));
      }
      const StructDecl *SD = Base.Ty.Pointee;
      const FieldDecl *FD = SD ? SD->findField(S.Lhs->Name) : nullptr;
      if (!FD) {
        Diag.error(S.Loc, "unresolved field write");
        return;
      }
      FieldKey FK{SD->Name, FD->Name,
                  FD->Ty.isPtr() ? Sort::Loc : Sort::Int};
      LExprRef Arr = vir::mkVar(FK.arrayName(), FK.arraySort());
      Out.push_back(vir::mkAssign(FK.arrayName(), FK.arraySort(),
                                  vir::mkStore(Arr, U, val(*S.Rhs))));
      return;
    }
    // u = ...
    const std::string &U = S.Lhs->Name;
    Sort US = sortOfType(S.Lhs->Ty);
    const Expr &Rhs = *S.Rhs;
    switch (Rhs.Kind) {
    case ExprKind::FieldAccess: {
      const Expr &Base = *Rhs.Args[0];
      LExprRef V = val(Base);
      if (Opts.CheckMemorySafety)
        Out.push_back(vir::mkAssert(vir::mkNe(V, vir::mkNil()),
                                    "null dereference in field read",
                                    S.Loc));
      const StructDecl *SD = Base.Ty.Pointee;
      const FieldDecl *FD = SD ? SD->findField(Rhs.Name) : nullptr;
      if (!FD) {
        Diag.error(S.Loc, "unresolved field read");
        return;
      }
      FieldKey FK{SD->Name, FD->Name,
                  FD->Ty.isPtr() ? Sort::Loc : Sort::Int};
      LExprRef Arr = vir::mkVar(FK.arrayName(), FK.arraySort());
      Out.push_back(vir::mkAssign(U, US, vir::mkSelect(Arr, V)));
      return;
    }
    case ExprKind::Malloc: {
      Out.push_back(vir::mkHavoc(U, Sort::Loc));
      LExprRef UV = vir::mkVar(U, Sort::Loc);
      Out.push_back(vir::mkAssume(
          vir::mkAnd(vir::mkNe(UV, vir::mkNil()),
                     vir::mkNot(vir::mkMember(UV, gVar())))));
      return;
    }
    case ExprKind::Call:
      translateCall(Rhs, U, S.Loc, Out);
      return;
    default:
      Out.push_back(vir::mkAssign(U, US, val(Rhs)));
      return;
    }
  }

  void translateCall(const Expr &Call, const std::string &RetVar,
                     SourceLoc Loc, Block &Out) {
    const FuncDecl *Callee = Prog.findFunc(Call.Name);
    if (!Callee) {
      Diag.error(Loc, "call to unknown function '" + Call.Name + "'");
      return;
    }
    unsigned K = CallCounter++;
    TranslateEnv PreEnv = env();
    PreEnv.Vars.clear();
    for (size_t I = 0;
         I != Callee->Params.size() && I != Call.Args.size(); ++I)
      PreEnv.Vars[Callee->Params[I].Name] = val(*Call.Args[I]);

    // Check the callee's precondition on its heaplet, and that the
    // caller owns that heaplet.
    dryad::FormulaRef Pre = conjoin(Callee->Requires);
    LExprRef GPre = Tr.scopeOfFormula(Pre, PreEnv);
    Out.push_back(vir::mkAssert(Tr.formula(Pre, PreEnv, GPre),
                                "precondition of call to " + Call.Name,
                                Loc));
    if (Opts.CheckMemorySafety)
      Out.push_back(vir::mkAssert(
          vir::mkSubset(GPre, gVar()),
          "callee heaplet not owned by caller (" + Call.Name + ")", Loc));
    // Latch the pre-call heaplet and G into variables: every use after
    // the havoc below must refer to the pre-call state.
    std::string GPreVar = "$gpreV" + std::to_string(K);
    declVar(GPreVar, Sort::SetLoc);
    Out.push_back(vir::mkAssign(GPreVar, Sort::SetLoc, GPre));
    GPre = vir::mkVar(GPreVar, Sort::SetLoc);

    // Snapshot the heap for old() in the callee's postcondition, then
    // havoc it (the instrumentation restores the frame).
    std::string SnapPrefix = "$call" + std::to_string(K);
    for (const FieldKey &FK : AllArrays) {
      declVar(SnapPrefix + FK.arrayName(), FK.arraySort());
      Out.push_back(
          vir::mkAssign(SnapPrefix + FK.arrayName(), FK.arraySort(),
                        vir::mkVar(FK.arrayName(), FK.arraySort())));
    }
    for (const FieldKey &FK : AllArrays)
      Out.push_back(vir::mkHavoc(FK.arrayName(), FK.arraySort()));

    // The result.
    TranslateEnv PostEnv = PreEnv;
    PostEnv.OldArray = dryad::prefixedArrays(SnapPrefix);
    PostEnv.OldVars = PreEnv.Vars;
    if (!Callee->RetTy.isVoid()) {
      std::string R = RetVar;
      if (R.empty()) {
        R = "$ret" + std::to_string(K);
        declVar(R, sortOfType(Callee->RetTy));
      }
      Out.push_back(vir::mkHavoc(R, sortOfType(Callee->RetTy)));
      PostEnv.ResultVal = vir::mkVar(R, sortOfType(Callee->RetTy));
    } else if (!RetVar.empty()) {
      Diag.error(Loc, "assigning the result of a void function");
    }

    dryad::FormulaRef Post = conjoin(Callee->Ensures);
    LExprRef GPost = Tr.scopeOfFormula(Post, PostEnv);
    Out.push_back(vir::mkAssume(Tr.formula(Post, PostEnv, GPost)));
    // Frame rule: the callee works inside G_pre plus freshly allocated
    // cells, so its post-heaplet cannot intersect the caller's frame.
    Out.push_back(vir::mkAssume(
        vir::mkDisjoint(GPost, vir::mkMinus(gVar(), GPre))));
  }

  void translateWhile(const Stmt &S, Block &Out) {
    // Translate the invariants once; VIR names are position-independent
    // (passification versions them at each use site).
    TranslateEnv E = env();
    std::vector<LExprRef> Invs;
    for (const dryad::FormulaRef &Inv : S.Invariants)
      Invs.push_back(Tr.formula(Inv, E, gVar()));

    for (size_t I = 0; I != Invs.size(); ++I)
      Out.push_back(vir::mkAssert(Invs[I],
                                  "loop invariant (entry): " +
                                      S.Invariants[I]->str(),
                                  S.Loc));

    // Havoc everything the loop may modify.
    std::set<std::string> Mods;
    std::map<std::string, Sort> ModSorts;
    collectMods(S, Mods, ModSorts);
    for (const std::string &M : Mods) {
      auto It = ModSorts.find(M);
      Sort MS = It != ModSorts.end() ? It->second : Sort::Int;
      declVar(M, MS);
      Out.push_back(vir::mkHavoc(M, MS));
    }

    for (const LExprRef &Inv : Invs)
      Out.push_back(vir::mkAssume(Inv));

    // Condition prelude (re-evaluated each iteration).
    for (const StmtRef &P : S.Stmts)
      translateStmt(*P, Out);

    Block BodyB;
    translateBlock(*S.Then, BodyB);
    for (size_t I = 0; I != Invs.size(); ++I)
      BodyB.push_back(vir::mkAssert(Invs[I],
                                    "loop invariant (maintained): " +
                                        S.Invariants[I]->str(),
                                    S.Loc));
    BodyB.push_back(vir::mkAssume(vir::mkBool(false)));
    Out.push_back(vir::mkIf(cond(*S.Cond), std::move(BodyB), {}));
    // Fall-through continues with the negated condition (the passive
    // if-join contributes it automatically).
  }

  /// Conservatively collects everything a loop iteration can modify.
  void collectMods(const Stmt &S, std::set<std::string> &Mods,
                   std::map<std::string, Sort> &Sorts) {
    auto Add = [&](const std::string &N, Sort VS) {
      Mods.insert(N);
      Sorts[N] = VS;
    };
    auto AddAllArrays = [&] {
      for (const FieldKey &FK : AllArrays)
        Add(FK.arrayName(), FK.arraySort());
    };
    switch (S.Kind) {
    case StmtKind::Assign:
      if (S.Lhs->Kind == ExprKind::FieldAccess) {
        const Expr &Base = *S.Lhs->Args[0];
        if (const StructDecl *SD = Base.Ty.Pointee)
          if (const FieldDecl *FD = SD->findField(S.Lhs->Name)) {
            FieldKey FK{SD->Name, FD->Name,
                        FD->Ty.isPtr() ? Sort::Loc : Sort::Int};
            Add(FK.arrayName(), FK.arraySort());
          }
      } else {
        Add(S.Lhs->Name, sortOfType(S.Lhs->Ty));
      }
      if (S.Rhs && S.Rhs->Kind == ExprKind::Call) {
        AddAllArrays();
        Add("$G", Sort::SetLoc);
      }
      if (S.Rhs && S.Rhs->Kind == ExprKind::Malloc)
        Add("$G", Sort::SetLoc);
      break;
    case StmtKind::ExprStmt:
      if (S.Rhs && S.Rhs->Kind == ExprKind::Call) {
        AddAllArrays();
        Add("$G", Sort::SetLoc);
      }
      break;
    case StmtKind::Free:
      Add("$G", Sort::SetLoc);
      break;
    case StmtKind::GhostAssign:
      Add(S.GhostVar, S.Ghost->sort());
      break;
    case StmtKind::GhostHavoc:
      Add(S.GhostVar, S.GhostSort);
      break;
    default:
      break;
    }
    for (const StmtRef &Sub : S.Stmts)
      collectMods(*Sub, Mods, Sorts);
    if (S.Then)
      collectMods(*S.Then, Mods, Sorts);
    if (S.Else)
      collectMods(*S.Else, Mods, Sorts);
  }

  void emitExitChecks(Block &Out, const Expr *RetVal, SourceLoc Loc) {
    (void)RetVal;
    TranslateEnv E = env(/*WithResult=*/true);
    for (const dryad::FormulaRef &Ens : F.Ensures)
      Out.push_back(vir::mkAssert(Tr.formula(Ens, E, gVar()),
                                  "postcondition: " + Ens->str(), Loc));
  }
};

} // namespace

vir::Procedure verifier::translateFunction(const FuncDecl &F,
                                           const Program &Prog,
                                           const TranslateOptions &Opts,
                                           DiagnosticEngine &Diag) {
  return FuncTranslatorImpl(F, Prog, Opts, Diag).run();
}
