//===- Verifier.cpp - End-to-end verification driver ------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "cfront/FuncHash.h"
#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "smt/Portfolio.h"
#include "support/Timer.h"
#include "vir/Passify.h"
#include "vir/Simplify.h"

#include <algorithm>

using namespace vcdryad;
using namespace vcdryad::verifier;

void ProgramResult::sortBySource() {
  std::stable_sort(Functions.begin(), Functions.end(),
                   [](const FunctionResult &A, const FunctionResult &B) {
                     return A.SourceIndex < B.SourceIndex;
                   });
}

ProgramResult Verifier::verifyFile(const std::string &Path) {
  DiagnosticEngine Diag;
  std::unique_ptr<cfront::Program> Prog = cfront::parseFile(Path, Diag);
  if (!Prog || Diag.hasErrors()) {
    ProgramResult R;
    R.Error = Diag.str();
    return R;
  }
  return verifyProgram(*Prog, Diag);
}

ProgramResult Verifier::verifySource(const std::string &Source) {
  DiagnosticEngine Diag;
  std::unique_ptr<cfront::Program> Prog =
      cfront::parseProgram(Source, Diag);
  if (!Prog || Diag.hasErrors()) {
    ProgramResult R;
    R.Error = Diag.str();
    return R;
  }
  return verifyProgram(*Prog, Diag);
}

ProgramPlan Verifier::planFile(const std::string &Path) const {
  DiagnosticEngine Diag;
  std::unique_ptr<cfront::Program> Prog = cfront::parseFile(Path, Diag);
  if (!Prog || Diag.hasErrors()) {
    ProgramPlan P;
    P.Error = Diag.str();
    return P;
  }
  return planProgram(*Prog, Diag);
}

ProgramPlan Verifier::planSource(const std::string &Source) const {
  DiagnosticEngine Diag;
  std::unique_ptr<cfront::Program> Prog =
      cfront::parseProgram(Source, Diag);
  if (!Prog || Diag.hasErrors()) {
    ProgramPlan P;
    P.Error = Diag.str();
    return P;
  }
  return planProgram(*Prog, Diag);
}

ProgramPlan Verifier::planProgram(cfront::Program &Prog,
                                  DiagnosticEngine &Diag) const {
  ProgramPlan Plan;

  cfront::normalizeProgram(Prog, Diag);
  if (Diag.hasErrors()) {
    Plan.Error = Diag.str();
    return Plan;
  }

  // Incremental planning: fingerprints are computed on the normalized,
  // still un-instrumented AST (instrumentation mutates bodies), and
  // the SkipUnchanged hook decides per function whether the rest of
  // the pipeline — ghost synthesis, translation, VC generation — can
  // be skipped outright.
  struct Selected {
    cfront::FuncDecl *F = nullptr;
    uint64_t Fp = 0;
    bool Skip = false;
  };
  std::vector<Selected> Sel;
  for (const auto &F : Prog.Funcs) {
    if (!F->Body)
      continue;
    if (!Opts.OnlyFunction.empty() && F->Name != Opts.OnlyFunction)
      continue;
    Selected S;
    S.F = F.get();
    if (Opts.SkipUnchanged) {
      S.Fp = cfront::fingerprintFunction(*F, Prog);
      S.Skip = Opts.SkipUnchanged(F->Name, S.Fp);
    }
    Sel.push_back(S);
  }

  // Instrument only what will be translated. Ghost synthesis of one
  // function reads other functions' contracts, never their bodies, so
  // skipping some functions cannot change the others' obligations.
  for (const Selected &S : Sel)
    if (!S.Skip)
      instr::instrumentFunction(*S.F, Prog, Opts.Instr, Diag);
  if (Diag.hasErrors()) {
    Plan.Error = Diag.str();
    return Plan;
  }

  if (Opts.Instr.Axioms == instr::InstrOptions::AxiomMode::Quantified)
    Plan.BackgroundAxioms = instr::quantifiedAxioms(Prog, Diag);

  for (const Selected &S : Sel) {
    FunctionObligations FO;
    FO.Name = S.F->Name;
    FO.SourceIndex = static_cast<unsigned>(Plan.Functions.size());
    FO.Fingerprint = S.Fp;
    if (S.Skip) {
      // Discharged by the manifest: no annotations to count (the
      // function was never instrumented) and no VCs to solve. The
      // scheduler reports it from the manifest record.
      FO.SkippedUnchanged = true;
      Plan.Functions.push_back(std::move(FO));
      continue;
    }
    FO.Annotations = instr::countAnnotations(*S.F);

    vir::Procedure Proc =
        translateFunction(*S.F, Prog, Opts.Translate, Diag);
    if (Diag.hasErrors()) {
      Plan.Error += Diag.str();
      Plan.Ok = false;
      return Plan;
    }
    vir::Procedure Passive = vir::passify(Proc);
    FO.VCs = vir::generateVCs(Passive);
    if (Opts.Preprocess)
      vir::preprocessVCs(FO.VCs, Opts.Slice);
    Plan.Functions.push_back(std::move(FO));
  }
  Plan.Ok = true;
  return Plan;
}

smt::SolverOptions Verifier::solverOptions(const ProgramPlan &Plan) const {
  smt::SolverOptions SOpts;
  SOpts.TimeoutMs = Opts.TimeoutMs;
  SOpts.BackgroundAxioms = Plan.BackgroundAxioms;
  SOpts.MakeSolver = Opts.MakeSolver;
  return SOpts;
}

const vir::VC *Verifier::vacuityProbe(const std::vector<vir::VC> &VCs) {
  if (VCs.empty())
    return nullptr;
  // Check that a full return path is reachable: the guard of the
  // first postcondition obligation accumulates every ghost
  // assumption along it. (The very last VC can sit behind the
  // intentional `assume false` that seals return paths, so it is
  // the wrong probe.)
  for (const vir::VC &VC : VCs)
    if (VC.Reason.rfind("postcondition", 0) == 0)
      return &VC;
  return &VCs.front();
}

size_t Verifier::commonGuardPrefix(const std::vector<vir::VC> &VCs) {
  if (VCs.empty())
    return 0;
  size_t Len = VCs.front().Conjuncts.size();
  for (const vir::VC &VC : VCs) {
    size_t K = 0;
    size_t Max = std::min(Len, VC.Conjuncts.size());
    while (K < Max &&
           VC.Conjuncts[K].get() == VCs.front().Conjuncts[K].get())
      ++K;
    Len = K;
    if (Len == 0)
      break;
  }
  return Len;
}

bool Verifier::triviallyValid(const vir::VC &VC) {
  return VC.Cond->isBoolConst(true) || VC.Guard->isBoolConst(false);
}

std::vector<vir::LExprRef> Verifier::sessionExtras(const vir::VC &VC,
                                                   size_t PrefixLen) {
  std::vector<vir::LExprRef> Extra;
  if (VC.Preprocessed) {
    for (uint32_t I : VC.Sliced)
      if (I >= PrefixLen)
        Extra.push_back(VC.Conjuncts[I]);
  } else {
    for (size_t I = PrefixLen, N = VC.Conjuncts.size(); I < N; ++I)
      Extra.push_back(VC.Conjuncts[I]);
  }
  return Extra;
}

std::vector<smt::TacticProfile>
Verifier::portfolioLanes(std::string &Error) const {
  unsigned Width = Opts.Portfolio;
  if (Width <= 1 && !Opts.PortfolioProfiles.empty())
    Width = static_cast<unsigned>(Opts.PortfolioProfiles.size());
  if (Width <= 1)
    return {};
  std::vector<smt::TacticProfile> Lanes =
      smt::resolvePortfolio(Opts.PortfolioProfiles, Width, Error);
  if (Lanes.size() < 2)
    return {};
  return Lanes;
}

FunctionResult Verifier::checkFunction(const FunctionObligations &FO,
                                       smt::SmtSolver &Solver) const {
  smt::SolverOptions SOpts;
  SOpts.TimeoutMs = Opts.TimeoutMs;
  SOpts.MakeSolver = Opts.MakeSolver;
  return checkFunction(FO, Solver, SOpts);
}

FunctionResult Verifier::checkFunction(const FunctionObligations &FO,
                                       smt::SmtSolver &Solver,
                                       const smt::SolverOptions &SOpts) const {
  Timer T;
  FunctionResult FR;
  FR.Name = FO.Name;
  FR.SourceIndex = FO.SourceIndex;
  FR.Annotations = FO.Annotations;
  FR.NumVCs = FO.VCs.size();

  FR.Verified = true;
  if (Opts.CheckVacuity) {
    // Vacuity probes the satisfiability of the *full* guard — slicing
    // or a short budget would change the question, so this is always
    // a one-shot full-budget check.
    if (const vir::VC *Probe = vacuityProbe(FO.VCs)) {
      smt::CheckResult CR =
          Solver.checkValid(Probe->Guard, vir::mkBool(false));
      if (CR.Status == smt::CheckStatus::Valid) {
        FR.Verified = false;
        FR.Failures.push_back({"vacuity check: ghost assumptions are "
                               "unsatisfiable",
                               Probe->Loc, smt::CheckStatus::Invalid,
                               CR.TimeMs, ""});
      }
    }
  }

  size_t N = FO.VCs.size();
  std::vector<char> Settled(N, 0);
  FR.VCStats.resize(N);
  for (size_t I = 0; I != N; ++I) {
    const vir::VC &VC = FO.VCs[I];
    VCStat &St = FR.VCStats[I];
    St.Reason = VC.Reason;
    St.GoalHash = vir::stableExprHash(VC.Cond);
    St.AssumesTotal = static_cast<unsigned>(VC.Conjuncts.size());
    St.AssumesSliced = static_cast<unsigned>(
        VC.Preprocessed ? VC.Sliced.size() : VC.Conjuncts.size());
    if (triviallyValid(VC)) {
      St.Trivial = true;
      St.Status = smt::CheckStatus::Valid;
      Settled[I] = 1;
    }
  }

  // Fast pass: one scoped session for the whole function, shared
  // guard prefix asserted once, each obligation checked sliced under
  // push/pop at the short budget. Only Valid answers settle here —
  // sliced guards are weaker, so Valid transfers to the full VC,
  // while sat/unknown may be artifacts of slicing or the budget.
  // (TimeoutMs == 0 is an unlimited full budget, which any fast
  // budget undercuts.)
  bool FastPass = Opts.FastTimeoutMs > 0 &&
                  (Opts.TimeoutMs == 0 ||
                   Opts.FastTimeoutMs < Opts.TimeoutMs) &&
                  N > 0;
  if (FastPass) {
    size_t PrefixLen = commonGuardPrefix(FO.VCs);
    std::vector<vir::LExprRef> Prefix(
        FO.VCs.front().Conjuncts.begin(),
        FO.VCs.front().Conjuncts.begin() + PrefixLen);
    Solver.beginSession(Prefix, Opts.FastTimeoutMs);
    for (size_t I = 0; I != N; ++I) {
      if (Settled[I])
        continue;
      const vir::VC &VC = FO.VCs[I];
      smt::CheckResult CR =
          Solver.checkSession(sessionExtras(VC, PrefixLen), VC.Cond);
      FR.VCStats[I].SolveTimeMs += CR.TimeMs;
      if (CR.Status == smt::CheckStatus::Valid) {
        FR.VCStats[I].Status = smt::CheckStatus::Valid;
        Settled[I] = 1;
      }
    }
    Solver.endSession();
  }

  // Escalation / baseline pass, in VC order: anything unsettled is
  // checked one-shot against the full guard at the full budget — by
  // a race of diverse tactic profiles when the portfolio rung is on,
  // else on the caller's solver. Either way only the full-budget
  // answer decides, so final verdicts (and StopAtFirstFailure
  // behavior) are identical to a run without the ladder.
  std::string LaneError;
  std::vector<smt::TacticProfile> Lanes = portfolioLanes(LaneError);
  smt::SolverOptions FullOpts = SOpts;
  FullOpts.TimeoutMs = Opts.TimeoutMs;
  for (size_t I = 0; I != N; ++I) {
    if (Settled[I])
      continue;
    const vir::VC &VC = FO.VCs[I];
    VCStat &St = FR.VCStats[I];
    smt::CheckResult CR;
    if (Lanes.size() >= 2) {
      smt::PortfolioResult PR =
          smt::checkPortfolio(FullOpts, Lanes, VC.Guard, VC.Cond);
      CR = PR.R;
      St.SolveTimeMs += PR.TotalSolverMs;
      St.WinnerProfile = PR.WinnerProfile;
    } else {
      CR = Solver.checkValid(VC.Guard, VC.Cond);
      St.SolveTimeMs += CR.TimeMs;
    }
    St.Status = CR.Status;
    St.Retries += CR.Retries;
    if (FastPass) {
      St.Escalated = true;
      ++FR.Escalations;
    }
    if (CR.Status != smt::CheckStatus::Valid) {
      FR.Verified = false;
      FR.Failures.push_back(
          {VC.Reason, VC.Loc, CR.Status, CR.TimeMs, CR.Detail});
      if (Opts.StopAtFirstFailure) {
        // Everything after the first failure is skipped, not solved:
        // mark the remainder cancelled so reports cannot mistake the
        // skips for solver incompleteness.
        for (size_t J = I + 1; J != N; ++J)
          if (!Settled[J])
            FR.VCStats[J].Cancelled = true;
        break;
      }
    }
  }

  FR.EffectiveTimeoutMs = FastPass && FR.Escalations == 0
                              ? Opts.FastTimeoutMs
                              : Opts.TimeoutMs;
  FR.TimeMs = T.millis();
  return FR;
}

ProgramResult Verifier::verifyProgram(cfront::Program &Prog,
                                      DiagnosticEngine &Diag) {
  ProgramResult Result;

  ProgramPlan Plan = planProgram(Prog, Diag);
  if (!Plan.Ok) {
    Result.Error = Plan.Error;
    return Result;
  }

  std::unique_ptr<smt::SmtSolver> Solver =
      smt::createSolver(solverOptions(Plan));

  Result.Ok = true;
  Result.AllVerified = true;
  for (const FunctionObligations &FO : Plan.Functions) {
    FunctionResult FR = checkFunction(FO, *Solver);
    Result.AllVerified &= FR.Verified;
    Result.Functions.push_back(std::move(FR));
  }
  return Result;
}
