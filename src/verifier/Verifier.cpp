//===- Verifier.cpp - End-to-end verification driver ------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "verifier/Verifier.h"

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "support/Timer.h"
#include "vir/Passify.h"
#include "vir/WpGen.h"

using namespace vcdryad;
using namespace vcdryad::verifier;

ProgramResult Verifier::verifyFile(const std::string &Path) {
  DiagnosticEngine Diag;
  std::unique_ptr<cfront::Program> Prog = cfront::parseFile(Path, Diag);
  if (!Prog || Diag.hasErrors()) {
    ProgramResult R;
    R.Error = Diag.str();
    return R;
  }
  return verifyProgram(*Prog, Diag);
}

ProgramResult Verifier::verifySource(const std::string &Source) {
  DiagnosticEngine Diag;
  std::unique_ptr<cfront::Program> Prog =
      cfront::parseProgram(Source, Diag);
  if (!Prog || Diag.hasErrors()) {
    ProgramResult R;
    R.Error = Diag.str();
    return R;
  }
  return verifyProgram(*Prog, Diag);
}

ProgramResult Verifier::verifyProgram(cfront::Program &Prog,
                                      DiagnosticEngine &Diag) {
  ProgramResult Result;

  cfront::normalizeProgram(Prog, Diag);
  instr::instrumentProgram(Prog, Opts.Instr, Diag);
  if (Diag.hasErrors()) {
    Result.Error = Diag.str();
    return Result;
  }

  smt::SolverOptions SOpts;
  SOpts.TimeoutMs = Opts.TimeoutMs;
  if (Opts.Instr.Axioms == instr::InstrOptions::AxiomMode::Quantified)
    SOpts.BackgroundAxioms = instr::quantifiedAxioms(Prog, Diag);
  std::unique_ptr<smt::SmtSolver> Solver = smt::createZ3Solver(SOpts);

  Result.Ok = true;
  Result.AllVerified = true;
  for (const auto &F : Prog.Funcs) {
    if (!F->Body)
      continue;
    if (!Opts.OnlyFunction.empty() && F->Name != Opts.OnlyFunction)
      continue;
    Timer T;
    FunctionResult FR;
    FR.Name = F->Name;
    FR.Annotations = instr::countAnnotations(*F);

    vir::Procedure Proc =
        translateFunction(*F, Prog, Opts.Translate, Diag);
    if (Diag.hasErrors()) {
      Result.Error += Diag.str();
      Result.Ok = false;
      return Result;
    }
    vir::Procedure Passive = vir::passify(Proc);
    std::vector<vir::VC> VCs = vir::generateVCs(Passive);
    FR.NumVCs = VCs.size();

    FR.Verified = true;
    if (Opts.CheckVacuity && !VCs.empty()) {
      // Check that a full return path is reachable: the guard of the
      // first postcondition obligation accumulates every ghost
      // assumption along it. (The very last VC can sit behind the
      // intentional `assume false` that seals return paths, so it is
      // the wrong probe.)
      const vir::VC *Probe = &VCs.front();
      for (const vir::VC &VC : VCs)
        if (VC.Reason.rfind("postcondition", 0) == 0) {
          Probe = &VC;
          break;
        }
      smt::CheckResult CR =
          Solver->checkValid(Probe->Guard, vir::mkBool(false));
      if (CR.Status == smt::CheckStatus::Valid) {
        FR.Verified = false;
        FR.Failures.push_back({"vacuity check: ghost assumptions are "
                               "unsatisfiable",
                               Probe->Loc, smt::CheckStatus::Invalid,
                               CR.TimeMs, ""});
      }
    }
    for (const vir::VC &VC : VCs) {
      smt::CheckResult CR = Solver->checkValid(VC.Guard, VC.Cond);
      if (CR.Status != smt::CheckStatus::Valid) {
        FR.Verified = false;
        FR.Failures.push_back(
            {VC.Reason, VC.Loc, CR.Status, CR.TimeMs, CR.Detail});
        if (Opts.StopAtFirstFailure)
          break;
      }
    }
    FR.TimeMs = T.millis();
    Result.AllVerified &= FR.Verified;
    Result.Functions.push_back(std::move(FR));
  }
  return Result;
}
