//===- Client.h - Daemon client ---------------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the serve protocol: connect to the daemon's
/// Unix-domain socket, send one request line, read the response to
/// EOF. Used by `vcdryad client` and by `--serve-socket=` routing on
/// batch/check.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_DAEMON_CLIENT_H
#define VCDRYAD_DAEMON_CLIENT_H

#include <string>

namespace vcdryad {
namespace daemon {

/// Sends \p RequestLine (newline appended if missing) to the daemon
/// at \p SocketPath and reads the full response into \p Response.
/// Returns false with \p Error set when the daemon is unreachable or
/// the transfer fails; a daemon-side failure still returns true with
/// the {"ok": false, ...} body in \p Response.
bool sendRequest(const std::string &SocketPath,
                 const std::string &RequestLine, std::string &Response,
                 std::string &Error);

/// True when a daemon is accepting connections on \p SocketPath — a
/// bare connect probe, no request sent. Distinguishes a live daemon
/// from a stale socket file left by a crash.
bool probeSocket(const std::string &SocketPath);

} // namespace daemon
} // namespace vcdryad

#endif // VCDRYAD_DAEMON_CLIENT_H
