//===- Protocol.cpp - Daemon wire protocol ---------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Protocol.h"

#include <cctype>
#include <cstdio>

using namespace vcdryad;
using namespace vcdryad::daemon;

std::string daemon::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string daemon::errorResponse(const std::string &Message) {
  return "{\"ok\": false, \"error\": \"" + jsonEscape(Message) + "\"}\n";
}

std::string daemon::buildRequest(const Request &R) {
  std::string Out = "{\"op\": \"" + jsonEscape(R.Op) + "\"";
  if (!R.Paths.empty()) {
    Out += ", \"paths\": [";
    for (size_t I = 0; I < R.Paths.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "\"" + jsonEscape(R.Paths[I]) + "\"";
    }
    Out += "]";
  }
  if (R.ChangedOnly)
    Out += ", \"changed_only\": true";
  if (!R.JsonTimes)
    Out += ", \"json_times\": false";
  if (R.Since != 0)
    Out += ", \"since\": " + std::to_string(R.Since);
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Request parsing
//===----------------------------------------------------------------------===//

namespace {

/// A cursor over the request line. Every parse method leaves Pos just
/// past what it consumed; failures set Error once (first error wins)
/// and make the caller unwind.
struct Cursor {
  const std::string &S;
  size_t Pos = 0;
  std::string Error;

  explicit Cursor(const std::string &Line) : S(Line) {}

  bool failed() const { return !Error.empty(); }

  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  bool peek(char C) {
    skipWs();
    return Pos < S.size() && S[Pos] == C;
  }

  bool eat(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    fail(std::string("expected '") + C + "'");
    return false;
  }

  /// Reads the four hex digits of a \uXXXX escape. The `\u` is
  /// already consumed. Returns false (with Error set) on truncation
  /// or a non-hex digit.
  bool parseHex4(unsigned &V) {
    if (Pos + 4 > S.size()) {
      fail("truncated \\u escape");
      return false;
    }
    V = 0;
    for (int I = 0; I < 4; ++I) {
      char H = S[Pos++];
      V <<= 4;
      if (H >= '0' && H <= '9')
        V |= static_cast<unsigned>(H - '0');
      else if (H >= 'a' && H <= 'f')
        V |= static_cast<unsigned>(H - 'a' + 10);
      else if (H >= 'A' && H <= 'F')
        V |= static_cast<unsigned>(H - 'A' + 10);
      else {
        fail("bad \\u escape");
        return false;
      }
    }
    return true;
  }

  /// Appends code point \p CP as UTF-8 (1-4 bytes; callers guarantee
  /// CP <= 0x10FFFF and never a surrogate).
  static void appendUtf8(std::string &Out, unsigned CP) {
    if (CP < 0x80) {
      Out += static_cast<char>(CP);
    } else if (CP < 0x800) {
      Out += static_cast<char>(0xC0 | (CP >> 6));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      Out += static_cast<char>(0xE0 | (CP >> 12));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (CP >> 18));
      Out += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  /// JSON string with the usual escapes. \uXXXX decodes to UTF-8 —
  /// request fields carry file paths, and paths are allowed to be
  /// non-ASCII — including surrogate pairs (😀 is one
  /// 4-byte code point). An unpaired surrogate is a parse error, not
  /// a replacement character: silently mangling a path would make the
  /// daemon verify the wrong file.
  std::string parseString() {
    std::string Out;
    if (!eat('"'))
      return Out;
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        break;
      char E = S[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        unsigned V = 0;
        if (!parseHex4(V))
          return Out;
        if (V >= 0xDC00 && V <= 0xDFFF) {
          fail("unpaired low surrogate in \\u escape");
          return Out;
        }
        if (V >= 0xD800 && V <= 0xDBFF) {
          // High surrogate: JSON spells astral code points as a
          // \uHHHH\uLLLL pair; both halves are required.
          if (Pos + 2 > S.size() || S[Pos] != '\\' || S[Pos + 1] != 'u') {
            fail("unpaired high surrogate in \\u escape");
            return Out;
          }
          Pos += 2;
          unsigned Lo = 0;
          if (!parseHex4(Lo))
            return Out;
          if (Lo < 0xDC00 || Lo > 0xDFFF) {
            fail("unpaired high surrogate in \\u escape");
            return Out;
          }
          V = 0x10000 + ((V - 0xD800) << 10) + (Lo - 0xDC00);
        }
        appendUtf8(Out, V);
        break;
      }
      default:
        fail("bad escape");
        return Out;
      }
    }
    fail("unterminated string");
    return Out;
  }

  /// Consumes a literal keyword (true/false/null).
  bool parseKeyword(const char *KW) {
    size_t Len = std::char_traits<char>::length(KW);
    if (S.compare(Pos, Len, KW) == 0) {
      Pos += Len;
      return true;
    }
    return false;
  }

  /// Consumes a number and returns its non-negative integer value
  /// (0 for anything negative or fractional — "since" is the only
  /// numeric field and cursors are unsigned; accepting the full
  /// numeric grammar keeps unknown-key skipping honest).
  uint64_t parseNumber() {
    bool Neg = false;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+')) {
      Neg = S[Pos] == '-';
      ++Pos;
    }
    size_t Start = Pos;
    uint64_t V = 0;
    bool Integral = true;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '-' || S[Pos] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(S[Pos])))
        V = V * 10 + static_cast<uint64_t>(S[Pos] - '0');
      else
        Integral = false;
      ++Pos;
    }
    if (Pos == Start)
      fail("expected a value");
    return Neg || !Integral ? 0 : V;
  }
};

} // namespace

bool daemon::parseRequest(const std::string &Line, Request &R,
                          std::string &Error) {
  Cursor C(Line);
  R = Request();
  if (!C.eat('{')) {
    Error = C.Error;
    return false;
  }
  if (!C.peek('}')) {
    do {
      std::string Key = C.parseString();
      if (C.failed() || !C.eat(':'))
        break;
      C.skipWs();
      if (C.peek('"')) {
        std::string V = C.parseString();
        if (Key == "op")
          R.Op = V;
      } else if (C.peek('[')) {
        C.eat('[');
        std::vector<std::string> Items;
        if (!C.peek(']')) {
          do {
            Items.push_back(C.parseString());
          } while (!C.failed() && C.peek(',') && C.eat(','));
        }
        if (!C.eat(']'))
          break;
        if (Key == "paths")
          R.Paths = std::move(Items);
      } else if (C.parseKeyword("true")) {
        if (Key == "changed_only")
          R.ChangedOnly = true;
        else if (Key == "json_times")
          R.JsonTimes = true;
      } else if (C.parseKeyword("false")) {
        if (Key == "changed_only")
          R.ChangedOnly = false;
        else if (Key == "json_times")
          R.JsonTimes = false;
      } else if (C.parseKeyword("null")) {
        // Ignored: null means "not set" for every request field.
      } else {
        uint64_t V = C.parseNumber();
        if (Key == "since")
          R.Since = V;
      }
    } while (!C.failed() && C.peek(',') && C.eat(','));
  }
  if (!C.failed())
    C.eat('}');
  if (!C.failed()) {
    C.skipWs();
    if (C.Pos != C.S.size())
      C.fail("trailing garbage after request object");
  }
  if (C.failed()) {
    Error = C.Error;
    return false;
  }
  if (R.Op.empty()) {
    Error = "request has no \"op\" field";
    return false;
  }
  return true;
}
