//===- Daemon.h - Resident verification daemon ------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `vcdryad serve` process: a long-lived verification service on
/// a Unix-domain socket. What a cold `vcdryad check` pays per
/// invocation — process start, proof-cache and manifest load, file
/// parse, Z3 context construction — the daemon pays once and then
/// amortizes across requests: the VerificationService (and with it
/// the journaled stores and the resident plan cache) lives as long as
/// the process, and the scheduler runs with shared-prelude Z3
/// sessions and cache-aware dispatch on by default.
///
/// Lifecycle:
///   bind()   — create + bind the socket, with stale-socket recovery:
///              an existing socket file is probe-connected first; a
///              live daemon is a hard error ("already serving"), a
///              dead one (connect refused — the kernel keeps the file
///              but nobody listens) is unlinked and the path reused.
///   serve()  — accept loop, one request per connection (see
///              Protocol.h), until a shutdown request arrives over
///              the socket or a signal raises
///              service::requestShutdown(). In-flight batches observe
///              the same flag and stop dispatching; their completed
///              results are already journal-durable.
///   exit     — flush (compact) the stores, close and unlink the
///              socket.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_DAEMON_DAEMON_H
#define VCDRYAD_DAEMON_DAEMON_H

#include "daemon/Protocol.h"
#include "service/Service.h"

#include <cstdint>
#include <string>

namespace vcdryad {
namespace daemon {

struct DaemonOptions {
  std::string SocketPath;
  /// Hard cap on one request line (newline-delimited JSON). Requests
  /// are an op plus a path list, so anything past a few MB is a
  /// protocol violation or a hostile peer, not a big batch; oversized
  /// requests are drained no further and answered with a clean
  /// `{"ok": false}` error instead of tying up the accept loop.
  size_t MaxRequestBytes = 4u << 20;
  service::ServiceOptions Service;
};

class Daemon {
public:
  /// Constructs the resident service (loads stores, replays
  /// journals). The socket is not touched until bind().
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();

  /// Binds and listens, recovering stale socket files (see file
  /// comment). False with \p Error set when another daemon is already
  /// serving on the path or the bind fails.
  bool bind(std::string &Error);

  /// Runs the accept loop until shutdown; flushes the stores and
  /// unlinks the socket on the way out. Returns the process exit
  /// code: 0 on a clean shutdown (signal or shutdown request), 1 when
  /// the listener failed.
  int serve();

  const std::string &socketPath() const { return Opts.SocketPath; }
  service::VerificationService &service() { return Svc; }

private:
  /// Serves one connection; true when a shutdown request was handled.
  bool handleConnection(int Fd);
  std::string statusResponse() const;
  std::string cacheStatsResponse() const;

  DaemonOptions Opts;
  service::VerificationService Svc;
  int ListenFd = -1;
  uint64_t Requests = 0; ///< Connections served (status telemetry).
};

} // namespace daemon
} // namespace vcdryad

#endif // VCDRYAD_DAEMON_DAEMON_H
