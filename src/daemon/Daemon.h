//===- Daemon.h - Resident verification daemon ------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `vcdryad serve` process: a long-lived verification service on
/// a Unix-domain socket. What a cold `vcdryad check` pays per
/// invocation — process start, proof-cache and manifest load, file
/// parse, Z3 context construction — the daemon pays once and then
/// amortizes across requests: the VerificationService (and with it
/// the journaled stores and the resident plan cache) lives as long as
/// the process, and the scheduler runs with shared-prelude Z3
/// sessions and cache-aware dispatch on by default.
///
/// Architecture: a poll()-driven event loop over three fd classes —
/// the listen socket, an inotify fd (Linux; elsewhere watch requests
/// are answered "unsupported" and the rest of the daemon is
/// unaffected), and a self-pipe that signal handlers poke through
/// service::setShutdownWakeFd so a SIGTERM interrupts the poll()
/// immediately. Verify work never runs on the event thread: requests
/// and watch-triggered re-verifies are queued to a single worker
/// thread, so `status`, `cache-stats` and `events` answer while a
/// batch is in flight. One worker (not a pool) keeps runs serialized
/// — the service's stores assume one batch at a time, and verify
/// responses stay byte-identical to `vcdryad check`.
///
/// Watch mode: `watch-add` registers .c files plus their preprocessed
/// #include closures (service::WatchRegistry) with per-directory
/// inotify watches — directories, not files, so rename-over-save
/// (vim, emacs, clang-format -i) keeps watching the path, not a
/// deleted inode. Kernel events are debounced (service::Debouncer):
/// a burst of writes to one path collapses into a single re-verify
/// of exactly the .c files whose closure contains it, and each
/// outcome lands in a bounded in-memory ring (service::EventRing)
/// that clients poll with `events` + a since-cursor.
///
/// Lifecycle:
///   bind()   — create + bind the socket, with stale-socket recovery:
///              an existing socket file is probe-connected first; a
///              live daemon is a hard error ("already serving"), a
///              dead one (connect refused — the kernel keeps the file
///              but nobody listens) is unlinked and the path reused.
///   serve()  — the event loop, one request per connection (see
///              Protocol.h), until a shutdown request arrives over
///              the socket or a signal raises
///              service::requestShutdown(). In-flight batches observe
///              the same flag and stop dispatching; their completed
///              results are already journal-durable.
///   exit     — stop the worker (queued clients get a clean error),
///              flush (compact) the stores, close and unlink the
///              socket.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_DAEMON_DAEMON_H
#define VCDRYAD_DAEMON_DAEMON_H

#include "daemon/Protocol.h"
#include "service/Service.h"
#include "service/Watch.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace vcdryad {
namespace daemon {

struct DaemonOptions {
  std::string SocketPath;
  /// Hard cap on one request line (newline-delimited JSON). Requests
  /// are an op plus a path list, so anything past a few MB is a
  /// protocol violation or a hostile peer, not a big batch; oversized
  /// requests are drained no further and answered with a clean
  /// `{"ok": false}` error instead of tying up the accept loop.
  size_t MaxRequestBytes = 4u << 20;
  /// .c files (or dirs/manifests, pre-expanded by the CLI) to watch
  /// from startup — `vcdryad serve --watch=...`. Equivalent to a
  /// `watch-add` for each once the loop is up.
  std::vector<std::string> WatchPaths;
  /// Debounce quiet window: a watched path must be event-free this
  /// long before its re-verify dispatches (see service::Debouncer).
  unsigned DebounceMs = 100;
  /// Watch-outcome ring capacity (see service::EventRing).
  size_t EventRingCap = 256;
  /// Pause after an accept() resource failure (EMFILE/ENFILE/ENOMEM)
  /// before the loop retries — long enough for fds to close, short
  /// enough that a recovered daemon answers promptly.
  unsigned AcceptBackoffMs = 50;
  service::ServiceOptions Service;
};

/// What the serve loop does with a failed accept(). Transient
/// conditions must not kill a daemon that other builds depend on:
///   Done    — no connection waiting (EAGAIN on a non-blocking
///             listener); go back to poll().
///   Retry   — this connection is gone but the next may be fine
///             (EINTR, ECONNABORTED: the peer hung up between
///             connect and accept; EPROTO); accept again now.
///   Backoff — resource exhaustion (EMFILE/ENFILE: fd limits;
///             ENOMEM/ENOBUFS): nothing accept()s until something
///             frees up, so sleep briefly and re-enter the loop.
///             Unknown errnos land here too — pausing on a surprise
///             beats dying on one.
///   Fatal   — the listener itself is broken (EBADF, EINVAL,
///             ENOTSOCK, EOPNOTSUPP); no retry can help.
enum class AcceptAction { Done, Retry, Backoff, Fatal };

/// Classifies \p Err (an accept() errno). Pure — unit-tested
/// directly, and the serve loop's only accept error policy.
AcceptAction classifyAcceptError(int Err);

class Daemon {
public:
  /// Constructs the resident service (loads stores, replays
  /// journals). The socket is not touched until bind().
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();

  /// Binds and listens, recovering stale socket files (see file
  /// comment). False with \p Error set when another daemon is already
  /// serving on the path or the bind fails.
  bool bind(std::string &Error);

  /// Runs the event loop until shutdown; flushes the stores and
  /// unlinks the socket on the way out. Returns the process exit
  /// code: 0 on a clean shutdown (signal or shutdown request), 1 when
  /// the listener failed.
  int serve();

  const std::string &socketPath() const { return Opts.SocketPath; }
  service::VerificationService &service() { return Svc; }

private:
  /// One verify batch for the worker thread: either a client request
  /// (ClientFd >= 0 — the worker writes the report and closes the
  /// fd) or a watch-triggered re-verify (ClientFd < 0 — the worker
  /// appends one EventRing entry per (file, trigger) pair).
  struct VerifyJob {
    int ClientFd = -1;
    std::vector<std::string> Inputs;
    bool JsonTimes = true;
    bool ChangedOnly = false;
    /// Watch jobs: the re-verified file and the changed path that
    /// caused it, one pair per affected file.
    std::vector<std::pair<std::string, std::string>> Triggers;
  };

  /// Outcome of one accepted connection.
  enum class ConnResult {
    Done,     ///< Answered inline; caller closes the fd.
    Handed,   ///< Fd ownership moved to the worker queue.
    Shutdown, ///< A shutdown request was handled (flag already raised).
  };

  ConnResult handleConnection(int Fd);
  std::string statusResponse() const;
  std::string cacheStatsResponse() const;
  std::string watchStatusResponse() const;
  std::string eventsResponse(uint64_t Since) const;

  /// Accepts until the (non-blocking) listener drains. False on a
  /// fatal listener error (serve() exits with code 1).
  bool acceptClients();
  /// Registers \p CFile (and its include closure) for watching;
  /// refreshes the closure when already registered.
  void watchAddFile(const std::string &CFile);
  void watchRemoveFile(const std::string &CFile);
  /// Mirrors a registry delta into per-directory inotify watches
  /// (refcounted per (file, path) edge).
  void applyWatchDelta(const service::WatchRegistry::Delta &D);
  /// Drains the inotify fd, noting events on watched paths.
  void handleInotify();
  /// Dispatches debounce-ripe paths as one re-verify job over the
  /// union of their owning files (closures refreshed first, so an
  /// edit that adds/removes #includes re-wires the watches).
  void dispatchRipe();

  void startWorker();
  void stopWorker();
  void workerLoop();
  void runJob(VerifyJob &Job);
  void enqueue(VerifyJob Job);

  static uint64_t nowMs();

  DaemonOptions Opts;
  service::VerificationService Svc;
  int ListenFd = -1;
  /// Self-pipe: [0] polled by the loop, [1] registered with
  /// service::setShutdownWakeFd so requestShutdown() (signal-handler
  /// context included) wakes the poll().
  int WakePipe[2] = {-1, -1};
  int InotifyFd = -1; ///< -1: watch unsupported on this platform.

  /// Connections served (status telemetry). Atomic: read by
  /// statusResponse on the event thread model but also visible to
  /// tests through status while the worker runs.
  std::atomic<uint64_t> Requests{0};
  /// True while the worker is inside Svc.run() (watch-status field;
  /// also what the responsiveness tests assert against).
  std::atomic<bool> Verifying{false};

  // Watch state. Registry/Debounce and the inotify maps are event-
  // thread-only; Events is shared with the worker (internally locked).
  service::WatchRegistry Registry;
  service::Debouncer Debounce;
  service::EventRing Events;
  /// Canonical directory -> (inotify wd, refcount of (file, path)
  /// edges inside it).
  std::map<std::string, std::pair<int, unsigned>> DirWatch;
  std::map<int, std::string> WdDir; ///< Reverse: wd -> directory.

  /// Injected accept() errnos (VCDRYAD_TEST_ACCEPT_ERRORS) consumed
  /// one per accept attempt — deterministic coverage of the
  /// classify/backoff paths that real kernels rarely produce on cue.
  std::deque<int> InjectedAcceptErrors;

  // Worker thread plumbing.
  std::thread Worker;
  std::mutex JobMu;
  std::condition_variable JobCv;
  std::deque<VerifyJob> JobQueue;
  bool WorkerStop = false;
};

} // namespace daemon
} // namespace vcdryad

#endif // VCDRYAD_DAEMON_DAEMON_H
