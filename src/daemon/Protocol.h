//===- Protocol.h - Daemon wire protocol ------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `vcdryad serve` wire protocol: newline-delimited JSON over a
/// Unix-domain stream socket. A client sends exactly one request — a
/// single line holding one *flat* JSON object — then half-closes the
/// write side; the daemon answers with a JSON document (one line for
/// control requests, the full multi-line batch report for verify) and
/// closes. One request per connection keeps the framing trivial and
/// the daemon state machine restartable at every accept().
///
/// Requests:
///   {"op": "verify", "paths": ["/abs/dir", ...],
///    "changed_only": false, "json_times": true}
///   {"op": "status"}
///   {"op": "cache-stats"}
///   {"op": "shutdown"}
///   {"op": "watch-add", "paths": ["/abs/file.c", ...]}
///   {"op": "watch-rm", "paths": ["/abs/file.c", ...]}
///   {"op": "watch-status"}
///   {"op": "events", "since": 0}
///
/// Responses: verify returns exactly the `vcdryad check` JSON report
/// (schema vcdryad-batch-v1); control requests return a one-line
/// object with "ok": true; every failure is {"ok": false, "error":
/// "..."}. Clients can therefore classify a response by its first
/// bytes without a JSON parser.
///
/// The request parser accepts only what the protocol needs: a flat
/// object whose values are strings, numbers, booleans, null, or
/// arrays of strings. Unknown keys are skipped (forward
/// compatibility); nested objects are a parse error.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_DAEMON_PROTOCOL_H
#define VCDRYAD_DAEMON_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

namespace vcdryad {
namespace daemon {

/// One parsed request line.
struct Request {
  std::string Op;                 ///< verify | status | cache-stats | shutdown
                                  ///< | watch-add | watch-rm | watch-status
                                  ///< | events
  std::vector<std::string> Paths; ///< verify/watch operands.
  bool ChangedOnly = false;       ///< verify: --changed-only rendering.
  bool JsonTimes = true;          ///< verify: include timing fields.
  uint64_t Since = 0;             ///< events: return entries with seq > this.
};

/// Parses one request line. Returns false with \p Error set on
/// malformed JSON, a non-flat value, or a missing/empty "op".
bool parseRequest(const std::string &Line, Request &R, std::string &Error);

/// Renders \p R as a request line (no trailing newline) — the client
/// side of parseRequest; parseRequest(buildRequest(R)) round-trips.
std::string buildRequest(const Request &R);

/// JSON string escaping (control characters, quote, backslash).
std::string jsonEscape(const std::string &S);

/// The canonical failure response: {"ok": false, "error": "..."}\n.
std::string errorResponse(const std::string &Message);

} // namespace daemon
} // namespace vcdryad

#endif // VCDRYAD_DAEMON_PROTOCOL_H
