//===- Client.cpp - Daemon client ------------------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Client.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vcdryad;

namespace {

/// Connects to \p SocketPath; -1 with errno set on failure. Paths
/// longer than sun_path fail with ENAMETOOLONG instead of truncating
/// into some *other* socket's name.
int connectTo(const std::string &SocketPath) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    int E = errno;
    ::close(Fd);
    errno = E;
    return -1;
  }
  return Fd;
}

bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    // MSG_NOSIGNAL: a daemon that died between connect and write must
    // surface as a transport error, not kill the client process.
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

} // namespace

bool daemon::probeSocket(const std::string &SocketPath) {
  int Fd = connectTo(SocketPath);
  if (Fd < 0)
    return false;
  ::close(Fd);
  return true;
}

bool daemon::sendRequest(const std::string &SocketPath,
                         const std::string &RequestLine,
                         std::string &Response, std::string &Error) {
  Response.clear();
  int Fd = connectTo(SocketPath);
  if (Fd < 0) {
    Error = "cannot connect to daemon at '" + SocketPath +
            "': " + std::strerror(errno);
    return false;
  }
  std::string Line = RequestLine;
  if (Line.empty() || Line.back() != '\n')
    Line += '\n';
  if (!writeAll(Fd, Line.data(), Line.size())) {
    Error = "cannot send request: " + std::string(std::strerror(errno));
    ::close(Fd);
    return false;
  }
  // Half-close: the daemon reads one line anyway, but EOF on the
  // write side makes the framing obvious in traces.
  ::shutdown(Fd, SHUT_WR);
  char Buf[65536];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = "cannot read response: " + std::string(std::strerror(errno));
      ::close(Fd);
      return false;
    }
    if (N == 0)
      break;
    Response.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  if (Response.empty()) {
    Error = "daemon closed the connection without a response";
    return false;
  }
  return true;
}
