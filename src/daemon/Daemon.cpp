//===- Daemon.cpp - Resident verification daemon ---------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include "daemon/Client.h"
#include "support/Timer.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/inotify.h>
#endif

using namespace vcdryad;
using namespace vcdryad::daemon;

namespace {

bool writeAll(int Fd, const std::string &Data) {
  const char *P = Data.data();
  size_t Len = Data.size();
  while (Len > 0) {
    // MSG_NOSIGNAL: even if this process never installed the SIG_IGN
    // in serve() (embedders calling handleConnection paths, tests), a
    // vanished client yields EPIPE here, not SIGPIPE.
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // EPIPE: client went away; nothing to salvage.
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

enum class ReadStatus { Ok, TooLarge, IoError };

/// Reads up to the first '\n' (consumed, not included) or EOF.
/// Distinguishes an oversized request (answerable with a clean error)
/// from a broken transport (nobody left to answer).
ReadStatus readRequestLine(int Fd, std::string &Line, size_t MaxBytes) {
  Line.clear();
  char Buf[4096];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ReadStatus::IoError;
    }
    if (N == 0)
      return ReadStatus::Ok; // EOF before a newline: take what we have.
    for (ssize_t I = 0; I < N; ++I) {
      if (Buf[I] == '\n')
        return ReadStatus::Ok;
      Line += Buf[I];
      if (Line.size() > MaxBytes)
        return ReadStatus::TooLarge;
    }
  }
}

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

std::string dirOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  if (Slash == 0)
    return "/";
  return Path.substr(0, Slash);
}

/// Parses VCDRYAD_TEST_ACCEPT_ERRORS ("ECONNABORTED,EMFILE,...") into
/// errno values; unknown names are ignored. Test-only fault injection
/// for the accept classification paths.
std::deque<int> parseInjectedAcceptErrors() {
  std::deque<int> Out;
  const char *Env = std::getenv("VCDRYAD_TEST_ACCEPT_ERRORS");
  if (!Env || !*Env)
    return Out;
  static const std::pair<const char *, int> Names[] = {
      {"EINTR", EINTR},     {"ECONNABORTED", ECONNABORTED},
      {"EMFILE", EMFILE},   {"ENFILE", ENFILE},
      {"ENOMEM", ENOMEM},   {"ENOBUFS", ENOBUFS},
      {"EAGAIN", EAGAIN},   {"EINVAL", EINVAL},
      {"EBADF", EBADF},
#ifdef EPROTO
      {"EPROTO", EPROTO},
#endif
  };
  std::string S(Env);
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    std::string Name = S.substr(Pos, Comma - Pos);
    for (const auto &[N, V] : Names)
      if (Name == N)
        Out.push_back(V);
    Pos = Comma + 1;
  }
  return Out;
}

/// "12.3" — one decimal, matching the report renderer's style.
std::string formatMs(double Ms) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", Ms);
  return Buf;
}

} // namespace

AcceptAction daemon::classifyAcceptError(int Err) {
  switch (Err) {
  case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
  case EWOULDBLOCK:
#endif
    return AcceptAction::Done;
  case EINTR:
  case ECONNABORTED: // Peer hung up between connect() and accept().
#ifdef EPROTO
  case EPROTO:
#endif
    return AcceptAction::Retry;
  case EMFILE:
  case ENFILE:
  case ENOMEM:
  case ENOBUFS:
    return AcceptAction::Backoff;
  case EBADF:
  case EINVAL:
  case ENOTSOCK:
  case EOPNOTSUPP:
    return AcceptAction::Fatal;
  default:
    // A surprise errno is not a reason to die; pause and retry.
    return AcceptAction::Backoff;
  }
}

Daemon::Daemon(DaemonOptions O)
    : Opts(std::move(O)), Svc(Opts.Service), Debounce(Opts.DebounceMs),
      Events(Opts.EventRingCap) {}

Daemon::~Daemon() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
}

uint64_t Daemon::nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool Daemon::bind(std::string &Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: '" + Opts.SocketPath + "' (max " +
            std::to_string(sizeof(Addr.sun_path) - 1) + " bytes)";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = "cannot create socket: " + std::string(std::strerror(errno));
    return false;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (errno != EADDRINUSE) {
      Error = "cannot bind '" + Opts.SocketPath +
              "': " + std::string(std::strerror(errno));
      ::close(Fd);
      return false;
    }
    // The path exists. A live daemon accepts the probe; a stale file
    // (previous daemon crashed before unlinking) refuses it and is
    // safe to reclaim.
    if (probeSocket(Opts.SocketPath)) {
      Error = "another daemon is already serving on '" + Opts.SocketPath +
              "' (use --socket= for a second instance, or `vcdryad "
              "client shutdown` to stop it)";
      ::close(Fd);
      return false;
    }
    ::unlink(Opts.SocketPath.c_str());
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      Error = "cannot bind '" + Opts.SocketPath + "' after removing a "
              "stale socket: " +
              std::string(std::strerror(errno));
      ::close(Fd);
      return false;
    }
  }
  if (::listen(Fd, 8) != 0) {
    Error = "cannot listen on '" + Opts.SocketPath +
            "': " + std::string(std::strerror(errno));
    ::close(Fd);
    ::unlink(Opts.SocketPath.c_str());
    return false;
  }
  ListenFd = Fd;
  return true;
}

//===----------------------------------------------------------------------===//
// Responses
//===----------------------------------------------------------------------===//

std::string Daemon::statusResponse() const {
  std::string Out = "{\"ok\": true, \"pid\": " +
                    std::to_string(static_cast<long>(::getpid())) +
                    ", \"socket\": \"" + jsonEscape(Opts.SocketPath) +
                    "\", \"requests\": " + std::to_string(Requests.load());
  Out += ", \"cache_dir\": \"" +
         jsonEscape(Opts.Service.CacheDir) + "\"";
  Out += ", \"incremental\": ";
  Out += Svc.manifest() ? "true" : "false";
  Out += ", \"share_prelude\": ";
  Out += Opts.Service.SharePrelude ? "true" : "false";
  Out += ", \"cache_aware\": ";
  Out += Opts.Service.CacheAware ? "true" : "false";
  Out += ", \"isolate_solvers\": ";
  Out += Opts.Service.IsolateSolvers ? "true" : "false";
  Out += ", \"resident_plans\": " + std::to_string(Svc.residentPlanCount());
  Out += ", \"watch_supported\": ";
  Out += InotifyFd >= 0 ? "true" : "false";
  Out += ", \"watched_files\": " + std::to_string(Registry.fileCount());
  Out += ", \"verifying\": ";
  Out += Verifying.load() ? "true" : "false";
  Out += "}\n";
  return Out;
}

std::string Daemon::cacheStatsResponse() const {
  std::string Out = "{\"ok\": true";
  const service::ProofCache *C = Svc.cache();
  Out += ", \"cache_enabled\": ";
  Out += C ? "true" : "false";
  if (C) {
    service::CacheStats S = C->stats();
    Out += ", \"cache_entries\": " + std::to_string(C->size());
    Out += ", \"cache_hits\": " + std::to_string(S.Hits);
    Out += ", \"cache_misses\": " + std::to_string(S.Misses);
    Out += ", \"cache_stores\": " + std::to_string(S.Stores);
    Out += ", \"l1_hits\": " + std::to_string(S.L1Hits);
    Out += ", \"l2_hits\": " + std::to_string(S.L2Hits);
    Out += ", \"remote_hits\": " + std::to_string(S.RemoteHits);
    Out += ", \"remote_misses\": " + std::to_string(S.RemoteMisses);
    Out += ", \"remote_errors\": " + std::to_string(S.RemoteErrors);
    Out += ", \"remote_wait_ms\": " + std::to_string(S.RemoteWaitMs);
    Out += ", \"remote_enabled\": ";
    Out += C->remoteAttached() ? "true" : "false";
    if (C->remoteAttached())
      Out += ", \"remote_cache\": \"" + jsonEscape(C->remoteAddress()) +
             "\"";
    Out += ", \"cache_journal_bytes\": " + std::to_string(C->journalBytes());
    Out += ", \"cache_journal_recovered\": " +
           std::to_string(C->journalRecovered());
  }
  const service::VcManifest *M = Svc.manifest();
  Out += ", \"manifest_enabled\": ";
  Out += M ? "true" : "false";
  if (M) {
    service::ManifestStats S = M->stats();
    Out += ", \"manifest_entries\": " + std::to_string(M->size());
    Out += ", \"manifest_hits\": " + std::to_string(S.Hits);
    Out += ", \"manifest_misses\": " + std::to_string(S.Misses);
    Out += ", \"manifest_records\": " + std::to_string(S.Records);
    Out += ", \"manifest_journal_bytes\": " +
           std::to_string(M->journalBytes());
    Out += ", \"manifest_journal_recovered\": " +
           std::to_string(M->journalRecovered());
  }
  Out += ", \"resident_plans\": " + std::to_string(Svc.residentPlanCount());
  Out += "}\n";
  return Out;
}

std::string Daemon::watchStatusResponse() const {
  std::string Out = "{\"ok\": true, \"watch_supported\": ";
  Out += InotifyFd >= 0 ? "true" : "false";
  Out += ", \"watched_files\": " + std::to_string(Registry.fileCount());
  Out += ", \"watched_paths\": " + std::to_string(Registry.pathCount());
  Out += ", \"debounce_ms\": " + std::to_string(Debounce.quietWindowMs());
  Out += ", \"pending\": " + std::to_string(Debounce.pending());
  Out += ", \"verifying\": ";
  Out += Verifying.load() ? "true" : "false";
  Out += ", \"last_event_seq\": " + std::to_string(Events.lastSeq());
  Out += "}\n";
  return Out;
}

std::string Daemon::eventsResponse(uint64_t Since) const {
  std::vector<service::WatchEvent> Es = Events.since(Since);
  std::string Out =
      "{\"ok\": true, \"last_seq\": " + std::to_string(Events.lastSeq());
  Out += ", \"events\": [";
  for (size_t I = 0; I < Es.size(); ++I) {
    const service::WatchEvent &E = Es[I];
    if (I)
      Out += ", ";
    Out += "{\"seq\": " + std::to_string(E.Seq);
    Out += ", \"path\": \"" + jsonEscape(E.Path) + "\"";
    Out += ", \"trigger\": \"" + jsonEscape(E.Trigger) + "\"";
    Out += ", \"verified\": ";
    Out += E.Verified ? "true" : "false";
    Out += ", \"functions\": " + std::to_string(E.Functions);
    Out += ", \"failed\": " + std::to_string(E.Failed);
    Out += ", \"wall_ms\": " + formatMs(E.WallMs);
    Out += "}";
  }
  Out += "]}\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Watch plumbing
//===----------------------------------------------------------------------===//

void Daemon::applyWatchDelta(const service::WatchRegistry::Delta &D) {
#ifdef __linux__
  if (InotifyFd < 0)
    return;
  for (const std::string &P : D.Added) {
    std::string Dir = dirOf(P);
    auto It = DirWatch.find(Dir);
    if (It != DirWatch.end()) {
      ++It->second.second;
      continue;
    }
    // Watch the *directory*, filtered by name on delivery: an editor
    // that saves via tempfile + rename replaces the inode, and a
    // file watch would silently follow the deleted one.
    int Wd = ::inotify_add_watch(InotifyFd, Dir.c_str(),
                                 IN_CLOSE_WRITE | IN_MOVED_TO);
    if (Wd < 0) {
      std::fprintf(stderr,
                   "vcdryad serve: cannot watch directory '%s': %s\n",
                   Dir.c_str(), std::strerror(errno));
      continue;
    }
    DirWatch[Dir] = {Wd, 1};
    WdDir[Wd] = Dir;
  }
  for (const std::string &P : D.Removed) {
    std::string Dir = dirOf(P);
    auto It = DirWatch.find(Dir);
    if (It == DirWatch.end())
      continue;
    if (--It->second.second == 0) {
      ::inotify_rm_watch(InotifyFd, It->second.first);
      WdDir.erase(It->second.first);
      DirWatch.erase(It);
    }
  }
#else
  (void)D;
#endif
}

void Daemon::watchAddFile(const std::string &CFile) {
  applyWatchDelta(Registry.add(CFile));
}

void Daemon::watchRemoveFile(const std::string &CFile) {
  applyWatchDelta(Registry.remove(CFile));
}

void Daemon::handleInotify() {
#ifdef __linux__
  // Sized and aligned for at least one maximal event (see inotify(7)).
  alignas(8) char Buf[4096];
  for (;;) {
    ssize_t N = ::read(InotifyFd, Buf, sizeof(Buf));
    if (N <= 0)
      break; // EAGAIN: drained (the fd is non-blocking).
    for (char *P = Buf; P < Buf + N;) {
      auto *Ev = reinterpret_cast<struct inotify_event *>(P);
      P += sizeof(struct inotify_event) + Ev->len;
      if (Ev->len == 0)
        continue; // Directory-level event; names are what we filter by.
      auto It = WdDir.find(Ev->wd);
      if (It == WdDir.end())
        continue; // Raced with inotify_rm_watch.
      std::string Path = It->second + "/" + Ev->name;
      // Only paths in some watched closure matter; everything else in
      // the directory (editor tempfiles, build artifacts) is noise.
      if (!Registry.owners(Path).empty())
        Debounce.note(Path, nowMs());
    }
  }
#endif
}

void Daemon::dispatchRipe() {
  std::vector<std::string> Ripe = Debounce.takeRipe(nowMs());
  if (Ripe.empty())
    return;
  // Union of owning files across the ripe paths, first trigger wins
  // (a header edit plus its .c edit in one burst is one re-verify).
  std::vector<std::pair<std::string, std::string>> Triggers;
  std::set<std::string> SeenFiles;
  for (const std::string &P : Ripe)
    for (const std::string &F : Registry.owners(P))
      if (SeenFiles.insert(F).second)
        Triggers.emplace_back(F, P);
  if (Triggers.empty())
    return;
  // Refresh closures now, at save time: an edit that adds or drops
  // #includes re-wires the directory watches before the next event.
  for (const auto &[F, T] : Triggers)
    watchAddFile(F);
  VerifyJob J;
  for (const auto &[F, T] : Triggers)
    J.Inputs.push_back(F);
  J.Triggers = std::move(Triggers);
  enqueue(std::move(J));
}

//===----------------------------------------------------------------------===//
// Worker thread
//===----------------------------------------------------------------------===//

void Daemon::enqueue(VerifyJob Job) {
  {
    std::lock_guard<std::mutex> Lock(JobMu);
    JobQueue.push_back(std::move(Job));
  }
  JobCv.notify_one();
}

void Daemon::startWorker() {
  WorkerStop = false;
  Worker = std::thread([this] { workerLoop(); });
}

void Daemon::stopWorker() {
  {
    std::lock_guard<std::mutex> Lock(JobMu);
    WorkerStop = true;
  }
  JobCv.notify_all();
  if (Worker.joinable())
    Worker.join();
  // Whatever the worker never got to: clients deserve an answer, not
  // a hang-up mid-wait.
  for (VerifyJob &J : JobQueue) {
    if (J.ClientFd >= 0) {
      writeAll(J.ClientFd, errorResponse("daemon shutting down"));
      ::close(J.ClientFd);
    }
  }
  JobQueue.clear();
}

void Daemon::workerLoop() {
  for (;;) {
    VerifyJob Job;
    {
      std::unique_lock<std::mutex> Lock(JobMu);
      JobCv.wait(Lock, [this] { return WorkerStop || !JobQueue.empty(); });
      if (WorkerStop)
        return; // Leftovers are answered by stopWorker().
      Job = std::move(JobQueue.front());
      JobQueue.pop_front();
    }
    runJob(Job);
  }
}

void Daemon::runJob(VerifyJob &Job) {
  Verifying.store(true);
  Timer Wall;
  service::BatchReport Rep = Svc.run(Job.Inputs);
  double WallMs = Wall.millis();
  Verifying.store(false);

  if (Job.ClientFd >= 0) {
    writeAll(Job.ClientFd,
             service::toJson(Rep, Job.JsonTimes, Job.ChangedOnly));
    ::close(Job.ClientFd);
    return;
  }
  // Watch job: one ring entry per affected file. A coalesced burst
  // re-verified several files in one run; each entry carries that
  // run's wall time (the save-to-verdict latency a client observes).
  for (const auto &[File, Trigger] : Job.Triggers) {
    service::WatchEvent E;
    E.Path = File;
    E.Trigger = Trigger;
    E.WallMs = WallMs;
    for (const service::FileReport &FR : Rep.Files) {
      if (FR.Path != File)
        continue;
      E.Functions = static_cast<unsigned>(FR.Functions.size());
      for (const service::FunctionReport &Fn : FR.Functions)
        if (!Fn.Result.Verified)
          ++E.Failed;
      E.Verified = FR.Ok && E.Failed == 0;
    }
    Events.append(std::move(E));
  }
}

//===----------------------------------------------------------------------===//
// Connections
//===----------------------------------------------------------------------===//

Daemon::ConnResult Daemon::handleConnection(int Fd) {
  ++Requests;
  std::string Line;
  size_t Cap = Opts.MaxRequestBytes ? Opts.MaxRequestBytes : 4u << 20;
  switch (readRequestLine(Fd, Line, Cap)) {
  case ReadStatus::Ok:
    break;
  case ReadStatus::TooLarge:
    writeAll(Fd, errorResponse(
                     "request too large (over " + std::to_string(Cap) +
                     " bytes); split the batch or raise "
                     "--max-request-mb="));
    return ConnResult::Done;
  case ReadStatus::IoError:
    // The transport is gone; a response would only earn an EPIPE.
    return ConnResult::Done;
  }
  Request R;
  std::string Error;
  if (!parseRequest(Line, R, Error)) {
    writeAll(Fd, errorResponse("malformed request: " + Error));
    return ConnResult::Done;
  }

  if (R.Op == "verify") {
    std::vector<std::string> Inputs =
        service::collectBatchInputs(R.Paths, Error);
    if (!Error.empty()) {
      writeAll(Fd, errorResponse(Error));
      return ConnResult::Done;
    }
    if (Inputs.empty()) {
      writeAll(Fd, errorResponse("verify operands contain no .c files"));
      return ConnResult::Done;
    }
    // Off the event thread: the worker runs the batch, answers and
    // closes the fd; status/events stay answerable meanwhile.
    VerifyJob J;
    J.ClientFd = Fd;
    J.Inputs = std::move(Inputs);
    J.JsonTimes = R.JsonTimes;
    J.ChangedOnly = R.ChangedOnly;
    enqueue(std::move(J));
    return ConnResult::Handed;
  }
  if (R.Op == "status") {
    writeAll(Fd, statusResponse());
    return ConnResult::Done;
  }
  if (R.Op == "cache-stats") {
    writeAll(Fd, cacheStatsResponse());
    return ConnResult::Done;
  }
  if (R.Op == "watch-add" || R.Op == "watch-rm") {
    if (InotifyFd < 0) {
      writeAll(Fd, errorResponse("watch mode unsupported on this "
                                 "platform (inotify unavailable)"));
      return ConnResult::Done;
    }
    std::vector<std::string> Inputs =
        service::collectBatchInputs(R.Paths, Error);
    if (!Error.empty()) {
      writeAll(Fd, errorResponse(Error));
      return ConnResult::Done;
    }
    if (Inputs.empty()) {
      writeAll(Fd, errorResponse(R.Op + " operands contain no .c files"));
      return ConnResult::Done;
    }
    for (const std::string &F : Inputs) {
      if (R.Op == "watch-add")
        watchAddFile(F);
      else
        watchRemoveFile(F);
    }
    writeAll(Fd, "{\"ok\": true, \"watched_files\": " +
                     std::to_string(Registry.fileCount()) +
                     ", \"watched_paths\": " +
                     std::to_string(Registry.pathCount()) + "}\n");
    return ConnResult::Done;
  }
  if (R.Op == "watch-status") {
    writeAll(Fd, watchStatusResponse());
    return ConnResult::Done;
  }
  if (R.Op == "events") {
    writeAll(Fd, eventsResponse(R.Since));
    return ConnResult::Done;
  }
  if (R.Op == "shutdown") {
    writeAll(Fd, "{\"ok\": true, \"shutting_down\": true}\n");
    service::requestShutdown();
    return ConnResult::Shutdown;
  }
  writeAll(Fd, errorResponse("unknown op '" + R.Op + "'"));
  return ConnResult::Done;
}

bool Daemon::acceptClients() {
  for (;;) {
    int Err;
    if (!InjectedAcceptErrors.empty()) {
      // Fault injection: consume one scripted errno through the same
      // classification the real accept path uses.
      Err = InjectedAcceptErrors.front();
      InjectedAcceptErrors.pop_front();
    } else {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd >= 0) {
        ConnResult CR = handleConnection(Fd);
        if (CR != ConnResult::Handed)
          ::close(Fd);
        continue; // Drain whatever else queued behind this one.
      }
      Err = errno;
    }
    switch (classifyAcceptError(Err)) {
    case AcceptAction::Done:
      return true; // EAGAIN: the listener is drained.
    case AcceptAction::Retry:
      continue; // That connection died; the next may be fine.
    case AcceptAction::Backoff:
      std::fprintf(stderr,
                   "vcdryad serve: accept failed (%s); backing off "
                   "%u ms\n",
                   std::strerror(Err), Opts.AcceptBackoffMs);
      ::poll(nullptr, 0, static_cast<int>(Opts.AcceptBackoffMs));
      return true; // Re-enter the event loop; readiness re-polls.
    case AcceptAction::Fatal:
      std::fprintf(stderr, "vcdryad serve: accept failed: %s\n",
                   std::strerror(Err));
      return false;
    }
  }
}

//===----------------------------------------------------------------------===//
// The event loop
//===----------------------------------------------------------------------===//

int Daemon::serve() {
  if (ListenFd < 0)
    return 1;
  // A client that disconnects mid-response must not kill the daemon;
  // writeAll sees the EPIPE instead.
  std::signal(SIGPIPE, SIG_IGN);

  if (!setNonBlocking(ListenFd)) {
    std::fprintf(stderr,
                 "vcdryad serve: cannot make listener non-blocking: %s\n",
                 std::strerror(errno));
    return 1;
  }

  // Self-pipe: requestShutdown() (often signal-handler context)
  // writes one byte; poll() wakes instead of sleeping out its
  // timeout with the flag already raised.
  if (::pipe(WakePipe) != 0) {
    std::fprintf(stderr, "vcdryad serve: cannot create wake pipe: %s\n",
                 std::strerror(errno));
    return 1;
  }
  setNonBlocking(WakePipe[0]);
  setNonBlocking(WakePipe[1]);
  service::setShutdownWakeFd(WakePipe[1]);

#ifdef __linux__
  InotifyFd = ::inotify_init1(IN_NONBLOCK | IN_CLOEXEC);
  // Failure (fd exhaustion, ancient kernel) degrades to "watch
  // unsupported", the same answer other platforms give.
#endif

  InjectedAcceptErrors = parseInjectedAcceptErrors();
  startWorker();

  for (const std::string &P : Opts.WatchPaths)
    watchAddFile(P);

  int Exit = 0;
  while (!service::shutdownRequested()) {
    struct pollfd Pfds[3];
    Pfds[0] = {ListenFd, POLLIN, 0};
    Pfds[1] = {WakePipe[0], POLLIN, 0};
    nfds_t N = 2;
    if (InotifyFd >= 0)
      Pfds[N++] = {InotifyFd, POLLIN, 0};

    int R = ::poll(Pfds, N, Debounce.nextDeadlineMs(nowMs()));
    if (R < 0) {
      if (errno == EINTR)
        continue; // Signal: the loop condition re-checks the flag.
      std::fprintf(stderr, "vcdryad serve: poll failed: %s\n",
                   std::strerror(errno));
      Exit = 1;
      break;
    }
    if (Pfds[1].revents) {
      char Drain[64];
      while (::read(WakePipe[0], Drain, sizeof(Drain)) > 0)
        ;
    }
    if (InotifyFd >= 0 && Pfds[2].revents)
      handleInotify();
    if (Pfds[0].revents && !acceptClients()) {
      Exit = 1;
      break;
    }
    dispatchRipe();
  }

  stopWorker();
  service::setShutdownWakeFd(-1);
  ::close(WakePipe[0]);
  ::close(WakePipe[1]);
  WakePipe[0] = WakePipe[1] = -1;
  if (InotifyFd >= 0) {
    ::close(InotifyFd); // Kernel drops all watches with the fd.
    InotifyFd = -1;
  }

  // Graceful exit: compact the journaled stores (everything already
  // recorded is journal-durable even without this), then release the
  // path for the next daemon.
  Svc.flushStores();
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(Opts.SocketPath.c_str());
  return Exit;
}
