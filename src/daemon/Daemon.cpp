//===- Daemon.cpp - Resident verification daemon ---------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "daemon/Daemon.h"

#include "daemon/Client.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vcdryad;
using namespace vcdryad::daemon;

namespace {

bool writeAll(int Fd, const std::string &Data) {
  const char *P = Data.data();
  size_t Len = Data.size();
  while (Len > 0) {
    // MSG_NOSIGNAL: even if this process never installed the SIG_IGN
    // in serve() (embedders calling handleConnection paths, tests), a
    // vanished client yields EPIPE here, not SIGPIPE.
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false; // EPIPE: client went away; nothing to salvage.
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

enum class ReadStatus { Ok, TooLarge, IoError };

/// Reads up to the first '\n' (consumed, not included) or EOF.
/// Distinguishes an oversized request (answerable with a clean error)
/// from a broken transport (nobody left to answer).
ReadStatus readRequestLine(int Fd, std::string &Line, size_t MaxBytes) {
  Line.clear();
  char Buf[4096];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return ReadStatus::IoError;
    }
    if (N == 0)
      return ReadStatus::Ok; // EOF before a newline: take what we have.
    for (ssize_t I = 0; I < N; ++I) {
      if (Buf[I] == '\n')
        return ReadStatus::Ok;
      Line += Buf[I];
      if (Line.size() > MaxBytes)
        return ReadStatus::TooLarge;
    }
  }
}

} // namespace

Daemon::Daemon(DaemonOptions O)
    : Opts(std::move(O)), Svc(Opts.Service) {}

Daemon::~Daemon() {
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
  }
}

bool Daemon::bind(std::string &Error) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: '" + Opts.SocketPath + "' (max " +
            std::to_string(sizeof(Addr.sun_path) - 1) + " bytes)";
    return false;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = "cannot create socket: " + std::string(std::strerror(errno));
    return false;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    if (errno != EADDRINUSE) {
      Error = "cannot bind '" + Opts.SocketPath +
              "': " + std::string(std::strerror(errno));
      ::close(Fd);
      return false;
    }
    // The path exists. A live daemon accepts the probe; a stale file
    // (previous daemon crashed before unlinking) refuses it and is
    // safe to reclaim.
    if (probeSocket(Opts.SocketPath)) {
      Error = "another daemon is already serving on '" + Opts.SocketPath +
              "' (use --socket= for a second instance, or `vcdryad "
              "client shutdown` to stop it)";
      ::close(Fd);
      return false;
    }
    ::unlink(Opts.SocketPath.c_str());
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      Error = "cannot bind '" + Opts.SocketPath + "' after removing a "
              "stale socket: " +
              std::string(std::strerror(errno));
      ::close(Fd);
      return false;
    }
  }
  if (::listen(Fd, 8) != 0) {
    Error = "cannot listen on '" + Opts.SocketPath +
            "': " + std::string(std::strerror(errno));
    ::close(Fd);
    ::unlink(Opts.SocketPath.c_str());
    return false;
  }
  ListenFd = Fd;
  return true;
}

std::string Daemon::statusResponse() const {
  std::string Out = "{\"ok\": true, \"pid\": " +
                    std::to_string(static_cast<long>(::getpid())) +
                    ", \"socket\": \"" + jsonEscape(Opts.SocketPath) +
                    "\", \"requests\": " + std::to_string(Requests);
  Out += ", \"cache_dir\": \"" +
         jsonEscape(Opts.Service.CacheDir) + "\"";
  Out += ", \"incremental\": ";
  Out += Svc.manifest() ? "true" : "false";
  Out += ", \"share_prelude\": ";
  Out += Opts.Service.SharePrelude ? "true" : "false";
  Out += ", \"cache_aware\": ";
  Out += Opts.Service.CacheAware ? "true" : "false";
  Out += ", \"isolate_solvers\": ";
  Out += Opts.Service.IsolateSolvers ? "true" : "false";
  Out += ", \"resident_plans\": " + std::to_string(Svc.residentPlanCount());
  Out += "}\n";
  return Out;
}

std::string Daemon::cacheStatsResponse() const {
  std::string Out = "{\"ok\": true";
  const service::ProofCache *C = Svc.cache();
  Out += ", \"cache_enabled\": ";
  Out += C ? "true" : "false";
  if (C) {
    service::CacheStats S = C->stats();
    Out += ", \"cache_entries\": " + std::to_string(C->size());
    Out += ", \"cache_hits\": " + std::to_string(S.Hits);
    Out += ", \"cache_misses\": " + std::to_string(S.Misses);
    Out += ", \"cache_stores\": " + std::to_string(S.Stores);
    Out += ", \"l1_hits\": " + std::to_string(S.L1Hits);
    Out += ", \"l2_hits\": " + std::to_string(S.L2Hits);
    Out += ", \"remote_hits\": " + std::to_string(S.RemoteHits);
    Out += ", \"remote_misses\": " + std::to_string(S.RemoteMisses);
    Out += ", \"remote_errors\": " + std::to_string(S.RemoteErrors);
    Out += ", \"remote_wait_ms\": " + std::to_string(S.RemoteWaitMs);
    Out += ", \"remote_enabled\": ";
    Out += C->remoteAttached() ? "true" : "false";
    if (C->remoteAttached())
      Out += ", \"remote_cache\": \"" + jsonEscape(C->remoteAddress()) +
             "\"";
    Out += ", \"cache_journal_bytes\": " + std::to_string(C->journalBytes());
    Out += ", \"cache_journal_recovered\": " +
           std::to_string(C->journalRecovered());
  }
  const service::VcManifest *M = Svc.manifest();
  Out += ", \"manifest_enabled\": ";
  Out += M ? "true" : "false";
  if (M) {
    service::ManifestStats S = M->stats();
    Out += ", \"manifest_entries\": " + std::to_string(M->size());
    Out += ", \"manifest_hits\": " + std::to_string(S.Hits);
    Out += ", \"manifest_misses\": " + std::to_string(S.Misses);
    Out += ", \"manifest_records\": " + std::to_string(S.Records);
    Out += ", \"manifest_journal_bytes\": " +
           std::to_string(M->journalBytes());
    Out += ", \"manifest_journal_recovered\": " +
           std::to_string(M->journalRecovered());
  }
  Out += ", \"resident_plans\": " + std::to_string(Svc.residentPlanCount());
  Out += "}\n";
  return Out;
}

bool Daemon::handleConnection(int Fd) {
  ++Requests;
  std::string Line;
  size_t Cap = Opts.MaxRequestBytes ? Opts.MaxRequestBytes : 4u << 20;
  switch (readRequestLine(Fd, Line, Cap)) {
  case ReadStatus::Ok:
    break;
  case ReadStatus::TooLarge:
    writeAll(Fd, errorResponse(
                     "request too large (over " + std::to_string(Cap) +
                     " bytes); split the batch or raise "
                     "--max-request-mb="));
    return false;
  case ReadStatus::IoError:
    // The transport is gone; a response would only earn an EPIPE.
    return false;
  }
  Request R;
  std::string Error;
  if (!parseRequest(Line, R, Error)) {
    writeAll(Fd, errorResponse("malformed request: " + Error));
    return false;
  }

  if (R.Op == "verify") {
    std::vector<std::string> Inputs =
        service::collectBatchInputs(R.Paths, Error);
    if (!Error.empty()) {
      writeAll(Fd, errorResponse(Error));
      return false;
    }
    if (Inputs.empty()) {
      writeAll(Fd, errorResponse("verify operands contain no .c files"));
      return false;
    }
    service::BatchReport Rep = Svc.run(Inputs);
    writeAll(Fd, service::toJson(Rep, R.JsonTimes, R.ChangedOnly));
    return false;
  }
  if (R.Op == "status") {
    writeAll(Fd, statusResponse());
    return false;
  }
  if (R.Op == "cache-stats") {
    writeAll(Fd, cacheStatsResponse());
    return false;
  }
  if (R.Op == "shutdown") {
    writeAll(Fd, "{\"ok\": true, \"shutting_down\": true}\n");
    service::requestShutdown();
    return true;
  }
  writeAll(Fd, errorResponse("unknown op '" + R.Op + "'"));
  return false;
}

int Daemon::serve() {
  if (ListenFd < 0)
    return 1;
  // A client that disconnects mid-response must not kill the daemon;
  // writeAll sees the EPIPE instead.
  std::signal(SIGPIPE, SIG_IGN);

  int Exit = 0;
  while (!service::shutdownRequested()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue; // Signal: the loop condition re-checks the flag.
      std::fprintf(stderr, "vcdryad serve: accept failed: %s\n",
                   std::strerror(errno));
      Exit = 1;
      break;
    }
    bool Shutdown = handleConnection(Fd);
    ::close(Fd);
    if (Shutdown)
      break;
  }

  // Graceful exit: compact the journaled stores (everything already
  // recorded is journal-durable even without this), then release the
  // path for the next daemon.
  Svc.flushStores();
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(Opts.SocketPath.c_str());
  return Exit;
}
