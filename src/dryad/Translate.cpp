//===- Translate.cpp - DRYAD to classical logic (Figure 4) -----------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "dryad/Translate.h"

#include <cassert>
#include <functional>

using namespace vcdryad;
using namespace vcdryad::dryad;
using namespace vcdryad::vir;

std::function<LExprRef(const FieldKey &)>
dryad::prefixedArrays(std::string Prefix) {
  return [Prefix = std::move(Prefix)](const FieldKey &FK) {
    return mkVar(Prefix + FK.arrayName(), FK.arraySort());
  };
}

/// Union that folds away syntactic empty sets.
static LExprRef unionOf(LExprRef A, LExprRef B) {
  if (A->Op == LOp::EmptySet)
    return B;
  if (B->Op == LOp::EmptySet)
    return A;
  return mkUnion(std::move(A), std::move(B));
}

static LExprRef emptyLocSet() { return mkEmptySet(Sort::SetLoc); }

LExprRef Translator::error(SourceLoc Loc, const std::string &Msg) {
  Diag.error(Loc, Msg);
  return mkBool(true);
}

//===----------------------------------------------------------------------===//
// Domain-exactness (Section 2)
//===----------------------------------------------------------------------===//

bool Translator::domainExactTerm(const TermRef &T) const {
  switch (T->Kind) {
  case TermKind::DefApp:
    return true;
  case TermKind::Add:
  case TermKind::Sub:
  case TermKind::SetUnion:
  case TermKind::SetInter:
  case TermKind::SetMinus:
    return domainExactTerm(T->Args[0]) && domainExactTerm(T->Args[1]);
  case TermKind::Ite:
    return domainExactTerm(T->Args[0]) && domainExactTerm(T->Args[1]);
  default:
    return false;
  }
}

bool Translator::domainExactFormula(const FormulaRef &F) const {
  switch (F->Kind) {
  case FormulaKind::Emp:
  case FormulaKind::PointsTo:
  case FormulaKind::PredApp:
    return true;
  case FormulaKind::Cmp:
  case FormulaKind::In:
  case FormulaKind::SubsetOf:
    return domainExactTerm(F->Terms[0]) && domainExactTerm(F->Terms[1]);
  case FormulaKind::And:
    return domainExactFormula(F->Subs[0]) || domainExactFormula(F->Subs[1]);
  case FormulaKind::Or:
  case FormulaKind::Sep:
    return domainExactFormula(F->Subs[0]) && domainExactFormula(F->Subs[1]);
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Scope (Section 2)
//===----------------------------------------------------------------------===//

LExprRef Translator::scopeOfTerm(const TermRef &T, const TranslateEnv &Env) {
  switch (T->Kind) {
  case TermKind::Var:
  case TermKind::Nil:
  case TermKind::IntLit:
  case TermKind::Result:
  case TermKind::EmptySet:
  case TermKind::HeapletOf:
  case TermKind::Old:
    return emptyLocSet();
  case TermKind::FieldRead:
    return unionOf(scopeOfTerm(T->Args[0], Env),
                   mkSingleton(term(T->Args[0], Env), Sort::SetLoc));
  case TermKind::DefApp: {
    const RecDef *Def = Defs.lookup(T->Name);
    if (!Def)
      return emptyLocSet();
    std::vector<LExprRef> Args;
    for (const TermRef &A : T->Args)
      Args.push_back(term(A, Env));
    return heapletApp(*Def, std::move(Args), Env);
  }
  case TermKind::Add:
  case TermKind::Sub:
  case TermKind::SetUnion:
  case TermKind::SetInter:
  case TermKind::SetMinus:
  case TermKind::Singleton: {
    LExprRef S = emptyLocSet();
    for (const TermRef &A : T->Args)
      S = unionOf(S, scopeOfTerm(A, Env));
    return S;
  }
  case TermKind::Ite:
    return mkIte(formula(T->CondF, Env, nullptr),
                 scopeOfTerm(T->Args[0], Env),
                 scopeOfTerm(T->Args[1], Env));
  }
  return emptyLocSet();
}

LExprRef Translator::scopeOfFormula(const FormulaRef &F,
                                    const TranslateEnv &Env) {
  switch (F->Kind) {
  case FormulaKind::True:
  case FormulaKind::False:
  case FormulaKind::Emp:
  case FormulaKind::Disjoint:
  case FormulaKind::OldF:
  case FormulaKind::Implies:
  case FormulaKind::Pure:
    return emptyLocSet();
  case FormulaKind::PointsTo:
    return mkSingleton(term(F->Terms[0], Env), Sort::SetLoc);
  case FormulaKind::Cmp:
  case FormulaKind::In:
  case FormulaKind::SubsetOf: {
    // Scope of an atom: union of the term scopes. When only one side
    // is domain-exact, that side pins the atom's heap need (this is
    // the simplification the paper itself uses when presenting the
    // translated bst definition in Section 2).
    bool D0 = domainExactTerm(F->Terms[0]);
    bool D1 = domainExactTerm(F->Terms[1]);
    if (D0 && !D1)
      return scopeOfTerm(F->Terms[0], Env);
    if (D1 && !D0)
      return scopeOfTerm(F->Terms[1], Env);
    return unionOf(scopeOfTerm(F->Terms[0], Env),
                   scopeOfTerm(F->Terms[1], Env));
  }
  case FormulaKind::PredApp: {
    const RecDef *Def = Defs.lookup(F->Name);
    if (!Def)
      return emptyLocSet();
    std::vector<LExprRef> Args;
    for (const TermRef &A : F->Terms)
      Args.push_back(term(A, Env));
    return heapletApp(*Def, std::move(Args), Env);
  }
  case FormulaKind::Not:
    return scopeOfFormula(F->Subs[0], Env);
  case FormulaKind::And: {
    // The domain-exact conjunct determines the heaplet.
    bool D0 = domainExactFormula(F->Subs[0]);
    bool D1 = domainExactFormula(F->Subs[1]);
    if (D0 && !D1)
      return scopeOfFormula(F->Subs[0], Env);
    if (D1 && !D0)
      return scopeOfFormula(F->Subs[1], Env);
    return unionOf(scopeOfFormula(F->Subs[0], Env),
                   scopeOfFormula(F->Subs[1], Env));
  }
  case FormulaKind::Or:
  case FormulaKind::Sep:
    return unionOf(scopeOfFormula(F->Subs[0], Env),
                   scopeOfFormula(F->Subs[1], Env));
  }
  return emptyLocSet();
}

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

LExprRef Translator::defApp(const RecDef &Def, std::vector<LExprRef> Args,
                            const TranslateEnv &Env) {
  std::vector<LExprRef> All;
  const auto &Resolver = Env.InOld && Env.OldArray ? Env.OldArray
                                                   : Env.CurArray;
  for (const FieldKey &FK : Def.Fields)
    All.push_back(Resolver(FK));
  for (LExprRef &A : Args)
    All.push_back(std::move(A));
  Sort Ret = Def.IsPredicate ? Sort::Bool : Def.RetSort;
  return mkApp(Def.symbolName(), Ret, std::move(All));
}

LExprRef Translator::heapletApp(const RecDef &Def,
                                std::vector<LExprRef> Args,
                                const TranslateEnv &Env) {
  std::vector<LExprRef> All;
  const auto &Resolver = Env.InOld && Env.OldArray ? Env.OldArray
                                                   : Env.CurArray;
  for (const FieldKey &FK : Def.Fields)
    All.push_back(Resolver(FK));
  for (LExprRef &A : Args)
    All.push_back(std::move(A));
  return mkApp(Def.heapletSymbolName(), Sort::SetLoc, std::move(All));
}

LExprRef Translator::term(const TermRef &T, const TranslateEnv &Env) {
  switch (T->Kind) {
  case TermKind::Var: {
    if (Env.InOld) {
      auto It = Env.OldVars.find(T->Name);
      if (It != Env.OldVars.end())
        return It->second;
    }
    auto It = Env.Vars.find(T->Name);
    if (It != Env.Vars.end())
      return It->second;
    Diag.error(T->Loc, "unknown variable '" + T->Name + "' in specification");
    return mkVar(T->Name, T->sort());
  }
  case TermKind::Nil:
    return mkNil();
  case TermKind::IntLit:
    return mkInt(T->IntVal);
  case TermKind::Result:
    if (!Env.ResultVal) {
      Diag.error(T->Loc, "'result' is only available in postconditions");
      return mkVar("$result", T->sort());
    }
    return Env.ResultVal;
  case TermKind::Add:
    return mkIntAdd(term(T->Args[0], Env), term(T->Args[1], Env));
  case TermKind::Sub:
    return mkIntSub(term(T->Args[0], Env), term(T->Args[1], Env));
  case TermKind::FieldRead: {
    const TermRef &Base = T->Args[0];
    FieldKey FK{Base->StructName, T->Name,
                T->sort() == Sort::Loc ? Sort::Loc : Sort::Int};
    const auto &Resolver = Env.InOld && Env.OldArray ? Env.OldArray
                                                     : Env.CurArray;
    return mkSelect(Resolver(FK), term(Base, Env));
  }
  case TermKind::DefApp: {
    const RecDef *Def = Defs.lookup(T->Name);
    if (!Def) {
      Diag.error(T->Loc, "unknown recursive function '" + T->Name + "'");
      return mkVar("$undef", T->sort());
    }
    std::vector<LExprRef> Args;
    for (const TermRef &A : T->Args)
      Args.push_back(term(A, Env));
    return defApp(*Def, std::move(Args), Env);
  }
  case TermKind::HeapletOf: {
    const RecDef *Def = Defs.lookup(T->Name);
    if (!Def) {
      Diag.error(T->Loc, "unknown definition '" + T->Name + "'");
      return emptyLocSet();
    }
    std::vector<LExprRef> Args;
    for (const TermRef &A : T->Args)
      Args.push_back(term(A, Env));
    return heapletApp(*Def, std::move(Args), Env);
  }
  case TermKind::Old: {
    TranslateEnv E2 = Env;
    E2.InOld = true;
    return term(T->Args[0], E2);
  }
  case TermKind::EmptySet:
    return mkEmptySet(T->sort());
  case TermKind::Singleton:
    return mkSingleton(term(T->Args[0], Env), T->sort());
  case TermKind::SetUnion:
    return mkUnion(term(T->Args[0], Env), term(T->Args[1], Env));
  case TermKind::SetInter:
    return mkInter(term(T->Args[0], Env), term(T->Args[1], Env));
  case TermKind::SetMinus:
    return mkMinus(term(T->Args[0], Env), term(T->Args[1], Env));
  case TermKind::Ite:
    return mkIte(formula(T->CondF, Env, nullptr), term(T->Args[0], Env),
                 term(T->Args[1], Env));
  }
  return mkBool(true);
}

//===----------------------------------------------------------------------===//
// Formulas (Figure 4)
//===----------------------------------------------------------------------===//

LExprRef Translator::translateCmp(const Formula &F, const TranslateEnv &Env) {
  LExprRef A = term(F.Terms[0], Env);
  LExprRef B = term(F.Terms[1], Env);
  Sort SA = A->sort();
  Sort SB = B->sort();
  CmpOp Op = F.Op;

  auto IsIntSet = [](Sort S) {
    return S == Sort::SetInt || S == Sort::MSetInt;
  };

  if (SA == Sort::Int && SB == Sort::Int) {
    switch (Op) {
    case CmpOp::Eq:
      return mkEq(A, B);
    case CmpOp::Ne:
      return mkNe(A, B);
    case CmpOp::Lt:
      return mkIntLt(A, B);
    case CmpOp::Le:
      return mkIntLe(A, B);
    case CmpOp::Gt:
      return mkIntLt(B, A);
    case CmpOp::Ge:
      return mkIntLe(B, A);
    }
  }
  if (SA == Sort::Loc && SB == Sort::Loc) {
    if (Op == CmpOp::Eq)
      return mkEq(A, B);
    if (Op == CmpOp::Ne)
      return mkNe(A, B);
    return error(F.Loc, "locations admit only == and !=");
  }
  if (SA == SB && (IsIntSet(SA) || SA == Sort::SetLoc)) {
    if (Op == CmpOp::Eq)
      return mkEq(A, B);
    if (Op == CmpOp::Ne)
      return mkNe(A, B);
    if (SA == Sort::SetLoc)
      return error(F.Loc, "location sets admit only == and !=");
    switch (Op) {
    case CmpOp::Lt:
      return mkSetCmp(LOp::SetLtSet, A, B);
    case CmpOp::Le:
      return mkSetCmp(LOp::SetLeSet, A, B);
    case CmpOp::Gt:
      return mkSetCmp(LOp::SetLtSet, B, A);
    case CmpOp::Ge:
      return mkSetCmp(LOp::SetLeSet, B, A);
    default:
      break;
    }
  }
  if (IsIntSet(SA) && SB == Sort::Int) {
    switch (Op) {
    case CmpOp::Lt:
      return mkSetCmp(LOp::SetLtInt, A, B);
    case CmpOp::Le:
      return mkSetCmp(LOp::SetLeInt, A, B);
    case CmpOp::Gt:
      return mkSetCmp(LOp::IntLtSet, B, A);
    case CmpOp::Ge:
      return mkSetCmp(LOp::IntLeSet, B, A);
    default:
      return error(F.Loc, "set and integer admit only ordering comparisons");
    }
  }
  if (SA == Sort::Int && IsIntSet(SB)) {
    switch (Op) {
    case CmpOp::Lt:
      return mkSetCmp(LOp::IntLtSet, A, B);
    case CmpOp::Le:
      return mkSetCmp(LOp::IntLeSet, A, B);
    case CmpOp::Gt:
      return mkSetCmp(LOp::SetLtInt, B, A);
    case CmpOp::Ge:
      return mkSetCmp(LOp::SetLeInt, B, A);
    default:
      return error(F.Loc, "integer and set admit only ordering comparisons");
    }
  }
  return error(F.Loc, "ill-sorted comparison between '" + F.Terms[0]->str() +
                          "' and '" + F.Terms[1]->str() + "'");
}

LExprRef Translator::formula(const FormulaRef &F, const TranslateEnv &Env,
                             LExprRef G) {
  switch (F->Kind) {
  case FormulaKind::True:
    return mkBool(true);
  case FormulaKind::False:
    return mkBool(false);
  case FormulaKind::Emp:
    return G ? mkEq(G, emptyLocSet()) : mkBool(true);
  case FormulaKind::PointsTo: {
    LExprRef X = term(F->Terms[0], Env);
    LExprRef Base = mkNe(X, mkNil());
    if (!G)
      return Base;
    return mkAnd(Base, mkEq(G, mkSingleton(X, Sort::SetLoc)));
  }
  case FormulaKind::Cmp:
  case FormulaKind::In:
  case FormulaKind::SubsetOf: {
    LExprRef Atom;
    if (F->Kind == FormulaKind::Cmp) {
      Atom = translateCmp(*F, Env);
    } else {
      LExprRef A = term(F->Terms[0], Env);
      LExprRef B = term(F->Terms[1], Env);
      Atom = F->Kind == FormulaKind::In ? mkMember(A, B) : mkSubset(A, B);
      if (F->Negated)
        Atom = mkNot(Atom);
    }
    // Figure 4: a domain-exact atom pins the heaplet to its scope; a
    // mixed atom still needs its scope within the heaplet
    // (well-definedness — this is how e.g. keys_heaplet(x) gets tied
    // to the heaplet of bst(x) in the paper's Section 3.2 example).
    if (G && domainExactFormula(F))
      return mkAnd(Atom, mkEq(G, scopeOfFormula(F, Env)));
    if (G) {
      LExprRef Scope = scopeOfFormula(F, Env);
      if (Scope->Op != LOp::EmptySet)
        return mkAnd(Atom, mkSubset(Scope, G));
    }
    return Atom;
  }
  case FormulaKind::Disjoint: {
    LExprRef Atom =
        mkDisjoint(term(F->Terms[0], Env), term(F->Terms[1], Env));
    if (G) {
      LExprRef Scope = unionOf(scopeOfTerm(F->Terms[0], Env),
                               scopeOfTerm(F->Terms[1], Env));
      if (Scope->Op != LOp::EmptySet)
        return mkAnd(Atom, mkSubset(Scope, G));
    }
    return Atom;
  }
  case FormulaKind::PredApp: {
    const RecDef *Def = Defs.lookup(F->Name);
    if (!Def)
      return error(F->Loc, "unknown predicate '" + F->Name + "'");
    if (Def->Params.size() != F->Terms.size())
      return error(F->Loc, "wrong number of arguments to '" + F->Name + "'");
    std::vector<LExprRef> Args;
    for (const TermRef &A : F->Terms)
      Args.push_back(term(A, Env));
    LExprRef App = defApp(*Def, Args, Env);
    if (!G)
      return App;
    return mkAnd(App, mkEq(G, heapletApp(*Def, Args, Env)));
  }
  case FormulaKind::Not: {
    if (domainExactFormula(F->Subs[0]))
      return error(F->Loc,
                   "negation of a heap formula is not expressible in DRYAD");
    LExprRef Atom = mkNot(formula(F->Subs[0], Env, nullptr));
    if (G) {
      LExprRef Scope = scopeOfFormula(F->Subs[0], Env);
      if (Scope->Op != LOp::EmptySet)
        return mkAnd(Atom, mkSubset(Scope, G));
    }
    return Atom;
  }
  case FormulaKind::And:
    return mkAnd(formula(F->Subs[0], Env, G), formula(F->Subs[1], Env, G));
  case FormulaKind::Or:
    return mkOr(formula(F->Subs[0], Env, G), formula(F->Subs[1], Env, G));
  case FormulaKind::Sep: {
    const FormulaRef &L = F->Subs[0];
    const FormulaRef &R = F->Subs[1];
    if (!G) {
      // Heapless context: separation degenerates to conjunction of the
      // heapless translations (used for old() and axiom bodies).
      return mkAnd(formula(L, Env, nullptr), formula(R, Env, nullptr));
    }
    bool DL = domainExactFormula(L);
    bool DR = domainExactFormula(R);
    LExprRef SL = scopeOfFormula(L, Env);
    LExprRef SR = scopeOfFormula(R, Env);
    if (DL && DR)
      return mkAnd({formula(L, Env, SL), formula(R, Env, SR),
                    mkEq(unionOf(SL, SR), G), mkDisjoint(SL, SR)});
    if (DL && !DR)
      return mkAnd({mkSubset(SL, G), formula(L, Env, SL),
                    formula(R, Env, mkMinus(G, SL))});
    if (!DL && DR)
      return mkAnd({mkSubset(SR, G), formula(R, Env, SR),
                    formula(L, Env, mkMinus(G, SR))});
    return mkAnd({formula(L, Env, SL), formula(R, Env, SR),
                  mkSubset(unionOf(SL, SR), G), mkDisjoint(SL, SR)});
  }
  case FormulaKind::Implies:
    return mkImplies(formula(F->Subs[0], Env, nullptr),
                     formula(F->Subs[1], Env, nullptr));
  case FormulaKind::OldF: {
    TranslateEnv E2 = Env;
    E2.InOld = true;
    return formula(F->Subs[0], E2, nullptr);
  }
  case FormulaKind::Pure:
    return formula(F->Subs[0], Env, nullptr);
  }
  return mkBool(true);
}

//===----------------------------------------------------------------------===//
// Unfoldings (Section 3.1)
//===----------------------------------------------------------------------===//

TranslateEnv Translator::bindParams(const RecDef &Def,
                                    const std::vector<LExprRef> &Args,
                                    const TranslateEnv &Env) const {
  TranslateEnv E2 = Env;
  assert(Def.Params.size() == Args.size() && "definition arity mismatch");
  for (size_t I = 0, E = Def.Params.size(); I != E; ++I)
    E2.Vars[Def.Params[I].Name] = Args[I];
  return E2;
}

LExprRef Translator::unfoldDef(const RecDef &Def,
                               std::vector<LExprRef> Args,
                               const TranslateEnv &Env) {
  TranslateEnv BodyEnv = bindParams(Def, Args, Env);
  LExprRef Lhs = defApp(Def, Args, Env);
  if (Def.IsPredicate) {
    LExprRef G = heapletApp(Def, Args, Env);
    LExprRef Rhs = formula(Def.PredBody, BodyEnv, G);
    return mkEq(Lhs, Rhs);
  }
  LExprRef Rhs = term(Def.FnBody, BodyEnv);
  return mkEq(Lhs, Rhs);
}

/// Flattens a disjunction into its branches.
static void collectDisjuncts(const FormulaRef &F,
                             std::vector<FormulaRef> &Out) {
  if (F->Kind == FormulaKind::Or) {
    collectDisjuncts(F->Subs[0], Out);
    collectDisjuncts(F->Subs[1], Out);
    return;
  }
  Out.push_back(F);
}

/// Collects the translated pure location (dis)equalities of a branch:
/// these become the branch guards of the derived heaplet definition.
static void collectLocGuards(const FormulaRef &F, Translator &T,
                             const TranslateEnv &Env,
                             std::vector<LExprRef> &Out) {
  std::function<bool(const TermRef &)> IsSimpleLoc =
      [&](const TermRef &X) {
        if (X->sort() != Sort::Loc)
          return false;
        if (X->Kind == TermKind::Var || X->Kind == TermKind::Nil ||
            X->Kind == TermKind::Result)
          return true;
        // Field reads are fine in *heaplet* guards: the derived heaplet
        // function is defined over the field arrays anyway.
        if (X->Kind == TermKind::FieldRead)
          return IsSimpleLoc(X->Args[0]);
        return false;
      };
  switch (F->Kind) {
  case FormulaKind::And:
  case FormulaKind::Sep:
    collectLocGuards(F->Subs[0], T, Env, Out);
    collectLocGuards(F->Subs[1], T, Env, Out);
    return;
  case FormulaKind::Cmp:
    if ((F->Op == CmpOp::Eq || F->Op == CmpOp::Ne) &&
        IsSimpleLoc(F->Terms[0]) && IsSimpleLoc(F->Terms[1])) {
      LExprRef A = T.term(F->Terms[0], Env);
      LExprRef B = T.term(F->Terms[1], Env);
      Out.push_back(F->Op == CmpOp::Eq ? mkEq(A, B) : mkNe(A, B));
    }
    return;
  default:
    return;
  }
}

LExprRef Translator::heapletBodyOfTerm(const TermRef &T,
                                       const TranslateEnv &Env) {
  if (T->Kind == TermKind::Ite)
    return mkIte(formula(T->CondF, Env, nullptr),
                 heapletBodyOfTerm(T->Args[0], Env),
                 heapletBodyOfTerm(T->Args[1], Env));
  return scopeOfTerm(T, Env);
}

LExprRef Translator::unfoldHeaplet(const RecDef &Def,
                                   std::vector<LExprRef> Args,
                                   const TranslateEnv &Env) {
  TranslateEnv BodyEnv = bindParams(Def, Args, Env);
  LExprRef Lhs = heapletApp(Def, Args, Env);
  if (!Def.IsPredicate)
    return mkEq(Lhs, heapletBodyOfTerm(Def.FnBody, BodyEnv));

  std::vector<FormulaRef> Branches;
  collectDisjuncts(Def.PredBody, Branches);
  // Build an ITE chain over the branch guards; the last branch is the
  // default.
  LExprRef Body = scopeOfFormula(Branches.back(), BodyEnv);
  for (size_t I = Branches.size() - 1; I-- > 0;) {
    std::vector<LExprRef> Guards;
    collectLocGuards(Branches[I], *this, BodyEnv, Guards);
    if (Guards.empty()) {
      Diag.error(Def.Loc,
                 "cannot derive a heaplet guard for branch " +
                     std::to_string(I + 1) + " of definition '" + Def.Name +
                     "': add a pure location (dis)equality to the branch");
      continue;
    }
    Body = mkIte(mkAnd(std::move(Guards)),
                 scopeOfFormula(Branches[I], BodyEnv), Body);
  }
  return mkEq(Lhs, Body);
}
