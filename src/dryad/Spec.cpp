//===- Spec.cpp - The DRYAD specification logic ----------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "dryad/Spec.h"

#include <cassert>
#include <set>

using namespace vcdryad;
using namespace vcdryad::dryad;

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static std::string argsStr(const std::vector<TermRef> &Args) {
  std::string Out = "(";
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Args[I]->str();
  }
  Out += ")";
  return Out;
}

std::string Term::str() const {
  switch (Kind) {
  case TermKind::Var:
    return Name;
  case TermKind::Nil:
    return "nil";
  case TermKind::IntLit:
    return std::to_string(IntVal);
  case TermKind::Result:
    return "result";
  case TermKind::Add:
    return "(" + Args[0]->str() + " + " + Args[1]->str() + ")";
  case TermKind::Sub:
    return "(" + Args[0]->str() + " - " + Args[1]->str() + ")";
  case TermKind::FieldRead:
    return Args[0]->str() + "->" + Name;
  case TermKind::DefApp:
    return Name + argsStr(Args);
  case TermKind::HeapletOf:
    return "heaplet " + Name + argsStr(Args);
  case TermKind::Old:
    return "old(" + Args[0]->str() + ")";
  case TermKind::EmptySet:
    return TermSort == Sort::MSetInt ? "memptyset" : "emptyset";
  case TermKind::Singleton:
    return (TermSort == Sort::MSetInt ? "msingleton(" : "singleton(") +
           Args[0]->str() + ")";
  case TermKind::SetUnion:
    return "(" + Args[0]->str() + " union " + Args[1]->str() + ")";
  case TermKind::SetInter:
    return "(" + Args[0]->str() + " inter " + Args[1]->str() + ")";
  case TermKind::SetMinus:
    return "(" + Args[0]->str() + " setminus " + Args[1]->str() + ")";
  case TermKind::Ite:
    return "(" + CondF->str() + " ? " + Args[0]->str() + " : " +
           Args[1]->str() + ")";
  }
  return "?";
}

static const char *cmpOpStr(CmpOp Op) {
  switch (Op) {
  case CmpOp::Eq:
    return "==";
  case CmpOp::Ne:
    return "!=";
  case CmpOp::Lt:
    return "<";
  case CmpOp::Le:
    return "<=";
  case CmpOp::Gt:
    return ">";
  case CmpOp::Ge:
    return ">=";
  }
  return "?";
}

std::string Formula::str() const {
  switch (Kind) {
  case FormulaKind::True:
    return "true";
  case FormulaKind::False:
    return "false";
  case FormulaKind::Emp:
    return "emp";
  case FormulaKind::PointsTo:
    return Terms[0]->str() + " |->";
  case FormulaKind::Cmp:
    return "(" + Terms[0]->str() + " " + cmpOpStr(Op) + " " +
           Terms[1]->str() + ")";
  case FormulaKind::In:
    return "(" + Terms[0]->str() + (Negated ? " !in " : " in ") +
           Terms[1]->str() + ")";
  case FormulaKind::SubsetOf:
    return "(" + Terms[0]->str() + (Negated ? " !subset " : " subset ") +
           Terms[1]->str() + ")";
  case FormulaKind::Disjoint:
    return "disjoint(" + Terms[0]->str() + ", " + Terms[1]->str() + ")";
  case FormulaKind::PredApp:
    return Name + argsStr(Terms);
  case FormulaKind::Not:
    return "!" + Subs[0]->str();
  case FormulaKind::And:
    return "(" + Subs[0]->str() + " && " + Subs[1]->str() + ")";
  case FormulaKind::Or:
    return "(" + Subs[0]->str() + " || " + Subs[1]->str() + ")";
  case FormulaKind::Sep:
    return "(" + Subs[0]->str() + " * " + Subs[1]->str() + ")";
  case FormulaKind::Implies:
    return "(" + Subs[0]->str() + " ==> " + Subs[1]->str() + ")";
  case FormulaKind::OldF:
    return "old(" + Subs[0]->str() + ")";
  case FormulaKind::Pure:
    return "pure(" + Subs[0]->str() + ")";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// DefTable
//===----------------------------------------------------------------------===//

bool DefTable::add(RecDef Def) {
  auto [It, Inserted] = Defs.emplace(Def.Name, std::move(Def));
  (void)It;
  return Inserted;
}

std::vector<const RecDef *>
DefTable::defsForStruct(const std::string &StructName) const {
  std::vector<const RecDef *> Out;
  for (const auto &[Name, Def] : Defs) {
    if (Def.Params.empty())
      continue;
    const SpecParam &P0 = Def.Params.front();
    if (P0.ParamSort == Sort::Loc && P0.StructName == StructName)
      Out.push_back(&Def);
  }
  return Out;
}

namespace {

/// Collects direct field reads, points-to field sets, and definition
/// call edges from a definition body.
class DepScanner {
public:
  DepScanner(const StructTable &Structs) : Structs(Structs) {}

  std::set<FieldKey> DirectFields;
  std::set<std::string> Callees;

  void scanTerm(const Term &T) {
    switch (T.Kind) {
    case TermKind::FieldRead: {
      const Term &Base = *T.Args[0];
      addField(Base.StructName, T.Name);
      break;
    }
    case TermKind::DefApp:
    case TermKind::HeapletOf:
      Callees.insert(T.Name);
      break;
    default:
      break;
    }
    for (const TermRef &A : T.Args)
      scanTerm(*A);
    if (T.CondF)
      scanFormula(*T.CondF);
  }

  void scanFormula(const Formula &F) {
    switch (F.Kind) {
    case FormulaKind::PointsTo: {
      // x |-> exposes every field of x's struct.
      const std::string &SN = F.Terms[0]->StructName;
      if (const StructInfo *SI = Structs.lookup(SN))
        for (const FieldInfo &FI : SI->Fields)
          DirectFields.insert({SN, FI.Name, FI.FieldSort});
      break;
    }
    case FormulaKind::PredApp:
      Callees.insert(F.Name);
      break;
    default:
      break;
    }
    for (const TermRef &T : F.Terms)
      scanTerm(*T);
    for (const FormulaRef &S : F.Subs)
      scanFormula(*S);
  }

private:
  const StructTable &Structs;

  void addField(const std::string &StructName, const std::string &Field) {
    const StructInfo *SI = Structs.lookup(StructName);
    if (!SI)
      return;
    const FieldInfo *FI = SI->findField(Field);
    if (!FI)
      return;
    DirectFields.insert({StructName, Field, FI->FieldSort});
  }
};

} // namespace

std::vector<FieldKey> dryad::axiomFieldDeps(const AxiomDecl &Ax,
                                            const DefTable &Defs,
                                            const StructTable &Structs) {
  DepScanner Scan(Structs);
  if (Ax.Body)
    Scan.scanFormula(*Ax.Body);
  std::set<FieldKey> Keys = Scan.DirectFields;
  for (const std::string &Callee : Scan.Callees)
    if (const RecDef *Def = Defs.lookup(Callee))
      Keys.insert(Def->Fields.begin(), Def->Fields.end());
  return {Keys.begin(), Keys.end()};
}

void DefTable::finalize(const StructTable &Structs) {
  // Direct dependencies and the call graph.
  std::map<std::string, std::set<FieldKey>> FieldsOf;
  std::map<std::string, std::set<std::string>> CalleesOf;
  for (const auto &[Name, Def] : Defs) {
    DepScanner Scan(Structs);
    if (Def.PredBody)
      Scan.scanFormula(*Def.PredBody);
    if (Def.FnBody)
      Scan.scanTerm(*Def.FnBody);
    FieldsOf[Name] = std::move(Scan.DirectFields);
    CalleesOf[Name] = std::move(Scan.Callees);
  }
  // Transitive closure (fixpoint; the def table is small).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &[Name, Fields] : FieldsOf) {
      for (const std::string &Callee : CalleesOf[Name]) {
        auto It = FieldsOf.find(Callee);
        if (It == FieldsOf.end())
          continue;
        for (const FieldKey &FK : It->second)
          Changed |= Fields.insert(FK).second;
      }
    }
  }
  for (auto &[Name, Def] : Defs)
    Def.Fields.assign(FieldsOf[Name].begin(), FieldsOf[Name].end());
}
