//===- Translate.h - DRYAD to classical logic (Figure 4) --------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The T_VCC translation of the paper (Figure 4): DRYAD separation
/// logic with determined heaplets to quantifier-free classical logic
/// over the theory of sets, together with the scope and
/// domain-exactness analyses of Section 2 and the generation of the
/// unfold formulas used by the natural-proof ghost code (Section 3.1).
///
/// Recursive definitions become uninterpreted VIR functions whose
/// arguments are the *field arrays the definition depends on* followed
/// by the definition's parameters. Passification then versions the
/// array arguments, which is exactly the paper's per-state evaluation
/// \at(state, d(p)) — no name mangling of definition symbols needed.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_DRYAD_TRANSLATE_H
#define VCDRYAD_DRYAD_TRANSLATE_H

#include "dryad/Spec.h"
#include "support/Diagnostics.h"
#include "vir/LExpr.h"

#include <functional>
#include <map>

namespace vcdryad {
namespace dryad {

/// Evaluation context for the translation: values of spec variables,
/// pre-state snapshots for old(), and the resolution of field arrays
/// at the current and the pre-state.
struct TranslateEnv {
  /// Current values of program/spec variables.
  std::map<std::string, vir::LExprRef> Vars;
  /// Entry-state values of the parameters, for old().
  std::map<std::string, vir::LExprRef> OldVars;
  /// Value of `result` in postconditions (null elsewhere).
  vir::LExprRef ResultVal;
  /// Resolves a field array at the current state (required).
  std::function<vir::LExprRef(const FieldKey &)> CurArray;
  /// Resolves a field array at the entry state (needed iff old()
  /// occurs).
  std::function<vir::LExprRef(const FieldKey &)> OldArray;
  /// Internal: set while translating under old().
  bool InOld = false;
};

/// Returns an array resolver mapping each field array to the VIR
/// variable \p Prefix + key.arrayName().
std::function<vir::LExprRef(const FieldKey &)>
prefixedArrays(std::string Prefix = "");

class Translator {
public:
  Translator(const DefTable &Defs, const StructTable &Structs,
             DiagnosticEngine &Diag)
      : Defs(Defs), Structs(Structs), Diag(Diag) {}

  /// T_VCC(F, G). Pass a null \p G for the heapless translation used
  /// by old(), axioms and pure contexts.
  vir::LExprRef formula(const FormulaRef &F, const TranslateEnv &Env,
                        vir::LExprRef G);

  /// Translates a term (terms never constrain the heaplet).
  vir::LExprRef term(const TermRef &T, const TranslateEnv &Env);

  /// scope(F): the heap domain needed to evaluate F, as a SetLoc term.
  vir::LExprRef scopeOfFormula(const FormulaRef &F,
                               const TranslateEnv &Env);
  vir::LExprRef scopeOfTerm(const TermRef &T, const TranslateEnv &Env);

  /// Domain-exactness (Section 2): can the formula/term only be
  /// evaluated on exactly its scope?
  bool domainExactFormula(const FormulaRef &F) const;
  bool domainExactTerm(const TermRef &T) const;

  /// Uninterpreted application of a definition / its heaplet to
  /// already-translated arguments, with the field arrays of \p Def
  /// resolved through \p Env.
  vir::LExprRef defApp(const RecDef &Def, std::vector<vir::LExprRef> Args,
                       const TranslateEnv &Env);
  vir::LExprRef heapletApp(const RecDef &Def,
                           std::vector<vir::LExprRef> Args,
                           const TranslateEnv &Env);

  /// The one-step unfolding of \p Def at \p Args:
  ///   d(args) == T_VCC(body, heaplet-of-d(args))      (predicates)
  ///   d(args) == T(body)                              (functions)
  vir::LExprRef unfoldDef(const RecDef &Def,
                          std::vector<vir::LExprRef> Args,
                          const TranslateEnv &Env);

  /// The one-step unfolding of the derived heaplet definition:
  ///   d$hp(args) == <ITE over branch guards of branch scopes>
  vir::LExprRef unfoldHeaplet(const RecDef &Def,
                              std::vector<vir::LExprRef> Args,
                              const TranslateEnv &Env);

private:
  const DefTable &Defs;
  const StructTable &Structs;
  DiagnosticEngine &Diag;

  vir::LExprRef translateCmp(const Formula &F, const TranslateEnv &Env);
  vir::LExprRef heapletBodyOfTerm(const TermRef &T,
                                  const TranslateEnv &Env);
  TranslateEnv bindParams(const RecDef &Def,
                          const std::vector<vir::LExprRef> &Args,
                          const TranslateEnv &Env) const;

  vir::LExprRef error(SourceLoc Loc, const std::string &Msg);
};

} // namespace dryad
} // namespace vcdryad

#endif // VCDRYAD_DRYAD_TRANSLATE_H
