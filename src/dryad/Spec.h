//===- Spec.h - The DRYAD specification logic -------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST of the DRYAD separation-logic dialect (Figure 2 of the paper):
/// multi-sorted terms over locations, integers, sets and multisets,
/// separation-logic formulas without explicit quantification, and
/// user-provided recursive definitions. Also the struct-shape table
/// the logic needs to resolve field accesses, and the data-structure
/// axiom declarations of Section 4.3.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_DRYAD_SPEC_H
#define VCDRYAD_DRYAD_SPEC_H

#include "support/SourceLoc.h"
#include "vir/Sort.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vcdryad {
namespace dryad {

using vir::Sort;

//===----------------------------------------------------------------------===//
// Struct shapes
//===----------------------------------------------------------------------===//

/// One field of a heap struct, as the logic sees it: either a pointer
/// to some struct (sort Loc) or data (sort Int).
struct FieldInfo {
  std::string Name;
  Sort FieldSort;           ///< Sort::Loc or Sort::Int.
  std::string TargetStruct; ///< For pointer fields: pointee struct name.
};

/// The heap shape of one C struct.
struct StructInfo {
  std::string Name;
  std::vector<FieldInfo> Fields;

  const FieldInfo *findField(const std::string &F) const {
    for (const FieldInfo &FI : Fields)
      if (FI.Name == F)
        return &FI;
    return nullptr;
  }
};

/// All struct shapes of a program, keyed by name.
class StructTable {
public:
  const StructInfo *lookup(const std::string &Name) const {
    auto It = Structs.find(Name);
    return It == Structs.end() ? nullptr : &It->second;
  }
  StructInfo &add(std::string Name) {
    return Structs[Name] = StructInfo{Name, {}};
  }
  const std::map<std::string, StructInfo> &all() const { return Structs; }

private:
  std::map<std::string, StructInfo> Structs;
};

/// Identifies one field array of the Burstall-Bornat heap model.
struct FieldKey {
  std::string Struct;
  std::string Field;
  Sort FieldSort;

  /// The VIR variable name of this field's array, e.g. "$node$next".
  std::string arrayName() const { return "$" + Struct + "$" + Field; }
  /// Sort of the field array variable.
  Sort arraySort() const {
    return FieldSort == Sort::Loc ? Sort::ArrLocLoc : Sort::ArrLocInt;
  }

  auto operator<=>(const FieldKey &RHS) const = default;
};

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

enum class TermKind {
  Var,       ///< Program or spec variable.
  Nil,       ///< The nil location (C NULL).
  IntLit,    ///< Integer constant.
  Result,    ///< \c result in postconditions.
  Add,       ///< Integer +.
  Sub,       ///< Integer -.
  FieldRead, ///< base->field (guarded dereference).
  DefApp,    ///< Application of a recursive function, e.g. keys(x).
  HeapletOf, ///< heaplet d(args): the heap domain of a definition
             ///< (axiom language, Section 4.3).
  Old,       ///< old(t) in postconditions.
  EmptySet,  ///< emptyset / memptyset, sort-directed.
  Singleton, ///< singleton(t) / msingleton(t).
  SetUnion,
  SetInter,
  SetMinus,
  Ite, ///< cond ? t : e — used by recursive function bodies.
};

struct Term;
struct Formula;
using TermRef = std::shared_ptr<const Term>;
using FormulaRef = std::shared_ptr<const Formula>;

/// A DRYAD term. Sorts are resolved at parse time; Loc-sorted terms
/// carry the struct they point into (empty for nil).
struct Term {
  TermKind Kind;
  Sort TermSort = Sort::Int;
  std::string StructName; ///< For Loc-sorted terms: pointee struct.
  std::string Name;       ///< Var name / field name / definition name.
  int64_t IntVal = 0;
  std::vector<TermRef> Args;
  FormulaRef CondF; ///< For Ite: condition (a pure formula).
  SourceLoc Loc;

  explicit Term(TermKind K) : Kind(K) {}

  Sort sort() const { return TermSort; }
  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Formulas
//===----------------------------------------------------------------------===//

/// Comparison operators as written; typing resolves them to integer,
/// location or set-ordering atoms.
enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

enum class FormulaKind {
  True,
  False,
  Emp,      ///< Empty-heap assertion.
  PointsTo, ///< x |-> : heaplet is exactly {x}, fields readable.
  Cmp,      ///< t1 op t2, type-directed (int, loc, set-order).
  In,       ///< t in S (or negated).
  SubsetOf, ///< S1 subset S2 (or negated).
  Disjoint, ///< disjoint(S1, S2).
  PredApp,  ///< Application of a recursive predicate.
  Not,      ///< Negation; restricted to pure formulas.
  And,
  Or,
  Sep,     ///< Separating conjunction *.
  Implies, ///< Axiom language only.
  OldF,    ///< old(phi) in postconditions (heapless).
  Pure,    ///< pure(phi): classical (heapless) reading; the formula
           ///< holds of its own scope, without pinning the heaplet.
};

/// A DRYAD formula.
struct Formula {
  FormulaKind Kind;
  CmpOp Op = CmpOp::Eq;     ///< For Cmp.
  bool Negated = false;     ///< For In / SubsetOf.
  std::string Name;         ///< For PredApp: definition name.
  std::vector<TermRef> Terms;
  std::vector<FormulaRef> Subs;
  SourceLoc Loc;

  explicit Formula(FormulaKind K) : Kind(K) {}

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Recursive definitions and axioms
//===----------------------------------------------------------------------===//

/// A parameter of a recursive definition or an axiom.
struct SpecParam {
  std::string Name;
  Sort ParamSort;
  std::string StructName; ///< For Loc params.
};

/// A user-provided recursive definition: a predicate (body is a
/// formula) or a function (body is an ITE term chain). The heap
/// domain ("heaplet") definition is derived from the body, as in
/// Section 2 of the paper.
struct RecDef {
  std::string Name;
  bool IsPredicate = true;
  Sort RetSort = Sort::Bool; ///< For functions: intset/int/...
  std::vector<SpecParam> Params;
  FormulaRef PredBody; ///< Predicates.
  TermRef FnBody;      ///< Functions.
  SourceLoc Loc;

  /// The field arrays this definition (transitively) depends on, in a
  /// canonical order. Computed by DefTable::finalize().
  std::vector<FieldKey> Fields;

  /// VIR function-symbol names for the definition and its heaplet.
  std::string symbolName() const { return Name; }
  std::string heapletSymbolName() const { return Name + "$hp"; }
};

/// A data-structure axiom (Section 4.3): a classical implication over
/// definitions and heaplet terms, instantiated over footprint tuples
/// (default) or passed quantified (ablation mode).
struct AxiomDecl {
  std::vector<SpecParam> Params;
  FormulaRef Body; ///< Typically an Implies.
  SourceLoc Loc;
};

/// The field arrays an axiom body (transitively, through the
/// definitions it mentions) depends on. Used by the quantified-axiom
/// mode to close the axiom over the heap state.
std::vector<FieldKey> axiomFieldDeps(const AxiomDecl &Ax,
                                     const class DefTable &Defs,
                                     const StructTable &Structs);

/// All recursive definitions of a program, plus the derived field
/// dependency sets.
class DefTable {
public:
  /// Adds a definition; returns false if the name is taken.
  bool add(RecDef Def);

  const RecDef *lookup(const std::string &Name) const {
    auto It = Defs.find(Name);
    return It == Defs.end() ? nullptr : &It->second;
  }

  /// Mutable lookup, used by the parser to fill in a definition body
  /// after the signature was registered (self-recursion).
  RecDef *lookupMut(const std::string &Name) {
    auto It = Defs.find(Name);
    return It == Defs.end() ? nullptr : &It->second;
  }

  /// Definitions whose first parameter is a pointer to \p StructName;
  /// these are the "pertinent definitions" unfolded when a location of
  /// that type is dereferenced (defs(T) in Figure 5).
  std::vector<const RecDef *>
  defsForStruct(const std::string &StructName) const;

  const std::map<std::string, RecDef> &all() const { return Defs; }

  std::vector<AxiomDecl> Axioms;

  /// Computes the transitive field dependency sets of every
  /// definition (fixpoint over DefApp/PredApp edges). Call once after
  /// all definitions are added.
  void finalize(const StructTable &Structs);

private:
  std::map<std::string, RecDef> Defs;
};

} // namespace dryad
} // namespace vcdryad

#endif // VCDRYAD_DRYAD_SPEC_H
