//===- FuncHash.cpp - Stable function fingerprinting -------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/FuncHash.h"

#include "support/Hash.h"

using namespace vcdryad;
using namespace vcdryad::cfront;

namespace {

/// Accumulates the dependency sets of one function and closes them
/// under the edges the pipeline actually follows: spec formulas name
/// definitions; definitions read field arrays of structs and mention
/// further definitions; touched structs make their pertinent
/// definitions (defsForStruct) relevant through unfolding; pointer
/// fields reach deeper structs; call sites import callee contracts.
class DepCollector {
public:
  DepCollector(const Program &Prog, FuncDeps &Out) : Prog(Prog), D(Out) {}

  void seedFunction(const FuncDecl &F) {
    type(F.RetTy);
    for (const ParamDecl &P : F.Params)
      type(P.Ty);
    for (const dryad::FormulaRef &R : F.Requires)
      formula(R);
    for (const dryad::FormulaRef &E : F.Ensures)
      formula(E);
    if (F.Body)
      stmt(*F.Body);
  }

  /// Fixpoint over the closure edges. Terminates: every step only
  /// adds names drawn from the finite program tables.
  void close() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      // Structs reach deeper structs through pointer fields, and make
      // their pertinent definitions relevant (Figure 5 unfolds
      // defs(T) at every dereference of a T location).
      for (const std::string &S : std::vector<std::string>(
               D.Structs.begin(), D.Structs.end())) {
        if (const StructDecl *SD = Prog.findStruct(S))
          for (const FieldDecl &FD : SD->Fields)
            if (FD.Ty.isPtr() && FD.Ty.Pointee)
              Changed |= addStruct(FD.Ty.Pointee->Name);
        for (const dryad::RecDef *R : Prog.Defs.defsForStruct(S))
          Changed |= addDef(R->Name);
      }
      // Definitions reach the structs whose field arrays they read,
      // their parameter structs, and the definitions their bodies
      // mention.
      for (const std::string &Name : std::vector<std::string>(
               D.Defs.begin(), D.Defs.end())) {
        const dryad::RecDef *R = Prog.Defs.lookup(Name);
        if (!R)
          continue;
        for (const dryad::FieldKey &FK : R->Fields)
          Changed |= addStruct(FK.Struct);
        for (const dryad::SpecParam &P : R->Params)
          if (!P.StructName.empty())
            Changed |= addStruct(P.StructName);
        size_t Defs0 = D.Defs.size(), Structs0 = D.Structs.size();
        if (R->PredBody)
          formula(R->PredBody);
        if (R->FnBody)
          term(R->FnBody);
        Changed |= D.Defs.size() != Defs0 || D.Structs.size() != Structs0;
      }
      // Callee contracts mention definitions and structs of their own.
      for (const std::string &Name : std::vector<std::string>(
               D.Callees.begin(), D.Callees.end())) {
        const FuncDecl *G = Prog.findFunc(Name);
        if (!G)
          continue;
        size_t Defs0 = D.Defs.size(), Structs0 = D.Structs.size();
        type(G->RetTy);
        for (const ParamDecl &P : G->Params)
          type(P.Ty);
        for (const dryad::FormulaRef &R : G->Requires)
          formula(R);
        for (const dryad::FormulaRef &E : G->Ensures)
          formula(E);
        Changed |= D.Defs.size() != Defs0 || D.Structs.size() != Structs0;
      }
    }
  }

private:
  bool addStruct(const std::string &S) {
    return !S.empty() && D.Structs.insert(S).second;
  }
  bool addDef(const std::string &Name) {
    return !Name.empty() && D.Defs.insert(Name).second;
  }

  void type(const CType &Ty) {
    if (Ty.isPtr() && Ty.Pointee)
      addStruct(Ty.Pointee->Name);
  }

  void term(const dryad::TermRef &T) {
    if (!T)
      return;
    addStruct(T->StructName);
    if (T->Kind == dryad::TermKind::DefApp ||
        T->Kind == dryad::TermKind::HeapletOf)
      addDef(T->Name);
    for (const dryad::TermRef &A : T->Args)
      term(A);
    if (T->CondF)
      formula(T->CondF);
  }

  void formula(const dryad::FormulaRef &F) {
    if (!F)
      return;
    if (F->Kind == dryad::FormulaKind::PredApp)
      addDef(F->Name);
    for (const dryad::TermRef &T : F->Terms)
      term(T);
    for (const dryad::FormulaRef &S : F->Subs)
      formula(S);
  }

  void expr(const Expr &E) {
    type(E.Ty);
    if (E.Kind == ExprKind::Malloc && E.MallocStruct)
      addStruct(E.MallocStruct->Name);
    if (E.Kind == ExprKind::Call)
      D.Callees.insert(E.Name);
    for (const ExprRef &A : E.Args)
      if (A)
        expr(*A);
  }

  void stmt(const Stmt &S) {
    if (S.Kind == StmtKind::Decl)
      type(S.DeclTy);
    if (S.Rhs)
      expr(*S.Rhs);
    if (S.Lhs)
      expr(*S.Lhs);
    if (S.Cond)
      expr(*S.Cond);
    for (const dryad::FormulaRef &Inv : S.Invariants)
      formula(Inv);
    if (S.Spec)
      formula(S.Spec);
    // Stmts holds block children and the While condition prelude.
    for (const StmtRef &Sub : S.Stmts)
      if (Sub)
        stmt(*Sub);
    if (S.Then)
      stmt(*S.Then);
    if (S.Else)
      stmt(*S.Else);
  }

  const Program &Prog;
  FuncDeps &D;
};

void hashSpecParams(Fnv1a &H, const std::vector<dryad::SpecParam> &Params) {
  H.u64(Params.size());
  for (const dryad::SpecParam &P : Params) {
    H.str(P.Name);
    H.u64(static_cast<uint64_t>(P.ParamSort));
    H.str(P.StructName);
  }
}

/// The names an axiom mentions, for the relevance test. An axiom with
/// no struct parameters and no definition applications is kept in
/// every fingerprint (it constrains every query it is instantiated
/// into, and such axioms are rare).
struct AxiomRefs {
  std::set<std::string> Defs;
  std::set<std::string> Structs;
};

void axiomRefsTerm(const dryad::TermRef &T, AxiomRefs &R);

void axiomRefsFormula(const dryad::FormulaRef &F, AxiomRefs &R) {
  if (!F)
    return;
  if (F->Kind == dryad::FormulaKind::PredApp && !F->Name.empty())
    R.Defs.insert(F->Name);
  for (const dryad::TermRef &T : F->Terms)
    axiomRefsTerm(T, R);
  for (const dryad::FormulaRef &S : F->Subs)
    axiomRefsFormula(S, R);
}

void axiomRefsTerm(const dryad::TermRef &T, AxiomRefs &R) {
  if (!T)
    return;
  if (!T->StructName.empty())
    R.Structs.insert(T->StructName);
  if ((T->Kind == dryad::TermKind::DefApp ||
       T->Kind == dryad::TermKind::HeapletOf) &&
      !T->Name.empty())
    R.Defs.insert(T->Name);
  for (const dryad::TermRef &A : T->Args)
    axiomRefsTerm(A, R);
  if (T->CondF)
    axiomRefsFormula(T->CondF, R);
}

bool intersects(const std::set<std::string> &A,
                const std::set<std::string> &B) {
  for (const std::string &S : A)
    if (B.count(S))
      return true;
  return false;
}

} // namespace

FuncDeps cfront::collectFuncDeps(const FuncDecl &F, const Program &Prog) {
  FuncDeps D;
  DepCollector C(Prog, D);
  C.seedFunction(F);
  C.close();
  return D;
}

uint64_t cfront::fingerprintFunction(const FuncDecl &F,
                                     const Program &Prog) {
  FuncDeps D = collectFuncDeps(F, Prog);

  Fnv1a H;
  H.u64(1); // Content-fingerprint format version.

  // The function itself: the printed normalized AST carries the
  // signature, contracts, invariants, asserts and body, and is
  // independent of whitespace, comments and source locations.
  H.str(F.str());

  // Callee contracts (not bodies): modular verification summarizes a
  // call by the callee's requires/ensures, so only those invalidate.
  H.u64(D.Callees.size());
  for (const std::string &Name : D.Callees) {
    const FuncDecl *G = Prog.findFunc(Name);
    if (!G) {
      H.str(Name); // Unresolved callee: keyed by name alone.
      continue;
    }
    H.str(G->Name);
    H.str(G->RetTy.str());
    H.u64(G->Params.size());
    for (const ParamDecl &P : G->Params) {
      H.str(P.Ty.str());
      H.str(P.Name);
    }
    H.u64(G->Requires.size());
    for (const dryad::FormulaRef &R : G->Requires)
      H.str(R->str());
    H.u64(G->Ensures.size());
    for (const dryad::FormulaRef &E : G->Ensures)
      H.str(E->str());
  }

  // Touched struct shapes: field order, names and types feed the
  // Burstall-Bornat field arrays the translation emits.
  H.u64(D.Structs.size());
  for (const std::string &S : D.Structs) {
    const StructDecl *SD = Prog.findStruct(S);
    if (!SD) {
      H.str(S);
      continue;
    }
    H.str(SD->Name);
    H.u64(SD->Fields.size());
    for (const FieldDecl &FD : SD->Fields) {
      H.str(FD.Name);
      H.str(FD.Ty.str());
    }
  }

  // The transitive definition closure: signature, body and derived
  // field dependencies of every reachable recursive definition.
  H.u64(D.Defs.size());
  for (const std::string &Name : D.Defs) {
    const dryad::RecDef *R = Prog.Defs.lookup(Name);
    if (!R) {
      H.str(Name);
      continue;
    }
    H.str(R->Name);
    H.u64(R->IsPredicate ? 1 : 0);
    H.u64(static_cast<uint64_t>(R->RetSort));
    hashSpecParams(H, R->Params);
    H.str(R->PredBody ? R->PredBody->str() : std::string());
    H.str(R->FnBody ? R->FnBody->str() : std::string());
    H.u64(R->Fields.size());
    for (const dryad::FieldKey &FK : R->Fields) {
      H.str(FK.Struct);
      H.str(FK.Field);
      H.u64(static_cast<uint64_t>(FK.FieldSort));
    }
  }

  // Relevant axioms, in declaration order (the instantiation engine
  // walks them in order, so order is part of the content).
  for (const dryad::AxiomDecl &Ax : Prog.Defs.Axioms) {
    AxiomRefs Refs;
    for (const dryad::SpecParam &P : Ax.Params)
      if (!P.StructName.empty())
        Refs.Structs.insert(P.StructName);
    axiomRefsFormula(Ax.Body, Refs);
    bool Relevant = (Refs.Defs.empty() && Refs.Structs.empty()) ||
                    intersects(Refs.Defs, D.Defs) ||
                    intersects(Refs.Structs, D.Structs);
    if (!Relevant)
      continue;
    H.u64(0xa10a); // Axiom-entry tag.
    hashSpecParams(H, Ax.Params);
    H.str(Ax.Body ? Ax.Body->str() : std::string());
  }

  return H.digest();
}
