//===- Normalize.cpp - Dereference flattening -------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"

#include <cassert>

using namespace vcdryad;
using namespace vcdryad::cfront;

namespace {

class Normalizer {
public:
  explicit Normalizer(DiagnosticEngine &Diag) : Diag(Diag) {}

  void run(FuncDecl &F) {
    if (!F.Body)
      return;
    F.Body = normalizeBlock(F.Body);
  }

private:
  DiagnosticEngine &Diag;
  unsigned TempCounter = 0;

  ExprRef mkExpr(ExprKind K, CType Ty, SourceLoc L) {
    auto E = std::make_shared<Expr>(K);
    E->Ty = Ty;
    E->Loc = L;
    return E;
  }

  StmtRef mkStmt(StmtKind K, SourceLoc L) {
    auto S = std::make_shared<Stmt>(K);
    S->Loc = L;
    return S;
  }

  /// Declares a fresh temp of type \p Ty, emits `t = Init` and returns
  /// a reference to t.
  ExprRef hoist(ExprRef Init, std::vector<StmtRef> &Pre) {
    std::string Name = "$t" + std::to_string(TempCounter++);
    StmtRef Decl = mkStmt(StmtKind::Decl, Init->Loc);
    Decl->DeclName = Name;
    Decl->DeclTy = Init->Ty;
    Pre.push_back(Decl);
    StmtRef Assign = mkStmt(StmtKind::Assign, Init->Loc);
    ExprRef Var = mkExpr(ExprKind::Var, Init->Ty, Init->Loc);
    Var->Name = Name;
    Assign->Lhs = Var;
    Assign->Rhs = std::move(Init);
    Pre.push_back(Assign);
    ExprRef Ref = mkExpr(ExprKind::Var, Var->Ty, Var->Loc);
    Ref->Name = Name;
    return Ref;
  }

  static bool isAtom(const Expr &E) {
    return E.Kind == ExprKind::Var || E.Kind == ExprKind::IntLit ||
           E.Kind == ExprKind::Null;
  }

  /// True when evaluating \p E touches neither the heap nor a callee.
  static bool exprIsPure(const Expr &E) {
    if (E.Kind == ExprKind::FieldAccess || E.Kind == ExprKind::Call ||
        E.Kind == ExprKind::Malloc)
      return false;
    for (const ExprRef &A : E.Args)
      if (!exprIsPure(*A))
        return false;
    return true;
  }

  /// An int truth value of \p E: `e != 0` for ints, `e != NULL` for
  /// pointers; comparisons pass through.
  ExprRef truthOf(ExprRef E) {
    if (E->Ty.isInt() && E->Kind == ExprKind::Binary &&
        E->BOp != BinOp::Add && E->BOp != BinOp::Sub)
      return E;
    ExprRef Cmp = mkExpr(ExprKind::Binary, CType::mkInt(), E->Loc);
    Cmp->BOp = BinOp::Ne;
    ExprRef Zero;
    if (E->Ty.isPtr()) {
      Zero = mkExpr(ExprKind::Null, CType::mkPtr(nullptr), E->Loc);
    } else {
      Zero = mkExpr(ExprKind::IntLit, CType::mkInt(), E->Loc);
    }
    Cmp->Args = {std::move(E), std::move(Zero)};
    return Cmp;
  }

  /// Rewrites \p E to an atom (Var/IntLit/Null), hoisting as needed.
  ExprRef atomize(ExprRef E, std::vector<StmtRef> &Pre) {
    E = purify(std::move(E), Pre);
    if (isAtom(*E))
      return E;
    return hoist(std::move(E), Pre);
  }

  /// Rewrites \p E to a heap-free, call-free expression: every
  /// dereference, call and malloc is hoisted into a temp.
  ExprRef purify(ExprRef E, std::vector<StmtRef> &Pre) {
    switch (E->Kind) {
    case ExprKind::Var:
    case ExprKind::IntLit:
    case ExprKind::Null:
      return E;
    case ExprKind::FieldAccess: {
      ExprRef Base = atomize(E->Args[0], Pre);
      ExprRef FA = mkExpr(ExprKind::FieldAccess, E->Ty, E->Loc);
      FA->Name = E->Name;
      FA->Args = {std::move(Base)};
      return hoist(std::move(FA), Pre);
    }
    case ExprKind::Call: {
      ExprRef Call = mkExpr(ExprKind::Call, E->Ty, E->Loc);
      Call->Name = E->Name;
      for (const ExprRef &A : E->Args)
        Call->Args.push_back(atomize(A, Pre));
      return hoist(std::move(Call), Pre);
    }
    case ExprKind::Malloc:
      return hoist(E, Pre);
    case ExprKind::Unary: {
      ExprRef A = purify(E->Args[0], Pre);
      if (A.get() == E->Args[0].get())
        return E;
      ExprRef U = mkExpr(ExprKind::Unary, E->Ty, E->Loc);
      U->UOp = E->UOp;
      U->Args = {std::move(A)};
      return U;
    }
    case ExprKind::Binary: {
      // Short-circuit operators evaluate the right operand only when
      // needed; if it touches the heap, hoist it under a guard:
      //   t = truth(a); if (t) { t = truth(b); }     for a && b
      //   t = truth(a); if (!t) { t = truth(b); }    for a || b
      if ((E->BOp == BinOp::LAnd || E->BOp == BinOp::LOr) &&
          !exprIsPure(*E->Args[1])) {
        ExprRef A = purify(E->Args[0], Pre);
        ExprRef T = hoist(truthOf(std::move(A)), Pre);
        StmtRef Guard = mkStmt(StmtKind::If, E->Loc);
        if (E->BOp == BinOp::LAnd) {
          Guard->Cond = T;
        } else {
          ExprRef NotT = mkExpr(ExprKind::Unary, CType::mkInt(), E->Loc);
          NotT->UOp = UnOp::Not;
          NotT->Args = {T};
          Guard->Cond = NotT;
        }
        StmtRef Then = mkStmt(StmtKind::Block, E->Loc);
        std::vector<StmtRef> InnerPre;
        ExprRef B = purify(E->Args[1], InnerPre);
        Then->Stmts = std::move(InnerPre);
        StmtRef SetT = mkStmt(StmtKind::Assign, E->Loc);
        ExprRef TRef = mkExpr(ExprKind::Var, CType::mkInt(), E->Loc);
        TRef->Name = T->Name;
        SetT->Lhs = TRef;
        SetT->Rhs = truthOf(std::move(B));
        Then->Stmts.push_back(SetT);
        Guard->Then = Then;
        Pre.push_back(Guard);
        ExprRef Res = mkExpr(ExprKind::Var, CType::mkInt(), E->Loc);
        Res->Name = T->Name;
        return Res;
      }
      ExprRef A = purify(E->Args[0], Pre);
      ExprRef B = purify(E->Args[1], Pre);
      if (A.get() == E->Args[0].get() && B.get() == E->Args[1].get())
        return E;
      ExprRef BE = mkExpr(ExprKind::Binary, E->Ty, E->Loc);
      BE->BOp = E->BOp;
      BE->Args = {std::move(A), std::move(B)};
      return BE;
    }
    }
    return E;
  }

  /// Normalizes a direct assignment right-hand side: the primitive
  /// forms stay unhoisted.
  ExprRef normalizeRhs(ExprRef Rhs, std::vector<StmtRef> &Pre) {
    switch (Rhs->Kind) {
    case ExprKind::FieldAccess: {
      ExprRef Base = atomize(Rhs->Args[0], Pre);
      if (Base.get() == Rhs->Args[0].get())
        return Rhs;
      ExprRef FA = mkExpr(ExprKind::FieldAccess, Rhs->Ty, Rhs->Loc);
      FA->Name = Rhs->Name;
      FA->Args = {std::move(Base)};
      return FA;
    }
    case ExprKind::Call: {
      ExprRef Call = mkExpr(ExprKind::Call, Rhs->Ty, Rhs->Loc);
      Call->Name = Rhs->Name;
      for (const ExprRef &A : Rhs->Args)
        Call->Args.push_back(atomize(A, Pre));
      return Call;
    }
    case ExprKind::Malloc:
      return Rhs;
    default:
      return purify(std::move(Rhs), Pre);
    }
  }

  StmtRef normalizeBlock(const StmtRef &B) {
    assert(B->Kind == StmtKind::Block);
    StmtRef Out = mkStmt(StmtKind::Block, B->Loc);
    for (const StmtRef &S : B->Stmts)
      normalizeStmt(S, Out->Stmts);
    return Out;
  }

  void normalizeStmt(const StmtRef &S, std::vector<StmtRef> &Out) {
    switch (S->Kind) {
    case StmtKind::Block: {
      Out.push_back(normalizeBlock(S));
      return;
    }
    case StmtKind::Decl: {
      StmtRef Decl = mkStmt(StmtKind::Decl, S->Loc);
      Decl->DeclName = S->DeclName;
      Decl->DeclTy = S->DeclTy;
      Out.push_back(Decl);
      if (S->Rhs) {
        std::vector<StmtRef> Pre;
        ExprRef Rhs = normalizeRhs(S->Rhs, Pre);
        for (StmtRef &P : Pre)
          Out.push_back(std::move(P));
        StmtRef Assign = mkStmt(StmtKind::Assign, S->Loc);
        ExprRef Var = mkExpr(ExprKind::Var, S->DeclTy, S->Loc);
        Var->Name = S->DeclName;
        Assign->Lhs = Var;
        Assign->Rhs = Rhs;
        Out.push_back(Assign);
      }
      return;
    }
    case StmtKind::Assign: {
      std::vector<StmtRef> Pre;
      if (S->Lhs->Kind == ExprKind::FieldAccess) {
        ExprRef Base = atomize(S->Lhs->Args[0], Pre);
        ExprRef Rhs = atomize(S->Rhs, Pre);
        for (StmtRef &P : Pre)
          Out.push_back(std::move(P));
        StmtRef Assign = mkStmt(StmtKind::Assign, S->Loc);
        ExprRef FA =
            mkExpr(ExprKind::FieldAccess, S->Lhs->Ty, S->Lhs->Loc);
        FA->Name = S->Lhs->Name;
        FA->Args = {std::move(Base)};
        Assign->Lhs = FA;
        Assign->Rhs = Rhs;
        Out.push_back(Assign);
        return;
      }
      ExprRef Rhs = normalizeRhs(S->Rhs, Pre);
      for (StmtRef &P : Pre)
        Out.push_back(std::move(P));
      StmtRef Assign = mkStmt(StmtKind::Assign, S->Loc);
      Assign->Lhs = S->Lhs;
      Assign->Rhs = Rhs;
      Out.push_back(Assign);
      return;
    }
    case StmtKind::If: {
      std::vector<StmtRef> Pre;
      ExprRef Cond = purify(S->Cond, Pre);
      for (StmtRef &P : Pre)
        Out.push_back(std::move(P));
      StmtRef If = mkStmt(StmtKind::If, S->Loc);
      If->Cond = Cond;
      If->Then = normalizeSubStmt(S->Then);
      If->Else = S->Else ? normalizeSubStmt(S->Else) : nullptr;
      Out.push_back(If);
      return;
    }
    case StmtKind::While: {
      // The condition's evaluation prelude is re-run at every loop
      // head, so it lives inside the While node (Stmts).
      StmtRef While = mkStmt(StmtKind::While, S->Loc);
      While->Invariants = S->Invariants;
      std::vector<StmtRef> CondPre;
      While->Cond = purify(S->Cond, CondPre);
      While->Stmts = std::move(CondPre);
      While->Then = normalizeSubStmt(S->Then);
      Out.push_back(While);
      return;
    }
    case StmtKind::Return: {
      StmtRef Ret = mkStmt(StmtKind::Return, S->Loc);
      if (S->Rhs) {
        std::vector<StmtRef> Pre;
        Ret->Rhs = atomize(S->Rhs, Pre);
        for (StmtRef &P : Pre)
          Out.push_back(std::move(P));
      }
      Out.push_back(Ret);
      return;
    }
    case StmtKind::ExprStmt: {
      std::vector<StmtRef> Pre;
      ExprRef Call = S->Rhs;
      if (Call->Kind != ExprKind::Call) {
        Out.push_back(S);
        return;
      }
      ExprRef NC = mkExpr(ExprKind::Call, Call->Ty, Call->Loc);
      NC->Name = Call->Name;
      for (const ExprRef &A : Call->Args)
        NC->Args.push_back(atomize(A, Pre));
      for (StmtRef &P : Pre)
        Out.push_back(std::move(P));
      StmtRef ES = mkStmt(StmtKind::ExprStmt, S->Loc);
      ES->Rhs = NC;
      Out.push_back(ES);
      return;
    }
    case StmtKind::Free: {
      std::vector<StmtRef> Pre;
      ExprRef Arg = atomize(S->Rhs, Pre);
      for (StmtRef &P : Pre)
        Out.push_back(std::move(P));
      StmtRef Free = mkStmt(StmtKind::Free, S->Loc);
      Free->Rhs = Arg;
      Out.push_back(Free);
      return;
    }
    case StmtKind::Assert:
    case StmtKind::Assume:
    case StmtKind::GhostAssume:
    case StmtKind::GhostAssign:
    case StmtKind::GhostHavoc:
      Out.push_back(S);
      return;
    }
  }

  /// Wraps a sub-statement in a block if normalization produced
  /// multiple statements.
  StmtRef normalizeSubStmt(const StmtRef &S) {
    StmtRef Block = mkStmt(StmtKind::Block, S->Loc);
    normalizeStmt(S, Block->Stmts);
    if (Block->Stmts.size() == 1 &&
        Block->Stmts[0]->Kind == StmtKind::Block)
      return Block->Stmts[0];
    return Block;
  }
};

} // namespace

void cfront::normalizeFunction(FuncDecl &F, DiagnosticEngine &Diag) {
  Normalizer(Diag).run(F);
}

void cfront::normalizeProgram(Program &Prog, DiagnosticEngine &Diag) {
  for (const auto &F : Prog.Funcs)
    normalizeFunction(*F, Diag);
}
