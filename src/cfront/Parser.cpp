//===- Parser.cpp - Recursive-descent parser for mini-C + DRYAD ------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Parser.h"

#include "support/StringUtil.h"

#include <cassert>
#include <functional>

using namespace vcdryad;
using namespace vcdryad::cfront;
using dryad::CmpOp;
using dryad::Formula;
using dryad::FormulaKind;
using dryad::FormulaRef;
using dryad::Term;
using dryad::TermKind;
using dryad::TermRef;
using vir::Sort;

namespace {

/// A parsed spec expression: exactly one of term/formula is set.
struct SpecVal {
  TermRef T;
  FormulaRef F;
  SourceLoc Loc;
};

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Toks, DiagnosticEngine &Diag)
      : Toks(std::move(Toks)), Diag(Diag) {}

  std::unique_ptr<Program> run() {
    Prog = std::make_unique<Program>();
    while (!tok().is(Tok::Eof)) {
      if (tok().isIdent("struct") && tok(1).is(Tok::Ident) &&
          tok(2).is(Tok::LBrace)) {
        parseStructDecl();
        continue;
      }
      if (tok().is(Tok::SpecOpen) && tok(1).isIdent("dryad")) {
        parseDryadIsland();
        continue;
      }
      parseFunction();
      if (Diag.errorCount() > 50)
        break; // Avoid error cascades on hopeless inputs.
    }
    Prog->Defs.finalize(Prog->LogicStructs);
    return std::move(Prog);
  }

private:
  std::vector<Token> Toks;
  DiagnosticEngine &Diag;
  std::unique_ptr<Program> Prog;
  size_t P = 0;

  FuncDecl *CurFunc = nullptr;
  bool AllowResult = false;
  /// C lexical scopes (innermost last).
  std::vector<std::map<std::string, CType>> Scopes;
  /// Spec-only parameter scope (definition bodies, axioms).
  std::map<std::string, std::pair<Sort, std::string>> SpecParamScope;

  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//

  const Token &tok(size_t Ahead = 0) const {
    size_t I = P + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  SourceLoc loc() const { return tok().Loc; }
  void bump() {
    if (P + 1 < Toks.size())
      ++P;
  }
  bool accept(Tok K) {
    if (!tok().is(K))
      return false;
    bump();
    return true;
  }
  bool acceptIdent(std::string_view S) {
    if (!tok().isIdent(S))
      return false;
    bump();
    return true;
  }
  void expect(Tok K, const std::string &What) {
    if (!accept(K))
      Diag.error(loc(), "expected " + What);
  }
  std::string expectIdent(const std::string &What) {
    if (!tok().is(Tok::Ident)) {
      Diag.error(loc(), "expected " + What);
      return "<error>";
    }
    std::string S = tok().Text;
    bump();
    return S;
  }
  /// Skips ahead to a likely statement/declaration boundary.
  void recover() {
    while (!tok().is(Tok::Eof) && !tok().is(Tok::Semi) &&
           !tok().is(Tok::RBrace))
      bump();
    accept(Tok::Semi);
  }

  //===--------------------------------------------------------------------===//
  // Types and structs
  //===--------------------------------------------------------------------===//

  StructDecl *findOrCreateStruct(const std::string &Name, SourceLoc L) {
    for (const auto &S : Prog->Structs)
      if (S->Name == Name)
        return S.get();
    auto S = std::make_unique<StructDecl>();
    S->Name = Name;
    S->Loc = L;
    StructDecl *Out = S.get();
    Prog->Structs.push_back(std::move(S));
    return Out;
  }

  bool atType() const {
    return tok().isIdent("int") || tok().isIdent("void") ||
           tok().isIdent("struct");
  }

  CType parseType() {
    if (acceptIdent("int"))
      return CType::mkInt();
    if (acceptIdent("void")) {
      // "void *" is not in the subset; plain void only (return type).
      return CType::mkVoid();
    }
    if (acceptIdent("struct")) {
      SourceLoc L = loc();
      std::string Name = expectIdent("struct name");
      expect(Tok::Star, "'*' (struct values are not in the subset)");
      return CType::mkPtr(findOrCreateStruct(Name, L));
    }
    Diag.error(loc(), "expected a type");
    bump();
    return CType::mkInt();
  }

  void parseStructDecl() {
    acceptIdent("struct");
    SourceLoc L = loc();
    std::string Name = expectIdent("struct name");
    StructDecl *SD = findOrCreateStruct(Name, L);
    expect(Tok::LBrace, "'{'");
    while (!tok().is(Tok::RBrace) && !tok().is(Tok::Eof)) {
      SourceLoc FL = loc();
      CType FT = parseType();
      std::string FName = expectIdent("field name");
      expect(Tok::Semi, "';'");
      SD->Fields.push_back({FName, FT, FL});
    }
    expect(Tok::RBrace, "'}'");
    expect(Tok::Semi, "';' after struct");
    // Mirror into the logic's struct table.
    dryad::StructInfo &SI = Prog->LogicStructs.add(Name);
    for (const FieldDecl &F : SD->Fields) {
      if (F.Ty.isPtr())
        SI.Fields.push_back(
            {F.Name, Sort::Loc, F.Ty.Pointee ? F.Ty.Pointee->Name : ""});
      else
        SI.Fields.push_back({F.Name, Sort::Int, ""});
    }
  }

  //===--------------------------------------------------------------------===//
  // C expression parsing (with inline typing)
  //===--------------------------------------------------------------------===//

  const CType *lookupVar(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  void declareVar(const std::string &Name, CType Ty, SourceLoc L) {
    if (Scopes.empty())
      Scopes.emplace_back();
    // Shadowing is rejected: downstream passes identify variables by
    // name within a function.
    if (lookupVar(Name)) {
      Diag.error(L, "redeclaration of '" + Name + "'");
      return;
    }
    Scopes.back().emplace(Name, Ty);
  }

  static bool ptrCompatible(const CType &A, const CType &B) {
    if (A.K != CType::Ptr || B.K != CType::Ptr)
      return false;
    return !A.Pointee || !B.Pointee || A.Pointee == B.Pointee;
  }
  static bool typeCompatible(const CType &A, const CType &B) {
    if (A == B)
      return true;
    return ptrCompatible(A, B);
  }

  ExprRef mkExpr(ExprKind K, SourceLoc L) {
    auto E = std::make_shared<Expr>(K);
    E->Loc = L;
    return E;
  }

  ExprRef parseExpr() { return parseLOr(); }

  ExprRef parseLOr() {
    ExprRef L = parseLAnd();
    while (tok().is(Tok::OrOr)) {
      SourceLoc OL = loc();
      bump();
      ExprRef R = parseLAnd();
      L = mkBinary(BinOp::LOr, L, R, OL);
    }
    return L;
  }

  ExprRef parseLAnd() {
    ExprRef L = parseEquality();
    while (tok().is(Tok::AndAnd)) {
      SourceLoc OL = loc();
      bump();
      ExprRef R = parseEquality();
      L = mkBinary(BinOp::LAnd, L, R, OL);
    }
    return L;
  }

  ExprRef parseEquality() {
    ExprRef L = parseRel();
    while (tok().is(Tok::EqEq) || tok().is(Tok::NotEq)) {
      BinOp Op = tok().is(Tok::EqEq) ? BinOp::Eq : BinOp::Ne;
      SourceLoc OL = loc();
      bump();
      ExprRef R = parseRel();
      L = mkBinary(Op, L, R, OL);
    }
    return L;
  }

  ExprRef parseRel() {
    ExprRef L = parseAdd();
    for (;;) {
      BinOp Op;
      if (tok().is(Tok::Lt))
        Op = BinOp::Lt;
      else if (tok().is(Tok::Le))
        Op = BinOp::Le;
      else if (tok().is(Tok::Gt))
        Op = BinOp::Gt;
      else if (tok().is(Tok::Ge))
        Op = BinOp::Ge;
      else
        return L;
      SourceLoc OL = loc();
      bump();
      ExprRef R = parseAdd();
      L = mkBinary(Op, L, R, OL);
    }
  }

  ExprRef parseAdd() {
    ExprRef L = parseUnary();
    while (tok().is(Tok::Plus) || tok().is(Tok::Minus)) {
      BinOp Op = tok().is(Tok::Plus) ? BinOp::Add : BinOp::Sub;
      SourceLoc OL = loc();
      bump();
      ExprRef R = parseUnary();
      L = mkBinary(Op, L, R, OL);
    }
    return L;
  }

  ExprRef mkBinary(BinOp Op, ExprRef L, ExprRef R, SourceLoc OL) {
    ExprRef E = mkExpr(ExprKind::Binary, OL);
    E->BOp = Op;
    switch (Op) {
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      if (!L->Ty.isInt() || !R->Ty.isInt())
        Diag.error(OL, "arithmetic/relational operator requires ints");
      break;
    case BinOp::Eq:
    case BinOp::Ne:
      if (!typeCompatible(L->Ty, R->Ty))
        Diag.error(OL, "comparison between incompatible types");
      break;
    case BinOp::LAnd:
    case BinOp::LOr:
      if (!L->Ty.isInt() || !R->Ty.isInt())
        Diag.error(OL, "logical operator requires int operands");
      break;
    }
    E->Ty = CType::mkInt();
    E->Args = {std::move(L), std::move(R)};
    return E;
  }

  ExprRef parseUnary() {
    SourceLoc L = loc();
    if (accept(Tok::Bang)) {
      ExprRef A = parseUnary();
      ExprRef E = mkExpr(ExprKind::Unary, L);
      E->UOp = UnOp::Not;
      E->Ty = CType::mkInt();
      // C idiom: !p tests a pointer against NULL.
      E->Args = {std::move(A)};
      return E;
    }
    if (accept(Tok::Minus)) {
      ExprRef A = parseUnary();
      if (!A->Ty.isInt())
        Diag.error(L, "unary minus requires an int");
      ExprRef E = mkExpr(ExprKind::Unary, L);
      E->UOp = UnOp::Neg;
      E->Ty = CType::mkInt();
      E->Args = {std::move(A)};
      return E;
    }
    return parsePostfix();
  }

  ExprRef parsePostfix() {
    ExprRef E = parsePrimary();
    while (tok().is(Tok::Arrow)) {
      SourceLoc L = loc();
      bump();
      std::string Field = expectIdent("field name");
      ExprRef FA = mkExpr(ExprKind::FieldAccess, L);
      FA->Name = Field;
      if (!E->Ty.isPtr() || !E->Ty.Pointee) {
        Diag.error(L, "'->' applied to a non-pointer");
        FA->Ty = CType::mkInt();
      } else if (const FieldDecl *FD = E->Ty.Pointee->findField(Field)) {
        FA->Ty = FD->Ty;
      } else {
        Diag.error(L, "struct " + E->Ty.Pointee->Name + " has no field '" +
                          Field + "'");
        FA->Ty = CType::mkInt();
      }
      FA->Args = {std::move(E)};
      E = std::move(FA);
    }
    return E;
  }

  ExprRef parseMallocCall(SourceLoc L) {
    // malloc(sizeof(struct T))
    expect(Tok::LParen, "'(' after malloc");
    if (!acceptIdent("sizeof"))
      Diag.error(loc(), "malloc argument must be sizeof(struct T)");
    expect(Tok::LParen, "'('");
    StructDecl *SD = nullptr;
    if (acceptIdent("struct"))
      SD = findOrCreateStruct(expectIdent("struct name"), loc());
    else
      Diag.error(loc(), "expected struct type in sizeof");
    expect(Tok::RParen, "')'");
    expect(Tok::RParen, "')'");
    ExprRef E = mkExpr(ExprKind::Malloc, L);
    E->MallocStruct = SD;
    E->Ty = CType::mkPtr(SD);
    return E;
  }

  ExprRef parsePrimary() {
    SourceLoc L = loc();
    if (tok().is(Tok::IntLit)) {
      ExprRef E = mkExpr(ExprKind::IntLit, L);
      E->IntVal = tok().IntVal;
      E->Ty = CType::mkInt();
      bump();
      return E;
    }
    if (tok().is(Tok::LParen)) {
      // "(struct T *) malloc(...)" cast idiom, or a parenthesized expr.
      if (tok(1).isIdent("struct")) {
        bump();
        acceptIdent("struct");
        StructDecl *SD = findOrCreateStruct(expectIdent("struct name"), L);
        expect(Tok::Star, "'*'");
        expect(Tok::RParen, "')'");
        if (!tok().isIdent("malloc")) {
          Diag.error(loc(), "casts are only allowed on malloc");
          return mkExpr(ExprKind::Null, L);
        }
        bump();
        ExprRef E = parseMallocCall(L);
        E->MallocStruct = SD;
        E->Ty = CType::mkPtr(SD);
        return E;
      }
      bump();
      ExprRef E = parseExpr();
      expect(Tok::RParen, "')'");
      return E;
    }
    if (tok().isIdent("NULL") || tok().isIdent("nil")) {
      bump();
      ExprRef E = mkExpr(ExprKind::Null, L);
      E->Ty = CType::mkPtr(nullptr);
      return E;
    }
    if (tok().isIdent("malloc")) {
      bump();
      return parseMallocCall(L);
    }
    if (tok().is(Tok::Ident)) {
      std::string Name = tok().Text;
      bump();
      if (tok().is(Tok::LParen)) {
        // Function call.
        bump();
        ExprRef E = mkExpr(ExprKind::Call, L);
        E->Name = Name;
        if (!tok().is(Tok::RParen)) {
          do {
            E->Args.push_back(parseExpr());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "')'");
        FuncDecl *Callee = Prog->findFunc(Name);
        if (!Callee) {
          Diag.error(L, "call to undeclared function '" + Name +
                            "' (declare it before use)");
          E->Ty = CType::mkInt();
          return E;
        }
        if (Callee->Params.size() != E->Args.size()) {
          Diag.error(L, "wrong number of arguments to '" + Name + "'");
        } else {
          for (size_t I = 0; I != E->Args.size(); ++I)
            if (!typeCompatible(Callee->Params[I].Ty, E->Args[I]->Ty))
              Diag.error(E->Args[I]->Loc,
                         "argument " + std::to_string(I + 1) + " of '" +
                             Name + "' has the wrong type");
        }
        E->Ty = Callee->RetTy;
        return E;
      }
      ExprRef E = mkExpr(ExprKind::Var, L);
      E->Name = Name;
      if (const CType *Ty = lookupVar(Name)) {
        E->Ty = *Ty;
      } else {
        Diag.error(L, "use of undeclared variable '" + Name + "'");
        E->Ty = CType::mkInt();
      }
      return E;
    }
    Diag.error(L, "expected an expression");
    bump();
    ExprRef E = mkExpr(ExprKind::IntLit, L);
    E->Ty = CType::mkInt();
    return E;
  }

  //===--------------------------------------------------------------------===//
  // Spec terms and formulas
  //===--------------------------------------------------------------------===//

  std::shared_ptr<Term> newTerm(TermKind K, SourceLoc L) {
    auto T = std::make_shared<Term>(K);
    T->Loc = L;
    return T;
  }
  std::shared_ptr<Formula> newFormula(FormulaKind K, SourceLoc L) {
    auto F = std::make_shared<Formula>(K);
    F->Loc = L;
    return F;
  }

  TermRef toTerm(const SpecVal &V) {
    if (V.T)
      return V.T;
    Diag.error(V.Loc, "expected a term, found a formula");
    auto T = newTerm(TermKind::IntLit, V.Loc);
    T->TermSort = Sort::Int;
    return T;
  }

  FormulaRef toFormula(const SpecVal &V) {
    if (V.F)
      return V.F;
    Diag.error(V.Loc, "expected a formula, found a term");
    return newFormula(FormulaKind::True, V.Loc);
  }

  static SpecVal fromTerm(TermRef T, SourceLoc L) {
    return SpecVal{std::move(T), nullptr, L};
  }
  static SpecVal fromFormula(FormulaRef F, SourceLoc L) {
    return SpecVal{nullptr, std::move(F), L};
  }

  /// Looks up a spec variable: definition/axiom parameters first, then
  /// the enclosing C scopes.
  bool specLookupVar(const std::string &Name, Sort &S,
                     std::string &StructName) const {
    auto It = SpecParamScope.find(Name);
    if (It != SpecParamScope.end()) {
      S = It->second.first;
      StructName = It->second.second;
      return true;
    }
    if (const CType *Ty = lookupVar(Name)) {
      if (Ty->isPtr()) {
        S = Sort::Loc;
        StructName = Ty->Pointee ? Ty->Pointee->Name : "";
      } else {
        S = Sort::Int;
        StructName.clear();
      }
      return true;
    }
    return false;
  }

  /// Retags a polymorphic emptyset to \p Want when sorts disagree.
  static TermRef coerceEmpty(TermRef T, Sort Want) {
    if (T->Kind == TermKind::EmptySet && T->TermSort != Want &&
        vir::isSetSort(Want)) {
      auto N = std::make_shared<Term>(TermKind::EmptySet);
      N->TermSort = Want;
      N->Loc = T->Loc;
      return N;
    }
    return T;
  }
  static void unifySetSorts(TermRef &A, TermRef &B) {
    if (A->sort() == B->sort())
      return;
    A = coerceEmpty(A, B->sort());
    B = coerceEmpty(B, A->sort());
  }

  SpecVal parseSpecExpr() {
    SpecVal V = parseSpecImplies();
    if (!tok().is(Tok::Question))
      return V;
    SourceLoc L = loc();
    bump();
    FormulaRef C = toFormula(V);
    TermRef T1 = toTerm(parseSpecExpr());
    expect(Tok::Colon, "':' in conditional term");
    TermRef T2 = toTerm(parseSpecExpr());
    unifySetSorts(T1, T2);
    if (T1->sort() != T2->sort())
      Diag.error(L, "conditional branches have different sorts");
    auto T = newTerm(TermKind::Ite, L);
    T->TermSort = T1->sort();
    T->StructName = T1->StructName.empty() ? T2->StructName : T1->StructName;
    T->CondF = C;
    T->Args = {T1, T2};
    return fromTerm(T, L);
  }

  SpecVal parseSpecImplies() {
    SpecVal V = parseSpecOr();
    while (tok().is(Tok::FatArrow)) {
      SourceLoc L = loc();
      bump();
      FormulaRef A = toFormula(V);
      FormulaRef B = toFormula(parseSpecOr());
      auto F = newFormula(FormulaKind::Implies, L);
      F->Subs = {A, B};
      V = fromFormula(F, L);
    }
    return V;
  }

  SpecVal parseSpecOr() {
    SpecVal V = parseSpecAnd();
    while (tok().is(Tok::OrOr)) {
      SourceLoc L = loc();
      bump();
      FormulaRef A = toFormula(V);
      FormulaRef B = toFormula(parseSpecAnd());
      auto F = newFormula(FormulaKind::Or, L);
      F->Subs = {A, B};
      V = fromFormula(F, L);
    }
    return V;
  }

  SpecVal parseSpecAnd() {
    SpecVal V = parseSpecSep();
    while (tok().is(Tok::AndAnd)) {
      SourceLoc L = loc();
      bump();
      FormulaRef A = toFormula(V);
      FormulaRef B = toFormula(parseSpecSep());
      auto F = newFormula(FormulaKind::And, L);
      F->Subs = {A, B};
      V = fromFormula(F, L);
    }
    return V;
  }

  SpecVal parseSpecSep() {
    SpecVal V = parseSpecCmp();
    while (tok().is(Tok::Star)) {
      SourceLoc L = loc();
      bump();
      FormulaRef A = toFormula(V);
      FormulaRef B = toFormula(parseSpecCmp());
      auto F = newFormula(FormulaKind::Sep, L);
      F->Subs = {A, B};
      V = fromFormula(F, L);
    }
    return V;
  }

  SpecVal parseSpecCmp() {
    SpecVal V = parseSpecAdditive();
    SourceLoc L = loc();
    if (tok().is(Tok::PointsTo)) {
      bump();
      TermRef X = toTerm(V);
      if (X->sort() != Sort::Loc)
        Diag.error(L, "'|->' requires a location");
      auto F = newFormula(FormulaKind::PointsTo, L);
      F->Terms = {X};
      return fromFormula(F, L);
    }
    CmpOp Op;
    if (tok().is(Tok::EqEq))
      Op = CmpOp::Eq;
    else if (tok().is(Tok::NotEq))
      Op = CmpOp::Ne;
    else if (tok().is(Tok::Lt))
      Op = CmpOp::Lt;
    else if (tok().is(Tok::Le))
      Op = CmpOp::Le;
    else if (tok().is(Tok::Gt))
      Op = CmpOp::Gt;
    else if (tok().is(Tok::Ge))
      Op = CmpOp::Ge;
    else if (tok().isIdent("in") || tok().isIdent("subset")) {
      bool IsIn = tok().isIdent("in");
      bump();
      TermRef A = toTerm(V);
      TermRef B = toTerm(parseSpecAdditive());
      auto F = newFormula(IsIn ? FormulaKind::In : FormulaKind::SubsetOf, L);
      if (!vir::isSetSort(B->sort()))
        Diag.error(L, "right operand of '" +
                          std::string(IsIn ? "in" : "subset") +
                          "' must be a set");
      F->Terms = {A, B};
      return fromFormula(F, L);
    } else {
      return V;
    }
    bump();
    TermRef A = toTerm(V);
    TermRef B = toTerm(parseSpecAdditive());
    unifySetSorts(A, B);
    auto F = newFormula(FormulaKind::Cmp, L);
    F->Op = Op;
    F->Terms = {A, B};
    return fromFormula(F, L);
  }

  SpecVal parseSpecAdditive() {
    SpecVal V = parseSpecUnary();
    for (;;) {
      SourceLoc L = loc();
      TermKind K;
      if (tok().isIdent("union"))
        K = TermKind::SetUnion;
      else if (tok().isIdent("inter"))
        K = TermKind::SetInter;
      else if (tok().isIdent("setminus"))
        K = TermKind::SetMinus;
      else if (tok().is(Tok::Plus))
        K = TermKind::Add;
      else if (tok().is(Tok::Minus))
        K = TermKind::Sub;
      else
        return V;
      bump();
      TermRef A = toTerm(V);
      TermRef B = toTerm(parseSpecUnary());
      if (K == TermKind::Add || K == TermKind::Sub) {
        if (A->sort() != Sort::Int || B->sort() != Sort::Int)
          Diag.error(L, "'+'/'-' require integer terms");
      } else {
        unifySetSorts(A, B);
        if (A->sort() != B->sort() || !vir::isSetSort(A->sort()))
          Diag.error(L, "set operation on mismatched sorts");
      }
      auto T = newTerm(K, L);
      T->TermSort = K == TermKind::Add || K == TermKind::Sub ? Sort::Int
                                                             : A->sort();
      T->Args = {A, B};
      V = fromTerm(T, L);
    }
  }

  SpecVal parseSpecUnary() {
    SourceLoc L = loc();
    if (accept(Tok::Bang)) {
      SpecVal V = parseSpecUnary();
      FormulaRef Sub = toFormula(V);
      auto F = newFormula(FormulaKind::Not, L);
      F->Subs = {Sub};
      return fromFormula(F, L);
    }
    if (accept(Tok::Minus)) {
      TermRef A = toTerm(parseSpecUnary());
      if (A->sort() != Sort::Int)
        Diag.error(L, "unary minus requires an integer term");
      auto Zero = newTerm(TermKind::IntLit, L);
      Zero->TermSort = Sort::Int;
      auto T = newTerm(TermKind::Sub, L);
      T->TermSort = Sort::Int;
      T->Args = {Zero, A};
      return fromTerm(T, L);
    }
    return parseSpecPostfix();
  }

  SpecVal parseSpecPostfix() {
    SpecVal V = parseSpecPrimary();
    while (tok().is(Tok::Arrow)) {
      SourceLoc L = loc();
      bump();
      std::string Field = expectIdent("field name");
      TermRef Base = toTerm(V);
      auto T = newTerm(TermKind::FieldRead, L);
      T->Name = Field;
      if (Base->sort() != Sort::Loc) {
        Diag.error(L, "'->' applied to a non-location term");
        T->TermSort = Sort::Int;
      } else if (const dryad::StructInfo *SI =
                     Prog->LogicStructs.lookup(Base->StructName)) {
        if (const dryad::FieldInfo *FI = SI->findField(Field)) {
          T->TermSort = FI->FieldSort;
          T->StructName = FI->TargetStruct;
        } else {
          Diag.error(L, "struct " + Base->StructName + " has no field '" +
                            Field + "'");
          T->TermSort = Sort::Int;
        }
      } else {
        Diag.error(L, "cannot resolve the struct of '" + Base->str() + "'");
        T->TermSort = Sort::Int;
      }
      T->Args = {Base};
      V = fromTerm(T, L);
    }
    return V;
  }

  std::vector<TermRef> parseSpecArgs() {
    std::vector<TermRef> Args;
    expect(Tok::LParen, "'('");
    if (!tok().is(Tok::RParen)) {
      do {
        Args.push_back(toTerm(parseSpecExpr()));
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");
    return Args;
  }

  SpecVal parseSpecPrimary() {
    SourceLoc L = loc();
    if (tok().is(Tok::IntLit)) {
      auto T = newTerm(TermKind::IntLit, L);
      T->TermSort = Sort::Int;
      T->IntVal = tok().IntVal;
      bump();
      return fromTerm(T, L);
    }
    if (accept(Tok::LParen)) {
      SpecVal V = parseSpecExpr();
      expect(Tok::RParen, "')'");
      return V;
    }
    if (tok().isIdent("nil") || tok().isIdent("NULL")) {
      bump();
      auto T = newTerm(TermKind::Nil, L);
      T->TermSort = Sort::Loc;
      return fromTerm(T, L);
    }
    if (tok().isIdent("result")) {
      bump();
      auto T = newTerm(TermKind::Result, L);
      if (!AllowResult || !CurFunc) {
        Diag.error(L, "'result' is only allowed in ensures clauses");
        T->TermSort = Sort::Int;
      } else if (CurFunc->RetTy.isPtr()) {
        T->TermSort = Sort::Loc;
        T->StructName =
            CurFunc->RetTy.Pointee ? CurFunc->RetTy.Pointee->Name : "";
      } else if (CurFunc->RetTy.isInt()) {
        T->TermSort = Sort::Int;
      } else {
        Diag.error(L, "'result' in a void function");
        T->TermSort = Sort::Int;
      }
      return fromTerm(T, L);
    }
    if (tok().isIdent("old")) {
      bump();
      expect(Tok::LParen, "'(' after old");
      SpecVal V = parseSpecExpr();
      expect(Tok::RParen, "')'");
      if (V.F) {
        auto F = newFormula(FormulaKind::OldF, L);
        F->Subs = {V.F};
        return fromFormula(F, L);
      }
      auto T = newTerm(TermKind::Old, L);
      T->TermSort = V.T->sort();
      T->StructName = V.T->StructName;
      T->Args = {V.T};
      return fromTerm(T, L);
    }
    if (tok().isIdent("pure")) {
      bump();
      expect(Tok::LParen, "'(' after pure");
      FormulaRef Sub = toFormula(parseSpecExpr());
      expect(Tok::RParen, "')'");
      auto F = newFormula(FormulaKind::Pure, L);
      F->Subs = {Sub};
      return fromFormula(F, L);
    }
    if (tok().isIdent("emp")) {
      bump();
      return fromFormula(newFormula(FormulaKind::Emp, L), L);
    }
    if (tok().isIdent("true")) {
      bump();
      return fromFormula(newFormula(FormulaKind::True, L), L);
    }
    if (tok().isIdent("false")) {
      bump();
      return fromFormula(newFormula(FormulaKind::False, L), L);
    }
    if (tok().isIdent("emptyset") || tok().isIdent("memptyset") ||
        tok().isIdent("locemptyset")) {
      Sort S = tok().isIdent("emptyset")
                   ? Sort::SetInt
                   : (tok().isIdent("memptyset") ? Sort::MSetInt
                                                 : Sort::SetLoc);
      bump();
      auto T = newTerm(TermKind::EmptySet, L);
      T->TermSort = S;
      return fromTerm(T, L);
    }
    if (tok().isIdent("singleton") || tok().isIdent("msingleton")) {
      bool IsMulti = tok().isIdent("msingleton");
      bump();
      expect(Tok::LParen, "'('");
      TermRef Elem = toTerm(parseSpecExpr());
      expect(Tok::RParen, "')'");
      auto T = newTerm(TermKind::Singleton, L);
      if (Elem->sort() == Sort::Loc) {
        if (IsMulti)
          Diag.error(L, "multisets of locations are not supported");
        T->TermSort = Sort::SetLoc;
      } else {
        T->TermSort = IsMulti ? Sort::MSetInt : Sort::SetInt;
      }
      T->Args = {Elem};
      return fromTerm(T, L);
    }
    if (tok().isIdent("disjoint")) {
      bump();
      expect(Tok::LParen, "'('");
      TermRef A = toTerm(parseSpecExpr());
      expect(Tok::Comma, "','");
      TermRef B = toTerm(parseSpecExpr());
      expect(Tok::RParen, "')'");
      unifySetSorts(A, B);
      if (A->sort() != B->sort() || !vir::isSetSort(A->sort()))
        Diag.error(L, "disjoint() requires two sets of the same sort");
      auto F = newFormula(FormulaKind::Disjoint, L);
      F->Terms = {A, B};
      return fromFormula(F, L);
    }
    if (tok().isIdent("heaplet")) {
      bump();
      std::string DefName = expectIdent("definition name");
      std::vector<TermRef> Args = parseSpecArgs();
      const dryad::RecDef *Def = Prog->Defs.lookup(DefName);
      if (!Def)
        Diag.error(L, "heaplet of unknown definition '" + DefName + "'");
      else if (Def->Params.size() != Args.size())
        Diag.error(L, "wrong number of arguments to heaplet " + DefName);
      auto T = newTerm(TermKind::HeapletOf, L);
      T->Name = DefName;
      T->TermSort = Sort::SetLoc;
      T->Args = std::move(Args);
      return fromTerm(T, L);
    }
    if (tok().is(Tok::Ident)) {
      std::string Name = tok().Text;
      bump();
      if (tok().is(Tok::LParen)) {
        std::vector<TermRef> Args = parseSpecArgs();
        const dryad::RecDef *Def = Prog->Defs.lookup(Name);
        if (!Def) {
          Diag.error(L, "unknown recursive definition '" + Name + "'");
          auto F = newFormula(FormulaKind::True, L);
          return fromFormula(F, L);
        }
        if (Def->Params.size() != Args.size())
          Diag.error(L, "wrong number of arguments to '" + Name + "'");
        if (Def->IsPredicate) {
          auto F = newFormula(FormulaKind::PredApp, L);
          F->Name = Name;
          F->Terms = std::move(Args);
          return fromFormula(F, L);
        }
        auto T = newTerm(TermKind::DefApp, L);
        T->Name = Name;
        T->TermSort = Def->RetSort;
        T->Args = std::move(Args);
        return fromTerm(T, L);
      }
      Sort S;
      std::string StructName;
      auto T = newTerm(TermKind::Var, L);
      T->Name = Name;
      if (specLookupVar(Name, S, StructName)) {
        T->TermSort = S;
        T->StructName = StructName;
      } else {
        Diag.error(L, "use of undeclared variable '" + Name +
                          "' in specification");
        T->TermSort = Sort::Int;
      }
      return fromTerm(T, L);
    }
    Diag.error(L, "expected a specification expression");
    bump();
    return fromFormula(newFormula(FormulaKind::True, L), L);
  }

  //===--------------------------------------------------------------------===//
  // DRYAD definitions and axioms
  //===--------------------------------------------------------------------===//

  std::vector<dryad::SpecParam> parseSpecParams() {
    std::vector<dryad::SpecParam> Params;
    expect(Tok::LParen, "'('");
    if (!tok().is(Tok::RParen)) {
      do {
        dryad::SpecParam P;
        if (acceptIdent("int")) {
          P.ParamSort = Sort::Int;
        } else if (acceptIdent("struct")) {
          P.StructName = expectIdent("struct name");
          expect(Tok::Star, "'*'");
          P.ParamSort = Sort::Loc;
          findOrCreateStruct(P.StructName, loc());
        } else {
          Diag.error(loc(), "expected parameter type");
          bump();
        }
        P.Name = expectIdent("parameter name");
        Params.push_back(std::move(P));
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");
    return Params;
  }

  void withSpecParams(const std::vector<dryad::SpecParam> &Params,
                      const std::function<void()> &Fn) {
    auto Saved = SpecParamScope;
    for (const dryad::SpecParam &P : Params)
      SpecParamScope[P.Name] = {P.ParamSort, P.StructName};
    Fn();
    SpecParamScope = std::move(Saved);
  }

  Sort parseSpecRetSort() {
    if (acceptIdent("int"))
      return Sort::Int;
    if (acceptIdent("intset"))
      return Sort::SetInt;
    if (acceptIdent("intmultiset"))
      return Sort::MSetInt;
    if (acceptIdent("locset"))
      return Sort::SetLoc;
    Diag.error(loc(), "expected a spec function sort "
                      "(int, intset, intmultiset, locset)");
    bump();
    return Sort::Int;
  }

  void parseDryadIsland() {
    accept(Tok::SpecOpen);
    acceptIdent("dryad");
    while (!tok().is(Tok::RParen) && !tok().is(Tok::Eof)) {
      SourceLoc L = loc();
      if (acceptIdent("predicate")) {
        dryad::RecDef Def;
        Def.Loc = L;
        Def.IsPredicate = true;
        Def.Name = expectIdent("predicate name");
        Def.Params = parseSpecParams();
        if (!Prog->Defs.add(Def)) {
          Diag.error(L, "redefinition of '" + Def.Name + "'");
          recover();
          continue;
        }
        expect(Tok::Assign, "'='");
        FormulaRef Body;
        withSpecParams(Def.Params,
                       [&] { Body = toFormula(parseSpecExpr()); });
        Prog->Defs.lookupMut(Def.Name)->PredBody = Body;
        expect(Tok::Semi, "';'");
        continue;
      }
      if (acceptIdent("function")) {
        dryad::RecDef Def;
        Def.Loc = L;
        Def.IsPredicate = false;
        Def.RetSort = parseSpecRetSort();
        Def.Name = expectIdent("function name");
        Def.Params = parseSpecParams();
        if (!Prog->Defs.add(Def)) {
          Diag.error(L, "redefinition of '" + Def.Name + "'");
          recover();
          continue;
        }
        expect(Tok::Assign, "'='");
        TermRef Body;
        withSpecParams(Def.Params, [&] { Body = toTerm(parseSpecExpr()); });
        if (Body->sort() != Def.RetSort) {
          TermRef B2 = coerceEmpty(Body, Def.RetSort);
          if (B2->sort() != Def.RetSort)
            Diag.error(L, "body sort does not match declared sort of '" +
                              Def.Name + "'");
          Body = B2;
        }
        Prog->Defs.lookupMut(Def.Name)->FnBody = Body;
        expect(Tok::Semi, "';'");
        continue;
      }
      if (acceptIdent("axiom")) {
        dryad::AxiomDecl Ax;
        Ax.Loc = L;
        Ax.Params = parseSpecParams();
        withSpecParams(Ax.Params,
                       [&] { Ax.Body = toFormula(parseSpecExpr()); });
        expect(Tok::Semi, "';'");
        Prog->Defs.Axioms.push_back(std::move(Ax));
        continue;
      }
      Diag.error(L, "expected predicate, function or axiom");
      recover();
    }
    expect(Tok::RParen, "')' closing _(dryad ...)");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  StmtRef mkStmt(StmtKind K, SourceLoc L) {
    auto S = std::make_shared<Stmt>(K);
    S->Loc = L;
    return S;
  }

  StmtRef parseBlock() {
    SourceLoc L = loc();
    expect(Tok::LBrace, "'{'");
    Scopes.emplace_back();
    StmtRef B = mkStmt(StmtKind::Block, L);
    while (!tok().is(Tok::RBrace) && !tok().is(Tok::Eof))
      B->Stmts.push_back(parseStmt());
    expect(Tok::RBrace, "'}'");
    Scopes.pop_back();
    return B;
  }

  StmtRef parseStmt() {
    SourceLoc L = loc();
    if (tok().is(Tok::LBrace))
      return parseBlock();
    if (atType()) {
      CType Ty = parseType();
      std::string Name = expectIdent("variable name");
      StmtRef S = mkStmt(StmtKind::Decl, L);
      S->DeclName = Name;
      S->DeclTy = Ty;
      if (accept(Tok::Assign)) {
        S->Rhs = parseExpr();
        if (!typeCompatible(Ty, S->Rhs->Ty))
          Diag.error(L, "initializer type mismatch for '" + Name + "'");
      }
      expect(Tok::Semi, "';'");
      declareVar(Name, Ty, L);
      return S;
    }
    if (acceptIdent("if")) {
      expect(Tok::LParen, "'('");
      ExprRef Cond = parseExpr();
      expect(Tok::RParen, "')'");
      StmtRef S = mkStmt(StmtKind::If, L);
      S->Cond = Cond;
      S->Then = parseStmt();
      if (acceptIdent("else"))
        S->Else = parseStmt();
      return S;
    }
    if (acceptIdent("while")) {
      expect(Tok::LParen, "'('");
      ExprRef Cond = parseExpr();
      expect(Tok::RParen, "')'");
      StmtRef S = mkStmt(StmtKind::While, L);
      S->Cond = Cond;
      while (tok().is(Tok::SpecOpen) && tok(1).isIdent("invariant")) {
        bump();
        bump();
        S->Invariants.push_back(toFormula(parseSpecExpr()));
        expect(Tok::RParen, "')' closing _(invariant ...)");
      }
      S->Then = parseStmt();
      return S;
    }
    if (acceptIdent("return")) {
      StmtRef S = mkStmt(StmtKind::Return, L);
      if (!tok().is(Tok::Semi)) {
        S->Rhs = parseExpr();
        if (CurFunc && !typeCompatible(CurFunc->RetTy, S->Rhs->Ty))
          Diag.error(L, "return type mismatch");
      } else if (CurFunc && !CurFunc->RetTy.isVoid()) {
        Diag.error(L, "non-void function must return a value");
      }
      expect(Tok::Semi, "';'");
      return S;
    }
    if (tok().isIdent("free") && tok(1).is(Tok::LParen)) {
      bump();
      bump();
      StmtRef S = mkStmt(StmtKind::Free, L);
      S->Rhs = parseExpr();
      if (!S->Rhs->Ty.isPtr())
        Diag.error(L, "free() requires a pointer");
      expect(Tok::RParen, "')'");
      expect(Tok::Semi, "';'");
      return S;
    }
    if (tok().is(Tok::SpecOpen)) {
      bump();
      bool IsAssert = tok().isIdent("assert");
      bool IsAssume = tok().isIdent("assume");
      if (!IsAssert && !IsAssume) {
        Diag.error(loc(), "expected assert or assume in statement spec");
        recover();
        return mkStmt(StmtKind::Block, L);
      }
      bump();
      StmtRef S = mkStmt(IsAssert ? StmtKind::Assert : StmtKind::Assume, L);
      S->Spec = toFormula(parseSpecExpr());
      expect(Tok::RParen, "')'");
      return S;
    }
    // Assignment or expression statement.
    ExprRef E = parseExpr();
    if (accept(Tok::Assign)) {
      StmtRef S = mkStmt(StmtKind::Assign, L);
      if (E->Kind != ExprKind::Var && E->Kind != ExprKind::FieldAccess)
        Diag.error(L, "assignment target must be a variable or a field");
      S->Lhs = E;
      S->Rhs = parseExpr();
      if (!typeCompatible(E->Ty, S->Rhs->Ty))
        Diag.error(L, "assignment type mismatch");
      expect(Tok::Semi, "';'");
      return S;
    }
    if (E->Kind != ExprKind::Call)
      Diag.error(L, "expression statement must be a call");
    StmtRef S = mkStmt(StmtKind::ExprStmt, L);
    S->Rhs = E;
    expect(Tok::Semi, "';'");
    return S;
  }

  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  void parseFunction() {
    SourceLoc L = loc();
    if (!atType()) {
      Diag.error(L, "expected a declaration");
      recover();
      return;
    }
    CType RetTy = parseType();
    std::string Name = expectIdent("function name");

    auto FD = std::make_unique<FuncDecl>();
    FD->Name = Name;
    FD->RetTy = RetTy;
    FD->Loc = L;
    FuncDecl *F = FD.get();

    expect(Tok::LParen, "'('");
    Scopes.emplace_back();
    if (!tok().is(Tok::RParen)) {
      do {
        SourceLoc PL = loc();
        if (acceptIdent("void"))
          break; // f(void)
        CType PT = parseType();
        std::string PN = expectIdent("parameter name");
        F->Params.push_back({PN, PT, PL});
        declareVar(PN, PT, PL);
      } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");

    // Register before parsing contracts/body: recursion.
    if (FuncDecl *Prev = Prog->findFunc(Name)) {
      (void)Prev;
      Diag.error(L, "redefinition of function '" + Name + "'");
    }
    Prog->Funcs.push_back(std::move(FD));

    FuncDecl *SavedFunc = CurFunc;
    CurFunc = F;
    while (tok().is(Tok::SpecOpen)) {
      bump();
      bool IsReq = tok().isIdent("requires");
      bool IsEns = tok().isIdent("ensures");
      if (!IsReq && !IsEns) {
        Diag.error(loc(), "expected requires or ensures");
        recover();
        continue;
      }
      bump();
      AllowResult = IsEns;
      FormulaRef Spec = toFormula(parseSpecExpr());
      AllowResult = false;
      expect(Tok::RParen, "')' closing contract");
      (IsReq ? F->Requires : F->Ensures).push_back(Spec);
    }

    if (accept(Tok::Semi)) {
      // Declaration only.
    } else {
      F->Body = parseBlock();
    }
    CurFunc = SavedFunc;
    Scopes.pop_back();
  }
};

} // namespace

std::unique_ptr<Program> cfront::parseProgram(const std::string &Source,
                                              DiagnosticEngine &Diag) {
  std::vector<Token> Toks = lex(Source, Diag);
  return ParserImpl(std::move(Toks), Diag).run();
}

std::unique_ptr<Program> cfront::parseFile(const std::string &Path,
                                           DiagnosticEngine &Diag) {
  auto Content = readFile(Path);
  if (!Content) {
    Diag.error({}, "cannot open file '" + Path + "'");
    return nullptr;
  }
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "" : Path.substr(0, Slash);
  std::string Expanded = preprocess(*Content, Dir, Diag);
  return parseProgram(Expanded, Diag);
}
