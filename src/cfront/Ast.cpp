//===- Ast.cpp - Mini-C abstract syntax ------------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Ast.h"

using namespace vcdryad;
using namespace vcdryad::cfront;

std::string CType::str() const {
  switch (K) {
  case Int:
    return "int";
  case Void:
    return "void";
  case Ptr:
    return "struct " + (Pointee ? Pointee->Name : "?") + " *";
  }
  return "?";
}

static const char *binOpStr(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::LAnd:
    return "&&";
  case BinOp::LOr:
    return "||";
  }
  return "?";
}

std::string Expr::str() const {
  switch (Kind) {
  case ExprKind::Var:
    return Name;
  case ExprKind::IntLit:
    return std::to_string(IntVal);
  case ExprKind::Null:
    return "NULL";
  case ExprKind::FieldAccess:
    return Args[0]->str() + "->" + Name;
  case ExprKind::Unary:
    return (UOp == UnOp::Not ? "!" : "-") + Args[0]->str();
  case ExprKind::Binary:
    return "(" + Args[0]->str() + " " + binOpStr(BOp) + " " +
           Args[1]->str() + ")";
  case ExprKind::Call: {
    std::string Out = Name + "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I]->str();
    }
    return Out + ")";
  }
  case ExprKind::Malloc:
    return "malloc(sizeof(struct " +
           (MallocStruct ? MallocStruct->Name : "?") + "))";
  }
  return "?";
}

std::string Stmt::str(unsigned Indent) const {
  std::string Pad(Indent, ' ');
  switch (Kind) {
  case StmtKind::Block: {
    std::string Out = Pad + "{\n";
    for (const StmtRef &S : Stmts)
      Out += S->str(Indent + 2);
    return Out + Pad + "}\n";
  }
  case StmtKind::Decl: {
    std::string Out = Pad + DeclTy.str() + " " + DeclName;
    if (Rhs)
      Out += " = " + Rhs->str();
    return Out + ";\n";
  }
  case StmtKind::Assign:
    return Pad + Lhs->str() + " = " + Rhs->str() + ";\n";
  case StmtKind::If: {
    std::string Out = Pad + "if (" + Cond->str() + ")\n";
    Out += Then->str(Indent + 2);
    if (Else) {
      Out += Pad + "else\n";
      Out += Else->str(Indent + 2);
    }
    return Out;
  }
  case StmtKind::While: {
    std::string Out = Pad + "while (" + Cond->str() + ")\n";
    for (const dryad::FormulaRef &Inv : Invariants)
      Out += Pad + "  _(invariant " + Inv->str() + ")\n";
    Out += Then->str(Indent + 2);
    return Out;
  }
  case StmtKind::Return:
    return Pad + (Rhs ? "return " + Rhs->str() : std::string("return")) +
           ";\n";
  case StmtKind::ExprStmt:
    return Pad + Rhs->str() + ";\n";
  case StmtKind::Free:
    return Pad + "free(" + Rhs->str() + ");\n";
  case StmtKind::Assert:
    return Pad + "_(assert " + Spec->str() + ")\n";
  case StmtKind::Assume:
    return Pad + "_(assume " + Spec->str() + ")\n";
  case StmtKind::GhostAssume:
    return Pad + "_(ghost assume " + Ghost->str() +
           (GhostComment.empty() ? "" : "  /* " + GhostComment + " */") +
           ")\n";
  case StmtKind::GhostAssign:
    return Pad + "_(ghost " + GhostVar + " := " + Ghost->str() +
           (GhostComment.empty() ? "" : "  /* " + GhostComment + " */") +
           ")\n";
  case StmtKind::GhostHavoc:
    return Pad + "_(ghost havoc " + GhostVar + ")\n";
  }
  return Pad + "?;\n";
}

std::string FuncDecl::str() const {
  std::string Out = RetTy.str() + " " + Name + "(";
  for (size_t I = 0; I != Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Params[I].Ty.str() + " " + Params[I].Name;
  }
  Out += ")\n";
  for (const dryad::FormulaRef &R : Requires)
    Out += "  _(requires " + R->str() + ")\n";
  for (const dryad::FormulaRef &E : Ensures)
    Out += "  _(ensures " + E->str() + ")\n";
  if (Body)
    Out += Body->str(0);
  else
    Out += "  ;\n";
  return Out;
}

std::string Program::str() const {
  std::string Out;
  for (const auto &S : Structs) {
    Out += "struct " + S->Name + " {\n";
    for (const FieldDecl &F : S->Fields)
      Out += "  " + F.Ty.str() + " " + F.Name + ";\n";
    Out += "};\n\n";
  }
  for (const auto &F : Funcs) {
    Out += F->str();
    Out += "\n";
  }
  return Out;
}
