//===- FuncHash.h - Stable function fingerprinting --------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Build-system-style content fingerprinting of functions: a stable
/// FNV-1a digest over everything a function's proof can depend on,
/// computed on the *normalized* AST (after cfront/Normalize, before
/// ghost instrumentation). Two functions with equal fingerprints
/// produce byte-identical proof obligations under equal pipeline
/// options, so a persisted manifest keyed by this digest can discharge
/// unchanged functions on re-runs without re-generating or re-solving
/// their VCs.
///
/// The fingerprint covers, in a canonical order:
///   - the printed normalized function (signature, contracts, loop
///     invariants, asserts/assumes, body) — whitespace and comment
///     edits do not change it;
///   - the contracts (not bodies) of every function it calls —
///     verification is modular, so a callee body edit must *not*
///     invalidate callers, but a callee contract edit must;
///   - the shapes of every struct it can touch (transitively through
///     pointer fields and definition footprints);
///   - the transitive closure of recursive definitions its specs
///     mention *plus* every definition pertinent to a touched struct
///     (the instrumentation unfolds defsForStruct(T) at dereferences
///     of T even when the function's own specs never name them);
///   - every data-structure axiom whose parameters or body intersect
///     that closure.
///
/// Soundness of the closure: it over-approximates the inputs of
/// instrument -> translate -> passify -> VC-gen for the function. An
/// edit outside the closure cannot change the function's obligations;
/// an edit inside it changes the fingerprint and forces re-planning.
/// Over-approximation only costs spurious re-verification, never a
/// stale verdict.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_CFRONT_FUNCHASH_H
#define VCDRYAD_CFRONT_FUNCHASH_H

#include "cfront/Ast.h"

#include <cstdint>
#include <set>
#include <string>

namespace vcdryad {
namespace cfront {

/// The dependency closure backing a function's fingerprint, exposed
/// for tests and diagnostics. All sets are sorted (std::set) so
/// iteration is canonical.
struct FuncDeps {
  std::set<std::string> Defs;    ///< Recursive definitions (transitive).
  std::set<std::string> Structs; ///< Touched struct names (transitive).
  std::set<std::string> Callees; ///< Called functions (contract deps).
};

/// Collects the transitive dependency closure of \p F (see file
/// comment). \p F must be normalized; ghost statements inserted by a
/// later instrumentation pass are ignored by design.
FuncDeps collectFuncDeps(const FuncDecl &F, const Program &Prog);

/// Stable content fingerprint of the normalized function \p F within
/// \p Prog. Identical across processes and platforms; independent of
/// source locations, whitespace, comments, and of every declaration
/// outside the function's dependency closure.
uint64_t fingerprintFunction(const FuncDecl &F, const Program &Prog);

} // namespace cfront
} // namespace vcdryad

#endif // VCDRYAD_CFRONT_FUNCHASH_H
