//===- Parser.h - Recursive-descent parser for mini-C + DRYAD ---*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses a translation unit: struct declarations, `_(dryad ...)`
/// islands with recursive definitions and data-structure axioms,
/// and functions with `_(requires/ensures)` contracts, `_(invariant)`
/// loop annotations and `_(assert/assume)` statements. Typing is done
/// during parsing (the subset is simple enough that a separate Sema
/// pass would duplicate the scope bookkeeping).
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_CFRONT_PARSER_H
#define VCDRYAD_CFRONT_PARSER_H

#include "cfront/Ast.h"
#include "cfront/Lexer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace vcdryad {
namespace cfront {

/// Parses \p Source (already preprocessed). Returns a program even on
/// errors (check \p Diag.hasErrors()).
std::unique_ptr<Program> parseProgram(const std::string &Source,
                                      DiagnosticEngine &Diag);

/// Convenience: preprocess (resolving includes relative to the file's
/// directory) and parse a file. Returns null if the file cannot be
/// read.
std::unique_ptr<Program> parseFile(const std::string &Path,
                                   DiagnosticEngine &Diag);

} // namespace cfront
} // namespace vcdryad

#endif // VCDRYAD_CFRONT_PARSER_H
