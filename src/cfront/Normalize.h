//===- Normalize.h - Dereference flattening ---------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites a function body so that heap accesses appear only in the
/// primitive forms the natural-proof instrumentation of Figure 5
/// expects ("u = v.f; all other statements with dereferences can be
/// split into simpler ones", Section 3.3):
///
///   u = v->f;        (v a variable)
///   v->f = w;        (w a variable or literal)
///   u = malloc(...);
///   u = f(atoms); / f(atoms);
///   u = <heap-free expr>;
///
/// Conditions become heap-free; loop conditions get an explicit
/// evaluation prelude re-run at the loop head (stored in the While
/// node's Stmts), so the verifier can evaluate the condition after the
/// invariant havoc.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_CFRONT_NORMALIZE_H
#define VCDRYAD_CFRONT_NORMALIZE_H

#include "cfront/Ast.h"
#include "support/Diagnostics.h"

namespace vcdryad {
namespace cfront {

/// Normalizes the body of \p F in place. Idempotent.
void normalizeFunction(FuncDecl &F, DiagnosticEngine &Diag);

/// Normalizes every function with a body.
void normalizeProgram(Program &Prog, DiagnosticEngine &Diag);

} // namespace cfront
} // namespace vcdryad

#endif // VCDRYAD_CFRONT_NORMALIZE_H
