//===- Lexer.cpp - Tokenizer for mini-C plus DRYAD specs -------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "cfront/Lexer.h"

#include "support/StringUtil.h"

#include <cctype>
#include <set>

using namespace vcdryad;
using namespace vcdryad::cfront;

namespace {

class LexerImpl {
public:
  LexerImpl(const std::string &Source, DiagnosticEngine &Diag)
      : Src(Source), Diag(Diag) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    for (;;) {
      skipTrivia();
      Token T = next();
      Out.push_back(T);
      if (T.Kind == Tok::Eof)
        break;
    }
    return Out;
  }

private:
  const std::string &Src;
  DiagnosticEngine &Diag;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  char bump() {
    char C = peek();
    ++Pos;
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    for (;;) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        bump();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (peek() && peek() != '\n')
          bump();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        bump();
        bump();
        while (peek() && !(peek() == '*' && peek(1) == '/'))
          bump();
        if (peek()) {
          bump();
          bump();
        }
        continue;
      }
      return;
    }
  }

  Token make(Tok K) {
    Token T;
    T.Kind = K;
    T.Loc = {Line, Col};
    return T;
  }

  Token next() {
    SourceLoc Loc{Line, Col};
    char C = peek();
    if (C == '\0') {
      Token T = make(Tok::Eof);
      T.Loc = Loc;
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_')
        Text += bump();
      // "_(": the spec-island opener.
      if (Text == "_" && peek() == '(') {
        bump();
        Token T;
        T.Kind = Tok::SpecOpen;
        T.Loc = Loc;
        return T;
      }
      Token T;
      T.Kind = Tok::Ident;
      T.Text = std::move(Text);
      T.Loc = Loc;
      return T;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        V = V * 10 + (bump() - '0');
      Token T;
      T.Kind = Tok::IntLit;
      T.IntVal = V;
      T.Loc = Loc;
      return T;
    }
    auto Two = [&](char A, char B) { return C == A && peek(1) == B; };
    Token T;
    T.Loc = Loc;
    if (Two('=', '=') && peek(2) == '>') {
      bump();
      bump();
      bump();
      T.Kind = Tok::FatArrow;
      return T;
    }
    if (Two('=', '=')) {
      bump();
      bump();
      T.Kind = Tok::EqEq;
      return T;
    }
    if (Two('!', '=')) {
      bump();
      bump();
      T.Kind = Tok::NotEq;
      return T;
    }
    if (Two('<', '=')) {
      bump();
      bump();
      T.Kind = Tok::Le;
      return T;
    }
    if (Two('>', '=')) {
      bump();
      bump();
      T.Kind = Tok::Ge;
      return T;
    }
    if (Two('&', '&')) {
      bump();
      bump();
      T.Kind = Tok::AndAnd;
      return T;
    }
    if (Two('|', '|')) {
      bump();
      bump();
      T.Kind = Tok::OrOr;
      return T;
    }
    if (Two('-', '>')) {
      bump();
      bump();
      T.Kind = Tok::Arrow;
      return T;
    }
    if (C == '|' && peek(1) == '-' && peek(2) == '>') {
      bump();
      bump();
      bump();
      T.Kind = Tok::PointsTo;
      return T;
    }
    bump();
    switch (C) {
    case '(':
      T.Kind = Tok::LParen;
      return T;
    case ')':
      T.Kind = Tok::RParen;
      return T;
    case '{':
      T.Kind = Tok::LBrace;
      return T;
    case '}':
      T.Kind = Tok::RBrace;
      return T;
    case ';':
      T.Kind = Tok::Semi;
      return T;
    case ',':
      T.Kind = Tok::Comma;
      return T;
    case '*':
      T.Kind = Tok::Star;
      return T;
    case '+':
      T.Kind = Tok::Plus;
      return T;
    case '-':
      T.Kind = Tok::Minus;
      return T;
    case '!':
      T.Kind = Tok::Bang;
      return T;
    case '=':
      T.Kind = Tok::Assign;
      return T;
    case '<':
      T.Kind = Tok::Lt;
      return T;
    case '>':
      T.Kind = Tok::Gt;
      return T;
    case '?':
      T.Kind = Tok::Question;
      return T;
    case ':':
      T.Kind = Tok::Colon;
      return T;
    default:
      Diag.error(Loc, std::string("unexpected character '") + C + "'");
      return next();
    }
  }
};

static void preprocessInto(const std::string &Source,
                           const std::string &BaseDir,
                           std::set<std::string> &Seen, std::string &Out,
                           DiagnosticEngine &Diag) {
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    std::string_view Line(Source.data() + Pos, End - Pos);
    std::string_view Trimmed = trim(Line);
    if (startsWith(Trimmed, "#include")) {
      size_t Q1 = Trimmed.find('"');
      size_t Q2 = Q1 == std::string_view::npos
                      ? std::string_view::npos
                      : Trimmed.find('"', Q1 + 1);
      if (Q2 == std::string_view::npos) {
        Diag.error({}, "malformed #include directive: " +
                           std::string(Trimmed));
      } else {
        std::string Rel(Trimmed.substr(Q1 + 1, Q2 - Q1 - 1));
        std::string Path = BaseDir.empty() || Rel.starts_with("/")
                               ? Rel
                               : BaseDir + "/" + Rel;
        if (Seen.insert(Path).second) {
          auto Content = readFile(Path);
          if (!Content) {
            Diag.error({}, "cannot open include file '" + Path + "'");
          } else {
            size_t Slash = Path.find_last_of('/');
            std::string SubDir =
                Slash == std::string::npos ? "" : Path.substr(0, Slash);
            preprocessInto(*Content, SubDir, Seen, Out, Diag);
          }
        }
      }
    } else {
      Out.append(Line);
    }
    Out += '\n';
    Pos = End + 1;
  }
}

} // namespace

std::vector<Token> cfront::lex(const std::string &Source,
                               DiagnosticEngine &Diag) {
  return LexerImpl(Source, Diag).run();
}

std::string cfront::preprocess(const std::string &Source,
                               const std::string &BaseDir,
                               DiagnosticEngine &Diag,
                               std::set<std::string> *IncludeClosure) {
  std::string Out;
  std::set<std::string> Seen; // Every resolved include, transitively.
  preprocessInto(Source, BaseDir, Seen, Out, Diag);
  if (IncludeClosure)
    *IncludeClosure = std::move(Seen);
  return Out;
}
