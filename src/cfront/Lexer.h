//===- Lexer.h - Tokenizer for mini-C plus DRYAD specs ----------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One token stream serves both the C program text and the `_(...)`
/// specification islands; the parser decides which grammar applies.
/// A tiny `#include "..."` preprocessor (textual splicing, include
/// guards by path) lets the benchmark corpus share DRYAD definition
/// preludes per data-structure family.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_CFRONT_LEXER_H
#define VCDRYAD_CFRONT_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <set>
#include <string>
#include <vector>

namespace vcdryad {
namespace cfront {

enum class Tok {
  Ident,
  IntLit,
  LParen,
  RParen,
  LBrace,
  RBrace,
  Semi,
  Comma,
  Arrow,    ///< ->
  Star,     ///< *
  Plus,
  Minus,
  Bang,     ///< !
  Assign,   ///< =
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  AndAnd,
  OrOr,
  Question,
  Colon,
  PointsTo, ///< |->
  FatArrow, ///< ==>
  SpecOpen, ///< _(
  Eof,
};

struct Token {
  Tok Kind = Tok::Eof;
  std::string Text; ///< Identifier spelling.
  int64_t IntVal = 0;
  SourceLoc Loc;

  bool is(Tok K) const { return Kind == K; }
  bool isIdent(std::string_view S) const {
    return Kind == Tok::Ident && Text == S;
  }
};

/// Tokenizes \p Source. Lexical errors are reported to \p Diag; the
/// returned vector always ends with an Eof token.
std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diag);

/// Expands `#include "file"` directives of \p Source textually,
/// resolving relative to \p BaseDir; each file is included at most
/// once. Unresolvable includes are reported to \p Diag. When
/// \p IncludeClosure is non-null it receives the resolved path of
/// every include directive encountered (transitively, deduplicated) —
/// the exact file set whose bytes feed the preprocessed text, which
/// is what watch mode must monitor to invalidate a resident plan.
std::string preprocess(const std::string &Source, const std::string &BaseDir,
                       DiagnosticEngine &Diag,
                       std::set<std::string> *IncludeClosure = nullptr);

} // namespace cfront
} // namespace vcdryad

#endif // VCDRYAD_CFRONT_LEXER_H
