//===- Ast.h - Mini-C abstract syntax ---------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST of the C subset VCDRYAD supports (Section 4 of the paper):
/// structs, typed pointers, mathematical ints, malloc/free, functions,
/// if/while/return — no pointer arithmetic, no function pointers, no
/// casts other than the malloc idiom. Specifications (contracts, loop
/// invariants, inline assertions) are DRYAD formulas attached to the
/// AST, and ghost statements inserted by the natural-proof
/// instrumentation are first-class statement nodes so the instrumented
/// program can be printed and its annotations counted (Figure 6).
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_CFRONT_AST_H
#define VCDRYAD_CFRONT_AST_H

#include "dryad/Spec.h"
#include "support/SourceLoc.h"
#include "vir/LExpr.h"

#include <memory>
#include <string>
#include <vector>

namespace vcdryad {
namespace cfront {

//===----------------------------------------------------------------------===//
// Types and declarations
//===----------------------------------------------------------------------===//

struct StructDecl;

/// A C type of the supported subset.
struct CType {
  enum Kind { Int, Void, Ptr } K = Int;
  const StructDecl *Pointee = nullptr; ///< For Ptr.

  static CType mkInt() { return {Int, nullptr}; }
  static CType mkVoid() { return {Void, nullptr}; }
  static CType mkPtr(const StructDecl *S) { return {Ptr, S}; }

  bool isPtr() const { return K == Ptr; }
  bool isInt() const { return K == Int; }
  bool isVoid() const { return K == Void; }
  bool operator==(const CType &RHS) const = default;

  std::string str() const;
};

struct FieldDecl {
  std::string Name;
  CType Ty;
  SourceLoc Loc;
};

struct StructDecl {
  std::string Name;
  std::vector<FieldDecl> Fields;
  SourceLoc Loc;

  const FieldDecl *findField(const std::string &F) const {
    for (const FieldDecl &FD : Fields)
      if (FD.Name == F)
        return &FD;
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  Var,
  IntLit,
  Null,
  FieldAccess, ///< base->field.
  Unary,
  Binary,
  Call,   ///< Function call (as expression or statement).
  Malloc, ///< malloc(sizeof(struct T)), optionally cast.
};

enum class UnOp { Not, Neg };
enum class BinOp { Add, Sub, Eq, Ne, Lt, Le, Gt, Ge, LAnd, LOr };

struct Expr;
using ExprRef = std::shared_ptr<Expr>;

struct Expr {
  ExprKind Kind;
  CType Ty;
  std::string Name; ///< Var / field / callee name.
  int64_t IntVal = 0;
  UnOp UOp = UnOp::Not;
  BinOp BOp = BinOp::Add;
  std::vector<ExprRef> Args; ///< Operands / call arguments.
  const StructDecl *MallocStruct = nullptr;
  SourceLoc Loc;

  explicit Expr(ExprKind K) : Kind(K) {}

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Block,
  Decl,   ///< Local variable declaration with optional init.
  Assign, ///< lvalue = expr (lvalue: Var or FieldAccess).
  If,
  While,
  Return,
  ExprStmt, ///< A call used as a statement.
  Free,     ///< free(v).
  Assert,   ///< _(assert F) — user proof obligation.
  Assume,   ///< _(assume F) — user assumption.
  // Ghost statements synthesized by the natural-proof instrumentation
  // (Figure 5). They carry VIR expressions directly.
  GhostAssume, ///< assume <LExpr>.
  GhostAssign, ///< ghost var := <LExpr>.
  GhostHavoc,  ///< havoc ghost var.
};

struct Stmt;
using StmtRef = std::shared_ptr<Stmt>;

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  // Block.
  std::vector<StmtRef> Stmts;
  // Decl.
  std::string DeclName;
  CType DeclTy;
  // Decl init / Assign rhs / Return value / ExprStmt / Free argument.
  ExprRef Rhs;
  // Assign lhs.
  ExprRef Lhs;
  // If / While condition.
  ExprRef Cond;
  // If branches; While body.
  StmtRef Then;
  StmtRef Else;
  // While invariants.
  std::vector<dryad::FormulaRef> Invariants;
  // Assert / Assume formula.
  dryad::FormulaRef Spec;
  // Ghost statements.
  std::string GhostVar;
  vir::Sort GhostSort = vir::Sort::Bool;
  vir::LExprRef Ghost;
  std::string GhostComment; ///< Why the ghost fact was emitted.

  explicit Stmt(StmtKind K) : Kind(K) {}

  std::string str(unsigned Indent = 0) const;
};

//===----------------------------------------------------------------------===//
// Functions and programs
//===----------------------------------------------------------------------===//

struct ParamDecl {
  std::string Name;
  CType Ty;
  SourceLoc Loc;
};

struct FuncDecl {
  std::string Name;
  CType RetTy;
  std::vector<ParamDecl> Params;
  std::vector<dryad::FormulaRef> Requires;
  std::vector<dryad::FormulaRef> Ensures;
  StmtRef Body; ///< Null for declarations without bodies.
  SourceLoc Loc;

  std::string str() const;
};

/// A parsed translation unit: struct shapes (C view and logic view),
/// the DRYAD definition table with axioms, and the functions.
struct Program {
  std::vector<std::unique_ptr<StructDecl>> Structs;
  dryad::StructTable LogicStructs;
  dryad::DefTable Defs;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;

  const StructDecl *findStruct(const std::string &Name) const {
    for (const auto &S : Structs)
      if (S->Name == Name)
        return S.get();
    return nullptr;
  }
  FuncDecl *findFunc(const std::string &Name) const {
    for (const auto &F : Funcs)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }

  std::string str() const;
};

} // namespace cfront
} // namespace vcdryad

#endif // VCDRYAD_CFRONT_AST_H
