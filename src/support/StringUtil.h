//===- StringUtil.h - Small string helpers ----------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the pipeline: joining, trimming and
/// whole-file reading.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SUPPORT_STRINGUTIL_H
#define VCDRYAD_SUPPORT_STRINGUTIL_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vcdryad {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view S);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Reads a whole file; std::nullopt if it cannot be opened.
std::optional<std::string> readFile(const std::string &Path);

} // namespace vcdryad

#endif // VCDRYAD_SUPPORT_STRINGUTIL_H
