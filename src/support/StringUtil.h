//===- StringUtil.h - Small string helpers ----------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the pipeline: joining, trimming and
/// whole-file reading.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SUPPORT_STRINGUTIL_H
#define VCDRYAD_SUPPORT_STRINGUTIL_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vcdryad {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view S);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Reads a whole file; std::nullopt if it cannot be opened.
std::optional<std::string> readFile(const std::string &Path);

/// Parses a base-10 unsigned integer; std::nullopt unless the whole
/// string is digits and the value fits (used instead of std::stoul so
/// malformed CLI values like --timeout=abc become usage errors, not
/// uncaught exceptions).
std::optional<unsigned long> parseUnsigned(std::string_view S);

} // namespace vcdryad

#endif // VCDRYAD_SUPPORT_STRINGUTIL_H
