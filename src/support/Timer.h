//===- Timer.h - Wall-clock timing ------------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock stopwatch used by the verifier driver and the Table-1
/// benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SUPPORT_TIMER_H
#define VCDRYAD_SUPPORT_TIMER_H

#include <chrono>

namespace vcdryad {

/// Starts on construction; seconds()/millis() report elapsed wall time.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace vcdryad

#endif // VCDRYAD_SUPPORT_TIMER_H
