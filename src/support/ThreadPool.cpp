//===- ThreadPool.cpp - Bounded-queue worker pool --------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace vcdryad;

ThreadPool::ThreadPool(unsigned Workers, size_t QueueCap)
    : QueueCap(QueueCap ? QueueCap : 1) {
  if (Workers == 0)
    Workers = 1;
  Threads.reserve(Workers);
  for (unsigned I = 0; I != Workers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Stopping = true;
  }
  NotEmpty.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(Task T) {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    NotFull.wait(Lock, [this] { return Queue.size() < QueueCap; });
    Queue.push_back(std::move(T));
    ++Outstanding;
  }
  NotEmpty.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return Outstanding == 0; });
}

void ThreadPool::workerLoop(unsigned Id) {
  for (;;) {
    Task T;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      NotEmpty.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      T = std::move(Queue.front());
      Queue.pop_front();
    }
    NotFull.notify_one();
    T(Id);
    {
      std::unique_lock<std::mutex> Lock(Mu);
      if (--Outstanding == 0)
        Idle.notify_all();
    }
  }
}
