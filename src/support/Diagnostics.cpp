//===- Diagnostics.cpp - Error reporting ----------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace vcdryad;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "diag";
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += severityName(Severity);
  Out += ": ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
