//===- ThreadPool.h - Bounded-queue worker pool -----------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool with a bounded work queue, used by
/// the verification service to fan proof obligations out across
/// workers. Tasks receive the index of the worker running them, so
/// callers can keep per-worker state (one SMT solver per worker)
/// without locking on the hot path. submit() blocks while the queue is
/// full — the producer (the batch front end) is throttled instead of
/// buffering an unbounded corpus of VCs.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SUPPORT_THREADPOOL_H
#define VCDRYAD_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vcdryad {

class ThreadPool {
public:
  using Task = std::function<void(unsigned WorkerId)>;

  /// Spawns \p Workers threads (at least one). At most \p QueueCap
  /// tasks wait in the queue before submit() blocks.
  explicit ThreadPool(unsigned Workers, size_t QueueCap = 1024);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues a task; blocks while the queue is at capacity.
  void submit(Task T);

  /// Blocks until every submitted task has finished running.
  void wait();

private:
  void workerLoop(unsigned Id);

  std::mutex Mu;
  std::condition_variable NotEmpty; ///< Queue gained a task (or stopping).
  std::condition_variable NotFull;  ///< Queue dropped below capacity.
  std::condition_variable Idle;     ///< Outstanding reached zero.
  std::deque<Task> Queue;
  size_t QueueCap;
  size_t Outstanding = 0; ///< Queued + currently running.
  bool Stopping = false;
  std::vector<std::thread> Threads;
};

} // namespace vcdryad

#endif // VCDRYAD_SUPPORT_THREADPOOL_H
