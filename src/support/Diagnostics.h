//===- Diagnostics.h - Error reporting --------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine: every stage of the pipeline reports
/// errors/warnings here instead of printing or aborting, so library
/// clients (tests, benches, the CLI) decide how to surface them.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SUPPORT_DIAGNOSTICS_H
#define VCDRYAD_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace vcdryad {

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLoc Loc;
  std::string Message;

  /// Renders as "file-less" single-line text, e.g. "3:7: error: ...".
  std::string str() const;
};

/// Collects diagnostics for one compilation. Cheap to construct; pass
/// by reference through the pipeline.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Msg)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Msg)});
  }
  void note(SourceLoc Loc, std::string Msg) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Msg)});
  }

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All diagnostics joined by newlines (for test failure messages and
  /// the CLI).
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace vcdryad

#endif // VCDRYAD_SUPPORT_DIAGNOSTICS_H
