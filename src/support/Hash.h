//===- Hash.h - Stable content hashing --------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small FNV-1a based content hasher used to build stable,
/// process-independent keys (the proof cache keys obligations by the
/// hash of their passified guard/goal pair plus the solver options).
/// Unlike std::hash, the digest is specified and identical across runs
/// and platforms, so it is safe to persist.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SUPPORT_HASH_H
#define VCDRYAD_SUPPORT_HASH_H

#include <cstdint>
#include <string>
#include <string_view>

namespace vcdryad {

/// Incremental 64-bit FNV-1a hasher.
class Fnv1a {
public:
  static constexpr uint64_t Offset = 0xcbf29ce484222325ull;
  static constexpr uint64_t Prime = 0x100000001b3ull;

  Fnv1a() = default;
  explicit Fnv1a(uint64_t Seed) : State(Seed) {}

  Fnv1a &byte(uint8_t B) {
    State = (State ^ B) * Prime;
    return *this;
  }

  Fnv1a &bytes(const void *Data, size_t N) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I != N; ++I)
      byte(P[I]);
    return *this;
  }

  Fnv1a &str(std::string_view S) {
    bytes(S.data(), S.size());
    // Length-terminate so ("ab","c") and ("a","bc") differ.
    return byte(0xff);
  }

  /// Hashes the value little-endian, fixed width (stable across hosts).
  Fnv1a &u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      byte(static_cast<uint8_t>(V >> (8 * I)));
    return *this;
  }

  Fnv1a &i64(int64_t V) { return u64(static_cast<uint64_t>(V)); }

  uint64_t digest() const { return State; }

private:
  uint64_t State = Offset;
};

/// Renders a digest as 16 lowercase hex digits.
std::string hashToHex(uint64_t Digest);

/// Parses 16 hex digits back into a digest; false on malformed input.
bool hashFromHex(std::string_view Hex, uint64_t &Digest);

} // namespace vcdryad

#endif // VCDRYAD_SUPPORT_HASH_H
