//===- Hash.cpp - Stable content hashing -----------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"

using namespace vcdryad;

std::string vcdryad::hashToHex(uint64_t Digest) {
  static const char *Digits = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[I] = Digits[Digest & 0xf];
    Digest >>= 4;
  }
  return Out;
}

bool vcdryad::hashFromHex(std::string_view Hex, uint64_t &Digest) {
  if (Hex.size() != 16)
    return false;
  uint64_t V = 0;
  for (char C : Hex) {
    V <<= 4;
    if (C >= '0' && C <= '9')
      V |= static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      V |= static_cast<uint64_t>(C - 'a' + 10);
    else
      return false;
  }
  Digest = V;
  return true;
}
