//===- SourceLoc.h - Source locations for diagnostics -----------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column source locations used by the frontend, the
/// spec parser and the diagnostic engine.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SUPPORT_SOURCELOC_H
#define VCDRYAD_SUPPORT_SOURCELOC_H

#include <string>

namespace vcdryad {

/// A position in a source buffer. Line and column are 1-based; a
/// default-constructed location is "unknown" (line 0).
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  SourceLoc() = default;
  SourceLoc(int Line, int Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line > 0; }

  bool operator==(const SourceLoc &RHS) const = default;

  /// Renders as "line:col", or "<unknown>" for the invalid location.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace vcdryad

#endif // VCDRYAD_SUPPORT_SOURCELOC_H
