//===- StringUtil.cpp - Small string helpers ------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <climits>
#include <fstream>
#include <sstream>

using namespace vcdryad;

std::string vcdryad::join(const std::vector<std::string> &Parts,
                          std::string_view Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string_view vcdryad::trim(std::string_view S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string_view::npos)
    return {};
  size_t E = S.find_last_not_of(" \t\r\n");
  return S.substr(B, E - B + 1);
}

bool vcdryad::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::optional<unsigned long> vcdryad::parseUnsigned(std::string_view S) {
  if (S.empty())
    return std::nullopt;
  unsigned long V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    unsigned Digit = static_cast<unsigned>(C - '0');
    if (V > (ULONG_MAX - Digit) / 10)
      return std::nullopt; // Overflow.
    V = V * 10 + Digit;
  }
  return V;
}

std::optional<std::string> vcdryad::readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}
