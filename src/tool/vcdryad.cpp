//===- vcdryad.cpp - Command-line verifier ----------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `vcdryad` CLI: verifies C files against DRYAD specifications
/// using natural proofs. Also exposes the intermediate artifacts
/// (instrumented source, VIR, VCs) for debugging failed proofs, in the
/// spirit of Section 4.4.
///
//===----------------------------------------------------------------------===//

#include "cfront/Normalize.h"
#include "cfront/Parser.h"
#include "daemon/Client.h"
#include "daemon/Daemon.h"
#include "instr/Instrument.h"
#include "service/Journal.h"
#include "service/Service.h"
#include "service/SolverPool.h"
#include "smt/Portfolio.h"
#include "smt/Worker.h"
#include "support/StringUtil.h"
#include "verifier/Verifier.h"
#include "vir/Passify.h"
#include "vir/WpGen.h"
#include "wire/CacheServer.h"
#include "wire/RemoteCache.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace vcdryad;

namespace {

void printUsage() {
  std::puts(
      "usage: vcdryad [options] <file.c>...\n"
      "       vcdryad batch [options] <dir|manifest|file.c>...\n"
      "       vcdryad check [options] <dir|manifest|file.c>...\n"
      "       vcdryad serve [options] [--watch=<path>...]\n"
      "       vcdryad client [options] <verify|status|cache-stats|"
      "shutdown|\n"
      "                      watch-add|watch-rm|watch-status|events> "
      "[paths...]\n"
      "       vcdryad cached [options] [stats|shutdown]\n"
      "       vcdryad solve-worker [--mem-mb=<n>] [--cpu-s=<n>]\n"
      "\n"
      "Verifies C programs against DRYAD separation-logic specifications\n"
      "using natural proofs (Pek, Qiu, Madhusudan; PLDI 2014).\n"
      "\n"
      "batch mode schedules a whole corpus through the parallel\n"
      "verification service and emits a machine-readable JSON report:\n"
      "directories are walked recursively for .c files; any other\n"
      "operand is a manifest (one path per line, '#' comments).\n"
      "\n"
      "check mode is batch with --incremental on by default: functions\n"
      "whose stable fingerprint matches a previously all-Valid run are\n"
      "discharged from the manifest without touching the solver.\n"
      "\n"
      "serve mode starts a resident daemon on a Unix-domain socket\n"
      "(default <cache-dir>/serve.sock): the proof cache, manifest and\n"
      "parsed plans stay warm across requests, the fast pass shares\n"
      "one Z3 session per file, and scheduling is cache-aware.\n"
      "client sends one request (newline-delimited JSON; see the\n"
      "README) and prints the response; `client verify <paths...>`\n"
      "returns the same JSON report and exit status as check. batch\n"
      "and check accept --serve-socket=<path> to route the run through\n"
      "a daemon instead of verifying in-process.\n"
      "\n"
      "watch mode (Linux) re-verifies on save: `serve --watch=<path>`\n"
      "or `client watch-add <files...>` registers .c files plus their\n"
      "#include closures with inotify; edits are debounced (editor\n"
      "save dances collapse to one run), re-verified off the event\n"
      "thread, and the outcomes land in a bounded ring that `client\n"
      "events --since=<seq>` polls. `watch-status` reports the\n"
      "registry; `watch-rm` unregisters.\n"
      "\n"
      "cached mode starts a shared proof-cache server: N journaled\n"
      "shard stores keyed by the leading bits of each VC hash, spoken\n"
      "to over a compact binary protocol (TCP and/or Unix socket).\n"
      "batch, check and serve attach it as an L3 tier with\n"
      "--remote-cache=, so a proof found by one client is a cache hit\n"
      "for every other. Strictly best-effort: a dead or slow server\n"
      "never changes verdicts. `cached stats` / `cached shutdown`\n"
      "query or stop a running server.\n"
      "\n"
      "options:\n"
      "  --only=<fn>          verify a single function\n"
      "  --timeout=<ms>       per-VC solver timeout (default 60000;\n"
      "                       0 = unlimited)\n"
      "  --fast-timeout=<ms>  budget of the fast incremental pass;\n"
      "                       unsettled VCs escalate to --timeout\n"
      "                       unsliced (default 5000; 0 disables the\n"
      "                       ladder)\n"
      "  --portfolio=<n>      race escalated VCs through the first n\n"
      "                       built-in tactic profiles; the first\n"
      "                       decisive lane wins and cancels the rest\n"
      "                       (default 1: single-strategy escalation)\n"
      "  --portfolio-profiles=<a,b,...>\n"
      "                       explicit profile lanes for the portfolio\n"
      "                       (implies its width); see --list-profiles\n"
      "  --list-profiles      print the built-in tactic profiles\n"
      "  --no-preprocess      skip VC simplification (and slicing)\n"
      "  --no-slice           keep full guards in the fast pass\n"
      "  --keep-going         report all failing VCs, not just the first\n"
      "  --check-vacuity      flag functions whose ghost assumptions\n"
      "                       are unsatisfiable (vacuous proofs)\n"
      "  --no-unfold          disable footprint unfolding (ablation A)\n"
      "  --no-preserve        disable frame preservation (ablation B)\n"
      "  --axioms=<mode>      footprint | quantified | off\n"
      "  --no-memsafety       skip null/ownership checks\n"
      "  --stats              print manual vs ghost annotation counts\n"
      "  --dump-instrumented  print the program after ghost synthesis\n"
      "  --dump-vir           print the verification IR\n"
      "  --dump-vcs           print the generated proof obligations\n"
      "\n"
      "batch options:\n"
      "  --jobs=<n>           worker threads; 0 (the default) means\n"
      "                       hardware concurrency\n"
      "  --cache=<dir>|off    proof-cache directory; 'off' disables the\n"
      "                       cache. Relative paths (including the\n"
      "                       default '.vcdryad-cache') anchor at the\n"
      "                       first operand's directory, not the CWD,\n"
      "                       so the same corpus always finds the same\n"
      "                       cache; $VCDRYAD_CACHE_DIR pins a location\n"
      "                       when --cache= is not given\n"
      "  --incremental        skip functions unchanged since a recorded\n"
      "                       all-Valid run (manifest-v1.txt beside the\n"
      "                       proof cache; requires the cache, ignored\n"
      "                       under --axioms=quantified). Default in\n"
      "                       check mode\n"
      "  --no-incremental     force full re-verification in check mode\n"
      "  --changed-only       omit skipped-unchanged functions from the\n"
      "                       per-file JSON listings (totals still\n"
      "                       count them)\n"
      "  --out=<file>         write the JSON report here ('-' or\n"
      "                       default: stdout)\n"
      "  --json-times=off     omit timing fields (byte-reproducible "
      "output)\n"
      "  --no-cache-aware     dispatch in source order instead of\n"
      "                       most-cached-first\n"
      "  --share-prelude      one scoped Z3 session per file in the\n"
      "                       fast pass (daemon default; --no-share-\n"
      "                       prelude turns it off there)\n"
      "  --serve-socket=<p>   route this batch through the daemon at\n"
      "                       <p> instead of verifying in-process\n"
      "  --remote-cache=<a>   attach the proof-cache server at <a>\n"
      "                       (host:port or unix:/path) as the L3 tier\n"
      "                       behind the local cache; misses are\n"
      "                       prefetched in batches before dispatch and\n"
      "                       new Valid proofs are pushed write-behind\n"
      "  --remote-timeout-ms=<n>\n"
      "                       per-request remote deadline (default\n"
      "                       2000); timeouts degrade to local-only\n"
      "  --no-fsync           skip the per-transaction fdatasync in the\n"
      "                       journals (also $VCDRYAD_NO_FSYNC=1);\n"
      "                       consistency is unaffected, durability\n"
      "                       degrades to OS writeback\n"
      "  --isolate-solvers    run every solver in a supervised\n"
      "                       out-of-process worker (vcdryad\n"
      "                       solve-worker): a crash, OOM or hang costs\n"
      "                       one obligation (retried once in a fresh\n"
      "                       worker), never the batch. Default off\n"
      "                       here, on in serve mode\n"
      "                       (--no-isolate-solvers turns it off)\n"
      "  --solver-mem-mb=<n>  RLIMIT_AS per worker in MiB (0 =\n"
      "                       unlimited; values below ~256 starve Z3)\n"
      "  --solver-cpu-s=<n>   RLIMIT_CPU per worker in seconds (0 =\n"
      "                       unlimited)\n"
      "\n"
      "serve/client options:\n"
      "  --socket=<path>      the daemon's socket (default:\n"
      "                       <resolved cache dir>/serve.sock, both\n"
      "                       sides, so a client invoked beside the\n"
      "                       corpus finds the daemon started there)\n"
      "  --max-request-mb=<n> reject client requests larger than this\n"
      "                       (serve; default 4)\n"
      "  --watch=<path>       watch these .c files (dirs/manifests\n"
      "                       expand like batch operands) from startup;\n"
      "                       repeatable (serve, Linux)\n"
      "  --watch-debounce-ms=<n>\n"
      "                       quiet window before a save dispatches its\n"
      "                       re-verify (serve; default 100)\n"
      "  --since=<seq>        only events newer than this cursor\n"
      "                       (client events; default 0 = all retained)\n"
      "\n"
      "cached options:\n"
      "  --cache=<dir>        shard-store root (resolved like batch;\n"
      "                       required)\n"
      "  --shards=<n>         shard stores (default 8)\n"
      "  --port=<n>           TCP listener port (0 = ephemeral; the\n"
      "                       bound address is printed on stdout)\n"
      "  --host=<h>           TCP bind address (default 127.0.0.1)\n"
      "  --socket=<path>      Unix-socket listener (default\n"
      "                       <store root>/cached.sock when no --port=)\n"
      "\n"
      "SIGINT/SIGTERM interrupt batch, check and serve gracefully:\n"
      "in-flight solves finish, unsolved obligations report\n"
      "\"cancelled\", stores flush (every recorded result is already\n"
      "journal-durable), and the report carries \"interrupted\": "
      "true.\n");
}

struct CliOptions {
  verifier::VerifyOptions Verify;
  std::vector<std::string> Files;
  bool Stats = false;
  bool DumpInstrumented = false;
  bool DumpVir = false;
  bool DumpVcs = false;
  // Batch mode (`vcdryad batch ...` / `vcdryad check ...`).
  bool Batch = false;
  unsigned Jobs = 0; ///< 0: hardware concurrency (explicitly allowed).
  std::string CacheDir = ".vcdryad-cache";
  bool CacheExplicit = false; ///< The user passed --cache=.
  bool Incremental = false;   ///< Default true in check and serve mode.
  bool ChangedOnly = false;   ///< Omit skipped functions from the JSON.
  std::string OutPath;        ///< Empty or "-": stdout.
  bool JsonTimes = true;
  bool CacheAware = true;    ///< Most-cached-first dispatch order.
  bool SharePrelude = false; ///< Scoped per-file fast-pass sessions.
  // Daemon modes (`vcdryad serve` / `vcdryad client`) and routing.
  bool Serve = false;
  bool Client = false;
  std::string Socket;      ///< serve/client/cached --socket=.
  std::string ServeSocket; ///< batch/check --serve-socket= routing.
  // Remote proof-cache tier and the `vcdryad cached` server.
  bool Cached = false;         ///< `vcdryad cached` subcommand.
  std::string RemoteAddress;   ///< --remote-cache= (L3 tier).
  unsigned RemoteTimeoutMs = 0; ///< --remote-timeout-ms= (0: default).
  bool NoFsync = false;         ///< --no-fsync journal durability trade.
  std::string Host = "127.0.0.1"; ///< cached --host=.
  int Port = -1;                  ///< cached --port= (-1: no TCP).
  unsigned Shards = 8;            ///< cached --shards=.
  // Crash isolation (service/SolverPool). serve defaults it on.
  bool IsolateSolvers = false;
  unsigned SolverMemMb = 0;   ///< --solver-mem-mb= (RLIMIT_AS, MiB).
  unsigned SolverCpuS = 0;    ///< --solver-cpu-s= (RLIMIT_CPU, s).
  unsigned MaxRequestMb = 4;  ///< serve --max-request-mb=.
  // Watch mode (`serve --watch=...`, `client watch-*`/`events`).
  std::vector<std::string> WatchPaths; ///< serve --watch= (repeatable).
  unsigned WatchDebounceMs = 100;      ///< serve --watch-debounce-ms=.
  unsigned Since = 0;                  ///< client events --since=.
};

/// Parses `--<flag>=<n>`; false (with a usage error printed) unless
/// the value is a well-formed unsigned that fits \p Out. Bare
/// std::stoul would throw an uncaught exception on `--timeout=abc`.
bool parseUnsignedFlag(const std::string &Flag, const std::string &Value,
                       unsigned &Out) {
  std::optional<unsigned long> V = parseUnsigned(Value);
  if (!V || *V > 0xfffffffful) {
    std::fprintf(stderr,
                 "error: invalid value '%s' for %s= (expected an "
                 "unsigned integer)\n",
                 Value.c_str(), Flag.c_str());
    return false;
  }
  Out = static_cast<unsigned>(*V);
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Cli) {
  int First = 1;
  if (Argc > 1 && std::strcmp(Argv[1], "batch") == 0) {
    Cli.Batch = true;
    First = 2;
  } else if (Argc > 1 && std::strcmp(Argv[1], "check") == 0) {
    // batch with incremental re-verification on by default.
    Cli.Batch = true;
    Cli.Incremental = true;
    First = 2;
  } else if (Argc > 1 && std::strcmp(Argv[1], "serve") == 0) {
    // The resident daemon: warm-path options default on. Crash
    // isolation too — a daemon exists to survive its workload, so a
    // solver crash must cost one obligation, not the resident stores.
    Cli.Serve = true;
    Cli.Incremental = true;
    Cli.SharePrelude = true;
    Cli.IsolateSolvers = true;
    First = 2;
  } else if (Argc > 1 && std::strcmp(Argv[1], "client") == 0) {
    Cli.Client = true;
    First = 2;
  } else if (Argc > 1 && std::strcmp(Argv[1], "cached") == 0) {
    // The shared proof-cache server (or its stats/shutdown client).
    Cli.Cached = true;
    First = 2;
  }
  for (int I = First; I < Argc; ++I) {
    std::string A = Argv[I];
    auto StartsWith = [&](const char *P) {
      return A.rfind(P, 0) == 0;
    };
    if (A == "--help" || A == "-h")
      return false;
    if (StartsWith("--only=")) {
      Cli.Verify.OnlyFunction = A.substr(7);
    } else if (StartsWith("--timeout=")) {
      if (!parseUnsignedFlag("--timeout", A.substr(10),
                             Cli.Verify.TimeoutMs))
        return false;
    } else if (StartsWith("--fast-timeout=")) {
      if (!parseUnsignedFlag("--fast-timeout", A.substr(15),
                             Cli.Verify.FastTimeoutMs))
        return false;
    } else if (A == "--no-preprocess") {
      // Without simplification there is no slicing either: Sliced
      // cone computation assumes simplified, flattened conjuncts.
      Cli.Verify.Preprocess = false;
      Cli.Verify.Slice = false;
    } else if (A == "--no-slice") {
      Cli.Verify.Slice = false;
    } else if (StartsWith("--portfolio=")) {
      if (!parseUnsignedFlag("--portfolio", A.substr(12),
                             Cli.Verify.Portfolio))
        return false;
      if (Cli.Verify.Portfolio == 0) {
        // Unlike --jobs=0 (hardware concurrency), a zero-lane
        // portfolio has no sensible reading: reject it instead of
        // silently behaving like --portfolio=1.
        std::fprintf(stderr, "error: --portfolio expects a width >= 1 "
                             "(1 keeps the single-strategy "
                             "escalation)\n");
        return false;
      }
    } else if (StartsWith("--portfolio-profiles=")) {
      Cli.Verify.PortfolioProfiles.clear();
      std::string Rest = A.substr(21);
      for (size_t Pos = 0; Pos <= Rest.size();) {
        size_t Comma = Rest.find(',', Pos);
        size_t End = Comma == std::string::npos ? Rest.size() : Comma;
        std::string_view Part =
            trim(std::string_view(Rest).substr(Pos, End - Pos));
        if (!Part.empty())
          Cli.Verify.PortfolioProfiles.emplace_back(Part);
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
      for (const std::string &Name : Cli.Verify.PortfolioProfiles)
        if (!smt::findProfile(Name)) {
          std::string Known;
          for (const smt::TacticProfile &P : smt::builtinProfiles())
            Known += " " + P.Name;
          std::fprintf(stderr,
                       "error: unknown tactic profile '%s' "
                       "(known:%s)\n",
                       Name.c_str(), Known.c_str());
          return false;
        }
    } else if (A == "--list-profiles") {
      for (const smt::TacticProfile &P : smt::builtinProfiles()) {
        std::string Params;
        for (const auto &[K, V] : P.Params)
          Params += (Params.empty() ? "" : " ") + K + "=" + V;
        std::printf("%-16s %s\n", P.Name.c_str(),
                    Params.empty() ? "(stock strategy)" : Params.c_str());
      }
      std::exit(0);
    } else if (StartsWith("--jobs=")) {
      if (!parseUnsignedFlag("--jobs", A.substr(7), Cli.Jobs))
        return false;
    } else if (StartsWith("--cache=")) {
      std::string Dir = A.substr(8);
      Cli.CacheDir = (Dir == "off") ? "" : Dir;
      Cli.CacheExplicit = true;
    } else if (A == "--incremental") {
      Cli.Incremental = true;
    } else if (A == "--no-incremental") {
      Cli.Incremental = false;
    } else if (A == "--changed-only") {
      Cli.ChangedOnly = true;
    } else if (StartsWith("--out=")) {
      Cli.OutPath = A.substr(6);
    } else if (A == "--cache-aware") {
      Cli.CacheAware = true;
    } else if (A == "--no-cache-aware") {
      Cli.CacheAware = false;
    } else if (A == "--share-prelude") {
      Cli.SharePrelude = true;
    } else if (A == "--no-share-prelude") {
      Cli.SharePrelude = false;
    } else if (StartsWith("--socket=")) {
      Cli.Socket = A.substr(9);
    } else if (StartsWith("--watch=")) {
      Cli.WatchPaths.push_back(A.substr(8));
    } else if (StartsWith("--watch-debounce-ms=")) {
      if (!parseUnsignedFlag("--watch-debounce-ms", A.substr(20),
                             Cli.WatchDebounceMs))
        return false;
    } else if (StartsWith("--since=")) {
      if (!parseUnsignedFlag("--since", A.substr(8), Cli.Since))
        return false;
    } else if (StartsWith("--serve-socket=")) {
      Cli.ServeSocket = A.substr(15);
    } else if (StartsWith("--remote-cache=")) {
      Cli.RemoteAddress = A.substr(15);
    } else if (StartsWith("--remote-timeout-ms=")) {
      if (!parseUnsignedFlag("--remote-timeout-ms", A.substr(20),
                             Cli.RemoteTimeoutMs))
        return false;
    } else if (A == "--no-fsync") {
      Cli.NoFsync = true;
    } else if (A == "--isolate-solvers") {
      Cli.IsolateSolvers = true;
    } else if (A == "--no-isolate-solvers") {
      Cli.IsolateSolvers = false;
    } else if (StartsWith("--solver-mem-mb=")) {
      if (!parseUnsignedFlag("--solver-mem-mb", A.substr(16),
                             Cli.SolverMemMb))
        return false;
    } else if (StartsWith("--solver-cpu-s=")) {
      if (!parseUnsignedFlag("--solver-cpu-s", A.substr(15),
                             Cli.SolverCpuS))
        return false;
    } else if (StartsWith("--max-request-mb=")) {
      if (!parseUnsignedFlag("--max-request-mb", A.substr(17),
                             Cli.MaxRequestMb))
        return false;
      if (Cli.MaxRequestMb == 0) {
        std::fprintf(stderr,
                     "error: --max-request-mb expects a cap >= 1\n");
        return false;
      }
    } else if (StartsWith("--host=")) {
      Cli.Host = A.substr(7);
    } else if (StartsWith("--port=")) {
      unsigned P = 0;
      if (!parseUnsignedFlag("--port", A.substr(7), P))
        return false;
      if (P > 65535) {
        std::fprintf(stderr, "error: --port expects 0..65535, got %u\n",
                     P);
        return false;
      }
      Cli.Port = static_cast<int>(P);
    } else if (StartsWith("--shards=")) {
      if (!parseUnsignedFlag("--shards", A.substr(9), Cli.Shards))
        return false;
      if (Cli.Shards == 0 || Cli.Shards > 256) {
        // A shard is selected by the leading byte of the VC hash, so
        // widths past 256 cannot spread load any further.
        std::fprintf(stderr,
                     "error: --shards expects 1..256, got %u\n",
                     Cli.Shards);
        return false;
      }
    } else if (StartsWith("--json-times=")) {
      std::string M = A.substr(13);
      if (M == "off")
        Cli.JsonTimes = false;
      else if (M == "on")
        Cli.JsonTimes = true;
      else {
        std::fprintf(stderr, "error: --json-times expects on|off, got "
                             "'%s'\n",
                     M.c_str());
        return false;
      }
    } else if (A == "--keep-going") {
      Cli.Verify.StopAtFirstFailure = false;
    } else if (A == "--check-vacuity") {
      Cli.Verify.CheckVacuity = true;
    } else if (A == "--no-unfold") {
      Cli.Verify.Instr.Unfold = false;
    } else if (A == "--no-preserve") {
      Cli.Verify.Instr.Preservation = false;
    } else if (StartsWith("--axioms=")) {
      std::string M = A.substr(9);
      using AM = instr::InstrOptions::AxiomMode;
      if (M == "footprint")
        Cli.Verify.Instr.Axioms = AM::Footprint;
      else if (M == "quantified")
        Cli.Verify.Instr.Axioms = AM::Quantified;
      else if (M == "off")
        Cli.Verify.Instr.Axioms = AM::Off;
      else {
        std::fprintf(stderr, "error: unknown axiom mode '%s'\n",
                     M.c_str());
        return false;
      }
    } else if (A == "--no-memsafety") {
      Cli.Verify.Translate.CheckMemorySafety = false;
    } else if (A == "--stats") {
      Cli.Stats = true;
    } else if (A == "--dump-instrumented") {
      Cli.DumpInstrumented = true;
    } else if (A == "--dump-vir") {
      Cli.DumpVir = true;
    } else if (A == "--dump-vcs") {
      Cli.DumpVcs = true;
    } else if (StartsWith("--")) {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      return false;
    } else {
      Cli.Files.push_back(A);
    }
  }
  if (Cli.Serve)
    return Cli.Files.empty(); // serve takes no operands.
  if (Cli.Client)
    return !Cli.Files.empty(); // client needs at least the op.
  if (Cli.Cached)
    return Cli.Files.size() <= 1; // optional stats|shutdown verb.
  return !Cli.Files.empty();
}

int runDumps(const CliOptions &Cli, const std::string &Path) {
  DiagnosticEngine Diag;
  auto Prog = cfront::parseFile(Path, Diag);
  if (!Prog || Diag.hasErrors()) {
    std::fprintf(stderr, "%s", Diag.str().c_str());
    return 1;
  }
  cfront::normalizeProgram(*Prog, Diag);
  instr::instrumentProgram(*Prog, Cli.Verify.Instr, Diag);
  if (Diag.hasErrors()) {
    std::fprintf(stderr, "%s", Diag.str().c_str());
    return 1;
  }
  for (const auto &F : Prog->Funcs) {
    if (!F->Body)
      continue;
    if (!Cli.Verify.OnlyFunction.empty() &&
        F->Name != Cli.Verify.OnlyFunction)
      continue;
    if (Cli.DumpInstrumented)
      std::printf("%s\n", F->str().c_str());
    if (Cli.DumpVir || Cli.DumpVcs) {
      vir::Procedure Proc =
          verifier::translateFunction(*F, *Prog, Cli.Verify.Translate,
                                      Diag);
      if (Cli.DumpVir)
        std::printf("%s\n", Proc.str().c_str());
      if (Cli.DumpVcs) {
        vir::Procedure Passive = vir::passify(Proc);
        for (const vir::VC &VC : vir::generateVCs(Passive))
          std::printf("VC [%s] at %s:\n  guard: %s\n  goal:  %s\n",
                      VC.Reason.c_str(), VC.Loc.str().c_str(),
                      VC.Guard->str().c_str(), VC.Cond->str().c_str());
      }
    }
  }
  return 0;
}

extern "C" void onShutdownSignal(int) { service::requestShutdown(); }

/// SIGINT/SIGTERM raise the cooperative shutdown flag. No SA_RESTART:
/// the daemon's blocking accept() must wake with EINTR to observe it.
void installShutdownHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onShutdownSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
}

/// Writes \p Body to --out: a path, or stdout for "" and "-".
bool writeReport(const std::string &OutPath, const std::string &Body) {
  if (OutPath.empty() || OutPath == "-") {
    std::fputs(Body.c_str(), stdout);
    return true;
  }
  std::ofstream Out(OutPath, std::ios::binary);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return false;
  }
  Out << Body;
  return true;
}

/// Operands sent to a daemon must survive the cwd difference between
/// the two processes; nonexistent paths pass through untouched so the
/// daemon reports the usual "no such file" error.
std::string absolutize(const std::string &Path) {
  std::error_code EC;
  std::filesystem::path Abs = std::filesystem::absolute(Path, EC);
  if (EC)
    return Path;
  return Abs.lexically_normal().string();
}

/// Both sides' default socket: beside the resolved cache directory,
/// so a client invoked next to the corpus finds the daemon that was
/// started there without either passing --socket=.
std::string defaultSocket(const CliOptions &Cli,
                          const std::vector<std::string> &Operands) {
  std::string CacheDir = service::resolveCacheDir(
      Cli.CacheDir, Cli.CacheExplicit, Operands);
  if (CacheDir.empty())
    return {};
  return CacheDir + "/serve.sock";
}

/// Sends one request and renders the response. Exit status: verify
/// follows the report's all_verified (0/1); control ops return 0; any
/// transport or daemon-side error is 2.
int runClientRequest(const CliOptions &Cli, const std::string &Socket,
                     const daemon::Request &R) {
  std::string Response, Error;
  if (!daemon::sendRequest(Socket, daemon::buildRequest(R), Response,
                           Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  if (Response.rfind("{\"ok\": false", 0) == 0) {
    std::fputs(Response.c_str(), stderr);
    return 2;
  }
  if (!writeReport(Cli.OutPath, Response))
    return 2;
  if (R.Op == "verify")
    return Response.find("\"all_verified\": true") != std::string::npos
               ? 0
               : 1;
  return 0;
}

/// `vcdryad batch`: expand operands, run the parallel verification
/// service, emit the JSON report. Exit status: 0 all verified, 1 any
/// failure or frontend error, 2 usage/IO problems, 130 interrupted.
/// With --serve-socket= the operands go to the daemon instead and the
/// response is rendered identically.
int runBatch(const CliOptions &Cli) {
  if (!Cli.ServeSocket.empty()) {
    // The daemon owns the cache stack; attaching a second remote tier
    // client-side would double every get/put. Route the request and
    // let the daemon's --remote-cache= (if any) apply exactly once.
    if (!Cli.RemoteAddress.empty())
      std::fprintf(stderr,
                   "note: --serve-socket= routes through the daemon; "
                   "its remote tier applies, the client-side "
                   "--remote-cache= is ignored\n");
    daemon::Request R;
    R.Op = "verify";
    for (const std::string &F : Cli.Files)
      R.Paths.push_back(absolutize(F));
    R.ChangedOnly = Cli.ChangedOnly;
    R.JsonTimes = Cli.JsonTimes;
    return runClientRequest(Cli, Cli.ServeSocket, R);
  }

  std::string Error;
  std::vector<std::string> Inputs =
      service::collectBatchInputs(Cli.Files, Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  if (Inputs.empty()) {
    std::fprintf(stderr, "error: batch operands contain no .c files\n");
    return 2;
  }

  service::ServiceOptions SOpts;
  SOpts.Verify = Cli.Verify;
  SOpts.Jobs = Cli.Jobs;
  // Anchor relative cache paths at the corpus, not the CWD: the same
  // operands must hit the same cache wherever the tool is invoked.
  SOpts.CacheDir =
      service::resolveCacheDir(Cli.CacheDir, Cli.CacheExplicit, Cli.Files);
  SOpts.Incremental = Cli.Incremental;
  SOpts.CacheAware = Cli.CacheAware;
  SOpts.SharePrelude = Cli.SharePrelude;
  SOpts.RemoteAddress = Cli.RemoteAddress;
  SOpts.RemoteTimeoutMs = Cli.RemoteTimeoutMs;
  SOpts.IsolateSolvers = Cli.IsolateSolvers;
  SOpts.SolverMemMb = Cli.SolverMemMb;
  SOpts.SolverCpuS = Cli.SolverCpuS;
  if (Cli.NoFsync)
    service::Journal::setNoFsync(true);
  installShutdownHandlers();
  service::VerificationService Service(SOpts);
  service::BatchReport Rep = Service.run(Inputs);

  std::string Json = service::toJson(Rep, Cli.JsonTimes, Cli.ChangedOnly);
  if (!writeReport(Cli.OutPath, Json))
    return 2;
  if (Rep.Interrupted)
    return 130; // Conventional fatal-SIGINT status; stores are flushed.
  return Rep.AllVerified ? 0 : 1;
}

/// `vcdryad serve`: the resident daemon (see daemon/Daemon.h).
int runServe(const CliOptions &Cli) {
  service::ServiceOptions SOpts;
  SOpts.Verify = Cli.Verify;
  SOpts.Jobs = Cli.Jobs;
  SOpts.CacheDir = service::resolveCacheDir(Cli.CacheDir,
                                            Cli.CacheExplicit, {});
  SOpts.Incremental = Cli.Incremental;
  SOpts.CacheAware = Cli.CacheAware;
  SOpts.SharePrelude = Cli.SharePrelude;
  SOpts.ResidentPlans = true;
  SOpts.RemoteAddress = Cli.RemoteAddress;
  SOpts.RemoteTimeoutMs = Cli.RemoteTimeoutMs;
  SOpts.IsolateSolvers = Cli.IsolateSolvers;
  SOpts.SolverMemMb = Cli.SolverMemMb;
  SOpts.SolverCpuS = Cli.SolverCpuS;
  if (Cli.NoFsync)
    service::Journal::setNoFsync(true);

  std::string Socket = Cli.Socket;
  if (Socket.empty()) {
    if (SOpts.CacheDir.empty()) {
      std::fprintf(stderr, "error: serve needs --socket= when the cache "
                           "is disabled (--cache=off)\n");
      return 2;
    }
    Socket = SOpts.CacheDir + "/serve.sock";
  }

  daemon::DaemonOptions DOpts;
  DOpts.SocketPath = Socket;
  DOpts.MaxRequestBytes = static_cast<size_t>(Cli.MaxRequestMb) << 20;
  DOpts.DebounceMs = Cli.WatchDebounceMs;
  // --watch= operands expand like batch operands (dirs, manifests, .c
  // files) to the .c set the daemon registers once the loop is up.
  if (!Cli.WatchPaths.empty()) {
    std::vector<std::string> Abs;
    for (const std::string &P : Cli.WatchPaths)
      Abs.push_back(absolutize(P));
    std::string WatchError;
    DOpts.WatchPaths = service::collectBatchInputs(Abs, WatchError);
    if (!WatchError.empty()) {
      std::fprintf(stderr, "error: --watch: %s\n", WatchError.c_str());
      return 2;
    }
    if (DOpts.WatchPaths.empty()) {
      std::fprintf(stderr,
                   "error: --watch operands contain no .c files\n");
      return 2;
    }
  }
  DOpts.Service = SOpts;
  daemon::Daemon D(DOpts); // Loads stores, replays journals.
  std::string Error;
  if (!D.bind(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  installShutdownHandlers();
  std::fprintf(stderr, "vcdryad serve: listening on %s (cache: %s)\n",
               D.socketPath().c_str(),
               SOpts.CacheDir.empty() ? "off" : SOpts.CacheDir.c_str());
  int Exit = D.serve();
  std::fprintf(stderr, "vcdryad serve: shut down\n");
  return Exit;
}

/// `vcdryad client <op> [paths...]`.
int runClient(const CliOptions &Cli) {
  daemon::Request R;
  R.Op = Cli.Files.front();
  if (R.Op != "verify" && R.Op != "status" && R.Op != "cache-stats" &&
      R.Op != "shutdown" && R.Op != "watch-add" && R.Op != "watch-rm" &&
      R.Op != "watch-status" && R.Op != "events") {
    std::fprintf(stderr,
                 "error: unknown client op '%s' (expected verify, "
                 "status, cache-stats, shutdown, watch-add, watch-rm, "
                 "watch-status or events)\n",
                 R.Op.c_str());
    return 2;
  }
  std::vector<std::string> Operands(Cli.Files.begin() + 1,
                                    Cli.Files.end());
  if ((R.Op == "verify" || R.Op == "watch-add" || R.Op == "watch-rm") &&
      Operands.empty()) {
    std::fprintf(stderr, "error: client %s needs operands\n",
                 R.Op.c_str());
    return 2;
  }
  for (const std::string &P : Operands)
    R.Paths.push_back(absolutize(P));
  R.ChangedOnly = Cli.ChangedOnly;
  R.JsonTimes = Cli.JsonTimes;
  R.Since = Cli.Since;

  std::string Socket = Cli.Socket;
  if (Socket.empty())
    Socket = defaultSocket(Cli, Operands);
  if (Socket.empty()) {
    std::fprintf(stderr, "error: client needs --socket= when the cache "
                         "is disabled (--cache=off)\n");
    return 2;
  }
  return runClientRequest(Cli, Socket, R);
}

/// The address `cached stats`/`cached shutdown` (and the printed
/// listen line) refer to, derived from the same flags the server
/// mode binds with so a control client started beside the server
/// needs no explicit address.
std::string cachedAddress(const CliOptions &Cli, const std::string &Dir) {
  if (!Cli.RemoteAddress.empty())
    return Cli.RemoteAddress;
  if (!Cli.Socket.empty())
    return "unix:" + Cli.Socket;
  if (Cli.Port > 0)
    return Cli.Host + ":" + std::to_string(Cli.Port);
  if (!Dir.empty())
    return "unix:" + Dir + "/cached.sock";
  return {};
}

/// `vcdryad cached [stats|shutdown]`: the shared proof-cache server,
/// or a control request against a running one. Exit status: 0 clean,
/// 2 on bind/transport/usage errors.
int runCached(const CliOptions &Cli) {
  std::string Dir =
      service::resolveCacheDir(Cli.CacheDir, Cli.CacheExplicit, {});

  if (!Cli.Files.empty()) {
    const std::string &Verb = Cli.Files.front();
    if (Verb != "stats" && Verb != "shutdown") {
      std::fprintf(stderr, "error: unknown cached op '%s' (expected "
                           "stats or shutdown)\n",
                   Verb.c_str());
      return 2;
    }
    std::string Address = cachedAddress(Cli, Dir);
    if (Address.empty()) {
      std::fprintf(stderr, "error: cached %s needs an address "
                           "(--remote-cache=, --socket= or --port=)\n",
                   Verb.c_str());
      return 2;
    }
    wire::RemoteClientOptions RC;
    RC.Address = Address;
    if (Cli.RemoteTimeoutMs)
      RC.TimeoutMs = Cli.RemoteTimeoutMs;
    RC.Retries = 0; // A control op should fail, not linger.
    wire::RemoteCache Client(std::move(RC));
    std::string Error;
    if (Verb == "shutdown") {
      if (!Client.shutdownServer(Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 2;
      }
      return 0;
    }
    wire::StatsResponse S;
    if (!Client.stats(S, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    std::string Json =
        "{\"ok\": true, \"address\": \"" + Address + "\"" +
        ", \"shards\": " + std::to_string(S.Shards) +
        ", \"entries\": " + std::to_string(S.Entries) +
        ", \"gets\": " + std::to_string(S.Gets) +
        ", \"get_hits\": " + std::to_string(S.GetHits) +
        ", \"get_misses\": " + std::to_string(S.GetMisses) +
        ", \"puts\": " + std::to_string(S.Puts) +
        ", \"put_accepted\": " + std::to_string(S.PutAccepted) +
        ", \"connections\": " + std::to_string(S.Connections) + "}\n";
    return writeReport(Cli.OutPath, Json) ? 0 : 2;
  }

  if (Dir.empty()) {
    std::fprintf(stderr,
                 "error: cached needs a store directory (--cache=)\n");
    return 2;
  }
  if (Cli.NoFsync)
    service::Journal::setNoFsync(true);

  wire::CacheServerOptions CO;
  CO.Dir = Dir;
  CO.Shards = Cli.Shards;
  CO.Host = Cli.Host;
  CO.Port = Cli.Port;
  CO.SocketPath = Cli.Socket;
  if (CO.Port < 0 && CO.SocketPath.empty())
    CO.SocketPath = Dir + "/cached.sock";

  wire::CacheServer Server(CO);
  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  installShutdownHandlers();
  // The listen line goes to stdout (and is flushed) so scripts that
  // bind an ephemeral --port=0 can scrape the real address.
  if (Server.port() != 0)
    std::printf("vcdryad cached: listening on %s:%u\n", CO.Host.c_str(),
                static_cast<unsigned>(Server.port()));
  if (!CO.SocketPath.empty())
    std::printf("vcdryad cached: listening on unix:%s\n",
                CO.SocketPath.c_str());
  std::printf("vcdryad cached: %u shards at %s\n", Server.shards(),
              Dir.c_str());
  std::fflush(stdout);
  int Exit = Server.serve();
  std::fprintf(stderr, "vcdryad cached: shut down\n");
  return Exit;
}

const char *statusName(smt::CheckStatus S) {
  switch (S) {
  case smt::CheckStatus::Valid:
    return "valid";
  case smt::CheckStatus::Invalid:
    return "INVALID";
  case smt::CheckStatus::Unknown:
    return "UNKNOWN";
  case smt::CheckStatus::Crashed:
    return "CRASHED";
  case smt::CheckStatus::ResourceLimit:
    return "RESOURCE-LIMIT";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  // The out-of-process solver helper reuses this binary (argv[0] is
  // typically /proc/self/exe of the supervising parent); dispatch
  // before any option parsing so its flag namespace stays private.
  if (Argc > 1 && std::strcmp(Argv[1], "solve-worker") == 0)
    return smt::runSolveWorker(
        std::vector<std::string>(Argv + 2, Argv + Argc));

  // A peer vanishing mid-write (daemon client gone, cache server
  // restarting, worker killed) must surface as EPIPE on that one
  // descriptor, never as process death.
  std::signal(SIGPIPE, SIG_IGN);

  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    printUsage();
    return 2;
  }
  if (Cli.Serve)
    return runServe(Cli);
  if (Cli.Client)
    return runClient(Cli);
  if (Cli.Cached)
    return runCached(Cli);
  if (Cli.Batch)
    return runBatch(Cli);

  // Single-file mode shares the isolation machinery: one pool for the
  // whole invocation, its factory copied into every solver the
  // verifier builds (sessions, escalations, portfolio lanes).
  std::unique_ptr<service::SolverPool> Pool;
  if (Cli.IsolateSolvers) {
    service::PoolOptions PO;
    PO.MemMb = Cli.SolverMemMb;
    PO.CpuS = Cli.SolverCpuS;
    Pool = std::make_unique<service::SolverPool>(std::move(PO));
    Cli.Verify.MakeSolver = Pool->factory();
  }

  int Exit = 0;
  for (const std::string &Path : Cli.Files) {
    if (Cli.DumpInstrumented || Cli.DumpVir || Cli.DumpVcs) {
      Exit |= runDumps(Cli, Path);
      continue;
    }
    verifier::Verifier V(Cli.Verify);
    verifier::ProgramResult R = V.verifyFile(Path);
    if (!R.Ok) {
      std::fprintf(stderr, "%s: frontend errors:\n%s", Path.c_str(),
                   R.Error.c_str());
      Exit = 1;
      continue;
    }
    for (const verifier::FunctionResult &F : R.Functions) {
      std::printf("%-40s %-8s %6.2fs  (%u VCs)\n", F.Name.c_str(),
                  F.Verified ? "VERIFIED" : "FAILED", F.TimeMs / 1000.0,
                  F.NumVCs);
      if (Cli.Stats)
        std::printf("    annotations: %u manual, %u ghost\n",
                    F.Annotations.Manual, F.Annotations.Ghost);
      for (const verifier::VCOutcome &O : F.Failures) {
        std::printf("    %s at %s: %s\n", statusName(O.Status),
                    O.Loc.str().c_str(), O.Reason.c_str());
        if (!O.Detail.empty())
          std::printf("      %s\n", O.Detail.substr(0, 400).c_str());
      }
    }
    if (!R.AllVerified)
      Exit = 1;
  }
  return Exit;
}
