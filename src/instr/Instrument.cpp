//===- Instrument.cpp - Natural-proof ghost-code synthesis -----------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "instr/Instrument.h"

#include "dryad/Translate.h"

#include <cassert>
#include <functional>

using namespace vcdryad;
using namespace vcdryad::instr;
using namespace vcdryad::cfront;
using dryad::FieldKey;
using dryad::RecDef;
using dryad::TranslateEnv;
using vir::LExprRef;
using vir::Sort;

namespace {

/// One entry of the (extended) footprint: a location-valued term with
/// its struct type. Deref entries are the memoized dereferenced
/// locations (FP); the rest joins only the extended footprint (EFP).
struct FpEntry {
  LExprRef Term;
  std::string StructName;
  bool Deref;
};

class Instrumenter {
public:
  Instrumenter(Program &Prog, const InstrOptions &Opts,
               DiagnosticEngine &Diag)
      : Prog(Prog), Opts(Opts), Diag(Diag),
        Tr(Prog.Defs, Prog.LogicStructs, Diag) {
    BaseEnv.CurArray = dryad::prefixedArrays();
  }

  void run(FuncDecl &F) {
    if (!F.Body)
      return;
    Fp.clear();
    IntVars.clear();
    GhostCounter = 0;
    for (const ParamDecl &P : F.Params)
      registerVar(P.Name, P.Ty);
    StmtRef NewBody = std::make_shared<Stmt>(StmtKind::Block);
    NewBody->Loc = F.Body->Loc;
    // Base facts at entry: unfold at nil and the parameters, and
    // instantiate the data-structure axioms.
    emitContextUnfolds(NewBody->Stmts, "entry");
    emitAxioms(NewBody->Stmts);
    for (const StmtRef &S : F.Body->Stmts)
      instrumentStmt(S, NewBody->Stmts);
    F.Body = NewBody;
  }

private:
  Program &Prog;
  const InstrOptions &Opts;
  DiagnosticEngine &Diag;
  dryad::Translator Tr;
  TranslateEnv BaseEnv;

  std::vector<FpEntry> Fp;
  std::vector<LExprRef> IntVars;
  unsigned GhostCounter = 0;

  //===--------------------------------------------------------------------===//
  // Small helpers
  //===--------------------------------------------------------------------===//

  static Sort sortOfType(const CType &Ty) {
    return Ty.isPtr() ? Sort::Loc : Sort::Int;
  }

  LExprRef atomToL(const Expr &E) const {
    switch (E.Kind) {
    case ExprKind::Var:
      return vir::mkVar(E.Name, sortOfType(E.Ty));
    case ExprKind::IntLit:
      return vir::mkInt(E.IntVal);
    case ExprKind::Null:
      return vir::mkNil();
    default:
      assert(false && "instrumenter expects a normalized atom");
      return vir::mkNil();
    }
  }

  static std::string structOf(const CType &Ty) {
    return Ty.isPtr() && Ty.Pointee ? Ty.Pointee->Name : "";
  }

  void registerVar(const std::string &Name, const CType &Ty) {
    if (Ty.isPtr() && Ty.Pointee)
      Fp.push_back({vir::mkVar(Name, Sort::Loc), Ty.Pointee->Name, false});
    else if (Ty.isInt())
      IntVars.push_back(vir::mkVar(Name, Sort::Int));
  }

  StmtRef ghostAssume(LExprRef Fact, std::string Comment) {
    auto S = std::make_shared<Stmt>(StmtKind::GhostAssume);
    S->Ghost = std::move(Fact);
    S->GhostComment = std::move(Comment);
    return S;
  }

  StmtRef ghostAssign(std::string Var, Sort VS, LExprRef Val,
                      std::string Comment) {
    auto S = std::make_shared<Stmt>(StmtKind::GhostAssign);
    S->GhostVar = std::move(Var);
    S->GhostSort = VS;
    S->Ghost = std::move(Val);
    S->GhostComment = std::move(Comment);
    return S;
  }

  LExprRef gVar() const { return vir::mkVar("$G", Sort::SetLoc); }

  /// Pertinent definitions for a struct type (defs(T) in Figure 5).
  std::vector<const RecDef *> defsFor(const std::string &StructName) {
    return Prog.Defs.defsForStruct(StructName);
  }

  /// Enumerates argument tuples for \p Def with \p First as the first
  /// argument; secondary Loc parameters range over the matching EFP
  /// entries plus nil, Int parameters over in-scope integer variables.
  void forEachArgTuple(const RecDef &Def, const LExprRef &First,
                       const std::function<void(std::vector<LExprRef>)> &Fn) {
    if (Def.Params.empty() || Def.Params[0].ParamSort != Sort::Loc)
      return;
    std::vector<std::vector<LExprRef>> Cands(Def.Params.size());
    Cands[0] = {First};
    for (size_t I = 1; I != Def.Params.size(); ++I) {
      const dryad::SpecParam &P = Def.Params[I];
      if (P.ParamSort == Sort::Loc) {
        Cands[I].push_back(vir::mkNil());
        for (const FpEntry &E : Fp)
          if (E.StructName == P.StructName)
            Cands[I].push_back(E.Term);
      } else {
        Cands[I] = IntVars;
      }
      if (Cands[I].empty())
        return; // No instantiation possible.
    }
    unsigned Budget = Opts.MaxTuplesPerSite;
    std::vector<LExprRef> Tuple(Def.Params.size());
    std::function<void(size_t)> Rec = [&](size_t I) {
      if (!Budget)
        return;
      if (I == Cands.size()) {
        --Budget;
        Fn(Tuple);
        return;
      }
      for (const LExprRef &C : Cands[I]) {
        Tuple[I] = C;
        Rec(I + 1);
        if (!Budget)
          return;
      }
    };
    Rec(0);
  }

  //===--------------------------------------------------------------------===//
  // Ghost fact families
  //===--------------------------------------------------------------------===//

  /// Unfolds every pertinent definition at \p L (of struct type \p SN).
  void emitUnfolds(const LExprRef &L, const std::string &SN,
                   std::vector<StmtRef> &Out, const char *Why) {
    if (!Opts.Unfold || SN.empty())
      return;
    for (const RecDef *Def : defsFor(SN)) {
      forEachArgTuple(*Def, L, [&](std::vector<LExprRef> Args) {
        Out.push_back(ghostAssume(Tr.unfoldDef(*Def, Args, BaseEnv),
                                  std::string("unfold ") + Def->Name +
                                      " (" + Why + ")"));
        Out.push_back(ghostAssume(Tr.unfoldHeaplet(*Def, Args, BaseEnv),
                                  std::string("unfold ") +
                                      Def->heapletSymbolName() + " (" + Why +
                                      ")"));
        // When the predicate holds, its heaplet consists of
        // points-to'd cells, which are never nil (inductive
        // consequence of the definition shape). The guard matters:
        // heaplet functions evaluated at garbage arguments (e.g.
        // lseg$hp(nil, y) with y != nil) may genuinely contain nil.
        if (Def->IsPredicate)
          Out.push_back(ghostAssume(
              vir::mkImplies(
                  Tr.defApp(*Def, Args, BaseEnv),
                  vir::mkNot(vir::mkMember(
                      vir::mkNil(), Tr.heapletApp(*Def, Args, BaseEnv)))),
              "nil outside heaplet"));
      });
    }
  }

  /// Unfolds every definition at nil (base cases: list(nil), empty
  /// heaplets). State-dependent, so re-emitted after heap changes.
  void emitNilUnfolds(std::vector<StmtRef> &Out, const char *Why) {
    if (!Opts.Unfold)
      return;
    LExprRef Nil = vir::mkNil();
    for (const auto &[Name, Def] : Prog.Defs.all()) {
      (void)Name;
      forEachArgTuple(Def, Nil, [&](std::vector<LExprRef> Args) {
        Out.push_back(ghostAssume(Tr.unfoldDef(Def, Args, BaseEnv),
                                  std::string("unfold at nil (") + Why +
                                      ")"));
        Out.push_back(ghostAssume(Tr.unfoldHeaplet(Def, Args, BaseEnv),
                                  std::string("unfold heaplet at nil (") +
                                      Why + ")"));
        if (Def.IsPredicate)
          Out.push_back(ghostAssume(
              vir::mkImplies(
                  Tr.defApp(Def, Args, BaseEnv),
                  vir::mkNot(vir::mkMember(
                      vir::mkNil(), Tr.heapletApp(Def, Args, BaseEnv)))),
              "nil outside heaplet"));
      });
    }
  }

  /// Unfolds at every memoized dereferenced location (the footprint).
  void emitFootprintUnfolds(std::vector<StmtRef> &Out, const char *Why) {
    if (!Opts.Unfold)
      return;
    emitNilUnfolds(Out, Why);
    for (const FpEntry &E : Fp)
      if (E.Deref)
        emitUnfolds(E.Term, E.StructName, Out, Why);
  }

  /// Unfolds at nil and every extended-footprint entry: used at
  /// function entry and at loop heads, where no dereference has
  /// re-established the definitions yet.
  void emitContextUnfolds(std::vector<StmtRef> &Out, const char *Why) {
    if (!Opts.Unfold)
      return;
    emitNilUnfolds(Out, Why);
    for (const FpEntry &E : Fp)
      emitUnfolds(E.Term, E.StructName, Out, Why);
  }

  /// Memoizes the dereferenced location \p V (struct \p SN) and the
  /// locations reachable from its pointer fields (Figure 5's
  /// dryad_fp/dryad_scope ghosts).
  void memoize(const LExprRef &V, const std::string &SN,
               std::vector<StmtRef> &Out) {
    unsigned K = GhostCounter++;
    std::string FpName = "$fp" + std::to_string(K);
    Out.push_back(
        ghostAssign(FpName, Sort::Loc, V, "memoize dereferenced location"));
    Fp.push_back({vir::mkVar(FpName, Sort::Loc), SN, true});
    const dryad::StructInfo *SI = Prog.LogicStructs.lookup(SN);
    if (!SI)
      return;
    for (const dryad::FieldInfo &FI : SI->Fields) {
      if (FI.FieldSort != Sort::Loc)
        continue;
      FieldKey FK{SN, FI.Name, Sort::Loc};
      std::string FldName = "$fld" + std::to_string(K) + "$" + FI.Name;
      LExprRef Val = vir::mkSelect(BaseEnv.CurArray(FK), V);
      Out.push_back(ghostAssign(FldName, Sort::Loc, Val,
                                "memoize field " + FI.Name));
      Fp.push_back(
          {vir::mkVar(FldName, Sort::Loc), FI.TargetStruct, false});
    }
  }

  /// Snapshot one field array; returns the environment evaluating
  /// definitions at the snapshot state.
  TranslateEnv snapshotArray(const FieldKey &FK, std::vector<StmtRef> &Out,
                             unsigned K) {
    std::string SnapName = "$snap" + std::to_string(K) + FK.arrayName();
    Out.push_back(ghostAssign(SnapName, FK.arraySort(),
                              BaseEnv.CurArray(FK),
                              "memoize state before update"));
    TranslateEnv SnapEnv = BaseEnv;
    SnapEnv.CurArray = [FK, SnapName](const FieldKey &Q) {
      if (Q == FK)
        return vir::mkVar(SnapName, Q.arraySort());
      return vir::mkVar(Q.arrayName(), Q.arraySort());
    };
    return SnapEnv;
  }

  /// Snapshot every field array (before a call).
  TranslateEnv snapshotAllArrays(std::vector<StmtRef> &Out, unsigned K) {
    std::string Prefix = "$snap" + std::to_string(K);
    for (const auto &[SN, SI] : Prog.LogicStructs.all())
      for (const dryad::FieldInfo &FI : SI.Fields) {
        FieldKey FK{SN, FI.Name, FI.FieldSort};
        Out.push_back(ghostAssign(Prefix + FK.arrayName(), FK.arraySort(),
                                  BaseEnv.CurArray(FK),
                                  "memoize state before call"));
      }
    TranslateEnv SnapEnv = BaseEnv;
    SnapEnv.CurArray = dryad::prefixedArrays(Prefix);
    return SnapEnv;
  }

  /// Preservation facts after the destructive update `U->f = _`:
  /// definitions whose pre-state heaplet avoids U are unchanged.
  void emitUpdatePreservation(const LExprRef &U, const FieldKey &FK,
                              const TranslateEnv &SnapEnv,
                              std::vector<StmtRef> &Out) {
    if (!Opts.Preservation)
      return;
    for (const auto &[Name, Def] : Prog.Defs.all()) {
      // Definitions not reading the written field are preserved by
      // congruence (their array arguments are unchanged terms).
      if (std::find(Def.Fields.begin(), Def.Fields.end(), FK) ==
          Def.Fields.end())
        continue;
      if (Def.Params.empty() || Def.Params[0].ParamSort != Sort::Loc)
        continue;
      for (const FpEntry &E : Fp) {
        if (E.StructName != Def.Params[0].StructName)
          continue;
        forEachArgTuple(Def, E.Term, [&](std::vector<LExprRef> Args) {
          LExprRef HpOld = Tr.heapletApp(Def, Args, SnapEnv);
          LExprRef Guard = vir::mkNot(vir::mkMember(U, HpOld));
          LExprRef Same = vir::mkAnd(
              vir::mkEq(Tr.defApp(Def, Args, BaseEnv),
                        Tr.defApp(Def, Args, SnapEnv)),
              vir::mkEq(Tr.heapletApp(Def, Args, BaseEnv), HpOld));
          Out.push_back(ghostAssume(vir::mkImplies(Guard, Same),
                                    "preserve " + Name +
                                        " across field update"));
        });
      }
    }
  }

  /// Preservation facts after a call with pre-heaplet \p GPre.
  void emitCallPreservation(const LExprRef &GPre,
                            const TranslateEnv &SnapEnv,
                            std::vector<StmtRef> &Out) {
    if (!Opts.Preservation)
      return;
    // Definitions whose heaplet is disjoint from the callee's heaplet.
    for (const auto &[Name, Def] : Prog.Defs.all()) {
      if (Def.Params.empty() || Def.Params[0].ParamSort != Sort::Loc)
        continue;
      for (const FpEntry &E : Fp) {
        if (E.StructName != Def.Params[0].StructName)
          continue;
        forEachArgTuple(Def, E.Term, [&](std::vector<LExprRef> Args) {
          LExprRef HpOld = Tr.heapletApp(Def, Args, SnapEnv);
          LExprRef Guard = vir::mkDisjoint(GPre, HpOld);
          LExprRef Same = vir::mkAnd(
              vir::mkEq(Tr.defApp(Def, Args, BaseEnv),
                        Tr.defApp(Def, Args, SnapEnv)),
              vir::mkEq(Tr.heapletApp(Def, Args, BaseEnv), HpOld));
          Out.push_back(ghostAssume(vir::mkImplies(Guard, Same),
                                    "preserve " + Name + " across call"));
        });
      }
    }
    // Fields of locations outside the callee's heaplet.
    for (const FpEntry &E : Fp) {
      const dryad::StructInfo *SI = Prog.LogicStructs.lookup(E.StructName);
      if (!SI)
        continue;
      LExprRef Guard = vir::mkNot(vir::mkMember(E.Term, GPre));
      for (const dryad::FieldInfo &FI : SI->Fields) {
        FieldKey FK{E.StructName, FI.Name, FI.FieldSort};
        LExprRef Now = vir::mkSelect(BaseEnv.CurArray(FK), E.Term);
        LExprRef Old = vir::mkSelect(SnapEnv.CurArray(FK), E.Term);
        Out.push_back(
            ghostAssume(vir::mkImplies(Guard, vir::mkEq(Now, Old)),
                        "preserve field " + FI.Name + " across call"));
      }
    }
  }

  /// Instantiates the data-structure axioms over footprint tuples.
  void emitAxioms(std::vector<StmtRef> &Out) {
    if (Opts.Axioms != InstrOptions::AxiomMode::Footprint)
      return;
    for (const dryad::AxiomDecl &Ax : Prog.Defs.Axioms) {
      std::vector<std::vector<LExprRef>> Cands(Ax.Params.size());
      bool Feasible = true;
      for (size_t I = 0; I != Ax.Params.size(); ++I) {
        const dryad::SpecParam &P = Ax.Params[I];
        if (P.ParamSort == Sort::Loc) {
          Cands[I].push_back(vir::mkNil());
          for (const FpEntry &E : Fp)
            if (E.StructName == P.StructName)
              Cands[I].push_back(E.Term);
        } else {
          Cands[I] = IntVars;
        }
        if (Cands[I].empty())
          Feasible = false;
      }
      if (!Feasible)
        continue;
      unsigned Budget = Opts.MaxTuplesPerSite;
      std::vector<LExprRef> Tuple(Ax.Params.size());
      std::function<void(size_t)> Rec = [&](size_t I) {
        if (!Budget)
          return;
        if (I == Tuple.size()) {
          --Budget;
          TranslateEnv Env = BaseEnv;
          for (size_t J = 0; J != Tuple.size(); ++J)
            Env.Vars[Ax.Params[J].Name] = Tuple[J];
          Out.push_back(ghostAssume(Tr.formula(Ax.Body, Env, nullptr),
                                    "axiom instance"));
          return;
        }
        for (const LExprRef &C : Cands[I]) {
          Tuple[I] = C;
          Rec(I + 1);
          if (!Budget)
            return;
        }
      };
      Rec(0);
    }
  }

  //===--------------------------------------------------------------------===//
  // Statement walk (Figure 5)
  //===--------------------------------------------------------------------===//

  void instrumentStmt(const StmtRef &S, std::vector<StmtRef> &Out) {
    switch (S->Kind) {
    case StmtKind::Block: {
      auto SavedFp = Fp;
      auto SavedInts = IntVars;
      StmtRef B = std::make_shared<Stmt>(StmtKind::Block);
      B->Loc = S->Loc;
      for (const StmtRef &Sub : S->Stmts)
        instrumentStmt(Sub, B->Stmts);
      Out.push_back(B);
      Fp = std::move(SavedFp);
      IntVars = std::move(SavedInts);
      return;
    }
    case StmtKind::Decl:
      registerVar(S->DeclName, S->DeclTy);
      Out.push_back(S);
      return;
    case StmtKind::Assign:
      instrumentAssign(S, Out);
      return;
    case StmtKind::If: {
      StmtRef If = std::make_shared<Stmt>(StmtKind::If);
      If->Loc = S->Loc;
      If->Cond = S->Cond;
      If->Then = instrumentSub(S->Then);
      If->Else = S->Else ? instrumentSub(S->Else) : nullptr;
      Out.push_back(If);
      return;
    }
    case StmtKind::While: {
      StmtRef W = std::make_shared<Stmt>(StmtKind::While);
      W->Loc = S->Loc;
      W->Cond = S->Cond;
      W->Invariants = S->Invariants;
      auto SavedFp = Fp;
      auto SavedInts = IntVars;
      // Loop head: re-establish unfoldings and axioms after the
      // invariant havoc, then the instrumented condition prelude.
      emitContextUnfolds(W->Stmts, "loop head");
      emitAxioms(W->Stmts);
      for (const StmtRef &Sub : S->Stmts)
        instrumentStmt(Sub, W->Stmts);
      W->Then = instrumentSub(S->Then);
      Fp = std::move(SavedFp);
      IntVars = std::move(SavedInts);
      Out.push_back(W);
      return;
    }
    case StmtKind::ExprStmt:
      if (S->Rhs && S->Rhs->Kind == ExprKind::Call) {
        instrumentCall(S, /*Ret=*/nullptr, Out);
        return;
      }
      Out.push_back(S);
      return;
    case StmtKind::Free: {
      Out.push_back(S);
      LExprRef U = atomToL(*S->Rhs);
      Out.push_back(ghostAssign(
          "$G", Sort::SetLoc,
          vir::mkMinus(gVar(), vir::mkSingleton(U, Sort::SetLoc)),
          "current heaplet update (free)"));
      return;
    }
    case StmtKind::Return:
    case StmtKind::Assert:
    case StmtKind::Assume:
    case StmtKind::GhostAssume:
    case StmtKind::GhostAssign:
    case StmtKind::GhostHavoc:
      Out.push_back(S);
      return;
    }
  }

  StmtRef instrumentSub(const StmtRef &S) {
    assert(S->Kind == StmtKind::Block && "normalized sub-statements");
    auto SavedFp = Fp;
    auto SavedInts = IntVars;
    StmtRef B = std::make_shared<Stmt>(StmtKind::Block);
    B->Loc = S->Loc;
    for (const StmtRef &Sub : S->Stmts)
      instrumentStmt(Sub, B->Stmts);
    Fp = std::move(SavedFp);
    IntVars = std::move(SavedInts);
    return B;
  }

  void instrumentAssign(const StmtRef &S, std::vector<StmtRef> &Out) {
    // u->f = w : destructive update.
    if (S->Lhs->Kind == ExprKind::FieldAccess) {
      const Expr &Base = *S->Lhs->Args[0];
      std::string SN = structOf(Base.Ty);
      LExprRef U = atomToL(Base);
      emitUnfolds(U, SN, Out, "before update");
      memoize(U, SN, Out);
      // Axioms at the pre-update state: preservation guards reason
      // about pre-state heaplets.
      emitAxioms(Out);
      const FieldDecl *FD =
          Base.Ty.Pointee ? Base.Ty.Pointee->findField(S->Lhs->Name)
                          : nullptr;
      FieldKey FK{SN, S->Lhs->Name,
                  FD && FD->Ty.isPtr() ? Sort::Loc : Sort::Int};
      unsigned K = GhostCounter++;
      TranslateEnv SnapEnv = snapshotArray(FK, Out, K);
      Out.push_back(S);
      emitFootprintUnfolds(Out, "after update");
      emitUpdatePreservation(U, FK, SnapEnv, Out);
      emitAxioms(Out);
      return;
    }
    // u = ...
    assert(S->Lhs->Kind == ExprKind::Var);
    const Expr &Rhs = *S->Rhs;
    switch (Rhs.Kind) {
    case ExprKind::FieldAccess: {
      const Expr &Base = *Rhs.Args[0];
      std::string SN = structOf(Base.Ty);
      LExprRef V = atomToL(Base);
      emitUnfolds(V, SN, Out, "before lookup");
      memoize(V, SN, Out);
      Out.push_back(S);
      // The loaded location itself becomes part of the footprint:
      // unfold the definitions there too (e.g. to know it lies inside
      // its own heaplet), and re-instantiate the axioms over the new
      // entries (segment extension lemmas and the like).
      if (S->Lhs->Ty.isPtr())
        emitUnfolds(atomToL(*S->Lhs), structOf(S->Lhs->Ty), Out,
                    "after lookup");
      emitAxioms(Out);
      return;
    }
    case ExprKind::Malloc: {
      Out.push_back(S);
      LExprRef U = vir::mkVar(S->Lhs->Name, Sort::Loc);
      // Freshness beyond the function's own heaplet: every location
      // the program can currently name is allocated (or nil), so the
      // fresh cell differs from all of them — except the assigned
      // variable itself, whose footprint entry now denotes the fresh
      // cell.
      for (const FpEntry &E : Fp) {
        if (E.Term->isVar() && E.Term->Name == S->Lhs->Name)
          continue;
        Out.push_back(ghostAssume(vir::mkNe(U, E.Term),
                                  "malloc freshness vs footprint"));
      }
      Out.push_back(ghostAssign(
          "$G", Sort::SetLoc,
          vir::mkUnion(gVar(), vir::mkSingleton(U, Sort::SetLoc)),
          "current heaplet update (malloc)"));
      return;
    }
    case ExprKind::Call:
      instrumentCall(S, S->Lhs.get(), Out);
      return;
    default:
      Out.push_back(S);
      return;
    }
  }

  void instrumentCall(const StmtRef &S, const Expr *Ret,
                      std::vector<StmtRef> &Out) {
    const Expr &Call = *S->Rhs;
    FuncDecl *Callee = Prog.findFunc(Call.Name);
    if (!Callee) {
      Out.push_back(S);
      return;
    }
    // Bind formals to actuals.
    TranslateEnv PreEnv = BaseEnv;
    for (size_t I = 0;
         I != Callee->Params.size() && I != Call.Args.size(); ++I)
      PreEnv.Vars[Callee->Params[I].Name] = atomToL(*Call.Args[I]);

    unsigned K = GhostCounter++;
    // G_pre_m(actuals): the heaplet the callee consumes.
    dryad::FormulaRef Pre = conjoin(Callee->Requires);
    std::string GPreName = "$gpre" + std::to_string(K);
    emitAxioms(Out); // Pre-call state axioms for the frame reasoning.
    Out.push_back(ghostAssign(GPreName, Sort::SetLoc,
                              Tr.scopeOfFormula(Pre, PreEnv),
                              "callee pre-heaplet"));
    LExprRef GPre = vir::mkVar(GPreName, Sort::SetLoc);
    TranslateEnv SnapEnv = snapshotAllArrays(Out, K);

    Out.push_back(S);

    emitFootprintUnfolds(Out, "after call");
    emitCallPreservation(GPre, SnapEnv, Out);

    // G := (G \ G_pre) union G_post(ret, actuals).
    TranslateEnv PostEnv = PreEnv;
    if (Ret)
      PostEnv.ResultVal = atomToL(*Ret);
    dryad::FormulaRef Post = conjoin(Callee->Ensures);
    LExprRef GPost = Tr.scopeOfFormula(Post, PostEnv);
    Out.push_back(ghostAssign("$G", Sort::SetLoc,
                              vir::mkUnion(vir::mkMinus(gVar(), GPre),
                                           GPost),
                              "current heaplet update (call)"));
    emitAxioms(Out);
  }

  static dryad::FormulaRef conjoin(const std::vector<dryad::FormulaRef> &Fs) {
    if (Fs.empty()) {
      auto T = std::make_shared<dryad::Formula>(dryad::FormulaKind::True);
      return T;
    }
    dryad::FormulaRef Acc = Fs[0];
    for (size_t I = 1; I != Fs.size(); ++I) {
      auto And = std::make_shared<dryad::Formula>(dryad::FormulaKind::And);
      And->Subs = {Acc, Fs[I]};
      Acc = And;
    }
    return Acc;
  }
};

//===----------------------------------------------------------------------===//
// Annotation counting (Figure 6)
//===----------------------------------------------------------------------===//

void countStmt(const Stmt &S, AnnotationStats &Stats) {
  switch (S.Kind) {
  case StmtKind::Assert:
  case StmtKind::Assume:
    ++Stats.Manual;
    break;
  case StmtKind::GhostAssume:
  case StmtKind::GhostAssign:
  case StmtKind::GhostHavoc:
    ++Stats.Ghost;
    break;
  case StmtKind::While:
    Stats.Manual += S.Invariants.size();
    break;
  default:
    break;
  }
  for (const StmtRef &Sub : S.Stmts)
    countStmt(*Sub, Stats);
  if (S.Then)
    countStmt(*S.Then, Stats);
  if (S.Else)
    countStmt(*S.Else, Stats);
}

} // namespace

void instr::instrumentFunction(FuncDecl &F, Program &Prog,
                               const InstrOptions &Opts,
                               DiagnosticEngine &Diag) {
  Instrumenter(Prog, Opts, Diag).run(F);
}

void instr::instrumentProgram(Program &Prog, const InstrOptions &Opts,
                              DiagnosticEngine &Diag) {
  for (const auto &F : Prog.Funcs)
    if (F->Body)
      instrumentFunction(*F, Prog, Opts, Diag);
}

AnnotationStats instr::countAnnotations(const FuncDecl &F) {
  AnnotationStats Stats;
  Stats.Manual += F.Requires.size() + F.Ensures.size();
  if (F.Body)
    countStmt(*F.Body, Stats);
  return Stats;
}

std::vector<LExprRef>
instr::quantifiedAxioms(const Program &Prog, DiagnosticEngine &Diag) {
  std::vector<LExprRef> Out;
  dryad::Translator Tr(Prog.Defs, Prog.LogicStructs, Diag);
  unsigned Counter = 0;
  for (const dryad::AxiomDecl &Ax : Prog.Defs.Axioms) {
    TranslateEnv Env;
    Env.CurArray = dryad::prefixedArrays();
    std::vector<LExprRef> Bound;
    for (const dryad::SpecParam &P : Ax.Params) {
      LExprRef BV = vir::mkVar(
          "?ax" + std::to_string(Counter) + "$" + P.Name, P.ParamSort);
      Env.Vars[P.Name] = BV;
      Bound.push_back(BV);
    }
    // Close over the heap state: quantify the field arrays too, so the
    // axiom holds at every SSA version of the heap.
    for (const dryad::FieldKey &FK :
         dryad::axiomFieldDeps(Ax, Prog.Defs, Prog.LogicStructs)) {
      LExprRef AV = vir::mkVar("?ax" + std::to_string(Counter) + "$arr" +
                                   FK.arrayName(),
                               FK.arraySort());
      Bound.push_back(AV);
      Env.CurArray = [FK, AV,
                      Prev = Env.CurArray](const dryad::FieldKey &Q) {
        if (Q == FK)
          return AV;
        return Prev(Q);
      };
    }
    Out.push_back(vir::mkForall(Bound, Tr.formula(Ax.Body, Env, nullptr)));
    ++Counter;
  }
  return Out;
}
