//===- Instrument.h - Natural-proof ghost-code synthesis --------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution (Section 3.3, Figure 5): synthesizing
/// ghost code that forces the downstream pipeline to find natural
/// proofs. Four families of ghost statements are inserted into the
/// normalized AST:
///
///  - Unfolding: one-step expansions of every pertinent recursive
///    definition at dereferenced locations (and across the footprint
///    after heap changes).
///  - Preservation: frame facts after destructive updates and calls —
///    a definition whose (pre-state) heaplet avoids the modified
///    region keeps its value, and fields of locations outside the
///    callee's heaplet are unchanged.
///  - Current-heaplet maintenance: the ghost variable $G is updated at
///    malloc, free and calls.
///  - State memoization: ghost snapshots of dereferenced locations,
///    their field values and (around heap changes) the touched field
///    arrays, so later annotations can refer back to earlier states.
///
/// Every inserted fact is an ordinary AST ghost statement, so the
/// instrumented program can be printed and its annotations counted for
/// the Figure 6 reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_INSTR_INSTRUMENT_H
#define VCDRYAD_INSTR_INSTRUMENT_H

#include "cfront/Ast.h"
#include "support/Diagnostics.h"

namespace vcdryad {
namespace instr {

struct InstrOptions {
  /// Unfold recursive definitions at dereferenced locations
  /// (natural-proof tactic (a); ablation A disables).
  bool Unfold = true;
  /// Emit frame/preservation facts after destructive updates and calls
  /// (ablation B disables).
  bool Preservation = true;

  enum class AxiomMode {
    Footprint,  ///< Instantiate axioms over footprint tuples (default).
    Quantified, ///< Pass axioms to the solver quantified (ablation C).
    Off,
  };
  AxiomMode Axioms = AxiomMode::Footprint;

  /// Cap on instantiation tuples per definition/axiom per program
  /// point (multi-parameter definitions combine footprint entries).
  unsigned MaxTuplesPerSite = 400;
};

/// Counts for the Figure 6 comparison.
struct AnnotationStats {
  unsigned Manual = 0; ///< requires/ensures/invariant/assert/assume.
  unsigned Ghost = 0;  ///< synthesized ghost statements.
};

/// Inserts natural-proof ghost code into the (normalized) body of
/// \p F. Idempotent only on un-instrumented functions.
void instrumentFunction(cfront::FuncDecl &F, cfront::Program &Prog,
                        const InstrOptions &Opts, DiagnosticEngine &Diag);

/// Instruments every function with a body.
void instrumentProgram(cfront::Program &Prog, const InstrOptions &Opts,
                       DiagnosticEngine &Diag);

/// Counts manual vs ghost annotations of (an instrumented) \p F.
AnnotationStats countAnnotations(const cfront::FuncDecl &F);

/// The program's data-structure axioms as quantified formulas, for
/// InstrOptions::AxiomMode::Quantified.
std::vector<vir::LExprRef> quantifiedAxioms(const cfront::Program &Prog,
                                            DiagnosticEngine &Diag);

} // namespace instr
} // namespace vcdryad

#endif // VCDRYAD_INSTR_INSTRUMENT_H
