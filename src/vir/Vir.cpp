//===- Vir.cpp - Verification IR statements -------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/Vir.h"

#include <cassert>

using namespace vcdryad;
using namespace vcdryad::vir;

VStmtRef vir::mkAssign(std::string Var, Sort S, LExprRef Rhs) {
  assert(Rhs->sort() == S && "assignment of mismatched sort");
  auto St = std::make_shared<VStmt>(VStmtKind::Assign);
  St->Var = std::move(Var);
  St->VarSort = S;
  St->Rhs = std::move(Rhs);
  return St;
}

VStmtRef vir::mkAssume(LExprRef Cond) {
  assert(Cond->sort() == Sort::Bool);
  auto St = std::make_shared<VStmt>(VStmtKind::Assume);
  St->Cond = std::move(Cond);
  return St;
}

VStmtRef vir::mkAssert(LExprRef Cond, std::string Reason, SourceLoc Loc) {
  assert(Cond->sort() == Sort::Bool);
  auto St = std::make_shared<VStmt>(VStmtKind::Assert);
  St->Cond = std::move(Cond);
  St->Reason = std::move(Reason);
  St->Loc = Loc;
  return St;
}

VStmtRef vir::mkHavoc(std::string Var, Sort S) {
  auto St = std::make_shared<VStmt>(VStmtKind::Havoc);
  St->Var = std::move(Var);
  St->VarSort = S;
  return St;
}

VStmtRef vir::mkIf(LExprRef Cond, Block Then, Block Else) {
  assert(Cond->sort() == Sort::Bool);
  auto St = std::make_shared<VStmt>(VStmtKind::If);
  St->Cond = std::move(Cond);
  St->Then = std::move(Then);
  St->Else = std::move(Else);
  return St;
}

static void printBlock(const Block &B, unsigned Indent, std::string &Out);

static void printStmt(const VStmt &St, unsigned Indent, std::string &Out) {
  std::string Pad(Indent, ' ');
  switch (St.Kind) {
  case VStmtKind::Assign:
    Out += Pad + St.Var + " := " + St.Rhs->str() + ";\n";
    return;
  case VStmtKind::Assume:
    Out += Pad + "assume " + St.Cond->str() + ";\n";
    return;
  case VStmtKind::Assert:
    Out += Pad + "assert " + St.Cond->str();
    if (!St.Reason.empty())
      Out += "  // " + St.Reason;
    Out += ";\n";
    return;
  case VStmtKind::Havoc:
    Out += Pad + "havoc " + St.Var + ";\n";
    return;
  case VStmtKind::If:
    Out += Pad + "if " + St.Cond->str() + " {\n";
    printBlock(St.Then, Indent + 2, Out);
    Out += Pad + "} else {\n";
    printBlock(St.Else, Indent + 2, Out);
    Out += Pad + "}\n";
    return;
  }
}

static void printBlock(const Block &B, unsigned Indent, std::string &Out) {
  for (const VStmtRef &St : B)
    printStmt(*St, Indent, Out);
}

std::string VStmt::str(unsigned Indent) const {
  std::string Out;
  printStmt(*this, Indent, Out);
  return Out;
}

std::string Procedure::str() const {
  std::string Out = "procedure " + Name + " {\n";
  printBlock(Body, 2, Out);
  Out += "}\n";
  return Out;
}
