//===- Sort.h - Sorts of the verification IR --------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-sorted signature of the verification IR. These mirror the
/// DRYAD sorts of the paper (Figure 2): locations, mathematical
/// integers, booleans, sets of locations, sets of integers and
/// multisets of integers, plus the two field-array sorts of the
/// Burstall-Bornat heap model.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VIR_SORT_H
#define VCDRYAD_VIR_SORT_H

#include <cassert>
#include <string>

namespace vcdryad {
namespace vir {

/// Sorts of VIR terms.
enum class Sort {
  Bool,
  Int,
  Loc,
  SetLoc,  ///< S(Loc) in the paper.
  SetInt,  ///< S(Int) in the paper.
  MSetInt, ///< MS(Int) in the paper; encoded as Int -> Int counts.
  ArrLocLoc, ///< A pointer field of the heap: Loc -> Loc.
  ArrLocInt, ///< A data field of the heap: Loc -> Int.
};

/// True for the three set-like sorts.
inline bool isSetSort(Sort S) {
  return S == Sort::SetLoc || S == Sort::SetInt || S == Sort::MSetInt;
}

/// Element sort of a set-like or array sort.
inline Sort elementSort(Sort S) {
  switch (S) {
  case Sort::SetLoc:
    return Sort::Loc;
  case Sort::SetInt:
  case Sort::MSetInt:
    return Sort::Int;
  case Sort::ArrLocLoc:
    return Sort::Loc;
  case Sort::ArrLocInt:
    return Sort::Int;
  default:
    assert(false && "sort has no element sort");
    return Sort::Int;
  }
}

/// Printable name, used by the VC dumper and the SMT-LIB emitter.
inline const char *sortName(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "bool";
  case Sort::Int:
    return "int";
  case Sort::Loc:
    return "loc";
  case Sort::SetLoc:
    return "setloc";
  case Sort::SetInt:
    return "setint";
  case Sort::MSetInt:
    return "msetint";
  case Sort::ArrLocLoc:
    return "arr<loc,loc>";
  case Sort::ArrLocInt:
    return "arr<loc,int>";
  }
  return "?";
}

} // namespace vir
} // namespace vcdryad

#endif // VCDRYAD_VIR_SORT_H
