//===- Passify.h - Flanagan-Saxe passification ------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a VIR procedure into passive (single-assignment) form:
/// assignments become equality assumptions on fresh variable versions,
/// havocs bump versions, and branch joins reconcile versions with
/// explicit assumptions, following Flanagan & Saxe. Passive programs
/// contain only Assume, Assert and If (with condition folded into
/// leading assumes of the branches), which keeps the subsequent VC
/// generation linear-size over a shared expression DAG.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VIR_PASSIFY_H
#define VCDRYAD_VIR_PASSIFY_H

#include "vir/Vir.h"

namespace vcdryad {
namespace vir {

/// Version-0 variables keep their plain name; version n > 0 becomes
/// "name@n". Rigid symbols (not in Proc.Vars) are untouched.
Procedure passify(const Procedure &Proc);

} // namespace vir
} // namespace vcdryad

#endif // VCDRYAD_VIR_PASSIFY_H
