//===- Simplify.cpp - VC simplification ------------------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/Simplify.h"

#include "vir/Slice.h"

#include <cassert>
#include <unordered_set>

using namespace vcdryad;
using namespace vcdryad::vir;

namespace {

bool isIntConst(const LExprRef &E) { return E->Op == LOp::IntConst; }
bool isEmptySet(const LExprRef &E) { return E->Op == LOp::EmptySet; }

/// Wrap-around arithmetic through uint64_t: signed overflow is UB,
/// and VC constants may be adversarial.
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}

} // namespace

LExprRef Simplifier::simpNot(LExprRef A) {
  if (A->Op == LOp::BoolConst)
    return mkBool(!A->IntVal);
  if (A->Op == LOp::Not)
    return A->Args[0];
  return mkNot(std::move(A));
}

LExprRef Simplifier::simplify(const LExprRef &E) {
  auto It = Memo.find(E.get());
  if (It != Memo.end())
    return It->second;
  std::vector<LExprRef> Args;
  Args.reserve(E->Args.size());
  for (const LExprRef &A : E->Args)
    Args.push_back(simplify(A));
  LExprRef R = applyRules(E, std::move(Args));
  Memo.emplace(E.get(), R);
  return R;
}

LExprRef Simplifier::applyRules(const LExprRef &E,
                                std::vector<LExprRef> Args) {
  // Falls through to this when no rule fires: rebuild only if a child
  // changed, else keep the original node (and its intern identity).
  auto Keep = [&]() -> LExprRef {
    for (size_t I = 0, N = Args.size(); I != N; ++I)
      if (Args[I].get() != E->Args[I].get())
        return rebuild(E, std::move(Args));
    return E;
  };

  switch (E->Op) {
  case LOp::And:
  case LOp::Or: {
    // Flatten one level (children are already simplified, hence
    // already flat), drop units, short-circuit on the absorbing
    // constant, and dedup by node identity — interned nodes make that
    // structural dedup.
    bool IsAnd = E->Op == LOp::And;
    std::vector<LExprRef> Flat;
    std::unordered_set<const LExpr *> Seen;
    for (LExprRef &A : Args) {
      if (A->isBoolConst(!IsAnd))
        return mkBool(!IsAnd); // false in And / true in Or.
      if (A->isBoolConst(IsAnd))
        continue; // true in And / false in Or.
      if (A->Op == E->Op) {
        for (const LExprRef &C : A->Args)
          if (Seen.insert(C.get()).second)
            Flat.push_back(C);
      } else if (Seen.insert(A.get()).second) {
        Flat.push_back(std::move(A));
      }
    }
    return IsAnd ? mkAnd(std::move(Flat)) : mkOr(std::move(Flat));
  }

  case LOp::Not:
    return simpNot(std::move(Args[0]));

  case LOp::Implies: {
    LExprRef &A = Args[0], &B = Args[1];
    if (A->isBoolConst(true))
      return B;
    if (A->isBoolConst(false) || B->isBoolConst(true) || A.get() == B.get())
      return mkBool(true);
    if (B->isBoolConst(false))
      return simpNot(std::move(A));
    return Keep();
  }

  case LOp::Ite: {
    LExprRef &C = Args[0], &T = Args[1], &El = Args[2];
    if (C->isBoolConst(true))
      return T;
    if (C->isBoolConst(false))
      return El;
    if (T.get() == El.get())
      return T;
    if (E->sort() == Sort::Bool) {
      if (T->isBoolConst(true) && El->isBoolConst(false))
        return C;
      if (T->isBoolConst(false) && El->isBoolConst(true))
        return simpNot(std::move(C));
    }
    return Keep();
  }

  case LOp::Eq: {
    LExprRef &A = Args[0], &B = Args[1];
    if (A.get() == B.get())
      return mkBool(true);
    if (isIntConst(A) && isIntConst(B))
      return mkBool(A->IntVal == B->IntVal);
    if (A->sort() == Sort::Bool) {
      // Interned distinct BoolConsts cannot be equal nodes, so at
      // most one side is constant here.
      if (A->Op == LOp::BoolConst)
        return A->IntVal ? B : simpNot(std::move(B));
      if (B->Op == LOp::BoolConst)
        return B->IntVal ? A : simpNot(std::move(A));
    }
    return Keep();
  }

  case LOp::IntLt:
    if (Args[0].get() == Args[1].get())
      return mkBool(false);
    if (isIntConst(Args[0]) && isIntConst(Args[1]))
      return mkBool(Args[0]->IntVal < Args[1]->IntVal);
    return Keep();

  case LOp::IntLe:
    if (Args[0].get() == Args[1].get())
      return mkBool(true);
    if (isIntConst(Args[0]) && isIntConst(Args[1]))
      return mkBool(Args[0]->IntVal <= Args[1]->IntVal);
    return Keep();

  case LOp::IntAdd:
    if (isIntConst(Args[0]) && isIntConst(Args[1]))
      return mkInt(wrapAdd(Args[0]->IntVal, Args[1]->IntVal));
    if (isIntConst(Args[0]) && Args[0]->IntVal == 0)
      return Args[1];
    if (isIntConst(Args[1]) && Args[1]->IntVal == 0)
      return Args[0];
    return Keep();

  case LOp::IntSub:
    if (isIntConst(Args[0]) && isIntConst(Args[1]))
      return mkInt(wrapSub(Args[0]->IntVal, Args[1]->IntVal));
    if (isIntConst(Args[1]) && Args[1]->IntVal == 0)
      return Args[0];
    if (Args[0].get() == Args[1].get())
      return mkInt(0);
    return Keep();

  case LOp::Select:
    // select(store(a, l, v), l) == v, by node identity on l.
    if (Args[0]->Op == LOp::Store &&
        Args[0]->Args[1].get() == Args[1].get())
      return Args[0]->Args[2];
    return Keep();

  case LOp::Union:
    // Pointwise + on multisets: Union(x, x) is 2x there, so the
    // idempotence rule is gated to true sets. Empty is the unit for
    // both interpretations.
    if (isEmptySet(Args[0]))
      return Args[1];
    if (isEmptySet(Args[1]))
      return Args[0];
    if (Args[0].get() == Args[1].get() && E->sort() != Sort::MSetInt)
      return Args[0];
    return Keep();

  case LOp::Inter:
    // Pointwise min on multisets: idempotent there too.
    if (isEmptySet(Args[0]) || isEmptySet(Args[1]))
      return mkEmptySet(E->sort());
    if (Args[0].get() == Args[1].get())
      return Args[0];
    return Keep();

  case LOp::Minus:
    // Pointwise monus on multisets: x - x = 0 = empty there too.
    if (isEmptySet(Args[0]) || Args[0].get() == Args[1].get())
      return mkEmptySet(E->sort());
    if (isEmptySet(Args[1]))
      return Args[0];
    return Keep();

  case LOp::Member:
    if (isEmptySet(Args[1]))
      return mkBool(false);
    // member(e, {x}) == (e = x); count >= 1 for multiset singletons
    // means exactly the same thing.
    if (Args[1]->Op == LOp::Singleton)
      return mkEq(Args[0], Args[1]->Args[0]);
    return Keep();

  case LOp::Subset:
    // Empty (the all-zeroes multiset) is below everything.
    if (isEmptySet(Args[0]) || Args[0].get() == Args[1].get())
      return mkBool(true);
    return Keep();

  case LOp::SetLeSet:
  case LOp::SetLtSet:
    // Vacuously true when either side is empty.
    if (isEmptySet(Args[0]) || isEmptySet(Args[1]))
      return mkBool(true);
    return Keep();

  case LOp::SetLeInt:
  case LOp::SetLtInt:
    if (isEmptySet(Args[0]))
      return mkBool(true);
    return Keep();

  case LOp::IntLeSet:
  case LOp::IntLtSet:
    if (isEmptySet(Args[1]))
      return mkBool(true);
    return Keep();

  case LOp::Forall:
    if (Args.back()->isBoolConst(true))
      return mkBool(true);
    return Keep();

  default:
    return Keep();
  }
}

LExprRef vir::simplify(const LExprRef &E) {
  return Simplifier().simplify(E);
}

void vir::preprocessVCs(std::vector<VC> &VCs, bool Slice) {
  Simplifier S; // Shared memo: obligations share the passified DAG.
  for (VC &V : VCs) {
    std::vector<LExprRef> Out;
    std::unordered_set<const LExpr *> Seen;
    bool GuardFalse = false;
    Out.reserve(V.Conjuncts.size());
    for (const LExprRef &C : V.Conjuncts) {
      LExprRef SC = S.simplify(C);
      if (SC->isBoolConst(true))
        continue;
      if (SC->isBoolConst(false)) {
        GuardFalse = true;
        break;
      }
      if (SC->Op == LOp::And) {
        // Flatten so slicing sees the individual facts; keeps
        // conjunct order (and thus shared prefixes) intact.
        for (const LExprRef &C2 : SC->Args)
          if (Seen.insert(C2.get()).second)
            Out.push_back(C2);
      } else if (Seen.insert(SC.get()).second) {
        Out.push_back(std::move(SC));
      }
    }
    if (GuardFalse) {
      Out.clear();
      Out.push_back(mkBool(false));
    }
    V.Conjuncts = std::move(Out);
    V.Cond = S.simplify(V.Cond);
    V.Guard = mkAnd(V.Conjuncts);
    if (Slice && !GuardFalse && !V.Cond->isBoolConst(true)) {
      V.Sliced = sliceConjuncts(V.Conjuncts, V.Cond);
    } else {
      V.Sliced.resize(V.Conjuncts.size());
      for (uint32_t I = 0, N = V.Conjuncts.size(); I != N; ++I)
        V.Sliced[I] = I;
    }
    V.Preprocessed = true;
  }
}
