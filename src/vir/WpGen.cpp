//===- WpGen.cpp - Verification condition generation -----------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/WpGen.h"

#include <cassert>

using namespace vcdryad;
using namespace vcdryad::vir;

namespace {

// Guards are kept as flat conjunct vectors: natural-proof programs
// carry thousands of ghost assumptions, and a nested binary And chain
// of that depth overflows the stack of every recursive consumer
// downstream (printer, Z3 lowering). One wide And node keeps all
// recursions shallow.

class VCGen {
public:
  std::vector<VC> run(const Block &Body) {
    std::vector<LExprRef> Guard;
    summarizeBlock(Body, Guard);
    return std::move(Obligations);
  }

private:
  std::vector<VC> Obligations;

  /// Processes \p B, extending \p Guard in place; returns the block's
  /// own assume-summary (for if-joins).
  LExprRef summarizeBlock(const Block &B, std::vector<LExprRef> &Guard) {
    std::vector<LExprRef> Summary;
    for (const VStmtRef &St : B) {
      switch (St->Kind) {
      case VStmtKind::Assume:
        Summary.push_back(St->Cond);
        Guard.push_back(St->Cond);
        break;
      case VStmtKind::Assert: {
        VC Obligation;
        Obligation.Guard = mkAnd(Guard);
        Obligation.Cond = St->Cond;
        Obligation.Reason = St->Reason;
        Obligation.Loc = St->Loc;
        Obligation.Conjuncts = Guard; // Shared-prefix copy (refs only).
        Obligations.push_back(std::move(Obligation));
        // Checked once; downstream obligations may assume it.
        Summary.push_back(St->Cond);
        Guard.push_back(St->Cond);
        break;
      }
      case VStmtKind::If: {
        std::vector<LExprRef> ThenGuard = Guard;
        LExprRef ThenSummary = summarizeBlock(St->Then, ThenGuard);
        std::vector<LExprRef> ElseGuard = Guard;
        LExprRef ElseSummary = summarizeBlock(St->Else, ElseGuard);
        LExprRef JoinFact = mkOr(ThenSummary, ElseSummary);
        Summary.push_back(JoinFact);
        Guard.push_back(JoinFact);
        break;
      }
      case VStmtKind::Assign:
      case VStmtKind::Havoc:
        assert(false && "VC generation requires a passive procedure");
        break;
      }
    }
    return mkAnd(std::move(Summary));
  }
};

} // namespace

std::vector<VC> vir::generateVCs(const Procedure &Passive) {
  return VCGen().run(Passive.Body);
}
