//===- LExpr.h - Logical expressions of the verification IR -----*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifier-free multi-sorted logical expressions. This is the
/// language verification conditions are built in; the SMT backend
/// lowers it to Z3. Set-ordering comparisons (e.g. "every element of S
/// is < k") are *primitive operators* here — the only place
/// quantifiers appear is in their lowering, which stays inside the
/// array property fragment as the paper requires (Section 2, 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VIR_LEXPR_H
#define VCDRYAD_VIR_LEXPR_H

#include "vir/Sort.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vcdryad {
namespace vir {

class LExpr;
using LExprRef = std::shared_ptr<const LExpr>;

/// Operators of the VIR expression language.
enum class LOp {
  // Leaves.
  Var,       ///< Named variable of any sort.
  IntConst,  ///< Integer literal.
  BoolConst, ///< true / false.
  NilConst,  ///< The distinguished nil location.
  // Boolean structure.
  And,
  Or,
  Not,
  Implies,
  Ite, ///< (cond, then, else); then/else of any common sort.
  Eq,  ///< Polymorphic equality.
  // Integer arithmetic.
  IntLt,
  IntLe,
  IntAdd,
  IntSub,
  // Field arrays (Burstall-Bornat heap).
  Select, ///< (array, loc) -> element.
  Store,  ///< (array, loc, element) -> array.
  // Sets and multisets (sort-directed: SetLoc, SetInt or MSetInt).
  EmptySet,  ///< Nullary; result sort stored on the node.
  Singleton, ///< (elem) -> set; result sort stored on the node.
  Union,     ///< Pointwise + for multisets.
  Inter,     ///< Pointwise min for multisets.
  Minus,     ///< Pointwise monus for multisets.
  Member,    ///< (elem, set) -> Bool; count >= 1 for multisets.
  Subset,    ///< (set, set) -> Bool; pointwise <= for multisets.
  // Ordering between integer (multi)sets and integers / each other.
  // These are the array-property-fragment atoms of the paper.
  SetLeSet, ///< every x in S1, y in S2: x <= y.
  SetLtSet, ///< every x in S1, y in S2: x < y.
  SetLeInt, ///< every x in S: x <= k.
  SetLtInt, ///< every x in S: x < k.
  IntLeSet, ///< every x in S: k <= x.
  IntLtSet, ///< every x in S: k < x.
  // Uninterpreted function application (recursive definitions,
  // heaplets, per-state snapshots).
  FuncApp,
  // Universal quantification: Args = bound variables then the body.
  // Used only by the quantified-axiom ablation mode; the natural-proof
  // pipeline itself never emits quantifiers.
  Forall,
};

/// An immutable, shared expression node. Build only through the mk*
/// factories, which sort-check their operands with assertions and
/// hash-cons the result: structurally identical factory calls return
/// the *same* node, so structural equality degenerates to pointer
/// equality and DAG consumers (hashing, Z3 lowering, slicing) memoize
/// by address with perfect sharing.
class LExpr {
public:
  LOp Op;
  Sort ExprSort;
  std::string Name;          ///< For Var and FuncApp.
  int64_t IntVal = 0;        ///< For IntConst / BoolConst (0 or 1).
  std::vector<LExprRef> Args;

  /// Interning metadata, set by the arena in LExpr.cpp. Id is nonzero
  /// exactly for interned nodes and is unique per live structure: two
  /// live interned nodes are structurally equal iff they are the same
  /// node. StableHash is the content digest (FNV-1a over op, sort,
  /// name, constant and child digests) — identical across runs and
  /// platforms, so it is safe to persist as a proof-cache key.
  uint64_t Id = 0;
  uint64_t StableHash = 0;

  LExpr(LOp Op, Sort S) : Op(Op), ExprSort(S) {}

  Sort sort() const { return ExprSort; }
  bool isVar() const { return Op == LOp::Var; }
  bool isInterned() const { return Id != 0; }
  bool isBoolConst(bool B) const {
    return Op == LOp::BoolConst && (IntVal != 0) == B;
  }

  /// Renders as an S-expression, for debugging and the VC dumper.
  std::string str() const;
};

// Leaf factories.
LExprRef mkVar(std::string Name, Sort S);
LExprRef mkInt(int64_t V);
LExprRef mkBool(bool B);
LExprRef mkNil();

// Boolean structure. mkAnd/mkOr of an empty list is true/false; a
// singleton list is returned unchanged.
LExprRef mkAnd(std::vector<LExprRef> Conjuncts);
LExprRef mkAnd(LExprRef A, LExprRef B);
LExprRef mkOr(std::vector<LExprRef> Disjuncts);
LExprRef mkOr(LExprRef A, LExprRef B);
LExprRef mkNot(LExprRef A);
LExprRef mkImplies(LExprRef A, LExprRef B);
LExprRef mkIte(LExprRef C, LExprRef T, LExprRef E);
LExprRef mkEq(LExprRef A, LExprRef B);
LExprRef mkNe(LExprRef A, LExprRef B);

// Arithmetic.
LExprRef mkIntLt(LExprRef A, LExprRef B);
LExprRef mkIntLe(LExprRef A, LExprRef B);
LExprRef mkIntAdd(LExprRef A, LExprRef B);
LExprRef mkIntSub(LExprRef A, LExprRef B);

// Field arrays.
LExprRef mkSelect(LExprRef Array, LExprRef Loc);
LExprRef mkStore(LExprRef Array, LExprRef Loc, LExprRef Value);

// Sets.
LExprRef mkEmptySet(Sort SetSort);
LExprRef mkSingleton(LExprRef Elem, Sort SetSort);
LExprRef mkUnion(LExprRef A, LExprRef B);
LExprRef mkInter(LExprRef A, LExprRef B);
LExprRef mkMinus(LExprRef A, LExprRef B);
LExprRef mkMember(LExprRef Elem, LExprRef Set);
LExprRef mkSubset(LExprRef A, LExprRef B);
/// Sugar: intersection is empty.
LExprRef mkDisjoint(LExprRef A, LExprRef B);

// Set-order atoms.
LExprRef mkSetCmp(LOp Op, LExprRef A, LExprRef B);

// Uninterpreted application.
LExprRef mkApp(std::string Name, Sort RetSort, std::vector<LExprRef> Args);

/// Universal quantification over \p BoundVars (all must be Var nodes).
LExprRef mkForall(std::vector<LExprRef> BoundVars, LExprRef Body);

/// Rebuilds \p E with \p NewArgs as children (op, sort, name and
/// constant preserved) through the interning arena. The generic
/// helper for structure-preserving rewrites (passification,
/// substitution, simplification).
LExprRef rebuild(const LExprRef &E, std::vector<LExprRef> NewArgs);

/// Interns a node from its raw components, bypassing the factory
/// canonicalizations (mkAnd's empty/singleton collapse etc.). For
/// mechanical reconstruction of already-canonical structure — the
/// worker-protocol codec deserializing a shipped DAG — where the
/// result must be node-for-node identical to the source expression.
/// \p Args must be interned nodes.
LExprRef internRaw(LOp Op, Sort S, std::string Name, int64_t IntVal,
                   std::vector<LExprRef> Args);

/// Structural equality (same ops, names, constants, children). O(1)
/// for interned nodes (pointer identity); a memoized structural walk
/// remains as the fallback for legacy un-interned nodes.
bool structurallyEqual(const LExprRef &A, const LExprRef &B);

/// Content hash of \p E, stable across runs and platforms: the
/// intern-time digest when available (O(1)), else a memoized
/// iterative structural walk. Equal structures hash equal;
/// alpha-distinct terms differ by design.
uint64_t stableExprHash(const LExprRef &E);

/// Counters of the hash-consing arena (diagnostics and tests).
struct InternStats {
  uint64_t Constructed = 0; ///< Nodes actually allocated.
  uint64_t DedupHits = 0;   ///< Factory calls answered by an existing node.
  uint64_t Live = 0;        ///< Interned nodes currently alive.
};
InternStats internStats();

/// Capture-free substitution of variables by expressions.
LExprRef substitute(const LExprRef &E,
                    const std::map<std::string, LExprRef> &Map);

/// Calls \p Fn on every node of \p E (parents before children).
void visit(const LExprRef &E,
           const std::function<void(const LExpr &)> &Fn);

} // namespace vir
} // namespace vcdryad

#endif // VCDRYAD_VIR_LEXPR_H
