//===- Simplify.h - VC simplification ---------------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Equivalence-preserving simplification of passified VC formulas:
/// constant folding, and/or flattening and deduplication,
/// double-negation and ite-of-bool elimination, plus a handful of
/// ground set-theory reductions (empty-set units, vacuous set-order
/// atoms). Every rewrite preserves logical equivalence, so verdicts
/// are unchanged; running it before hashing lets the proof cache hit
/// across syntactic variants of the same obligation, and smaller
/// formulas lower to smaller Z3 queries.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VIR_SIMPLIFY_H
#define VCDRYAD_VIR_SIMPLIFY_H

#include "vir/WpGen.h"

#include <unordered_map>

namespace vcdryad {
namespace vir {

/// Bottom-up simplifier with a per-instance memo. Reuse one instance
/// across the obligations of a function: their guards share the
/// passified DAG, so each distinct node is simplified once.
class Simplifier {
public:
  /// Returns an equivalent, usually smaller expression. Idempotent:
  /// simplify(simplify(E)) == simplify(E) node-for-node.
  LExprRef simplify(const LExprRef &E);

private:
  LExprRef applyRules(const LExprRef &E, std::vector<LExprRef> Args);
  LExprRef simpNot(LExprRef A);

  std::unordered_map<const LExpr *, LExprRef> Memo;
};

/// One-shot convenience wrapper.
LExprRef simplify(const LExprRef &E);

/// Preprocesses the obligations of one function in place: simplifies
/// every guard conjunct and goal (sharing one memo across the batch),
/// flattens and deduplicates the conjunct vectors preserving prefix
/// order, rebuilds Guard, and populates Sliced — the cone of
/// influence of the goal when \p Slice is set, else all indices.
/// Marks each VC Preprocessed.
void preprocessVCs(std::vector<VC> &VCs, bool Slice);

} // namespace vir
} // namespace vcdryad

#endif // VCDRYAD_VIR_SIMPLIFY_H
