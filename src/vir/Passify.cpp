//===- Passify.cpp - Flanagan-Saxe passification ---------------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/Passify.h"

#include <cassert>

using namespace vcdryad;
using namespace vcdryad::vir;

namespace {

/// Maps each mutable variable to its current SSA version.
using VersionMap = std::map<std::string, unsigned>;

class Passifier {
public:
  explicit Passifier(const Procedure &Proc) : Proc(Proc) {}

  Procedure run() {
    Procedure Out;
    Out.Name = Proc.Name;
    VersionMap VM;
    for (const auto &[Name, S] : Proc.Vars)
      VM[Name] = 0;
    Out.Body = passifyBlock(Proc.Body, VM);
    // The passive procedure has no mutable variables left; every
    // version is a rigid symbol. Record their sorts for the backend.
    Out.Vars = VersionedSorts;
    return Out;
  }

private:
  const Procedure &Proc;
  /// Highest version handed out per variable (global across branches,
  /// so joins can always pick a strictly fresh version).
  std::map<std::string, unsigned> NextVersion;
  std::map<std::string, Sort> VersionedSorts;

  std::string versionedName(const std::string &Name, unsigned V) {
    return V == 0 ? Name : Name + "@" + std::to_string(V);
  }

  unsigned freshVersion(const std::string &Name) {
    unsigned &N = NextVersion[Name];
    return ++N;
  }

  Sort varSort(const std::string &Name) const {
    auto It = Proc.Vars.find(Name);
    assert(It != Proc.Vars.end() && "unknown mutable variable");
    return It->second;
  }

  LExprRef versionedVar(const std::string &Name, unsigned V) {
    Sort S = varSort(Name);
    std::string VN = versionedName(Name, V);
    VersionedSorts.emplace(VN, S);
    return mkVar(VN, S);
  }

  /// Renames every mutable variable in \p E to its current version.
  LExprRef resolve(const LExprRef &E, const VersionMap &VM) {
    if (E->Op == LOp::Var) {
      auto It = VM.find(E->Name);
      if (It == VM.end())
        return E; // Rigid symbol.
      return versionedVar(E->Name, It->second);
    }
    if (E->Args.empty())
      return E;
    bool Changed = false;
    std::vector<LExprRef> NewArgs;
    NewArgs.reserve(E->Args.size());
    for (const LExprRef &A : E->Args) {
      LExprRef NA = resolve(A, VM);
      Changed |= NA.get() != A.get();
      NewArgs.push_back(std::move(NA));
    }
    if (!Changed)
      return E;
    return rebuild(E, std::move(NewArgs));
  }

  Block passifyBlock(const Block &B, VersionMap &VM) {
    Block Out;
    for (const VStmtRef &St : B)
      passifyStmt(*St, VM, Out);
    return Out;
  }

  void passifyStmt(const VStmt &St, VersionMap &VM, Block &Out) {
    switch (St.Kind) {
    case VStmtKind::Assign: {
      LExprRef Rhs = resolve(St.Rhs, VM);
      unsigned NewV = freshVersion(St.Var);
      VM[St.Var] = NewV;
      Out.push_back(mkAssume(mkEq(versionedVar(St.Var, NewV), Rhs)));
      return;
    }
    case VStmtKind::Havoc: {
      unsigned NewV = freshVersion(St.Var);
      VM[St.Var] = NewV;
      // Touch the variable so its sort is declared.
      versionedVar(St.Var, NewV);
      return;
    }
    case VStmtKind::Assume:
      Out.push_back(mkAssume(resolve(St.Cond, VM)));
      return;
    case VStmtKind::Assert:
      Out.push_back(mkAssert(resolve(St.Cond, VM), St.Reason, St.Loc));
      return;
    case VStmtKind::If: {
      LExprRef Cond = resolve(St.Cond, VM);
      VersionMap ThenVM = VM;
      VersionMap ElseVM = VM;
      Block Then;
      Then.push_back(mkAssume(Cond));
      for (const VStmtRef &S : St.Then)
        passifyStmt(*S, ThenVM, Then);
      Block Else;
      Else.push_back(mkAssume(mkNot(Cond)));
      for (const VStmtRef &S : St.Else)
        passifyStmt(*S, ElseVM, Else);
      // Join: unify versions that diverged.
      for (auto &[Name, V] : VM) {
        unsigned TV = ThenVM[Name];
        unsigned EV = ElseVM[Name];
        if (TV == EV) {
          V = TV;
          continue;
        }
        unsigned JV = freshVersion(Name);
        Then.push_back(
            mkAssume(mkEq(versionedVar(Name, JV), versionedVar(Name, TV))));
        Else.push_back(
            mkAssume(mkEq(versionedVar(Name, JV), versionedVar(Name, EV))));
        V = JV;
      }
      Out.push_back(mkIf(mkBool(true), std::move(Then), std::move(Else)));
      return;
    }
    }
  }
};

} // namespace

Procedure vir::passify(const Procedure &Proc) {
  return Passifier(Proc).run();
}
