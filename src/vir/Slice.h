//===- Slice.h - Cone-of-influence obligation slicing -----------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-obligation guard slicing. A VC's guard is a conjunction of
/// assumptions, most of which (unfoldings of other structures, facts
/// about dead program paths) are irrelevant to any one goal. The
/// slice keeps exactly the conjuncts that share a symbol — a variable
/// or an uninterpreted function name — with the goal, transitively
/// through other kept conjuncts.
///
/// Soundness: the sliced guard is a *subset* of the conjuncts, i.e. a
/// logically weaker assumption. If the goal holds under the weaker
/// guard it holds under the full guard, so Valid verdicts transfer.
/// The converse does not hold — a counterexample to the sliced VC may
/// be excluded by a dropped conjunct — so non-Valid answers must be
/// confirmed against the full guard (the verifier's escalation ladder
/// does this automatically).
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VIR_SLICE_H
#define VCDRYAD_VIR_SLICE_H

#include "vir/LExpr.h"

#include <vector>

namespace vcdryad {
namespace vir {

/// Returns the indices (ascending) of the conjuncts in the cone of
/// influence of \p Goal. Ground conjuncts (no symbols at all) are
/// always kept: they are tiny, and dropping a ground contradiction
/// would manufacture spurious escalations.
std::vector<uint32_t> sliceConjuncts(const std::vector<LExprRef> &Conjuncts,
                                     const LExprRef &Goal);

} // namespace vir
} // namespace vcdryad

#endif // VCDRYAD_VIR_SLICE_H
