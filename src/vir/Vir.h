//===- Vir.h - Verification IR statements -----------------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement language of the verification IR: the role Boogie
/// plays in the paper's pipeline. By the time a function reaches VIR,
/// loops have been cut at invariants, calls summarised by contracts,
/// and the ghost code of Figure 5 inserted, so a procedure is a
/// loop-free, call-free tree of assignments, havocs, assumes, asserts
/// and structured ifs over the logical expression language.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VIR_VIR_H
#define VCDRYAD_VIR_VIR_H

#include "support/SourceLoc.h"
#include "vir/LExpr.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vcdryad {
namespace vir {

enum class VStmtKind { Assign, Assume, Assert, Havoc, If };

struct VStmt;
using VStmtRef = std::shared_ptr<VStmt>;
using Block = std::vector<VStmtRef>;

/// One VIR statement. Build through the mk* factories below.
struct VStmt {
  VStmtKind Kind;
  // Assign / Havoc.
  std::string Var;
  Sort VarSort = Sort::Bool;
  LExprRef Rhs; // Assign only.
  // Assume / Assert / If condition.
  LExprRef Cond;
  // Assert provenance.
  std::string Reason;
  SourceLoc Loc;
  // If branches.
  Block Then;
  Block Else;

  explicit VStmt(VStmtKind K) : Kind(K) {}

  /// Multi-line rendering with \p Indent leading spaces.
  std::string str(unsigned Indent = 0) const;
};

VStmtRef mkAssign(std::string Var, Sort S, LExprRef Rhs);
VStmtRef mkAssume(LExprRef Cond);
VStmtRef mkAssert(LExprRef Cond, std::string Reason, SourceLoc Loc = {});
VStmtRef mkHavoc(std::string Var, Sort S);
VStmtRef mkIf(LExprRef Cond, Block Then, Block Else);

/// A VIR procedure: the mutable variables (scalars, field arrays, the
/// ghost heaplet G, snapshots) and a loop-free body.
struct Procedure {
  std::string Name;
  /// Every variable the body assigns or havocs, with its sort.
  /// Variables referenced but absent from this map are rigid symbols.
  std::map<std::string, Sort> Vars;
  Block Body;

  std::string str() const;
};

} // namespace vir
} // namespace vcdryad

#endif // VCDRYAD_VIR_VIR_H
