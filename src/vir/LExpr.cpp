//===- LExpr.cpp - Logical expressions of the verification IR -------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/LExpr.h"

#include "support/Hash.h"

#include <atomic>
#include <cassert>
#include <mutex>
#include <unordered_map>

using namespace vcdryad;
using namespace vcdryad::vir;

//===----------------------------------------------------------------------===//
// Hash-consing arena
//===----------------------------------------------------------------------===//

namespace {

/// Digest of one node given already-hashed children. This is the
/// canonical expression serialization — (op, sort, name, constant,
/// arity, child digests) — shared with smt::hashExpr through
/// stableExprHash, so intern-time digests double as proof-cache keys.
uint64_t nodeDigest(LOp Op, Sort S, const std::string &Name, int64_t IntVal,
                    const std::vector<LExprRef> &Args) {
  Fnv1a H;
  H.u64(static_cast<uint64_t>(Op));
  H.u64(static_cast<uint64_t>(S));
  H.str(Name);
  H.i64(IntVal);
  H.u64(Args.size());
  for (const LExprRef &A : Args)
    H.u64(stableExprHash(A));
  return H.digest();
}

/// The global intern table: weak entries keyed by content digest,
/// sharded to keep the parallel front ends (one planFile task per
/// file) off a single lock. Entries are weak so the arena never
/// extends node lifetimes; expired entries are pruned lazily on
/// bucket scans and by periodic per-shard sweeps.
class InternArena {
public:
  LExprRef intern(LOp Op, Sort S, std::string Name, int64_t IntVal,
                  std::vector<LExprRef> Args) {
    // Hash-consing needs children to be canonical: if any child
    // escaped the arena (legacy direct construction), structural
    // uniqueness can not be promised for the parent either, so build
    // a plain un-interned node (Id stays 0).
    bool Canonical = true;
    for (const LExprRef &A : Args)
      Canonical &= A->isInterned();
    uint64_t D = nodeDigest(Op, S, Name, IntVal, Args);
    if (!Canonical) {
      auto Node = std::make_shared<LExpr>(Op, S);
      Node->Name = std::move(Name);
      Node->IntVal = IntVal;
      Node->Args = std::move(Args);
      Node->StableHash = D;
      return Node;
    }

    Shard &Sh = Shards[D % NumShards];
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    auto [B, E] = Sh.Table.equal_range(D);
    for (auto It = B; It != E;) {
      if (LExprRef N = It->second.lock()) {
        if (shallowEqual(*N, Op, S, Name, IntVal, Args)) {
          DedupHits.fetch_add(1, std::memory_order_relaxed);
          return N;
        }
        ++It;
      } else {
        It = Sh.Table.erase(It);
      }
    }
    auto Node = std::make_shared<LExpr>(Op, S);
    Node->Name = std::move(Name);
    Node->IntVal = IntVal;
    Node->Args = std::move(Args);
    Node->Id = NextId.fetch_add(1, std::memory_order_relaxed);
    Node->StableHash = D;
    Sh.Table.emplace(D, Node);
    Constructed.fetch_add(1, std::memory_order_relaxed);
    if (++Sh.InsertsSinceSweep >= SweepPeriod) {
      Sh.InsertsSinceSweep = 0;
      for (auto It = Sh.Table.begin(); It != Sh.Table.end();)
        It = It->second.expired() ? Sh.Table.erase(It) : std::next(It);
    }
    return Node;
  }

  InternStats stats() const {
    InternStats S;
    S.Constructed = Constructed.load();
    S.DedupHits = DedupHits.load();
    for (const Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Lock(Sh.Mu);
      for (const auto &[K, W] : Sh.Table)
        if (!W.expired())
          ++S.Live;
    }
    return S;
  }

private:
  static bool shallowEqual(const LExpr &N, LOp Op, Sort S,
                           const std::string &Name, int64_t IntVal,
                           const std::vector<LExprRef> &Args) {
    if (N.Op != Op || N.ExprSort != S || N.IntVal != IntVal ||
        N.Name != Name || N.Args.size() != Args.size())
      return false;
    for (size_t I = 0, E = Args.size(); I != E; ++I)
      if (N.Args[I].get() != Args[I].get()) // Children are canonical.
        return false;
    return true;
  }

  static constexpr size_t NumShards = 64;
  static constexpr uint64_t SweepPeriod = 4096;
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_multimap<uint64_t, std::weak_ptr<const LExpr>> Table;
    uint64_t InsertsSinceSweep = 0;
  };
  Shard Shards[NumShards];
  std::atomic<uint64_t> NextId{1};
  std::atomic<uint64_t> Constructed{0};
  std::atomic<uint64_t> DedupHits{0};
};

/// Leaked singleton: LExprRefs held in static storage elsewhere may be
/// destroyed after any static arena, so the arena must never die.
InternArena &arena() {
  static InternArena *A = new InternArena;
  return *A;
}

LExprRef makeNode(LOp Op, Sort S, std::vector<LExprRef> Args) {
  return arena().intern(Op, S, std::string(), 0, std::move(Args));
}

} // namespace

InternStats vir::internStats() { return arena().stats(); }

LExprRef vir::mkVar(std::string Name, Sort S) {
  return arena().intern(LOp::Var, S, std::move(Name), 0, {});
}

LExprRef vir::mkInt(int64_t V) {
  return arena().intern(LOp::IntConst, Sort::Int, std::string(), V, {});
}

LExprRef vir::mkBool(bool B) {
  return arena().intern(LOp::BoolConst, Sort::Bool, std::string(),
                        B ? 1 : 0, {});
}

LExprRef vir::mkNil() {
  return arena().intern(LOp::NilConst, Sort::Loc, std::string(), 0, {});
}

LExprRef vir::mkAnd(std::vector<LExprRef> Conjuncts) {
  for ([[maybe_unused]] const LExprRef &C : Conjuncts)
    assert(C->sort() == Sort::Bool && "non-boolean conjunct");
  if (Conjuncts.empty())
    return mkBool(true);
  if (Conjuncts.size() == 1)
    return Conjuncts.front();
  return makeNode(LOp::And, Sort::Bool, std::move(Conjuncts));
}

LExprRef vir::mkAnd(LExprRef A, LExprRef B) {
  return mkAnd(std::vector<LExprRef>{std::move(A), std::move(B)});
}

LExprRef vir::mkOr(std::vector<LExprRef> Disjuncts) {
  for ([[maybe_unused]] const LExprRef &D : Disjuncts)
    assert(D->sort() == Sort::Bool && "non-boolean disjunct");
  if (Disjuncts.empty())
    return mkBool(false);
  if (Disjuncts.size() == 1)
    return Disjuncts.front();
  return makeNode(LOp::Or, Sort::Bool, std::move(Disjuncts));
}

LExprRef vir::mkOr(LExprRef A, LExprRef B) {
  return mkOr(std::vector<LExprRef>{std::move(A), std::move(B)});
}

LExprRef vir::mkNot(LExprRef A) {
  assert(A->sort() == Sort::Bool && "negating non-boolean");
  return makeNode(LOp::Not, Sort::Bool, {std::move(A)});
}

LExprRef vir::mkImplies(LExprRef A, LExprRef B) {
  assert(A->sort() == Sort::Bool && B->sort() == Sort::Bool);
  return makeNode(LOp::Implies, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkIte(LExprRef C, LExprRef T, LExprRef E) {
  assert(C->sort() == Sort::Bool && T->sort() == E->sort());
  Sort S = T->sort();
  return makeNode(LOp::Ite, S, {std::move(C), std::move(T), std::move(E)});
}

LExprRef vir::mkEq(LExprRef A, LExprRef B) {
  assert(A->sort() == B->sort() && "equality between different sorts");
  return makeNode(LOp::Eq, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkNe(LExprRef A, LExprRef B) {
  return mkNot(mkEq(std::move(A), std::move(B)));
}

static LExprRef mkIntRel(LOp Op, LExprRef A, LExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int);
  return makeNode(Op, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkIntLt(LExprRef A, LExprRef B) {
  return mkIntRel(LOp::IntLt, std::move(A), std::move(B));
}
LExprRef vir::mkIntLe(LExprRef A, LExprRef B) {
  return mkIntRel(LOp::IntLe, std::move(A), std::move(B));
}

static LExprRef mkIntArith(LOp Op, LExprRef A, LExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int);
  return makeNode(Op, Sort::Int, {std::move(A), std::move(B)});
}

LExprRef vir::mkIntAdd(LExprRef A, LExprRef B) {
  return mkIntArith(LOp::IntAdd, std::move(A), std::move(B));
}
LExprRef vir::mkIntSub(LExprRef A, LExprRef B) {
  return mkIntArith(LOp::IntSub, std::move(A), std::move(B));
}

LExprRef vir::mkSelect(LExprRef Array, LExprRef Loc) {
  Sort AS = Array->sort();
  assert((AS == Sort::ArrLocLoc || AS == Sort::ArrLocInt) &&
         "select from non-field-array");
  assert(Loc->sort() == Sort::Loc);
  return makeNode(LOp::Select, elementSort(AS),
                  {std::move(Array), std::move(Loc)});
}

LExprRef vir::mkStore(LExprRef Array, LExprRef Loc, LExprRef Value) {
  Sort AS = Array->sort();
  assert((AS == Sort::ArrLocLoc || AS == Sort::ArrLocInt) &&
         "store into non-field-array");
  assert(Loc->sort() == Sort::Loc);
  assert(Value->sort() == elementSort(AS) && "store of wrong element sort");
  return makeNode(LOp::Store, AS,
                  {std::move(Array), std::move(Loc), std::move(Value)});
}

LExprRef vir::mkEmptySet(Sort SetSort) {
  assert(isSetSort(SetSort));
  return makeNode(LOp::EmptySet, SetSort, {});
}

LExprRef vir::mkSingleton(LExprRef Elem, Sort SetSort) {
  assert(isSetSort(SetSort) && Elem->sort() == elementSort(SetSort));
  return makeNode(LOp::Singleton, SetSort, {std::move(Elem)});
}

static LExprRef mkSetBin(LOp Op, LExprRef A, LExprRef B) {
  assert(A->sort() == B->sort() && isSetSort(A->sort()) &&
         "set operation on mismatched sorts");
  Sort S = A->sort();
  return makeNode(Op, S, {std::move(A), std::move(B)});
}

LExprRef vir::mkUnion(LExprRef A, LExprRef B) {
  return mkSetBin(LOp::Union, std::move(A), std::move(B));
}
LExprRef vir::mkInter(LExprRef A, LExprRef B) {
  return mkSetBin(LOp::Inter, std::move(A), std::move(B));
}
LExprRef vir::mkMinus(LExprRef A, LExprRef B) {
  return mkSetBin(LOp::Minus, std::move(A), std::move(B));
}

LExprRef vir::mkMember(LExprRef Elem, LExprRef Set) {
  assert(isSetSort(Set->sort()) &&
         Elem->sort() == elementSort(Set->sort()));
  return makeNode(LOp::Member, Sort::Bool, {std::move(Elem), std::move(Set)});
}

LExprRef vir::mkSubset(LExprRef A, LExprRef B) {
  assert(A->sort() == B->sort() && isSetSort(A->sort()));
  return makeNode(LOp::Subset, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkDisjoint(LExprRef A, LExprRef B) {
  Sort S = A->sort();
  return mkEq(mkInter(std::move(A), std::move(B)), mkEmptySet(S));
}

LExprRef vir::mkSetCmp(LOp Op, LExprRef A, LExprRef B) {
  switch (Op) {
  case LOp::SetLeSet:
  case LOp::SetLtSet:
    assert((A->sort() == Sort::SetInt || A->sort() == Sort::MSetInt) &&
           (B->sort() == Sort::SetInt || B->sort() == Sort::MSetInt));
    break;
  case LOp::SetLeInt:
  case LOp::SetLtInt:
    assert((A->sort() == Sort::SetInt || A->sort() == Sort::MSetInt) &&
           B->sort() == Sort::Int);
    break;
  case LOp::IntLeSet:
  case LOp::IntLtSet:
    assert(A->sort() == Sort::Int &&
           (B->sort() == Sort::SetInt || B->sort() == Sort::MSetInt));
    break;
  default:
    assert(false && "not a set comparison operator");
  }
  return makeNode(Op, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkApp(std::string Name, Sort RetSort,
                    std::vector<LExprRef> Args) {
  return arena().intern(LOp::FuncApp, RetSort, std::move(Name), 0,
                        std::move(Args));
}

LExprRef vir::mkForall(std::vector<LExprRef> BoundVars, LExprRef Body) {
  assert(Body->sort() == Sort::Bool && "quantified body must be boolean");
  for ([[maybe_unused]] const LExprRef &V : BoundVars)
    assert(V->isVar() && "bound names must be variables");
  std::vector<LExprRef> Args = std::move(BoundVars);
  Args.push_back(std::move(Body));
  return makeNode(LOp::Forall, Sort::Bool, std::move(Args));
}

namespace {

/// Fallback structural comparison for pairs involving un-interned
/// nodes, memoized on node-address pairs so shared DAGs stay linear.
bool structEqMemo(
    const LExprRef &A, const LExprRef &B,
    std::map<std::pair<const LExpr *, const LExpr *>, bool> &Memo) {
  if (A.get() == B.get())
    return true;
  // Live interned nodes are unique per structure: different node,
  // different structure.
  if (A->isInterned() && B->isInterned())
    return false;
  if (stableExprHash(A) != stableExprHash(B))
    return false;
  auto Key = std::make_pair(A.get(), B.get());
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  bool Eq = A->Op == B->Op && A->ExprSort == B->ExprSort &&
            A->Name == B->Name && A->IntVal == B->IntVal &&
            A->Args.size() == B->Args.size();
  for (size_t I = 0, E = A->Args.size(); Eq && I != E; ++I)
    Eq = structEqMemo(A->Args[I], B->Args[I], Memo);
  Memo.emplace(Key, Eq);
  return Eq;
}

} // namespace

bool vir::structurallyEqual(const LExprRef &A, const LExprRef &B) {
  if (A.get() == B.get())
    return true;
  if (A->isInterned() && B->isInterned())
    return false;
  std::map<std::pair<const LExpr *, const LExpr *>, bool> Memo;
  return structEqMemo(A, B, Memo);
}

uint64_t vir::stableExprHash(const LExprRef &E) {
  if (E->StableHash != 0)
    return E->StableHash;
  // Legacy un-interned DAG (direct LExpr construction): iterative
  // post-order walk memoized by address, so shared subterms are
  // digested once.
  std::unordered_map<const LExpr *, uint64_t> Memo;
  std::vector<std::pair<const LExprRef *, bool>> Stack;
  Stack.push_back({&E, false});
  while (!Stack.empty()) {
    auto [Cur, ChildrenDone] = Stack.back();
    const LExpr &N = **Cur;
    if (N.StableHash != 0 || Memo.count(&N)) {
      Stack.pop_back();
      continue;
    }
    if (!ChildrenDone) {
      Stack.back().second = true;
      for (const LExprRef &A : N.Args)
        Stack.push_back({&A, false});
      continue;
    }
    Stack.pop_back();
    Fnv1a H;
    H.u64(static_cast<uint64_t>(N.Op));
    H.u64(static_cast<uint64_t>(N.ExprSort));
    H.str(N.Name);
    H.i64(N.IntVal);
    H.u64(N.Args.size());
    for (const LExprRef &A : N.Args) {
      auto It = Memo.find(A.get());
      H.u64(It != Memo.end() ? It->second : A->StableHash);
    }
    Memo.emplace(&N, H.digest());
  }
  auto It = Memo.find(E.get());
  return It != Memo.end() ? It->second : E->StableHash;
}

LExprRef vir::substitute(const LExprRef &E,
                         const std::map<std::string, LExprRef> &Map) {
  if (E->Op == LOp::Var) {
    auto It = Map.find(E->Name);
    if (It == Map.end())
      return E;
    assert(It->second->sort() == E->sort() &&
           "substitution changes the sort of a variable");
    return It->second;
  }
  if (E->Args.empty())
    return E;
  if (E->Op == LOp::Forall) {
    // Bound variables shadow the substitution.
    std::map<std::string, LExprRef> Inner = Map;
    for (size_t I = 0, N = E->Args.size() - 1; I != N; ++I)
      Inner.erase(E->Args[I]->Name);
    LExprRef NewBody = substitute(E->Args.back(), Inner);
    if (NewBody.get() == E->Args.back().get())
      return E;
    std::vector<LExprRef> Bound(E->Args.begin(), E->Args.end() - 1);
    return mkForall(std::move(Bound), std::move(NewBody));
  }
  bool Changed = false;
  std::vector<LExprRef> NewArgs;
  NewArgs.reserve(E->Args.size());
  for (const LExprRef &A : E->Args) {
    LExprRef NA = substitute(A, Map);
    Changed |= NA.get() != A.get();
    NewArgs.push_back(std::move(NA));
  }
  if (!Changed)
    return E;
  return rebuild(E, std::move(NewArgs));
}

LExprRef vir::rebuild(const LExprRef &E, std::vector<LExprRef> NewArgs) {
  return arena().intern(E->Op, E->ExprSort, E->Name, E->IntVal,
                        std::move(NewArgs));
}

LExprRef vir::internRaw(LOp Op, Sort S, std::string Name, int64_t IntVal,
                        std::vector<LExprRef> Args) {
  return arena().intern(Op, S, std::move(Name), IntVal, std::move(Args));
}

void vir::visit(const LExprRef &E,
                const std::function<void(const LExpr &)> &Fn) {
  Fn(*E);
  for (const LExprRef &A : E->Args)
    visit(A, Fn);
}

static const char *opName(LOp Op) {
  switch (Op) {
  case LOp::Var:
    return "var";
  case LOp::IntConst:
    return "int";
  case LOp::BoolConst:
    return "bool";
  case LOp::NilConst:
    return "nil";
  case LOp::And:
    return "and";
  case LOp::Or:
    return "or";
  case LOp::Not:
    return "not";
  case LOp::Implies:
    return "=>";
  case LOp::Ite:
    return "ite";
  case LOp::Eq:
    return "=";
  case LOp::IntLt:
    return "<";
  case LOp::IntLe:
    return "<=";
  case LOp::IntAdd:
    return "+";
  case LOp::IntSub:
    return "-";
  case LOp::Select:
    return "select";
  case LOp::Store:
    return "store";
  case LOp::EmptySet:
    return "empty";
  case LOp::Singleton:
    return "single";
  case LOp::Union:
    return "union";
  case LOp::Inter:
    return "inter";
  case LOp::Minus:
    return "setminus";
  case LOp::Member:
    return "member";
  case LOp::Subset:
    return "subset";
  case LOp::SetLeSet:
    return "set<=set";
  case LOp::SetLtSet:
    return "set<set";
  case LOp::SetLeInt:
    return "set<=int";
  case LOp::SetLtInt:
    return "set<int";
  case LOp::IntLeSet:
    return "int<=set";
  case LOp::IntLtSet:
    return "int<set";
  case LOp::FuncApp:
    return "app";
  case LOp::Forall:
    return "forall";
  }
  return "?";
}

std::string LExpr::str() const {
  switch (Op) {
  case LOp::Var:
    return Name;
  case LOp::IntConst:
    return std::to_string(IntVal);
  case LOp::BoolConst:
    return IntVal ? "true" : "false";
  case LOp::NilConst:
    return "nil";
  case LOp::FuncApp: {
    std::string Out = "(" + Name;
    for (const LExprRef &A : Args) {
      Out += ' ';
      Out += A->str();
    }
    Out += ')';
    return Out;
  }
  case LOp::EmptySet:
    return std::string("(empty ") + sortName(ExprSort) + ")";
  default: {
    std::string Out = std::string("(") + opName(Op);
    for (const LExprRef &A : Args) {
      Out += ' ';
      Out += A->str();
    }
    Out += ')';
    return Out;
  }
  }
}
