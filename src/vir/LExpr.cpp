//===- LExpr.cpp - Logical expressions of the verification IR -------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/LExpr.h"

#include <cassert>

using namespace vcdryad;
using namespace vcdryad::vir;

static LExprRef makeNode(LOp Op, Sort S, std::vector<LExprRef> Args) {
  auto Node = std::make_shared<LExpr>(Op, S);
  Node->Args = std::move(Args);
  return Node;
}

LExprRef vir::mkVar(std::string Name, Sort S) {
  auto Node = std::make_shared<LExpr>(LOp::Var, S);
  Node->Name = std::move(Name);
  return Node;
}

LExprRef vir::mkInt(int64_t V) {
  auto Node = std::make_shared<LExpr>(LOp::IntConst, Sort::Int);
  Node->IntVal = V;
  return Node;
}

LExprRef vir::mkBool(bool B) {
  auto Node = std::make_shared<LExpr>(LOp::BoolConst, Sort::Bool);
  Node->IntVal = B ? 1 : 0;
  return Node;
}

LExprRef vir::mkNil() {
  return std::make_shared<LExpr>(LOp::NilConst, Sort::Loc);
}

LExprRef vir::mkAnd(std::vector<LExprRef> Conjuncts) {
  for ([[maybe_unused]] const LExprRef &C : Conjuncts)
    assert(C->sort() == Sort::Bool && "non-boolean conjunct");
  if (Conjuncts.empty())
    return mkBool(true);
  if (Conjuncts.size() == 1)
    return Conjuncts.front();
  return makeNode(LOp::And, Sort::Bool, std::move(Conjuncts));
}

LExprRef vir::mkAnd(LExprRef A, LExprRef B) {
  return mkAnd(std::vector<LExprRef>{std::move(A), std::move(B)});
}

LExprRef vir::mkOr(std::vector<LExprRef> Disjuncts) {
  for ([[maybe_unused]] const LExprRef &D : Disjuncts)
    assert(D->sort() == Sort::Bool && "non-boolean disjunct");
  if (Disjuncts.empty())
    return mkBool(false);
  if (Disjuncts.size() == 1)
    return Disjuncts.front();
  return makeNode(LOp::Or, Sort::Bool, std::move(Disjuncts));
}

LExprRef vir::mkOr(LExprRef A, LExprRef B) {
  return mkOr(std::vector<LExprRef>{std::move(A), std::move(B)});
}

LExprRef vir::mkNot(LExprRef A) {
  assert(A->sort() == Sort::Bool && "negating non-boolean");
  return makeNode(LOp::Not, Sort::Bool, {std::move(A)});
}

LExprRef vir::mkImplies(LExprRef A, LExprRef B) {
  assert(A->sort() == Sort::Bool && B->sort() == Sort::Bool);
  return makeNode(LOp::Implies, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkIte(LExprRef C, LExprRef T, LExprRef E) {
  assert(C->sort() == Sort::Bool && T->sort() == E->sort());
  Sort S = T->sort();
  return makeNode(LOp::Ite, S, {std::move(C), std::move(T), std::move(E)});
}

LExprRef vir::mkEq(LExprRef A, LExprRef B) {
  assert(A->sort() == B->sort() && "equality between different sorts");
  return makeNode(LOp::Eq, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkNe(LExprRef A, LExprRef B) {
  return mkNot(mkEq(std::move(A), std::move(B)));
}

static LExprRef mkIntRel(LOp Op, LExprRef A, LExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int);
  return makeNode(Op, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkIntLt(LExprRef A, LExprRef B) {
  return mkIntRel(LOp::IntLt, std::move(A), std::move(B));
}
LExprRef vir::mkIntLe(LExprRef A, LExprRef B) {
  return mkIntRel(LOp::IntLe, std::move(A), std::move(B));
}

static LExprRef mkIntArith(LOp Op, LExprRef A, LExprRef B) {
  assert(A->sort() == Sort::Int && B->sort() == Sort::Int);
  return makeNode(Op, Sort::Int, {std::move(A), std::move(B)});
}

LExprRef vir::mkIntAdd(LExprRef A, LExprRef B) {
  return mkIntArith(LOp::IntAdd, std::move(A), std::move(B));
}
LExprRef vir::mkIntSub(LExprRef A, LExprRef B) {
  return mkIntArith(LOp::IntSub, std::move(A), std::move(B));
}

LExprRef vir::mkSelect(LExprRef Array, LExprRef Loc) {
  Sort AS = Array->sort();
  assert((AS == Sort::ArrLocLoc || AS == Sort::ArrLocInt) &&
         "select from non-field-array");
  assert(Loc->sort() == Sort::Loc);
  return makeNode(LOp::Select, elementSort(AS),
                  {std::move(Array), std::move(Loc)});
}

LExprRef vir::mkStore(LExprRef Array, LExprRef Loc, LExprRef Value) {
  Sort AS = Array->sort();
  assert((AS == Sort::ArrLocLoc || AS == Sort::ArrLocInt) &&
         "store into non-field-array");
  assert(Loc->sort() == Sort::Loc);
  assert(Value->sort() == elementSort(AS) && "store of wrong element sort");
  return makeNode(LOp::Store, AS,
                  {std::move(Array), std::move(Loc), std::move(Value)});
}

LExprRef vir::mkEmptySet(Sort SetSort) {
  assert(isSetSort(SetSort));
  return makeNode(LOp::EmptySet, SetSort, {});
}

LExprRef vir::mkSingleton(LExprRef Elem, Sort SetSort) {
  assert(isSetSort(SetSort) && Elem->sort() == elementSort(SetSort));
  return makeNode(LOp::Singleton, SetSort, {std::move(Elem)});
}

static LExprRef mkSetBin(LOp Op, LExprRef A, LExprRef B) {
  assert(A->sort() == B->sort() && isSetSort(A->sort()) &&
         "set operation on mismatched sorts");
  Sort S = A->sort();
  return makeNode(Op, S, {std::move(A), std::move(B)});
}

LExprRef vir::mkUnion(LExprRef A, LExprRef B) {
  return mkSetBin(LOp::Union, std::move(A), std::move(B));
}
LExprRef vir::mkInter(LExprRef A, LExprRef B) {
  return mkSetBin(LOp::Inter, std::move(A), std::move(B));
}
LExprRef vir::mkMinus(LExprRef A, LExprRef B) {
  return mkSetBin(LOp::Minus, std::move(A), std::move(B));
}

LExprRef vir::mkMember(LExprRef Elem, LExprRef Set) {
  assert(isSetSort(Set->sort()) &&
         Elem->sort() == elementSort(Set->sort()));
  return makeNode(LOp::Member, Sort::Bool, {std::move(Elem), std::move(Set)});
}

LExprRef vir::mkSubset(LExprRef A, LExprRef B) {
  assert(A->sort() == B->sort() && isSetSort(A->sort()));
  return makeNode(LOp::Subset, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkDisjoint(LExprRef A, LExprRef B) {
  Sort S = A->sort();
  return mkEq(mkInter(std::move(A), std::move(B)), mkEmptySet(S));
}

LExprRef vir::mkSetCmp(LOp Op, LExprRef A, LExprRef B) {
  switch (Op) {
  case LOp::SetLeSet:
  case LOp::SetLtSet:
    assert((A->sort() == Sort::SetInt || A->sort() == Sort::MSetInt) &&
           (B->sort() == Sort::SetInt || B->sort() == Sort::MSetInt));
    break;
  case LOp::SetLeInt:
  case LOp::SetLtInt:
    assert((A->sort() == Sort::SetInt || A->sort() == Sort::MSetInt) &&
           B->sort() == Sort::Int);
    break;
  case LOp::IntLeSet:
  case LOp::IntLtSet:
    assert(A->sort() == Sort::Int &&
           (B->sort() == Sort::SetInt || B->sort() == Sort::MSetInt));
    break;
  default:
    assert(false && "not a set comparison operator");
  }
  return makeNode(Op, Sort::Bool, {std::move(A), std::move(B)});
}

LExprRef vir::mkApp(std::string Name, Sort RetSort,
                    std::vector<LExprRef> Args) {
  auto Node = std::make_shared<LExpr>(LOp::FuncApp, RetSort);
  Node->Name = std::move(Name);
  Node->Args = std::move(Args);
  return Node;
}

LExprRef vir::mkForall(std::vector<LExprRef> BoundVars, LExprRef Body) {
  assert(Body->sort() == Sort::Bool && "quantified body must be boolean");
  for ([[maybe_unused]] const LExprRef &V : BoundVars)
    assert(V->isVar() && "bound names must be variables");
  std::vector<LExprRef> Args = std::move(BoundVars);
  Args.push_back(std::move(Body));
  return makeNode(LOp::Forall, Sort::Bool, std::move(Args));
}

bool vir::structurallyEqual(const LExprRef &A, const LExprRef &B) {
  if (A.get() == B.get())
    return true;
  if (A->Op != B->Op || A->ExprSort != B->ExprSort || A->Name != B->Name ||
      A->IntVal != B->IntVal || A->Args.size() != B->Args.size())
    return false;
  for (size_t I = 0, E = A->Args.size(); I != E; ++I)
    if (!structurallyEqual(A->Args[I], B->Args[I]))
      return false;
  return true;
}

LExprRef vir::substitute(const LExprRef &E,
                         const std::map<std::string, LExprRef> &Map) {
  if (E->Op == LOp::Var) {
    auto It = Map.find(E->Name);
    if (It == Map.end())
      return E;
    assert(It->second->sort() == E->sort() &&
           "substitution changes the sort of a variable");
    return It->second;
  }
  if (E->Args.empty())
    return E;
  if (E->Op == LOp::Forall) {
    // Bound variables shadow the substitution.
    std::map<std::string, LExprRef> Inner = Map;
    for (size_t I = 0, N = E->Args.size() - 1; I != N; ++I)
      Inner.erase(E->Args[I]->Name);
    LExprRef NewBody = substitute(E->Args.back(), Inner);
    if (NewBody.get() == E->Args.back().get())
      return E;
    std::vector<LExprRef> Bound(E->Args.begin(), E->Args.end() - 1);
    return mkForall(std::move(Bound), std::move(NewBody));
  }
  bool Changed = false;
  std::vector<LExprRef> NewArgs;
  NewArgs.reserve(E->Args.size());
  for (const LExprRef &A : E->Args) {
    LExprRef NA = substitute(A, Map);
    Changed |= NA.get() != A.get();
    NewArgs.push_back(std::move(NA));
  }
  if (!Changed)
    return E;
  auto Node = std::make_shared<LExpr>(E->Op, E->ExprSort);
  Node->Name = E->Name;
  Node->IntVal = E->IntVal;
  Node->Args = std::move(NewArgs);
  return Node;
}

void vir::visit(const LExprRef &E,
                const std::function<void(const LExpr &)> &Fn) {
  Fn(*E);
  for (const LExprRef &A : E->Args)
    visit(A, Fn);
}

static const char *opName(LOp Op) {
  switch (Op) {
  case LOp::Var:
    return "var";
  case LOp::IntConst:
    return "int";
  case LOp::BoolConst:
    return "bool";
  case LOp::NilConst:
    return "nil";
  case LOp::And:
    return "and";
  case LOp::Or:
    return "or";
  case LOp::Not:
    return "not";
  case LOp::Implies:
    return "=>";
  case LOp::Ite:
    return "ite";
  case LOp::Eq:
    return "=";
  case LOp::IntLt:
    return "<";
  case LOp::IntLe:
    return "<=";
  case LOp::IntAdd:
    return "+";
  case LOp::IntSub:
    return "-";
  case LOp::Select:
    return "select";
  case LOp::Store:
    return "store";
  case LOp::EmptySet:
    return "empty";
  case LOp::Singleton:
    return "single";
  case LOp::Union:
    return "union";
  case LOp::Inter:
    return "inter";
  case LOp::Minus:
    return "setminus";
  case LOp::Member:
    return "member";
  case LOp::Subset:
    return "subset";
  case LOp::SetLeSet:
    return "set<=set";
  case LOp::SetLtSet:
    return "set<set";
  case LOp::SetLeInt:
    return "set<=int";
  case LOp::SetLtInt:
    return "set<int";
  case LOp::IntLeSet:
    return "int<=set";
  case LOp::IntLtSet:
    return "int<set";
  case LOp::FuncApp:
    return "app";
  case LOp::Forall:
    return "forall";
  }
  return "?";
}

std::string LExpr::str() const {
  switch (Op) {
  case LOp::Var:
    return Name;
  case LOp::IntConst:
    return std::to_string(IntVal);
  case LOp::BoolConst:
    return IntVal ? "true" : "false";
  case LOp::NilConst:
    return "nil";
  case LOp::FuncApp: {
    std::string Out = "(" + Name;
    for (const LExprRef &A : Args) {
      Out += ' ';
      Out += A->str();
    }
    Out += ')';
    return Out;
  }
  case LOp::EmptySet:
    return std::string("(empty ") + sortName(ExprSort) + ")";
  default: {
    std::string Out = std::string("(") + opName(Op);
    for (const LExprRef &A : Args) {
      Out += ' ';
      Out += A->str();
    }
    Out += ')';
    return Out;
  }
  }
}
