//===- WpGen.h - Verification condition generation --------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates one verification condition per assert from a *passive*
/// procedure. Because passive programs contain no assignments, the
/// reachable-state predicate at each point is the accumulated assume
/// structure (conjunctions along a block, disjunction at if-joins);
/// the VC for an assert is "reach-guard implies condition". Earlier
/// asserts are assumed when checking later ones, as in Boogie. All
/// formulas share subterms through the LExpr DAG, so the total VC size
/// stays linear in the program.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VIR_WPGEN_H
#define VCDRYAD_VIR_WPGEN_H

#include "vir/Vir.h"

namespace vcdryad {
namespace vir {

/// One proof obligation: \p Guard must entail \p Cond.
struct VC {
  LExprRef Guard;
  LExprRef Cond;
  std::string Reason;
  SourceLoc Loc;

  /// The guard as the flat conjunct vector VC generation accumulated
  /// it from. Obligations of one function share a common prefix here
  /// (assumes are appended in program order), which the incremental
  /// solver sessions exploit. Guard == mkAnd(Conjuncts) always.
  std::vector<LExprRef> Conjuncts;

  /// Indices into Conjuncts that are in the cone of influence of
  /// Cond (set by preprocessVCs when slicing is on; otherwise all
  /// indices). Checking only these conjuncts *weakens* the guard, so
  /// a Valid answer under the slice implies Valid under the full
  /// guard; a non-Valid answer must be re-checked unsliced.
  std::vector<uint32_t> Sliced;

  /// True once preprocessVCs has simplified this obligation and
  /// populated Sliced.
  bool Preprocessed = false;

  /// The single formula whose *unsatisfiability* establishes the VC.
  LExprRef negated() const { return mkAnd(Guard, mkNot(Cond)); }

  /// The guard restricted to the sliced conjuncts (== Guard when not
  /// preprocessed or when slicing kept everything).
  LExprRef slicedGuard() const {
    if (!Preprocessed || Sliced.size() == Conjuncts.size())
      return Guard;
    std::vector<LExprRef> Kept;
    Kept.reserve(Sliced.size());
    for (uint32_t I : Sliced)
      Kept.push_back(Conjuncts[I]);
    return mkAnd(std::move(Kept));
  }
};

/// Extracts the proof obligations of a passive procedure, in program
/// order. The procedure must not contain Assign or Havoc.
std::vector<VC> generateVCs(const Procedure &Passive);

} // namespace vir
} // namespace vcdryad

#endif // VCDRYAD_VIR_WPGEN_H
