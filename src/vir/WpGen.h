//===- WpGen.h - Verification condition generation --------------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates one verification condition per assert from a *passive*
/// procedure. Because passive programs contain no assignments, the
/// reachable-state predicate at each point is the accumulated assume
/// structure (conjunctions along a block, disjunction at if-joins);
/// the VC for an assert is "reach-guard implies condition". Earlier
/// asserts are assumed when checking later ones, as in Boogie. All
/// formulas share subterms through the LExpr DAG, so the total VC size
/// stays linear in the program.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_VIR_WPGEN_H
#define VCDRYAD_VIR_WPGEN_H

#include "vir/Vir.h"

namespace vcdryad {
namespace vir {

/// One proof obligation: \p Guard must entail \p Cond.
struct VC {
  LExprRef Guard;
  LExprRef Cond;
  std::string Reason;
  SourceLoc Loc;

  /// The single formula whose *unsatisfiability* establishes the VC.
  LExprRef negated() const { return mkAnd(Guard, mkNot(Cond)); }
};

/// Extracts the proof obligations of a passive procedure, in program
/// order. The procedure must not contain Assign or Havoc.
std::vector<VC> generateVCs(const Procedure &Passive);

} // namespace vir
} // namespace vcdryad

#endif // VCDRYAD_VIR_WPGEN_H
