//===- Slice.cpp - Cone-of-influence obligation slicing --------------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "vir/Slice.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

using namespace vcdryad;
using namespace vcdryad::vir;

namespace {

/// Collects the symbols of \p E: variable names as-is, uninterpreted
/// function names tagged with a prefix no identifier can carry.
/// Function names count as symbols because two conjuncts can interact
/// purely through a function's interpretation (e.g. a ground fact
/// about sll(nil) and a goal unfolding sll at a variable).
void collectSymbols(const LExprRef &E,
                    std::unordered_set<std::string> &Out) {
  std::unordered_set<const LExpr *> Visited;
  std::vector<const LExpr *> Stack{E.get()};
  while (!Stack.empty()) {
    const LExpr *N = Stack.back();
    Stack.pop_back();
    if (!Visited.insert(N).second)
      continue;
    if (N->Op == LOp::Var)
      Out.insert(N->Name);
    else if (N->Op == LOp::FuncApp)
      Out.insert("\x01" + N->Name);
    for (const LExprRef &A : N->Args)
      Stack.push_back(A.get());
  }
}

} // namespace

std::vector<uint32_t>
vir::sliceConjuncts(const std::vector<LExprRef> &Conjuncts,
                    const LExprRef &Goal) {
  size_t N = Conjuncts.size();
  std::vector<std::unordered_set<std::string>> ConjSyms(N);
  std::unordered_map<std::string, std::vector<uint32_t>> SymToConj;
  for (size_t I = 0; I != N; ++I) {
    collectSymbols(Conjuncts[I], ConjSyms[I]);
    for (const std::string &S : ConjSyms[I])
      SymToConj[S].push_back(static_cast<uint32_t>(I));
  }

  std::vector<char> Included(N, 0);
  std::unordered_set<std::string> Reached;
  std::vector<std::string> Worklist;
  collectSymbols(Goal, Reached);
  Worklist.assign(Reached.begin(), Reached.end());

  // Ground conjuncts are kept unconditionally (see header).
  for (size_t I = 0; I != N; ++I)
    if (ConjSyms[I].empty())
      Included[I] = 1;

  while (!Worklist.empty()) {
    std::string Sym = std::move(Worklist.back());
    Worklist.pop_back();
    auto It = SymToConj.find(Sym);
    if (It == SymToConj.end())
      continue;
    for (uint32_t Idx : It->second) {
      if (Included[Idx])
        continue;
      Included[Idx] = 1;
      for (const std::string &S : ConjSyms[Idx])
        if (Reached.insert(S).second)
          Worklist.push_back(S);
    }
  }

  std::vector<uint32_t> Result;
  for (uint32_t I = 0; I != N; ++I)
    if (Included[I])
      Result.push_back(I);
  return Result;
}
