//===- Manifest.h - Persisted incremental-verification manifest -*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The build-system ledger of incremental re-verification: a versioned
/// on-disk map from function keys (smt::hashFunctionKey — content
/// fingerprint x pipeline/solver options) to the function's per-VC
/// obligation hashes and annotation counts, recorded only when every
/// obligation was Valid. On a later run a function whose key is
/// present is discharged as unchanged without instrumentation, VC
/// generation or any solver traffic; any edit to the function, to a
/// spec it transitively depends on, or to the options invalidates the
/// key and forces a full re-verify of exactly the affected functions.
///
/// Soundness: only all-Valid functions are ever recorded, so a skip
/// can only ever replay a Valid verdict. Invalid and Unknown outcomes
/// re-verify every run (mirroring ProofCache's persistence policy),
/// keeping warm verdicts identical to cold ones.
///
/// Disk layout (`<dir>/manifest-v1.txt`, beside the proof cache):
///   one entry per line, key-sorted:
///     "<16-hex key> V <name> <manual> <ghost> <n> <vc-hash>*"
/// The format version is part of the file name, so format bumps
/// invalidate cleanly. Duplicate keys dedupe on load, last write wins;
/// flush compacts to one line per key.
///
/// The store is written with the same two-layer durability discipline
/// as ProofCache: record() immediately commits the entry line to a
/// write-ahead journal (manifest-v1.txt.wal, see Journal.h), and
/// flush() *compacts* — advisory flock on a sidecar lock file, merge
/// of entries a sibling persisted since our load (snapshot and
/// journal), temp file + rename(2) over the store, journal truncate.
/// A kill -9 after record() returns can therefore never lose the
/// entry; legacy stores without a journal load unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_MANIFEST_H
#define VCDRYAD_SERVICE_MANIFEST_H

#include "service/Journal.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace vcdryad {
namespace service {

/// One recorded function: everything a skipped re-run needs to report
/// the function without re-planning it.
struct ManifestEntry {
  std::string Name;            ///< Function name (provenance).
  unsigned Manual = 0;         ///< Manual annotation count.
  unsigned Ghost = 0;          ///< Ghost annotation count.
  std::vector<uint64_t> VcKeys; ///< Canonical per-VC cache keys.
};

struct ManifestStats {
  uint64_t Hits = 0;    ///< lookup() found an entry.
  uint64_t Misses = 0;  ///< lookup() found nothing.
  uint64_t Records = 0; ///< New entries accepted this session.
};

class VcManifest {
public:
  /// In-memory-only manifest (no persistence).
  VcManifest() = default;

  /// Opens (creating if needed) the on-disk manifest under \p Dir and
  /// loads existing entries. IO failures degrade to in-memory-only
  /// operation; openError() reports them.
  explicit VcManifest(std::string Dir);

  ~VcManifest();

  /// Persists entries added since the last flush by atomically
  /// replacing the store with the union of this manifest and the
  /// current on-disk entries, under an advisory lock. One line per
  /// key after any number of flush cycles.
  void flush();

  /// The recorded entry for \p Key, if any.
  std::optional<ManifestEntry> lookup(uint64_t Key);

  /// lookup() without touching the hit/miss statistics — for report
  /// aggregation re-reading an entry a lookup() already counted.
  std::optional<ManifestEntry> peek(uint64_t Key) const;

  /// Records an all-Valid function under \p Key. Re-recording an
  /// existing key refreshes the entry (last write wins).
  void record(uint64_t Key, ManifestEntry E);

  ManifestStats stats() const;
  size_t size() const;

  const std::string &dir() const { return Dir; }
  const std::string &openError() const { return OpenError; }

  /// The store file this manifest persists to (empty when in-memory).
  std::string storePath() const;

  /// Entries recovered from the write-ahead journal at open (records
  /// a crashed sibling committed but never compacted).
  size_t journalRecovered() const { return JournalRecovered; }
  /// Current journal size in bytes (durable-but-uncompacted state).
  uint64_t journalBytes() const;

private:
  struct Entry {
    ManifestEntry E;
    bool Dirty = false; ///< Not yet in the snapshot.
  };

  mutable std::mutex Mu;
  std::string Dir; ///< Empty: in-memory only.
  std::string OpenError;
  std::map<uint64_t, Entry> Entries; ///< Ordered: flush writes sorted.
  ManifestStats Stats;
  Journal Wal;
  size_t JournalRecovered = 0;
};

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_MANIFEST_H
