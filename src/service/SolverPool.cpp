//===- SolverPool.cpp - Supervised out-of-process solver pool --------------==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//

#include "service/SolverPool.h"

#include "smt/Worker.h"
#include "smt/WorkerProto.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

extern char **environ;

using namespace vcdryad;
using namespace vcdryad::service;

namespace {

/// Z3 touches global parameter tables on first-context construction;
/// in-process fallback solvers can be created from any worker thread
/// at any time, so creation is serialized here (the scheduler's own
/// CreateMu only covers its call sites).
std::mutex InProcCreateMu;

std::unique_ptr<smt::SmtSolver> makeInProcess(const smt::SolverOptions &SO) {
  std::lock_guard<std::mutex> L(InProcCreateMu);
  return smt::createZ3Solver(SO);
}

/// How a worker round trip can fail, classified for the verdict.
struct Death {
  smt::CheckStatus Status = smt::CheckStatus::Crashed;
  std::string Detail;
  bool Interrupted = false;
};

//===----------------------------------------------------------------------===//
// IsolatedSolver
//===----------------------------------------------------------------------===//

/// One solver slot backed by a worker process. Single-threaded like
/// every SmtSolver (interrupt() excepted); respawns its worker on
/// demand through the pool's supervision policy.
class IsolatedSolver : public smt::SmtSolver {
public:
  IsolatedSolver(SolverPool &Pool, smt::SolverOptions SO)
      : Pool(Pool), Opts(std::move(SO)) {
    // The factory handle must not outlive into the child options (it
    // is not serialized, and the worker must never recurse into us).
    Opts.MakeSolver = nullptr;
  }

  ~IsolatedSolver() override { killChild(false); }

  smt::CheckResult checkValid(const vir::LExprRef &Guard,
                              const vir::LExprRef &Goal) override {
    if (InProc)
      return InProc->checkValid(Guard, Goal);
    // Mirrors the in-process contract: checkValid ends any session.
    SessionOpen = SessionDead = false;
    Death Last;
    for (unsigned Attempt = 0; Attempt <= 1; ++Attempt) {
      if (Attempt == 1)
        Pool.noteRetry();
      if (!ensureWorker(/*ForRetry=*/Attempt == 1)) {
        fallbackLocal();
        return InProc->checkValid(Guard, Goal);
      }
      std::string Req;
      smt::packCheckValid(Req, Guard, Goal);
      std::string Resp;
      wire::MsgType RespType;
      smt::PipeStatus PS = roundTrip(wire::MsgType::WkCheckValid, Req,
                                     solveDeadlineMs(Opts.TimeoutMs),
                                     RespType, Resp);
      if (PS == smt::PipeStatus::Ok && RespType == wire::MsgType::WkResult) {
        smt::CheckResult R;
        size_t Pos = 0;
        if (smt::unpackResult(Resp, Pos, R)) {
          R.Retries = Attempt;
          return R;
        }
        PS = smt::PipeStatus::Malformed;
      }
      Last = handleDeath(PS);
      if (Last.Interrupted) {
        smt::CheckResult R;
        R.Status = smt::CheckStatus::Unknown;
        R.Detail = "interrupted";
        return R;
      }
    }
    smt::CheckResult R;
    R.Status = Last.Status;
    R.Detail = Last.Detail + " (after 1 retry)";
    R.Retries = 1;
    return R;
  }

  std::string toSmtLib(const vir::LExprRef &Guard,
                       const vir::LExprRef &Goal) override {
    // Debug-only path; no reason to ship it over the pipe.
    if (InProc)
      return InProc->toSmtLib(Guard, Goal);
    return makeInProcess(Opts)->toSmtLib(Guard, Goal);
  }

  void beginSession(const std::vector<vir::LExprRef> &Prefix,
                    unsigned TimeoutMs) override {
    if (InProc)
      return InProc->beginSession(Prefix, TimeoutMs);
    SessionOpen = true;
    SessionDead = false;
    SessionTimeoutMs = smt::resolveTimeout(TimeoutMs, Opts.TimeoutMs);
    if (!ensureWorker(false)) {
      // No worker and no slot: the session is stillborn; every
      // checkSession reports Unknown and the ladder escalates.
      SessionDead = true;
      return;
    }
    std::string Req;
    smt::packBeginSession(Req, TimeoutMs, Prefix);
    std::string Resp;
    wire::MsgType RespType;
    smt::PipeStatus PS =
        roundTrip(wire::MsgType::WkBeginSession, Req,
                  static_cast<int>(Pool.options().ControlTimeoutMs),
                  RespType, Resp);
    if (PS != smt::PipeStatus::Ok || RespType != wire::MsgType::WkOk) {
      handleDeath(PS);
      SessionDead = true;
    }
  }

  smt::CheckResult checkSession(const std::vector<vir::LExprRef> &Extra,
                                const vir::LExprRef &Goal) override {
    if (InProc)
      return InProc->checkSession(Extra, Goal);
    smt::CheckResult R;
    if (!SessionOpen || SessionDead || Pid < 0) {
      R.Detail = "no active session";
      return R;
    }
    std::string Req;
    smt::packCheckSession(Req, Extra, Goal);
    std::string Resp;
    wire::MsgType RespType;
    smt::PipeStatus PS =
        roundTrip(wire::MsgType::WkCheckSession, Req,
                  solveDeadlineMs(SessionTimeoutMs), RespType, Resp);
    if (PS == smt::PipeStatus::Ok && RespType == wire::MsgType::WkResult) {
      size_t Pos = 0;
      if (smt::unpackResult(Resp, Pos, R))
        return R;
      PS = smt::PipeStatus::Malformed;
    }
    // A death mid-session is not retried here: the session state died
    // with the worker. The escalation ladder re-proves this VC at
    // full budget in a fresh worker — that is the bounded retry.
    Death D = handleDeath(PS);
    SessionDead = true;
    R.Status = D.Interrupted ? smt::CheckStatus::Unknown : D.Status;
    R.Detail = D.Interrupted ? "interrupted" : D.Detail;
    return R;
  }

  void endSession() override {
    if (InProc)
      return InProc->endSession();
    if (SessionOpen && !SessionDead && Pid >= 0) {
      std::string Resp;
      wire::MsgType RespType;
      smt::PipeStatus PS =
          roundTrip(wire::MsgType::WkEndSession, {},
                    static_cast<int>(Pool.options().ControlTimeoutMs),
                    RespType, Resp);
      if (PS != smt::PipeStatus::Ok)
        handleDeath(PS);
    }
    SessionOpen = SessionDead = false;
  }

  void beginSharedSession(unsigned TimeoutMs) override {
    if (InProc)
      return InProc->beginSharedSession(TimeoutMs);
    SessionOpen = true;
    SessionDead = false;
    SessionTimeoutMs = smt::resolveTimeout(TimeoutMs, Opts.TimeoutMs);
    if (!ensureWorker(false)) {
      SessionDead = true;
      return;
    }
    std::string Req;
    wire::packU32(Req, TimeoutMs);
    std::string Resp;
    wire::MsgType RespType;
    smt::PipeStatus PS =
        roundTrip(wire::MsgType::WkBeginShared, Req,
                  static_cast<int>(Pool.options().ControlTimeoutMs),
                  RespType, Resp);
    if (PS != smt::PipeStatus::Ok || RespType != wire::MsgType::WkOk) {
      handleDeath(PS);
      SessionDead = true;
    }
  }

  bool pushSessionScope(const std::vector<vir::LExprRef> &Prefix) override {
    if (InProc)
      return InProc->pushSessionScope(Prefix);
    if (!SessionOpen || SessionDead || Pid < 0)
      return false;
    std::string Req;
    smt::packExprDag(Req, Prefix);
    std::string Resp;
    wire::MsgType RespType;
    smt::PipeStatus PS =
        roundTrip(wire::MsgType::WkPushScope, Req,
                  static_cast<int>(Pool.options().ControlTimeoutMs),
                  RespType, Resp);
    if (PS == smt::PipeStatus::Ok && RespType == wire::MsgType::WkBool) {
      size_t Pos = 0;
      uint8_t Ok = 0;
      if (wire::unpackU8(Resp, Pos, Ok))
        return Ok != 0;
      PS = smt::PipeStatus::Malformed;
    }
    handleDeath(PS);
    SessionDead = true;
    return false;
  }

  void popSessionScope() override {
    if (InProc)
      return InProc->popSessionScope();
    if (!SessionOpen || SessionDead || Pid < 0)
      return;
    std::string Resp;
    wire::MsgType RespType;
    smt::PipeStatus PS =
        roundTrip(wire::MsgType::WkPopScope, {},
                  static_cast<int>(Pool.options().ControlTimeoutMs),
                  RespType, Resp);
    if (PS != smt::PipeStatus::Ok || RespType != wire::MsgType::WkOk) {
      handleDeath(PS);
      SessionDead = true;
    }
  }

  void interrupt() override {
    InterruptFlag.store(true, std::memory_order_relaxed);
    if (InProc)
      return InProc->interrupt();
    std::lock_guard<std::mutex> L(PidMu);
    if (Pid >= 0)
      ::kill(Pid, SIGKILL); // The blocked round trip sees EOF.
  }

private:
  /// Wall-clock deadline for a solving round trip: solver budget plus
  /// watchdog grace; an unlimited budget disables the watchdog (EOF
  /// still detects deaths instantly).
  int solveDeadlineMs(unsigned BudgetMs) const {
    if (BudgetMs == 0)
      return -1;
    return static_cast<int>(BudgetMs + Pool.options().WatchdogGraceMs);
  }

  bool ensureWorker(bool ForRetry) {
    if (Pid >= 0)
      return true;
    if (!Pool.reserveSlot())
      return false;
    unsigned Delay = Pool.backoffDelayMs(ConsecutiveSpawnFailures);
    if (Delay > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
    if (!spawn(ForRetry) || !init()) {
      if (Pid >= 0) {
        killChild(true);
      } else {
        Pool.noteExit(true); // Slot reserved, spawn never ran.
      }
      ++ConsecutiveSpawnFailures;
      return false;
    }
    ConsecutiveSpawnFailures = 0;
    return true;
  }

  bool spawn(bool ForRetry) {
    int Req[2] = {-1, -1}, Resp[2] = {-1, -1};
    if (::pipe(Req) != 0)
      return false;
    if (::pipe(Resp) != 0) {
      ::close(Req[0]);
      ::close(Req[1]);
      return false;
    }
    std::string Bin = Pool.options().WorkerBin;
    std::string MemFlag = "--mem-mb=" + std::to_string(Pool.options().MemMb);
    std::string CpuFlag = "--cpu-s=" + std::to_string(Pool.options().CpuS);
    const char *Argv[] = {Bin.c_str(), "solve-worker", MemFlag.c_str(),
                          CpuFlag.c_str(), nullptr};
    // Retry workers get VCDRYAD_FAULT_RETRY so `-once` injected
    // faults do not re-fire; built before fork (no allocation in the
    // child between fork and exec).
    std::vector<char *> Envp;
    static char RetryVar[] = "VCDRYAD_FAULT_RETRY=1";
    if (ForRetry) {
      for (char **E = environ; *E; ++E)
        Envp.push_back(*E);
      Envp.push_back(RetryVar);
      Envp.push_back(nullptr);
    }
    pid_t Child = ::fork();
    if (Child < 0) {
      ::close(Req[0]);
      ::close(Req[1]);
      ::close(Resp[0]);
      ::close(Resp[1]);
      return false;
    }
    if (Child == 0) {
      ::dup2(Req[0], STDIN_FILENO);
      ::dup2(Resp[1], STDOUT_FILENO);
      ::close(Req[0]);
      ::close(Req[1]);
      ::close(Resp[0]);
      ::close(Resp[1]);
      if (ForRetry)
        ::execve(Bin.c_str(), const_cast<char *const *>(Argv), Envp.data());
      else
        ::execv(Bin.c_str(), const_cast<char *const *>(Argv));
      _exit(127);
    }
    ::close(Req[0]);
    ::close(Resp[1]);
    // Parent ends must not leak into later workers' children: a held
    // write end would mask a sibling's death (no EOF).
    ::fcntl(Req[1], F_SETFD, FD_CLOEXEC);
    ::fcntl(Resp[0], F_SETFD, FD_CLOEXEC);
    {
      std::lock_guard<std::mutex> L(PidMu);
      Pid = Child;
    }
    InFd = Req[1];
    OutFd = Resp[0];
    Acc.clear();
    Pool.noteSpawned();
    return true;
  }

  /// The Init handshake doubles as a liveness probe: a wrong binary
  /// (or an exec failure) answers with garbage or EOF within the
  /// control deadline and the spawn is rejected instead of hanging.
  bool init() {
    std::string Req;
    smt::packInit(Req, Opts);
    std::string Resp;
    wire::MsgType RespType;
    smt::PipeStatus PS =
        roundTrip(wire::MsgType::WkInit, Req,
                  static_cast<int>(Pool.options().ControlTimeoutMs),
                  RespType, Resp);
    return PS == smt::PipeStatus::Ok && RespType == wire::MsgType::WkOk;
  }

  smt::PipeStatus roundTrip(wire::MsgType Type, std::string_view Payload,
                            int DeadlineMs, wire::MsgType &RespType,
                            std::string &Resp) {
    smt::PipeStatus PS = smt::writeFrame(InFd, Type, Payload);
    if (PS != smt::PipeStatus::Ok)
      return PS == smt::PipeStatus::Error ? smt::PipeStatus::Eof : PS;
    return smt::readFrame(OutFd, Acc, RespType, Resp, DeadlineMs);
  }

  /// Kills/reaps the worker after a failed round trip and classifies
  /// the failure for the verdict. Also feeds flap detection.
  Death handleDeath(smt::PipeStatus PS) {
    Death D;
    bool Hung = PS == smt::PipeStatus::Timeout;
    int Status = killChild(false, /*Reap=*/true);
    if (InterruptFlag.exchange(false, std::memory_order_relaxed)) {
      D.Interrupted = true;
      Pool.noteExit(/*Unexpected=*/false);
      return D;
    }
    if (Hung) {
      D.Status = smt::CheckStatus::ResourceLimit;
      D.Detail = "solver worker hit the wall-clock watchdog";
    } else if (WIFEXITED(Status) &&
               WEXITSTATUS(Status) == smt::WorkerExitOom) {
      D.Status = smt::CheckStatus::ResourceLimit;
      D.Detail = "solver worker hit its memory limit (RLIMIT_AS)";
    } else if (WIFEXITED(Status) &&
               WEXITSTATUS(Status) == smt::WorkerExitCpuLimit) {
      D.Status = smt::CheckStatus::ResourceLimit;
      D.Detail = "solver worker hit its cpu limit (RLIMIT_CPU)";
    } else if (WIFSIGNALED(Status)) {
      D.Status = smt::CheckStatus::Crashed;
      D.Detail = "solver worker killed by signal " +
                 std::to_string(WTERMSIG(Status));
    } else {
      D.Status = smt::CheckStatus::Crashed;
      D.Detail = "solver worker exited with code " +
                 std::to_string(WIFEXITED(Status) ? WEXITSTATUS(Status)
                                                  : Status);
    }
    Pool.noteExit(/*Unexpected=*/true);
    return D;
  }

  /// Closes the pipes and reaps the child. Returns the wait status
  /// (0 when there was no child). SIGKILL first: the worker may be
  /// wedged in a solve and EOF alone would not stop it.
  int killChild(bool CountAsExit, bool Reap = false) {
    pid_t P;
    {
      std::lock_guard<std::mutex> L(PidMu);
      P = Pid;
      Pid = -1;
    }
    if (P < 0)
      return 0;
    if (InFd >= 0)
      ::close(InFd);
    if (OutFd >= 0)
      ::close(OutFd);
    InFd = OutFd = -1;
    Acc.clear();
    int Status = 0;
    ::kill(P, SIGKILL);
    while (::waitpid(P, &Status, 0) < 0 && errno == EINTR)
      ;
    (void)Reap;
    if (CountAsExit)
      Pool.noteExit(/*Unexpected=*/true);
    else if (!Reap)
      Pool.noteExit(/*Unexpected=*/false); // Destructor path.
    return Status;
  }

  void fallbackLocal() {
    if (!InProc)
      InProc = makeInProcess(Opts);
  }

  SolverPool &Pool;
  smt::SolverOptions Opts;
  std::mutex PidMu;
  pid_t Pid = -1;
  int InFd = -1;  ///< Parent writes requests here.
  int OutFd = -1; ///< Parent reads responses here.
  std::string Acc;
  unsigned SessionTimeoutMs = 0;
  bool SessionOpen = false;
  bool SessionDead = false;
  unsigned ConsecutiveSpawnFailures = 0;
  std::atomic<bool> InterruptFlag{false};
  std::unique_ptr<smt::SmtSolver> InProc;
};

} // namespace

//===----------------------------------------------------------------------===//
// SolverPool
//===----------------------------------------------------------------------===//

std::string service::resolveWorkerBin(const std::string &Explicit) {
  if (!Explicit.empty())
    return Explicit;
  if (const char *Env = std::getenv("VCDRYAD_WORKER_BIN"))
    if (*Env)
      return Env;
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return std::string();
  Buf[N] = '\0';
  return Buf;
}

SolverPool::SolverPool(PoolOptions O) : Opts(std::move(O)) {
  // Writing a request frame races the worker's death: a child whose
  // exec failed (or that just crashed) closes the pipe's read end,
  // and the parent's write must surface as EPIPE — not as a SIGPIPE
  // that kills the host process. Pipes have no MSG_NOSIGNAL, so the
  // disposition is the only guard; only replace the default one, a
  // host that installed its own handler knows what it is doing.
  struct sigaction SA;
  if (::sigaction(SIGPIPE, nullptr, &SA) == 0 &&
      SA.sa_handler == SIG_DFL) {
    SA.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &SA, nullptr);
  }
  Opts.WorkerBin = resolveWorkerBin(Opts.WorkerBin);
  if (Opts.WorkerBin.empty()) {
    std::lock_guard<std::mutex> L(Mu);
    Stats.Degraded = true;
    if (!WarnedDegraded) {
      WarnedDegraded = true;
      std::fprintf(stderr, "vcdryad: cannot resolve a solve-worker binary; "
                           "solver isolation disabled\n");
    }
  }
}

SolverPool::~SolverPool() = default;

std::unique_ptr<smt::SmtSolver>
SolverPool::makeSolver(const smt::SolverOptions &SOpts) {
  if (degraded()) {
    noteFallback();
    return makeInProcess(SOpts);
  }
  return std::make_unique<IsolatedSolver>(*this, SOpts);
}

smt::SolverFactory SolverPool::factory() {
  return [this](const smt::SolverOptions &SO) { return makeSolver(SO); };
}

PoolStats SolverPool::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats;
}

bool SolverPool::degraded() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats.Degraded;
}

bool SolverPool::reserveSlot() {
  std::lock_guard<std::mutex> L(Mu);
  if (Stats.Degraded)
    return false;
  if (Opts.MaxWorkers > 0 && Stats.Live >= Opts.MaxWorkers) {
    ++Stats.Fallbacks;
    return false;
  }
  ++Stats.Live;
  return true;
}

void SolverPool::noteSpawned() {
  std::lock_guard<std::mutex> L(Mu);
  ++Stats.Spawns;
}

void SolverPool::noteExit(bool Unexpected) {
  std::lock_guard<std::mutex> L(Mu);
  if (Stats.Live > 0)
    --Stats.Live;
  if (!Unexpected)
    return;
  ++Stats.Deaths;
  auto Now = std::chrono::steady_clock::now();
  RecentDeaths.push_back(Now);
  auto WindowStart = Now - std::chrono::milliseconds(Opts.FlapWindowMs);
  while (!RecentDeaths.empty() && RecentDeaths.front() < WindowStart)
    RecentDeaths.pop_front();
  if (Opts.FlapK > 0 && RecentDeaths.size() >= Opts.FlapK &&
      !Stats.Degraded) {
    Stats.Degraded = true;
    if (!WarnedDegraded) {
      WarnedDegraded = true;
      std::fprintf(stderr,
                   "vcdryad: solver workers died %zu times in %u ms; "
                   "degrading to in-process solving\n",
                   RecentDeaths.size(), Opts.FlapWindowMs);
    }
  }
}

void SolverPool::noteRetry() {
  std::lock_guard<std::mutex> L(Mu);
  ++Stats.Retries;
}

void SolverPool::noteFallback() {
  std::lock_guard<std::mutex> L(Mu);
  ++Stats.Fallbacks;
}

unsigned SolverPool::backoffDelayMs(unsigned ConsecutiveFailures) const {
  if (ConsecutiveFailures == 0)
    return 0;
  unsigned Shift = ConsecutiveFailures > 8 ? 8 : ConsecutiveFailures;
  unsigned Delay = Opts.BackoffBaseMs << (Shift - 1);
  return Delay > Opts.BackoffCapMs ? Opts.BackoffCapMs : Delay;
}
