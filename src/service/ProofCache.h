//===- ProofCache.h - Content-addressed proof result cache ------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of discharged proof obligations. Each
/// obligation is keyed by the stable hash of its passified
/// (guard, goal) pair plus every option that can change the verdict
/// (solver timeout, background axioms, the instrumentation and
/// translation options that shaped the VC — see
/// service::optionsFingerprint). Results live in a thread-safe
/// in-memory map and persist to a versioned on-disk store, so
/// re-verifying an unchanged routine is a pure cache hit and corpus
/// re-runs / CI become incremental.
///
/// Persistence policy: only Valid outcomes are stored. Invalid results
/// re-solve so counterexample models stay fresh, and Unknown results
/// re-solve so timeouts get retried — both keep a warm run's verdicts
/// identical to a cold run's.
///
/// Disk layout (`<dir>/`, default `.vcdryad-cache/`):
///   proofs-v1.txt   one entry per line: "<16-hex key> V <time_ms>",
///                   key-sorted
/// The format version is part of the file name; readers ignore stores
/// they do not understand, so format bumps invalidate cleanly.
///
/// Durability is two-layered. Every accepted entry is immediately
/// committed to a write-ahead journal (proofs-v1.txt.wal, see
/// Journal.h) — append + checksum-framed commit marker + fsync — so a
/// `kill -9` at any instant after store() returns can never lose a
/// proven result. flush() is *compaction*: under an advisory lock
/// (proofs-v1.txt.lock) it folds in any on-disk entries sibling
/// processes persisted since load (snapshot and journal), writes the
/// union to a temp file in the same directory, rename(2)s it over the
/// store, and truncates the journal. Readers therefore only ever see
/// a complete snapshot plus a committed journal suffix. Legacy stores
/// without a journal load unchanged. Numbers are read and written
/// locale-independently (std::from_chars / fixed-point formatting),
/// so the store survives LC_NUMERIC locales with a non-'.' decimal
/// separator.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_PROOFCACHE_H
#define VCDRYAD_SERVICE_PROOFCACHE_H

#include "service/Journal.h"
#include "smt/Solver.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace vcdryad {
namespace service {

struct CacheStats {
  uint64_t Hits = 0;   ///< lookup() returned a result.
  uint64_t Misses = 0; ///< lookup() found nothing.
  uint64_t Stores = 0; ///< New entries accepted this session.
};

class ProofCache {
public:
  /// In-memory-only cache (no persistence).
  ProofCache() = default;

  /// Opens (creating if needed) the on-disk store under \p Dir and
  /// loads existing entries. IO failures degrade to in-memory-only
  /// operation; openError() reports them.
  explicit ProofCache(std::string Dir);

  /// Compacts the store: atomically replaces the snapshot (temp file
  /// + rename) with the union of this cache and the current on-disk
  /// entries (snapshot and journal), under an advisory lock, then
  /// truncates the journal. Called by the destructor; safe to call
  /// repeatedly and safe against concurrent flushers in other
  /// processes or threads. Entries are already journal-durable before
  /// flush ever runs.
  ~ProofCache();
  void flush();

  /// Returns the cached outcome for \p Key, if any. Hit results carry
  /// TimeMs of the *original* solve and a "(cached)" detail marker.
  std::optional<smt::CheckResult> lookup(uint64_t Key);

  /// True when \p Key is resident, *without* touching the hit/miss
  /// statistics — the cache-aware scheduler's dispatch-ordering probe
  /// (the real lookup() still runs, and still counts, at solve time).
  bool contains(uint64_t Key) const;

  /// Records an outcome. Only Valid results are kept (see file
  /// comment); everything else is ignored.
  void store(uint64_t Key, const smt::CheckResult &Result);

  CacheStats stats() const;

  /// Number of resident entries (loaded + stored).
  size_t size() const;

  const std::string &dir() const { return Dir; }
  const std::string &openError() const { return OpenError; }

  /// Entries recovered from the write-ahead journal at open (results
  /// a crashed sibling committed but never compacted).
  size_t journalRecovered() const { return JournalRecovered; }
  /// Current journal size in bytes (durable-but-uncompacted state).
  uint64_t journalBytes() const;

private:
  struct Entry {
    double TimeMs = 0.0;
    bool Dirty = false; ///< Not yet in the snapshot.
  };

  std::string storePath() const;

  mutable std::mutex Mu;
  std::string Dir; ///< Empty: in-memory only.
  std::string OpenError;
  std::unordered_map<uint64_t, Entry> Entries;
  CacheStats Stats;
  Journal Wal;
  size_t JournalRecovered = 0;
};

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_PROOFCACHE_H
