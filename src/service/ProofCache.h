//===- ProofCache.h - Content-addressed proof result cache ------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of discharged proof obligations. Each
/// obligation is keyed by the stable hash of its passified
/// (guard, goal) pair plus every option that can change the verdict
/// (solver timeout, background axioms, the instrumentation and
/// translation options that shaped the VC — see
/// service::optionsFingerprint). Results live in a thread-safe
/// in-memory map and persist to a versioned on-disk store, so
/// re-verifying an unchanged routine is a pure cache hit and corpus
/// re-runs / CI become incremental.
///
/// Persistence policy: only Valid outcomes are stored. Invalid results
/// re-solve so counterexample models stay fresh, and Unknown results
/// re-solve so timeouts get retried — both keep a warm run's verdicts
/// identical to a cold run's.
///
/// Disk layout (`<dir>/`, default `.vcdryad-cache/`):
///   proofs-v1.txt   one entry per line: "<16-hex key> V <time_ms>",
///                   key-sorted
/// The format version is part of the file name; readers ignore stores
/// they do not understand, so format bumps invalidate cleanly.
///
/// The store is written atomically: flush() takes an advisory lock
/// (proofs-v1.txt.lock), folds in any on-disk entries a sibling
/// process added since load, writes the union to a temp file in the
/// same directory and rename(2)s it over the store. Concurrent
/// writers therefore never tear the file and never clobber each
/// other's entries. Numbers are read and written locale-independently
/// (std::from_chars / fixed-point formatting), so the store survives
/// LC_NUMERIC locales with a non-'.' decimal separator.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_PROOFCACHE_H
#define VCDRYAD_SERVICE_PROOFCACHE_H

#include "smt/Solver.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace vcdryad {
namespace service {

struct CacheStats {
  uint64_t Hits = 0;   ///< lookup() returned a result.
  uint64_t Misses = 0; ///< lookup() found nothing.
  uint64_t Stores = 0; ///< New entries accepted this session.
};

class ProofCache {
public:
  /// In-memory-only cache (no persistence).
  ProofCache() = default;

  /// Opens (creating if needed) the on-disk store under \p Dir and
  /// loads existing entries. IO failures degrade to in-memory-only
  /// operation; openError() reports them.
  explicit ProofCache(std::string Dir);

  /// Persists entries added since the last flush by atomically
  /// replacing the store (temp file + rename) with the union of this
  /// cache and the current on-disk entries, under an advisory lock.
  /// Called by the destructor; safe to call repeatedly and safe
  /// against concurrent flushers in other processes or threads.
  ~ProofCache();
  void flush();

  /// Returns the cached outcome for \p Key, if any. Hit results carry
  /// TimeMs of the *original* solve and a "(cached)" detail marker.
  std::optional<smt::CheckResult> lookup(uint64_t Key);

  /// Records an outcome. Only Valid results are kept (see file
  /// comment); everything else is ignored.
  void store(uint64_t Key, const smt::CheckResult &Result);

  CacheStats stats() const;

  /// Number of resident entries (loaded + stored).
  size_t size() const;

  const std::string &dir() const { return Dir; }
  const std::string &openError() const { return OpenError; }

private:
  struct Entry {
    double TimeMs = 0.0;
    bool Dirty = false; ///< Not yet persisted.
  };

  std::string storePath() const;

  mutable std::mutex Mu;
  std::string Dir; ///< Empty: in-memory only.
  std::string OpenError;
  std::unordered_map<uint64_t, Entry> Entries;
  CacheStats Stats;
};

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_PROOFCACHE_H
