//===- ProofCache.h - Tiered content-addressed proof cache ------*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of discharged proof obligations. Each
/// obligation is keyed by the stable hash of its passified
/// (guard, goal) pair plus every option that can change the verdict
/// (solver timeout, background axioms, the instrumentation and
/// translation options that shaped the VC — see
/// service::optionsFingerprint). Results live in a thread-safe
/// in-memory map and persist to a versioned on-disk store, so
/// re-verifying an unchanged routine is a pure cache hit and corpus
/// re-runs / CI become incremental.
///
/// The cache is *tiered*:
///   L1  this process's in-memory map (entries proven this session)
///   L2  the local journaled on-disk store (entries loaded at open)
///   L3  an optional remote proof-cache server (`vcdryad cached`),
///       attached with attachRemote(): a fleet of clients shares one
///       store, so a VC proven on any machine is a hit on all others.
/// L1/L2 share the map; the tier split is an origin tag per entry, so
/// hit statistics attribute each hit to the tier that earned it.
///
/// The remote tier is asynchronous and *never* on the solve path:
/// the scheduler batches one multi-get per function (prefetchAsync)
/// before dispatch, a single background worker performs the RPC and
/// folds the results into the map, and lookup() at solve time waits
/// (bounded) only for keys still in flight. Locally proven results
/// ride back on write-behind put-batches. Every remote failure mode —
/// server down, timeout, malformed reply — degrades silently to
/// local-only operation: verdicts are never affected, failures
/// surface only as counters (RemoteErrors).
///
/// Slice-alias keys: a VC proven via its cone-of-influence slice may
/// carry a second key, the hash of the *sliced* obligation. lookup()
/// accepts that alias and, on an alias hit, promotes the entry to the
/// canonical key. Soundness is directional: the sliced guard is a
/// weaker hypothesis, so a recorded sliced-obligation proof justifies
/// any obligation that slices to it; callers only *record* the alias
/// when the proof actually established the sliced form (see
/// Service.cpp's AliasSound gate).
///
/// Persistence policy: only Valid outcomes are stored. Invalid results
/// re-solve so counterexample models stay fresh, and Unknown results
/// re-solve so timeouts get retried — both keep a warm run's verdicts
/// identical to a cold run's.
///
/// Disk layout (`<dir>/`, default `.vcdryad-cache/`):
///   proofs-v1.txt   one entry per line: "<16-hex key> V <time_ms>",
///                   key-sorted
/// The format version is part of the file name; readers ignore stores
/// they do not understand, so format bumps invalidate cleanly.
///
/// Durability is two-layered. Every accepted entry is immediately
/// committed to a write-ahead journal (proofs-v1.txt.wal, see
/// Journal.h) — append + checksum-framed commit marker + fsync — so a
/// `kill -9` at any instant after store() returns can never lose a
/// proven result. flush() is *compaction*: under an advisory lock
/// (proofs-v1.txt.lock) it folds in any on-disk entries sibling
/// processes persisted since load (snapshot and journal), writes the
/// union to a temp file in the same directory, rename(2)s it over the
/// store, and truncates the journal. Readers therefore only ever see
/// a complete snapshot plus a committed journal suffix. Legacy stores
/// without a journal load unchanged. Numbers are read and written
/// locale-independently (std::from_chars / fixed-point formatting),
/// so the store survives LC_NUMERIC locales with a non-'.' decimal
/// separator.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_PROOFCACHE_H
#define VCDRYAD_SERVICE_PROOFCACHE_H

#include "service/Journal.h"
#include "smt/Solver.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace vcdryad {

namespace wire {
class RemoteCache;
}

namespace service {

struct CacheStats {
  uint64_t Hits = 0;   ///< lookup() returned a result.
  uint64_t Misses = 0; ///< lookup() found nothing.
  uint64_t Stores = 0; ///< New entries accepted this session.
  // Per-tier attribution of Hits (L1Hits + L2Hits + RemoteHits == Hits).
  uint64_t L1Hits = 0;     ///< Served by an entry proven this session.
  uint64_t L2Hits = 0;     ///< Served by the local on-disk store.
  uint64_t RemoteHits = 0; ///< Served by a remote-fetched entry.
  // Remote-tier health (all zero when no remote is attached).
  uint64_t RemoteMisses = 0; ///< Keys the server was asked for and lacked.
  uint64_t RemoteErrors = 0; ///< Failed remote operations (degraded ops).
  uint64_t RemoteWaitMs = 0; ///< Total time lookups blocked on prefetch.
};

class ProofCache {
public:
  /// In-memory-only cache (no persistence).
  ProofCache() = default;

  /// Opens (creating if needed) the on-disk store under \p Dir and
  /// loads existing entries. IO failures degrade to in-memory-only
  /// operation; openError() reports them.
  explicit ProofCache(std::string Dir);

  /// Stops the remote worker (draining the write-behind outbox), then
  /// compacts the store.
  ~ProofCache();

  /// Compacts the store: atomically replaces the snapshot (temp file
  /// + rename) with the union of this cache and the current on-disk
  /// entries (snapshot and journal), under an advisory lock, then
  /// truncates the journal. First drains the remote write-behind
  /// outbox (bounded wait) so a batch run's proofs reach the server
  /// before exit. Called by the destructor; safe to call repeatedly
  /// and safe against concurrent flushers in other processes or
  /// threads. Entries are already journal-durable before flush ever
  /// runs.
  void flush();

  /// Returns the cached outcome for \p Key, if any. Hit results carry
  /// TimeMs of the *original* solve and a "(cached)" detail marker.
  ///
  /// \p AliasKey, when nonzero, is the slice-alias of the same
  /// obligation (hash of its cone-of-influence-sliced form): if the
  /// canonical key misses but the alias is resident, the entry is
  /// promoted to \p Key (a hit; Stores is *not* bumped — promotion is
  /// not a new proof). If either key is still in remote prefetch
  /// flight, waits for the fetch (bounded by the remote deadline)
  /// before deciding.
  std::optional<smt::CheckResult> lookup(uint64_t Key,
                                         uint64_t AliasKey = 0);

  /// True when \p Key is resident, *without* touching the hit/miss
  /// statistics — the cache-aware scheduler's dispatch-ordering probe
  /// (the real lookup() still runs, and still counts, at solve time).
  bool contains(uint64_t Key) const;

  /// Records an outcome. Only Valid results are kept (see file
  /// comment); everything else is ignored. A nonzero \p AliasKey
  /// additionally records the slice-alias entry (same transaction,
  /// not counted in Stores) — pass it only when the proof established
  /// the *sliced* obligation (the alias is the weaker fact).
  void store(uint64_t Key, const smt::CheckResult &Result,
             uint64_t AliasKey = 0);

  /// Batch insert of already-proven Valid records (server put-batches,
  /// peer imports): one journal transaction — one fsync — for the
  /// whole batch. Returns the number of newly inserted entries
  /// (duplicates are ignored); each insertion counts in Stores.
  size_t storeBatch(const std::vector<std::pair<uint64_t, double>> &Records);

  /// Attaches the remote (L3) tier and starts the prefetch worker.
  /// \p OptionsHash salts the server-side store key (defense in depth
  /// on top of the options salt already folded into every VC hash).
  void attachRemote(std::unique_ptr<wire::RemoteCache> Remote,
                    uint64_t OptionsHash);
  bool remoteAttached() const { return Remote != nullptr; }
  /// The attached server address ("" when none).
  std::string remoteAddress() const;

  /// Queues an asynchronous remote multi-get for the subset of
  /// \p Keys not already resident. No-op without a remote tier.
  /// lookup() on these keys will wait for the fetch if it has not
  /// landed yet.
  void prefetchAsync(const std::vector<uint64_t> &Keys);

  CacheStats stats() const;

  /// Number of resident entries (loaded + stored).
  size_t size() const;

  const std::string &dir() const { return Dir; }
  const std::string &openError() const { return OpenError; }

  /// Entries recovered from the write-ahead journal at open (results
  /// a crashed sibling committed but never compacted).
  size_t journalRecovered() const { return JournalRecovered; }
  /// Current journal size in bytes (durable-but-uncompacted state).
  uint64_t journalBytes() const;

private:
  /// Which tier an entry came from (attribution of later hits).
  enum class Origin : uint8_t { Session, Disk, Remote };

  struct Entry {
    double TimeMs = 0.0;
    bool Dirty = false; ///< Not yet in the snapshot.
    Origin From = Origin::Session;
  };

  /// A locally proven record awaiting write-behind to the server.
  struct OutRecord {
    uint64_t Key = 0;
    double TimeMs = 0.0;
  };

  struct RemoteJob {
    enum Kind { Fetch, Push } Kind = Fetch;
    std::vector<uint64_t> Keys;      ///< Fetch: keys to multi-get.
    std::vector<OutRecord> Records;  ///< Push: records to put-batch.
  };

  std::string storePath() const;
  void countHit(const Entry &E);
  /// Enqueues a job for the worker. Caller holds RemoteMu.
  void enqueueLocked(RemoteJob Job);
  /// Moves the outbox into a Push job if it is ripe (or \p Force).
  /// Caller holds RemoteMu.
  void drainOutboxLocked(bool Force);
  /// Blocks until the worker queue is empty, bounded. Caller holds
  /// RemoteMu; wait time is charged to RemoteWaitUs.
  void awaitWorkerLocked(std::unique_lock<std::mutex> &Lock,
                         unsigned BudgetMs);
  void workerMain();
  void runFetch(std::vector<uint64_t> Keys);
  void runPush(std::vector<OutRecord> Records);
  void stopWorker();

  mutable std::mutex Mu;
  std::string Dir; ///< Empty: in-memory only.
  std::string OpenError;
  std::unordered_map<uint64_t, Entry> Entries;
  CacheStats Stats;
  Journal Wal;
  size_t JournalRecovered = 0;

  // Remote (L3) tier. RemoteMu guards everything below; it is never
  // held together with Mu (both the worker and lookup() release one
  // before taking the other), so there is no lock order to violate.
  std::unique_ptr<wire::RemoteCache> Remote;
  uint64_t RemoteOptionsHash = 0;
  std::thread Worker;
  mutable std::mutex RemoteMu;
  std::condition_variable QueueCv;  ///< Worker wakeup.
  std::condition_variable IdleCv;   ///< Fetch-landed / queue-drained.
  std::deque<RemoteJob> Queue;
  std::unordered_set<uint64_t> InFlight; ///< Keys being fetched.
  std::vector<OutRecord> Outbox;
  bool WorkerStop = false;
  bool WorkerBusy = false;
  uint64_t RemoteWaitUs = 0; ///< Microseconds lookups spent blocked.
};

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_PROOFCACHE_H
