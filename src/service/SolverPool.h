//===- SolverPool.h - Supervised out-of-process solver pool -----*- C++ -*-==//
//
// Part of the VCDryad-Repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-isolation boundary of the pipeline: a supervised pool of
/// `vcdryad solve-worker` child processes, each hosting one Z3 solver
/// behind the smt/WorkerProto pipe protocol. The pool hands out
/// SmtSolver instances (smt::SolverFactory-compatible) that are
/// drop-in replacements for the in-process backend; a worker that
/// segfaults, OOMs against its RLIMIT_AS, burns past RLIMIT_CPU, or
/// hangs into the wall-clock watchdog costs one obligation — retried
/// once in a fresh worker — never the process, the daemon, or the
/// journaled stores.
///
/// Supervision state machine, per pool:
///
///   Healthy --spawn-on-demand (up to MaxWorkers)--> Healthy
///   Healthy --unexpected death--> Healthy (respawn w/ exp. backoff)
///   Healthy --FlapK unexpected deaths in FlapWindowMs--> Degraded
///   Degraded: permanent for the pool's lifetime; every subsequent
///             solver request returns the in-process backend, with a
///             one-time stderr warning. Verdict-neutral by design.
///
/// Interrupt (portfolio lane cancellation) SIGKILLs the child; such
/// deaths are expected and do not count toward flap detection.
///
//===----------------------------------------------------------------------===//

#ifndef VCDRYAD_SERVICE_SOLVERPOOL_H
#define VCDRYAD_SERVICE_SOLVERPOOL_H

#include "smt/Solver.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

namespace vcdryad {
namespace service {

struct PoolOptions {
  /// Worker executable. Empty = $VCDRYAD_WORKER_BIN, else the running
  /// binary itself (/proc/self/exe) — the tool hosts the
  /// `solve-worker` subcommand, so self-exec is the common case.
  std::string WorkerBin;
  /// RLIMIT_AS per worker in MiB (0 = unlimited). Whole address
  /// space, Z3 included: values below ~256 starve the solver.
  unsigned MemMb = 0;
  /// RLIMIT_CPU per worker in seconds (0 = unlimited).
  unsigned CpuS = 0;
  /// Concurrent-worker soft cap (0 = unlimited). Requests beyond the
  /// cap get the in-process backend — verdicts are unaffected, only
  /// the fault boundary narrows.
  unsigned MaxWorkers = 0;
  /// Degrade after this many unexpected deaths inside FlapWindowMs.
  unsigned FlapK = 6;
  unsigned FlapWindowMs = 10000;
  /// Respawn backoff: BackoffBaseMs * 2^consecutive-failures, capped.
  /// Small constants on purpose — obligations block on respawn.
  unsigned BackoffBaseMs = 25;
  unsigned BackoffCapMs = 400;
  /// Wall-clock watchdog slack added to a check's solver budget; a
  /// worker silent past budget+grace is declared hung and killed.
  unsigned WatchdogGraceMs = 10000;
  /// Deadline for non-solving round trips (init, session control).
  unsigned ControlTimeoutMs = 120000;
};

struct PoolStats {
  uint64_t Spawns = 0;         ///< Workers successfully started.
  uint64_t Deaths = 0;         ///< Unexpected worker deaths.
  uint64_t Retries = 0;        ///< Bounded per-check retries taken.
  uint64_t Fallbacks = 0;      ///< In-process solvers handed out.
  uint64_t Live = 0;           ///< Workers currently running.
  bool Degraded = false;
};

/// The supervisor. Thread-safe; one pool serves every worker thread
/// of a batch run (and every portfolio lane). Solvers handed out hold
/// a reference to the pool — the pool must outlive them.
class SolverPool {
public:
  explicit SolverPool(PoolOptions O);
  ~SolverPool();

  SolverPool(const SolverPool &) = delete;
  SolverPool &operator=(const SolverPool &) = delete;

  /// One isolated solver (or the in-process backend when degraded /
  /// over cap). Never returns null.
  std::unique_ptr<smt::SmtSolver> makeSolver(const smt::SolverOptions &SOpts);

  /// An smt::SolverFactory view of makeSolver, for SolverOptions /
  /// VerifyOptions plumbing. Captures `this`.
  smt::SolverFactory factory();

  PoolStats stats() const;
  bool degraded() const;
  const PoolOptions &options() const { return Opts; }

  // Supervision callbacks for the solvers this pool hands out.

  /// Reserves a worker slot. False when degraded or at MaxWorkers;
  /// the caller then falls back in-process. On true the slot is held
  /// until noteExit().
  bool reserveSlot();
  void noteSpawned();
  /// Records a worker exit and releases its slot. \p Unexpected
  /// deaths (crash, OOM, watchdog) feed flap detection; interrupt
  /// kills and clean shutdowns do not.
  void noteExit(bool Unexpected);
  void noteRetry();
  void noteFallback();
  /// Backoff before the Nth consecutive failed respawn (0 = none).
  unsigned backoffDelayMs(unsigned ConsecutiveFailures) const;

private:
  PoolOptions Opts;
  mutable std::mutex Mu;
  PoolStats Stats;
  std::deque<std::chrono::steady_clock::time_point> RecentDeaths;
  bool WarnedDegraded = false;
};

/// Resolves the worker binary path per the PoolOptions::WorkerBin
/// rules. Empty result = resolution failed (no /proc, no env).
std::string resolveWorkerBin(const std::string &Explicit);

} // namespace service
} // namespace vcdryad

#endif // VCDRYAD_SERVICE_SOLVERPOOL_H
